// Constraint explorer: walk a benchmark problem through every stage of the
// library — symbolic cover, multi-valued minimisation, face constraints,
// seed dichotomies, column-by-column PICOLA trace, and final evaluation
// against the baselines.  Give a benchmark name (default: ex3).

#include <cstdio>
#include <string>

#include "constraints/derive.h"
#include "constraints/dichotomy.h"
#include "core/picola.h"
#include "encoders/enc_like.h"
#include "encoders/nova_like.h"
#include "encoders/trivial.h"
#include "eval/constraint_eval.h"
#include "kiss/benchmarks.h"

using namespace picola;

int main(int argc, char** argv) {
  std::string name = argc > 1 ? argv[1] : "ex3";
  Fsm fsm = make_benchmark(name);
  std::printf("Benchmark %s: %d inputs, %d outputs, %d states, %zu rows\n",
              name.c_str(), fsm.num_inputs, fsm.num_outputs, fsm.num_states(),
              fsm.transitions.size());

  DerivedConstraints d = derive_face_constraints(fsm);
  std::printf("Symbolic cover: %d cubes -> minimised %d cubes\n",
              d.symbolic_onset.size(), d.minimized.size());
  std::printf("Face constraints: %d (%ld seed dichotomies)\n\n", d.set.size(),
              d.set.num_seed_dichotomies());
  for (int k = 0; k < d.set.size(); ++k)
    std::printf("  L%-3d %s  weight %.0f\n", k + 1,
                d.set.constraints[static_cast<size_t>(k)].to_string().c_str(),
                d.set.constraints[static_cast<size_t>(k)].weight);

  PicolaResult pr = picola_encode(d.set);
  std::printf("\nPICOLA: %d guides added; infeasible found per column:",
              pr.stats.guides_added);
  for (int x : pr.stats.infeasible_per_column) std::printf(" %d", x);
  std::printf("\n\n%-12s %10s %12s %12s\n", "encoder", "satisfied",
              "dichotomies", "total cubes");

  struct Row {
    const char* name;
    Encoding enc;
  };
  const Row rows[] = {
      {"picola", pr.encoding},
      {"nova-like", nova_like_encode(d.set).encoding},
      {"enc-like", enc_like_encode(d.set).encoding},
      {"sequential", sequential_encoding(fsm.num_states())},
      {"random", random_encoding(fsm.num_states(), 99)},
  };
  for (const Row& row : rows) {
    int sat = count_satisfied_constraints(d.set, row.enc);
    long dich = count_satisfied_dichotomies(d.set, row.enc);
    int cubes = evaluate_constraints(d.set, row.enc).total_cubes;
    std::printf("%-12s %6d/%-3d %8ld/%-3ld %12d\n", row.name, sat, d.set.size(),
                dich, d.set.num_seed_dichotomies(), cubes);
  }
  return 0;
}
