// Quickstart: encode a set of symbols under face constraints with minimum
// code length, inspect satisfaction and implementation cost.
//
// This reproduces the paper's running example (Figure 1): fifteen symbols,
// four face constraints, four code bits.  L4 is infeasible at minimum
// length; PICOLA still implements it with two product terms by satisfying
// its guide constraint.

#include <cstdio>

#include "constraints/dichotomy.h"
#include "core/picola.h"
#include "core/theorem1.h"
#include "eval/constraint_eval.h"

using namespace picola;

int main() {
  // Symbols s1..s15 are ids 0..14; the constraints of Figure 1b.
  ConstraintSet cs;
  cs.num_symbols = 15;
  cs.add({1, 5, 7, 13});     // L1 = {s2,s6,s8,s14}
  cs.add({0, 1});            // L2 = {s1,s2}
  cs.add({8, 13});           // L3 = {s9,s14}
  cs.add({5, 6, 7, 8, 13});  // L4 = {s6,s7,s8,s9,s14}

  PicolaResult result = picola_encode(cs);
  const Encoding& enc = result.encoding;

  std::printf("Minimum-length encoding of %d symbols (%d bits):\n\n",
              enc.num_symbols, enc.num_bits);
  for (int s = 0; s < enc.num_symbols; ++s) {
    std::printf("  s%-2d -> ", s + 1);
    for (int b = enc.num_bits - 1; b >= 0; --b)
      std::printf("%d", enc.bit(s, b));
    std::printf("\n");
  }

  std::printf("\nConstraint report:\n");
  ConstraintEvalResult eval = evaluate_constraints(cs, enc);
  for (int k = 0; k < cs.size(); ++k) {
    const FaceConstraint& c = cs.constraints[k];
    bool sat = constraint_satisfied(c, enc);
    std::printf("  L%d %-18s %-9s %d cube%s", k + 1, c.to_string().c_str(),
                sat ? "satisfied" : "violated", eval.per_constraint[k],
                eval.per_constraint[k] == 1 ? "" : "s");
    if (!sat) {
      std::printf("  (intruders:");
      for (int j : intruders(c, enc)) std::printf(" s%d", j + 1);
      std::printf(")");
      if (auto t1 = theorem1_cube_count(c, enc))
        std::printf("  [Theorem I bound: %d]", *t1);
    }
    std::printf("\n");
  }
  std::printf("\nTotal product terms for the constraint set: %d\n",
              eval.total_cubes);
  std::printf("Guide constraints generated during encoding: %d\n",
              result.stats.guides_added);
  return 0;
}
