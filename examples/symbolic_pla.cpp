// Encoding a symbolic input of a multi-valued PLA — the paper's general
// input-encoding application, independent of FSMs.  Reads an espresso
// `.mv` file when given one, otherwise uses a built-in ALU-decoder style
// function with one 6-valued symbolic input.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/input_encoding.h"
#include "pla/mv_pla.h"

using namespace picola;

namespace {

constexpr const char* kBuiltin = R"(.mv 4 2 6 4
# two binary inputs, a 6-valued symbolic op field, 4 outputs
00 100110 1000
01 100110 1000
1- 100110 0100
-0 011000 0010
-1 011000 0011
00 000001 0001
01 000001 1001
1- 000001 0001
.e
)";

}  // namespace

int main(int argc, char** argv) {
  std::string text = kBuiltin;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }
  MvPlaParseResult parsed = parse_mv_pla(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
    return 1;
  }
  const MvPla& pla = parsed.pla;
  std::printf("Multi-valued PLA: %d binary inputs, mv sizes [", pla.num_binary);
  for (size_t i = 0; i < pla.mv_sizes.size(); ++i)
    std::printf("%s%d", i ? "," : "", pla.mv_sizes[i]);
  std::printf("], %zu rows\n", pla.rows.size());

  // Encode the first multi-valued variable (the symbolic input); the last
  // variable is treated as the output field.
  const int var = pla.num_binary;
  InputEncodingResult r =
      encode_symbolic_input(pla.onset(), pla.dcset(), var);

  std::printf("\nSymbolic cover minimised to %d cubes; %d face constraints\n",
              r.minimized_symbolic.size(), r.constraints.size());
  for (const auto& c : r.constraints.constraints)
    std::printf("  %s\n", c.to_string().c_str());

  std::printf("\nCodes for the %d symbolic values (%d bits):\n",
              r.encoding.num_symbols, r.encoding.num_bits);
  for (int v = 0; v < r.encoding.num_symbols; ++v) {
    std::printf("  value %d -> ", v);
    for (int b = r.encoding.num_bits - 1; b >= 0; --b)
      std::printf("%d", r.encoding.bit(v, b));
    std::printf("\n");
  }

  std::printf("\nEncoded implementation: %d cubes (symbolic had %d)\n",
              r.minimized.size(), r.minimized_symbolic.size());
  std::printf("%s", r.minimized.to_string().c_str());
  return 0;
}
