// State assignment of a KISS2 machine: the paper's Table II flow on a real
// controller.  Reads KISS2 from a file when given one, otherwise uses the
// bundled hand-written traffic-light controller.  Prints the derived face
// constraints, the chosen codes, the minimised two-level implementation
// (as an espresso PLA), and a co-simulation self-check.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "kiss/benchmarks.h"
#include "kiss/kiss_io.h"
#include "pla/pla_io.h"
#include "stateassign/state_assign.h"

using namespace picola;

int main(int argc, char** argv) {
  Fsm fsm;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    KissParseResult r = parse_kiss(ss.str());
    if (!r.ok()) {
      std::fprintf(stderr, "KISS2 parse error: %s\n", r.error.c_str());
      return 1;
    }
    fsm = r.fsm;
    fsm.name = argv[1];
  } else {
    fsm = make_example_fsm("traffic");
  }

  std::printf("Machine: %s  (%d inputs, %d outputs, %d states, %zu rows)\n\n",
              fsm.name.c_str(), fsm.num_inputs, fsm.num_outputs,
              fsm.num_states(), fsm.transitions.size());

  StateAssignOptions opt;
  opt.assigner = Assigner::kPicola;
  StateAssignResult r = assign_states(fsm, opt);

  std::printf("Face constraints from symbolic minimisation (%d):\n",
              r.derived.set.size());
  for (const auto& c : r.derived.set.constraints) {
    std::printf("  {");
    for (size_t i = 0; i < c.members.size(); ++i)
      std::printf("%s%s", i ? "," : "",
                  fsm.state_names[static_cast<size_t>(c.members[i])].c_str());
    std::printf("}  weight %.0f\n", c.weight);
  }

  std::printf("\nState codes (%d bits):\n", r.encoding.num_bits);
  for (int s = 0; s < fsm.num_states(); ++s) {
    std::printf("  %-8s ", fsm.state_names[static_cast<size_t>(s)].c_str());
    for (int b = r.encoding.num_bits - 1; b >= 0; --b)
      std::printf("%d", r.encoding.bit(s, b));
    std::printf("\n");
  }

  std::printf("\nTwo-level implementation: %d product terms, PLA area %ld\n",
              r.product_terms, r.area);
  std::printf("(derive %.1f ms, encode %.1f ms, minimise %.1f ms)\n\n",
              r.derive_ms, r.encode_ms, r.minimize_ms);
  std::printf("%s", write_pla(r.pla).c_str());

  std::string err =
      verify_against_fsm(fsm, r.encoding, r.minimized, r.encoded_dc, 1000, 42);
  std::printf("\nCo-simulation self-check (1000 random steps): %s\n",
              err.empty() ? "PASS" : err.c_str());
  return err.empty() ? 0 : 1;
}
