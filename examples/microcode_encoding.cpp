// Microcode mnemonic-field encoding — the other classic application of
// face-constrained encoding mentioned in the paper's introduction.
//
// A vertical microcode word has a symbolic operation field; microprogram
// optimisation (multi-valued minimisation of the decode logic) produces
// face constraints on the mnemonics.  Encoding them with minimum length
// keeps the microword narrow while letting the decoder stay small.

#include <cstdio>
#include <string>
#include <vector>

#include "constraints/dichotomy.h"
#include "core/picola.h"
#include "encoders/nova_like.h"
#include "encoders/trivial.h"
#include "eval/constraint_eval.h"

using namespace picola;

int main() {
  // A 12-mnemonic ALU/memory operation field.  Groups that appear together
  // in minimised decoder planes become face constraints: arithmetic ops
  // share the adder enable, logic ops share the LUT plane, memory ops
  // share the address path, and the two shifts share the barrel shifter.
  const std::vector<std::string> ops = {"ADD", "SUB", "ADC", "SBC",   // 0-3
                                        "AND", "OR",  "XOR",          // 4-6
                                        "LD",  "ST",  "LDI",          // 7-9
                                        "SHL", "SHR"};                // 10-11
  ConstraintSet cs;
  cs.num_symbols = static_cast<int>(ops.size());
  cs.add({0, 1, 2, 3}, 3.0);   // adder enable
  cs.add({4, 5, 6}, 2.0);      // logic unit
  cs.add({7, 8, 9}, 2.0);      // memory path
  cs.add({10, 11}, 1.0);       // barrel shifter
  cs.add({0, 1, 4, 5, 6}, 1.0);  // flag-setting ops share the flag plane
  cs.add({7, 9}, 1.0);         // loads share the write-back mux

  std::printf("Encoding %d mnemonics with %d bits\n\n", cs.num_symbols,
              Encoding::min_bits(cs.num_symbols));

  struct Candidate {
    const char* name;
    Encoding enc;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"picola", picola_encode(cs).encoding});
  candidates.push_back({"nova-like", nova_like_encode(cs).encoding});
  candidates.push_back({"sequential", sequential_encoding(cs.num_symbols)});

  for (const auto& cand : candidates) {
    ConstraintEvalResult eval = evaluate_constraints(cs, cand.enc);
    std::printf("%-11s satisfied %d/%d constraints, decoder terms: %d\n",
                cand.name, eval.satisfied, cs.size(), eval.total_cubes);
  }

  const Encoding& best = candidates[0].enc;
  std::printf("\nPICOLA opcode map:\n");
  for (size_t i = 0; i < ops.size(); ++i) {
    std::printf("  %-4s = ", ops[i].c_str());
    for (int b = best.num_bits - 1; b >= 0; --b)
      std::printf("%d", best.bit(static_cast<int>(i), b));
    std::printf("\n");
  }

  std::printf("\nDecoder plane for the adder-enable group {ADD,SUB,ADC,SBC}:\n");
  FaceConstraint adder = cs.constraints[0];
  Cover plane = constraint_cover(adder, best);
  std::printf("%s", plane.to_string().c_str());
  return 0;
}
