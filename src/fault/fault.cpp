#include "fault/fault.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace picola::fault {

namespace detail {
std::atomic<bool> g_active{false};
}

namespace {

std::mutex g_plan_mu;
std::shared_ptr<FaultPlan> g_plan;

uint64_t splitmix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t hash_point(std::string_view point) {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a
  for (char c : point) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Uniform [0, 1) from (seed, point, call index) — the probability coin.
double hash01(uint64_t seed, std::string_view point, uint64_t index) {
  uint64_t h = splitmix64(seed ^ splitmix64(hash_point(point) ^ index));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultPlan::FaultPlan(FaultPlan&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  seed_ = other.seed_;
  rules_ = std::move(other.rules_);
  counts_ = std::move(other.counts_);
}

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kNone: return "none";
    case Kind::kErrno: return "errno";
    case Kind::kShortIo: return "short_io";
    case Kind::kDelay: return "delay";
    case Kind::kThrow: return "throw";
    case Kind::kFail: return "fail";
    case Kind::kCrash: return "crash";
  }
  return "?";
}

void apply_delay(const Action& a) {
  if (a.kind == Kind::kDelay && a.delay_ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(a.delay_ms));
}

void FaultPlan::add(Rule rule) {
  if (rule.every == 0) rule.every = 1;
  if (rule.probability < 1.0 && rule.max_fires != UINT64_MAX)
    throw std::invalid_argument(
        "FaultPlan: probabilistic rules must be uncapped (max_fires) so "
        "decisions stay a pure function of the call index");
  std::lock_guard<std::mutex> lock(mu_);
  counts_.try_emplace(rule.point);  // appear in stats() even with 0 calls
  rules_.push_back(std::move(rule));
}

Action FaultPlan::decision(std::string_view point, uint64_t index) const {
  for (const Rule& r : rules_) {
    if (r.point != point) continue;
    if (index < r.after_calls) continue;
    uint64_t k = index - r.after_calls;
    if (k % r.every != 0) continue;
    if (r.probability < 1.0) {
      if (hash01(seed_, point, index) >= r.probability) continue;
    } else if (k / r.every >= r.max_fires) {
      continue;
    }
    return r.action;
  }
  return {};
}

Action FaultPlan::consult(const char* point) {
  uint64_t index;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PointStats& s = counts_[point];
    index = s.calls++;
  }
  Action a = decision(point, index);
  if (a) {
    std::lock_guard<std::mutex> lock(mu_);
    counts_[point].fires++;
  }
  return a;
}

std::map<std::string, FaultPlan::PointStats> FaultPlan::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {counts_.begin(), counts_.end()};
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << "plan seed=" << seed_ << " rules=" << rules_.size();
  for (const Rule& r : rules_) {
    os << "\n  " << r.point << ": " << kind_name(r.action.kind);
    if (r.action.kind == Kind::kErrno) os << "(" << r.action.error << ")";
    if (r.action.kind == Kind::kShortIo)
      os << "(" << r.action.max_bytes << "B)";
    if (r.action.kind == Kind::kDelay) os << "(" << r.action.delay_ms << "ms)";
    if (r.action.kind == Kind::kCrash && r.action.max_bytes > 0)
      os << "(after " << r.action.max_bytes << "B)";
    os << " after=" << r.after_calls << " every=" << r.every;
    if (r.probability < 1.0)
      os << " p=" << r.probability;
    else
      os << " max_fires=" << r.max_fires;
  }
  return os.str();
}

uint64_t FaultPlan::schedule_fingerprint(uint64_t window) const {
  uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001B3ULL;
  };
  // Rule order is fixed at build time, so iterating rules (not the
  // mutex-guarded counts map) keeps this const and lock-free.
  std::vector<std::string> points;
  for (const Rule& r : rules_)
    if (std::find(points.begin(), points.end(), r.point) == points.end())
      points.push_back(r.point);
  for (const std::string& p : points) {
    mix(hash_point(p));
    for (uint64_t i = 0; i < window; ++i) {
      Action a = decision(p, i);
      mix(static_cast<uint64_t>(a.kind));
      mix(static_cast<uint64_t>(a.error));
      mix(a.max_bytes);
      mix(static_cast<uint64_t>(a.delay_ms));
    }
  }
  return h;
}

FaultPlan FaultPlan::random(uint64_t seed) {
  /// What each catalog point may inject (kErrno entries list the errnos
  /// its call sites are expected to survive).
  struct CatalogEntry {
    const char* point;
    std::vector<Action> menu;
  };
  static const std::vector<CatalogEntry> kCatalog = {
      {"net/read",
       {{Kind::kErrno, EINTR, 0, 0},
        {Kind::kErrno, EAGAIN, 0, 0},
        {Kind::kErrno, ECONNRESET, 0, 0},
        {Kind::kShortIo, 0, 1, 0}}},
      {"net/write",
       {{Kind::kErrno, EINTR, 0, 0},
        {Kind::kErrno, EAGAIN, 0, 0},
        {Kind::kErrno, EPIPE, 0, 0},
        {Kind::kErrno, ECONNRESET, 0, 0},
        {Kind::kShortIo, 0, 1, 0},
        {Kind::kDelay, 0, 0, 2}}},
      {"net/accept",
       {{Kind::kErrno, EINTR, 0, 0}, {Kind::kErrno, ECONNABORTED, 0, 0}}},
      {"net/connect",
       {{Kind::kErrno, EINTR, 0, 0}, {Kind::kErrno, ECONNREFUSED, 0, 0}}},
      {"net/epoll_wait", {{Kind::kErrno, EINTR, 0, 0}}},
      {"net/close", {{Kind::kErrno, EINTR, 0, 0}}},
      {"pool/task", {{Kind::kDelay, 0, 0, 2}, {Kind::kThrow, 0, 0, 0}}},
      {"service/restart_task",
       {{Kind::kThrow, 0, 0, 0}, {Kind::kDelay, 0, 0, 2}}},
      {"service/job_alloc", {{Kind::kThrow, 0, 0, 0}}},
      {"cache/insert", {{Kind::kFail, 0, 0, 0}}},
  };

  FaultPlan plan(seed);
  uint64_t s = splitmix64(seed ^ 0xC4A05);
  auto next = [&s]() { return s = splitmix64(s); };
  int nrules = 1 + static_cast<int>(next() % 6);
  for (int i = 0; i < nrules; ++i) {
    const CatalogEntry& e = kCatalog[next() % kCatalog.size()];
    Rule r;
    r.point = e.point;
    r.action = e.menu[next() % e.menu.size()];
    if (r.action.kind == Kind::kShortIo)
      r.action.max_bytes = 1 + next() % 7;
    if (r.action.kind == Kind::kDelay)
      r.action.delay_ms = 1 + static_cast<int>(next() % 4);
    r.after_calls = next() % 40;
    r.every = 1 + next() % 6;
    r.max_fires = 1 + next() % 6;
    plan.add(std::move(r));
  }
  return plan;
}

FaultPlan FaultPlan::random_persist(uint64_t seed) {
  /// Every point the persist/io.h shim consults, with the failures its
  /// call sites must survive.  kCrash entries simulate kill -9 at that
  /// exact syscall; a max_bytes > 0 crash on persist/write first lands a
  /// partial write, manufacturing the torn tail records recovery must
  /// tolerate.  See docs/PERSISTENCE.md for the recovery matrix.
  struct CatalogEntry {
    const char* point;
    std::vector<Action> menu;
  };
  static const std::vector<CatalogEntry> kCatalog = {
      {"persist/open", {{Kind::kErrno, EMFILE, 0, 0}}},
      {"persist/read",
       {{Kind::kErrno, EINTR, 0, 0}, {Kind::kShortIo, 0, 1, 0}}},
      {"persist/write",
       {{Kind::kErrno, EINTR, 0, 0},
        {Kind::kErrno, ENOSPC, 0, 0},
        {Kind::kErrno, EIO, 0, 0},
        {Kind::kShortIo, 0, 1, 0},
        {Kind::kCrash, 0, 0, 0},
        {Kind::kCrash, 0, 1, 0}}},  // torn record: 1..7B then _exit
      {"persist/fsync",
       {{Kind::kErrno, EIO, 0, 0}, {Kind::kCrash, 0, 0, 0}}},
      {"persist/rename",
       {{Kind::kErrno, EIO, 0, 0}, {Kind::kCrash, 0, 0, 0}}},
      {"persist/rename_after", {{Kind::kCrash, 0, 0, 0}}},
      {"persist/truncate", {{Kind::kErrno, EIO, 0, 0}}},
  };

  FaultPlan plan(seed);
  uint64_t s = splitmix64(seed ^ 0x9E7515);
  auto next = [&s]() { return s = splitmix64(s); };
  int nrules = 1 + static_cast<int>(next() % 4);
  for (int i = 0; i < nrules; ++i) {
    const CatalogEntry& e = kCatalog[next() % kCatalog.size()];
    Rule r;
    r.point = e.point;
    r.action = e.menu[next() % e.menu.size()];
    if (r.action.kind == Kind::kShortIo)
      r.action.max_bytes = 1 + next() % 7;
    if (r.action.kind == Kind::kCrash && r.action.max_bytes > 0)
      r.action.max_bytes = 1 + next() % 7;
    // Wider spread than random(): the write point is consulted once per
    // journal append and dozens of times per snapshot, so a large
    // after_calls still lands mid-protocol.
    r.after_calls = next() % 60;
    r.every = 1 + next() % 6;
    r.max_fires = 1 + next() % 4;
    plan.add(std::move(r));
  }
  return plan;
}

void install(std::shared_ptr<FaultPlan> plan) {
  std::lock_guard<std::mutex> lock(g_plan_mu);
  g_plan = std::move(plan);
  detail::g_active.store(g_plan != nullptr, std::memory_order_relaxed);
}

std::shared_ptr<FaultPlan> current() {
  std::lock_guard<std::mutex> lock(g_plan_mu);
  return g_plan;
}

Action consult(const char* point) {
  std::shared_ptr<FaultPlan> plan;
  {
    std::lock_guard<std::mutex> lock(g_plan_mu);
    plan = g_plan;
  }
  return plan ? plan->consult(point) : Action{};
}

}  // namespace picola::fault
