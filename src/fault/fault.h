#pragma once
// Deterministic fault injection for the serving stack (the testing
// counterpart of obs/obs.h, and built to the same cost model):
//
//  * Runtime: with no plan installed, a PICOLA_FAULT_POINT site costs one
//    inline relaxed atomic load (see the bench/micro_kernels gate — the
//    same <1% budget as the obs span guards).
//  * Compile time: -DPICOLA_FAULT_DISABLED expands every site to a
//    constant no-fault Action, for builds where even the load must go.
//
// A FaultPlan is reproducible from a single 64-bit seed: every decision
// is a pure function of (seed, point name, per-point call index), so
// re-running a seed replays the identical injection schedule regardless
// of wall-clock timing.  Rules are counter-based — fire at eligible call
// indices (after_calls, then every k-th) up to max_fires — or
// probabilistic (a seeded hash of the call index, uncapped so the
// decision stays index-pure).
//
// Fault-point catalog and reproduction workflow: docs/RESILIENCE.md.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace picola::fault {

enum class Kind : uint8_t {
  kNone,     ///< no fault
  kErrno,    ///< syscall fails with `error` (EINTR, EAGAIN, ECONNRESET...)
  kShortIo,  ///< syscall proceeds, byte count clamped to `max_bytes`
  kDelay,    ///< sleep `delay_ms`, then proceed (slow peer / slow task)
  kThrow,    ///< site throws (task failure, allocation failure)
  kFail,     ///< site silently degrades (e.g. a cache insert is dropped)
  kCrash,    ///< process _exit(137)s at the site — a kill -9 stand-in.
             ///< With max_bytes > 0 a write site first writes that many
             ///< bytes, so the crash leaves a torn record behind.
};

const char* kind_name(Kind k);

/// What one consulted fault point should do right now.
struct Action {
  Kind kind = Kind::kNone;
  int error = 0;         ///< errno for kErrno
  size_t max_bytes = 0;  ///< clamp for kShortIo
  int delay_ms = 0;      ///< sleep for kDelay
  explicit operator bool() const { return kind != Kind::kNone; }
};

/// Sleep helper for kDelay actions (no-op for everything else).
void apply_delay(const Action& a);

/// One scheduled behaviour at one point.  With probability == 1 the rule
/// fires at call indices after_calls, after_calls + every, ... for at
/// most max_fires fires.  With probability < 1 each eligible index fires
/// independently (seeded hash); max_fires must stay unlimited then so a
/// decision depends only on its own index.
struct Rule {
  std::string point;
  Action action;
  uint64_t after_calls = 0;
  uint64_t every = 1;
  uint64_t max_fires = 1;
  double probability = 1.0;
};

class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed = 0) : seed_(seed) {}
  FaultPlan(FaultPlan&& other) noexcept;  // the mutex stays behind

  uint64_t seed() const { return seed_; }

  /// Append a rule (earlier rules win when several match one call).
  /// Throws std::invalid_argument for probability < 1 with capped fires.
  void add(Rule rule);

  /// A pseudo-random bounded schedule over the built-in point catalog:
  /// 1-6 counter-based rules, every fault kind a point supports, small
  /// max_fires — so injected trouble is always finite and a retrying
  /// client must eventually succeed.  Same seed, same plan, always.
  static FaultPlan random(uint64_t seed);

  /// Like random(), but over the persist/* point catalog (durable cache
  /// I/O: short writes, EINTR, ENOSPC, fsync failure, and kCrash at
  /// every stage of the snapshot/journal protocol).  Kept out of
  /// random()'s catalog because a kCrash rule ends the process — only
  /// harnesses that fork a sacrificial child (picola_chaos --restart)
  /// want these schedules.  Same seed, same plan, always.
  static FaultPlan random_persist(uint64_t seed);

  /// The decision for `point`'s next call (thread-safe; bumps the
  /// per-point call counter, and the fire counter when it fires).
  Action consult(const char* point);

  /// Pure decision function: what call `index` at `point` does.  No side
  /// effects — the reproducibility anchor (consult(p) on the n-th call
  /// returns exactly decision(p, n)).
  Action decision(std::string_view point, uint64_t index) const;

  struct PointStats {
    uint64_t calls = 0;
    uint64_t fires = 0;
  };
  std::map<std::string, PointStats> stats() const;

  /// Human-readable rule list (chaos-harness logs).
  std::string describe() const;

  /// FNV-style hash of decision(point, 0..window) over every point the
  /// plan has rules for — two runs of one seed must agree on it.
  uint64_t schedule_fingerprint(uint64_t window = 64) const;

 private:
  uint64_t seed_;
  std::vector<Rule> rules_;
  mutable std::mutex mu_;
  std::map<std::string, PointStats, std::less<>> counts_;
};

namespace detail {
extern std::atomic<bool> g_active;  ///< storage behind active()
}

/// True while a plan is installed.  One relaxed load — the entire cost
/// of a fault point in a production process.
inline bool active() {
  return detail::g_active.load(std::memory_order_relaxed);
}

/// Install `plan` process-wide (nullptr uninstalls).  Keeps the previous
/// plan alive until every in-flight consult drains.
void install(std::shared_ptr<FaultPlan> plan);
std::shared_ptr<FaultPlan> current();

/// Consult the installed plan (no-fault Action when none).
Action consult(const char* point);

/// Installs a plan for the enclosing scope, uninstalls on exit (tests).
class ScopedPlan {
 public:
  explicit ScopedPlan(FaultPlan plan)
      : plan_(std::make_shared<FaultPlan>(std::move(plan))) {
    install(plan_);
  }
  ~ScopedPlan() { install(nullptr); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
  FaultPlan& plan() { return *plan_; }

 private:
  std::shared_ptr<FaultPlan> plan_;
};

}  // namespace picola::fault

#ifndef PICOLA_FAULT_DISABLED
/// The decision for this call of fault point `point` (a string literal
/// from the catalog in docs/RESILIENCE.md).  Costs one relaxed load when
/// no plan is installed.
#define PICOLA_FAULT_POINT(point)                                      \
  (::picola::fault::active() ? ::picola::fault::consult(point)         \
                             : ::picola::fault::Action{})
#else
#define PICOLA_FAULT_POINT(point) (::picola::fault::Action{})
#endif
