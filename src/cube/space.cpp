#include "cube/space.h"

#include <cassert>
#include <limits>
#include <sstream>

namespace picola {

CubeSpace::CubeSpace(std::vector<int> parts) : parts_(std::move(parts)) {
  offsets_.reserve(parts_.size());
  int off = 0;
  for (int p : parts_) {
    assert(p >= 1 && "every variable needs at least one part");
    offsets_.push_back(off);
    off += p;
  }
  total_parts_ = off;
}

CubeSpace CubeSpace::binary(int nvars) {
  return CubeSpace(std::vector<int>(static_cast<size_t>(nvars), 2));
}

CubeSpace CubeSpace::multi_valued(std::vector<int> part_counts) {
  return CubeSpace(std::move(part_counts));
}

CubeSpace CubeSpace::fsm_layout(int n_binary, int mv_parts, int out_parts) {
  std::vector<int> parts(static_cast<size_t>(n_binary), 2);
  int mv_var = -1;
  int out_var = -1;
  if (mv_parts > 0) {
    mv_var = static_cast<int>(parts.size());
    parts.push_back(mv_parts);
  }
  if (out_parts > 0) {
    out_var = static_cast<int>(parts.size());
    parts.push_back(out_parts);
  }
  CubeSpace s(std::move(parts));
  s.mv_var_ = mv_var;
  s.output_var_ = out_var;
  return s;
}

uint64_t CubeSpace::num_minterms() const {
  constexpr uint64_t kCap = uint64_t{1} << 62;
  uint64_t n = 1;
  for (int p : parts_) {
    if (n > kCap / static_cast<uint64_t>(p)) return kCap;
    n *= static_cast<uint64_t>(p);
  }
  return n;
}

std::string CubeSpace::to_string() const {
  std::ostringstream os;
  os << '[';
  for (int v = 0; v < num_vars(); ++v) {
    if (v) os << ',';
    if (v == mv_var_) os << "mv:";
    if (v == output_var_) os << "out:";
    os << parts_[v];
  }
  os << ']';
  return os.str();
}

}  // namespace picola
