#pragma once
// Positional-notation cube over a CubeSpace.
//
// A cube stores one bit per part of every variable: bit set means the part
// (value) is present in the literal.  A full literal (all parts set) is a
// don't-care on that variable; an empty literal makes the cube empty.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cube/space.h"

namespace picola {

/// One product term in positional (multi-valued) cube notation.
///
/// Cubes are plain bit vectors; operations that need variable structure
/// take the CubeSpace as a parameter.  All cubes passed to an operation
/// must belong to the same space — this is asserted, not checked at
/// runtime in release builds.
class Cube {
 public:
  Cube() = default;

  /// All-zero cube (empty literal in every variable).  Rarely useful on its
  /// own; mostly a building block.
  static Cube zeros(const CubeSpace& s);

  /// Universe cube: every part of every variable set (all don't-cares).
  static Cube full(const CubeSpace& s);

  /// Cube covering exactly one minterm; `values[v]` selects the part of
  /// variable `v`.
  static Cube minterm(const CubeSpace& s, const std::vector<int>& values);

  int num_words() const { return static_cast<int>(words_.size()); }
  uint64_t word(int i) const { return words_[static_cast<size_t>(i)]; }

  bool test(const CubeSpace& s, int var, int part) const {
    int b = s.offset(var) + part;
    return (words_[static_cast<size_t>(b >> 6)] >> (b & 63)) & 1u;
  }
  void set(const CubeSpace& s, int var, int part, bool value = true) {
    int b = s.offset(var) + part;
    uint64_t mask = uint64_t{1} << (b & 63);
    if (value)
      words_[static_cast<size_t>(b >> 6)] |= mask;
    else
      words_[static_cast<size_t>(b >> 6)] &= ~mask;
  }

  /// Set every part of `var`.
  void set_var_full(const CubeSpace& s, int var);
  /// Clear every part of `var`.
  void clear_var(const CubeSpace& s, int var);

  /// Number of parts set in `var`'s literal.
  int var_popcount(const CubeSpace& s, int var) const;
  bool var_full(const CubeSpace& s, int var) const {
    return var_popcount(s, var) == s.parts(var);
  }
  bool var_empty(const CubeSpace& s, int var) const {
    return var_popcount(s, var) == 0;
  }

  /// --- Binary-variable helpers (var must have two parts) ---
  /// Value of a binary variable: 0, 1, or 2 for don't-care ('-'), 3 for
  /// empty.
  int binary_value(const CubeSpace& s, int var) const;
  /// Set a binary variable to 0, 1 or (value==2) don't-care.
  void set_binary(const CubeSpace& s, int var, int value);

  /// True when this cube's parts are a superset of `other`'s — i.e. this
  /// cube contains (covers) `other`.
  bool contains(const Cube& other) const;

  /// True when some variable's literal is empty (the cube denotes no
  /// minterm).
  bool is_empty(const CubeSpace& s) const;

  /// Number of variables in which the two cubes' literals are disjoint.
  /// distance == 0 means the cubes intersect.
  int distance(const Cube& other, const CubeSpace& s) const;

  /// Part-wise AND.  The result may be an empty cube (check is_empty()).
  Cube intersect(const Cube& other) const;

  /// Part-wise OR: smallest cube containing both.
  Cube supercube(const Cube& other) const;

  /// ESPRESSO cofactor of this cube against `c`; nullopt when the cubes do
  /// not intersect.  Result has, in every variable, `this | ~c`.
  std::optional<Cube> cofactor(const Cube& c, const CubeSpace& s) const;

  /// Number of minterms this cube covers (product of literal popcounts);
  /// saturates like CubeSpace::num_minterms().
  uint64_t num_minterms(const CubeSpace& s) const;

  /// True when the cube covers the given minterm.
  bool covers_minterm(const CubeSpace& s, const std::vector<int>& values) const;

  bool operator==(const Cube& o) const { return words_ == o.words_; }
  bool operator!=(const Cube& o) const { return words_ != o.words_; }
  /// Lexicographic order on the raw words; used for canonicalisation.
  bool operator<(const Cube& o) const { return words_ < o.words_; }

  /// Printable form: binary variables as 0/1/-, multi-valued variables as
  /// a part bitstring, variables separated by spaces.
  std::string to_string(const CubeSpace& s) const;

 private:
  explicit Cube(int num_words) : words_(static_cast<size_t>(num_words), 0) {}

  std::vector<uint64_t> words_;
};

}  // namespace picola
