#include "cube/algebra.h"

namespace picola {

Cover sharp(const Cube& a, const Cube& b, const CubeSpace& s) {
  Cover out(s);
  if (a.distance(b, s) != 0) {  // disjoint: nothing removed
    out.add(a);
    return out;
  }
  if (b.contains(a)) return out;  // fully removed
  // One cube per variable where b restricts a: a with that literal
  // reduced to (a_v & ~b_v).
  for (int v = 0; v < s.num_vars(); ++v) {
    Cube c = a;
    bool nonempty = false;
    for (int p = 0; p < s.parts(v); ++p) {
      bool keep = a.test(s, v, p) && !b.test(s, v, p);
      c.set(s, v, p, keep);
      nonempty |= keep;
    }
    if (nonempty) out.add(std::move(c));
  }
  out.remove_contained();
  return out;
}

Cover disjoint_sharp(const Cube& a, const Cube& b, const CubeSpace& s) {
  Cover out(s);
  if (a.distance(b, s) != 0) {
    out.add(a);
    return out;
  }
  if (b.contains(a)) return out;
  // Peel one variable at a time: the piece outside b in variable v, with
  // the earlier variables already clamped to b (making pieces disjoint).
  Cube rest = a;
  for (int v = 0; v < s.num_vars(); ++v) {
    Cube piece = rest;
    bool nonempty = false;
    for (int p = 0; p < s.parts(v); ++p) {
      bool keep = rest.test(s, v, p) && !b.test(s, v, p);
      piece.set(s, v, p, keep);
      nonempty |= keep;
    }
    if (nonempty) out.add(std::move(piece));
    // Clamp variable v to b for the remaining pieces.
    for (int p = 0; p < s.parts(v); ++p)
      rest.set(s, v, p, rest.test(s, v, p) && b.test(s, v, p));
    if (rest.is_empty(s)) break;
  }
  return out;
}

std::optional<Cube> consensus(const Cube& a, const Cube& b,
                              const CubeSpace& s) {
  int d = a.distance(b, s);
  if (d > 1) return std::nullopt;
  Cube x = a.intersect(b);
  if (d == 0) return std::nullopt;  // overlapping cubes: no consensus var
  // The single conflicting variable gets the union literal.
  Cube c = x;
  for (int v = 0; v < s.num_vars(); ++v) {
    if (!x.var_empty(s, v)) continue;
    for (int p = 0; p < s.parts(v); ++p)
      c.set(s, v, p, a.test(s, v, p) || b.test(s, v, p));
  }
  if (c.is_empty(s)) return std::nullopt;
  return c;
}

Cover cover_intersect(const Cover& f, const Cover& g) {
  const CubeSpace& s = f.space();
  Cover out(s);
  for (const Cube& a : f.cubes()) {
    for (const Cube& b : g.cubes()) {
      Cube x = a.intersect(b);
      if (!x.is_empty(s)) out.add(std::move(x));
    }
  }
  out.remove_contained();
  return out;
}

Cover cover_sharp(const Cover& f, const Cover& g) {
  const CubeSpace& s = f.space();
  Cover remaining = f;
  for (const Cube& b : g.cubes()) {
    Cover next(s);
    for (const Cube& a : remaining.cubes()) next.append(sharp(a, b, s));
    next.remove_contained();
    remaining = std::move(next);
    if (remaining.empty()) break;
  }
  return remaining;
}

Cover make_disjoint(const Cover& f) {
  const CubeSpace& s = f.space();
  Cover out(s);
  for (const Cube& c : f.cubes()) {
    // c minus everything already emitted, in disjoint pieces.
    Cover pieces(s);
    pieces.add(c);
    for (const Cube& prev : out.cubes()) {
      Cover next(s);
      for (const Cube& piece : pieces.cubes())
        next.append(disjoint_sharp(piece, prev, s));
      pieces = std::move(next);
      if (pieces.empty()) break;
    }
    out.append(pieces);
  }
  return out;
}

}  // namespace picola
