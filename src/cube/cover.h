#pragma once
// A cover: a set of cubes over a shared CubeSpace (a sum-of-products form).

#include <functional>
#include <string>
#include <vector>

#include "cube/cube.h"
#include "cube/space.h"

namespace picola {

/// Sum-of-products form: an ordered list of cubes over one CubeSpace.
/// The space is carried by value (it is a small vector of ints).
class Cover {
 public:
  Cover() = default;
  explicit Cover(CubeSpace space) : space_(std::move(space)) {}
  Cover(CubeSpace space, std::vector<Cube> cubes)
      : space_(std::move(space)), cubes_(std::move(cubes)) {}

  const CubeSpace& space() const { return space_; }
  int size() const { return static_cast<int>(cubes_.size()); }
  bool empty() const { return cubes_.empty(); }

  const Cube& operator[](int i) const { return cubes_[static_cast<size_t>(i)]; }
  Cube& operator[](int i) { return cubes_[static_cast<size_t>(i)]; }

  const std::vector<Cube>& cubes() const { return cubes_; }
  std::vector<Cube>& cubes() { return cubes_; }

  void add(Cube c) { cubes_.push_back(std::move(c)); }
  void clear() { cubes_.clear(); }
  void reserve(int n) { cubes_.reserve(static_cast<size_t>(n)); }

  auto begin() const { return cubes_.begin(); }
  auto end() const { return cubes_.end(); }

  /// Append all cubes of `other` (same space required).
  void append(const Cover& other);

  /// Remove cubes that denote no minterm (an empty literal in some
  /// variable).
  void remove_empty();

  /// Single-cube containment minimisation: remove every cube contained in
  /// another single cube of the cover (and duplicate cubes).
  void remove_contained();

  /// Sort cubes in descending number of don't-care parts (espresso's usual
  /// "largest first" order), breaking ties lexicographically for
  /// determinism.
  void sort_by_size_desc(const CubeSpace& s);

  /// Total number of minterms covered — computed exactly by enumerating the
  /// space, so intended for small spaces (tests only).
  uint64_t count_minterms_exact() const;

  /// True when some cube of the cover covers the minterm.
  bool covers_minterm(const std::vector<int>& values) const;

  /// Enumerate all minterms of the space, invoking `fn` with each value
  /// vector.  Intended for small spaces (tests / exact checks).
  static void for_each_minterm(const CubeSpace& s,
                               const std::function<void(const std::vector<int>&)>& fn);

  std::string to_string() const;

 private:
  CubeSpace space_;
  std::vector<Cube> cubes_;
};

}  // namespace picola
