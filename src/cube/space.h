#pragma once
// Multi-valued cube space description.
//
// A CubeSpace describes the variables of a positional-notation cube:
// every variable has a number of "parts" (values).  A binary variable has
// two parts (part 0 = literal value 0, part 1 = literal value 1).  A
// symbolic variable over n symbols has n parts (one-hot positional
// notation).  A multi-output function is modelled, as in ESPRESSO-II, by a
// final multi-valued "output variable" with one part per output.

#include <cstdint>
#include <string>
#include <vector>

namespace picola {

/// Immutable description of the variables (and their part counts) over
/// which cubes and covers are defined.
class CubeSpace {
 public:
  CubeSpace() = default;

  /// Space of `nvars` binary variables (two parts each).
  static CubeSpace binary(int nvars);

  /// General multi-valued space; `part_counts[v]` is the number of parts of
  /// variable `v`.  Every count must be >= 1.
  static CubeSpace multi_valued(std::vector<int> part_counts);

  /// Convenience: `n_binary` binary input variables, optionally followed by
  /// one multi-valued input variable with `mv_parts` parts (skipped when
  /// `mv_parts == 0`), optionally followed by an output variable with
  /// `out_parts` parts (skipped when `out_parts == 0`).  This is the layout
  /// used by symbolic FSM covers.  The index of the MV/output variable can
  /// be recovered with mv_var()/output_var().
  static CubeSpace fsm_layout(int n_binary, int mv_parts, int out_parts);

  int num_vars() const { return static_cast<int>(parts_.size()); }
  int parts(int var) const { return parts_[var]; }
  int offset(int var) const { return offsets_[var]; }
  int total_parts() const { return total_parts_; }
  /// Number of 64-bit words needed to store one cube.
  int num_words() const { return (total_parts_ + 63) / 64; }

  /// True when variable `var` has exactly two parts.
  bool is_binary(int var) const { return parts_[var] == 2; }

  /// Index of the multi-valued symbolic variable in an fsm_layout() space,
  /// or -1 when the space was not built with one.
  int mv_var() const { return mv_var_; }
  /// Index of the output variable in an fsm_layout() space, or -1.
  int output_var() const { return output_var_; }

  bool operator==(const CubeSpace& o) const {
    return parts_ == o.parts_ && mv_var_ == o.mv_var_ &&
           output_var_ == o.output_var_;
  }
  bool operator!=(const CubeSpace& o) const { return !(*this == o); }

  /// Total number of minterms in the space (product of part counts).
  /// Saturates at ~2^62 to avoid overflow on very large spaces.
  uint64_t num_minterms() const;

  /// Human-readable summary, e.g. "[2,2,2 | mv:5 | out:3]".
  std::string to_string() const;

 private:
  explicit CubeSpace(std::vector<int> parts);

  std::vector<int> parts_;
  std::vector<int> offsets_;
  int total_parts_ = 0;
  int mv_var_ = -1;
  int output_var_ = -1;
};

}  // namespace picola
