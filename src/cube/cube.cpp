#include "cube/cube.h"

#include <bit>
#include <cassert>
#include <sstream>

namespace picola {

namespace {
// Iterate over the words overlapped by variable `var`, calling
// fn(word_index, mask_of_var_bits_in_that_word).
template <typename Fn>
void for_var_words(const CubeSpace& s, int var, Fn&& fn) {
  int lo = s.offset(var);
  int hi = lo + s.parts(var);  // exclusive
  for (int w = lo >> 6; w <= (hi - 1) >> 6; ++w) {
    int wlo = w << 6;
    int from = std::max(lo, wlo) - wlo;
    int to = std::min(hi, wlo + 64) - wlo;  // exclusive, 1..64
    uint64_t mask = (to == 64) ? ~uint64_t{0} : ((uint64_t{1} << to) - 1);
    mask &= ~((uint64_t{1} << from) - 1);
    fn(w, mask);
  }
}
}  // namespace

Cube Cube::zeros(const CubeSpace& s) { return Cube(s.num_words()); }

Cube Cube::full(const CubeSpace& s) {
  Cube c(s.num_words());
  int n = s.total_parts();
  for (int w = 0; w < c.num_words(); ++w) {
    int bits = std::min(64, n - (w << 6));
    c.words_[static_cast<size_t>(w)] =
        bits == 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
  }
  return c;
}

Cube Cube::minterm(const CubeSpace& s, const std::vector<int>& values) {
  assert(static_cast<int>(values.size()) == s.num_vars());
  Cube c(s.num_words());
  for (int v = 0; v < s.num_vars(); ++v) {
    assert(values[v] >= 0 && values[v] < s.parts(v));
    c.set(s, v, values[v]);
  }
  return c;
}

void Cube::set_var_full(const CubeSpace& s, int var) {
  for_var_words(s, var,
                [&](int w, uint64_t m) { words_[static_cast<size_t>(w)] |= m; });
}

void Cube::clear_var(const CubeSpace& s, int var) {
  for_var_words(s, var,
                [&](int w, uint64_t m) { words_[static_cast<size_t>(w)] &= ~m; });
}

int Cube::var_popcount(const CubeSpace& s, int var) const {
  int n = 0;
  for_var_words(s, var, [&](int w, uint64_t m) {
    n += std::popcount(words_[static_cast<size_t>(w)] & m);
  });
  return n;
}

int Cube::binary_value(const CubeSpace& s, int var) const {
  assert(s.is_binary(var));
  bool p0 = test(s, var, 0);
  bool p1 = test(s, var, 1);
  if (p0 && p1) return 2;
  if (p1) return 1;
  if (p0) return 0;
  return 3;
}

void Cube::set_binary(const CubeSpace& s, int var, int value) {
  assert(s.is_binary(var));
  set(s, var, 0, value == 0 || value == 2);
  set(s, var, 1, value == 1 || value == 2);
}

bool Cube::contains(const Cube& other) const {
  for (size_t w = 0; w < words_.size(); ++w)
    if (other.words_[w] & ~words_[w]) return false;
  return true;
}

bool Cube::is_empty(const CubeSpace& s) const {
  for (int v = 0; v < s.num_vars(); ++v)
    if (var_empty(s, v)) return true;
  return false;
}

int Cube::distance(const Cube& other, const CubeSpace& s) const {
  Cube x = intersect(other);
  int d = 0;
  for (int v = 0; v < s.num_vars(); ++v)
    if (x.var_empty(s, v)) ++d;
  return d;
}

Cube Cube::intersect(const Cube& other) const {
  Cube r = *this;
  for (size_t w = 0; w < words_.size(); ++w) r.words_[w] &= other.words_[w];
  return r;
}

Cube Cube::supercube(const Cube& other) const {
  Cube r = *this;
  for (size_t w = 0; w < words_.size(); ++w) r.words_[w] |= other.words_[w];
  return r;
}

std::optional<Cube> Cube::cofactor(const Cube& c, const CubeSpace& s) const {
  if (distance(c, s) != 0) return std::nullopt;
  Cube full = Cube::full(s);
  Cube r = *this;
  for (size_t w = 0; w < words_.size(); ++w)
    r.words_[w] |= full.words_[w] & ~c.words_[w];
  return r;
}

uint64_t Cube::num_minterms(const CubeSpace& s) const {
  constexpr uint64_t kCap = uint64_t{1} << 62;
  uint64_t n = 1;
  for (int v = 0; v < s.num_vars(); ++v) {
    uint64_t p = static_cast<uint64_t>(var_popcount(s, v));
    if (p == 0) return 0;
    if (n > kCap / p) return kCap;
    n *= p;
  }
  return n;
}

bool Cube::covers_minterm(const CubeSpace& s,
                          const std::vector<int>& values) const {
  assert(static_cast<int>(values.size()) == s.num_vars());
  for (int v = 0; v < s.num_vars(); ++v)
    if (!test(s, v, values[v])) return false;
  return true;
}

std::string Cube::to_string(const CubeSpace& s) const {
  std::ostringstream os;
  for (int v = 0; v < s.num_vars(); ++v) {
    if (v) os << ' ';
    if (s.is_binary(v)) {
      static const char* sym[] = {"0", "1", "-", "~"};
      os << sym[binary_value(s, v)];
    } else {
      for (int p = 0; p < s.parts(v); ++p) os << (test(s, v, p) ? '1' : '0');
    }
  }
  return os.str();
}

}  // namespace picola
