#include "cube/cover.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace picola {

void Cover::append(const Cover& other) {
  assert(space_ == other.space_);
  cubes_.insert(cubes_.end(), other.cubes_.begin(), other.cubes_.end());
}

void Cover::remove_empty() {
  cubes_.erase(std::remove_if(cubes_.begin(), cubes_.end(),
                              [&](const Cube& c) { return c.is_empty(space_); }),
               cubes_.end());
}

void Cover::remove_contained() {
  // Sort so that bigger cubes come first; a cube can then only be contained
  // by one appearing earlier.
  sort_by_size_desc(space_);
  std::vector<Cube> kept;
  kept.reserve(cubes_.size());
  for (const Cube& c : cubes_) {
    bool contained = false;
    for (const Cube& k : kept) {
      if (k.contains(c)) {
        contained = true;
        break;
      }
    }
    if (!contained) kept.push_back(c);
  }
  cubes_ = std::move(kept);
}

void Cover::sort_by_size_desc(const CubeSpace& s) {
  std::stable_sort(cubes_.begin(), cubes_.end(),
                   [&](const Cube& a, const Cube& b) {
                     uint64_t ma = a.num_minterms(s);
                     uint64_t mb = b.num_minterms(s);
                     if (ma != mb) return ma > mb;
                     return a < b;
                   });
}

void Cover::for_each_minterm(
    const CubeSpace& s, const std::function<void(const std::vector<int>&)>& fn) {
  std::vector<int> vals(static_cast<size_t>(s.num_vars()), 0);
  if (s.num_vars() == 0) {
    fn(vals);
    return;
  }
  while (true) {
    fn(vals);
    int v = s.num_vars() - 1;
    while (v >= 0) {
      if (++vals[static_cast<size_t>(v)] < s.parts(v)) break;
      vals[static_cast<size_t>(v)] = 0;
      --v;
    }
    if (v < 0) break;
  }
}

uint64_t Cover::count_minterms_exact() const {
  uint64_t n = 0;
  for_each_minterm(space_, [&](const std::vector<int>& vals) {
    if (covers_minterm(vals)) ++n;
  });
  return n;
}

bool Cover::covers_minterm(const std::vector<int>& values) const {
  for (const Cube& c : cubes_)
    if (c.covers_minterm(space_, values)) return true;
  return false;
}

std::string Cover::to_string() const {
  std::ostringstream os;
  for (const Cube& c : cubes_) os << c.to_string(space_) << '\n';
  return os.str();
}

}  // namespace picola
