#pragma once
// Classical cube-algebra operations beyond the basics on Cube/Cover:
// sharp, disjoint sharp, consensus, and cover-level intersection/sharp.
// These are the textbook primitives (Dietmeyer / ESPRESSO-II, ch. 3); the
// minimiser uses faster special-cased routines internally, but the library
// exposes the full algebra for clients and for cross-checking.

#include <optional>

#include "cube/cover.h"

namespace picola {

/// a # b: cover of the points of `a` not in `b`.  Empty when b contains a.
Cover sharp(const Cube& a, const Cube& b, const CubeSpace& s);

/// Disjoint sharp: like sharp() but the result cubes are pairwise
/// disjoint (the classic recursive peeling).
Cover disjoint_sharp(const Cube& a, const Cube& b, const CubeSpace& s);

/// Consensus of two cubes: their largest "bridging" implicant, defined
/// when the cubes conflict in exactly one variable (the classical
/// distance-1 consensus); nullopt otherwise.
std::optional<Cube> consensus(const Cube& a, const Cube& b,
                              const CubeSpace& s);

/// Pairwise intersection of two covers (empty cubes dropped).
Cover cover_intersect(const Cover& f, const Cover& g);

/// F # G: points of `f` not covered by `g`.
Cover cover_sharp(const Cover& f, const Cover& g);

/// Disjoint-cube representation of a cover (pairwise-disjoint cubes with
/// the same minterm set).
Cover make_disjoint(const Cover& f);

}  // namespace picola
