// The ESPRESSO-II improvement loop.

#include "espresso/espresso.h"

namespace picola::esp {

EspressoResult minimize(const Cover& F_in, const Cover& D, const EspressoOptions& opt) {
  Cover F = F_in;
  F.remove_empty();
  F.remove_contained();
  if (F.empty()) return {F, 0};

  const Cover R = complement_fd(F, D);

  F = expand(std::move(F), R);
  F = irredundant(std::move(F), D);

  Cover E(F.space());
  Cover D2 = D;
  if (opt.use_essentials && !opt.single_pass) {
    auto [ess, rest] = essential_split(F, D);
    E = std::move(ess);
    F = std::move(rest);
    D2.append(E);
  }

  int iters = 0;
  if (!opt.single_pass) {
    Cover best = F;
    for (; iters < opt.max_iterations; ++iters) {
      int before = F.size();
      F = reduce(std::move(F), D2);
      F = expand(std::move(F), R);
      F = irredundant(std::move(F), D2);
      if (F.size() < best.size()) best = F;
      if (F.size() >= before) {
        if (opt.use_last_gasp) {
          Cover gasp = last_gasp(F, D2, R);
          if (gasp.size() < F.size()) {
            F = std::move(gasp);
            if (F.size() < best.size()) best = F;
            continue;  // the stall is broken; keep iterating
          }
        }
        break;
      }
    }
    F = std::move(best);
  }

  F.append(E);
  F.remove_contained();
  return {std::move(F), iters};
}

}  // namespace picola::esp
