// Equivalence checking between covers (used by tests and by the state
// assignment tool's self-checks).

#include "espresso/espresso.h"

namespace picola::esp {

bool equivalent(const Cover& F1, const Cover& F2, const Cover& D) {
  Cover a = F1;
  a.append(D);
  Cover b = F2;
  b.append(D);
  return cover_contains_cover(b, F1) && cover_contains_cover(a, F2);
}

}  // namespace picola::esp
