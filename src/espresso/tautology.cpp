// Recursive multi-valued tautology check with unate shortcuts.

#include "espresso/espresso.h"

namespace picola::esp {
namespace {

using detail::nonfull_literal_union;
using detail::part_cube;
using detail::select_split_var;

bool taut_rec(const Cover& F) {
  const CubeSpace& s = F.space();
  if (F.empty()) return false;

  // A full cube covers everything.
  const Cube full = Cube::full(s);
  for (const Cube& c : F.cubes())
    if (c == full) return true;

  // Column check: if some part of some variable is covered by no cube at
  // all, a minterm with that value is uncovered.
  {
    Cube col_or = Cube::zeros(s);
    for (const Cube& c : F.cubes()) col_or = col_or.supercube(c);
    if (col_or != full) return false;
  }

  // Unate reduction: if some part p of variable v is contained in no
  // non-full literal, then the cofactor against v=p keeps only full-literal
  // cubes and is contained in every other cofactor of v; tautology reduces
  // to that single branch.
  for (int v = 0; v < s.num_vars(); ++v) {
    std::vector<bool> u = nonfull_literal_union(F, v);
    bool active = false;
    for (const Cube& c : F.cubes())
      if (!c.var_full(s, v)) {
        active = true;
        break;
      }
    if (!active) continue;
    for (int p = 0; p < s.parts(v); ++p) {
      if (!u[static_cast<size_t>(p)]) {
        return taut_rec(cofactor(F, part_cube(s, v, p)));
      }
    }
  }

  // Single active variable: tautology iff the literal union is full, which
  // the column check above already established.  Detect the case to avoid
  // useless splitting.
  {
    int active_vars = 0;
    for (int v = 0; v < s.num_vars(); ++v) {
      for (const Cube& c : F.cubes()) {
        if (!c.var_full(s, v)) {
          ++active_vars;
          break;
        }
      }
    }
    if (active_vars <= 1) return true;
  }

  // Shannon split on the most binate variable.
  int v = select_split_var(F);
  if (v < 0) return true;  // all cubes full (handled above, defensive)
  for (int p = 0; p < s.parts(v); ++p) {
    if (!taut_rec(cofactor(F, part_cube(s, v, p)))) return false;
  }
  return true;
}

}  // namespace

bool is_tautology(const Cover& F) { return taut_rec(F); }

}  // namespace picola::esp
