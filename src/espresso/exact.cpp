#include "espresso/exact.h"

#include <algorithm>

#include "espresso/espresso.h"

namespace picola::esp {

namespace {

/// Consensus of two cubes at variable `v`: intersection everywhere else,
/// union at `v`.  Returns an empty optional when the cubes conflict in some
/// other variable (the consensus would be void).
std::optional<Cube> consensus_at(const Cube& a, const Cube& b, int v,
                                 const CubeSpace& s) {
  Cube x = a.intersect(b);
  for (int u = 0; u < s.num_vars(); ++u) {
    if (u == v) continue;
    if (x.var_empty(s, u)) return std::nullopt;
  }
  Cube c = x;
  // var v := a_v ∪ b_v
  for (int p = 0; p < s.parts(v); ++p)
    c.set(s, v, p, a.test(s, v, p) || b.test(s, v, p));
  if (c.is_empty(s)) return std::nullopt;
  return c;
}

}  // namespace

Cover all_primes(const Cover& F, const Cover& D) {
  // Blake canonical form by iterated consensus + absorption.  Correct for
  // multi-valued positional covers; intended for small functions.
  Cover g = F;
  g.append(D);
  g.remove_empty();
  g.remove_contained();
  const CubeSpace& s = g.space();

  bool changed = true;
  while (changed) {
    changed = false;
    const int n = g.size();
    std::vector<Cube> fresh;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (g[i].distance(g[j], s) > 1) continue;
        for (int v = 0; v < s.num_vars(); ++v) {
          auto c = consensus_at(g[i], g[j], v, s);
          if (!c) continue;
          bool contained = false;
          for (const Cube& k : g.cubes()) {
            if (k.contains(*c)) {
              contained = true;
              break;
            }
          }
          if (!contained) {
            for (const Cube& k : fresh) {
              if (k.contains(*c)) {
                contained = true;
                break;
              }
            }
          }
          if (!contained) fresh.push_back(*c);
        }
      }
    }
    if (!fresh.empty()) {
      for (Cube& c : fresh) g.add(std::move(c));
      g.remove_contained();
      changed = true;
    }
  }
  return g;
}

namespace {

struct CoverSearch {
  const std::vector<std::vector<int>>& covers_of;  // minterm -> prime ids
  long nodes = 0;
  long max_nodes;
  int best;
  std::vector<int> best_pick;
  std::vector<int> pick;
  std::vector<int> cover_count;  // minterm -> how many picked primes cover it
  const std::vector<std::vector<int>>& minterms_of;  // prime -> minterm ids

  CoverSearch(const std::vector<std::vector<int>>& co,
              const std::vector<std::vector<int>>& mo, long budget)
      : covers_of(co),
        max_nodes(budget),
        best(static_cast<int>(mo.size()) + 1),
        cover_count(co.size(), 0),
        minterms_of(mo) {}

  bool exhausted() const { return nodes > max_nodes; }

  /// Lower bound: greedy maximal set of uncovered minterms no two of which
  /// share a prime.
  int lower_bound() const {
    std::vector<bool> blocked(minterms_of.size(), false);
    int lb = 0;
    for (size_t m = 0; m < covers_of.size(); ++m) {
      if (cover_count[m] > 0) continue;
      bool ok = true;
      for (int p : covers_of[m]) {
        if (blocked[static_cast<size_t>(p)]) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      ++lb;
      for (int p : covers_of[m]) blocked[static_cast<size_t>(p)] = true;
    }
    return lb;
  }

  void run() {
    ++nodes;
    if (exhausted()) return;
    // Find the uncovered minterm with the fewest candidate primes.
    int target = -1;
    size_t fewest = ~size_t{0};
    for (size_t m = 0; m < covers_of.size(); ++m) {
      if (cover_count[m] > 0) continue;
      if (covers_of[m].size() < fewest) {
        fewest = covers_of[m].size();
        target = static_cast<int>(m);
      }
    }
    if (target < 0) {
      if (static_cast<int>(pick.size()) < best) {
        best = static_cast<int>(pick.size());
        best_pick = pick;
      }
      return;
    }
    if (static_cast<int>(pick.size()) + lower_bound() >= best) return;
    for (int p : covers_of[static_cast<size_t>(target)]) {
      pick.push_back(p);
      for (int m : minterms_of[static_cast<size_t>(p)]) ++cover_count[static_cast<size_t>(m)];
      run();
      for (int m : minterms_of[static_cast<size_t>(p)]) --cover_count[static_cast<size_t>(m)];
      pick.pop_back();
      if (exhausted()) return;
    }
  }
};

}  // namespace

std::optional<Cover> exact_minimize(const Cover& F, const Cover& D,
                                    const ExactMinimizeOptions& opt) {
  const CubeSpace& s = F.space();
  Cover f = F;
  f.remove_empty();
  if (f.empty()) return Cover(s);
  if (s.num_minterms() > (uint64_t{1} << 20)) return std::nullopt;

  Cover primes = all_primes(f, D);

  // Covering universe: onset minterms outside the dc-set.
  std::vector<std::vector<int>> minterm_values;
  Cover::for_each_minterm(s, [&](const std::vector<int>& mt) {
    if (f.covers_minterm(mt) && !D.covers_minterm(mt))
      minterm_values.push_back(mt);
  });

  std::vector<std::vector<int>> covers_of(minterm_values.size());
  std::vector<std::vector<int>> minterms_of(static_cast<size_t>(primes.size()));
  for (size_t m = 0; m < minterm_values.size(); ++m) {
    for (int p = 0; p < primes.size(); ++p) {
      if (primes[p].covers_minterm(s, minterm_values[m])) {
        covers_of[m].push_back(p);
        minterms_of[static_cast<size_t>(p)].push_back(static_cast<int>(m));
      }
    }
  }

  CoverSearch search(covers_of, minterms_of, opt.max_nodes);
  search.run();
  if (search.exhausted()) return std::nullopt;

  Cover out(s);
  std::vector<int> sorted = search.best_pick;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (int p : sorted) out.add(primes[p]);
  return out;
}

}  // namespace picola::esp
