#include <cassert>

#include "espresso/espresso.h"

namespace picola::esp {

Cover cofactor(const Cover& F, const Cube& c) {
  Cover r(F.space());
  r.reserve(F.size());
  for (const Cube& f : F.cubes()) {
    auto cf = f.cofactor(c, F.space());
    if (cf) r.add(std::move(*cf));
  }
  return r;
}

bool cover_contains_cube(const Cover& F, const Cube& c) {
  return is_tautology(cofactor(F, c));
}

bool cover_contains_cover(const Cover& F, const Cover& G) {
  for (const Cube& g : G.cubes())
    if (!cover_contains_cube(F, g)) return false;
  return true;
}

bool disjoint(const Cover& F, const Cover& R) {
  const CubeSpace& s = F.space();
  for (const Cube& f : F.cubes())
    for (const Cube& r : R.cubes())
      if (f.distance(r, s) == 0) return false;
  return true;
}

namespace detail {

int select_split_var(const Cover& F) {
  const CubeSpace& s = F.space();
  int best = -1;
  int best_count = 0;
  for (int v = 0; v < s.num_vars(); ++v) {
    int count = 0;
    for (const Cube& c : F.cubes())
      if (!c.var_full(s, v)) ++count;
    if (count > best_count) {
      best_count = count;
      best = v;
    }
  }
  return best;
}

std::vector<bool> nonfull_literal_union(const Cover& F, int var) {
  const CubeSpace& s = F.space();
  std::vector<bool> u(static_cast<size_t>(s.parts(var)), false);
  for (const Cube& c : F.cubes()) {
    if (c.var_full(s, var)) continue;
    for (int p = 0; p < s.parts(var); ++p)
      if (c.test(s, var, p)) u[static_cast<size_t>(p)] = true;
  }
  return u;
}

Cube part_cube(const CubeSpace& s, int var, int p) {
  Cube c = Cube::full(s);
  c.clear_var(s, var);
  c.set(s, var, p);
  return c;
}

}  // namespace detail
}  // namespace picola::esp
