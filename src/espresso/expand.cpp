// EXPAND: raise cubes to primes against the off-set, covering and removing
// other cubes of the cover along the way.
//
// Per-cube expansion keeps, for every off-set cube, the bitmask of
// variables in which it is disjoint from the growing cube ("empty
// variables").  A part raise is legal iff no off-set cube at distance one
// would reach distance zero.  The covering heuristic scores candidate parts
// by how many still-uncovered cover cubes assert them; the score table is
// computed once per expansion, which is a close and much cheaper
// approximation of ESPRESSO's per-raise bookkeeping.

#include <algorithm>
#include <bit>
#include <cassert>

#include "espresso/espresso.h"

namespace picola::esp {
namespace {

Cube expand_one(Cube c, const Cover& R, const Cover& F,
                const std::vector<bool>& covered, int self) {
  const CubeSpace& s = R.space();
  const int nvars = s.num_vars();
  assert(nvars <= 64 && "expand uses a 64-bit variable mask");

  std::vector<uint64_t> empty_mask(static_cast<size_t>(R.size()), 0);
  std::vector<int> dist(static_cast<size_t>(R.size()), 0);
  std::vector<int> dist1;  // indices of off-set cubes at distance one
  for (int r = 0; r < R.size(); ++r) {
    uint64_t m = 0;
    Cube x = c.intersect(R[r]);
    for (int v = 0; v < nvars; ++v) {
      if (x.var_empty(s, v)) m |= uint64_t{1} << v;
    }
    empty_mask[static_cast<size_t>(r)] = m;
    int d = std::popcount(m);
    dist[static_cast<size_t>(r)] = d;
    assert(d >= 1 && "cube intersects off-set");
    if (d == 1) dist1.push_back(r);
  }

  // Covering-potential score per part, over currently uncovered cubes.
  std::vector<std::vector<long>> score(static_cast<size_t>(nvars));
  for (int v = 0; v < nvars; ++v)
    score[static_cast<size_t>(v)].assign(static_cast<size_t>(s.parts(v)), 0);
  for (int j = 0; j < F.size(); ++j) {
    if (j == self || covered[static_cast<size_t>(j)]) continue;
    for (int v = 0; v < nvars; ++v)
      for (int p = 0; p < s.parts(v); ++p)
        if (F[j].test(s, v, p)) ++score[static_cast<size_t>(v)][static_cast<size_t>(p)];
  }

  while (true) {
    int best_v = -1, best_p = -1;
    long best_score = -1;
    for (int v = 0; v < nvars; ++v) {
      for (int p = 0; p < s.parts(v); ++p) {
        if (c.test(s, v, p)) continue;
        bool blocked = false;
        for (int r : dist1) {
          if (empty_mask[static_cast<size_t>(r)] == (uint64_t{1} << v) &&
              R[r].test(s, v, p)) {
            blocked = true;
            break;
          }
        }
        if (blocked) continue;
        long sc = score[static_cast<size_t>(v)][static_cast<size_t>(p)];
        if (sc > best_score) {
          best_score = sc;
          best_v = v;
          best_p = p;
        }
      }
    }
    if (best_v < 0) break;  // prime: every free part is blocked
    c.set(s, best_v, best_p);
    // Off-set cubes asserting this part may lose their emptiness in best_v.
    uint64_t bit = uint64_t{1} << best_v;
    for (int r = 0; r < R.size(); ++r) {
      if ((empty_mask[static_cast<size_t>(r)] & bit) &&
          R[r].test(s, best_v, best_p)) {
        empty_mask[static_cast<size_t>(r)] &= ~bit;
        int d = --dist[static_cast<size_t>(r)];
        assert(d >= 1);
        if (d == 1) dist1.push_back(r);
      }
    }
  }
  return c;
}

}  // namespace

Cover expand(Cover F, const Cover& R) {
  const CubeSpace& s = F.space();
  // Expand the smallest cubes first: they are the hardest to cover and
  // their primes tend to swallow the rest.
  std::stable_sort(F.cubes().begin(), F.cubes().end(),
                   [&](const Cube& a, const Cube& b) {
                     uint64_t ma = a.num_minterms(s);
                     uint64_t mb = b.num_minterms(s);
                     if (ma != mb) return ma < mb;
                     return a < b;
                   });
  std::vector<bool> covered(static_cast<size_t>(F.size()), false);
  for (int i = 0; i < F.size(); ++i) {
    if (covered[static_cast<size_t>(i)]) continue;
    Cube prime = expand_one(F[i], R, F, covered, i);
    for (int j = 0; j < F.size(); ++j) {
      if (j == i || covered[static_cast<size_t>(j)]) continue;
      if (prime.contains(F[j])) covered[static_cast<size_t>(j)] = true;
    }
    F[i] = std::move(prime);
  }
  Cover out(s);
  out.reserve(F.size());
  for (int i = 0; i < F.size(); ++i)
    if (!covered[static_cast<size_t>(i)]) out.add(F[i]);
  out.remove_contained();
  return out;
}

}  // namespace picola::esp
