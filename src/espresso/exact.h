#pragma once
// Exact two-level minimisation (the QM / espresso-exact flow):
// generate all prime implicants by recursive complementation-free
// expansion (unate-recursive prime generation), extract essentials, and
// solve the remaining covering problem by branch and bound.
//
// Intended for small functions (tests, the constraint-evaluation oracle,
// and the exact column of the ablation benches); the covering step is
// exponential in the worst case and guarded by a node budget.

#include <optional>

#include "cube/cover.h"

namespace picola::esp {

/// All prime implicants of the function (onset F, dc-set D).
Cover all_primes(const Cover& F, const Cover& D);

struct ExactMinimizeOptions {
  /// Upper bound on branch-and-bound nodes; nullopt is returned when it is
  /// exhausted.
  long max_nodes = 1'000'000;
};

/// A minimum-cardinality prime cover of (F, D), or nullopt when the node
/// budget is exhausted.
std::optional<Cover> exact_minimize(const Cover& F, const Cover& D,
                                    const ExactMinimizeOptions& opt = {});

}  // namespace picola::esp
