// IRREDUNDANT: drop cubes covered by the remainder of the cover plus the
// dc-set.  The result is an irredundant cover of the same function.

#include <algorithm>

#include "espresso/espresso.h"

namespace picola::esp {

Cover irredundant(Cover F, const Cover& D) {
  const CubeSpace& s = F.space();
  F.remove_empty();
  F.remove_contained();
  // Try to remove small cubes first so the big primes carry the cover.
  std::stable_sort(F.cubes().begin(), F.cubes().end(),
                   [&](const Cube& a, const Cube& b) {
                     uint64_t ma = a.num_minterms(s);
                     uint64_t mb = b.num_minterms(s);
                     if (ma != mb) return ma < mb;
                     return a < b;
                   });
  std::vector<bool> removed(static_cast<size_t>(F.size()), false);
  for (int i = 0; i < F.size(); ++i) {
    Cover rest(s);
    rest.reserve(F.size() + D.size());
    for (int j = 0; j < F.size(); ++j)
      if (j != i && !removed[static_cast<size_t>(j)]) rest.add(F[j]);
    rest.append(D);
    if (cover_contains_cube(rest, F[i])) removed[static_cast<size_t>(i)] = true;
  }
  Cover out(s);
  for (int i = 0; i < F.size(); ++i)
    if (!removed[static_cast<size_t>(i)]) out.add(F[i]);
  return out;
}

}  // namespace picola::esp
