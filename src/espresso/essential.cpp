// ESSENTIAL: split a prime cover into essential and non-essential parts.
// A cube is (relatively) essential when the rest of the cover plus the
// dc-set does not cover it; with a prime cover this identifies the
// essential primes that must appear in every prime irredundant cover.

#include "espresso/espresso.h"

namespace picola::esp {

std::pair<Cover, Cover> essential_split(const Cover& F, const Cover& D) {
  const CubeSpace& s = F.space();
  Cover ess(s);
  Cover rest(s);
  for (int i = 0; i < F.size(); ++i) {
    Cover others(s);
    others.reserve(F.size() + D.size());
    for (int j = 0; j < F.size(); ++j)
      if (j != i) others.add(F[j]);
    others.append(D);
    if (cover_contains_cube(others, F[i]))
      rest.add(F[i]);
    else
      ess.add(F[i]);
  }
  return {std::move(ess), std::move(rest)};
}

}  // namespace picola::esp
