// REDUCE: replace each cube by the smallest cube covering the minterms that
// only it covers (relative to the rest of the cover plus the dc-set) — the
// classic "supercube of the complement of the cofactor" computation — and
// LASTGASP, which uses the same primitive with independent reductions.

#include <algorithm>

#include "espresso/espresso.h"

namespace picola::esp {

Cube reduce_cube_against(const Cube& c, const Cover& rest) {
  const CubeSpace& s = rest.space();
  Cover cf = cofactor(rest, c);
  cf.remove_contained();
  Cover comp = complement(cf);
  if (comp.empty()) return Cube::zeros(s);  // fully covered by the rest
  Cube sup = comp[0];
  for (int k = 1; k < comp.size(); ++k) sup = sup.supercube(comp[k]);
  return c.intersect(sup);
}

Cover reduce(Cover F, const Cover& D) {
  const CubeSpace& s = F.space();
  // Reduce the biggest cubes first; each reduction is performed against the
  // current (partially reduced) cover, as in ESPRESSO-II.
  F.sort_by_size_desc(s);
  for (int i = 0; i < F.size(); ++i) {
    Cover rest(s);
    rest.reserve(F.size() + D.size());
    for (int j = 0; j < F.size(); ++j)
      if (j != i) rest.add(F[j]);
    rest.append(D);
    F[i] = reduce_cube_against(F[i], rest);
  }
  F.remove_empty();
  return F;
}

Cover last_gasp(Cover F, const Cover& D, const Cover& R) {
  const CubeSpace& s = F.space();
  // Independent maximal reduction: every cube shrinks against the ORIGINAL
  // rest of the cover, so no reduction order effects.
  Cover reduced(s);
  reduced.reserve(F.size());
  for (int i = 0; i < F.size(); ++i) {
    Cover rest(s);
    rest.reserve(F.size() + D.size());
    for (int j = 0; j < F.size(); ++j)
      if (j != i) rest.add(F[j]);
    rest.append(D);
    Cube r = reduce_cube_against(F[i], rest);
    if (!r.is_empty(s)) reduced.add(std::move(r));
  }
  // Re-expand the reduced cubes: primes found this way can straddle the
  // cubes the sequential loop got stuck on.
  Cover raised = expand(std::move(reduced), R);
  Cover merged = F;
  merged.append(raised);
  merged.remove_contained();
  Cover candidate = irredundant(std::move(merged), D);
  return candidate.size() < F.size() ? candidate : F;
}

}  // namespace picola::esp
