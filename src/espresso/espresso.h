#pragma once
// Heuristic two-level minimisation in the style of ESPRESSO-II, operating
// on multi-valued positional-notation covers (binary logic, symbolic
// variables and multiple outputs are all instances of the same framework).
//
// The implementation follows the classic loop:
//   R = COMPLEMENT(F ∪ D); EXPAND; IRREDUNDANT; ESSENTIAL;
//   repeat { REDUCE; EXPAND; IRREDUNDANT } until no gain.
//
// All functions are deterministic.

#include <cstdint>
#include <utility>

#include "cube/cover.h"

namespace picola::esp {

/// ESPRESSO cofactor of cover `F` against cube `c`: cubes not intersecting
/// `c` are dropped, the rest get `cube | ~c` per variable.
Cover cofactor(const Cover& F, const Cube& c);

/// True when `F` covers the whole space (every minterm).
bool is_tautology(const Cover& F);

/// True when cover `F` covers every minterm of cube `c`
/// (tautology of the cofactor of `F` against `c`).
bool cover_contains_cube(const Cover& F, const Cube& c);

/// True when every cube of `G` is covered by `F`.
bool cover_contains_cover(const Cover& F, const Cover& G);

/// Complement of a single cube by De Morgan: one cube per non-full literal.
Cover complement_cube(const Cube& c, const CubeSpace& s);

/// Complement of a cover over its full space, by recursive Shannon
/// expansion with unate shortcuts.
Cover complement(const Cover& F);

/// Off-set of an (onset F, dc-set D) pair: complement(F ∪ D).
Cover complement_fd(const Cover& F, const Cover& D);

/// EXPAND: raise every cube of `F` to a prime implicant of the function
/// whose off-set is `R`, removing cubes that become covered along the way.
/// `R` must be disjoint from every cube of `F`.
Cover expand(Cover F, const Cover& R);

/// IRREDUNDANT: remove cubes covered by the rest of the cover plus the
/// dc-set `D`, leaving an irredundant cover of the same function.
Cover irredundant(Cover F, const Cover& D);

/// REDUCE: shrink each cube to the smallest cube that still covers the
/// minterms not covered by the rest of `F` plus `D` (the classic
/// "supercube of the complement of the cofactor" computation).
Cover reduce(Cover F, const Cover& D);

/// Split `F` into (essential cubes, remaining cubes).  With `F` consisting
/// of primes, the first component is the set of essential primes.
std::pair<Cover, Cover> essential_split(const Cover& F, const Cover& D);

/// Maximal reduction of a single cube against a cover (the part of `c` not
/// covered by `rest` is wrapped in the smallest containing cube).  Returns
/// an empty cube when `rest` covers `c` entirely.
Cube reduce_cube_against(const Cube& c, const Cover& rest);

/// LASTGASP (espresso's stall-breaker): reduce every cube maximally and
/// independently, re-expand the reduced cubes against `R`, and keep the
/// result if an irredundant merge beats `F`.
Cover last_gasp(Cover F, const Cover& D, const Cover& R);

/// Options for minimize().
struct EspressoOptions {
  /// Extract essential primes into the dc-set during the iteration
  /// (ESPRESSO-II's ESSEN step).
  bool use_essentials = true;
  /// Upper bound on REDUCE/EXPAND/IRREDUNDANT iterations.
  int max_iterations = 16;
  /// Run a single EXPAND+IRREDUNDANT pass only (fast, lower quality).
  bool single_pass = false;
  /// Try LASTGASP once the improvement loop stalls.
  bool use_last_gasp = true;
};

/// Result of a minimisation run.
struct EspressoResult {
  Cover cover;     ///< minimised onset cover
  int iterations;  ///< improvement-loop iterations executed
};

/// Heuristically minimise onset `F` with dc-set `D` (same space).  The
/// result covers F, avoids the off-set, and is irredundant and prime.
EspressoResult minimize(const Cover& F, const Cover& D,
                        const EspressoOptions& opt = {});

/// Convenience: minimize and return just the cover.
inline Cover minimize_cover(const Cover& F, const Cover& D,
                            const EspressoOptions& opt = {}) {
  return minimize(F, D, opt).cover;
}

/// Functional equivalence modulo dc-set: every cube of `F1` is covered by
/// `F2 ∪ D` and vice versa.
bool equivalent(const Cover& F1, const Cover& F2, const Cover& D);

/// True when no cube of `F` intersects any cube of `R`.
bool disjoint(const Cover& F, const Cover& R);

}  // namespace picola::esp

// Internal helpers shared between the espresso translation units.
namespace picola::esp::detail {

/// Per-variable activity summary of a cover.
struct VarActivity {
  int var = -1;          ///< variable index
  int non_full = 0;      ///< number of cubes with a non-full literal
};

/// Index of the "most binate" active variable of `F` (most cubes with a
/// non-full literal); -1 when every literal of every cube is full.
int select_split_var(const Cover& F);

/// Union of the *non-full* literals of variable `var` over all cubes; used
/// by the unate reduction.  Returns the part-mask as a vector<bool> sized
/// parts(var).
std::vector<bool> nonfull_literal_union(const Cover& F, int var);

/// Cube with variable `var` restricted to part `p` and every other
/// variable full.
Cube part_cube(const CubeSpace& s, int var, int p);

}  // namespace picola::esp::detail
