// Recursive complementation with Shannon expansion and unate shortcuts.

#include "espresso/espresso.h"

namespace picola::esp {
namespace {

using detail::part_cube;
using detail::select_split_var;

Cover complement_rec(const Cover& F) {
  const CubeSpace& s = F.space();
  if (F.empty()) {
    Cover r(s);
    r.add(Cube::full(s));
    return r;
  }
  const Cube full = Cube::full(s);
  for (const Cube& c : F.cubes())
    if (c == full) return Cover(s);

  if (F.size() == 1) return complement_cube(F[0], s);

  int v = select_split_var(F);
  if (v < 0) return Cover(s);  // some cube is full (handled above, defensive)

  Cover result(s);
  for (int p = 0; p < s.parts(v); ++p) {
    Cube pc = part_cube(s, v, p);
    Cover cf = cofactor(F, pc);
    cf.remove_contained();
    Cover branch = complement_rec(cf);
    for (Cube& b : branch.cubes()) {
      Cube merged = b.intersect(pc);
      if (!merged.is_empty(s)) result.add(std::move(merged));
    }
  }
  result.remove_contained();
  return result;
}

}  // namespace

Cover complement_cube(const Cube& c, const CubeSpace& s) {
  Cover r(s);
  const Cube full = Cube::full(s);
  for (int v = 0; v < s.num_vars(); ++v) {
    if (c.var_full(s, v)) continue;
    Cube k = full;
    for (int p = 0; p < s.parts(v); ++p) k.set(s, v, p, !c.test(s, v, p));
    if (!k.is_empty(s)) r.add(std::move(k));
  }
  return r;
}

Cover complement(const Cover& F) {
  Cover f = F;
  f.remove_empty();
  f.remove_contained();
  return complement_rec(f);
}

Cover complement_fd(const Cover& F, const Cover& D) {
  Cover fd = F;
  fd.append(D);
  return complement(fd);
}

}  // namespace picola::esp
