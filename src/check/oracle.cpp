#include "check/oracle.h"

#include <bit>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "eval/constraint_eval.h"

namespace picola::check {

namespace {

/// Candidate count of the pinned enumeration, saturating at cap + 1.
long count_pinned_assignments(int cells, int symbols, long cap) {
  long total = 1;
  for (int i = 1; i < symbols; ++i) {
    total *= cells - i;
    if (total > cap || total <= 0) return cap + 1;
  }
  return total;
}

/// Bit k set when constraint k is satisfied by `e` (supercube of members
/// free of non-member codes).
uint64_t satisfied_mask(const ConstraintSet& cs, const Encoding& e) {
  uint64_t mask = 0;
  const uint32_t full = (uint32_t{1} << e.num_bits) - 1;
  for (int k = 0; k < cs.size(); ++k) {
    const FaceConstraint& c = cs.constraints[static_cast<size_t>(k)];
    uint32_t value = e.code(c.members[0]);
    uint32_t care = full;
    for (int m : c.members) care &= ~(value ^ e.code(m));
    bool ok = true;
    for (int j = 0; j < e.num_symbols && ok; ++j)
      if (!c.contains(j) && ((e.code(j) ^ value) & care) == 0) ok = false;
    if (ok) mask |= uint64_t{1} << k;
  }
  return mask;
}

}  // namespace

OracleResult oracle_solve(const ConstraintSet& cs, int nv,
                          const OracleOptions& opt) {
  if (std::string e = cs.validate(); !e.empty())
    throw std::invalid_argument("oracle_solve: " + e);
  if (cs.size() > 64)
    throw std::invalid_argument("oracle_solve: more than 64 constraints");
  const int n = cs.num_symbols;
  if (nv <= 0) nv = Encoding::min_bits(n);
  if (nv > 20) throw std::invalid_argument("oracle_solve: nv too large");
  const int cells = 1 << nv;
  if (cells < n)
    throw std::invalid_argument("oracle_solve: code length too small");
  if (count_pinned_assignments(cells, n, opt.max_candidates) >
      opt.max_candidates)
    throw std::invalid_argument("oracle_solve: search space too large");

  Encoding e;
  e.num_symbols = n;
  e.num_bits = nv;
  e.codes.assign(static_cast<size_t>(n), 0);

  OracleResult res;
  bool have_cubes = false;
  std::vector<bool> used(static_cast<size_t>(cells), false);
  e.codes[0] = 0;  // column complementation symmetry: pin symbol 0
  used[0] = true;

  auto evaluate = [&]() {
    ++res.candidates;
    uint64_t mask = satisfied_mask(cs, e);
    res.satisfiable_mask |= mask;
    int sat = std::popcount(mask);
    if (sat > res.max_satisfied) {
      res.max_satisfied = sat;
      res.best_satisfied_mask = mask;
    }
    if (opt.min_cubes) {
      int cubes = evaluate_constraints(cs, e).total_cubes;
      if (!have_cubes || cubes < res.min_total_cubes) {
        have_cubes = true;
        res.min_total_cubes = cubes;
      }
    }
  };

  auto rec = [&](auto&& self, int symbol) -> void {
    if (symbol == n) {
      evaluate();
      return;
    }
    for (int code = 0; code < cells; ++code) {
      if (used[static_cast<size_t>(code)]) continue;
      used[static_cast<size_t>(code)] = true;
      e.codes[static_cast<size_t>(symbol)] = static_cast<uint32_t>(code);
      self(self, symbol + 1);
      used[static_cast<size_t>(code)] = false;
    }
  };
  rec(rec, 1);
  return res;
}

bool satisfiable_with_prefix(const FaceConstraint& c, int num_symbols, int nv,
                             const std::vector<uint32_t>& prefixes,
                             int fixed_cols) {
  if (nv < 1 || nv > 20 || fixed_cols < 0 || fixed_cols > nv)
    throw std::invalid_argument("satisfiable_with_prefix: bad dimensions");
  if (static_cast<int>(prefixes.size()) != num_symbols)
    throw std::invalid_argument("satisfiable_with_prefix: prefix count");
  if (c.members.empty() || c.members.front() < 0 ||
      c.members.back() >= num_symbols)
    throw std::invalid_argument("satisfiable_with_prefix: bad members");

  const uint32_t cells = uint32_t{1} << nv;
  const uint32_t prefix_mask = (uint32_t{1} << fixed_cols) - 1;
  const uint32_t nsuffix = uint32_t{1} << (nv - fixed_cols);
  const int m = c.size();
  if (m > static_cast<int>(cells)) return false;

  // Non-members grouped by (fixed) prefix: codes extending different
  // prefixes are disjoint, so after the members are placed, distinct
  // out-of-face codes for the non-members exist iff every prefix class
  // has at least as many free out-of-face cells as it has non-members.
  std::unordered_map<uint32_t, int> nonmembers_of;
  for (int j = 0; j < num_symbols; ++j)
    if (!c.contains(j)) ++nonmembers_of[prefixes[static_cast<size_t>(j)] &
                                        prefix_mask];

  auto nonmembers_fit = [&](uint32_t care, uint32_t value) {
    for (const auto& [prefix, count] : nonmembers_of) {
      long avail = 0;
      for (uint32_t s = 0; s < nsuffix; ++s) {
        uint32_t code = prefix | (s << fixed_cols);
        if (((code ^ value) & care) != 0) ++avail;  // outside the face
      }
      if (avail < count) return false;
    }
    return true;
  };

  std::vector<uint32_t> member_code(static_cast<size_t>(m));
  std::vector<bool> used(static_cast<size_t>(cells), false);
  bool found = false;
  auto rec = [&](auto&& self, int idx) -> void {
    if (found) return;
    if (idx == m) {
      uint32_t value = member_code[0];
      uint32_t care = cells - 1;
      for (int i = 0; i < m; ++i) care &= ~(value ^ member_code[i]);
      if (nonmembers_fit(care, value)) found = true;
      return;
    }
    uint32_t base =
        prefixes[static_cast<size_t>(c.members[static_cast<size_t>(idx)])] &
        prefix_mask;
    // Complementing any not-yet-generated column maps completions to
    // completions (prefixes untouched, faces preserved), so the first
    // member's suffix can be pinned to 0.
    const uint32_t suffix_end = idx == 0 ? 1 : nsuffix;
    for (uint32_t s = 0; s < suffix_end && !found; ++s) {
      uint32_t code = base | (s << fixed_cols);
      if (used[code]) continue;
      used[code] = true;
      member_code[static_cast<size_t>(idx)] = code;
      self(self, idx + 1);
      used[code] = false;
    }
  };
  rec(rec, 0);
  return found;
}

}  // namespace picola::check
