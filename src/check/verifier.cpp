#include "check/verifier.h"

#include <sstream>
#include <unordered_map>

#include "constraints/dichotomy.h"
#include "obs/metrics.h"

namespace picola::check {

void VerifyReport::merge(VerifyReport other) {
  for (auto& v : other.violations) violations.push_back(std::move(v));
}

std::string VerifyReport::to_string() const {
  std::ostringstream os;
  for (size_t i = 0; i < violations.size(); ++i) {
    if (i) os << '\n';
    os << violations[i];
  }
  return os.str();
}

namespace {

/// The uniform member value of constraint `c` in column `col` of `enc`,
/// or -1 when the members differ there.
int uniform_value(const FaceConstraint& c, const Encoding& enc, int col) {
  int v = enc.bit(c.members[0], col);
  for (int m : c.members)
    if (enc.bit(m, col) != v) return -1;
  return v;
}

}  // namespace

VerifyReport verify_encoding(const ConstraintSet& cs, const Encoding& enc) {
  VerifyReport r;
  if (std::string e = cs.validate(); !e.empty()) {
    r.add("constraint set: " + e);
    return r;
  }
  if (enc.num_symbols != cs.num_symbols) {
    r.add("encoding covers " + std::to_string(enc.num_symbols) +
          " symbols, constraint set has " + std::to_string(cs.num_symbols));
    return r;
  }
  if (std::string e = enc.validate(); !e.empty()) {
    r.add("encoding: " + e);
    return r;
  }
  // The two definitions of satisfaction (paper §2) must agree: every seed
  // dichotomy satisfied by some column <=> no non-member code inside the
  // members' supercube.  They are computed along independent paths.
  for (int k = 0; k < cs.size(); ++k) {
    const FaceConstraint& c = cs.constraints[static_cast<size_t>(k)];
    bool by_cube = constraint_satisfied(c, enc);
    bool by_columns = true;
    for (int j = 0; j < cs.num_symbols && by_columns; ++j)
      if (!c.contains(j) && !dichotomy_satisfied(c, j, enc))
        by_columns = false;
    if (by_cube != by_columns)
      r.add("constraint " + std::to_string(k) +
            ": satisfaction predicates disagree (supercube says " +
            (by_cube ? "satisfied" : "unsatisfied") + ", columns say " +
            (by_columns ? "satisfied" : "unsatisfied") + ")");
  }
  return r;
}

VerifyReport verify_column(const std::vector<int>& bits,
                           const std::vector<uint32_t>& prefixes,
                           int column_index, int nv) {
  VerifyReport r;
  const int n = static_cast<int>(bits.size());
  if (prefixes.size() != bits.size()) {
    r.add("column " + std::to_string(column_index) + ": " +
          std::to_string(bits.size()) + " bits for " +
          std::to_string(prefixes.size()) + " prefixes");
    return r;
  }
  const long cap = 1L << (nv - column_index - 1);
  std::unordered_map<uint32_t, std::pair<long, long>> group;  // zeros, ones
  for (int j = 0; j < n; ++j) {
    int b = bits[static_cast<size_t>(j)];
    if (b != 0 && b != 1) {
      r.add("column " + std::to_string(column_index) + ": symbol " +
            std::to_string(j) + " has non-binary bit " + std::to_string(b));
      return r;
    }
    auto& g = group[prefixes[static_cast<size_t>(j)]];
    (b == 0 ? g.first : g.second) += 1;
  }
  for (const auto& [prefix, counts] : group) {
    if (counts.first > cap || counts.second > cap)
      r.add("column " + std::to_string(column_index) + ": prefix group " +
            std::to_string(prefix) + " splits " + std::to_string(counts.first) +
            "/" + std::to_string(counts.second) +
            " against remaining capacity " + std::to_string(cap));
  }
  return r;
}

VerifyReport verify_run(const ConstraintSet& cs, const ConstraintMatrix& m,
                        const Encoding& enc) {
  VerifyReport r = verify_encoding(cs, enc);
  if (!r.ok()) return r;
  const int n = enc.num_symbols;
  const int nv = enc.num_bits;
  if (m.num_symbols() != n || m.nv() != nv ||
      m.columns_generated() != nv) {
    r.add("matrix shape (" + std::to_string(m.num_symbols()) + " symbols, " +
          std::to_string(m.columns_generated()) + "/" +
          std::to_string(m.nv()) + " columns) does not match encoding (" +
          std::to_string(n) + " symbols, " + std::to_string(nv) + " bits)");
    return r;
  }
  if (m.num_constraints() < cs.size()) {
    r.add("matrix lost rows: " + std::to_string(m.num_constraints()) +
          " < " + std::to_string(cs.size()));
    return r;
  }

  // From-scratch replay: a fresh matrix over the same rows (guides
  // included — bypassing ConstraintSet::add so duplicates survive), fed
  // every column in order, must agree with the incremental bookkeeping.
  std::vector<std::vector<int>> columns(
      static_cast<size_t>(nv), std::vector<int>(static_cast<size_t>(n)));
  for (int col = 0; col < nv; ++col)
    for (int j = 0; j < n; ++j)
      columns[static_cast<size_t>(col)][static_cast<size_t>(j)] =
          enc.bit(j, col);
  ConstraintSet raw;
  raw.num_symbols = n;
  for (int k = 0; k < m.num_constraints(); ++k)
    raw.constraints.push_back(m.constraint(k));
  ConstraintMatrix fresh(raw, nv);
  for (const auto& col : columns) fresh.record_column(col);

  for (int k = 0; k < m.num_constraints(); ++k) {
    const FaceConstraint& c = m.constraint(k);
    const std::string row = "row " + std::to_string(k);

    // Re-derive pinned/free and first-satisfying columns directly from
    // the encoding (independent of ConstraintMatrix::apply_column).
    std::vector<int> uniform(static_cast<size_t>(nv));
    int pinned = 0, free_cols = 0;
    for (int col = 0; col < nv; ++col) {
      uniform[static_cast<size_t>(col)] = uniform_value(c, enc, col);
      if (uniform[static_cast<size_t>(col)] >= 0)
        ++pinned;
      else
        ++free_cols;
    }
    if (m.pinned_columns(k) != pinned)
      r.add(row + ": pinned " + std::to_string(m.pinned_columns(k)) +
            ", re-derived " + std::to_string(pinned));
    if (m.free_columns(k) != free_cols)
      r.add(row + ": free " + std::to_string(m.free_columns(k)) +
            ", re-derived " + std::to_string(free_cols));
    if (m.min_super_dim(k) != fresh.min_super_dim(k))
      r.add(row + ": min_super_dim " + std::to_string(m.min_super_dim(k)) +
            ", replay " + std::to_string(fresh.min_super_dim(k)));
    if (m.max_super_dim(k) != nv - pinned)
      r.add(row + ": max_super_dim " + std::to_string(m.max_super_dim(k)) +
            ", re-derived " + std::to_string(nv - pinned));

    for (int j = 0; j < n; ++j) {
      int e = m.entry(k, j);
      if (fresh.entry(k, j) != e)
        r.add(row + ": entry for symbol " + std::to_string(j) + " is " +
              std::to_string(e) + ", replay got " +
              std::to_string(fresh.entry(k, j)));
      if (c.contains(j)) {
        if (e != ConstraintMatrix::kMember)
          r.add(row + ": member " + std::to_string(j) + " marked " +
                std::to_string(e));
        continue;
      }
      // Entry semantics: i+1 names the *first* column separating the
      // (uniform) members from symbol j; 0 means no column does.
      int first = 0;
      for (int col = 0; col < nv && first == 0; ++col) {
        int v = uniform[static_cast<size_t>(col)];
        if (v >= 0 && enc.bit(j, col) == 1 - v) first = col + 1;
      }
      if (e != first)
        r.add(row + ": entry for symbol " + std::to_string(j) + " is " +
              std::to_string(e) + ", first separating column gives " +
              std::to_string(first));
    }

    // Satisfaction equivalence for every row, guides included: all
    // dichotomies satisfied <=> the members' face holds no intruder.
    bool face_clean = intruders(c, enc).empty();
    if (m.satisfied(k) != face_clean)
      r.add(row + ": matrix says " +
            (m.satisfied(k) ? "satisfied" : "unsatisfied") +
            " but the supercube is " +
            (face_clean ? "intruder-free" : "intruded"));
  }
  return r;
}

void enforce(const VerifyReport& report, const std::string& phase) {
  if (report.ok()) return;
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("check/violations").add(report.violations.size());
  reg.counter("check/" + phase + "_violations")
      .add(report.violations.size());
  throw SelfCheckError(phase + ": " + report.to_string());
}

}  // namespace picola::check
