#pragma once
// Brute-force exact oracle for small instances (n <= 8 at minimum code
// length), in the spirit of the exhaustive small-instance validation used
// for SAT cardinality encodings: enumerate every encoding up to column
// complementation (symbol 0 pinned to code 0 — complementing a column
// XORs all codes with a mask, preserving faces, satisfaction and SOP cube
// counts), and record the ground truth that picola_encode and
// classify_infeasible are differential-tested against:
//
//  * which constraints are satisfiable at all (individually),
//  * the true maximum number of simultaneously satisfiable constraints,
//  * optionally the minimum espresso-evaluated total cube count.
//
// satisfiable_with_prefix() answers the sharper mid-run question — can a
// constraint still be satisfied once the first t columns are committed? —
// exactly: member completions are enumerated, and the non-members are
// placed by a per-prefix pigeonhole argument (codes extending different
// prefixes are disjoint, so distinct out-of-face codes exist iff every
// prefix class has enough room).  classify_infeasible must never flag a
// constraint for which this returns true.

#include <cstdint>

#include "constraints/face_constraint.h"
#include "encoders/encoding.h"

namespace picola::check {

struct OracleOptions {
  /// Refuse instances whose pinned enumeration would exceed this many
  /// candidate encodings (8 symbols in 3 bits = 5040).
  long max_candidates = 200'000;
  /// Also espresso-evaluate every candidate to find the minimum total
  /// cube count (much slower; keep to n <= 5 in hot loops).
  bool min_cubes = false;
};

struct OracleResult {
  /// Bit k set when constraint k alone is satisfiable by some encoding.
  uint64_t satisfiable_mask = 0;
  /// Maximum simultaneously satisfiable constraint count, with a witness
  /// subset (as a bit mask) achieving it.
  int max_satisfied = 0;
  uint64_t best_satisfied_mask = 0;
  /// Minimum total espresso cubes over all encodings (min_cubes only).
  int min_total_cubes = 0;
  long candidates = 0;  ///< encodings enumerated
};

/// Exhaustive ground truth over every nv-bit encoding of the set's
/// symbols, up to column complementation.  nv = 0 picks the minimum
/// length.  Requires a validated set with at most 64 constraints; throws
/// std::invalid_argument when the search space exceeds max_candidates.
OracleResult oracle_solve(const ConstraintSet& cs, int nv = 0,
                          const OracleOptions& opt = {});

/// Exact satisfiability of one constraint under a partial encoding: true
/// iff the remaining nv - fixed_cols bits of every symbol can be chosen
/// (all codes distinct, prefixes preserved) so that `c` embeds on an
/// intruder-free face.  `prefixes[j]` holds symbol j's first fixed_cols
/// bits (LSB-first, as built by picola_encode).
bool satisfiable_with_prefix(const FaceConstraint& c, int num_symbols, int nv,
                             const std::vector<uint32_t>& prefixes,
                             int fixed_cols);

}  // namespace picola::check
