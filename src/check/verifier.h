#pragma once
// Correctness tooling (docs/ALGORITHM.md "Invariants & self-checking"):
// an EncodingVerifier that independently re-derives everything the
// encoder claims, instead of trusting the incremental bookkeeping:
//
//  * structural validity — codes distinct and within nv bits;
//  * the satisfaction equivalence (paper §2) — a constraint's matrix
//    entries are all satisfied iff the supercube of its members' codes
//    contains no intruder, re-checked along both the column path
//    (dichotomy_satisfied) and the cube path (intruders);
//  * the constraint-matrix bookkeeping (paper §3.1) — every generated
//    column replayed through a fresh ConstraintMatrix must agree
//    entry-for-entry with the incrementally maintained one (entries,
//    pinned/free counts, min/max supercube dimensions), and each entry
//    value i+1 must name the *first* column i that actually separates the
//    members uniformly from the outsider;
//  * per-column validity — Solve()'s output keeps every prefix group
//    within the capacity of the remaining columns.
//
// Violations are recorded under check/* in the global MetricsRegistry
// and raised as SelfCheckError.  picola_encode runs these checks when
// PicolaOptions::self_check is set (a single branch when off); the fuzz
// driver (tools/picola_fuzz) runs them over thousands of generated
// instances together with the exact small-instance oracle (check/oracle.h).

#include <stdexcept>
#include <string>
#include <vector>

#include "constraints/constraint_matrix.h"
#include "encoders/encoding.h"

namespace picola::check {

/// Thrown by enforce() on the first violated invariant; the message is
/// the phase name plus every violation, newline-separated.
struct SelfCheckError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Outcome of one verification pass: one line per violated invariant.
struct VerifyReport {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  void add(std::string v) { violations.push_back(std::move(v)); }
  void merge(VerifyReport other);
  std::string to_string() const;  ///< newline-joined violations
};

/// Encoding-only invariants: structural validity plus, per constraint,
/// agreement of the two independent satisfaction predicates (all seed
/// dichotomies satisfied by some column vs. supercube intruder-free).
VerifyReport verify_encoding(const ConstraintSet& cs, const Encoding& enc);

/// One Solve() column against the partial encoding that preceded it:
/// bits are 0/1, and both halves of every prefix group fit in the
/// capacity 2^(nv - column_index - 1) of the remaining columns.
VerifyReport verify_column(const std::vector<int>& bits,
                           const std::vector<uint32_t>& prefixes,
                           int column_index, int nv);

/// Full end-of-run verification of a finished picola run: the encoding
/// invariants above, the from-scratch matrix replay, the first-column
/// semantics of every entry, pinned/free/min_super_dim re-derivations,
/// and satisfied(k) == intruder-free-face for every row (guides
/// included).  `m` must have all `enc.num_bits` columns recorded.
VerifyReport verify_run(const ConstraintSet& cs, const ConstraintMatrix& m,
                        const Encoding& enc);

/// Record `report`'s violations in the global MetricsRegistry
/// ("check/violations" plus "check/<phase>_violations") and throw
/// SelfCheckError when the report is non-empty.  No-op on an ok report.
void enforce(const VerifyReport& report, const std::string& phase);

}  // namespace picola::check
