#include "check/instance_gen.h"

#include <algorithm>
#include <numeric>

#include "encoders/encoding.h"

namespace picola::check {

InstanceGenerator::InstanceGenerator(uint64_t seed, GeneratorOptions opt)
    : rng_(seed), opt_(opt) {}

int InstanceGenerator::draw(int lo, int hi) {
  // Explicit modulo draw instead of uniform_int_distribution: the
  // distribution's algorithm is implementation-defined, and the stream
  // must replay identically across standard libraries.
  return lo + static_cast<int>(rng_() % static_cast<uint64_t>(hi - lo + 1));
}

std::vector<int> InstanceGenerator::draw_subset(int n, int size) {
  std::vector<int> pool(static_cast<size_t>(n));
  std::iota(pool.begin(), pool.end(), 0);
  for (int i = 0; i < size; ++i)
    std::swap(pool[static_cast<size_t>(i)],
              pool[static_cast<size_t>(draw(i, n - 1))]);
  pool.resize(static_cast<size_t>(size));
  return pool;
}

ConstraintSet InstanceGenerator::gen_random(int n) {
  ConstraintSet cs;
  cs.num_symbols = n;
  int count = draw(1, opt_.max_constraints);
  for (int k = 0; k < count; ++k) {
    int size = draw(2, std::max(2, n - 1));
    double weight = draw(0, 3) == 0 ? 0.5 * draw(1, 6) : 1.0;
    cs.add(draw_subset(n, size), weight);
  }
  return cs;
}

ConstraintSet InstanceGenerator::gen_nested(int n) {
  // A chain L0 subset L1 subset ... growing one or two symbols per step.
  ConstraintSet cs;
  cs.num_symbols = n;
  std::vector<int> order = draw_subset(n, n);
  int size = 2;
  while (size <= n - 1 && cs.size() < opt_.max_constraints) {
    cs.add(std::vector<int>(order.begin(), order.begin() + size));
    size += draw(1, 2);
  }
  if (cs.size() == 0) cs.add(draw_subset(n, 2));
  return cs;
}

ConstraintSet InstanceGenerator::gen_packing(int n, int nv) {
  // Disjoint groups whose unused-code demand sits at or just over the
  // global 2^nv - n budget: group of size s in its own subcube of
  // dimension ceil(log2 s) wastes 2^dim - s codes.
  ConstraintSet cs;
  cs.num_symbols = n;
  std::vector<int> order = draw_subset(n, n);
  long budget = (1L << nv) - n;
  size_t at = 0;
  while (cs.size() < opt_.max_constraints) {
    int size = draw(2, 3) == 3 && n >= 6 ? 3 : 2;
    if (at + static_cast<size_t>(size) > order.size()) break;
    cs.add(std::vector<int>(order.begin() + static_cast<long>(at),
                            order.begin() + static_cast<long>(at) + size));
    at += static_cast<size_t>(size);
    int dim = 0;
    while ((1L << dim) < size) ++dim;
    budget -= (1L << dim) - size;
    // Stop one group past exhaustion so roughly half the packings are
    // right at the boundary and half just beyond it.
    if (budget < 0 && draw(0, 1) == 0) break;
  }
  if (cs.size() == 0) cs.add({order[0], order[1]});
  return cs;
}

ConstraintSet InstanceGenerator::gen_overlap(int n) {
  // Every constraint contains a shared core, so their pairwise
  // son-constraints are all non-void and guides pile onto the same
  // symbols.
  ConstraintSet cs;
  cs.num_symbols = n;
  int core_size = draw(1, std::max(1, n / 3));
  std::vector<int> core = draw_subset(n, core_size);
  int count = draw(2, opt_.max_constraints);
  for (int k = 0; k < count; ++k) {
    std::vector<int> members = core;
    int extra = draw(1, std::max(1, (n - core_size) / 2));
    for (int id : draw_subset(n, n)) {
      if (extra == 0) break;
      if (std::find(members.begin(), members.end(), id) == members.end()) {
        members.push_back(id);
        --extra;
      }
    }
    if (static_cast<int>(members.size()) >= n || members.size() < 2) continue;
    cs.add(std::move(members));
  }
  if (cs.size() == 0) cs.add(draw_subset(n, 2));
  return cs;
}

InstanceGenerator::Instance InstanceGenerator::next() {
  Instance inst;
  inst.index = index_++;
  int n = draw(opt_.min_symbols, opt_.max_symbols);
  int min_bits = Encoding::min_bits(n);
  int nv = min_bits + draw(0, opt_.max_extra_bits);
  switch (inst.index % 4) {
    case 0:
      inst.family = "random";
      inst.set = gen_random(n);
      break;
    case 1:
      inst.family = "nested";
      inst.set = gen_nested(n);
      break;
    case 2:
      inst.family = "packing";
      inst.set = gen_packing(n, nv);
      break;
    default:
      inst.family = "overlap";
      inst.set = gen_overlap(n);
      break;
  }
  inst.num_bits = nv == min_bits ? 0 : nv;
  return inst;
}

}  // namespace picola::check
