#pragma once
// Seeded deterministic instance generator for the differential fuzz
// harness (tools/picola_fuzz).  A fixed seed reproduces the exact same
// instance stream on every platform (mt19937_64 and explicit integer
// draws only), so every failure the fuzzer reports is replayable from
// the (seed, iteration) pair alone.
//
// next() cycles through families chosen to hit the encoder's hard
// corners, not just uniform noise:
//
//   random  — uniform member subsets, mixed sizes and weights;
//   nested  — chains L0 ⊂ L1 ⊂ ... (maximal pinned-column pressure and
//             the son-constraint path of Classify §3.3.1);
//   packing — disjoint groups sized against the 2^nv - n unused-code
//             budget boundary, where the dc() feasibility arithmetic
//             and its overflow clamps live;
//   overlap — many constraints sharing a common core (guide explosion
//             and duplicate-canonicalisation stress).

#include <cstdint>
#include <random>
#include <string>

#include "constraints/face_constraint.h"

namespace picola::check {

struct GeneratorOptions {
  int min_symbols = 3;
  int max_symbols = 16;
  int max_constraints = 6;
  /// Extra code-length slack above the minimum, chosen in [0, max_extra_bits].
  int max_extra_bits = 1;
};

class InstanceGenerator {
 public:
  explicit InstanceGenerator(uint64_t seed, GeneratorOptions opt = {});

  struct Instance {
    ConstraintSet set;
    int num_bits = 0;     ///< suggested PicolaOptions::num_bits (0 = minimum)
    std::string family;   ///< which generator family produced it
    uint64_t index = 0;   ///< 0-based position in the stream
  };

  /// The next instance in the deterministic stream.  Always well-formed:
  /// set.validate() is empty and there is at least one constraint.
  Instance next();

 private:
  ConstraintSet gen_random(int n);
  ConstraintSet gen_nested(int n);
  ConstraintSet gen_packing(int n, int nv);
  ConstraintSet gen_overlap(int n);

  int draw(int lo, int hi);  ///< uniform in [lo, hi]
  std::vector<int> draw_subset(int n, int size);

  std::mt19937_64 rng_;
  GeneratorOptions opt_;
  uint64_t index_ = 0;
};

}  // namespace picola::check
