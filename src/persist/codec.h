#pragma once
// Binary serialisation for the durable cache (persist/store.h): a
// little-endian fixed-width Writer/Reader pair, CRC32C (Castagnoli,
// software table — the polynomial every storage format uses), and the
// record codec for one cache entry (CanonicalJob + CachedResult).
//
// A record carries the FULL canonical job — constraint set, every
// fingerprinted PicolaOptions/PortfolioOptions field, restart count —
// next to the result, so the collision-safe deep comparison the
// in-memory cache does on lookup (job.equivalent) keeps working across
// a restart.  decode_record() re-canonicalises the decoded job and
// rejects the record if the recomputed fingerprint disagrees with the
// stored one: a record that passes CRC but decodes to a job that hashes
// differently is format drift, and serving it would poison the cache.
//
// Format stability: bump persist::kFormatVersion (store.h) whenever the
// field list here changes; load hard-fails on any other version.

#include <cstdint>
#include <string>
#include <string_view>

#include "service/result_cache.h"

namespace picola::persist {

/// CRC32C (iSCSI/Castagnoli polynomial 0x1EDC6F41, reflected), seedable
/// for incremental use: crc32c(b, crc32c(a)) == crc32c(a + b).
uint32_t crc32c(std::string_view data, uint32_t crc = 0);

/// Little-endian append-only byte sink.
class Writer {
 public:
  void u8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(uint32_t v);
  void u64(uint64_t v);
  void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
  void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
  void f64(double v);                 // IEEE-754 bit pattern
  void bytes(std::string_view data);  // raw, no length prefix

  const std::string& str() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian reader.  Every getter returns false once
/// the buffer under-runs, and fail() latches — callers may decode a
/// whole struct and check once at the end.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool u8(uint8_t* v);
  bool u32(uint32_t* v);
  bool u64(uint64_t* v);
  bool i32(int32_t* v);
  bool i64(int64_t* v);
  bool f64(double* v);

  bool failed() const { return failed_; }
  /// True when every byte was consumed (trailing garbage = corrupt).
  bool done() const { return !failed_ && pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool take(size_t n, const char** p);
  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

/// Serialise one cache entry.
std::string encode_record(const CanonicalJob& job, const CachedResult& result);

/// Decode one cache entry; false + *err on any structural problem,
/// including a fingerprint that fails re-canonicalisation (see top
/// comment).  The caller has already CRC-checked the payload.
bool decode_record(std::string_view payload, CanonicalJob* job,
                   CachedResult* result, std::string* err);

}  // namespace picola::persist
