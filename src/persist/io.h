#pragma once
// The injectable seam between src/persist and the filesystem — the
// durable-storage counterpart of net/sys.h.  Every open/read/write/
// fsync/rename/ftruncate/unlink the snapshot + journal engine performs
// goes through these wrappers, which consult a fault point
// (fault/fault.h) before touching the syscall:
//
//   kErrno    — fail with the injected errno, syscall not performed
//               (EINTR, ENOSPC, EIO, EMFILE...)
//   kShortIo  — clamp the byte count, then perform the real syscall
//               (partial writes / short reads; write_all keeps going)
//   kDelay    — sleep, then perform the real syscall (slow disk)
//   kCrash    — _exit(137) at the site, a kill -9 stand-in.  On
//               write_all with max_bytes > 0 the first max_bytes land
//               before the exit, manufacturing a torn record.
//
// With no plan installed each wrapper is the raw syscall plus one
// relaxed atomic load; under -DPICOLA_FAULT_DISABLED even that load is
// compiled out.  NOT async-signal-safe (consulting a plan takes a
// mutex).
//
// Fault points: persist/open, persist/read, persist/write,
// persist/fsync, persist/rename (consulted before the rename),
// persist/rename_after (after it succeeded — crash-after-rename),
// persist/truncate.  Catalog + recovery matrix: docs/PERSISTENCE.md.

#include <cstdint>
#include <string>
#include <vector>

namespace picola::persist::io {

/// RAII file descriptor.  Close errors are swallowed — by the time a
/// File dies every durability-relevant flush has been fsync'd (or the
/// caller already treats the file as broken).
class File {
 public:
  File() = default;
  explicit File(int fd) : fd_(fd) {}
  ~File() { close(); }
  File(File&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  File& operator=(File&& o) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

 private:
  int fd_ = -1;
};

/// Open `path` read-only.  Fault "persist/open".  Returns an invalid
/// File and sets *err on failure (ENOENT included — callers that treat
/// absence as normal check exists() first).
File open_read(const std::string& path, std::string* err);

/// Create/truncate `path` for writing.  Fault "persist/open".
File create_trunc(const std::string& path, std::string* err);

/// Open `path` for appending, creating it if absent.  Fault
/// "persist/open".
File open_append(const std::string& path, std::string* err);

/// Write all n bytes, retrying EINTR and continuing after short writes.
/// Consults fault "persist/write" once per underlying syscall; a kCrash
/// action _exit(137)s (after landing max_bytes bytes of this chunk when
/// max_bytes > 0).  False + *err on unrecoverable errno (ENOSPC, EIO).
bool write_all(File& f, const void* data, size_t n, std::string* err);

/// Read the whole remainder of `f` into *out (appending).  Consults
/// fault "persist/read" per syscall; EINTR retried, short reads
/// continued.  False + *err on read error.
bool read_all(File& f, std::string* out, std::string* err);

/// fsync(2).  Fault "persist/fsync" (kErrno EIO models a dying disk,
/// kCrash a power cut at the barrier).
bool fsync_file(File& f, std::string* err);

/// ftruncate(2) to `len`.  Fault "persist/truncate".
bool truncate_file(File& f, uint64_t len, std::string* err);

/// rename(2).  Fault "persist/rename" fires before the syscall (crash =
/// old name survives); fault "persist/rename_after" fires after it
/// succeeded (crash = new name already durable in the dirent cache).
bool rename_file(const std::string& from, const std::string& to,
                 std::string* err);

/// Open `dir` and fsync it — makes a rename/unlink in it durable.
/// Faults "persist/open" + "persist/fsync".
bool fsync_dir(const std::string& dir, std::string* err);

/// unlink(2); ENOENT is success.  No fault point — pruning stale
/// journals is advisory (a survivor is re-pruned after the next
/// snapshot) and an injected error here would only test the logger.
bool unlink_file(const std::string& path, std::string* err);

/// mkdir(2) if missing (single level).  False + *err when the path
/// can't be created or isn't a directory.
bool ensure_dir(const std::string& path, std::string* err);

bool exists(const std::string& path);

/// Size in bytes, or -1 when absent/unreadable.
int64_t file_size(const std::string& path);

/// Names (not paths) of regular files directly inside `dir`, sorted.
std::vector<std::string> list_dir(const std::string& dir);

}  // namespace picola::persist::io
