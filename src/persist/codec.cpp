#include "persist/codec.h"

#include <array>
#include <cstring>

#include "service/job.h"

namespace picola::persist {

namespace {

/// Castagnoli table, built on first use (thread-safe since C++11 magic
/// statics); reflected polynomial 0x82F63B78.
const uint32_t* crc32c_table() {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table.data();
}

}  // namespace

uint32_t crc32c(std::string_view data, uint32_t crc) {
  const uint32_t* t = crc32c_table();
  crc = ~crc;
  for (char ch : data)
    crc = t[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  return ~crc;
}

void Writer::u32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>(v >> (8 * i)));
}

void Writer::u64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>(v >> (8 * i)));
}

void Writer::f64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::bytes(std::string_view data) { buf_.append(data); }

bool Reader::take(size_t n, const char** p) {
  if (failed_ || data_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  *p = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool Reader::u8(uint8_t* v) {
  const char* p;
  if (!take(1, &p)) return false;
  *v = static_cast<uint8_t>(*p);
  return true;
}

bool Reader::u32(uint32_t* v) {
  const char* p;
  if (!take(4, &p)) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i)
    *v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return true;
}

bool Reader::u64(uint64_t* v) {
  const char* p;
  if (!take(8, &p)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i)
    *v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return true;
}

bool Reader::i32(int32_t* v) {
  uint32_t u;
  if (!u32(&u)) return false;
  *v = static_cast<int32_t>(u);
  return true;
}

bool Reader::i64(int64_t* v) {
  uint64_t u;
  if (!u64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool Reader::f64(double* v) {
  uint64_t bits;
  if (!u64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

namespace {

// Sanity bound on decoded element counts: a CRC-valid record never
// trips it, but it keeps a hand-crafted hostile length from asking for
// gigabytes before the bounds checks notice.
constexpr uint64_t kMaxElems = 1u << 26;

void put_constraint_set(Writer& w, const ConstraintSet& cs) {
  w.i32(cs.num_symbols);
  w.u32(static_cast<uint32_t>(cs.constraints.size()));
  for (const FaceConstraint& c : cs.constraints) {
    w.u32(static_cast<uint32_t>(c.members.size()));
    for (int m : c.members) w.i32(m);
    w.f64(c.weight);
    w.u8(c.is_guide ? 1 : 0);
    w.i32(c.origin);
  }
}

bool get_constraint_set(Reader& r, ConstraintSet* cs) {
  uint32_t n = 0;
  if (!r.i32(&cs->num_symbols) || !r.u32(&n) || n > kMaxElems) return false;
  cs->constraints.resize(n);
  for (FaceConstraint& c : cs->constraints) {
    uint32_t m = 0;
    if (!r.u32(&m) || m > kMaxElems || m * 4 > r.remaining()) return false;
    c.members.resize(m);
    for (int& s : c.members)
      if (!r.i32(&s)) return false;
    uint8_t guide = 0;
    if (!r.f64(&c.weight) || !r.u8(&guide) || !r.i32(&c.origin)) return false;
    c.is_guide = guide != 0;
  }
  return true;
}

void put_options(Writer& w, const PicolaOptions& o) {
  uint8_t flags = (o.use_guides ? 1 : 0) | (o.use_classify ? 2 : 0) |
                  (o.greedy_continue ? 4 : 0) | (o.unweighted ? 8 : 0) |
                  (o.guide.recursive ? 16 : 0) | (o.self_check ? 32 : 0);
  w.u8(flags);
  w.f64(o.progress_weight);
  w.f64(o.size_weight);
  w.f64(o.infeasible_weight_factor);
  w.f64(o.guide.weight_factor);
  w.i32(o.num_bits);
  w.u64(o.tie_break_seed);
}

bool get_options(Reader& r, PicolaOptions* o) {
  uint8_t flags = 0;
  if (!r.u8(&flags) || !r.f64(&o->progress_weight) || !r.f64(&o->size_weight) ||
      !r.f64(&o->infeasible_weight_factor) || !r.f64(&o->guide.weight_factor) ||
      !r.i32(&o->num_bits) || !r.u64(&o->tie_break_seed))
    return false;
  o->use_guides = flags & 1;
  o->use_classify = flags & 2;
  o->greedy_continue = flags & 4;
  o->unweighted = flags & 8;
  o->guide.recursive = flags & 16;
  o->self_check = flags & 32;
  o->cancel = nullptr;  // canonical jobs never carry a token
  return true;
}

void put_portfolio(Writer& w, const portfolio::PortfolioOptions& p) {
  w.u8(static_cast<uint8_t>(p.backend));
  w.u8(static_cast<uint8_t>(p.sat_card));
  w.u8(static_cast<uint8_t>(p.sat_distinct));
  w.u8(static_cast<uint8_t>(p.sat_sweep));
  w.i64(p.sat_max_conflicts);
  w.u64(p.anneal_seed);
}

bool get_portfolio(Reader& r, portfolio::PortfolioOptions* p) {
  uint8_t backend = 0, card = 0, distinct = 0, sweep = 0;
  int64_t conflicts = 0;
  if (!r.u8(&backend) || !r.u8(&card) || !r.u8(&distinct) || !r.u8(&sweep) ||
      !r.i64(&conflicts) || !r.u64(&p->anneal_seed))
    return false;
  if (backend > static_cast<uint8_t>(portfolio::BackendKind::kPortfolio) ||
      card > static_cast<uint8_t>(sat::CardEncoding::kCommander) ||
      distinct > static_cast<uint8_t>(sat::DistinctEncoding::kLazy) ||
      sweep > static_cast<uint8_t>(sat::SweepMode::kScratch))
    return false;
  p->backend = static_cast<portfolio::BackendKind>(backend);
  p->sat_card = static_cast<sat::CardEncoding>(card);
  p->sat_distinct = static_cast<sat::DistinctEncoding>(distinct);
  p->sat_sweep = static_cast<sat::SweepMode>(sweep);
  p->sat_max_conflicts = conflicts;
  return true;
}

void put_result(Writer& w, const CachedResult& res) {
  const Encoding& e = res.picola.encoding;
  w.i32(e.num_symbols);
  w.i32(e.num_bits);
  w.u32(static_cast<uint32_t>(e.codes.size()));
  for (uint32_t c : e.codes) w.u32(c);

  const PicolaStats& s = res.picola.stats;
  w.i32(s.guides_added);
  w.i32(s.constraints_deactivated);
  w.u32(static_cast<uint32_t>(s.infeasible_per_column.size()));
  for (int v : s.infeasible_per_column) w.i32(v);
  w.u32(static_cast<uint32_t>(s.infeasible_events.size()));
  for (const auto& [col, row] : s.infeasible_events) {
    w.i32(col);
    w.i32(row);
  }
  w.i32(s.satisfied_constraints);
  w.i64(s.classify_calls);
  w.u32(static_cast<uint32_t>(s.column_ms.size()));
  for (double v : s.column_ms) w.f64(v);
  w.f64(s.classify_ms);
  w.f64(s.guide_ms);
  w.f64(s.solve_ms);

  w.i64(res.total_cubes);
  w.u8(static_cast<uint8_t>(res.backend));
}

bool get_result(Reader& r, CachedResult* res) {
  Encoding& e = res->picola.encoding;
  uint32_t n = 0;
  if (!r.i32(&e.num_symbols) || !r.i32(&e.num_bits) || !r.u32(&n) ||
      n > kMaxElems)
    return false;
  e.codes.resize(n);
  for (uint32_t& c : e.codes)
    if (!r.u32(&c)) return false;

  PicolaStats& s = res->picola.stats;
  if (!r.i32(&s.guides_added) || !r.i32(&s.constraints_deactivated) ||
      !r.u32(&n) || n > kMaxElems)
    return false;
  s.infeasible_per_column.resize(n);
  for (int& v : s.infeasible_per_column)
    if (!r.i32(&v)) return false;
  if (!r.u32(&n) || n > kMaxElems) return false;
  s.infeasible_events.resize(n);
  for (auto& [col, row] : s.infeasible_events)
    if (!r.i32(&col) || !r.i32(&row)) return false;
  if (!r.i32(&s.satisfied_constraints) || !r.i64(&s.classify_calls) ||
      !r.u32(&n) || n > kMaxElems)
    return false;
  s.column_ms.resize(n);
  for (double& v : s.column_ms)
    if (!r.f64(&v)) return false;
  if (!r.f64(&s.classify_ms) || !r.f64(&s.guide_ms) || !r.f64(&s.solve_ms))
    return false;

  int64_t cubes = 0;
  uint8_t backend = 0;
  if (!r.i64(&cubes) || !r.u8(&backend) ||
      backend > static_cast<uint8_t>(portfolio::BackendKind::kPortfolio))
    return false;
  res->total_cubes = static_cast<long>(cubes);
  res->backend = static_cast<portfolio::BackendKind>(backend);
  return true;
}

}  // namespace

std::string encode_record(const CanonicalJob& job, const CachedResult& result) {
  Writer w;
  w.u64(job.fingerprint);
  w.i32(job.restarts);
  put_constraint_set(w, job.set);
  put_options(w, job.options);
  put_portfolio(w, job.portfolio);
  put_result(w, result);
  return w.take();
}

bool decode_record(std::string_view payload, CanonicalJob* job,
                   CachedResult* result, std::string* err) {
  Reader r(payload);
  if (!r.u64(&job->fingerprint) || !r.i32(&job->restarts) ||
      !get_constraint_set(r, &job->set) || !get_options(r, &job->options) ||
      !get_portfolio(r, &job->portfolio) || !get_result(r, result) ||
      !r.done()) {
    if (err) *err = "record decode failed (truncated or malformed fields)";
    return false;
  }
  // Deep verification beyond CRC: re-canonicalise the decoded job and
  // demand the identical fingerprint.  Catches format drift (a field
  // added to the fingerprint but not the codec) before it can serve a
  // stale result under a fresh key.
  Job plain;
  plain.set = job->set;
  plain.options = job->options;
  plain.portfolio = job->portfolio;
  plain.restarts = job->restarts;
  CanonicalJob recanon = canonicalize(plain);
  if (recanon.fingerprint != job->fingerprint ||
      !recanon.equivalent(*job)) {
    if (err)
      *err = "record fingerprint mismatch (stored job does not re-hash to "
             "its stored fingerprint — format drift or tampering)";
    return false;
  }
  return true;
}

}  // namespace picola::persist
