#include "persist/io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "fault/fault.h"

namespace picola::persist::io {

namespace {

void set_err(std::string* err, const char* what, const std::string& detail) {
  if (err) *err = std::string(what) + ": " + detail;
}

void set_errno_err(std::string* err, const char* what, int e) {
  set_err(err, what, std::strerror(e));
}

/// Handle the non-I/O outcomes of a consulted action: sleep for kDelay,
/// die for a plain kCrash.  Returns the action for the caller to apply
/// kErrno/kShortIo/payload-bearing kCrash semantics.
fault::Action consult(const char* point) {
  fault::Action a = PICOLA_FAULT_POINT(point);
  fault::apply_delay(a);
  if (a.kind == fault::Kind::kCrash && a.max_bytes == 0) ::_exit(137);
  return a;
}

}  // namespace

File& File::operator=(File&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void File::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

namespace {

File open_with(const std::string& path, int flags, mode_t mode,
               std::string* err) {
  fault::Action a = consult("persist/open");
  if (a.kind == fault::Kind::kErrno) {
    set_errno_err(err, path.c_str(), a.error);
    return File();
  }
  int fd;
  do {
    fd = ::open(path.c_str(), flags, mode);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    set_errno_err(err, path.c_str(), errno);
    return File();
  }
  return File(fd);
}

}  // namespace

File open_read(const std::string& path, std::string* err) {
  return open_with(path, O_RDONLY, 0, err);
}

File create_trunc(const std::string& path, std::string* err) {
  return open_with(path, O_WRONLY | O_CREAT | O_TRUNC, 0644, err);
}

File open_append(const std::string& path, std::string* err) {
  return open_with(path, O_WRONLY | O_CREAT | O_APPEND, 0644, err);
}

bool write_all(File& f, const void* data, size_t n, std::string* err) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    size_t chunk = n;
    fault::Action a = consult("persist/write");
    if (a.kind == fault::Kind::kErrno) {
      if (a.error == EINTR) continue;  // retried exactly like a real EINTR
      set_errno_err(err, "write", a.error);
      return false;
    }
    if (a.kind == fault::Kind::kCrash) {
      // Torn-record crash: land the first max_bytes of this chunk (best
      // effort), then die as if kill -9'd mid-append.
      (void)!::write(f.fd(), p, std::min(chunk, a.max_bytes));
      ::_exit(137);
    }
    if (a.kind == fault::Kind::kShortIo && a.max_bytes > 0)
      chunk = std::min(chunk, a.max_bytes);
    ssize_t w = ::write(f.fd(), p, chunk);
    if (w < 0) {
      if (errno == EINTR) continue;
      set_errno_err(err, "write", errno);
      return false;
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

bool read_all(File& f, std::string* out, std::string* err) {
  char buf[1 << 16];
  for (;;) {
    size_t want = sizeof(buf);
    fault::Action a = consult("persist/read");
    if (a.kind == fault::Kind::kErrno) {
      if (a.error == EINTR) continue;
      set_errno_err(err, "read", a.error);
      return false;
    }
    if (a.kind == fault::Kind::kShortIo && a.max_bytes > 0)
      want = std::min(want, a.max_bytes);
    ssize_t r = ::read(f.fd(), buf, want);
    if (r < 0) {
      if (errno == EINTR) continue;
      set_errno_err(err, "read", errno);
      return false;
    }
    if (r == 0) return true;
    out->append(buf, static_cast<size_t>(r));
  }
}

bool fsync_file(File& f, std::string* err) {
  fault::Action a = consult("persist/fsync");
  if (a.kind == fault::Kind::kErrno) {
    set_errno_err(err, "fsync", a.error);
    return false;
  }
  if (::fsync(f.fd()) != 0) {
    set_errno_err(err, "fsync", errno);
    return false;
  }
  return true;
}

bool truncate_file(File& f, uint64_t len, std::string* err) {
  fault::Action a = consult("persist/truncate");
  if (a.kind == fault::Kind::kErrno) {
    set_errno_err(err, "ftruncate", a.error);
    return false;
  }
  if (::ftruncate(f.fd(), static_cast<off_t>(len)) != 0) {
    set_errno_err(err, "ftruncate", errno);
    return false;
  }
  return true;
}

bool rename_file(const std::string& from, const std::string& to,
                 std::string* err) {
  fault::Action a = consult("persist/rename");
  if (a.kind == fault::Kind::kErrno) {
    set_errno_err(err, "rename", a.error);
    return false;
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    set_errno_err(err, "rename", errno);
    return false;
  }
  consult("persist/rename_after");  // crash-after-rename injection site
  return true;
}

bool fsync_dir(const std::string& dir, std::string* err) {
  File f = open_with(dir, O_RDONLY | O_DIRECTORY, 0, err);
  if (!f.valid()) return false;
  return fsync_file(f, err);
}

bool unlink_file(const std::string& path, std::string* err) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    set_errno_err(err, "unlink", errno);
    return false;
  }
  return true;
}

bool ensure_dir(const std::string& path, std::string* err) {
  struct stat st;
  if (::stat(path.c_str(), &st) == 0) {
    if (S_ISDIR(st.st_mode)) return true;
    set_err(err, path.c_str(), "exists but is not a directory");
    return false;
  }
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    set_errno_err(err, path.c_str(), errno);
    return false;
  }
  return true;
}

bool exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

int64_t file_size(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<int64_t>(st.st_size);
}

std::vector<std::string> list_dir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (!d) return names;
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    if (::stat((dir + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode))
      names.push_back(std::move(name));
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace picola::persist::io
