#include "persist/store.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "persist/codec.h"

namespace picola::persist {

namespace {

constexpr char kSnapshotMagic[4] = {'P', 'S', 'N', 'P'};
constexpr char kJournalMagic[4] = {'P', 'J', 'N', 'L'};
constexpr char kTrailerMagic[4] = {'P', 'E', 'N', 'D'};
constexpr size_t kSnapshotHeaderSize = 4 + 4 + 8 + 8;
constexpr size_t kJournalHeaderSize = 4 + 4 + 8 + 4;
constexpr size_t kTrailerSize = 4 + 4;
constexpr size_t kFrameHeaderSize = 4 + 4;  // len + payload crc
constexpr uint8_t kOpInsert = 1;
constexpr uint8_t kOpEvict = 2;

std::string snapshot_path(const std::string& dir) {
  return dir + "/snapshot.pcs";
}
std::string snapshot_tmp_path(const std::string& dir) {
  return dir + "/snapshot.pcs.tmp";
}
std::string journal_path(const std::string& dir, uint64_t epoch) {
  return dir + "/journal-" + std::to_string(epoch) + ".pcj";
}

/// Epoch of a journal file name ("journal-<n>.pcj"), or nullopt.
std::optional<uint64_t> journal_name_epoch(const std::string& name) {
  constexpr char kPrefix[] = "journal-";
  constexpr char kSuffix[] = ".pcj";
  if (name.size() <= sizeof(kPrefix) - 1 + sizeof(kSuffix) - 1) return {};
  if (name.compare(0, sizeof(kPrefix) - 1, kPrefix) != 0) return {};
  if (name.compare(name.size() - (sizeof(kSuffix) - 1), sizeof(kSuffix) - 1,
                   kSuffix) != 0)
    return {};
  uint64_t epoch = 0;
  size_t begin = sizeof(kPrefix) - 1;
  size_t end = name.size() - (sizeof(kSuffix) - 1);
  if (begin == end) return {};
  for (size_t i = begin; i < end; ++i) {
    if (name[i] < '0' || name[i] > '9') return {};
    epoch = epoch * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return epoch;
}

[[noreturn]] void corrupt(const std::string& file, const std::string& what) {
  throw std::runtime_error("persist: refusing to load " + file + ": " + what);
}

std::string journal_header(uint64_t epoch) {
  Writer w;
  w.bytes({kJournalMagic, 4});
  w.u32(kFormatVersion);
  w.u64(epoch);
  w.u32(crc32c(w.str()));
  return w.take();
}

std::string frame_record(const std::string& payload) {
  Writer w;
  w.u32(static_cast<uint32_t>(payload.size()));
  w.u32(crc32c(payload));
  w.bytes(payload);
  return w.take();
}

}  // namespace

const char* recovery_outcome_name(RecoveryOutcome o) {
  switch (o) {
    case RecoveryOutcome::kNone: return "none";
    case RecoveryOutcome::kEmpty: return "empty";
    case RecoveryOutcome::kSnapshotOnly: return "snapshot_only";
    case RecoveryOutcome::kJournalOnly: return "journal_only";
    case RecoveryOutcome::kBoth: return "snapshot+journal";
  }
  return "?";
}

CacheStore::CacheStore(StoreOptions options, obs::MetricsRegistry* metrics)
    : options_(std::move(options)) {
  std::string err;
  if (!io::ensure_dir(options_.dir, &err))
    throw std::runtime_error("persist: cache dir unusable: " + err);
  if (metrics) {
    snapshots_ = &metrics->counter("persist/snapshots");
    snapshot_failures_ = &metrics->counter("persist/snapshot_failures");
    journal_appends_ = &metrics->counter("persist/journal_appends");
    append_errors_ = &metrics->counter("persist/append_errors");
    snapshot_ns_ = &metrics->histogram("persist/snapshot");
    snapshot_age_gauge_ = &metrics->gauge("persist/snapshot_age_seconds");
    journal_bytes_gauge_ = &metrics->gauge("persist/journal_bytes");
    records_loaded_gauge_ = &metrics->gauge("persist/records_loaded");
    journal_replayed_gauge_ = &metrics->gauge("persist/journal_replayed");
    outcome_gauge_ = &metrics->gauge("persist/recovery_outcome");
    epoch_gauge_ = &metrics->gauge("persist/epoch");
    torn_tail_gauge_ = &metrics->gauge("persist/torn_tail");
  }
}

CacheStore::~CacheStore() {
  std::lock_guard<std::mutex> lock(mu_);
  if (journal_.valid()) {
    std::string err;
    (void)io::fsync_file(journal_, &err);
    journal_.close();
  }
}

LoadStats CacheStore::load(ResultCache* cache) {
  LoadStats stats;
  uint64_t snapshot_epoch = 0;
  bool have_snapshot = false;

  // --- Snapshot replay (hard-fail on anything but absence). ---
  const std::string snap = snapshot_path(options_.dir);
  if (io::exists(snap)) {
    std::string err;
    io::File f = io::open_read(snap, &err);
    if (!f.valid()) corrupt(snap, err);
    std::string data;
    if (!io::read_all(f, &data, &err)) corrupt(snap, err);
    if (data.size() < kSnapshotHeaderSize + kTrailerSize)
      corrupt(snap, "truncated header");
    Reader r(std::string_view(data).substr(0, kSnapshotHeaderSize));
    uint8_t magic[4];
    uint32_t version = 0;
    uint64_t count = 0;
    for (uint8_t& m : magic) r.u8(&m);
    r.u32(&version);
    r.u64(&snapshot_epoch);
    r.u64(&count);
    if (std::memcmp(magic, kSnapshotMagic, 4) != 0) corrupt(snap, "bad magic");
    if (version != kFormatVersion)
      corrupt(snap, "format version " + std::to_string(version) +
                        " (this build reads version " +
                        std::to_string(kFormatVersion) + ")");
    size_t pos = kSnapshotHeaderSize;
    for (uint64_t i = 0; i < count; ++i) {
      if (data.size() - pos < kFrameHeaderSize + kTrailerSize)
        corrupt(snap, "truncated record " + std::to_string(i));
      Reader fr(std::string_view(data).substr(pos, kFrameHeaderSize));
      uint32_t len = 0, crc = 0;
      fr.u32(&len);
      fr.u32(&crc);
      pos += kFrameHeaderSize;
      if (len > data.size() - kTrailerSize - pos)
        corrupt(snap, "truncated record " + std::to_string(i));
      std::string_view payload(data.data() + pos, len);
      pos += len;
      if (crc32c(payload) != crc)
        corrupt(snap, "record " + std::to_string(i) + " checksum mismatch");
      CanonicalJob job;
      CachedResult result;
      if (!decode_record(payload, &job, &result, &err))
        corrupt(snap, "record " + std::to_string(i) + ": " + err);
      // for_each exported MRU-first; tail-appending rebuilds that order.
      cache->load_insert(job, std::move(result), /*most_recent=*/false);
      ++stats.snapshot_records;
    }
    if (data.size() - pos != kTrailerSize)
      corrupt(snap, "trailing bytes after the last record");
    if (std::memcmp(data.data() + pos, kTrailerMagic, 4) != 0)
      corrupt(snap, "bad trailer magic");
    Reader tr(std::string_view(data).substr(pos + 4, 4));
    uint32_t file_crc = 0;
    tr.u32(&file_crc);
    if (crc32c(std::string_view(data).substr(0, pos)) != file_crc)
      corrupt(snap, "file checksum mismatch");
    have_snapshot = true;
  }

  // --- Journal replay: every epoch >= the snapshot's, ascending. ---
  std::vector<uint64_t> epochs;
  for (const std::string& name : io::list_dir(options_.dir))
    if (auto e = journal_name_epoch(name))
      if (*e >= snapshot_epoch) epochs.push_back(*e);
  std::sort(epochs.begin(), epochs.end());

  uint64_t active_epoch = snapshot_epoch;
  uint64_t active_offset = 0;  // append position in the active journal
  for (size_t j = 0; j < epochs.size(); ++j) {
    const bool last = j + 1 == epochs.size();
    const std::string path = journal_path(options_.dir, epochs[j]);
    std::string err;
    io::File f = io::open_read(path, &err);
    if (!f.valid()) corrupt(path, err);
    std::string data;
    if (!io::read_all(f, &data, &err)) corrupt(path, err);
    if (data.size() < kJournalHeaderSize) {
      // A header can only be torn by a crash during journal creation,
      // which nothing ever appends after — legal solely on the newest
      // journal, where recovery rewrites it from scratch.
      if (!last) corrupt(path, "truncated header mid-chain");
      stats.torn_tail = stats.torn_tail || !data.empty();
      active_epoch = epochs[j];
      active_offset = 0;
      ++stats.journals;
      continue;
    }
    {
      Reader r(std::string_view(data).substr(0, kJournalHeaderSize));
      uint8_t magic[4];
      uint32_t version = 0, header_crc = 0;
      uint64_t epoch = 0;
      for (uint8_t& m : magic) r.u8(&m);
      r.u32(&version);
      r.u64(&epoch);
      r.u32(&header_crc);
      if (std::memcmp(magic, kJournalMagic, 4) != 0) corrupt(path, "bad magic");
      if (version != kFormatVersion)
        corrupt(path, "format version " + std::to_string(version));
      if (epoch != epochs[j]) corrupt(path, "epoch does not match file name");
      if (crc32c(std::string_view(data).substr(0, kJournalHeaderSize - 4)) !=
          header_crc)
        corrupt(path, "header checksum mismatch");
    }
    size_t pos = kJournalHeaderSize;
    size_t good = pos;  // end of the last intact record
    while (pos < data.size()) {
      if (data.size() - pos < kFrameHeaderSize) break;  // torn frame header
      Reader fr(std::string_view(data).substr(pos, kFrameHeaderSize));
      uint32_t len = 0, crc = 0;
      fr.u32(&len);
      fr.u32(&crc);
      if (len > data.size() - pos - kFrameHeaderSize) break;  // torn payload
      std::string_view payload(data.data() + pos + kFrameHeaderSize, len);
      if (crc32c(payload) != crc) {
        // A full-length record with a bad sum is not a torn append — a
        // crash leaves a short file, never garbage of the right length.
        corrupt(path, "record checksum mismatch at offset " +
                          std::to_string(pos));
      }
      Reader pr(payload);
      uint8_t op = 0;
      if (!pr.u8(&op)) corrupt(path, "empty record");
      if (op == kOpInsert) {
        CanonicalJob job;
        CachedResult result;
        if (!decode_record(payload.substr(1), &job, &result, &err))
          corrupt(path, err);
        cache->load_insert(job, std::move(result), /*most_recent=*/true);
        ++stats.journal_inserts;
      } else if (op == kOpEvict) {
        uint64_t fp = 0;
        if (!pr.u64(&fp) || !pr.done()) corrupt(path, "malformed evict");
        cache->load_erase(fp);
        ++stats.journal_evicts;
      } else {
        corrupt(path, "unknown op " + std::to_string(op));
      }
      pos += kFrameHeaderSize + len;
      good = pos;
    }
    if (good != data.size()) {
      // Bytes past the last intact record: a torn final append.  Legal
      // only at the physical end of the newest journal.
      if (!last) corrupt(path, "torn record mid-chain");
      stats.torn_tail = true;
    }
    active_epoch = epochs[j];
    active_offset = good;
    ++stats.journals;
  }

  stats.epoch = active_epoch;
  stats.outcome =
      have_snapshot
          ? (stats.journal_inserts + stats.journal_evicts > 0
                 ? RecoveryOutcome::kBoth
                 : RecoveryOutcome::kSnapshotOnly)
          : (stats.journal_inserts + stats.journal_evicts > 0
                 ? RecoveryOutcome::kJournalOnly
                 : RecoveryOutcome::kEmpty);

  {
    std::lock_guard<std::mutex> lock(mu_);
    journal_epoch_ = active_epoch;
    // The journal itself is opened lazily on the first append (load()
    // stays free of write side effects so a verification pass can run
    // on a live dir); a torn tail is truncated away then.
    journal_bytes_ = active_offset;
    // Force the first snapshot to compact whenever recovery had to
    // replay journal records or cut a torn tail.
    ops_since_snapshot_ =
        stats.journal_inserts + stats.journal_evicts + (stats.torn_tail ? 1 : 0);
    load_stats_ = stats;
  }
  if (records_loaded_gauge_)
    records_loaded_gauge_->set(static_cast<int64_t>(stats.snapshot_records));
  if (journal_replayed_gauge_)
    journal_replayed_gauge_->set(
        static_cast<int64_t>(stats.journal_inserts + stats.journal_evicts));
  if (outcome_gauge_) outcome_gauge_->set(static_cast<int>(stats.outcome));
  if (epoch_gauge_) epoch_gauge_->set(static_cast<int64_t>(stats.epoch));
  if (torn_tail_gauge_) torn_tail_gauge_->set(stats.torn_tail ? 1 : 0);
  refresh_gauges();
  return stats;
}

bool CacheStore::open_journal(uint64_t epoch, std::string* err) {
  if (journal_.valid() && epoch == journal_epoch_) return true;
  journal_.close();
  const std::string path = journal_path(options_.dir, epoch);
  int64_t size = io::file_size(path);
  io::File f = io::open_append(path, err);
  if (!f.valid()) return false;
  if (size < static_cast<int64_t>(kJournalHeaderSize)) {
    // New journal (or one whose creation was cut short): start it over.
    if (size > 0 && !io::truncate_file(f, 0, err)) return false;
    std::string header = journal_header(epoch);
    if (!io::write_all(f, header.data(), header.size(), err)) return false;
    journal_bytes_ = header.size();
  } else if (static_cast<int64_t>(journal_bytes_) < size) {
    // load() found a torn tail at journal_bytes_; cut it before the
    // next record lands so the file never holds garbage mid-stream.
    if (!io::truncate_file(f, journal_bytes_, err)) return false;
  } else {
    journal_bytes_ = static_cast<uint64_t>(size);
  }
  journal_ = std::move(f);
  journal_epoch_ = epoch;
  return true;
}

bool CacheStore::append(const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (journal_broken_) {
    count_append_error("journal broken (awaiting rotation)");
    return false;
  }
  std::string err;
  if (!open_journal(journal_epoch_, &err)) {
    count_append_error(err);
    return false;
  }
  std::string frame = frame_record(payload);
  uint64_t before = journal_bytes_;
  if (!io::write_all(journal_, frame.data(), frame.size(), &err)) {
    // A failed append may have landed a prefix; cut back to the last
    // record boundary so the file stays parseable.  If even that fails
    // the journal is broken until the next rotation gives a fresh file.
    std::string terr;
    if (!io::truncate_file(journal_, before, &terr)) journal_broken_ = true;
    count_append_error(err);
    return false;
  }
  journal_bytes_ = before + frame.size();
  ++ops_since_snapshot_;
  if (journal_appends_) journal_appends_->add(1);
  return true;
}

void CacheStore::count_append_error(const std::string& err) {
  if (append_errors_) append_errors_->add(1);
  static_cast<void>(err);  // the counter is the operator signal
}

void CacheStore::on_insert(const CanonicalJob& job,
                           const CachedResult& result) {
  Writer w;
  w.u8(kOpInsert);
  w.bytes(encode_record(job, result));
  append(w.take());
}

void CacheStore::on_evict(uint64_t fingerprint) {
  Writer w;
  w.u8(kOpEvict);
  w.u64(fingerprint);
  append(w.take());
}

bool CacheStore::rotate_journal(std::string* err) {
  if (journal_.valid()) {
    // Rotation is the journal's durability barrier (appends themselves
    // only hit the page cache).  An fsync failure here loses nothing on
    // a process kill, so degrade and rotate anyway.
    std::string ferr;
    if (!io::fsync_file(journal_, &ferr)) count_append_error(ferr);
    journal_.close();
  }
  ++journal_epoch_;
  journal_bytes_ = 0;
  journal_broken_ = false;
  // Created lazily by the first append; the epoch exists logically the
  // moment the snapshot stamped with it is durable.
  static_cast<void>(err);
  return true;
}

bool CacheStore::snapshot(const ResultCache& cache, std::string* error) {
  uint64_t t0 = obs::now_ns();
  uint64_t epoch;
  {
    // Step 1 — rotate: appends from here on land in the new epoch and
    // survive regardless of how far the snapshot below gets.
    std::lock_guard<std::mutex> lock(mu_);
    std::string err;
    rotate_journal(&err);
    epoch = journal_epoch_;
    ops_since_snapshot_ = 0;
  }

  // Step 2 — export.  No store lock held: for_each takes cache shard
  // locks, and concurrent inserts take shard lock then mu_ (appending to
  // the already-rotated journal), so holding mu_ here would deadlock.
  std::vector<std::string> records;
  cache.for_each([&records](const CanonicalJob& job, const CachedResult& res) {
    records.push_back(encode_record(job, res));
  });

  Writer w;
  w.bytes({kSnapshotMagic, 4});
  w.u32(kFormatVersion);
  w.u64(epoch);
  w.u64(records.size());
  for (const std::string& r : records) w.bytes(frame_record(r));
  uint32_t file_crc = crc32c(w.str());
  w.bytes({kTrailerMagic, 4});
  w.u32(file_crc);
  std::string data = w.take();

  const std::string tmp = snapshot_tmp_path(options_.dir);
  auto fail = [&](const std::string& why) {
    std::string uerr;
    io::unlink_file(tmp, &uerr);
    if (snapshot_failures_) snapshot_failures_->add(1);
    if (error) *error = why;
    return false;
  };

  // Step 3 — write-temp, fsync, atomic rename, fsync dir.
  std::string err;
  {
    io::File f = io::create_trunc(tmp, &err);
    if (!f.valid()) return fail(err);
    for (size_t off = 0; off < data.size(); off += 1 << 16) {
      size_t chunk = std::min(data.size() - off, size_t{1} << 16);
      if (!io::write_all(f, data.data() + off, chunk, &err)) return fail(err);
    }
    if (!io::fsync_file(f, &err)) return fail(err);
  }
  if (!io::rename_file(tmp, snapshot_path(options_.dir), &err))
    return fail(err);
  if (!io::fsync_dir(options_.dir, &err)) return fail(err);

  // Step 4 — the snapshot is durable; only now retire older journals.
  for (const std::string& name : io::list_dir(options_.dir))
    if (auto e = journal_name_epoch(name); e && *e < epoch) {
      std::string uerr;
      io::unlink_file(options_.dir + "/" + name, &uerr);
    }

  {
    std::lock_guard<std::mutex> lock(mu_);
    last_snapshot_ns_ = static_cast<int64_t>(obs::now_ns());
  }
  if (snapshots_) snapshots_->add(1);
  if (snapshot_ns_) snapshot_ns_->record(obs::now_ns() - t0);
  if (epoch_gauge_) epoch_gauge_->set(static_cast<int64_t>(epoch));
  refresh_gauges();
  return true;
}

bool CacheStore::due() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.snapshot_interval_s < 0) return false;
  if (ops_since_snapshot_ == 0) return false;
  if (options_.snapshot_interval_s == 0) return true;
  if (last_snapshot_ns_ < 0) return true;
  return obs::now_ns() - static_cast<uint64_t>(last_snapshot_ns_) >=
         static_cast<uint64_t>(options_.snapshot_interval_s) * 1'000'000'000ULL;
}

void CacheStore::refresh_gauges() const {
  if (snapshot_age_gauge_) {
    double age = snapshot_age_s();
    snapshot_age_gauge_->set(age < 0 ? -1 : static_cast<int64_t>(age));
  }
  if (journal_bytes_gauge_)
    journal_bytes_gauge_->set(static_cast<int64_t>(journal_bytes()));
}

uint64_t CacheStore::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_epoch_;
}

uint64_t CacheStore::journal_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_bytes_;
}

double CacheStore::snapshot_age_s() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (last_snapshot_ns_ < 0) return -1;
  return static_cast<double>(obs::now_ns() -
                             static_cast<uint64_t>(last_snapshot_ns_)) /
         1e9;
}

uint64_t CacheStore::snapshots_taken() const {
  return snapshots_ ? static_cast<uint64_t>(snapshots_->value()) : 0;
}

}  // namespace picola::persist
