#pragma once
// Durable storage engine for the ResultCache: a versioned, checksummed
// snapshot plus an epoch-numbered append-only journal, giving a
// restarted service a warm cache that serves bit-identical results.
//
// On-disk layout inside the cache dir (all integers little-endian):
//
//   snapshot.pcs    "PSNP" u32 version  u64 epoch  u64 record_count
//                   record*  { u32 len  u32 crc32c(payload)  payload }
//                   "PEND"   u32 crc32c(everything before the trailer)
//   journal-E.pcj   "PJNL" u32 version  u64 epoch  u32 crc32c(header)
//                   record*  { u32 len  u32 crc32c(payload)  payload }
//                   where payload = u8 op (1 insert | 2 evict) + body
//
// Snapshot protocol (crash-consistent at every step):
//   1. rotate: fsync + close journal epoch E, open journal E+1 — new
//      appends land there, nothing written during the snapshot is lost;
//   2. export the cache (ResultCache::for_each) into snapshot.pcs.tmp
//      stamped epoch E+1;
//   3. fsync the tmp, rename(tmp -> snapshot.pcs), fsync the dir —
//      the snapshot is durable atomically or not at all;
//   4. only now prune journals with epoch < E+1 (the "journal truncated
//      after the snapshot is durable" rule).
//
// Recovery (load): read the snapshot (epoch S; ANY corruption —
// checksum, version, truncation — hard-fails rather than serving bytes
// rot invented), then replay journals with epoch >= S in ascending
// order.  A torn record is tolerated ONLY at the physical end of the
// highest-epoch journal — the one state a kill -9 mid-append can
// manufacture — and is truncated away; a bad CRC anywhere else is
// corruption and hard-fails.  Per-fingerprint replay order is exact
// because the cache emits journal events under the owning shard's lock.
//
// Durability contract: journal appends are write()s without per-record
// fsync — surviving process death (kill -9) needs only the page cache,
// which is exactly what the chaos harness proves; a machine crash may
// lose the tail since the last rotation/shutdown fsync.  Snapshots are
// always fully fsync'd.  Persistence failures (ENOSPC, EIO...) degrade:
// the store logs + counts them and the service keeps serving from
// memory — the cache is a memo, never the source of truth.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "persist/io.h"
#include "service/result_cache.h"

namespace picola::persist {

/// Bump whenever the record codec (codec.h) or file framing changes.
constexpr uint32_t kFormatVersion = 1;

struct StoreOptions {
  std::string dir;  ///< created if missing (one level)
  /// Seconds between periodic snapshots: > 0 = at most one per interval,
  /// 0 = whenever anything changed (chaos/test mode), < 0 = only the
  /// explicit shutdown snapshot.
  int snapshot_interval_s = 300;
};

/// What load() found, for operators ("recovery outcome" in /statusz).
enum class RecoveryOutcome : int {
  kNone = 0,         ///< no load attempted (persistence off)
  kEmpty = 1,        ///< fresh dir: cold start
  kSnapshotOnly = 2, ///< snapshot, no journal records
  kJournalOnly = 3,  ///< journal records, no snapshot
  kBoth = 4,         ///< snapshot + journal tail
};

const char* recovery_outcome_name(RecoveryOutcome o);

struct LoadStats {
  RecoveryOutcome outcome = RecoveryOutcome::kNone;
  size_t snapshot_records = 0;  ///< entries loaded from the snapshot
  size_t journal_inserts = 0;   ///< insert records replayed
  size_t journal_evicts = 0;    ///< evict records replayed
  size_t journals = 0;          ///< journal files replayed
  bool torn_tail = false;       ///< a torn final record was truncated
  uint64_t epoch = 0;           ///< active journal epoch after load
};

/// The engine.  One instance owns one cache dir.  Thread-safety: journal
/// appends (listener callbacks, arriving under cache shard locks) and
/// snapshot() serialise on an internal mutex; load() must happen-before
/// concurrent use, as must the listener attach/detach (see
/// ResultCache::set_listener).
class CacheStore : public ResultCache::Listener {
 public:
  /// Opens/creates the dir.  Throws std::runtime_error when the dir
  /// cannot be created.  `metrics` (optional) receives the persist/*
  /// instruments; it must outlive the store.
  explicit CacheStore(StoreOptions options,
                      obs::MetricsRegistry* metrics = nullptr);
  ~CacheStore() override;  // fsync + close the journal

  CacheStore(const CacheStore&) = delete;
  CacheStore& operator=(const CacheStore&) = delete;

  /// Recover into `cache` (snapshot replay, then journal tail) and open
  /// the active journal for appending.  Throws std::runtime_error on
  /// corruption or version mismatch — a service must refuse to start on
  /// a cache dir it cannot trust, not silently serve from it.
  LoadStats load(ResultCache* cache);

  /// ResultCache::Listener — journal the mutation.  Append errors
  /// degrade (counted, journal marked broken until the next rotation);
  /// they never throw into the serving path.
  void on_insert(const CanonicalJob& job, const CachedResult& result) override;
  void on_evict(uint64_t fingerprint) override;

  /// Write a durable snapshot of `cache` (protocol above).  False +
  /// *error when any step failed; the previous snapshot and the journal
  /// chain survive a failed attempt.
  bool snapshot(const ResultCache& cache, std::string* error = nullptr);

  /// True when enough has changed/elapsed that snapshot() should run
  /// (see StoreOptions::snapshot_interval_s).
  bool due() const;

  /// Refresh the persist/* gauges (snapshot age, journal bytes).
  void refresh_gauges() const;

  const LoadStats& load_stats() const { return load_stats_; }
  uint64_t epoch() const;
  uint64_t journal_bytes() const;
  /// Seconds since the last successful snapshot (this process); -1
  /// before the first one.
  double snapshot_age_s() const;
  uint64_t snapshots_taken() const;
  const std::string& dir() const { return options_.dir; }

 private:
  struct JournalFile;

  bool append(const std::string& payload);
  bool open_journal(uint64_t epoch, std::string* err);
  bool rotate_journal(std::string* err);
  void count_append_error(const std::string& err);

  StoreOptions options_;
  LoadStats load_stats_;

  mutable std::mutex mu_;        ///< guards everything below
  io::File journal_;             ///< active journal (append mode)
  uint64_t journal_epoch_ = 0;
  uint64_t journal_bytes_ = 0;   ///< bytes in the active journal
  bool journal_broken_ = false;  ///< append failed; wait for rotation
  uint64_t ops_since_snapshot_ = 0;
  int64_t last_snapshot_ns_ = -1;  ///< obs::now_ns() of last success

  // persist/* instruments (null when metrics are off).
  obs::Counter* snapshots_ = nullptr;
  obs::Counter* snapshot_failures_ = nullptr;
  obs::Counter* journal_appends_ = nullptr;
  obs::Counter* append_errors_ = nullptr;
  obs::Histogram* snapshot_ns_ = nullptr;
  obs::Gauge* snapshot_age_gauge_ = nullptr;
  obs::Gauge* journal_bytes_gauge_ = nullptr;
  obs::Gauge* records_loaded_gauge_ = nullptr;
  obs::Gauge* journal_replayed_gauge_ = nullptr;
  obs::Gauge* outcome_gauge_ = nullptr;
  obs::Gauge* epoch_gauge_ = nullptr;
  obs::Gauge* torn_tail_gauge_ = nullptr;
};

}  // namespace picola::persist
