#pragma once
// CNF formula builder with selectable cardinality encodings.
//
// Literals use the DIMACS convention throughout: variables are 1-based,
// a positive literal is the variable number and a negative literal its
// negation.  The at-most-one / at-most-k helpers implement the three
// classic encodings compared in "Yet Another Comparison of SAT Encodings
// for the At-Most-K Constraint" (pairwise/binomial, Sinz's sequential
// counter, and the commander encoding), selectable per build so the
// benches can race them; all three introduce only implication clauses
// over fresh auxiliary variables, so any satisfying assignment of the
// original variables extends to one of the augmented formula.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace picola::sat {

/// A CNF formula: `num_vars` variables (1..num_vars) and a clause list.
struct Cnf {
  int num_vars = 0;
  std::vector<std::vector<int>> clauses;

  /// Allocate a fresh variable and return its (positive) literal.
  int new_var() { return ++num_vars; }

  /// Append one clause.  Literals must be non-zero and within num_vars;
  /// violations are reported by validate(), not checked here (hot path).
  void add_clause(std::vector<int> lits) { clauses.push_back(std::move(lits)); }

  long num_clauses() const { return static_cast<long>(clauses.size()); }

  /// "" when every clause is non-empty with in-range, non-zero literals.
  std::string validate() const;
};

/// Cardinality-constraint encoding family (Zhou's comparison).
enum class CardEncoding {
  kPairwise,    ///< binomial: one clause per forbidden subset
  kSequential,  ///< Sinz sequential counter (auxiliary register chain)
  kCommander,   ///< recursive commander variables (groups of 3)
};

const char* card_encoding_name(CardEncoding e);
std::optional<CardEncoding> parse_card_encoding(std::string_view name);

/// At most one of `lits` is true.  kCommander recurses over group
/// commanders; kSequential uses the Sinz register chain; kPairwise emits
/// all O(n^2) binary clauses.
void add_at_most_one(Cnf& cnf, const std::vector<int>& lits, CardEncoding e);

/// At most `k` of `lits` are true.  k <= 0 forces all literals false,
/// k >= |lits| is a no-op.  kPairwise emits the binomial encoding (one
/// clause per (k+1)-subset) but falls back to the sequential counter
/// when that would exceed ~20k clauses; kCommander applies only to
/// k == 1 and otherwise falls back to sequential.
void add_at_most_k(Cnf& cnf, const std::vector<int>& lits, int k,
                   CardEncoding e);

/// At least `k` of `lits` are true (at-most-(n-k) over the negations).
void add_at_least_k(Cnf& cnf, const std::vector<int>& lits, int k,
                    CardEncoding e);

/// Bailleux–Boutaouche totalizer over `lits`, counting direction only:
/// returns outputs o[0..n-1] with clauses forcing o[j] whenever at least
/// j+1 of `lits` are true.  Assuming ¬o[c] therefore caps the true count
/// at c — one totalizer supports every cardinality bound via a single
/// assumption literal, which is what makes the sat backend's at-least-t
/// sweep incremental (O(n²) clauses once instead of a fresh counter per
/// target).  Any model of the original variables extends to the
/// auxiliaries (set o[j] = "at least j+1 true" bottom-up).
std::vector<int> add_totalizer(Cnf& cnf, const std::vector<int>& lits);

}  // namespace picola::sat
