#pragma once
// DIMACS CNF export/import, so the in-tree solver's verdicts can be
// diffed against external solvers (`picola sat-export` writes this
// format; the round-trip tests parse it back and re-solve).

#include <string>
#include <vector>

#include "sat/cnf.h"

namespace picola::sat {

/// Render `cnf` in DIMACS format.  `comments` become leading `c ` lines
/// (one per entry, embedded newlines split into separate comment lines).
std::string write_dimacs(const Cnf& cnf,
                         const std::vector<std::string>& comments = {});

struct DimacsParseResult {
  Cnf cnf;
  std::string error;

  bool ok() const { return error.empty(); }
};

/// Parse a DIMACS file: comments skipped, the `p cnf V C` header
/// mandatory, clauses 0-terminated.  Variables above the declared count
/// or a clause-count mismatch are errors.
DimacsParseResult parse_dimacs(const std::string& text);

}  // namespace picola::sat
