#include "sat/cnf.h"

#include <cstdlib>

namespace picola::sat {

std::string Cnf::validate() const {
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (clauses[i].empty())
      return "clause " + std::to_string(i) + " is empty";
    for (int lit : clauses[i]) {
      if (lit == 0 || std::abs(lit) > num_vars)
        return "clause " + std::to_string(i) + " has out-of-range literal " +
               std::to_string(lit);
    }
  }
  return "";
}

const char* card_encoding_name(CardEncoding e) {
  switch (e) {
    case CardEncoding::kPairwise: return "pairwise";
    case CardEncoding::kSequential: return "sequential";
    case CardEncoding::kCommander: return "commander";
  }
  return "?";
}

std::optional<CardEncoding> parse_card_encoding(std::string_view name) {
  if (name == "pairwise") return CardEncoding::kPairwise;
  if (name == "sequential") return CardEncoding::kSequential;
  if (name == "commander") return CardEncoding::kCommander;
  return std::nullopt;
}

namespace {

void amo_pairwise(Cnf& cnf, const std::vector<int>& lits) {
  for (size_t i = 0; i < lits.size(); ++i)
    for (size_t j = i + 1; j < lits.size(); ++j)
      cnf.add_clause({-lits[i], -lits[j]});
}

/// Sinz's sequential AMO: registers s_i = "some lit among the first i+1
/// is true"; only the implication direction is needed.
void amo_sequential(Cnf& cnf, const std::vector<int>& lits) {
  const size_t n = lits.size();
  if (n <= 1) return;
  std::vector<int> s(n - 1);
  for (size_t i = 0; i + 1 < n; ++i) s[i] = cnf.new_var();
  cnf.add_clause({-lits[0], s[0]});
  for (size_t i = 1; i + 1 < n; ++i) {
    cnf.add_clause({-lits[i], s[i]});
    cnf.add_clause({-s[i - 1], s[i]});
    cnf.add_clause({-lits[i], -s[i - 1]});
  }
  cnf.add_clause({-lits[n - 1], -s[n - 2]});
}

/// Commander AMO over groups of 3: pairwise within each group, a
/// commander variable implied by every group member, and AMO recursively
/// over the commanders.
void amo_commander(Cnf& cnf, std::vector<int> lits) {
  constexpr size_t kGroup = 3;
  while (lits.size() > kGroup) {
    std::vector<int> commanders;
    for (size_t g = 0; g < lits.size(); g += kGroup) {
      size_t end = std::min(g + kGroup, lits.size());
      for (size_t i = g; i < end; ++i)
        for (size_t j = i + 1; j < end; ++j)
          cnf.add_clause({-lits[i], -lits[j]});
      int c = cnf.new_var();
      for (size_t i = g; i < end; ++i) cnf.add_clause({-lits[i], c});
      commanders.push_back(c);
    }
    lits = std::move(commanders);
  }
  amo_pairwise(cnf, lits);
}

/// Sinz's sequential counter LT_{n,k}: register r[i][j] = "at least j+1
/// of the first i+1 literals are true".
void amk_sequential(Cnf& cnf, const std::vector<int>& lits, int k) {
  const int n = static_cast<int>(lits.size());
  // r(i, j) for i in [0, n-2], j in [0, k-1].
  std::vector<int> r(static_cast<size_t>(n - 1) * static_cast<size_t>(k));
  for (auto& v : r) v = cnf.new_var();
  auto reg = [&](int i, int j) {
    return r[static_cast<size_t>(i) * static_cast<size_t>(k) +
             static_cast<size_t>(j)];
  };
  cnf.add_clause({-lits[0], reg(0, 0)});
  for (int j = 1; j < k; ++j) cnf.add_clause({-reg(0, j)});
  for (int i = 1; i < n - 1; ++i) {
    cnf.add_clause({-lits[static_cast<size_t>(i)], reg(i, 0)});
    cnf.add_clause({-reg(i - 1, 0), reg(i, 0)});
    for (int j = 1; j < k; ++j) {
      cnf.add_clause({-lits[static_cast<size_t>(i)], -reg(i - 1, j - 1),
                      reg(i, j)});
      cnf.add_clause({-reg(i - 1, j), reg(i, j)});
    }
    cnf.add_clause({-lits[static_cast<size_t>(i)], -reg(i - 1, k - 1)});
  }
  cnf.add_clause({-lits[static_cast<size_t>(n - 1)], -reg(n - 2, k - 1)});
}

/// Binomial at-most-k: forbid every (k+1)-subset.  `budget` caps the
/// clause count; returns false when the expansion would exceed it.
bool amk_pairwise(Cnf& cnf, const std::vector<int>& lits, int k,
                  long budget) {
  const int n = static_cast<int>(lits.size());
  // C(n, k+1), capped at budget + 1.
  long count = 1;
  for (int i = 0; i < k + 1; ++i) {
    count = count * (n - i) / (i + 1);
    if (count > budget) return false;
  }
  // Enumerate (k+1)-subsets with a lexicographic index vector.
  std::vector<int> idx(static_cast<size_t>(k + 1));
  for (int i = 0; i <= k; ++i) idx[static_cast<size_t>(i)] = i;
  while (true) {
    std::vector<int> clause;
    clause.reserve(idx.size());
    for (int i : idx) clause.push_back(-lits[static_cast<size_t>(i)]);
    cnf.add_clause(std::move(clause));
    int pos = k;
    while (pos >= 0 && idx[static_cast<size_t>(pos)] == n - (k + 1 - pos))
      --pos;
    if (pos < 0) break;
    ++idx[static_cast<size_t>(pos)];
    for (int i = pos + 1; i <= k; ++i)
      idx[static_cast<size_t>(i)] = idx[static_cast<size_t>(i - 1)] + 1;
  }
  return true;
}

/// Merge two sorted-unary counters: out[k] fires when a and b together
/// hold at least k+1 true inputs.  a_i ∧ b_j → out_{i+j} (i or j = 0
/// meaning the empty prefix, which is vacuously true).
std::vector<int> totalizer_merge(Cnf& cnf, const std::vector<int>& a,
                                 const std::vector<int>& b) {
  std::vector<int> out(a.size() + b.size());
  for (int& v : out) v = cnf.new_var();
  for (size_t i = 0; i <= a.size(); ++i) {
    for (size_t j = 0; j <= b.size(); ++j) {
      if (i + j == 0) continue;
      std::vector<int> clause;
      if (i > 0) clause.push_back(-a[i - 1]);
      if (j > 0) clause.push_back(-b[j - 1]);
      clause.push_back(out[i + j - 1]);
      cnf.add_clause(std::move(clause));
    }
  }
  return out;
}

std::vector<int> totalizer_build(Cnf& cnf, const std::vector<int>& lits,
                                 size_t lo, size_t hi) {
  if (hi - lo == 1) return {lits[lo]};
  size_t mid = lo + (hi - lo) / 2;
  return totalizer_merge(cnf, totalizer_build(cnf, lits, lo, mid),
                         totalizer_build(cnf, lits, mid, hi));
}

}  // namespace

std::vector<int> add_totalizer(Cnf& cnf, const std::vector<int>& lits) {
  if (lits.empty()) return {};
  return totalizer_build(cnf, lits, 0, lits.size());
}

void add_at_most_one(Cnf& cnf, const std::vector<int>& lits, CardEncoding e) {
  if (lits.size() <= 1) return;
  switch (e) {
    case CardEncoding::kPairwise: amo_pairwise(cnf, lits); return;
    case CardEncoding::kSequential: amo_sequential(cnf, lits); return;
    case CardEncoding::kCommander: amo_commander(cnf, lits); return;
  }
}

void add_at_most_k(Cnf& cnf, const std::vector<int>& lits, int k,
                   CardEncoding e) {
  const int n = static_cast<int>(lits.size());
  if (k >= n) return;
  if (k <= 0) {
    for (int lit : lits) cnf.add_clause({-lit});
    return;
  }
  if (k == 1) {
    add_at_most_one(cnf, lits, e);
    return;
  }
  if (e == CardEncoding::kPairwise && amk_pairwise(cnf, lits, k, 20'000))
    return;
  amk_sequential(cnf, lits, k);
}

void add_at_least_k(Cnf& cnf, const std::vector<int>& lits, int k,
                    CardEncoding e) {
  const int n = static_cast<int>(lits.size());
  if (k <= 0) return;
  if (k == n) {
    for (int lit : lits) cnf.add_clause({lit});
    return;
  }
  if (k > n) {
    int v = cnf.new_var();  // unsatisfiable by construction
    cnf.add_clause({v});
    cnf.add_clause({-v});
    return;
  }
  std::vector<int> negated;
  negated.reserve(lits.size());
  for (int lit : lits) negated.push_back(-lit);
  add_at_most_k(cnf, negated, n - k, e);
}

}  // namespace picola::sat
