#include "sat/solver.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/obs.h"

namespace picola::sat {

namespace {

/// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
long luby(long x) {
  long size = 1, seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    --seq;
    x = x % size;
  }
  return 1L << seq;
}

uint64_t steady_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* solve_status_name(SolveStatus s) {
  switch (s) {
    case SolveStatus::kSat: return "sat";
    case SolveStatus::kUnsat: return "unsat";
    case SolveStatus::kUnknown: return "unknown";
  }
  return "?";
}

Solver::Solver(const Cnf& cnf, SolverOptions opt)
    : num_vars_(cnf.num_vars), opt_(std::move(opt)) {
  std::string err = cnf.validate();
  if (!err.empty()) throw std::invalid_argument("sat: bad cnf: " + err);

  size_t n = static_cast<size_t>(num_vars_);
  value_.assign(n, -1);
  level_.assign(n, 0);
  reason_.assign(n, -1);
  activity_.assign(n, 0.0);
  polarity_.assign(n, 0);
  seen_.assign(n, 0);
  watches_.assign(2 * n, {});
  for (int v = 0; v < num_vars_; ++v) order_.push_back({0.0, -v});
  std::make_heap(order_.begin(), order_.end());

  std::vector<int> lits;
  for (const auto& clause : cnf.clauses) {
    lits.clear();
    for (int d : clause) lits.push_back(internal(d));
    std::sort(lits.begin(), lits.end());
    lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
    bool tautology = false;
    for (size_t i = 0; i + 1 < lits.size(); ++i)
      if ((lits[i] ^ 1) == lits[i + 1]) { tautology = true; break; }
    if (tautology) continue;
    if (lits.size() == 1) {
      if (!enqueue(lits[0], -1)) ok_ = false;
      continue;
    }
    clauses_.push_back(lits);
    attach(static_cast<int>(clauses_.size()) - 1);
  }
}

void Solver::attach(int ci) {
  const std::vector<int>& c = clauses_[static_cast<size_t>(ci)];
  watches_[static_cast<size_t>(c[0])].push_back(ci);
  watches_[static_cast<size_t>(c[1])].push_back(ci);
}

bool Solver::enqueue(int lit, int reason) {
  int val = lit_value(lit);
  if (val == 0) return false;  // already false: conflict
  if (val == 1) return true;   // already true
  int v = lit >> 1;
  value_[static_cast<size_t>(v)] = static_cast<int8_t>((lit & 1) ^ 1);
  level_[static_cast<size_t>(v)] =
      static_cast<int>(trail_lim_.size());
  reason_[static_cast<size_t>(v)] = reason;
  trail_.push_back(lit);
  return true;
}

void Solver::check_cancel() const {
  if (opt_.cancel && opt_.cancel->cancelled()) throw CancelledError();
}

bool Solver::deadline_expired() {
  if (opt_.deadline_ns == 0) return false;
  if (--deadline_countdown_ > 0) return false;
  deadline_countdown_ = 256;
  return steady_now_ns() >= opt_.deadline_ns;
}

int Solver::propagate() {
  check_cancel();  // cooperative cancellation in the propagate loop
  while (qhead_ < trail_.size()) {
    int p = trail_[qhead_++];  // p is now true; literal p^1 is false
    int false_lit = p ^ 1;
    std::vector<int>& watch = watches_[static_cast<size_t>(false_lit)];
    size_t keep = 0;
    for (size_t i = 0; i < watch.size(); ++i) {
      int ci = watch[i];
      std::vector<int>& c = clauses_[static_cast<size_t>(ci)];
      ++stats_.propagations;
      // Normalise: the falsified watch sits at c[1].
      if (c[0] == false_lit) std::swap(c[0], c[1]);
      if (lit_value(c[0]) == 1) {  // satisfied; keep the watch
        watch[keep++] = ci;
        continue;
      }
      // Find a new literal to watch.
      bool moved = false;
      for (size_t k = 2; k < c.size(); ++k) {
        if (lit_value(c[k]) != 0) {
          std::swap(c[1], c[k]);
          watches_[static_cast<size_t>(c[1])].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflict on c[0].
      watch[keep++] = ci;
      if (!enqueue(c[0], ci)) {
        // Conflict: restore the untouched tail of the watch list.
        for (size_t k = i + 1; k < watch.size(); ++k) watch[keep++] = watch[k];
        watch.resize(keep);
        qhead_ = trail_.size();
        return ci;
      }
    }
    watch.resize(keep);
  }
  return -1;
}

void Solver::bump(int v) {
  activity_[static_cast<size_t>(v)] += var_inc_;
  if (activity_[static_cast<size_t>(v)] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
    // Re-seed the heap: every stale entry now exceeds the rescaled
    // activities, so push a fresh entry per variable.
    for (int u = 0; u < num_vars_; ++u) push_order(u);
    return;
  }
  push_order(v);
}

void Solver::push_order(int v) {
  order_.push_back({activity_[static_cast<size_t>(v)], -v});
  std::push_heap(order_.begin(), order_.end());
}

void Solver::decay() { var_inc_ /= opt_.var_decay; }

void Solver::analyze(int confl, std::vector<int>* learnt, int* bt_level) {
  learnt->clear();
  learnt->push_back(0);  // slot for the asserting literal
  int counter = 0;
  int p = -1;
  size_t index = trail_.size();
  const int current_level = static_cast<int>(trail_lim_.size());
  std::vector<int> to_clear;

  do {
    const std::vector<int>& c = clauses_[static_cast<size_t>(confl)];
    for (int q : c) {
      if (q == p) continue;
      int v = q >> 1;
      if (seen_[static_cast<size_t>(v)] || level_[static_cast<size_t>(v)] == 0)
        continue;
      seen_[static_cast<size_t>(v)] = 1;
      to_clear.push_back(v);
      bump(v);
      if (level_[static_cast<size_t>(v)] >= current_level)
        ++counter;
      else
        learnt->push_back(q);
    }
    // Walk the trail back to the next marked literal.
    while (!seen_[static_cast<size_t>(trail_[--index] >> 1)]) {}
    p = trail_[index];
    confl = reason_[static_cast<size_t>(p >> 1)];
    seen_[static_cast<size_t>(p >> 1)] = 0;
    --counter;
  } while (counter > 0);
  (*learnt)[0] = p ^ 1;

  // Backtrack level: highest level among the non-asserting literals;
  // keep that literal at index 1 so it becomes the second watch.
  *bt_level = 0;
  if (learnt->size() > 1) {
    size_t max_i = 1;
    for (size_t i = 2; i < learnt->size(); ++i)
      if (level_[static_cast<size_t>((*learnt)[i] >> 1)] >
          level_[static_cast<size_t>((*learnt)[max_i] >> 1)])
        max_i = i;
    std::swap((*learnt)[1], (*learnt)[max_i]);
    *bt_level = level_[static_cast<size_t>((*learnt)[1] >> 1)];
  }
  for (int v : to_clear) seen_[static_cast<size_t>(v)] = 0;
}

void Solver::backtrack(int target) {
  if (static_cast<int>(trail_lim_.size()) <= target) return;
  size_t floor = static_cast<size_t>(trail_lim_[static_cast<size_t>(target)]);
  for (size_t i = trail_.size(); i > floor; --i) {
    int lit = trail_[i - 1];
    int v = lit >> 1;
    polarity_[static_cast<size_t>(v)] =
        static_cast<uint8_t>(value_[static_cast<size_t>(v)]);
    value_[static_cast<size_t>(v)] = -1;
    reason_[static_cast<size_t>(v)] = -1;
    push_order(v);
  }
  trail_.resize(floor);
  trail_lim_.resize(static_cast<size_t>(target));
  qhead_ = trail_.size();
}

int Solver::pick_branch() {
  check_cancel();  // cooperative cancellation in the decide loop
  while (!order_.empty()) {
    auto [act, negv] = order_.front();
    std::pop_heap(order_.begin(), order_.end());
    order_.pop_back();
    int v = -negv;
    if (value_[static_cast<size_t>(v)] != -1) continue;
    if (act != activity_[static_cast<size_t>(v)]) continue;  // stale entry
    return 2 * v + (polarity_[static_cast<size_t>(v)] ? 0 : 1);
  }
  // Defensive fallback: the heap invariant guarantees a fresh entry per
  // unassigned variable, but a linear scan keeps the solver total.
  for (int v = 0; v < num_vars_; ++v)
    if (value_[static_cast<size_t>(v)] == -1)
      return 2 * v + (polarity_[static_cast<size_t>(v)] ? 0 : 1);
  return -1;
}

SolveStatus Solver::solve() {
  PICOLA_OBS_SPAN(span, "sat/solve");
  if (!ok_) return SolveStatus::kUnsat;
  backtrack(0);
  deadline_countdown_ = 0;

  long conflicts_since_restart = 0;
  long restart_limit = static_cast<long>(opt_.restart_base) * luby(0);
  std::vector<int> learnt;

  while (true) {
    int confl = propagate();
    if (confl >= 0) {
      ++stats_.conflicts;
      ++conflicts_since_restart;
      if (trail_lim_.empty()) return finish(SolveStatus::kUnsat);
      int bt_level = 0;
      analyze(confl, &learnt, &bt_level);
      backtrack(bt_level);
      if (learnt.size() == 1) {
        if (!enqueue(learnt[0], -1)) {
          ok_ = false;
          return finish(SolveStatus::kUnsat);
        }
      } else {
        clauses_.push_back(learnt);
        int ci = static_cast<int>(clauses_.size()) - 1;
        attach(ci);
        ++stats_.learned_clauses;
        stats_.learned_literals += static_cast<long>(learnt.size());
        enqueue(learnt[0], ci);
      }
      decay();
      if (opt_.max_conflicts > 0 && stats_.conflicts >= opt_.max_conflicts)
        return finish(SolveStatus::kUnknown);
      if (deadline_expired()) return finish(SolveStatus::kUnknown);
    } else {
      if (conflicts_since_restart >= restart_limit) {
        ++stats_.restarts;
        conflicts_since_restart = 0;
        restart_limit =
            static_cast<long>(opt_.restart_base) * luby(stats_.restarts);
        backtrack(0);
        continue;
      }
      int lit = pick_branch();
      if (lit < 0) return finish(SolveStatus::kSat);
      ++stats_.decisions;
      if (deadline_expired()) return finish(SolveStatus::kUnknown);
      trail_lim_.push_back(static_cast<int>(trail_.size()));
      enqueue(lit, -1);
    }
  }
}

SolveStatus Solver::finish(SolveStatus s) {
  // One bulk update per solve keeps the hot loops free of obs branches.
  PICOLA_OBS_COUNT("sat/decisions", stats_.decisions);
  PICOLA_OBS_COUNT("sat/propagations", stats_.propagations);
  PICOLA_OBS_COUNT("sat/conflicts", stats_.conflicts);
  PICOLA_OBS_COUNT("sat/restarts", stats_.restarts);
  PICOLA_OBS_COUNT("sat/learned_clauses", stats_.learned_clauses);
  return s;
}

bool Solver::model_value(int var) const {
  if (var < 1 || var > num_vars_) return false;
  return value_[static_cast<size_t>(var - 1)] == 1;
}

}  // namespace picola::sat
