#include "sat/solver.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/obs.h"

namespace picola::sat {

namespace {

/// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
long luby(long x) {
  long size = 1, seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    --seq;
    x = x % size;
  }
  return 1L << seq;
}

uint64_t steady_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* solve_status_name(SolveStatus s) {
  switch (s) {
    case SolveStatus::kSat: return "sat";
    case SolveStatus::kUnsat: return "unsat";
    case SolveStatus::kUnknown: return "unknown";
  }
  return "?";
}

Solver::Solver(const Cnf& cnf, SolverOptions opt)
    : num_vars_(cnf.num_vars), opt_(std::move(opt)) {
  std::string err = cnf.validate();
  if (!err.empty()) throw std::invalid_argument("sat: bad cnf: " + err);

  size_t n = static_cast<size_t>(num_vars_);
  value_.assign(n, -1);
  level_.assign(n, 0);
  reason_.assign(n, -1);
  activity_.assign(n, 0.0);
  polarity_.assign(n, 0);
  seen_.assign(n, 0);
  watches_.assign(2 * n, {});
  for (int v = 0; v < num_vars_; ++v) order_.push_back({0.0, -v});
  std::make_heap(order_.begin(), order_.end());

  std::vector<int> lits;
  for (const auto& clause : cnf.clauses) {
    lits.clear();
    for (int d : clause) lits.push_back(internal(d));
    std::sort(lits.begin(), lits.end());
    lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
    bool tautology = false;
    for (size_t i = 0; i + 1 < lits.size(); ++i)
      if ((lits[i] ^ 1) == lits[i + 1]) { tautology = true; break; }
    if (tautology) continue;
    if (lits.size() == 1) {
      if (!enqueue(lits[0], -1)) ok_ = false;
      continue;
    }
    clauses_.push_back(lits);
    meta_.push_back({});
    attach(static_cast<int>(clauses_.size()) - 1);
  }
  // Let the learned DB grow to a third of the problem before the first
  // reduction (MiniSat's learntsize_factor), with a floor so tiny
  // formulas still keep a useful lemma set.
  reduce_limit_ =
      std::max<long>(4'000, static_cast<long>(clauses_.size()) / 3);
}

void Solver::attach(int ci) {
  const std::vector<int>& c = clauses_[static_cast<size_t>(ci)];
  watches_[static_cast<size_t>(c[0])].push_back(ci);
  watches_[static_cast<size_t>(c[1])].push_back(ci);
}

void Solver::detach(int ci) {
  const std::vector<int>& c = clauses_[static_cast<size_t>(ci)];
  for (int w = 0; w < 2; ++w) {
    std::vector<int>& list = watches_[static_cast<size_t>(c[w])];
    // Order-preserving erase: watch-list order drives propagation order,
    // so a swap-with-back removal would perturb determinism.
    list.erase(std::find(list.begin(), list.end(), ci));
  }
}

void Solver::bump_clause(int ci) {
  float& a = meta_[static_cast<size_t>(ci)].act;
  a += static_cast<float>(cla_inc_);
  if (a > 1e20f) {
    for (ClauseMeta& m : meta_) m.act *= 1e-20f;
    cla_inc_ *= 1e-20;
  }
}

void Solver::reduce_db() {
  // Candidates: learned, still attached, longer than binary, and not the
  // reason of a current assignment (a locked clause's asserting literal
  // sits at c[0] — propagate() never swaps a true c[0] away).
  std::vector<std::pair<float, int>> cand;
  for (int ci = 0; ci < static_cast<int>(clauses_.size()); ++ci) {
    const std::vector<int>& c = clauses_[static_cast<size_t>(ci)];
    if (!meta_[static_cast<size_t>(ci)].learned || c.size() <= 2) continue;
    int v0 = c[0] >> 1;
    if (reason_[static_cast<size_t>(v0)] == ci && lit_value(c[0]) == 1)
      continue;
    cand.push_back({meta_[static_cast<size_t>(ci)].act, ci});
  }
  // Lowest activity first; index breaks ties, so older lemmas go first
  // and the pass is deterministic.
  std::sort(cand.begin(), cand.end());
  for (size_t i = 0; i < cand.size() / 2; ++i) {
    int ci = cand[i].second;
    detach(ci);
    clauses_[static_cast<size_t>(ci)].clear();
    clauses_[static_cast<size_t>(ci)].shrink_to_fit();
    meta_[static_cast<size_t>(ci)].learned = false;
    --live_learned_;
  }
  ++stats_.db_reductions;
}

int Solver::add_var() {
  int v = num_vars_++;
  value_.push_back(-1);
  level_.push_back(0);
  reason_.push_back(-1);
  activity_.push_back(0.0);
  polarity_.push_back(0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  push_order(v);
  return v + 1;
}

bool Solver::add_clause(const std::vector<int>& dimacs_lits) {
  backtrack(0);
  std::vector<int> lits;
  lits.reserve(dimacs_lits.size());
  for (int d : dimacs_lits) {
    if (d == 0 || std::abs(d) > num_vars_)
      throw std::invalid_argument("sat: add_clause literal " +
                                  std::to_string(d) + " out of range");
    lits.push_back(internal(d));
  }
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  for (size_t i = 0; i + 1 < lits.size(); ++i)
    if ((lits[i] ^ 1) == lits[i + 1]) return true;  // tautology
  // Simplify against the root trail (everything assigned after
  // backtrack(0) is permanent): drop falsified literals, skip satisfied
  // clauses — this keeps the watch invariant without re-propagating.
  std::vector<int> kept;
  kept.reserve(lits.size());
  for (int l : lits) {
    int v = lit_value(l);
    if (v == 1) return true;  // already satisfied at the root
    if (v == -1) kept.push_back(l);
  }
  if (kept.empty()) {
    ok_ = false;
    return false;
  }
  if (kept.size() == 1) {
    if (!enqueue(kept[0], -1) || propagate() >= 0) {
      ok_ = false;
      return false;
    }
    return true;
  }
  clauses_.push_back(std::move(kept));
  meta_.push_back({});
  attach(static_cast<int>(clauses_.size()) - 1);
  return true;
}

bool Solver::enqueue(int lit, int reason) {
  int val = lit_value(lit);
  if (val == 0) return false;  // already false: conflict
  if (val == 1) return true;   // already true
  int v = lit >> 1;
  value_[static_cast<size_t>(v)] = static_cast<int8_t>((lit & 1) ^ 1);
  level_[static_cast<size_t>(v)] =
      static_cast<int>(trail_lim_.size());
  reason_[static_cast<size_t>(v)] = reason;
  trail_.push_back(lit);
  return true;
}

void Solver::check_cancel() const {
  if (opt_.cancel && opt_.cancel->cancelled()) throw CancelledError();
}

bool Solver::deadline_expired() {
  if (opt_.deadline_ns == 0) return false;
  if (--deadline_countdown_ > 0) return false;
  deadline_countdown_ = 256;
  return steady_now_ns() >= opt_.deadline_ns;
}

int Solver::propagate() {
  check_cancel();  // cooperative cancellation in the propagate loop
  while (qhead_ < trail_.size()) {
    int p = trail_[qhead_++];  // p is now true; literal p^1 is false
    int false_lit = p ^ 1;
    std::vector<int>& watch = watches_[static_cast<size_t>(false_lit)];
    size_t keep = 0;
    for (size_t i = 0; i < watch.size(); ++i) {
      int ci = watch[i];
      std::vector<int>& c = clauses_[static_cast<size_t>(ci)];
      ++stats_.propagations;
      // Normalise: the falsified watch sits at c[1].
      if (c[0] == false_lit) std::swap(c[0], c[1]);
      if (lit_value(c[0]) == 1) {  // satisfied; keep the watch
        watch[keep++] = ci;
        continue;
      }
      // Find a new literal to watch.
      bool moved = false;
      for (size_t k = 2; k < c.size(); ++k) {
        if (lit_value(c[k]) != 0) {
          std::swap(c[1], c[k]);
          watches_[static_cast<size_t>(c[1])].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflict on c[0].
      watch[keep++] = ci;
      if (!enqueue(c[0], ci)) {
        // Conflict: restore the untouched tail of the watch list.
        for (size_t k = i + 1; k < watch.size(); ++k) watch[keep++] = watch[k];
        watch.resize(keep);
        qhead_ = trail_.size();
        return ci;
      }
    }
    watch.resize(keep);
  }
  return -1;
}

void Solver::bump(int v) {
  activity_[static_cast<size_t>(v)] += var_inc_;
  if (activity_[static_cast<size_t>(v)] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
    // Re-seed the heap: every stale entry now exceeds the rescaled
    // activities, so push a fresh entry per variable.
    for (int u = 0; u < num_vars_; ++u) push_order(u);
    return;
  }
  push_order(v);
}

void Solver::push_order(int v) {
  order_.push_back({activity_[static_cast<size_t>(v)], -v});
  std::push_heap(order_.begin(), order_.end());
}

void Solver::decay() {
  var_inc_ /= opt_.var_decay;
  cla_inc_ /= 0.999;  // clause-activity decay (MiniSat's clause_decay)
}

void Solver::analyze(int confl, std::vector<int>* learnt, int* bt_level) {
  learnt->clear();
  learnt->push_back(0);  // slot for the asserting literal
  int counter = 0;
  int p = -1;
  size_t index = trail_.size();
  const int current_level = static_cast<int>(trail_lim_.size());
  std::vector<int> to_clear;

  do {
    if (meta_[static_cast<size_t>(confl)].learned) bump_clause(confl);
    const std::vector<int>& c = clauses_[static_cast<size_t>(confl)];
    for (int q : c) {
      if (q == p) continue;
      int v = q >> 1;
      if (seen_[static_cast<size_t>(v)] || level_[static_cast<size_t>(v)] == 0)
        continue;
      seen_[static_cast<size_t>(v)] = 1;
      to_clear.push_back(v);
      bump(v);
      if (level_[static_cast<size_t>(v)] >= current_level)
        ++counter;
      else
        learnt->push_back(q);
    }
    // Walk the trail back to the next marked literal.
    while (!seen_[static_cast<size_t>(trail_[--index] >> 1)]) {}
    p = trail_[index];
    confl = reason_[static_cast<size_t>(p >> 1)];
    seen_[static_cast<size_t>(p >> 1)] = 0;
    --counter;
  } while (counter > 0);
  (*learnt)[0] = p ^ 1;

  // Backtrack level: highest level among the non-asserting literals;
  // keep that literal at index 1 so it becomes the second watch.
  *bt_level = 0;
  if (learnt->size() > 1) {
    size_t max_i = 1;
    for (size_t i = 2; i < learnt->size(); ++i)
      if (level_[static_cast<size_t>((*learnt)[i] >> 1)] >
          level_[static_cast<size_t>((*learnt)[max_i] >> 1)])
        max_i = i;
    std::swap((*learnt)[1], (*learnt)[max_i]);
    *bt_level = level_[static_cast<size_t>((*learnt)[1] >> 1)];
  }
  for (int v : to_clear) seen_[static_cast<size_t>(v)] = 0;
}

void Solver::backtrack(int target) {
  if (static_cast<int>(trail_lim_.size()) <= target) return;
  size_t floor = static_cast<size_t>(trail_lim_[static_cast<size_t>(target)]);
  for (size_t i = trail_.size(); i > floor; --i) {
    int lit = trail_[i - 1];
    int v = lit >> 1;
    polarity_[static_cast<size_t>(v)] =
        static_cast<uint8_t>(value_[static_cast<size_t>(v)]);
    value_[static_cast<size_t>(v)] = -1;
    reason_[static_cast<size_t>(v)] = -1;
    push_order(v);
  }
  trail_.resize(floor);
  trail_lim_.resize(static_cast<size_t>(target));
  qhead_ = trail_.size();
}

int Solver::pick_branch() {
  check_cancel();  // cooperative cancellation in the decide loop
  while (!order_.empty()) {
    auto [act, negv] = order_.front();
    std::pop_heap(order_.begin(), order_.end());
    order_.pop_back();
    int v = -negv;
    if (value_[static_cast<size_t>(v)] != -1) continue;
    if (act != activity_[static_cast<size_t>(v)]) continue;  // stale entry
    return 2 * v + (polarity_[static_cast<size_t>(v)] ? 0 : 1);
  }
  // Defensive fallback: the heap invariant guarantees a fresh entry per
  // unassigned variable, but a linear scan keeps the solver total.
  for (int v = 0; v < num_vars_; ++v)
    if (value_[static_cast<size_t>(v)] == -1)
      return 2 * v + (polarity_[static_cast<size_t>(v)] ? 0 : 1);
  return -1;
}

SolveStatus Solver::solve() { return solve({}); }

SolveStatus Solver::solve(const std::vector<int>& assumptions) {
  PICOLA_OBS_SPAN(span, "sat/solve");
  backtrack(0);
  conflict_floor_ = stats_.conflicts;
  deadline_countdown_ = 0;
  if (!ok_) return finish(SolveStatus::kUnsat);
  assumptions_.clear();
  assumptions_.reserve(assumptions.size());
  for (int d : assumptions) {
    if (d == 0 || std::abs(d) > num_vars_)
      throw std::invalid_argument("sat: assumption literal " +
                                  std::to_string(d) + " out of range");
    assumptions_.push_back(internal(d));
  }
  return search();
}

SolveStatus Solver::search() {
  long conflicts_since_restart = 0;
  long restart_limit = static_cast<long>(opt_.restart_base) * luby(0);
  std::vector<int> learnt;

  while (true) {
    int confl = propagate();
    if (confl >= 0) {
      ++stats_.conflicts;
      ++conflicts_since_restart;
      if (trail_lim_.empty()) {
        ok_ = false;  // root-level conflict: unsat regardless of assumptions
        return finish(SolveStatus::kUnsat);
      }
      int bt_level = 0;
      analyze(confl, &learnt, &bt_level);
      backtrack(bt_level);
      if (learnt.size() == 1) {
        if (!enqueue(learnt[0], -1)) {
          ok_ = false;
          return finish(SolveStatus::kUnsat);
        }
      } else {
        clauses_.push_back(learnt);
        meta_.push_back({static_cast<float>(cla_inc_), true});
        int ci = static_cast<int>(clauses_.size()) - 1;
        attach(ci);
        ++stats_.learned_clauses;
        stats_.learned_literals += static_cast<long>(learnt.size());
        ++live_learned_;
        enqueue(learnt[0], ci);
        if (live_learned_ >= reduce_limit_) {
          reduce_db();
          reduce_limit_ += reduce_limit_ / 10;  // geometric headroom growth
        }
      }
      decay();
      if (opt_.max_conflicts > 0 &&
          stats_.conflicts - conflict_floor_ >= opt_.max_conflicts)
        return finish(SolveStatus::kUnknown);
      if (deadline_expired()) return finish(SolveStatus::kUnknown);
    } else {
      if (conflicts_since_restart >= restart_limit) {
        ++stats_.restarts;
        conflicts_since_restart = 0;
        restart_limit =
            static_cast<long>(opt_.restart_base) * luby(stats_.restarts);
        backtrack(0);
        continue;
      }
      // Assumptions go in as the first decisions; a restart or backjump
      // below them lands here again and re-establishes the missing ones.
      if (trail_lim_.size() < assumptions_.size()) {
        int p = assumptions_[trail_lim_.size()];
        int v = lit_value(p);
        if (v == 0)  // falsified by the formula: unsat under assumptions
          return finish(SolveStatus::kUnsat);
        trail_lim_.push_back(static_cast<int>(trail_.size()));
        if (v == -1) enqueue(p, -1);
        continue;
      }
      int lit = pick_branch();
      if (lit < 0) return finish(SolveStatus::kSat);
      ++stats_.decisions;
      if (deadline_expired()) return finish(SolveStatus::kUnknown);
      trail_lim_.push_back(static_cast<int>(trail_.size()));
      enqueue(lit, -1);
    }
  }
}

SolveStatus Solver::finish(SolveStatus s) {
  // One bulk update per solve keeps the hot loops free of obs branches;
  // deltas since the previous finish, so incremental re-solves on the
  // same Solver never double-count.
  PICOLA_OBS_COUNT("sat/decisions", stats_.decisions - reported_.decisions);
  PICOLA_OBS_COUNT("sat/propagations",
                   stats_.propagations - reported_.propagations);
  PICOLA_OBS_COUNT("sat/conflicts", stats_.conflicts - reported_.conflicts);
  PICOLA_OBS_COUNT("sat/restarts", stats_.restarts - reported_.restarts);
  PICOLA_OBS_COUNT("sat/learned_clauses",
                   stats_.learned_clauses - reported_.learned_clauses);
  PICOLA_OBS_COUNT("sat/db_reductions",
                   stats_.db_reductions - reported_.db_reductions);
  reported_ = stats_;
  return s;
}

bool Solver::model_value(int var) const {
  if (var < 1 || var > num_vars_) return false;
  return value_[static_cast<size_t>(var - 1)] == 1;
}

}  // namespace picola::sat
