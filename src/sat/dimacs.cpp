#include "sat/dimacs.h"

#include <sstream>

namespace picola::sat {

std::string write_dimacs(const Cnf& cnf,
                         const std::vector<std::string>& comments) {
  std::ostringstream os;
  for (const std::string& c : comments) {
    std::istringstream lines(c);
    std::string line;
    while (std::getline(lines, line)) os << "c " << line << "\n";
  }
  os << "p cnf " << cnf.num_vars << " " << cnf.clauses.size() << "\n";
  for (const auto& clause : cnf.clauses) {
    for (int lit : clause) os << lit << " ";
    os << "0\n";
  }
  return os.str();
}

DimacsParseResult parse_dimacs(const std::string& text) {
  DimacsParseResult r;
  std::istringstream is(text);
  std::string line;
  long declared_clauses = -1;
  std::vector<int> current;
  long line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      if (declared_clauses >= 0) {
        r.error = "line " + std::to_string(line_no) + ": duplicate header";
        return r;
      }
      std::istringstream hs(line);
      std::string p, fmt;
      long vars = 0, clauses = 0;
      if (!(hs >> p >> fmt >> vars >> clauses) || fmt != "cnf" || vars < 0 ||
          clauses < 0 || vars > (1 << 28)) {
        r.error = "line " + std::to_string(line_no) + ": bad header";
        return r;
      }
      r.cnf.num_vars = static_cast<int>(vars);
      declared_clauses = clauses;
      continue;
    }
    if (declared_clauses < 0) {
      r.error = "line " + std::to_string(line_no) + ": clause before header";
      return r;
    }
    std::istringstream ls(line);
    long lit;
    while (ls >> lit) {
      if (lit == 0) {
        r.cnf.clauses.push_back(std::move(current));
        current.clear();
        continue;
      }
      if (lit > r.cnf.num_vars || lit < -r.cnf.num_vars) {
        r.error = "line " + std::to_string(line_no) + ": literal " +
                  std::to_string(lit) + " out of range";
        return r;
      }
      current.push_back(static_cast<int>(lit));
    }
    if (!ls.eof()) {
      r.error = "line " + std::to_string(line_no) + ": bad token";
      return r;
    }
  }
  if (declared_clauses < 0) {
    r.error = "missing p cnf header";
    return r;
  }
  if (!current.empty()) {
    r.error = "unterminated clause at end of file";
    return r;
  }
  if (static_cast<long>(r.cnf.clauses.size()) != declared_clauses) {
    r.error = "header declares " + std::to_string(declared_clauses) +
              " clauses, found " + std::to_string(r.cnf.clauses.size());
    return r;
  }
  return r;
}

}  // namespace picola::sat
