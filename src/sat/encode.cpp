#include "sat/encode.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "constraints/dichotomy.h"
#include "obs/obs.h"

namespace picola::sat {

const char* distinct_encoding_name(DistinctEncoding e) {
  switch (e) {
    case DistinctEncoding::kDifference: return "difference";
    case DistinctEncoding::kIndicator: return "indicator";
    case DistinctEncoding::kLazy: return "lazy";
  }
  return "?";
}

std::optional<DistinctEncoding> parse_distinct_encoding(
    std::string_view name) {
  if (name == "difference") return DistinctEncoding::kDifference;
  if (name == "indicator") return DistinctEncoding::kIndicator;
  if (name == "lazy") return DistinctEncoding::kLazy;
  return std::nullopt;
}

const char* sweep_mode_name(SweepMode m) {
  switch (m) {
    case SweepMode::kDescending: return "descending";
    case SweepMode::kBinary: return "binary";
    case SweepMode::kScratch: return "scratch";
  }
  return "?";
}

std::optional<SweepMode> parse_sweep_mode(std::string_view name) {
  if (name == "descending") return SweepMode::kDescending;
  if (name == "binary") return SweepMode::kBinary;
  if (name == "scratch") return SweepMode::kScratch;
  return std::nullopt;
}

namespace {

/// Legacy code-indicator distinctness: u[s][c] defined bidirectionally
/// from the bits, then at-most-one symbol per code word.  O(n·2^nv)
/// variables — kept behind its original size guard, for comparison only.
void add_indicator_distinctness(FaceCnf& fc, const ReductionOptions& opt) {
  Cnf& cnf = fc.cnf;
  const int n = fc.num_symbols;
  const int nv = fc.num_bits;
  const long num_codes = 1L << nv;
  std::vector<int> u(static_cast<size_t>(n) * static_cast<size_t>(num_codes));
  for (auto& v : u) v = cnf.new_var();
  auto ind = [&](int s, long c) {
    return u[static_cast<size_t>(s) * static_cast<size_t>(num_codes) +
             static_cast<size_t>(c)];
  };
  std::vector<int> mismatch;
  for (int s = 0; s < n; ++s) {
    for (long c = 0; c < num_codes; ++c) {
      mismatch.clear();
      mismatch.push_back(ind(s, c));
      for (int b = 0; b < nv; ++b) {
        int x = fc.bit_var(s, b);
        int agree = ((c >> b) & 1) ? x : -x;
        cnf.add_clause({-ind(s, c), agree});  // u -> bits spell out c
        mismatch.push_back(-agree);           // bits spell out c -> u
      }
      cnf.add_clause(mismatch);
    }
  }
  std::vector<int> holders;
  for (long c = 0; c < num_codes; ++c) {
    holders.clear();
    for (int s = 0; s < n; ++s) holders.push_back(ind(s, c));
    add_at_most_one(cnf, holders, opt.card);
  }
}

/// Direct difference distinctness: per pair (s, t) and bit b an aux var
/// d with d → "bit b differs between s and t", plus the clause "some d
/// fires".  n(n-1)/2 · nv aux vars and n(n-1)/2 · (2nv+1) clauses —
/// polynomial in n and nv, which is what lets the full Table I suite
/// through.  Pairs against the pinned symbol 0 need no aux vars at all:
/// code(t) ≠ 0 is just "some bit of t is 1".
void add_difference_distinctness(FaceCnf& fc) {
  Cnf& cnf = fc.cnf;
  const int n = fc.num_symbols;
  const int nv = fc.num_bits;
  std::vector<int> differs;
  for (int s = 0; s < n; ++s) {
    if (s == 0 && fc.pinned_symbol0) {
      for (int t = 1; t < n; ++t) {
        differs.clear();
        for (int b = 0; b < nv; ++b) differs.push_back(fc.bit_var(t, b));
        cnf.add_clause(differs);
      }
      continue;
    }
    for (int t = s + 1; t < n; ++t) {
      differs.clear();
      for (int b = 0; b < nv; ++b) {
        int d = cnf.new_var();
        int xs = fc.bit_var(s, b), xt = fc.bit_var(t, b);
        cnf.add_clause({-d, xs, xt});    // d -> not both 0
        cnf.add_clause({-d, -xs, -xt});  // d -> not both 1
        differs.push_back(d);
      }
      cnf.add_clause(differs);
    }
  }
}

}  // namespace

FaceCnf build_face_cnf(const ConstraintSet& cs, int nv,
                       const ReductionOptions& opt) {
  std::string err = cs.validate();
  if (!err.empty()) throw std::invalid_argument("sat: invalid set: " + err);
  if (nv < 1 || nv > 20)
    throw std::invalid_argument("sat: num_bits " + std::to_string(nv) +
                                " out of range [1, 20]");
  const int n = cs.num_symbols;
  if (opt.distinct == DistinctEncoding::kIndicator) {
    const long num_codes = 1L << nv;
    if (num_codes * n > 500'000)
      throw std::invalid_argument(
          "sat: code space too large for the indicator encoding (" +
          std::to_string(n) + " symbols x 2^" + std::to_string(nv) +
          " codes); use the difference encoding");
  } else if (opt.distinct == DistinctEncoding::kDifference) {
    const long pairs = static_cast<long>(n) * (n - 1) / 2;
    if (pairs * nv > 50'000'000)
      throw std::invalid_argument(
          "sat: " + std::to_string(n) +
          " symbols is too large for the eager difference encoding; use "
          "the lazy encoding");
  }

  FaceCnf fc;
  fc.num_symbols = n;
  fc.num_bits = nv;
  fc.distinct = opt.distinct;
  fc.pinned_symbol0 = opt.pin_symbol0;
  Cnf& cnf = fc.cnf;
  cnf.num_vars = n * nv;  // the x[s][b] block sits first

  if (opt.pin_symbol0)
    for (int b = 0; b < nv; ++b) cnf.add_clause({-fc.bit_var(0, b)});

  switch (opt.distinct) {
    case DistinctEncoding::kIndicator: add_indicator_distinctness(fc, opt); break;
    case DistinctEncoding::kDifference: add_difference_distinctness(fc); break;
    case DistinctEncoding::kLazy: break;  // refined on conflict, see
                                          // add_pair_difference
  }

  // Face constraints: non-member t stays outside the members' supercube
  // iff some bit separates it (all members 1 and t 0, or vice versa).
  std::vector<uint8_t> member(static_cast<size_t>(n));
  for (const FaceConstraint& c : cs.constraints) {
    member.assign(static_cast<size_t>(n), 0);
    for (int s : c.members) member[static_cast<size_t>(s)] = 1;

    int yk = 0;
    if (opt.with_selectors) {
      yk = cnf.new_var();
      fc.selectors.push_back(yk);
    }

    std::vector<int> all1(static_cast<size_t>(nv)), all0(static_cast<size_t>(nv));
    for (int b = 0; b < nv; ++b) {
      all1[static_cast<size_t>(b)] = cnf.new_var();
      all0[static_cast<size_t>(b)] = cnf.new_var();
      for (int s : c.members) {
        cnf.add_clause({-all1[static_cast<size_t>(b)], fc.bit_var(s, b)});
        cnf.add_clause({-all0[static_cast<size_t>(b)], -fc.bit_var(s, b)});
      }
    }

    std::vector<int> excl;
    for (int t = 0; t < n; ++t) {
      if (member[static_cast<size_t>(t)]) continue;
      excl.clear();
      if (yk != 0) excl.push_back(-yk);
      for (int b = 0; b < nv; ++b) {
        int s1 = cnf.new_var();  // members all 1 at b, t is 0
        int s0 = cnf.new_var();  // members all 0 at b, t is 1
        cnf.add_clause({-s1, all1[static_cast<size_t>(b)]});
        cnf.add_clause({-s1, -fc.bit_var(t, b)});
        cnf.add_clause({-s0, all0[static_cast<size_t>(b)]});
        cnf.add_clause({-s0, fc.bit_var(t, b)});
        excl.push_back(s1);
        excl.push_back(s0);
      }
      cnf.add_clause(excl);
    }
  }
  return fc;
}

void add_pair_difference(Solver& solver, const FaceCnf& fc, int s, int t) {
  std::vector<int> differs;
  for (int b = 0; b < fc.num_bits; ++b) {
    int d = solver.add_var();
    int xs = fc.bit_var(s, b), xt = fc.bit_var(t, b);
    solver.add_clause({-d, xs, xt});
    solver.add_clause({-d, -xs, -xt});
    differs.push_back(d);
  }
  solver.add_clause(differs);
}

Encoding decode_model(const FaceCnf& fc, const Solver& solver) {
  Encoding enc;
  enc.num_symbols = fc.num_symbols;
  enc.num_bits = fc.num_bits;
  enc.codes.assign(static_cast<size_t>(fc.num_symbols), 0);
  for (int s = 0; s < fc.num_symbols; ++s) {
    uint32_t code = 0;
    for (int b = 0; b < fc.num_bits; ++b)
      if (solver.model_value(fc.bit_var(s, b))) code |= 1u << b;
    enc.codes[static_cast<size_t>(s)] = code;
  }
  return enc;
}

namespace {

/// Shared state of one sat_exact_encode run: the selector reduction plus
/// the violation totalizer that turns every at-least-t target into a
/// single assumption literal.
struct SweepContext {
  FaceCnf base;           ///< selector reduction (cnf NOT solved directly)
  Cnf work;               ///< base.cnf + totalizer over ¬selectors
  std::vector<int> viol;  ///< viol[j] = "at least j+1 constraints violated"
};

/// Assumption set enforcing "at least `target` constraints satisfied":
/// at most m - target violated, i.e. ¬viol[m - target].
std::vector<int> target_assumptions(const SweepContext& ctx, int target) {
  const int m = static_cast<int>(ctx.base.selectors.size());
  const int c = m - target;
  if (target <= 0 || c >= m) return {};
  return {-ctx.viol[static_cast<size_t>(c)]};
}

void accumulate(SolverStats* into, const SolverStats& s) {
  into->decisions += s.decisions;
  into->propagations += s.propagations;
  into->conflicts += s.conflicts;
  into->restarts += s.restarts;
  into->learned_clauses += s.learned_clauses;
  into->learned_literals += s.learned_literals;
  into->db_reductions += s.db_reductions;
}

/// One solve, refining the lazy distinctness encoding to a fixpoint:
/// while the model assigns two symbols the same code, add that pair's
/// difference clauses and re-solve (each pair is added at most once per
/// solver, tracked in `pair_added`).  Non-lazy encodings take a single
/// call.  Terminates: there are only n(n-1)/2 pairs, and a pair with
/// difference clauses can never collide again.
SolveStatus solve_refining(Solver& solver, const FaceCnf& fc,
                           const std::vector<int>& assumptions,
                           std::vector<uint8_t>* pair_added, long* calls) {
  const int n = fc.num_symbols;
  while (true) {
    SolveStatus st = solver.solve(assumptions);
    ++*calls;
    if (st != SolveStatus::kSat || fc.distinct != DistinctEncoding::kLazy)
      return st;
    Encoding enc = decode_model(fc, solver);
    std::vector<std::pair<uint32_t, int>> order;
    order.reserve(static_cast<size_t>(n));
    for (int s = 0; s < n; ++s) order.push_back({enc.code(s), s});
    std::sort(order.begin(), order.end());
    bool refined = false;
    for (size_t i = 0; i + 1 < order.size(); ++i) {
      for (size_t j = i + 1;
           j < order.size() && order[j].first == order[i].first; ++j) {
        int s = std::min(order[i].second, order[j].second);
        int t = std::max(order[i].second, order[j].second);
        uint8_t& added =
            (*pair_added)[static_cast<size_t>(s) * static_cast<size_t>(n) +
                          static_cast<size_t>(t)];
        if (added) continue;  // unreachable: its clauses forbid collision
        added = 1;
        add_pair_difference(solver, fc, s, t);
        refined = true;
      }
    }
    if (!refined) return SolveStatus::kSat;  // all codes distinct
  }
}

}  // namespace

SatExactResult sat_exact_encode(const ConstraintSet& cs,
                                const SatExactOptions& opt) {
  PICOLA_OBS_SPAN(span, "sat/exact_encode");
  const int nv =
      opt.num_bits > 0 ? opt.num_bits : Encoding::min_bits(cs.num_symbols);
  ReductionOptions ro;
  ro.card = opt.card;
  ro.distinct = opt.distinct;
  ro.with_selectors = true;

  SweepContext ctx;
  ctx.base = build_face_cnf(cs, nv, ro);
  ctx.work = ctx.base.cnf;
  {
    std::vector<int> violated;
    violated.reserve(ctx.base.selectors.size());
    for (int y : ctx.base.selectors) violated.push_back(-y);
    ctx.viol = add_totalizer(ctx.work, violated);
  }

  SolverOptions so;
  so.max_conflicts = opt.max_conflicts;
  so.deadline_ns = opt.deadline_ns;
  so.cancel = opt.cancel;

  const int m = cs.size();
  const size_t pair_slots = static_cast<size_t>(cs.num_symbols) *
                            static_cast<size_t>(cs.num_symbols);
  auto check_cancel = [&] {
    if (opt.cancel && opt.cancel->cancelled()) throw CancelledError();
  };

  SatExactResult res;
  int found = -1;  ///< best target with a confirmed model
  bool unknown_above = false;
  Encoding sweep_model;  ///< fallback if the canonical re-solve times out

  if (opt.sweep == SweepMode::kBinary) {
    // Binary search over t on one incremental solver.  A SAT model at
    // target mid raises the floor to however many constraints the model
    // actually satisfies; a refutation (or budget exhaustion, which
    // forfeits the proof) lowers the ceiling.
    Solver solver(ctx.work, so);
    std::vector<uint8_t> pairs(pair_slots, 0);
    SolveStatus st =
        solve_refining(solver, ctx.base, {}, &pairs, &res.solver_calls);
    if (st == SolveStatus::kSat) {
      sweep_model = decode_model(ctx.base, solver);
      int lo = count_satisfied_constraints(cs, sweep_model);
      int hi = m;
      while (lo < hi) {
        check_cancel();
        int mid = lo + (hi - lo + 1) / 2;
        st = solve_refining(solver, ctx.base, target_assumptions(ctx, mid),
                            &pairs, &res.solver_calls);
        if (st == SolveStatus::kSat) {
          sweep_model = decode_model(ctx.base, solver);
          lo = std::max(mid, count_satisfied_constraints(cs, sweep_model));
        } else {
          if (st == SolveStatus::kUnknown) unknown_above = true;
          hi = mid - 1;
        }
        hi = std::max(hi, lo);  // a model can overshoot an unproven ceiling
      }
      found = lo;
    } else if (st == SolveStatus::kUnknown) {
      unknown_above = true;
    }
    accumulate(&res.stats, solver.stats());
  } else {
    // Descending search: the first satisfiable at-least-t target is the
    // maximum, provided every higher target was refuted (not timed out).
    // kDescending drives ONE solver through all targets via assumptions
    // (refutation clauses learned at target t carry to t-1); kScratch is
    // the pre-incremental behavior — a fresh solver per target — kept as
    // the fuzz harness's differential baseline.
    //
    // Bailout: when the optimum sits far below m (tbk: 25 of 106), a
    // strict descent would burn the full conflict budget on dozens of
    // undecidable targets.  After kBailoutUnknowns consecutive kUnknown
    // verdicts the sweep flips to ascending solution-improving search —
    // solve unconstrained, then repeatedly demand one more constraint
    // than the current model satisfies.  SAT calls are the cheap
    // direction, and each model's actual count can jump the target up by
    // more than one.  The result is unproven either way (unknown_above
    // is already set by then).
    constexpr int kBailoutUnknowns = 3;
    std::unique_ptr<Solver> inc;
    std::vector<uint8_t> inc_pairs;
    if (opt.sweep == SweepMode::kDescending) {
      inc = std::make_unique<Solver>(ctx.work, so);
      inc_pairs.assign(pair_slots, 0);
    }
    auto solve_at = [&](int target) {
      check_cancel();
      std::vector<int> assumptions = target_assumptions(ctx, target);
      SolveStatus st;
      if (inc) {
        st = solve_refining(*inc, ctx.base, assumptions, &inc_pairs,
                            &res.solver_calls);
        if (st == SolveStatus::kSat) sweep_model = decode_model(ctx.base, *inc);
      } else {
        Solver scratch(ctx.work, so);
        std::vector<uint8_t> pairs(pair_slots, 0);
        st = solve_refining(scratch, ctx.base, assumptions, &pairs,
                            &res.solver_calls);
        if (st == SolveStatus::kSat)
          sweep_model = decode_model(ctx.base, scratch);
        accumulate(&res.stats, scratch.stats());
      }
      return st;
    };
    int consecutive_unknown = 0;
    for (int target = m; target >= 0; --target) {
      SolveStatus st = solve_at(target);
      if (st == SolveStatus::kSat) {
        found = target;
        break;
      }
      if (st == SolveStatus::kUnknown) {
        unknown_above = true;
        if (++consecutive_unknown >= kBailoutUnknowns && target > 0) {
          // The climb runs on a dedicated fresh solver: the descent's
          // accumulated activity and saved phases are tuned for refuting
          // high targets and demonstrably mislead the satisfiable
          // direction (a fresh solver finds the t=0 model in a handful
          // of conflicts where the descent solver exhausts its budget).
          const int ceiling = target - 1;  // nothing below was refuted
          Solver climb(ctx.work, so);
          std::vector<uint8_t> climb_pairs(pair_slots, 0);
          auto climb_at = [&](int t) {
            check_cancel();
            SolveStatus cst =
                solve_refining(climb, ctx.base, target_assumptions(ctx, t),
                               &climb_pairs, &res.solver_calls);
            if (cst == SolveStatus::kSat)
              sweep_model = decode_model(ctx.base, climb);
            return cst;
          };
          if (climb_at(0) == SolveStatus::kSat) {
            found = count_satisfied_constraints(cs, sweep_model);
            while (found < ceiling &&
                   climb_at(found + 1) == SolveStatus::kSat)
              found = std::max(found + 1,
                               count_satisfied_constraints(cs, sweep_model));
          }
          accumulate(&res.stats, climb.stats());
          break;
        }
      } else {
        consecutive_unknown = 0;
      }
    }
    if (inc) accumulate(&res.stats, inc->stats());
  }

  if (found < 0) {
    // Even plain distinctness failed: no nv-bit encoding exists (or the
    // budget ran out everywhere).
    res.proven = !unknown_above;
    PICOLA_OBS_COUNT("sat/exact_infeasible", 1);
    return res;
  }

  // Canonical model: re-solve (work, found) on a FRESH solver so the
  // reported encoding is a pure function of the formula and the target —
  // identical across descending, binary and scratch sweeps, whatever
  // learned-clause state each accumulated.  kScratch's winning call was
  // already exactly this solve, so reuse its model.
  res.encoding = sweep_model;
  if (opt.sweep != SweepMode::kScratch) {
    check_cancel();
    Solver canon(ctx.work, so);
    std::vector<uint8_t> pairs(pair_slots, 0);
    SolveStatus st = solve_refining(canon, ctx.base,
                                    target_assumptions(ctx, found), &pairs,
                                    &res.solver_calls);
    accumulate(&res.stats, canon.stats());
    // kUnknown here means the fresh solver hit the per-call budget on a
    // query the sweep already answered; fall back to the sweep's model.
    if (st == SolveStatus::kSat) res.encoding = decode_model(ctx.base, canon);
  }
  res.feasible = true;
  res.satisfied = count_satisfied_constraints(cs, res.encoding);
  res.proven = !unknown_above && res.satisfied == found;
  PICOLA_OBS_COUNT("sat/exact_feasible", 1);
  return res;
}

}  // namespace picola::sat
