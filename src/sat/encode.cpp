#include "sat/encode.h"

#include <stdexcept>
#include <string>

#include "constraints/dichotomy.h"
#include "obs/obs.h"

namespace picola::sat {

FaceCnf build_face_cnf(const ConstraintSet& cs, int nv,
                       const ReductionOptions& opt) {
  std::string err = cs.validate();
  if (!err.empty()) throw std::invalid_argument("sat: invalid set: " + err);
  if (nv < 1 || nv > 20)
    throw std::invalid_argument("sat: num_bits " + std::to_string(nv) +
                                " out of range [1, 20]");
  const int n = cs.num_symbols;
  const long num_codes = 1L << nv;
  if (num_codes * n > 500'000)
    throw std::invalid_argument(
        "sat: code space too large for the indicator encoding (" +
        std::to_string(n) + " symbols x 2^" + std::to_string(nv) + " codes)");

  FaceCnf fc;
  fc.num_symbols = n;
  fc.num_bits = nv;
  Cnf& cnf = fc.cnf;
  cnf.num_vars = n * nv;  // the x[s][b] block sits first

  if (opt.pin_symbol0)
    for (int b = 0; b < nv; ++b) cnf.add_clause({-fc.bit_var(0, b)});

  // Code indicators u[s][c], defined bidirectionally from the bits, then
  // at-most-one symbol per code word.
  std::vector<int> u(static_cast<size_t>(n) * static_cast<size_t>(num_codes));
  for (auto& v : u) v = cnf.new_var();
  auto ind = [&](int s, long c) {
    return u[static_cast<size_t>(s) * static_cast<size_t>(num_codes) +
             static_cast<size_t>(c)];
  };
  std::vector<int> mismatch;
  for (int s = 0; s < n; ++s) {
    for (long c = 0; c < num_codes; ++c) {
      mismatch.clear();
      mismatch.push_back(ind(s, c));
      for (int b = 0; b < nv; ++b) {
        int x = fc.bit_var(s, b);
        int agree = ((c >> b) & 1) ? x : -x;
        cnf.add_clause({-ind(s, c), agree});  // u -> bits spell out c
        mismatch.push_back(-agree);           // bits spell out c -> u
      }
      cnf.add_clause(mismatch);
    }
  }
  std::vector<int> holders;
  for (long c = 0; c < num_codes; ++c) {
    holders.clear();
    for (int s = 0; s < n; ++s) holders.push_back(ind(s, c));
    add_at_most_one(cnf, holders, opt.card);
  }

  // Face constraints: non-member t stays outside the members' supercube
  // iff some bit separates it (all members 1 and t 0, or vice versa).
  std::vector<uint8_t> member(static_cast<size_t>(n));
  for (const FaceConstraint& c : cs.constraints) {
    member.assign(static_cast<size_t>(n), 0);
    for (int s : c.members) member[static_cast<size_t>(s)] = 1;

    int yk = 0;
    if (opt.with_selectors) {
      yk = cnf.new_var();
      fc.selectors.push_back(yk);
    }

    std::vector<int> all1(static_cast<size_t>(nv)), all0(static_cast<size_t>(nv));
    for (int b = 0; b < nv; ++b) {
      all1[static_cast<size_t>(b)] = cnf.new_var();
      all0[static_cast<size_t>(b)] = cnf.new_var();
      for (int s : c.members) {
        cnf.add_clause({-all1[static_cast<size_t>(b)], fc.bit_var(s, b)});
        cnf.add_clause({-all0[static_cast<size_t>(b)], -fc.bit_var(s, b)});
      }
    }

    std::vector<int> excl;
    for (int t = 0; t < n; ++t) {
      if (member[static_cast<size_t>(t)]) continue;
      excl.clear();
      if (yk != 0) excl.push_back(-yk);
      for (int b = 0; b < nv; ++b) {
        int s1 = cnf.new_var();  // members all 1 at b, t is 0
        int s0 = cnf.new_var();  // members all 0 at b, t is 1
        cnf.add_clause({-s1, all1[static_cast<size_t>(b)]});
        cnf.add_clause({-s1, -fc.bit_var(t, b)});
        cnf.add_clause({-s0, all0[static_cast<size_t>(b)]});
        cnf.add_clause({-s0, fc.bit_var(t, b)});
        excl.push_back(s1);
        excl.push_back(s0);
      }
      cnf.add_clause(excl);
    }
  }
  return fc;
}

Encoding decode_model(const FaceCnf& fc, const Solver& solver) {
  Encoding enc;
  enc.num_symbols = fc.num_symbols;
  enc.num_bits = fc.num_bits;
  enc.codes.assign(static_cast<size_t>(fc.num_symbols), 0);
  for (int s = 0; s < fc.num_symbols; ++s) {
    uint32_t code = 0;
    for (int b = 0; b < fc.num_bits; ++b)
      if (solver.model_value(fc.bit_var(s, b))) code |= 1u << b;
    enc.codes[static_cast<size_t>(s)] = code;
  }
  return enc;
}

SatExactResult sat_exact_encode(const ConstraintSet& cs,
                                const SatExactOptions& opt) {
  PICOLA_OBS_SPAN(span, "sat/exact_encode");
  const int nv =
      opt.num_bits > 0 ? opt.num_bits : Encoding::min_bits(cs.num_symbols);
  ReductionOptions ro;
  ro.card = opt.card;
  ro.with_selectors = true;
  const FaceCnf base = build_face_cnf(cs, nv, ro);

  SatExactResult res;
  bool unknown_above = false;
  // Descending search: the first satisfiable at-least-t target is the
  // maximum, provided every higher target was refuted (not timed out).
  for (int target = cs.size(); target >= 0; --target) {
    Cnf work = base.cnf;
    if (target > 0) add_at_least_k(work, base.selectors, target, opt.card);

    SolverOptions so;
    so.max_conflicts = opt.max_conflicts;
    so.deadline_ns = opt.deadline_ns;
    so.cancel = opt.cancel;
    Solver solver(work, so);
    SolveStatus st = solver.solve();
    ++res.solver_calls;
    res.stats.decisions += solver.stats().decisions;
    res.stats.propagations += solver.stats().propagations;
    res.stats.conflicts += solver.stats().conflicts;
    res.stats.restarts += solver.stats().restarts;
    res.stats.learned_clauses += solver.stats().learned_clauses;
    res.stats.learned_literals += solver.stats().learned_literals;

    if (st == SolveStatus::kSat) {
      res.encoding = decode_model(base, solver);
      res.feasible = true;
      res.satisfied = count_satisfied_constraints(cs, res.encoding);
      res.proven = !unknown_above && res.satisfied == target;
      PICOLA_OBS_COUNT("sat/exact_feasible", 1);
      return res;
    }
    if (st == SolveStatus::kUnknown) unknown_above = true;
  }
  // Even plain distinctness failed: no nv-bit encoding exists (or the
  // budget ran out everywhere).
  res.proven = !unknown_above;
  PICOLA_OBS_COUNT("sat/exact_infeasible", 1);
  return res;
}

}  // namespace picola::sat
