#pragma once
// Reduction of face-constrained encoding to SAT (the `sat_exact`
// backend).
//
// Variables (DIMACS, 1-based):
//   * x[s][b] = 1 + s*nv + b — bit b of symbol s's code;
//   * u[s][c] — code-indicator: symbol s holds code word c.  Defined
//     bidirectionally from the x bits, so exactly one fires per symbol;
//     distinctness is then an at-most-one over {u[*][c]} per code word,
//     emitted with a selectable cardinality encoding (pairwise /
//     sequential counter / commander — the Zhou-style comparison);
//   * per constraint k, per non-member t, per bit b: separator variables
//     sep1/sep0 witnessing "every member fixes bit b to 1 (resp. 0) and
//     t carries the opposite value" via shared all1/all0[k][b] aux vars.
//     A face constraint holds iff every non-member has some separating
//     bit, i.e. the supercube of the members is intruder-free.
//   * optional selector y_k per constraint: the face clauses are guarded
//     by ¬y_k, and a descending at-least-t search over the selectors
//     maximises the number of simultaneously satisfied constraints.
//
// Symmetry breaking: symbol 0 is pinned to code 0 (column
// complementation preserves faces, distinctness and cube counts — the
// same argument the brute-force oracle uses), shrinking the search space
// 2^nv-fold without losing solutions.

#include <cstdint>
#include <memory>
#include <vector>

#include "constraints/face_constraint.h"
#include "encoders/encoding.h"
#include "encoders/restart.h"
#include "sat/cnf.h"
#include "sat/solver.h"

namespace picola::sat {

struct ReductionOptions {
  /// Cardinality encoding for the per-code at-most-one (and the selector
  /// at-least-t in the exact search).
  CardEncoding card = CardEncoding::kSequential;
  /// Emit a selector variable per constraint instead of hard face
  /// clauses.
  bool with_selectors = false;
  /// Pin symbol 0 to code 0 (sound up to column complementation).
  bool pin_symbol0 = true;
};

/// The CNF for one (constraint set, code length) pair plus the variable
/// map needed to decode models and interpret selectors.
struct FaceCnf {
  Cnf cnf;
  int num_symbols = 0;
  int num_bits = 0;
  /// Selector variable y_k per constraint (with_selectors only).
  std::vector<int> selectors;

  /// DIMACS variable of bit `b` of symbol `s`.
  int bit_var(int s, int b) const { return 1 + s * num_bits + b; }
};

/// Build the reduction at `nv` bits.  Throws std::invalid_argument on an
/// invalid set, nv outside [1, 20], or a code space too large for the
/// indicator-variable distinctness encoding (n * 2^nv > 500'000).
FaceCnf build_face_cnf(const ConstraintSet& cs, int nv,
                       const ReductionOptions& opt = {});

/// Read the encoding out of a kSat model.
Encoding decode_model(const FaceCnf& fc, const Solver& solver);

struct SatExactOptions {
  int num_bits = 0;  ///< 0 = minimum length
  CardEncoding card = CardEncoding::kSequential;
  /// Conflict budget per solver call (deterministic bound); 0 = none.
  long max_conflicts = 200'000;
  /// std::chrono::steady_clock deadline in ns; 0 = none.  Soft wall-clock
  /// guard only — determinism comes from the conflict budget.
  uint64_t deadline_ns = 0;
  std::shared_ptr<const CancelToken> cancel;
};

struct SatExactResult {
  Encoding encoding;  ///< valid iff feasible
  bool feasible = false;
  /// Constraints simultaneously satisfied by `encoding` (0 when
  /// infeasible).
  int satisfied = 0;
  /// True when the verdict is exact: every higher satisfaction target —
  /// or, when infeasible, the base distinctness problem — was refuted
  /// within budget rather than timed out.
  bool proven = false;
  SolverStats stats;      ///< accumulated over all solver calls
  long solver_calls = 0;
};

/// Exact encoder: find an nv-bit encoding maximising the number of
/// simultaneously satisfied constraints via a descending at-least-t
/// search over the selector variables.  feasible=false with proven=true
/// means no distinct nv-bit encoding exists at all (nv below the minimum
/// length).  Throws CancelledError if the token fires mid-search.
SatExactResult sat_exact_encode(const ConstraintSet& cs,
                                const SatExactOptions& opt = {});

}  // namespace picola::sat
