#pragma once
// Reduction of face-constrained encoding to SAT (the `sat_exact`
// backend).
//
// Variables (DIMACS, 1-based):
//   * x[s][b] = 1 + s*nv + b — bit b of symbol s's code;
//   * distinctness, selectable (`DistinctEncoding`):
//       - kDifference (default): per symbol pair (s, t) and bit b an aux
//         var d[s][t][b] with d → "bit b differs", plus one "some bit
//         differs" clause per pair — O(n²·nv) vars and clauses, so the
//         big Table I instances (tbk, planet, scf) stay tractable;
//       - kIndicator: the legacy code-indicator formulation u[s][c]
//         ("symbol s holds word c") with a per-word at-most-one — an
//         O(n·2^nv) blowup kept only for comparison and kept behind its
//         original size guard;
//       - kLazy: no distinctness clauses up front; the solver adds a
//         pair's difference clauses only when a model actually collides
//         on that pair (counterexample-guided refinement, incremental
//         solver required).
//   * per constraint k, per non-member t, per bit b: separator variables
//     sep1/sep0 witnessing "every member fixes bit b to 1 (resp. 0) and
//     t carries the opposite value" via shared all1/all0[k][b] aux vars.
//     A face constraint holds iff every non-member has some separating
//     bit, i.e. the supercube of the members is intruder-free.
//   * optional selector y_k per constraint: the face clauses are guarded
//     by ¬y_k, and a search over the selectors maximises the number of
//     simultaneously satisfied constraints.
//
// Symmetry breaking: symbol 0 is pinned to code 0 (column
// complementation preserves faces, distinctness and cube counts — the
// same argument the brute-force oracle uses), shrinking the search space
// 2^nv-fold without losing solutions.

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "constraints/face_constraint.h"
#include "encoders/encoding.h"
#include "encoders/restart.h"
#include "sat/cnf.h"
#include "sat/solver.h"

namespace picola::sat {

/// Distinctness ("all codes differ") encoding family.
enum class DistinctEncoding {
  kDifference,  ///< per-pair "some bit differs" aux vars (polynomial)
  kIndicator,   ///< legacy code indicators u[s][c] (O(n·2^nv), guarded)
  kLazy,        ///< difference clauses added only on model collision
};

const char* distinct_encoding_name(DistinctEncoding e);
std::optional<DistinctEncoding> parse_distinct_encoding(std::string_view name);

/// How sat_exact_encode searches for the maximum at-least-t target.
enum class SweepMode {
  kDescending,  ///< t = m, m-1, ... on ONE incremental solver (default);
                ///< after 3 consecutive budget-exhausted targets it
                ///< bails out to ascending solution-improving search
                ///< (the answer is unproven by then anyway)
  kBinary,      ///< binary search over t on one incremental solver
  kScratch,     ///< descending, fresh solver + CNF per target (the PR 6
                ///< behavior; the fuzz harness diffs it against the
                ///< incremental modes)
};

const char* sweep_mode_name(SweepMode m);
std::optional<SweepMode> parse_sweep_mode(std::string_view name);

struct ReductionOptions {
  /// Cardinality encoding for the indicator distinctness at-most-one
  /// (and the scratch sweep's at-least-t).
  CardEncoding card = CardEncoding::kSequential;
  /// Distinctness encoding (see DistinctEncoding).
  DistinctEncoding distinct = DistinctEncoding::kDifference;
  /// Emit a selector variable per constraint instead of hard face
  /// clauses.
  bool with_selectors = false;
  /// Pin symbol 0 to code 0 (sound up to column complementation).
  bool pin_symbol0 = true;
};

/// The CNF for one (constraint set, code length) pair plus the variable
/// map needed to decode models and interpret selectors.
struct FaceCnf {
  Cnf cnf;
  int num_symbols = 0;
  int num_bits = 0;
  DistinctEncoding distinct = DistinctEncoding::kDifference;
  bool pinned_symbol0 = false;
  /// Selector variable y_k per constraint (with_selectors only).
  std::vector<int> selectors;

  /// DIMACS variable of bit `b` of symbol `s`.
  int bit_var(int s, int b) const { return 1 + s * num_bits + b; }
};

/// Build the reduction at `nv` bits.  Throws std::invalid_argument on an
/// invalid set, nv outside [1, 20], or — for kIndicator only — a code
/// space too large for the indicator encoding (n * 2^nv > 500'000).
FaceCnf build_face_cnf(const ConstraintSet& cs, int nv,
                       const ReductionOptions& opt = {});

/// Add the difference-encoding clauses of the single pair (s, t) to a
/// live solver (the lazy refinement step): one aux var per bit plus the
/// "some bit differs" clause.
void add_pair_difference(Solver& solver, const FaceCnf& fc, int s, int t);

/// Read the encoding out of a kSat model.
Encoding decode_model(const FaceCnf& fc, const Solver& solver);

struct SatExactOptions {
  int num_bits = 0;  ///< 0 = minimum length
  CardEncoding card = CardEncoding::kSequential;
  DistinctEncoding distinct = DistinctEncoding::kDifference;
  SweepMode sweep = SweepMode::kDescending;
  /// Conflict budget per solver call (deterministic bound); 0 = none.
  long max_conflicts = 200'000;
  /// std::chrono::steady_clock deadline in ns; 0 = none.  Soft wall-clock
  /// guard only — determinism comes from the conflict budget.
  uint64_t deadline_ns = 0;
  std::shared_ptr<const CancelToken> cancel;
};

struct SatExactResult {
  Encoding encoding;  ///< valid iff feasible
  bool feasible = false;
  /// Constraints simultaneously satisfied by `encoding` (0 when
  /// infeasible).
  int satisfied = 0;
  /// True when the verdict is exact: every higher satisfaction target —
  /// or, when infeasible, the base distinctness problem — was refuted
  /// within budget rather than timed out.
  bool proven = false;
  SolverStats stats;      ///< accumulated over all solver calls
  long solver_calls = 0;
};

/// Exact encoder: find an nv-bit encoding maximising the number of
/// simultaneously satisfied constraints via a search over the selector
/// variables (descending, binary, or per-target-scratch — see
/// SweepMode).  feasible=false with proven=true means no distinct nv-bit
/// encoding exists at all (nv below the minimum length).  The reported
/// model always comes from one final canonical solve of (CNF, best
/// target) on a fresh solver, so every sweep mode that proves the same
/// target returns the same encoding bit for bit.  Throws CancelledError
/// if the token fires mid-search.
SatExactResult sat_exact_encode(const ConstraintSet& cs,
                                const SatExactOptions& opt = {});

}  // namespace picola::sat
