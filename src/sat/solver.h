#pragma once
// Small in-tree CDCL SAT solver: two-watched-literal propagation,
// first-UIP clause learning, VSIDS-lite branching (activity decay with
// deterministic lowest-index tie-breaking), phase saving, and Luby
// restarts.  Deliberately deterministic: the same CNF, options and call
// sequence always produce the same verdict and model, so the sat backend
// slots into the bit-identical-results contract of the encoding service.
//
// The solver is incremental (the MiniSat lifecycle model):
//   * solve(assumptions) solves under a conjunction of assumption
//     literals, placed as the first decisions; kUnsat then means
//     "unsatisfiable under these assumptions", kSat models include them.
//     Learned clauses, variable activities and saved phases persist
//     across calls, so a sweep over related queries (the sat backend's
//     descending at-least-t search) reuses everything the refutations of
//     earlier targets taught the solver.
//   * add_var() / add_clause() grow the formula between calls (the lazy
//     distinctness encoding adds difference clauses only on conflict).
//   * max_conflicts is a per-call budget: each solve() call gets the
//     full budget regardless of what earlier calls consumed.
//   * the learned-clause database is reduced periodically (lowest
//     clause activity first, locked and binary clauses kept), so a long
//     incremental sweep does not drown propagation in stale lemmas.
//
// Effort bounds, in line with the rest of the tree's cooperative
// machinery (encoders/restart.h):
//   * max_conflicts — a deterministic budget; exceeding it returns
//     kUnknown (never a wrong verdict);
//   * deadline_ns — a wall-clock guard checked periodically; expiring
//     also returns kUnknown (reproducibility caveat documented in
//     docs/ENCODERS.md);
//   * cancel — the service's CancelToken, checked in the propagate and
//     decide loops; firing throws CancelledError so a TCP deadline
//     unwinds a long solve instead of hanging the pool.

#include <cstdint>
#include <memory>
#include <vector>

#include "encoders/restart.h"
#include "sat/cnf.h"

namespace picola::sat {

enum class SolveStatus { kSat, kUnsat, kUnknown };

const char* solve_status_name(SolveStatus s);

struct SolverOptions {
  /// Conflict budget per solve() call; 0 = unlimited.  Exceeding it
  /// returns kUnknown.
  long max_conflicts = 0;
  /// std::chrono::steady_clock deadline in ns since epoch; 0 = none.
  uint64_t deadline_ns = 0;
  /// Cooperative cancellation: checked in the propagate/decide loops,
  /// fires CancelledError.
  std::shared_ptr<const CancelToken> cancel;
  /// VSIDS activity decay factor per conflict.
  double var_decay = 0.95;
  /// Luby restart unit (conflicts).
  int restart_base = 100;
};

struct SolverStats {
  long decisions = 0;
  long propagations = 0;
  long conflicts = 0;
  long restarts = 0;
  long learned_clauses = 0;
  long learned_literals = 0;
  long db_reductions = 0;  ///< learned-clause database reductions
};

class Solver {
 public:
  /// Ingests `cnf` (validated with Cnf::validate; throws
  /// std::invalid_argument on a malformed formula).
  explicit Solver(const Cnf& cnf, SolverOptions opt = {});

  /// Solve (idempotent: a second call re-solves from the root).
  SolveStatus solve();

  /// Solve under `assumptions` (DIMACS literals, each asserted true).
  /// kUnsat means unsatisfiable *under the assumptions*; everything the
  /// call learned (clauses, activity, phases) is kept for later calls.
  SolveStatus solve(const std::vector<int>& assumptions);

  /// Allocate a fresh variable; returns its DIMACS number.  Usable
  /// between solve() calls (the lazy distinctness refinement).
  int add_var();

  /// Add one clause (DIMACS literals) to the live formula.  Backtracks
  /// to the root first; the clause is simplified against root-level
  /// assignments.  Returns false when it makes the formula unsatisfiable
  /// outright (subsequent solve() calls report kUnsat).
  bool add_clause(const std::vector<int>& dimacs_lits);

  /// Truth value of DIMACS variable `var` in the model; only meaningful
  /// after solve() returned kSat.
  bool model_value(int var) const;

  const SolverStats& stats() const { return stats_; }
  int num_vars() const { return num_vars_; }

 private:
  // Internal literal encoding: lit = 2*var + sign, var 0-based, sign 1 =
  // negated.  neg(lit) = lit ^ 1.
  static int internal(int dimacs_lit) {
    int v = dimacs_lit > 0 ? dimacs_lit : -dimacs_lit;
    return 2 * (v - 1) + (dimacs_lit < 0 ? 1 : 0);
  }

  int lit_value(int lit) const {  // -1 undef, 0 false, 1 true
    int8_t v = value_[static_cast<size_t>(lit >> 1)];
    return v < 0 ? -1 : (v ^ (lit & 1));
  }

  bool enqueue(int lit, int reason);
  int propagate();  ///< clause index of a conflict, or -1
  void analyze(int confl, std::vector<int>* learnt, int* bt_level);
  void backtrack(int level);
  SolveStatus search();  ///< the CDCL loop of one solve() call
  int pick_branch();  ///< decision literal, or -1 when all assigned
  void attach(int clause_index);
  void detach(int clause_index);
  void reduce_db();  ///< drop the low-activity half of the learned DB
  void bump(int var);
  void bump_clause(int clause_index);
  void decay();
  void push_order(int var);
  void check_cancel() const;
  bool deadline_expired();
  SolveStatus finish(SolveStatus s);  ///< records sat/* obs counters

  int num_vars_ = 0;
  bool ok_ = true;  ///< false once a top-level conflict is known
  SolverOptions opt_;
  SolverStats stats_;
  SolverStats reported_;  ///< snapshot at the last finish() (obs deltas)

  struct ClauseMeta {
    float act = 0.f;       ///< activity (bumped when used in analyze)
    bool learned = false;  ///< eligible for reduce_db()
  };

  std::vector<std::vector<int>> clauses_;  ///< internal-literal clauses
  std::vector<ClauseMeta> meta_;           ///< parallel to clauses_
  std::vector<std::vector<int>> watches_;  ///< lit -> clause indices
  std::vector<int8_t> value_;              ///< var -> -1/0/1
  std::vector<int> level_;                 ///< var -> decision level
  std::vector<int> reason_;                ///< var -> clause index or -1
  std::vector<int> trail_;                 ///< assigned lits in order
  std::vector<int> trail_lim_;             ///< trail size per decision level
  size_t qhead_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;
  long live_learned_ = 0;   ///< learned clauses currently attached
  long reduce_limit_ = 0;   ///< live_learned_ threshold for reduce_db()
  std::vector<std::pair<double, int>> order_;  ///< max-heap (activity, -var)
  std::vector<uint8_t> polarity_;              ///< saved phase (1 = true)
  std::vector<uint8_t> seen_;                  ///< analyze() scratch
  std::vector<int> assumptions_;  ///< internal lits of the current call
  long conflict_floor_ = 0;       ///< stats_.conflicts at call start
  long deadline_countdown_ = 0;
};

}  // namespace picola::sat
