#pragma once
// Dynamic infeasibility detection (paper §3.3): the nv-compatibility test
// between pairs of constraints and the Classify() routine that flags
// constraints which can no longer be satisfied in B^nv given the columns
// generated so far.

#include <vector>

#include "constraints/constraint_matrix.h"

namespace picola {

/// Smallest d with 2^d >= n.
int ceil_log2(int n);

/// nv-compatibility of two constraints (paper §3.3.1).
///
/// `dim_a`/`dim_b` are the minimum achievable dimensions of the
/// constraints' supercubes under the current partial encoding
/// (max(ceil_log2(size), free columns)); `son_size` is |A ∩ B|.  The
/// routine applies Conditions I/II to adjust the father dimensions, then
/// tests dim(super(A,B)) = dim(A) + dim(B) − dim(A∩B) ≤ nv; for a void son
/// it applies the unused-code budget dc(A) + dc(B) ≤ dc(S).  Like the
/// paper's, this is a conservative feasibility filter, not an exact
/// decision procedure.
bool nv_compatible(int size_a, int dim_a, int size_b, int dim_b, int son_size,
                   int nv, int num_symbols);

/// Classify(): indices of active, unsatisfied constraints that can no
/// longer be satisfied, because
///  (a) their minimum supercube dimension leaves more intruder slots than
///      there are unused codes (static budget), or
///  (b) they are not nv-compatible with an already-satisfied constraint.
std::vector<int> classify_infeasible(const ConstraintMatrix& m);

}  // namespace picola
