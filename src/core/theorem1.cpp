#include "core/theorem1.h"

#include "constraints/dichotomy.h"

namespace picola {

namespace {

/// Supercube of the intruders if it avoids every member code.
std::optional<CodeCube> intruder_cube(const FaceConstraint& l,
                                      const Encoding& enc,
                                      std::vector<int>* intr_out) {
  std::vector<int> intr = intruders(l, enc);
  if (intr_out) *intr_out = intr;
  if (intr.empty()) return CodeCube{};  // unused; callers special-case
  CodeCube super_i = enc.supercube(intr);
  for (int s : l.members)
    if (super_i.contains(enc.code(s))) return std::nullopt;
  return super_i;
}

}  // namespace

std::optional<std::vector<CodeCube>> theorem1_cover(const FaceConstraint& l,
                                                    const Encoding& enc) {
  CodeCube super_l = enc.supercube(l.members);
  std::vector<int> intr;
  auto super_i = intruder_cube(l, enc, &intr);
  if (!super_i) return std::nullopt;
  if (intr.empty()) return std::vector<CodeCube>{super_l};

  // M: bit positions fixed in super(I) but free in super(L).
  uint32_t m_bits = super_i->care & ~super_l.care;
  std::vector<CodeCube> cover;
  for (int b = 0; b < enc.num_bits; ++b) {
    uint32_t bit = uint32_t{1} << b;
    if (!(m_bits & bit)) continue;
    CodeCube c;
    c.care = (super_i->care & ~m_bits) | bit;
    c.value = (super_i->value ^ bit) & c.care;
    cover.push_back(c);
  }
  return cover;
}

std::optional<int> theorem1_cube_count(const FaceConstraint& l,
                                       const Encoding& enc) {
  std::vector<int> intr;
  auto super_i = intruder_cube(l, enc, &intr);
  if (!super_i) return std::nullopt;
  if (intr.empty()) return 1;
  CodeCube super_l = enc.supercube(l.members);
  return super_l.dim(enc.num_bits) - super_i->dim(enc.num_bits);
}

}  // namespace picola
