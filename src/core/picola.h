#pragma once
// PICOLA — Partial Input COLumn based Algorithm (the paper's contribution).
//
// Generates a minimum-length encoding column by column.  Before each
// column, Update_constraints() runs Classify() to detect constraints that
// can no longer be satisfied and substitutes them by their
// guide-constraints; Solve() then builds the column greedily, flipping the
// bit that maximises a weighted sum of newly satisfied seed dichotomies
// while keeping the partial encoding valid (every group of symbols sharing
// a code prefix still fits in the codes the remaining columns can provide).

#include <memory>
#include <utility>
#include <vector>

#include "constraints/constraint_matrix.h"
#include "core/guide.h"
#include "encoders/encoding.h"
#include "encoders/restart.h"

namespace picola {

/// Tunable knobs; the defaults reproduce the paper's algorithm, the flags
/// exist for the ablation benches (DESIGN.md §7).
struct PicolaOptions {
  /// Substitute infeasible constraints by guide constraints (§3.2).
  bool use_guides = true;
  /// Run the pairwise nv-compatibility Classify() (§3.3); when off, only
  /// the static unused-code budget check is applied.
  bool use_classify = true;
  /// Keep flipping bits while the gain is positive after the column first
  /// becomes valid; when off, stop at the first valid column (the paper's
  /// literal Solve() description).
  bool greedy_continue = true;
  /// Weight the dichotomies of nearly-satisfied constraints higher:
  /// w *= 1 + progress_weight * satisfied_fraction.
  double progress_weight = 1.0;
  /// Weight small constraints higher (they are cheaper to finish):
  /// w *= 1 + size_weight / |L|.
  double size_weight = 1.0;
  /// Use plain unweighted dichotomy counts (ablation: the ENC objective).
  bool unweighted = false;
  /// Weight multiplier applied to a constraint once it is classified
  /// infeasible (it stays in the cost function so its remaining
  /// dichotomies keep shrinking the intruder set).
  double infeasible_weight_factor = 0.5;
  /// Code length; 0 selects the minimum ceil(log2 n).
  int num_bits = 0;
  /// Guide-constraint construction policy.
  GuideOptions guide;
  /// Random tie-breaking seed for multi-start runs; 0 keeps the
  /// deterministic lowest-index rule.
  uint64_t tie_break_seed = 0;
  /// Run the src/check verifier during the encode: each Solve() column is
  /// checked against the prefix-capacity invariant and the finished run
  /// against the full from-scratch replay (check::verify_run).  Violations
  /// bump the check/* counters in the global MetricsRegistry and raise
  /// check::SelfCheckError.  Off by default; when off the cost is a single
  /// branch per column.
  bool self_check = false;
  /// Cooperative cancellation (encoders/restart.h): checked before every
  /// Solve() column and before every restart of picola_encode_best; a
  /// fired token aborts the run with CancelledError.  Never affects the
  /// result of a run that completes, so it is excluded from the service
  /// fingerprint and stripped by canonicalize() (service/job.h).
  std::shared_ptr<const CancelToken> cancel;
};

/// Diagnostics of one run.
///
/// The *_ms timing fields are fed from the obs tracer spans
/// (src/obs/obs.h) and stay 0 unless obs::set_enabled(true) was called
/// before the run (the CLI's --stats-json / --trace / --metrics flags do
/// that); the counts are always filled.
struct PicolaStats {
  int guides_added = 0;
  int constraints_deactivated = 0;
  /// Infeasible constraints detected before each column.
  std::vector<int> infeasible_per_column;
  /// Every infeasibility flag as (column, row): row was classified
  /// infeasible just before generating `column`.  Rows < the input set's
  /// size are original constraints; later rows are guides.  Always filled
  /// (the fuzz harness differential-tests these against the exact
  /// small-instance oracle).
  std::vector<std::pair<int, int>> infeasible_events;
  /// Satisfied original constraints at the end.
  int satisfied_constraints = 0;
  /// Update_constraints() classification passes (one per column).
  long classify_calls = 0;
  /// Wall time of each column (classify + guides + solve), obs on only.
  std::vector<double> column_ms;
  /// Per-phase totals across all columns, obs on only.
  double classify_ms = 0;
  double guide_ms = 0;
  double solve_ms = 0;
};

/// Result of a run.
struct PicolaResult {
  Encoding encoding;
  PicolaStats stats;
};

/// Encode `cs.num_symbols` symbols (>= 2) with minimum code length,
/// maximising cheap implementation of the face constraints.
///
/// Throws std::invalid_argument on malformed input instead of asserting:
/// fewer than 2 symbols, a set rejected by ConstraintSet::validate(), or
/// an opt.num_bits that is negative, below Encoding::min_bits(n), or
/// above 31 (codes are uint32_t).  Throws check::SelfCheckError when
/// opt.self_check is set and an internal invariant fails.
PicolaResult picola_encode(const ConstraintSet& cs,
                           const PicolaOptions& opt = {});

/// Quality mode: run PICOLA `restarts` times (the first with the caller's
/// tie-breaking seed — by default deterministic — the rest with seeds
/// derived from it; see encoders/restart.h) and return the run with the
/// smallest espresso-evaluated total cube count, ties broken by lowest
/// restart index.  The restarts are independent, so the concurrent
/// EncodingService (src/service) fans them out as pool tasks and reduces
/// with the same rule, producing bit-identical results.
PicolaResult picola_encode_best(const ConstraintSet& cs, int restarts,
                                const PicolaOptions& opt = {});

/// Options of restart `restart` (0-based) of a multi-start plan based on
/// `opt`: restart 0 keeps opt.tie_break_seed, restart r > 0 uses
/// restart_seed(opt.tie_break_seed, r).  This is the per-restart entry
/// point of the fan-out hook.
PicolaOptions picola_restart_options(const PicolaOptions& opt, int restart);

namespace detail {

/// One Solve() column (exposed for unit tests): returns the bit of every
/// symbol in the next column given the matrix state and the prefixes
/// (codes built from the already generated columns).
std::vector<int> solve_column(const ConstraintMatrix& m,
                              const std::vector<uint32_t>& prefixes,
                              int column_index, const PicolaOptions& opt);

}  // namespace detail

}  // namespace picola
