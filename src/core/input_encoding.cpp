#include "core/input_encoding.h"

#include <cassert>

#include "constraints/derive.h"
#include "core/theorem1.h"
#include "encoders/annealing.h"
#include "encoders/enc_like.h"
#include "encoders/nova_like.h"
#include "encoders/trivial.h"
#include "eval/constraint_eval.h"

namespace picola {

CubeSpace replace_var_with_bits(const CubeSpace& s, int var, int nv) {
  std::vector<int> parts;
  for (int u = 0; u < s.num_vars(); ++u) {
    if (u == var) {
      for (int b = 0; b < nv; ++b) parts.push_back(2);
    } else {
      parts.push_back(s.parts(u));
    }
  }
  return CubeSpace::multi_valued(std::move(parts));
}

std::vector<CodeCube> encode_symbol_group(const std::vector<int>& members,
                                          const Encoding& enc) {
  FaceConstraint grp;
  grp.members = members;
  if (auto t1 = theorem1_cover(grp, enc)) return *t1;
  // Intruders do not form a clean cube: minimise the group function over
  // the code bits with the unused codes as dc.
  Cover cov = constraint_cover(grp, enc);
  std::vector<CodeCube> out;
  for (const Cube& cc : cov.cubes()) {
    CodeCube code_cube;
    for (int b = 0; b < enc.num_bits; ++b) {
      int v = cc.binary_value(cov.space(), b);
      if (v == 0 || v == 1) {
        code_cube.care |= uint32_t{1} << b;
        if (v == 1) code_cube.value |= uint32_t{1} << b;
      }
    }
    out.push_back(code_cube);
  }
  return out;
}

namespace {

Encoding run_encoder(const ConstraintSet& set, const InputEncodingOptions& o) {
  switch (o.encoder) {
    case InputEncoder::kPicola: {
      PicolaOptions p = o.picola;
      p.num_bits = o.num_bits;
      return picola_encode(set, p).encoding;
    }
    case InputEncoder::kNovaLike: {
      NovaLikeOptions n;
      n.num_bits = o.num_bits;
      return nova_like_encode(set, n).encoding;
    }
    case InputEncoder::kEncLike: {
      EncLikeOptions e;
      e.num_bits = o.num_bits;
      return enc_like_encode(set, e).encoding;
    }
    case InputEncoder::kAnnealing: {
      AnnealingOptions a;
      a.num_bits = o.num_bits;
      a.seed = o.seed;
      return annealing_encode(set, a).encoding;
    }
    case InputEncoder::kSequential:
      return sequential_encoding(set.num_symbols, o.num_bits);
    case InputEncoder::kRandom:
      return random_encoding(set.num_symbols, o.seed, o.num_bits);
  }
  return sequential_encoding(set.num_symbols, o.num_bits);
}

/// Copy every variable except `var` from `src` into a full cube of the
/// encoded space, then intersect with the code-bit cover of the symbolic
/// literal; appends the results to `out`.
void substitute_cube(const Cube& src, const CubeSpace& old_space, int var,
                     const CubeSpace& new_space, const Encoding& enc,
                     Cover* out) {
  // Gather the literal's member parts.
  std::vector<int> members;
  for (int p = 0; p < old_space.parts(var); ++p)
    if (src.test(old_space, var, p)) members.push_back(p);
  if (members.empty()) return;

  Cube base = Cube::full(new_space);
  for (int u = 0; u < old_space.num_vars(); ++u) {
    if (u == var) continue;
    int nu = u < var ? u : u + enc.num_bits - 1;
    for (int p = 0; p < old_space.parts(u); ++p)
      base.set(new_space, nu, p, src.test(old_space, u, p));
  }

  if (static_cast<int>(members.size()) == old_space.parts(var)) {
    // Full literal: no restriction on the code bits.
    out->add(std::move(base));
    return;
  }
  for (const CodeCube& cc : encode_symbol_group(members, enc)) {
    Cube c = base;
    for (int b = 0; b < enc.num_bits; ++b) {
      uint32_t bit = uint32_t{1} << b;
      if (cc.care & bit) c.set_binary(new_space, var + b, (cc.value & bit) ? 1 : 0);
    }
    out->add(std::move(c));
  }
}

}  // namespace

InputEncodingResult encode_symbolic_input(const Cover& onset, const Cover& dc,
                                          int var,
                                          const InputEncodingOptions& opt) {
  const CubeSpace& s = onset.space();
  assert(var >= 0 && var < s.num_vars() && !s.is_binary(var));
  const int n = s.parts(var);

  InputEncodingResult r;
  r.minimized_symbolic =
      esp::minimize_cover(onset, dc, opt.symbolic_minimize);
  r.constraints = extract_constraints(r.minimized_symbolic, n, var);
  r.encoding = run_encoder(r.constraints, opt);

  r.encoded_space = replace_var_with_bits(s, var, r.encoding.num_bits);
  r.encoded_onset = Cover(r.encoded_space);
  r.encoded_dc = Cover(r.encoded_space);
  for (const Cube& c : r.minimized_symbolic.cubes())
    substitute_cube(c, s, var, r.encoded_space, r.encoding, &r.encoded_onset);
  for (const Cube& c : dc.cubes())
    substitute_cube(c, s, var, r.encoded_space, r.encoding, &r.encoded_dc);

  // Unused codes are don't-cares for the whole function.
  for (uint32_t u : r.encoding.unused_codes()) {
    Cube c = Cube::full(r.encoded_space);
    for (int b = 0; b < r.encoding.num_bits; ++b)
      c.set_binary(r.encoded_space, var + b, static_cast<int>((u >> b) & 1u));
    r.encoded_dc.add(std::move(c));
  }

  r.minimized = opt.minimize_final
                    ? esp::minimize_cover(r.encoded_onset, r.encoded_dc,
                                          opt.final_minimize)
                    : r.encoded_onset;
  return r;
}

}  // namespace picola
