#pragma once
// Theorem I (paper §3.2): if the intruders of constraint L form a cube that
// does not intersect L's codes, then L is implementable with exactly
// dim[super(L)] - dim[super(I)] cubes, built constructively: for every
// literal m of super(I) absent from super(L), take super(I) with m
// complemented and the other such literals freed.

#include <optional>
#include <vector>

#include "constraints/face_constraint.h"
#include "encoders/encoding.h"

namespace picola {

/// The constructive cover of Theorem I under a complete encoding.
/// Returns nullopt when the precondition fails (some member code lies in
/// the supercube of the intruders).  When the constraint is satisfied
/// (no intruders) the cover is the single cube super(L).
std::optional<std::vector<CodeCube>> theorem1_cover(const FaceConstraint& l,
                                                    const Encoding& enc);

/// Theorem I's cube count, dim[super(L)] - dim[super(I)], or 1 when the
/// constraint is satisfied; nullopt when the precondition fails.
std::optional<int> theorem1_cube_count(const FaceConstraint& l,
                                       const Encoding& enc);

}  // namespace picola
