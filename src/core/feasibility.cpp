#include "core/feasibility.h"

namespace picola {

int ceil_log2(int n) {
  int d = 0;
  while ((1L << d) < n) ++d;  // long: no UB once d reaches 31 (n > 2^30)
  return d;
}

namespace {

/// Unused codes in a dim-dimensional cube holding `size` codes.  Callers
/// clamp `dim` at the code length (plus one for the strict-containment
/// bump), so the shift stays well-defined.
long dc_of(int dim, int size) { return (1L << dim) - size; }

/// Raise `dim_father` until the son cube (dim_son, son_size) fits inside:
/// Conditions I (strict containment needs a strictly larger cube) and
/// Conditions II (the father must have at least as many unused codes).
/// The growth stops at `max_dim + 1`: a father past the code length is
/// already incompatible, and the early exit keeps dc_of()'s shift away
/// from UB on adversarial sizes.
int adjust_father(int dim_father, int size_father, int dim_son, int son_size,
                  int max_dim) {
  if (son_size < size_father) {
    // proper son: father strictly bigger
    if (dim_father <= dim_son) dim_father = dim_son + 1;
  } else {
    // son == father as a set: same cube
    if (dim_father < dim_son) dim_father = dim_son;
  }
  while (dim_father <= max_dim &&
         dc_of(dim_father, size_father) < dc_of(dim_son, son_size))
    ++dim_father;
  return dim_father;
}

}  // namespace

bool nv_compatible(int size_a, int dim_a, int size_b, int dim_b, int son_size,
                   int nv, int num_symbols) {
  // A supercube dimension beyond the code length can never embed; catching
  // it here also bounds every dimension below before it reaches a shift.
  if (dim_a > nv || dim_b > nv) return false;
  if (son_size > 0) {
    int dim_son = ceil_log2(son_size);
    if (dim_son > nv) return false;  // the shared son alone overflows B^nv
    dim_a = adjust_father(dim_a, size_a, dim_son, son_size, nv);
    dim_b = adjust_father(dim_b, size_b, dim_son, son_size, nv);
    if (dim_a > nv || dim_b > nv) return false;
    // dim(super(A,B)) = dim(A) + dim(B) - dim(A∩B) must fit in B^nv.
    return dim_a + dim_b - dim_son <= nv;
  }
  // Disjoint constraints: both cubes need their own unused codes from the
  // global budget dc(S) = 2^nv - n (sufficient condition in the paper;
  // violation is treated as incompatible).
  long budget = (1L << nv) - num_symbols;
  return dc_of(dim_a, size_a) + dc_of(dim_b, size_b) <= budget;
}

std::vector<int> classify_infeasible(const ConstraintMatrix& m) {
  const int nv = m.nv();
  const int n = m.num_symbols();
  const long global_dc = (1L << nv) - n;

  std::vector<int> satisfied;
  std::vector<int> open;
  for (int k = 0; k < m.num_constraints(); ++k) {
    if (!m.active(k) || m.infeasible(k)) continue;
    if (m.satisfied(k))
      satisfied.push_back(k);
    else if (!m.constraint(k).is_guide)
      open.push_back(k);
  }

  std::vector<int> infeasible;
  for (int k : open) {
    const FaceConstraint& ck = m.constraint(k);
    int dim_k = m.min_super_dim(k);
    bool bad = false;

    // (a) static/dynamic budget: a cube of dimension dim_k holding the
    // members leaves 2^dim_k - |L_k| slots that must all be unused codes.
    if (dc_of(dim_k, ck.size()) > global_dc) bad = true;

    // The supercube can also already be too large to fit.
    if (!bad && dim_k > nv) bad = true;

    // (c) pin budget: distinguishing the |L_k| members consumes at least
    // max(ceil_log2(|L_k|), free columns already spent) non-uniform
    // columns, so at most nv minus that many columns can ever pin a
    // literal of super(L_k).  Once the budget is spent, the remaining
    // potential intruders can no longer be excluded.
    if (!bad) {
      int pin_budget = (nv - dim_k) - m.pinned_columns(k);
      if (pin_budget <= 0) bad = true;
    }

    // (b) pairwise against satisfied constraints.
    if (!bad) {
      for (int a : satisfied) {
        const FaceConstraint& ca = m.constraint(a);
        int son = static_cast<int>(ca.intersect(ck).size());
        if (!nv_compatible(ca.size(), m.min_super_dim(a), ck.size(), dim_k,
                           son, nv, n)) {
          bad = true;
          break;
        }
      }
    }
    if (bad) infeasible.push_back(k);
  }
  return infeasible;
}

}  // namespace picola
