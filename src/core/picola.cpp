#include "core/picola.h"

#include <algorithm>
#include <cassert>
#include <random>
#include <stdexcept>
#include <unordered_map>

#include "check/verifier.h"
#include "core/feasibility.h"
#include "encoders/restart.h"
#include "eval/constraint_eval.h"
#include "obs/obs.h"

namespace picola {
namespace detail {

namespace {

/// Per-constraint bookkeeping while a column is under construction.
struct ColState {
  double weight = 0;   ///< dichotomy weight this column
  int size = 0;        ///< |L|
  int member_zeros = 0;
  long unsat_at_zero = 0;  ///< unsatisfied non-member entries with bit 0
  long unsat_at_one = 0;   ///< unsatisfied non-member entries with bit 1
  bool active = false;

  /// Weighted dichotomies this column will satisfy if the remaining bits
  /// stay as they are: members uniform and opposite-valued unsatisfied
  /// non-members.
  double pending() const {
    if (!active) return 0;
    if (member_zeros == 0) return weight * static_cast<double>(unsat_at_zero);
    if (member_zeros == size) return weight * static_cast<double>(unsat_at_one);
    return 0;
  }
};

}  // namespace

std::vector<int> solve_column(const ConstraintMatrix& m,
                              const std::vector<uint32_t>& prefixes,
                              int column_index, const PicolaOptions& opt) {
  const int n = m.num_symbols();
  const int nv = m.nv();
  const long cap = 1L << (nv - column_index - 1);

  // Prefix groups.
  std::unordered_map<uint32_t, int> group_of_prefix;
  std::vector<int> group(static_cast<size_t>(n));
  std::vector<long> group_size;
  for (int j = 0; j < n; ++j) {
    auto [it, fresh] = group_of_prefix.try_emplace(
        prefixes[static_cast<size_t>(j)],
        static_cast<int>(group_size.size()));
    if (fresh) group_size.push_back(0);
    group[static_cast<size_t>(j)] = it->second;
    ++group_size[static_cast<size_t>(it->second)];
  }
  std::vector<long> zeros_in_group(group_size.size(), 0);

  // Constraint state.
  const int r = m.num_constraints();
  std::vector<ColState> cs(static_cast<size_t>(r));
  for (int k = 0; k < r; ++k) {
    ColState& st = cs[static_cast<size_t>(k)];
    st.active = m.active(k);
    if (!st.active) continue;
    const FaceConstraint& c = m.constraint(k);
    st.size = c.size();
    long unsat = 0;
    for (int j = 0; j < n; ++j)
      if (m.entry(k, j) == 0) ++unsat;
    st.unsat_at_one = unsat;  // every bit starts at 1
    if (unsat == 0) {
      st.active = false;  // nothing left to gain from this constraint
      continue;
    }
    if (opt.unweighted) {
      st.weight = 1.0;
    } else {
      double satisfied_frac =
          1.0 - static_cast<double>(unsat) / static_cast<double>(n - st.size);
      st.weight = c.weight *
                  (1.0 + opt.progress_weight * satisfied_frac) *
                  (1.0 + opt.size_weight / static_cast<double>(st.size));
    }
  }

  std::vector<int> bits(static_cast<size_t>(n), 1);

  // Gain of flipping symbol `s` to 0 given the current column state.
  auto gain_of = [&](int s) {
    double gain = 0;
    for (int k = 0; k < r; ++k) {
      ColState& st = cs[static_cast<size_t>(k)];
      if (!st.active) continue;
      int e = m.entry(k, s);
      if (e == ConstraintMatrix::kMember) {
        double before = st.pending();
        ++st.member_zeros;
        double after = st.pending();
        --st.member_zeros;
        gain += after - before;
      } else if (e == 0) {
        if (st.member_zeros == 0)
          gain += st.weight;  // members (still) uniform at 1, s drops to 0
        else if (st.member_zeros == st.size)
          gain -= st.weight;  // members at 0: s at 1 was a pending dichotomy
      }
    }
    return gain;
  };

  auto flip = [&](int s) {
    bits[static_cast<size_t>(s)] = 0;
    ++zeros_in_group[static_cast<size_t>(group[static_cast<size_t>(s)])];
    for (int k = 0; k < r; ++k) {
      ColState& st = cs[static_cast<size_t>(k)];
      if (!st.active) continue;
      int e = m.entry(k, s);
      if (e == ConstraintMatrix::kMember) {
        ++st.member_zeros;
      } else if (e == 0) {
        --st.unsat_at_one;
        ++st.unsat_at_zero;
      }
    }
  };

  // Optional random tie-breaking for multi-start runs.
  std::mt19937_64 rng(opt.tie_break_seed * 0x9E3779B97F4A7C15ULL +
                      static_cast<uint64_t>(column_index));
  const bool randomize = opt.tie_break_seed != 0;
  constexpr double kTieEps = 1e-9;

  while (true) {
    // Validity: every (prefix, bit=1) group must fit under the remaining
    // columns' capacity; (prefix, bit=0) groups are kept legal by
    // construction.
    bool valid = true;
    for (size_t g = 0; g < group_size.size(); ++g) {
      if (group_size[g] - zeros_in_group[g] > cap) {
        valid = false;
        break;
      }
    }
    if (valid && !opt.greedy_continue) break;

    int best = -1;
    double best_gain = 0;
    int ties = 0;
    for (int s = 0; s < n; ++s) {
      if (bits[static_cast<size_t>(s)] == 0) continue;
      size_t g = static_cast<size_t>(group[static_cast<size_t>(s)]);
      if (zeros_in_group[g] + 1 > cap) continue;  // would overfill the 0 side
      if (!valid && group_size[g] - zeros_in_group[g] <= cap)
        continue;  // must make progress on an oversized group first
      double gain = gain_of(s);
      if (best < 0 || gain > best_gain + (randomize ? kTieEps : 0.0)) {
        best = s;
        best_gain = gain;
        ties = 1;
      } else if (randomize && gain > best_gain - kTieEps) {
        // Reservoir-sample among the tied candidates.
        ++ties;
        if (rng() % static_cast<uint64_t>(ties) == 0) best = s;
      }
    }
    if (best < 0) {
      assert(valid && "an oversized group always has a legal flip");
      break;
    }
    if (valid && best_gain <= 0) break;
    flip(best);
  }
  return bits;
}

}  // namespace detail

PicolaResult picola_encode(const ConstraintSet& cs, const PicolaOptions& opt) {
  const int n = cs.num_symbols;
  if (n < 2)
    throw std::invalid_argument("picola_encode: need at least 2 symbols");
  if (std::string e = cs.validate(); !e.empty())
    throw std::invalid_argument("picola_encode: " + e);
  if (opt.num_bits < 0)
    throw std::invalid_argument("picola_encode: negative code length");
  // Codes are uint32_t, so 31 is the longest representable code; anything
  // above used to silently truncate the accumulated prefix.
  if (opt.num_bits > 31)
    throw std::invalid_argument("picola_encode: code length " +
                                std::to_string(opt.num_bits) +
                                " exceeds 31 bits");
  const int nv = opt.num_bits > 0 ? opt.num_bits : Encoding::min_bits(n);
  if ((1L << nv) < n)
    throw std::invalid_argument(
        "picola_encode: code length " + std::to_string(nv) +
        " too small for " + std::to_string(n) + " symbols");

  ConstraintMatrix m(cs, nv);
  PicolaResult result;
  std::vector<std::vector<int>> columns;
  std::vector<uint32_t> prefixes(static_cast<size_t>(n), 0);

  PICOLA_OBS_SPAN(span_encode, "picola/encode");
  for (int col = 0; col < nv; ++col) {
    // Deadline/cancellation seam (encoders/restart.h): a fired token
    // abandons the run at the next column boundary.
    throw_if_cancelled(opt.cancel.get());
    PICOLA_OBS_SPAN(span_column, "picola/column");
    // Update_constraints(): classify, then attach/refresh guides.
    std::vector<int> infeasible;
    {
      PICOLA_OBS_SPAN(span_classify, "picola/classify");
      if (opt.use_classify) {
        infeasible = classify_infeasible(m);
      } else {
        // Static budget check only.
        for (int k = 0; k < m.num_constraints(); ++k) {
          if (!m.active(k) || m.infeasible(k) || m.satisfied(k)) continue;
          if (m.constraint(k).is_guide) continue;
          long dim = m.min_super_dim(k);
          if ((1L << dim) - m.constraint(k).size() > (1L << nv) - n)
            infeasible.push_back(k);
        }
      }
      ++result.stats.classify_calls;
      result.stats.classify_ms +=
          static_cast<double>(span_classify.elapsed_ns()) / 1e6;
    }
    result.stats.infeasible_per_column.push_back(
        static_cast<int>(infeasible.size()));
    for (int k : infeasible) {
      result.stats.infeasible_events.emplace_back(col, k);
      // The original stays in the cost function with reduced weight: its
      // remaining dichotomies still shrink the intruder set, which is what
      // makes the (dynamic) guide constraint meaningful.
      m.mark_infeasible(k);
      m.scale_weight(k, opt.infeasible_weight_factor);
      ++result.stats.constraints_deactivated;
    }
    if (opt.use_guides) {
      PICOLA_OBS_SPAN(span_guide, "guide/generate");
      // Refresh the guide of every infeasible original whose potential
      // intruder set shrank since the last column.
      const int original_rows = m.num_constraints();
      for (int k = 0; k < original_rows; ++k) {
        if (!m.infeasible(k) || m.constraint(k).is_guide) continue;
        auto g = make_guide(m, k, opt.guide);
        if (!g) continue;
        int old = m.guide_of(k);
        if (old >= 0 && m.constraint(old).members == g->members) continue;
        if (old >= 0) m.deactivate(old);
        int idx = m.add_constraint(*g, columns);
        m.set_guide_of(k, idx);
        if (old < 0) ++result.stats.guides_added;
      }
      result.stats.guide_ms +=
          static_cast<double>(span_guide.elapsed_ns()) / 1e6;
    }

    // Solve(): one column.
    std::vector<int> bits;
    {
      PICOLA_OBS_SPAN(span_solve, "picola/column_select");
      bits = detail::solve_column(m, prefixes, col, opt);
      result.stats.solve_ms +=
          static_cast<double>(span_solve.elapsed_ns()) / 1e6;
    }
    if (opt.self_check)
      check::enforce(check::verify_column(bits, prefixes, col, nv), "column");
    m.record_column(bits);
    for (int j = 0; j < n; ++j)
      prefixes[static_cast<size_t>(j)] |=
          static_cast<uint32_t>(bits[static_cast<size_t>(j)]) << col;
    columns.push_back(std::move(bits));
    if (span_column.elapsed_ns() > 0)
      result.stats.column_ms.push_back(
          static_cast<double>(span_column.elapsed_ns()) / 1e6);
  }

  result.encoding.num_symbols = n;
  result.encoding.num_bits = nv;
  result.encoding.codes = prefixes;
  assert(result.encoding.validate().empty());
  if (opt.self_check)
    check::enforce(check::verify_run(cs, m, result.encoding), "run");

  for (int k = 0; k < static_cast<int>(cs.constraints.size()); ++k)
    if (m.satisfied(k)) ++result.stats.satisfied_constraints;
  return result;
}

PicolaOptions picola_restart_options(const PicolaOptions& opt, int restart) {
  PicolaOptions o = opt;
  o.tie_break_seed = restart_seed(opt.tie_break_seed, restart);
  return o;
}

PicolaResult picola_encode_best(const ConstraintSet& cs, int restarts,
                                const PicolaOptions& opt) {
  PICOLA_OBS_SPAN(span_best, "picola/encode_best");
  PicolaResult best = picola_encode(cs, opt);
  if (restarts <= 1) return best;
  RestartWinner winner;
  winner.offer(evaluate_constraints(cs, best.encoding).total_cubes, 0);
  for (int r = 1; r < restarts; ++r) {
    throw_if_cancelled(opt.cancel.get());
    PicolaResult cand = picola_encode(cs, picola_restart_options(opt, r));
    if (winner.offer(evaluate_constraints(cs, cand.encoding).total_cubes, r))
      best = std::move(cand);
  }
  return best;
}

}  // namespace picola
