#pragma once
// The paper's general application: encoding a symbolic *input* of a
// multi-valued function (microcode mnemonic fields, symbolic inputs from
// high-level descriptions, ...).  The flow mirrors the FSM tool: minimise
// the multi-valued cover, extract face constraints on the chosen variable,
// encode at minimum length, then substitute the symbolic literal by a
// cover over the new code bits (Theorem-I construction where it applies).

#include <cstdint>

#include "constraints/face_constraint.h"
#include "core/picola.h"
#include "cube/cover.h"
#include "encoders/encoding.h"
#include "espresso/espresso.h"

namespace picola {

/// Encoder selection for the generic flow.
enum class InputEncoder {
  kPicola,
  kNovaLike,
  kEncLike,
  kAnnealing,
  kSequential,
  kRandom,
};

struct InputEncodingOptions {
  InputEncoder encoder = InputEncoder::kPicola;
  PicolaOptions picola;
  int num_bits = 0;  ///< 0 = minimum length
  uint64_t seed = 1;
  esp::EspressoOptions symbolic_minimize;
  esp::EspressoOptions final_minimize;
  /// Run the final binary minimisation (off = just substitute codes).
  bool minimize_final = true;
};

struct InputEncodingResult {
  Cover minimized_symbolic;  ///< after multi-valued minimisation
  ConstraintSet constraints;
  Encoding encoding;
  CubeSpace encoded_space;  ///< var replaced by code-bit binary variables
  Cover encoded_onset;
  Cover encoded_dc;
  Cover minimized;  ///< final cover (== encoded_onset when !minimize_final)
};

/// Replace the multi-valued variable `var` of the function (onset, dc) by
/// a binary encoding of its parts.  `var` must not be binary.
InputEncodingResult encode_symbolic_input(const Cover& onset, const Cover& dc,
                                          int var,
                                          const InputEncodingOptions& opt = {});

/// The cube space of `s` with variable `var` replaced by `nv` binary
/// variables (at the same position).
CubeSpace replace_var_with_bits(const CubeSpace& s, int var, int nv);

/// Implement a group of symbols over the code bits: the single supercube
/// when the group is a satisfied face, the Theorem-I constructive cover
/// when its precondition holds, and an espresso-minimised cover of the
/// member codes (unused codes as dc) otherwise.
std::vector<CodeCube> encode_symbol_group(const std::vector<int>& members,
                                          const Encoding& enc);

}  // namespace picola
