#pragma once
// Guide constraints (paper §3.2): when a constraint L becomes infeasible,
// the group constraint on its (potential) intruder set I is added instead.
// Satisfying the guide forces the intruders onto a face of super(L), which
// by Theorem I buys an implementation of L with
// dim[super(L)] - dim[super(I)] cubes.

#include <optional>

#include "constraints/constraint_matrix.h"

namespace picola {

/// Guide-constraint construction policy.
struct GuideOptions {
  /// Weight of a guide relative to its origin's weight.
  double weight_factor = 0.75;
  /// Allow guides of guides when a guide itself becomes infeasible.
  bool recursive = true;
};

/// Build the guide constraint of infeasible constraint `k` from the current
/// matrix state (members = potential intruders).  Returns nullopt when the
/// intruder set is trivial (< 2 symbols) or covers every symbol.
std::optional<FaceConstraint> make_guide(const ConstraintMatrix& m, int k,
                                         const GuideOptions& opt = {});

}  // namespace picola
