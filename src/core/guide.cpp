#include "core/guide.h"

namespace picola {

std::optional<FaceConstraint> make_guide(const ConstraintMatrix& m, int k,
                                         const GuideOptions& opt) {
  const FaceConstraint& origin = m.constraint(k);
  if (origin.is_guide && !opt.recursive) return std::nullopt;
  std::vector<int> intr = m.potential_intruders(k);
  if (static_cast<int>(intr.size()) < 2) return std::nullopt;
  if (static_cast<int>(intr.size()) >= m.num_symbols()) return std::nullopt;
  FaceConstraint g;
  g.members = std::move(intr);  // potential_intruders() returns sorted ids
  g.weight = origin.weight * opt.weight_factor;
  g.is_guide = true;
  g.origin = origin.is_guide ? origin.origin : k;
  return g;
}

}  // namespace picola
