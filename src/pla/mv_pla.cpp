#include "pla/mv_pla.h"

#include <sstream>

#include "base/parse_util.h"

namespace picola {

namespace {

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string t;
  while (is >> t) toks.push_back(t);
  return toks;
}

}  // namespace

CubeSpace MvPla::space() const {
  std::vector<int> parts(static_cast<size_t>(num_binary), 2);
  for (int s : mv_sizes) parts.push_back(s);
  return CubeSpace::multi_valued(std::move(parts));
}

namespace {

Cover rows_to_cover(const MvPla& pla, bool want_dc) {
  CubeSpace s = pla.space();
  Cover f(s);
  for (const auto& row : pla.rows) {
    if (row.is_dc != want_dc) continue;
    Cube c = Cube::full(s);
    for (int v = 0; v < pla.num_binary; ++v) {
      char ch = row.binary[static_cast<size_t>(v)];
      if (ch == '0') c.set_binary(s, v, 0);
      if (ch == '1') c.set_binary(s, v, 1);
    }
    for (size_t m = 0; m < pla.mv_sizes.size(); ++m) {
      int var = pla.num_binary + static_cast<int>(m);
      c.clear_var(s, var);
      const std::string& field = row.fields[m];
      for (int p = 0; p < pla.mv_sizes[m]; ++p)
        if (field[static_cast<size_t>(p)] == '1') c.set(s, var, p);
    }
    if (!c.is_empty(s)) f.add(std::move(c));
  }
  return f;
}

}  // namespace

Cover MvPla::onset() const { return rows_to_cover(*this, false); }
Cover MvPla::dcset() const { return rows_to_cover(*this, true); }

std::string MvPla::validate() const {
  if (num_binary < 0 || mv_sizes.empty()) return "need at least one mv var";
  for (int s : mv_sizes)
    if (s < 1) return "bad mv size";
  for (const auto& row : rows) {
    if (static_cast<int>(row.binary.size()) != num_binary)
      return "binary field width mismatch";
    for (char ch : row.binary)
      if (ch != '0' && ch != '1' && ch != '-') return "bad binary character";
    if (row.fields.size() != mv_sizes.size()) return "missing mv field";
    for (size_t m = 0; m < mv_sizes.size(); ++m) {
      if (static_cast<int>(row.fields[m].size()) != mv_sizes[m])
        return "mv field width mismatch";
      for (char ch : row.fields[m])
        if (ch != '0' && ch != '1') return "bad mv character";
    }
  }
  return "";
}

MvPlaParseResult parse_mv_pla(std::istream& in) {
  MvPlaParseResult res;
  MvPla& pla = res.pla;
  std::string line;
  int lineno = 0;
  bool have_mv = false;
  bool in_dc = false;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::vector<std::string> toks = split_ws(line);
    if (toks.empty()) continue;
    auto fail = [&](const std::string& msg) {
      res.error = "line " + std::to_string(lineno) + ": " + msg;
    };
    if (toks[0] == ".mv") {
      if (toks.size() < 4) { fail(".mv needs >= 3 arguments"); return res; }
      auto nv_opt = parse_int(toks[1]);
      auto nb_opt = parse_int(toks[2]);
      if (!nv_opt || !nb_opt || *nb_opt < 0) { fail("bad .mv value"); return res; }
      int nv = *nv_opt;
      pla.num_binary = *nb_opt;
      for (size_t i = 3; i < toks.size(); ++i) {
        auto sz = parse_int(toks[i]);
        if (!sz || *sz < 1) { fail("bad .mv size"); return res; }
        pla.mv_sizes.push_back(*sz);
      }
      if (nv != pla.num_vars()) { fail(".mv count mismatch"); return res; }
      have_mv = true;
    } else if (toks[0] == ".label") {
      pla.labels.assign(toks.begin() + 1, toks.end());
    } else if (toks[0] == ".dc") {
      in_dc = true;
    } else if (toks[0] == ".ons" || toks[0] == ".onset") {
      in_dc = false;
    } else if (toks[0] == ".p") {
      // row-count hint
    } else if (toks[0] == ".e" || toks[0] == ".end") {
      break;
    } else if (toks[0][0] == '.') {
      fail("unknown directive " + toks[0]);
      return res;
    } else {
      if (!have_mv) { fail("cube before .mv"); return res; }
      size_t want = 1 + pla.mv_sizes.size();
      if (pla.num_binary == 0) want = pla.mv_sizes.size();
      if (toks.size() != want) { fail("wrong field count"); return res; }
      MvPla::Row row;
      size_t k = 0;
      row.binary = pla.num_binary == 0 ? "" : toks[k++];
      for (char& ch : row.binary)
        if (ch == '2' || ch == '~') ch = '-';
      while (k < toks.size()) row.fields.push_back(toks[k++]);
      row.is_dc = in_dc;
      pla.rows.push_back(std::move(row));
    }
  }
  if (!have_mv) {
    res.error = "missing .mv";
    return res;
  }
  std::string verr = pla.validate();
  if (!verr.empty()) res.error = verr;
  return res;
}

MvPlaParseResult parse_mv_pla(const std::string& text) {
  std::istringstream is(text);
  return parse_mv_pla(is);
}

bool mv_pla_from_covers(const Cover& onset, const Cover& dc, MvPla* out) {
  const CubeSpace& s = onset.space();
  int nb = 0;
  while (nb < s.num_vars() && s.is_binary(nb)) ++nb;
  for (int v = nb; v < s.num_vars(); ++v)
    if (s.is_binary(v)) return false;  // binary var after an mv var
  if (nb == s.num_vars()) return false;  // no mv variable at all

  out->num_binary = nb;
  out->mv_sizes.clear();
  out->labels.clear();
  out->rows.clear();
  for (int v = nb; v < s.num_vars(); ++v) out->mv_sizes.push_back(s.parts(v));

  auto emit = [&](const Cover& f, bool is_dc) {
    for (const Cube& c : f.cubes()) {
      MvPla::Row row;
      row.is_dc = is_dc;
      row.binary.resize(static_cast<size_t>(nb));
      for (int v = 0; v < nb; ++v) {
        static const char sym[] = {'0', '1', '-', '~'};
        row.binary[static_cast<size_t>(v)] = sym[c.binary_value(s, v)];
      }
      for (int v = nb; v < s.num_vars(); ++v) {
        std::string field(static_cast<size_t>(s.parts(v)), '0');
        for (int p = 0; p < s.parts(v); ++p)
          if (c.test(s, v, p)) field[static_cast<size_t>(p)] = '1';
        row.fields.push_back(std::move(field));
      }
      out->rows.push_back(std::move(row));
    }
  };
  emit(onset, false);
  if (!dc.empty() && dc.space() == s) emit(dc, true);
  return true;
}

std::string write_mv_pla(const MvPla& pla) {
  std::ostringstream os;
  os << ".mv " << pla.num_vars() << ' ' << pla.num_binary;
  for (int s : pla.mv_sizes) os << ' ' << s;
  os << '\n';
  if (!pla.labels.empty()) {
    os << ".label";
    for (const auto& l : pla.labels) os << ' ' << l;
    os << '\n';
  }
  os << ".p " << pla.rows.size() << '\n';
  bool dc_mode = false;
  // Onset rows first, then dc rows under a .dc header.
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& row : pla.rows) {
      if (row.is_dc != (pass == 1)) continue;
      if (pass == 1 && !dc_mode) {
        os << ".dc\n";
        dc_mode = true;
      }
      if (pla.num_binary > 0) os << row.binary << ' ';
      for (size_t m = 0; m < row.fields.size(); ++m) {
        if (m) os << ' ';
        os << row.fields[m];
      }
      os << '\n';
    }
  }
  os << ".e\n";
  return os.str();
}

}  // namespace picola
