#include "pla/pla_io.h"

#include <sstream>

#include "base/parse_util.h"

namespace picola {

namespace {

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string t;
  while (is >> t) toks.push_back(t);
  return toks;
}

}  // namespace

PlaParseResult parse_pla(std::istream& in) {
  PlaParseResult res;
  Pla& pla = res.pla;
  pla.num_outputs = 0;
  std::string line;
  int lineno = 0;
  bool saw_i = false, saw_o = false;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::vector<std::string> toks = split_ws(line);
    if (toks.empty()) continue;
    const std::string& head = toks[0];
    auto fail = [&](const std::string& msg) {
      res.error = "line " + std::to_string(lineno) + ": " + msg;
    };
    if (head == ".i") {
      if (toks.size() != 2) { fail(".i needs one argument"); return res; }
      auto v = parse_int(toks[1]);
      if (!v || *v < 0) { fail("bad .i value"); return res; }
      pla.num_inputs = *v;
      saw_i = true;
    } else if (head == ".o") {
      if (toks.size() != 2) { fail(".o needs one argument"); return res; }
      auto v = parse_int(toks[1]);
      if (!v || *v <= 0) { fail("bad .o value"); return res; }
      pla.num_outputs = *v;
      saw_o = true;
    } else if (head == ".p") {
      // row-count hint; ignored
    } else if (head == ".type") {
      if (toks.size() != 2) { fail(".type needs one argument"); return res; }
      if (toks[1] == "f") pla.type = PlaType::F;
      else if (toks[1] == "fd") pla.type = PlaType::FD;
      else if (toks[1] == "fr") pla.type = PlaType::FR;
      else if (toks[1] == "fdr") pla.type = PlaType::FDR;
      else { fail("unknown .type " + toks[1]); return res; }
    } else if (head == ".ilb") {
      pla.input_labels.assign(toks.begin() + 1, toks.end());
    } else if (head == ".ob") {
      pla.output_labels.assign(toks.begin() + 1, toks.end());
    } else if (head == ".e" || head == ".end") {
      break;
    } else if (head[0] == '.') {
      res.warnings.push_back("line " + std::to_string(lineno) +
                             ": ignored directive " + head);
    } else {
      if (!saw_i || !saw_o) { fail("cube before .i/.o"); return res; }
      std::string in_plane, out_plane;
      if (toks.size() == 2) {
        in_plane = toks[0];
        out_plane = toks[1];
      } else {
        // Allow the planes to be written without separation.
        std::string all;
        for (const auto& t : toks) all += t;
        if (static_cast<int>(all.size()) != pla.num_inputs + pla.num_outputs) {
          fail("cube width mismatch");
          return res;
        }
        in_plane = all.substr(0, static_cast<size_t>(pla.num_inputs));
        out_plane = all.substr(static_cast<size_t>(pla.num_inputs));
      }
      if (static_cast<int>(in_plane.size()) != pla.num_inputs ||
          static_cast<int>(out_plane.size()) != pla.num_outputs) {
        fail("cube width mismatch");
        return res;
      }
      // Espresso allows 2|~ in the input plane as synonyms of '-'.
      for (char& ch : in_plane)
        if (ch == '2' || ch == '~') ch = '-';
      for (char& ch : out_plane) {
        if (ch == '2' || ch == '~' || ch == '4') ch = '-';
      }
      pla.rows.push_back({std::move(in_plane), std::move(out_plane)});
    }
  }
  if (!saw_i || !saw_o) {
    res.error = "missing .i or .o";
    return res;
  }
  std::string verr = pla.validate();
  if (!verr.empty()) res.error = verr;
  return res;
}

PlaParseResult parse_pla(const std::string& text) {
  std::istringstream is(text);
  return parse_pla(is);
}

std::string write_pla(const Pla& pla) {
  std::ostringstream os;
  os << ".i " << pla.num_inputs << '\n';
  os << ".o " << pla.num_outputs << '\n';
  if (!pla.input_labels.empty()) {
    os << ".ilb";
    for (const auto& l : pla.input_labels) os << ' ' << l;
    os << '\n';
  }
  if (!pla.output_labels.empty()) {
    os << ".ob";
    for (const auto& l : pla.output_labels) os << ' ' << l;
    os << '\n';
  }
  switch (pla.type) {
    case PlaType::F: os << ".type f\n"; break;
    case PlaType::FD: os << ".type fd\n"; break;
    case PlaType::FR: os << ".type fr\n"; break;
    case PlaType::FDR: os << ".type fdr\n"; break;
  }
  os << ".p " << pla.rows.size() << '\n';
  for (const auto& row : pla.rows) os << row.in << ' ' << row.out << '\n';
  os << ".e\n";
  return os.str();
}

}  // namespace picola
