#pragma once
// Berkeley espresso PLA file format reader/writer.
//
// Supported directives: .i .o .p .type .ilb .ob .e/.end; comments (#) and
// blank lines are skipped.  Unknown dot-directives are ignored with a
// warning collected into ParseResult::warnings.

#include <iosfwd>
#include <string>
#include <vector>

#include "pla/pla.h"

namespace picola {

/// Outcome of parsing; `ok()` is false when `error` is non-empty.
struct PlaParseResult {
  Pla pla;
  std::string error;
  std::vector<std::string> warnings;
  bool ok() const { return error.empty(); }
};

/// Parse espresso PLA text.
PlaParseResult parse_pla(const std::string& text);
/// Parse from a stream.
PlaParseResult parse_pla(std::istream& in);

/// Serialise to espresso PLA text.
std::string write_pla(const Pla& pla);

}  // namespace picola
