#pragma once
// Programmable-logic-array model: a binary-input, multi-output personality
// matrix, convertible to/from multi-output covers, with Berkeley espresso
// file format I/O (see pla_io.h).

#include <string>
#include <vector>

#include "cube/cover.h"

namespace picola {

/// Interpretation of the output plane, following espresso's `.type`.
enum class PlaType {
  F,    ///< '1' = onset; everything else off
  FD,   ///< '1' = onset, '-' = dc (the default)
  FR,   ///< '1' = onset, '0' = offset, rest unspecified
  FDR,  ///< '1' = onset, '0' = offset, '-' = dc
};

/// A two-level personality matrix.  The input plane uses '0', '1', '-';
/// the output plane uses '1', '0', '-' with PlaType semantics.
struct Pla {
  int num_inputs = 0;
  int num_outputs = 0;
  PlaType type = PlaType::FD;
  std::vector<std::string> input_labels;   ///< optional (.ilb)
  std::vector<std::string> output_labels;  ///< optional (.ob)

  struct Row {
    std::string in;   ///< length num_inputs over {0,1,-}
    std::string out;  ///< length num_outputs over {0,1,-}
  };
  std::vector<Row> rows;

  /// The multi-output cube space: num_inputs binary variables plus one
  /// output variable with num_outputs parts.
  CubeSpace space() const {
    return CubeSpace::fsm_layout(num_inputs, 0, num_outputs);
  }

  /// Onset cover: one cube per row that asserts at least one '1' output.
  Cover onset() const;
  /// Dc-set cover (rows with '-' outputs); empty for types F and FR.
  Cover dcset() const;
  /// Explicit off-set cover (rows with '0' outputs); only meaningful for
  /// types FR and FDR.
  Cover offset_rows() const;

  /// Rebuild a PLA (type FD) from a multi-output cover over a space with an
  /// output variable; cubes asserting no output are skipped.
  static Pla from_cover(const Cover& onset, const Cover& dc = {});

  /// Total PLA area in the usual 2-level metric:
  /// rows * (2 * num_inputs + num_outputs).
  long area() const {
    return static_cast<long>(rows.size()) * (2L * num_inputs + num_outputs);
  }

  /// Structural sanity check; returns an error message or "" when valid.
  std::string validate() const;
};

}  // namespace picola
