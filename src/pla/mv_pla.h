#pragma once
// Multi-valued PLA model and espresso `.mv` file format.
//
// Layout follows espresso's multiple-valued extension:
//   .mv <num_vars> <num_binary> <size...>   sizes of the non-binary vars
//   row: <binary field over 01-> <positional field per mv var> ...
// The last variable is the output variable (as in espresso, outputs are
// one multi-valued variable); `.type fd` semantics apply to it with '1's
// as the asserted parts and '-'/'~' ignored (dc rows use `.type`-style
// conventions via a '2' digit is not supported — dc cubes carry '1' parts
// in a separate dc section introduced by `.dc`).

#include <iosfwd>
#include <string>
#include <vector>

#include "cube/cover.h"

namespace picola {

/// A multi-valued personality matrix: binary input field plus positional
/// fields for each multi-valued variable (the last one being the output).
struct MvPla {
  int num_binary = 0;
  std::vector<int> mv_sizes;  ///< sizes of the non-binary variables
  std::vector<std::string> labels;  ///< optional variable labels

  struct Row {
    std::string binary;                ///< width num_binary over {0,1,-}
    std::vector<std::string> fields;   ///< one 0/1 string per mv variable
    bool is_dc = false;                ///< row belongs to the dc-set
  };
  std::vector<Row> rows;

  /// Total variables (binary + multi-valued).
  int num_vars() const {
    return num_binary + static_cast<int>(mv_sizes.size());
  }

  /// The cube space: binary vars then the mv vars in declaration order.
  CubeSpace space() const;

  /// Onset / dc-set covers.
  Cover onset() const;
  Cover dcset() const;

  /// Structural check; "" when valid.
  std::string validate() const;
};

struct MvPlaParseResult {
  MvPla pla;
  std::string error;
  bool ok() const { return error.empty(); }
};

MvPlaParseResult parse_mv_pla(const std::string& text);
MvPlaParseResult parse_mv_pla(std::istream& in);
std::string write_mv_pla(const MvPla& pla);

/// Rebuild an MvPla from covers.  The space must consist of a (possibly
/// empty) prefix of binary variables followed by the multi-valued ones —
/// the format cannot express other orders; returns false in that case.
bool mv_pla_from_covers(const Cover& onset, const Cover& dc, MvPla* out);

}  // namespace picola
