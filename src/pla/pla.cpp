#include "pla/pla.h"

#include <cassert>

namespace picola {

namespace {

// Build the input part of a cube from a row's input string.
bool apply_input_plane(const CubeSpace& s, const std::string& in, Cube* c) {
  for (int v = 0; v < static_cast<int>(in.size()); ++v) {
    switch (in[static_cast<size_t>(v)]) {
      case '0':
        c->set_binary(s, v, 0);
        break;
      case '1':
        c->set_binary(s, v, 1);
        break;
      case '-':
        break;
      default:
        return false;
    }
  }
  return true;
}

// Cover of rows whose output plane contains `ch`; the cube asserts exactly
// those output parts.
Cover plane_cover(const Pla& pla, char ch) {
  CubeSpace s = pla.space();
  int ov = s.output_var();
  Cover f(s);
  for (const auto& row : pla.rows) {
    bool any = false;
    Cube c = Cube::full(s);
    c.clear_var(s, ov);
    for (int o = 0; o < pla.num_outputs; ++o) {
      if (row.out[static_cast<size_t>(o)] == ch) {
        c.set(s, ov, o);
        any = true;
      }
    }
    if (!any) continue;
    bool ok = apply_input_plane(s, row.in, &c);
    assert(ok);
    (void)ok;
    f.add(std::move(c));
  }
  return f;
}

}  // namespace

Cover Pla::onset() const { return plane_cover(*this, '1'); }

Cover Pla::dcset() const {
  if (type == PlaType::F || type == PlaType::FR) return Cover(space());
  return plane_cover(*this, '-');
}

Cover Pla::offset_rows() const {
  if (type == PlaType::F || type == PlaType::FD) return Cover(space());
  return plane_cover(*this, '0');
}

Pla Pla::from_cover(const Cover& onset, const Cover& dc) {
  const CubeSpace& s = onset.space();
  int ov = s.output_var();
  assert(ov >= 0 && "cover needs an output variable");
  assert(s.mv_var() < 0 && "symbolic variables must be encoded first");

  Pla pla;
  pla.num_inputs = s.num_vars() - 1;
  pla.num_outputs = s.parts(ov);
  pla.type = PlaType::FD;

  auto emit = [&](const Cover& f, char ch) {
    for (const Cube& c : f.cubes()) {
      Pla::Row row;
      row.in.resize(static_cast<size_t>(pla.num_inputs));
      for (int v = 0; v < pla.num_inputs; ++v) {
        static const char sym[] = {'0', '1', '-', '~'};
        row.in[static_cast<size_t>(v)] = sym[c.binary_value(s, v)];
      }
      row.out.assign(static_cast<size_t>(pla.num_outputs), '0');
      bool any = false;
      for (int o = 0; o < pla.num_outputs; ++o) {
        if (c.test(s, ov, o)) {
          row.out[static_cast<size_t>(o)] = ch;
          any = true;
        }
      }
      if (any) pla.rows.push_back(std::move(row));
    }
  };
  emit(onset, '1');
  if (!dc.empty() && dc.space() == s) emit(dc, '-');
  return pla;
}

std::string Pla::validate() const {
  if (num_inputs < 0 || num_outputs <= 0) return "bad dimensions";
  for (const auto& row : rows) {
    if (static_cast<int>(row.in.size()) != num_inputs)
      return "input plane width mismatch";
    if (static_cast<int>(row.out.size()) != num_outputs)
      return "output plane width mismatch";
    for (char ch : row.in)
      if (ch != '0' && ch != '1' && ch != '-') return "bad input character";
    for (char ch : row.out)
      if (ch != '0' && ch != '1' && ch != '-') return "bad output character";
  }
  return "";
}

}  // namespace picola
