#include "cli/cli.h"

#include <csignal>
#include <fstream>

#include "base/parse_util.h"
#include <atomic>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>

#include "base/problem_io.h"
#include "constraints/constraint_io.h"
#include "constraints/derive.h"
#include "constraints/dichotomy.h"
#include "core/input_encoding.h"
#include "core/picola.h"
#include "pla/mv_pla.h"
#include "encoders/annealing.h"
#include "encoders/enc_like.h"
#include "encoders/exact.h"
#include "encoders/nova_like.h"
#include "encoders/trivial.h"
#include "espresso/exact.h"
#include "eval/constraint_eval.h"
#include "eval/metrics.h"
#include "kiss/kiss_io.h"
#include "obs/build_info.h"
#include "obs/obs.h"
#include "pla/pla_io.h"
#include "net/client.h"
#include "net/server.h"
#include "portfolio/portfolio.h"
#include "sat/dimacs.h"
#include "sat/encode.h"
#include "service/service.h"
#include "stateassign/blif.h"
#include "stateassign/state_assign.h"

namespace picola::cli {

namespace {

struct ParsedArgs {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;  // "--x v" and bare "--flag"
};

bool parse_portfolio_args(const ParsedArgs& a, portfolio::PortfolioOptions* p,
                          std::ostream& err);

std::optional<ParsedArgs> parse_args(const std::vector<std::string>& args,
                                     std::ostream& err) {
  ParsedArgs p;
  if (args.empty()) {
    err << "usage: picola <encode|encode-input|batch|serve|client|assign"
           "|minimize|info|sat-export> [file] [options]\n";
    return std::nullopt;
  }
  p.command = args[0];
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) == 0 || a == "-o") {
      std::string key = a == "-o" ? "--output" : a;
      static const char* kValued[] = {"--algorithm", "--bits", "--seed",
                                      "--output", "--steps", "--var",
                                      "--blif", "--jobs", "--restarts",
                                      "--cache", "--trace",
                                      "--tcp", "--bind", "--max-inflight",
                                      "--admin-port", "--slow-ms",
                                      "--idle-timeout-ms", "--max-frame-bytes",
                                      "--retry-after-ms", "--deadline-ms",
                                      "--retries", "--timeout-ms",
                                      "--backend", "--card", "--distinct",
                                      "--sweep", "--sat-conflicts",
                                      "--cache-dir", "--snapshot-interval",
                                      "--peers", "--self",
                                      "--peer-timeout-ms", "--cluster",
                                      "--hedge-ms"};
      bool valued = false;
      for (const char* v : kValued) valued |= key == v;
      if (valued) {
        if (i + 1 >= args.size()) {
          err << "option " << a << " needs a value\n";
          return std::nullopt;
        }
        p.options[key] = args[++i];
      } else {
        p.options[key] = "1";
      }
    } else {
      p.positional.push_back(a);
    }
  }
  return p;
}

std::optional<std::string> read_file(const std::string& path,
                                     std::ostream& err) {
  std::ifstream in(path);
  if (!in) {
    err << "cannot open " << path << "\n";
    return std::nullopt;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool write_file(const std::string& path, const std::string& text,
                std::ostream& err) {
  std::ofstream out(path);
  if (!out) {
    err << "cannot write " << path << "\n";
    return false;
  }
  out << text;
  return true;
}

/// Turns the process-wide instrumentation on for the duration of a
/// command when any of --trace / --metrics / --stats-json was given, and
/// restores the previous (off) state afterwards so in-process callers
/// (tests, embedding) see independent runs.  Also owns writing the
/// Chrome trace file and rendering the --metrics report.
class ObsSession {
 public:
  explicit ObsSession(const ParsedArgs& a)
      : want_trace_(a.options.count("--trace") != 0),
        want_metrics_(a.options.count("--metrics") != 0),
        active_(want_trace_ || want_metrics_ ||
                a.options.count("--stats-json") != 0) {
    if (!active_) return;
    if (want_trace_) trace_path_ = a.options.at("--trace");
    obs::MetricsRegistry::global().reset();
    obs::Tracer::global().clear();
    obs::set_enabled(true);
    obs::Tracer::global().set_tracing(want_trace_);
  }

  ~ObsSession() {
    if (!active_) return;
    obs::Tracer::global().set_tracing(false);
    obs::set_enabled(false);
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  bool metrics_wanted() const { return want_metrics_; }

  /// Write the collected trace to the --trace path (no-op without the
  /// flag).  Returns false on I/O failure.
  bool write_trace(std::ostream& err) const {
    if (!want_trace_) return true;
    std::ofstream out(trace_path_);
    if (!out) {
      err << "cannot write " << trace_path_ << "\n";
      return false;
    }
    out << obs::Tracer::global().chrome_trace_json() << "\n";
    return true;
  }

  /// The global per-phase report, '#'-prefixed for the text front-ends.
  static std::string report_lines() {
    std::istringstream is(obs::MetricsRegistry::global().report_text());
    std::ostringstream os;
    std::string line;
    while (std::getline(is, line)) os << "# " << line << "\n";
    return os.str();
  }

 private:
  bool want_trace_ = false;
  bool want_metrics_ = false;
  bool active_ = false;
  std::string trace_path_;
};

/// base/problem_io with this file's ostream error convention.
std::optional<Problem> load_problem(const std::string& path,
                                    std::ostream& err) {
  std::string error;
  auto p = load_problem_file(path, &error);
  if (!p) err << error << "\n";
  return p;
}

std::optional<Encoding> run_algorithm(const std::string& algo,
                                      const ConstraintSet& set, int bits,
                                      uint64_t seed, bool self_check,
                                      std::ostream& err,
                                      PicolaStats* stats_out = nullptr) {
  if (algo == "picola" || algo == "picola-best") {
    PicolaOptions o;
    o.num_bits = bits;
    o.self_check = self_check;
    try {
      PicolaResult r = algo == "picola" ? picola_encode(set, o)
                                        : picola_encode_best(set, 8, o);
      if (stats_out) *stats_out = r.stats;
      return r.encoding;
    } catch (const std::exception& e) {
      err << e.what() << "\n";
      return std::nullopt;
    }
  }
  if (algo == "nova") {
    NovaLikeOptions o;
    o.num_bits = bits;
    return nova_like_encode(set, o).encoding;
  }
  if (algo == "enc") {
    EncLikeOptions o;
    o.num_bits = bits;
    return enc_like_encode(set, o).encoding;
  }
  if (algo == "anneal") {
    AnnealingOptions o;
    o.num_bits = bits;
    o.seed = seed;
    return annealing_encode(set, o).encoding;
  }
  if (algo == "sequential") return sequential_encoding(set.num_symbols, bits);
  if (algo == "gray") return gray_encoding(set.num_symbols, bits);
  if (algo == "random") return random_encoding(set.num_symbols, seed, bits);
  if (algo == "exact") {
    ExactOptions o;
    o.num_bits = bits;
    try {
      return exact_encode(set, o).encoding;
    } catch (const std::invalid_argument& e) {
      err << e.what() << "\n";
      return std::nullopt;
    }
  }
  err << "unknown algorithm " << algo << " (picola picola-best nova enc "
      << "anneal sequential gray random exact)\n";
  return std::nullopt;
}

std::string codes_text(const Encoding& enc,
                       const std::vector<std::string>& names) {
  std::ostringstream os;
  for (int s = 0; s < enc.num_symbols; ++s) {
    if (!names.empty())
      os << names[static_cast<size_t>(s)];
    else
      os << s;
    os << ' ';
    for (int b = enc.num_bits - 1; b >= 0; --b) os << enc.bit(s, b);
    os << '\n';
  }
  return os.str();
}

int cmd_encode(const ParsedArgs& a, std::ostream& out, std::ostream& err) {
  if (a.positional.size() != 1) {
    err << "encode needs one input file\n";
    return 2;
  }
  auto problem = load_problem(a.positional[0], err);
  if (!problem) return 1;
  std::string algo = a.options.count("--algorithm")
                         ? a.options.at("--algorithm")
                         : "picola";
  int bits = 0;
  if (a.options.count("--bits")) {
    auto v = parse_int(a.options.at("--bits"));
    if (!v || *v < 0) { err << "bad --bits value\n"; return 2; }
    bits = *v;
  }
  uint64_t seed = 1;
  if (a.options.count("--seed")) {
    auto v = parse_int(a.options.at("--seed"));
    if (!v || *v < 0) { err << "bad --seed value\n"; return 2; }
    seed = static_cast<uint64_t>(*v);
  }
  const bool stats_json = a.options.count("--stats-json") != 0;

  // --backend routes through the portfolio front-end (src/portfolio)
  // instead of a single run_algorithm call; the '#' summary names both
  // the requested backend and the slot that won.
  if (a.options.count("--backend")) {
    if (a.options.count("--algorithm")) {
      err << "--backend and --algorithm are mutually exclusive\n";
      return 2;
    }
    if (stats_json) {
      err << "--stats-json is not supported with --backend\n";
      return 2;
    }
    portfolio::PortfolioOptions popt;
    if (!parse_portfolio_args(a, &popt, err)) return 2;
    int restarts = 4;
    if (a.options.count("--restarts")) {
      auto v = parse_int(a.options.at("--restarts"));
      if (!v || *v < 1) { err << "bad --restarts value\n"; return 2; }
      restarts = *v;
    }
    PicolaOptions po;
    po.num_bits = bits;
    po.self_check = a.options.count("--self-check") != 0;
    ObsSession obs_session(a);
    Stopwatch sw;
    portfolio::PortfolioResult pr;
    try {
      pr = portfolio::portfolio_encode(problem->set, restarts, po, popt);
    } catch (const std::exception& e) {
      err << e.what() << "\n";
      return 1;
    }
    double ms = sw.elapsed_ms();
    std::string codes = codes_text(pr.picola.encoding, problem->names);
    if (a.options.count("--output")) {
      if (!write_file(a.options.at("--output"), codes, err)) return 1;
    }
    if (!a.options.count("--quiet")) out << codes;
    EncodingQuality q = encoding_quality(problem->set, pr.picola.encoding);
    out << "# backend " << portfolio::backend_kind_name(popt.backend)
        << " winner " << portfolio::backend_kind_name(pr.backend) << ", "
        << pr.picola.encoding.num_bits << " bits, " << ms << " ms\n";
    out << "# satisfied " << q.satisfied_constraints << "/"
        << problem->set.size() << " constraints, " << q.satisfied_dichotomies
        << "/" << q.total_dichotomies << " dichotomies, " << pr.total_cubes
        << " implementation cubes\n";
    if (obs_session.metrics_wanted()) out << ObsSession::report_lines();
    if (!obs_session.write_trace(err)) return 1;
    return 0;
  }
  if (stats_json && algo != "picola" && algo != "picola-best") {
    err << "--stats-json needs --algorithm picola or picola-best\n";
    return 2;
  }

  ObsSession obs_session(a);
  Stopwatch sw;
  PicolaStats stats;
  auto enc = run_algorithm(algo, problem->set, bits, seed,
                           a.options.count("--self-check") != 0, err,
                           stats_json ? &stats : nullptr);
  if (!enc) return 1;
  double ms = sw.elapsed_ms();

  std::string codes = codes_text(*enc, problem->names);
  if (a.options.count("--output")) {
    if (!write_file(a.options.at("--output"), codes, err)) return 1;
  }
  if (!a.options.count("--quiet")) out << codes;

  EncodingQuality q = encoding_quality(problem->set, *enc);
  ConstraintEvalResult ev = evaluate_constraints(problem->set, *enc);
  out << "# algorithm " << algo << ", " << enc->num_bits << " bits, "
      << ms << " ms\n";
  out << "# satisfied " << q.satisfied_constraints << "/" << problem->set.size()
      << " constraints, " << q.satisfied_dichotomies << "/"
      << q.total_dichotomies << " dichotomies, " << ev.total_cubes
      << " implementation cubes\n";
  if (stats_json) out << picola_stats_json(stats) << "\n";
  if (obs_session.metrics_wanted()) out << ObsSession::report_lines();
  if (!obs_session.write_trace(err)) return 1;
  return 0;
}

int cmd_assign(const ParsedArgs& a, std::ostream& out, std::ostream& err) {
  if (a.positional.size() != 1) {
    err << "assign needs one KISS2 file\n";
    return 2;
  }
  auto text = read_file(a.positional[0], err);
  if (!text) return 1;
  KissParseResult r = parse_kiss(*text);
  if (!r.ok()) {
    err << a.positional[0] << ": " << r.error << "\n";
    return 1;
  }
  StateAssignOptions opt;
  std::string algo = a.options.count("--algorithm")
                         ? a.options.at("--algorithm")
                         : "picola";
  if (algo == "picola") opt.assigner = Assigner::kPicola;
  else if (algo == "nova") opt.assigner = Assigner::kNovaILike;
  else if (algo == "nova-io") opt.assigner = Assigner::kNovaIoLike;
  else if (algo == "enc") opt.assigner = Assigner::kEncLike;
  else if (algo == "sequential") opt.assigner = Assigner::kSequential;
  else if (algo == "random") opt.assigner = Assigner::kRandom;
  else {
    err << "unknown assigner " << algo << "\n";
    return 2;
  }
  if (a.options.count("--raw-table")) opt.use_symbolic_cover = false;
  if (a.options.count("--minimize-states")) opt.minimize_states_first = true;

  StateAssignResult res = assign_states(r.fsm, opt);
  std::string verify = verify_against_fsm(res.machine, res.encoding,
                                          res.minimized, res.encoded_dc, 500,
                                          7);
  if (res.states_merged > 0)
    out << "# state minimisation merged " << res.states_merged
        << " states\n";
  out << "# " << assigner_name(opt.assigner) << ": " << res.product_terms
      << " product terms, area " << res.area << ", self-check "
      << (verify.empty() ? "PASS" : verify) << "\n";
  out << "# codes:\n";
  for (int s = 0; s < res.machine.num_states(); ++s) {
    out << "#   " << res.machine.state_names[static_cast<size_t>(s)] << " = ";
    for (int b = res.encoding.num_bits - 1; b >= 0; --b)
      out << res.encoding.bit(s, b);
    out << "\n";
  }
  std::string pla = write_pla(res.pla);
  if (a.options.count("--output")) {
    if (!write_file(a.options.at("--output"), pla, err)) return 1;
  } else {
    out << pla;
  }
  if (a.options.count("--blif")) {
    std::string blif = write_blif(res.machine, res.encoding, res.minimized);
    if (!write_file(a.options.at("--blif"), blif, err)) return 1;
  }
  return verify.empty() ? 0 : 1;
}

int cmd_minimize(const ParsedArgs& a, std::ostream& out, std::ostream& err) {
  if (a.positional.size() != 1) {
    err << "minimize needs one PLA file\n";
    return 2;
  }
  auto text = read_file(a.positional[0], err);
  if (!text) return 1;
  PlaParseResult r = parse_pla(*text);
  if (!r.ok()) {
    err << a.positional[0] << ": " << r.error << "\n";
    return 1;
  }
  Cover onset = r.pla.onset();
  Cover dc = r.pla.dcset();
  Stopwatch sw;
  Cover m;
  if (a.options.count("--exact")) {
    auto exact = esp::exact_minimize(onset, dc);
    if (!exact) {
      err << "problem too large for exact minimisation\n";
      return 1;
    }
    m = *exact;
  } else {
    esp::EspressoOptions o;
    if (a.options.count("--single-pass")) o.single_pass = true;
    m = esp::minimize_cover(onset, dc, o);
  }
  double ms = sw.elapsed_ms();
  Pla outpla = Pla::from_cover(m);
  outpla.input_labels = r.pla.input_labels;
  outpla.output_labels = r.pla.output_labels;
  out << "# " << r.pla.rows.size() << " -> " << outpla.rows.size()
      << " terms in " << ms << " ms\n";
  std::string text_out = write_pla(outpla);
  if (a.options.count("--output")) {
    if (!write_file(a.options.at("--output"), text_out, err)) return 1;
  } else {
    out << text_out;
  }
  return 0;
}

int cmd_encode_input(const ParsedArgs& a, std::ostream& out,
                     std::ostream& err) {
  if (a.positional.size() != 1) {
    err << "encode-input needs one .mv PLA file\n";
    return 2;
  }
  auto text = read_file(a.positional[0], err);
  if (!text) return 1;
  MvPlaParseResult r = parse_mv_pla(*text);
  if (!r.ok()) {
    err << a.positional[0] << ": " << r.error << "\n";
    return 1;
  }
  int var = r.pla.num_binary;
  if (a.options.count("--var")) {
    auto v = parse_int(a.options.at("--var"));
    if (!v) { err << "bad --var value\n"; return 2; }
    var = *v;
  }
  if (var < r.pla.num_binary || var >= r.pla.num_vars()) {
    err << "--var must name a multi-valued variable ("
        << r.pla.num_binary << ".." << r.pla.num_vars() - 1 << ")\n";
    return 2;
  }
  InputEncodingOptions opt;
  std::string algo = a.options.count("--algorithm")
                         ? a.options.at("--algorithm")
                         : "picola";
  if (algo == "picola") opt.encoder = InputEncoder::kPicola;
  else if (algo == "nova") opt.encoder = InputEncoder::kNovaLike;
  else if (algo == "enc") opt.encoder = InputEncoder::kEncLike;
  else if (algo == "anneal") opt.encoder = InputEncoder::kAnnealing;
  else if (algo == "sequential") opt.encoder = InputEncoder::kSequential;
  else if (algo == "random") opt.encoder = InputEncoder::kRandom;
  else {
    err << "unknown encoder " << algo << "\n";
    return 2;
  }
  if (a.options.count("--bits")) {
    auto v = parse_int(a.options.at("--bits"));
    if (!v || *v < 0) { err << "bad --bits value\n"; return 2; }
    opt.num_bits = *v;
  }
  if (a.options.count("--seed")) {
    auto v = parse_int(a.options.at("--seed"));
    if (!v || *v < 0) { err << "bad --seed value\n"; return 2; }
    opt.seed = static_cast<uint64_t>(*v);
  }

  InputEncodingResult res =
      encode_symbolic_input(r.pla.onset(), r.pla.dcset(), var, opt);
  out << "# variable " << var << " (" << res.encoding.num_symbols
      << " values) encoded with " << res.encoding.num_bits << " bits\n";
  out << "# " << res.constraints.size() << " face constraints, "
      << res.minimized_symbolic.size() << " symbolic cubes -> "
      << res.minimized.size() << " encoded cubes\n";
  for (int v = 0; v < res.encoding.num_symbols; ++v) {
    out << "# value " << v << " = ";
    for (int b = res.encoding.num_bits - 1; b >= 0; --b)
      out << res.encoding.bit(v, b);
    out << "\n";
  }
  MvPla outpla;
  if (mv_pla_from_covers(res.minimized, res.encoded_dc, &outpla)) {
    std::string text_out = write_mv_pla(outpla);
    if (a.options.count("--output")) {
      if (!write_file(a.options.at("--output"), text_out, err)) return 1;
    } else {
      out << text_out;
    }
  } else {
    out << res.minimized.to_string();
  }
  return 0;
}

std::string trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::string json_escape(const std::string& s) {
  std::string r;
  for (char c : s) {
    if (c == '"' || c == '\\') r += '\\';
    r += c;
  }
  return r;
}

std::string hex64(uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Parses the backend-selection knobs shared by encode, batch, serve and
/// client: --backend picola|sat|anneal|portfolio, --card
/// pairwise|sequential|commander, --distinct difference|indicator|lazy,
/// --sweep descending|binary|scratch, --sat-conflicts N.
bool parse_portfolio_args(const ParsedArgs& a, portfolio::PortfolioOptions* p,
                          std::ostream& err) {
  if (a.options.count("--backend")) {
    auto k = portfolio::parse_backend_kind(a.options.at("--backend"));
    if (!k) {
      err << "bad --backend value (picola sat anneal portfolio)\n";
      return false;
    }
    p->backend = *k;
  }
  if (a.options.count("--card")) {
    auto c = sat::parse_card_encoding(a.options.at("--card"));
    if (!c) {
      err << "bad --card value (pairwise sequential commander)\n";
      return false;
    }
    p->sat_card = *c;
  }
  if (a.options.count("--distinct")) {
    auto d = sat::parse_distinct_encoding(a.options.at("--distinct"));
    if (!d) {
      err << "bad --distinct value (difference indicator lazy)\n";
      return false;
    }
    p->sat_distinct = *d;
  }
  if (a.options.count("--sweep")) {
    auto s = sat::parse_sweep_mode(a.options.at("--sweep"));
    if (!s) {
      err << "bad --sweep value (descending binary scratch)\n";
      return false;
    }
    p->sat_sweep = *s;
  }
  if (a.options.count("--sat-conflicts")) {
    auto v = parse_int(a.options.at("--sat-conflicts"));
    if (!v || *v < 0) { err << "bad --sat-conflicts value\n"; return false; }
    p->sat_max_conflicts = *v;
  }
  if (a.options.count("--seed")) {
    auto v = parse_int(a.options.at("--seed"));
    if (!v || *v < 0) { err << "bad --seed value\n"; return false; }
    p->anneal_seed = static_cast<uint64_t>(*v);
  }
  return true;
}

/// Shared option block of the service front-ends.
struct ServiceArgs {
  ServiceOptions service;
  int restarts = 4;
  int bits = 0;
  bool self_check = false;
  portfolio::PortfolioOptions portfolio;
};

std::optional<ServiceArgs> parse_service_args(const ParsedArgs& a,
                                              std::ostream& err) {
  ServiceArgs s;
  if (a.options.count("--jobs")) {
    auto v = parse_int(a.options.at("--jobs"));
    if (!v || *v < 1) { err << "bad --jobs value\n"; return std::nullopt; }
    s.service.num_threads = *v;
  }
  if (a.options.count("--restarts")) {
    auto v = parse_int(a.options.at("--restarts"));
    if (!v || *v < 1) { err << "bad --restarts value\n"; return std::nullopt; }
    s.restarts = *v;
  }
  if (a.options.count("--cache")) {
    auto v = parse_int(a.options.at("--cache"));
    if (!v || *v < 0) { err << "bad --cache value\n"; return std::nullopt; }
    s.service.cache_capacity = static_cast<size_t>(*v);
  }
  if (a.options.count("--bits")) {
    auto v = parse_int(a.options.at("--bits"));
    if (!v || *v < 0) { err << "bad --bits value\n"; return std::nullopt; }
    s.bits = *v;
  }
  s.self_check = a.options.count("--self-check") != 0;
  if (a.options.count("--cache-dir"))
    s.service.cache_dir = a.options.at("--cache-dir");
  if (a.options.count("--snapshot-interval")) {
    auto v = parse_int(a.options.at("--snapshot-interval"));
    if (!v) { err << "bad --snapshot-interval value\n"; return std::nullopt; }
    s.service.snapshot_interval_s = *v;
    if (s.service.cache_dir.empty()) {
      err << "--snapshot-interval needs --cache-dir\n";
      return std::nullopt;
    }
  }
  if (!parse_portfolio_args(a, &s.portfolio, err)) return std::nullopt;
  return s;
}

/// Construct the service, surfacing a recovery refusal (--cache-dir
/// pointing at a corrupt store throws from the constructor) as an error
/// message + nullptr instead of an escaped exception.
std::unique_ptr<EncodingService> make_service(const ServiceOptions& o,
                                              std::ostream& err) {
  try {
    return std::make_unique<EncodingService>(o);
  } catch (const std::exception& e) {
    err << e.what() << "\n";
    return nullptr;
  }
}

/// The deterministic per-file summary (identical for every --jobs value):
/// encoding content hash, code length, implementation cubes, satisfied
/// constraints.  Wall times and cache behaviour go to the '#' lines.
std::string file_summary(const ConstraintSet& set, const JobResult& r) {
  EncodingQuality q = encoding_quality(set, r.picola.encoding);
  std::ostringstream os;
  os << "n=" << set.num_symbols << " bits=" << r.picola.encoding.num_bits
     << " cubes=" << r.total_cubes << " satisfied="
     << q.satisfied_constraints << "/" << set.size() << " enc="
     << hex64(encoding_fingerprint(r.picola.encoding)) << " backend="
     << portfolio::backend_kind_name(r.backend);
  return os.str();
}

int cmd_batch(const ParsedArgs& a, std::ostream& out, std::ostream& err) {
  if (a.positional.size() != 1) {
    err << "batch needs one list file\n";
    return 2;
  }
  auto text = read_file(a.positional[0], err);
  if (!text) return 1;
  auto sa = parse_service_args(a, err);
  if (!sa) return 2;
  const bool json = a.options.count("--json") != 0;

  struct Item {
    std::string path;
    std::optional<Problem> problem;
    std::string error;
    std::shared_future<JobResult> future;
  };
  std::vector<Item> items;
  std::istringstream is(*text);
  std::string line;
  while (std::getline(is, line)) {
    line = trim(line);
    if (line.empty() || line[0] == '#') continue;
    Item item;
    item.path = line;
    std::ostringstream lerr;
    auto p = load_problem(line, lerr);
    if (p)
      item.problem = std::move(*p);
    else
      item.error = trim(lerr.str());
    items.push_back(std::move(item));
  }
  if (items.empty()) {
    err << a.positional[0] << ": no input files listed\n";
    return 1;
  }

  ObsSession obs_session(a);
  std::unique_ptr<EncodingService> service_ptr = make_service(sa->service, err);
  if (!service_ptr) return 1;
  EncodingService& service = *service_ptr;
  Stopwatch sw;
  for (Item& item : items) {
    if (!item.problem) continue;
    Job job;
    job.set = item.problem->set;
    job.options.num_bits = sa->bits;
    job.options.self_check = sa->self_check;
    job.restarts = sa->restarts;
    job.portfolio = sa->portfolio;
    job.tag = item.path;
    item.future = service.submit(std::move(job));
  }

  bool any_error = false;
  long total_cubes = 0;
  int solved = 0;
  std::ostringstream files_json;
  for (Item& item : items) {
    if (!item.problem) {
      any_error = true;
      if (json)
        files_json << "{\"path\":\"" << json_escape(item.path)
                   << "\",\"error\":\"" << json_escape(item.error) << "\"},";
      else
        out << item.path << " error: " << item.error << "\n";
      continue;
    }
    JobResult r;
    try {
      r = item.future.get();
    } catch (const std::exception& e) {
      any_error = true;
      if (!json) out << item.path << " error: " << e.what() << "\n";
      continue;
    }
    total_cubes += r.total_cubes;
    ++solved;
    const ConstraintSet& set = item.problem->set;
    if (json) {
      EncodingQuality q = encoding_quality(set, r.picola.encoding);
      files_json << "{\"path\":\"" << json_escape(item.path) << "\",\"n\":"
                 << set.num_symbols << ",\"bits\":"
                 << r.picola.encoding.num_bits << ",\"cubes\":"
                 << r.total_cubes << ",\"satisfied\":"
                 << q.satisfied_constraints << ",\"constraints\":"
                 << set.size() << ",\"enc\":\""
                 << hex64(encoding_fingerprint(r.picola.encoding))
                 << "\",\"backend\":\""
                 << portfolio::backend_kind_name(r.backend) << "\"},";
    } else {
      out << item.path << " " << file_summary(set, r) << "\n";
    }
  }
  service.wait_all();
  double ms = sw.elapsed_ms();
  ServiceStats stats = service.stats();

  if (json) {
    std::string files = files_json.str();
    if (!files.empty()) files.pop_back();  // trailing comma
    out << "{\"files\":[" << files << "],\"solved\":" << solved
        << ",\"total_cubes\":" << total_cubes << ",\"threads\":"
        << service.num_threads() << ",\"elapsed_ms\":" << ms
        << ",\"stats\":" << service_stats_json(stats);
    if (obs_session.metrics_wanted())
      out << ",\"metrics\":" << obs::MetricsRegistry::global().report_json()
          << ",\"service_metrics\":" << service.metrics().report_json();
    out << "}\n";
  } else {
    out << "# " << solved << "/" << items.size() << " files, "
        << total_cubes << " total cubes, " << sa->restarts
        << " restarts/job, " << service.num_threads() << " threads, "
        << ms << " ms\n";
    out << "# service: " << format_service_stats(stats) << "\n";
    if (obs_session.metrics_wanted()) {
      out << "# metrics (per-phase, process-wide):\n"
          << ObsSession::report_lines();
      std::istringstream is(service.metrics().report_text());
      std::string line;
      out << "# metrics (this service):\n";
      while (std::getline(is, line)) out << "# " << line << "\n";
    }
  }
  if (!obs_session.write_trace(err)) return 1;
  return any_error ? 1 : 0;
}

/// The server whose drain SIGTERM/SIGINT should trigger (TCP serve only).
std::atomic<net::Server*> g_signal_server{nullptr};

extern "C" void picola_serve_signal_handler(int) {
  net::Server* s = g_signal_server.load(std::memory_order_relaxed);
  if (s) s->request_shutdown();  // async-signal-safe by contract
}

std::optional<int> parse_int_option(const ParsedArgs& a, const char* key,
                                    long min, long max, std::ostream& err) {
  auto v = parse_int(a.options.at(key));
  if (!v || *v < min || *v > max) {
    err << "bad " << key << " value\n";
    return std::nullopt;
  }
  return static_cast<int>(*v);
}

int cmd_serve_tcp(const ParsedArgs& a, const ServiceArgs& sa,
                  std::ostream& out, std::ostream& err) {
  net::ServerOptions o;
  o.service = sa.service;
  o.default_restarts = sa.restarts;
  o.default_bits = sa.bits;
  o.default_portfolio = sa.portfolio;
  o.self_check = sa.self_check;
  {
    auto v = parse_int_option(a, "--tcp", 0, 65535, err);
    if (!v) return 2;
    o.port = static_cast<uint16_t>(*v);
  }
  if (a.options.count("--bind")) o.bind_address = a.options.at("--bind");
  if (a.options.count("--max-inflight")) {
    auto v = parse_int_option(a, "--max-inflight", 1, 1 << 20, err);
    if (!v) return 2;
    o.max_inflight = *v;
  }
  if (a.options.count("--idle-timeout-ms")) {
    auto v = parse_int_option(a, "--idle-timeout-ms", 0, 86'400'000, err);
    if (!v) return 2;
    o.idle_timeout_ms = *v;
  }
  if (a.options.count("--max-frame-bytes")) {
    auto v = parse_int_option(a, "--max-frame-bytes", 64,
                              static_cast<long>(net::kFrameAbsoluteMax), err);
    if (!v) return 2;
    o.max_frame_bytes = static_cast<size_t>(*v);
  }
  if (a.options.count("--retry-after-ms")) {
    auto v = parse_int_option(a, "--retry-after-ms", 0, 60'000, err);
    if (!v) return 2;
    o.retry_after_ms = *v;
  }
  if (a.options.count("--admin-port")) {
    auto v = parse_int_option(a, "--admin-port", 0, 65535, err);
    if (!v) return 2;
    o.admin_port = *v;
  }
  if (a.options.count("--slow-ms")) {
    auto v = parse_int_option(a, "--slow-ms", 0, 86'400'000, err);
    if (!v) return 2;
    o.slow_request_ms = *v;
  }
  o.use_poll = a.options.count("--poll") != 0;
  o.allow_paths = a.options.count("--no-paths") == 0;
  if (a.options.count("--peers")) {
    std::string perr;
    o.peers = net::parse_member_list(a.options.at("--peers"), &perr);
    if (o.peers.empty()) {
      err << "bad --peers: " << perr << "\n";
      return 2;
    }
    if (!a.options.count("--self")) {
      err << "--peers needs --self host:port (this node's member name)\n";
      return 2;
    }
    o.self = a.options.at("--self");
    bool member = false;
    for (const net::ClusterMember& m : o.peers) member |= m.name() == o.self;
    if (!member) {
      err << "--self " << o.self << " is not in --peers\n";
      return 2;
    }
    o.peer_forward = a.options.count("--no-peer-forward") == 0;
    if (a.options.count("--peer-timeout-ms")) {
      auto v = parse_int_option(a, "--peer-timeout-ms", 1, 60'000, err);
      if (!v) return 2;
      o.peer_timeout_ms = *v;
    }
  }

  ObsSession obs_session(a);
  std::unique_ptr<net::Server> server;
  try {
    server = std::make_unique<net::Server>(o);
  } catch (const std::exception& e) {
    err << e.what() << "\n";
    return 1;
  }

  // Graceful drain on SIGTERM/SIGINT; previous dispositions restored so
  // in-process callers (tests) leave no trace.  SIGPIPE ignored for the
  // server's lifetime: socket writes use MSG_NOSIGNAL already, but a peer
  // vanishing between a stdio flush and a pipe must not kill the process.
  g_signal_server.store(server.get(), std::memory_order_relaxed);
  struct sigaction sa_new {}, sa_old_term {}, sa_old_int {}, sa_old_pipe {};
  sa_new.sa_handler = picola_serve_signal_handler;
  sigemptyset(&sa_new.sa_mask);
  sigaction(SIGTERM, &sa_new, &sa_old_term);
  sigaction(SIGINT, &sa_new, &sa_old_int);
  struct sigaction sa_ign {};
  sa_ign.sa_handler = SIG_IGN;
  sigemptyset(&sa_ign.sa_mask);
  sigaction(SIGPIPE, &sa_ign, &sa_old_pipe);

  out << "listening " << o.bind_address << ":" << server->port() << "\n";
  if (o.admin_port >= 0)
    out << "admin " << o.bind_address << ":" << server->admin_port() << "\n";
  out.flush();
  server->run();

  sigaction(SIGTERM, &sa_old_term, nullptr);
  sigaction(SIGINT, &sa_old_int, nullptr);
  sigaction(SIGPIPE, &sa_old_pipe, nullptr);
  g_signal_server.store(nullptr, std::memory_order_relaxed);

  net::NetStats s = server->stats();
  out << "# net: accepted=" << s.connections_accepted << " frames_in="
      << s.frames_in << " frames_out=" << s.frames_out << " ok="
      << s.responses_ok << " errors=" << s.responses_error << " sheds="
      << s.sheds << " deadline_misses=" << s.deadline_misses
      << " idle_closed=" << s.idle_closed << "\n";
  out << "# service: " << format_service_stats(server->service().stats())
      << "\n";
  if (obs_session.metrics_wanted()) {
    std::istringstream is(server->metrics().report_text());
    std::string line;
    out << "# metrics (net):\n";
    while (std::getline(is, line)) out << "# " << line << "\n";
    std::istringstream is2(server->service().metrics().report_text());
    out << "# metrics (service):\n";
    while (std::getline(is2, line)) out << "# " << line << "\n";
  }
  if (!obs_session.write_trace(err)) return 1;
  return 0;
}

/// `picola client --cluster a:p1,b:p2[,...]` — same stdin protocol as the
/// single-backend client, but routed through the consistent-hash cluster
/// router (net/cluster.h, docs/CLUSTER.md): each problem is read and
/// parsed locally, placed on the ring by its route_key, and sent inline
/// with failover / hedging / breaker handling.  The trailing `# cluster:`
/// line reports reroutes, hedges and suppressed duplicates.
int cmd_client_cluster(const ParsedArgs& a, std::istream& in,
                       std::ostream& out, std::ostream& err) {
  if (!a.positional.empty()) {
    err << "client --cluster takes no positional argument (members come "
           "from the --cluster list)\n";
    return 2;
  }
  net::ClusterOptions copt;
  std::string perr;
  copt.members = net::parse_member_list(a.options.at("--cluster"), &perr);
  if (copt.members.empty()) {
    err << "bad --cluster: " << perr << "\n";
    return 2;
  }
  if (a.options.count("--timeout-ms")) {
    auto v = parse_int_option(a, "--timeout-ms", 1, 86'400'000, err);
    if (!v) return 2;
    copt.client.io_timeout_ms = *v;
    copt.client.connect_timeout_ms = *v;
  }
  if (a.options.count("--hedge-ms")) {
    auto v = parse_int_option(a, "--hedge-ms", 0, 86'400'000, err);
    if (!v) return 2;
    copt.hedge_ms = *v;
  }
  if (a.options.count("--seed")) {
    auto v = parse_int_option(a, "--seed", 0, 1'000'000'000, err);
    if (!v) return 2;
    copt.seed = static_cast<uint64_t>(*v);
  }
  int deadline_ms = 0;
  if (a.options.count("--deadline-ms")) {
    auto v = parse_int_option(a, "--deadline-ms", 1, 86'400'000, err);
    if (!v) return 2;
    deadline_ms = *v;
  }
  std::string default_backend;
  if (a.options.count("--backend")) {
    if (!portfolio::parse_backend_kind(a.options.at("--backend"))) {
      err << "bad --backend value (picola sat anneal portfolio)\n";
      return 2;
    }
    default_backend = a.options.at("--backend");
  }

  net::ClusterClient cluster(copt);
  int failures = 0;
  std::string line;
  while (std::getline(in, line)) {
    line = trim(line);
    if (line.empty() || line[0] == '#') continue;
    if (line == "quit" || line == "exit") break;

    net::JsonValue req = net::JsonValue::make_object();
    uint64_t key = 0;
    bool is_cmd = false;
    std::string path;
    if (line == "stats" || line == "metrics" || line == "ping") {
      req.set("cmd", net::JsonValue::make_string(line));
      is_cmd = true;
    } else if (line == "shutdown") {
      err << "shutdown is per-node; aim `picola client host:port` at the "
             "node you want drained\n";
      ++failures;
      continue;
    } else {
      std::istringstream ls(line);
      std::string tok;
      ls >> path;
      int restarts = 0;
      std::string backend = default_backend;
      bool bad = false;
      while (ls >> tok) {
        if (tok == "--restarts" && (ls >> tok)) {
          auto v = parse_int(tok);
          if (v && *v >= 1) { restarts = static_cast<int>(*v); continue; }
        } else if (tok == "--backend" && (ls >> tok)) {
          if (portfolio::parse_backend_kind(tok)) { backend = tok; continue; }
        }
        bad = true;
        break;
      }
      if (bad) {
        out << "error " << path << ": bad request options\n";
        ++failures;
        continue;
      }
      // The router must see the constraints to place the job, so cluster
      // requests always travel inline — the same parse also catches bad
      // problems before they burn a network round trip.
      auto text = read_file(path, err);
      if (!text) { ++failures; continue; }
      std::string parse_error;
      auto problem = parse_problem_text(*text, &parse_error);
      if (!problem) {
        out << "error " << path << ": " << parse_error << "\n";
        ++failures;
        continue;
      }
      key = route_key(problem->set);
      req.set("con", net::JsonValue::make_string(*text));
      req.set("id", net::JsonValue::make_string(path));
      if (restarts > 0)
        req.set("restarts", net::JsonValue::make_int(restarts));
      if (!backend.empty())
        req.set("backend", net::JsonValue::make_string(backend));
      if (deadline_ms > 0)
        req.set("deadline_ms", net::JsonValue::make_int(deadline_ms));
    }

    std::string error;
    auto resp = cluster.call(req, key, &error);
    if (!resp) {
      err << error << "\n";
      return 1;
    }
    if (is_cmd) {
      out << resp->dump() << "\n";
      out.flush();
      continue;
    }
    if (const net::JsonValue* e = resp->find("error")) {
      const net::JsonValue* detail = resp->find("detail");
      out << "error " << path << ": "
          << (detail && detail->is_string() ? detail->as_string()
                                            : e->as_string())
          << "\n";
      ++failures;
    } else {
      auto num = [&resp](const char* k) -> int64_t {
        const net::JsonValue* v = resp->find(k);
        return v && v->is_number() ? v->as_int() : 0;
      };
      const net::JsonValue* enc = resp->find("enc");
      const net::JsonValue* be = resp->find("backend");
      out << "ok " << path << " n=" << num("n") << " bits=" << num("bits")
          << " cubes=" << num("cubes") << " satisfied=" << num("satisfied")
          << "/" << num("constraints") << " enc="
          << (enc && enc->is_string() ? enc->as_string() : "?")
          << " backend="
          << (be && be->is_string() ? be->as_string() : "picola")
          << " cached=" << num("cached") << "\n";
    }
    out.flush();
  }
  net::ClusterClient::Stats cs = cluster.stats();
  out << "# cluster: requests=" << cs.requests << " attempts=" << cs.attempts
      << " reroutes=" << cs.reroutes << " hedges=" << cs.hedges
      << " hedge_wins=" << cs.hedge_wins << " dup_suppressed="
      << cs.duplicates_suppressed << " breaker_skips=" << cs.breaker_skips
      << " drains_observed=" << cs.drains_observed << " rejoins="
      << cs.rejoins << "\n";
  return failures == 0 ? 0 : 1;
}

/// `picola client host:port` — interactive/scripted front-end to the TCP
/// server.  Stdin lines mirror the stdin `serve` protocol: a path (plus
/// optional `--restarts R`), or `stats` / `metrics` / `ping` /
/// `shutdown` / `quit`.  Output for encode requests is byte-compatible
/// with stdin serve's `ok <path> ...` lines.
int cmd_client(const ParsedArgs& a, std::istream& in, std::ostream& out,
               std::ostream& err) {
  if (a.options.count("--cluster")) return cmd_client_cluster(a, in, out, err);
  if (a.positional.size() != 1) {
    err << "client needs one host:port argument\n";
    return 2;
  }
  const std::string& hp = a.positional[0];
  size_t colon = hp.rfind(':');
  if (colon == std::string::npos) {
    err << "client needs host:port, got " << hp << "\n";
    return 2;
  }
  auto port = parse_int(hp.substr(colon + 1));
  if (!port || *port < 1 || *port > 65535) {
    err << "bad port in " << hp << "\n";
    return 2;
  }
  int deadline_ms = 0;
  if (a.options.count("--deadline-ms")) {
    auto v = parse_int_option(a, "--deadline-ms", 1, 86'400'000, err);
    if (!v) return 2;
    deadline_ms = *v;
  }
  const bool send_inline = a.options.count("--inline") != 0;
  std::string default_backend;
  if (a.options.count("--backend")) {
    if (!portfolio::parse_backend_kind(a.options.at("--backend"))) {
      err << "bad --backend value (picola sat anneal portfolio)\n";
      return 2;
    }
    default_backend = a.options.at("--backend");
  }

  net::ClientOptions copt;
  if (a.options.count("--retries")) {
    auto v = parse_int_option(a, "--retries", 0, 1000, err);
    if (!v) return 2;
    copt.max_retries = *v;
  }
  if (a.options.count("--timeout-ms")) {
    auto v = parse_int_option(a, "--timeout-ms", 1, 86'400'000, err);
    if (!v) return 2;
    copt.io_timeout_ms = *v;
    copt.connect_timeout_ms = *v;
  }

  // --trace <file>: collect client-side spans and attach generated
  // trace_id / parent_span fields so the server's spans correlate with
  // ours in one exported timeline.
  ObsSession obs_session(a);
  copt.trace_requests = a.options.count("--trace") != 0;

  net::Client client(copt);
  std::string error;
  if (!client.connect(hp.substr(0, colon), static_cast<uint16_t>(*port),
                      &error)) {
    err << error << "\n";
    return 1;
  }

  int failures = 0;
  std::string line;
  while (std::getline(in, line)) {
    line = trim(line);
    if (line.empty() || line[0] == '#') continue;
    if (line == "quit" || line == "exit") break;

    net::JsonValue req = net::JsonValue::make_object();
    bool is_cmd = false;
    std::string path;
    if (line == "stats" || line == "metrics" || line == "ping" ||
        line == "shutdown") {
      req.set("cmd", net::JsonValue::make_string(line));
      is_cmd = true;
    } else {
      std::istringstream ls(line);
      std::string tok;
      ls >> path;
      int restarts = 0;
      std::string backend = default_backend;
      bool bad = false;
      while (ls >> tok) {
        if (tok == "--restarts" && (ls >> tok)) {
          auto v = parse_int(tok);
          if (v && *v >= 1) { restarts = static_cast<int>(*v); continue; }
        } else if (tok == "--backend" && (ls >> tok)) {
          if (portfolio::parse_backend_kind(tok)) { backend = tok; continue; }
        }
        bad = true;
        break;
      }
      if (bad) {
        out << "error " << path << ": bad request options\n";
        ++failures;
        continue;
      }
      if (send_inline) {
        auto text = read_file(path, err);
        if (!text) { ++failures; continue; }
        req.set("con", net::JsonValue::make_string(*text));
      } else {
        req.set("path", net::JsonValue::make_string(path));
      }
      req.set("id", net::JsonValue::make_string(path));
      if (restarts > 0)
        req.set("restarts", net::JsonValue::make_int(restarts));
      if (!backend.empty())
        req.set("backend", net::JsonValue::make_string(backend));
      if (deadline_ms > 0)
        req.set("deadline_ms", net::JsonValue::make_int(deadline_ms));
    }

    auto resp = client.call_with_retry(req, &error);
    if (!resp) {
      err << error << "\n";
      return 1;
    }
    if (is_cmd) {
      out << resp->dump() << "\n";
      out.flush();
      if (line == "shutdown") break;
      continue;
    }
    if (const net::JsonValue* e = resp->find("error")) {
      const net::JsonValue* detail = resp->find("detail");
      out << "error " << path << ": "
          << (detail && detail->is_string() ? detail->as_string()
                                            : e->as_string())
          << "\n";
      ++failures;
    } else {
      auto num = [&resp](const char* k) -> int64_t {
        const net::JsonValue* v = resp->find(k);
        return v && v->is_number() ? v->as_int() : 0;
      };
      const net::JsonValue* enc = resp->find("enc");
      const net::JsonValue* be = resp->find("backend");
      out << "ok " << path << " n=" << num("n") << " bits=" << num("bits")
          << " cubes=" << num("cubes") << " satisfied=" << num("satisfied")
          << "/" << num("constraints") << " enc="
          << (enc && enc->is_string() ? enc->as_string() : "?")
          << " backend="
          << (be && be->is_string() ? be->as_string() : "picola")
          << " cached=" << num("cached") << "\n";
    }
    out.flush();
  }
  if (!obs_session.write_trace(err)) return 1;
  return failures == 0 ? 0 : 1;
}

int cmd_serve(const ParsedArgs& a, std::istream& in, std::ostream& out,
              std::ostream& err) {
  if (!a.positional.empty()) {
    err << "serve takes no positional arguments (requests come on stdin)\n";
    return 2;
  }
  auto sa = parse_service_args(a, err);
  if (!sa) return 2;
  if (a.options.count("--tcp")) return cmd_serve_tcp(a, *sa, out, err);
  ObsSession obs_session(a);
  std::unique_ptr<EncodingService> service_ptr = make_service(sa->service, err);
  if (!service_ptr) return 1;
  EncodingService& service = *service_ptr;

  std::string line;
  while (std::getline(in, line)) {
    line = trim(line);
    if (line.empty() || line[0] == '#') continue;
    if (line == "quit" || line == "exit") break;
    if (line == "stats") {
      out << "stats " << format_service_stats(service.stats()) << "\n";
      continue;
    }
    if (line == "metrics") {
      // One JSON line: the service's own registry plus the process-wide
      // per-phase histograms (populated when serve ran with --metrics or
      // --trace) and the build provenance.  Existing keys are a
      // compatibility surface (tests/integration/test_serve_stdin.cpp) —
      // add, never rename.
      service.refresh_gauges();
      out << "metrics {\"service\":" << service.metrics().report_json()
          << ",\"process\":" << obs::MetricsRegistry::global().report_json()
          << ",\"build\":" << obs::build_info_json() << "}\n";
      out.flush();
      continue;
    }

    // Request: <path> [--restarts R] [--backend B]
    std::istringstream ls(line);
    std::string path, tok;
    ls >> path;
    int restarts = sa->restarts;
    portfolio::PortfolioOptions pf = sa->portfolio;
    bool bad = false;
    while (ls >> tok) {
      if (tok == "--restarts" && (ls >> tok)) {
        auto v = parse_int(tok);
        if (v && *v >= 1) { restarts = *v; continue; }
      } else if (tok == "--backend" && (ls >> tok)) {
        auto k = portfolio::parse_backend_kind(tok);
        if (k) { pf.backend = *k; continue; }
      }
      bad = true;
      break;
    }
    if (bad) {
      out << "error " << path << ": bad request options\n";
      continue;
    }
    std::ostringstream lerr;
    auto problem = load_problem(path, lerr);
    if (!problem) {
      out << "error " << path << ": " << trim(lerr.str()) << "\n";
      continue;
    }
    Job job;
    job.set = problem->set;
    job.options.num_bits = sa->bits;
    job.options.self_check = sa->self_check;
    job.restarts = restarts;
    job.portfolio = pf;
    job.tag = path;
    try {
      JobResult r = service.submit(std::move(job)).get();
      out << "ok " << path << " " << file_summary(problem->set, r)
          << " cached=" << (r.cache_hit ? 1 : 0) << "\n";
    } catch (const std::exception& e) {
      out << "error " << path << ": " << e.what() << "\n";
    }
    out.flush();
  }
  if (!obs_session.write_trace(err)) return 1;
  return 0;
}

int cmd_info(const ParsedArgs& a, std::ostream& out, std::ostream& err) {
  if (a.positional.size() != 1) {
    err << "info needs one file\n";
    return 2;
  }
  auto text = read_file(a.positional[0], err);
  if (!text) return 1;
  switch (sniff_file_kind(*text)) {
    case FileKind::kKiss: {
      KissParseResult r = parse_kiss(*text);
      if (!r.ok()) {
        err << r.error << "\n";
        return 1;
      }
      const Fsm& f = r.fsm;
      out << "KISS2 FSM: " << f.num_inputs << " inputs, " << f.num_outputs
          << " outputs, " << f.num_states() << " states, "
          << f.transitions.size() << " rows\n";
      out << "deterministic: " << (f.is_deterministic() ? "yes" : "no")
          << ", complete: " << (f.is_complete() ? "yes" : "no") << "\n";
      DerivedConstraints d = derive_face_constraints(f);
      out << "face constraints: " << d.set.size() << " ("
          << d.set.num_seed_dichotomies() << " seed dichotomies)\n";
      return 0;
    }
    case FileKind::kPla: {
      PlaParseResult r = parse_pla(*text);
      if (!r.ok()) {
        err << r.error << "\n";
        return 1;
      }
      out << "PLA: " << r.pla.num_inputs << " inputs, " << r.pla.num_outputs
          << " outputs, " << r.pla.rows.size() << " terms, area "
          << r.pla.area() << "\n";
      return 0;
    }
    case FileKind::kCon: {
      ConstraintParseResult r = parse_constraints(*text);
      if (!r.ok()) {
        err << r.error << "\n";
        return 1;
      }
      out << "encoding problem: " << r.set.num_symbols << " symbols, "
          << r.set.size() << " constraints, " << r.set.num_seed_dichotomies()
          << " seed dichotomies, minimum length "
          << Encoding::min_bits(r.set.num_symbols) << " bits\n";
      return 0;
    }
    default:
      err << "cannot determine file type\n";
      return 1;
  }
}

/// `picola sat-export FILE [--bits N] [--card E] [--distinct D]
/// [--selectors] [-o OUT]` — write the SAT reduction of an encoding
/// problem as DIMACS CNF, for diffing the in-tree solver against
/// external ones.  --distinct difference (default) | indicator; lazy has
/// no static clause form, so it cannot be exported.
int cmd_sat_export(const ParsedArgs& a, std::ostream& out, std::ostream& err) {
  if (a.positional.size() != 1) {
    err << "sat-export needs one input file\n";
    return 2;
  }
  auto problem = load_problem(a.positional[0], err);
  if (!problem) return 1;
  int bits = Encoding::min_bits(problem->set.num_symbols);
  if (a.options.count("--bits")) {
    auto v = parse_int(a.options.at("--bits"));
    if (!v || *v < 1) { err << "bad --bits value\n"; return 2; }
    bits = static_cast<int>(*v);
  }
  sat::ReductionOptions ro;
  if (a.options.count("--card")) {
    auto c = sat::parse_card_encoding(a.options.at("--card"));
    if (!c) {
      err << "bad --card value (pairwise sequential commander)\n";
      return 2;
    }
    ro.card = *c;
  }
  if (a.options.count("--distinct")) {
    auto d = sat::parse_distinct_encoding(a.options.at("--distinct"));
    if (!d || *d == sat::DistinctEncoding::kLazy) {
      err << "bad --distinct value (difference indicator)\n";
      return 2;
    }
    ro.distinct = *d;
  }
  ro.with_selectors = a.options.count("--selectors") != 0;
  sat::FaceCnf fc;
  try {
    fc = sat::build_face_cnf(problem->set, bits, ro);
  } catch (const std::exception& e) {
    err << e.what() << "\n";
    return 1;
  }
  std::vector<std::string> comments;
  comments.push_back("picola sat-export " + a.positional[0]);
  {
    std::ostringstream c;
    c << "n=" << problem->set.num_symbols << " bits=" << bits << " card="
      << sat::card_encoding_name(ro.card) << " distinct="
      << sat::distinct_encoding_name(ro.distinct) << " constraints="
      << problem->set.size();
    comments.push_back(c.str());
  }
  comments.push_back("bit b of symbol s is DIMACS variable 1 + s*bits + b");
  std::string text = sat::write_dimacs(fc.cnf, comments);
  if (a.options.count("--output"))
    return write_file(a.options.at("--output"), text, err) ? 0 : 1;
  out << text;
  return 0;
}

}  // namespace

int run(const std::vector<std::string>& args, std::istream& in,
        std::ostream& out, std::ostream& err) {
  auto parsed = parse_args(args, err);
  if (!parsed) return 2;
  if (parsed->command == "encode") return cmd_encode(*parsed, out, err);
  if (parsed->command == "encode-input")
    return cmd_encode_input(*parsed, out, err);
  if (parsed->command == "batch") return cmd_batch(*parsed, out, err);
  if (parsed->command == "serve") return cmd_serve(*parsed, in, out, err);
  if (parsed->command == "client") return cmd_client(*parsed, in, out, err);
  if (parsed->command == "assign") return cmd_assign(*parsed, out, err);
  if (parsed->command == "minimize") return cmd_minimize(*parsed, out, err);
  if (parsed->command == "info") return cmd_info(*parsed, out, err);
  if (parsed->command == "sat-export") return cmd_sat_export(*parsed, out, err);
  err << "unknown command " << parsed->command
      << " (encode encode-input batch serve client assign minimize info "
         "sat-export)\n";
  return 2;
}

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  return run(args, std::cin, out, err);
}

int main_entry(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return run(args, std::cin, std::cout, std::cerr);
}

}  // namespace picola::cli
