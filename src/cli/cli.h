#pragma once
// Command-line driver, exposed as a library function so the tests can run
// it in-process.  Subcommands:
//
//   picola encode  <file.con|file.kiss2> [--algorithm A] [--bits N]
//                  [--seed S] [-o codes.txt] [--quiet]
//       Solve the encoding problem; print codes and quality metrics.
//       Algorithms: picola nova enc anneal sequential gray random exact.
//
//   picola batch   <list-file> [--jobs N] [--restarts R] [--bits N]
//                  [--cache C] [--json]
//       Run every file named in <list-file> (one .con/.kiss2 path per
//       line, '#' comments allowed) through the concurrent
//       EncodingService (src/service) and print one summary line per
//       file — in list order, byte-identical for any --jobs value —
//       followed by '#'-prefixed aggregate/service statistics (or one
//       JSON object with --json).
//
//   picola serve   [--jobs N] [--restarts R] [--cache C]
//       Read newline-delimited requests from stdin and stream one result
//       line per request.  A request is a .con/.kiss2 path (optionally
//       followed by "--restarts R"); the special requests "stats" and
//       "quit" report service counters and end the session.  Repeated
//       paths are answered from the sharded result cache.
//
//   picola assign  <file.kiss2> [--algorithm A] [-o out.pla] [--raw-table]
//       Full state assignment; write the minimised PLA.
//
//   picola minimize <file.pla> [-o out.pla] [--exact] [--single-pass]
//       Two-level minimisation of an espresso-format PLA.
//
//   picola info    <file.kiss2|file.pla|file.con>
//       Print structural statistics.
//
// Every command returns 0 on success and prints diagnostics to `err`.

#include <iosfwd>
#include <string>
#include <vector>

namespace picola::cli {

/// Run a CLI invocation; `args` excludes the program name.  `in` feeds
/// the commands that read requests from standard input (`serve`).
int run(const std::vector<std::string>& args, std::istream& in,
        std::ostream& out, std::ostream& err);

/// Overload for commands that take no stdin; `serve` reads std::cin.
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

/// Convenience used by main(): converts argv and uses std::cin/cout/cerr.
int main_entry(int argc, char** argv);

}  // namespace picola::cli
