#pragma once
// Command-line driver, exposed as a library function so the tests can run
// it in-process.  Subcommands:
//
//   picola encode  <file.con|file.kiss2> [--algorithm A] [--bits N]
//                  [--seed S] [-o codes.txt] [--quiet]
//       Solve the encoding problem; print codes and quality metrics.
//       Algorithms: picola nova enc anneal sequential gray random exact.
//
//   picola assign  <file.kiss2> [--algorithm A] [-o out.pla] [--raw-table]
//       Full state assignment; write the minimised PLA.
//
//   picola minimize <file.pla> [-o out.pla] [--exact] [--single-pass]
//       Two-level minimisation of an espresso-format PLA.
//
//   picola info    <file.kiss2|file.pla|file.con>
//       Print structural statistics.
//
// Every command returns 0 on success and prints diagnostics to `err`.

#include <iosfwd>
#include <string>
#include <vector>

namespace picola::cli {

/// Run a CLI invocation; `args` excludes the program name.
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

/// Convenience used by main(): converts argv and uses std::cout/cerr.
int main_entry(int argc, char** argv);

}  // namespace picola::cli
