#include "portfolio/backend.h"

#include "check/verifier.h"
#include "constraints/dichotomy.h"
#include "encoders/annealing.h"
#include "eval/constraint_eval.h"
#include "obs/obs.h"
#include "sat/encode.h"

namespace picola::portfolio {

const char* backend_kind_name(BackendKind k) {
  switch (k) {
    case BackendKind::kPicola: return "picola";
    case BackendKind::kSat: return "sat";
    case BackendKind::kAnneal: return "anneal";
    case BackendKind::kPortfolio: return "portfolio";
  }
  return "?";
}

std::optional<BackendKind> parse_backend_kind(std::string_view name) {
  if (name == "picola") return BackendKind::kPicola;
  if (name == "sat") return BackendKind::kSat;
  if (name == "anneal") return BackendKind::kAnneal;
  if (name == "portfolio") return BackendKind::kPortfolio;
  return std::nullopt;
}

bool portfolio_options_equal(const PortfolioOptions& a,
                             const PortfolioOptions& b) {
  return a.backend == b.backend && a.sat_card == b.sat_card &&
         a.sat_distinct == b.sat_distinct && a.sat_sweep == b.sat_sweep &&
         a.sat_max_conflicts == b.sat_max_conflicts &&
         a.anneal_seed == b.anneal_seed;
}

std::vector<BackendTask> portfolio_plan(BackendKind backend, int restarts) {
  restarts = restarts < 1 ? 1 : restarts;
  std::vector<BackendTask> plan;
  if (backend == BackendKind::kPicola || backend == BackendKind::kPortfolio)
    for (int r = 0; r < restarts; ++r)
      plan.push_back({BackendKind::kPicola, r});
  if (backend == BackendKind::kSat || backend == BackendKind::kPortfolio)
    plan.push_back({BackendKind::kSat, 0});
  if (backend == BackendKind::kAnneal || backend == BackendKind::kPortfolio)
    for (int r = 0; r < restarts; ++r)
      plan.push_back({BackendKind::kAnneal, r});
  return plan;
}

namespace {

/// Shared tail of every slot: evaluate, optionally self-check, finalise.
void seal_outcome(const ConstraintSet& cs, bool self_check,
                  BackendOutcome* out) {
  if (self_check)
    check::enforce(check::verify_encoding(cs, out->result.encoding),
                   std::string("backend_") +
                       backend_kind_name(out->backend));
  out->total_cubes = evaluate_constraints(cs, out->result.encoding).total_cubes;
  out->feasible = true;
}

BackendOutcome run_picola(const ConstraintSet& cs, const PicolaOptions& popt,
                          BackendTask task,
                          std::shared_ptr<const CancelToken> cancel) {
  BackendOutcome out;
  out.backend = BackendKind::kPicola;
  PicolaOptions ro = picola_restart_options(popt, task.restart);
  ro.cancel = std::move(cancel);
  out.result = picola_encode(cs, ro);
  // picola_encode already ran its internal self-checks when asked; the
  // encoding-level check in seal_outcome is cheap and uniform.
  seal_outcome(cs, popt.self_check, &out);
  return out;
}

BackendOutcome run_sat(const ConstraintSet& cs, const PicolaOptions& popt,
                       const PortfolioOptions& fopt,
                       std::shared_ptr<const CancelToken> cancel) {
  BackendOutcome out;
  out.backend = BackendKind::kSat;
  sat::SatExactOptions so;
  so.num_bits = popt.num_bits;
  so.card = fopt.sat_card;
  so.distinct = fopt.sat_distinct;
  so.sweep = fopt.sat_sweep;
  so.max_conflicts = fopt.sat_max_conflicts;
  so.cancel = std::move(cancel);
  sat::SatExactResult res = sat::sat_exact_encode(cs, so);
  out.sat_stats = res.stats;
  out.sat_solver_calls = res.solver_calls;
  if (!res.feasible) {
    out.error = res.proven ? "sat: no encoding at this length"
                           : "sat: conflict budget exhausted";
    return out;
  }
  out.result.encoding = std::move(res.encoding);
  out.result.stats.satisfied_constraints = res.satisfied;
  seal_outcome(cs, popt.self_check, &out);
  return out;
}

BackendOutcome run_anneal(const ConstraintSet& cs, const PicolaOptions& popt,
                          const PortfolioOptions& fopt, BackendTask task,
                          std::shared_ptr<const CancelToken> cancel) {
  BackendOutcome out;
  out.backend = BackendKind::kAnneal;
  AnnealingOptions ao;
  ao.num_bits = popt.num_bits;
  ao.seed = restart_seed(fopt.anneal_seed, task.restart);
  ao.cancel = std::move(cancel);
  AnnealingResult res = annealing_encode(cs, ao);
  out.result.encoding = std::move(res.encoding);
  out.result.stats.satisfied_constraints =
      count_satisfied_constraints(cs, out.result.encoding);
  seal_outcome(cs, popt.self_check, &out);
  return out;
}

}  // namespace

BackendOutcome run_backend_task(const ConstraintSet& cs,
                                const PicolaOptions& popt,
                                const PortfolioOptions& fopt, BackendTask task,
                                std::shared_ptr<const CancelToken> cancel) {
  PICOLA_OBS_SPAN(span, "portfolio/backend_task");
  switch (task.kind) {
    case BackendKind::kPicola:
      // No catch: picola failures keep their existing job-fatal semantics.
      return run_picola(cs, popt, task, std::move(cancel));
    case BackendKind::kSat:
    case BackendKind::kAnneal:
      try {
        return task.kind == BackendKind::kSat
                   ? run_sat(cs, popt, fopt, std::move(cancel))
                   : run_anneal(cs, popt, fopt, task, std::move(cancel));
      } catch (const CancelledError&) {
        throw;  // cancellation aborts the whole job
      } catch (const check::SelfCheckError&) {
        throw;  // a backend produced a bad encoding: never degrade this
      } catch (const std::exception& e) {
        BackendOutcome out;
        out.backend = task.kind;
        out.error = e.what();
        PICOLA_OBS_COUNT("portfolio/slot_failures", 1);
        return out;
      }
    case BackendKind::kPortfolio: break;  // not a slot kind
  }
  BackendOutcome out;
  out.error = "portfolio: invalid slot kind";
  return out;
}

int reduce_outcomes(const std::vector<BackendOutcome>& outcomes) {
  int winner = -1;
  for (int i = 0; i < static_cast<int>(outcomes.size()); ++i) {
    const BackendOutcome& o = outcomes[static_cast<size_t>(i)];
    if (!o.feasible) continue;
    if (winner < 0 ||
        o.total_cubes < outcomes[static_cast<size_t>(winner)].total_cubes)
      winner = i;
  }
  return winner;
}

}  // namespace picola::portfolio
