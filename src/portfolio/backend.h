#pragma once
// Encoder backends racing under one front-end (the ROADMAP "portfolio"
// item): the paper's PICOLA, the exact SAT reduction (src/sat), and the
// stochastic annealer — behind a common task/outcome interface so the
// EncodingService can fan any of them onto its thread pool with the same
// deterministic reduction it uses for plain multi-start PICOLA.
//
// Determinism contract: a plan is a fixed list of (backend, restart)
// slots — PICOLA restarts first with exactly the seeds of a
// picola-only run, then the single SAT slot, then the annealer restarts
// with seeds derived from anneal_seed.  Every slot is bounded by
// deterministic budgets (column algorithm / conflict budget / fixed
// cooling schedule), and the winner is the lowest (espresso cube count,
// plan index) among feasible slots.  Hence a portfolio run is
// bit-identical across repeated executions and *structurally never
// worse* than PICOLA alone: the picola slots come first, so any other
// backend must strictly beat their cube count to win.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/picola.h"
#include "sat/cnf.h"
#include "sat/encode.h"
#include "sat/solver.h"

namespace picola::portfolio {

enum class BackendKind {
  kPicola,     ///< the paper's column-by-column algorithm
  kSat,        ///< exact CNF reduction + in-tree CDCL (src/sat)
  kAnneal,     ///< seeded stochastic flipper (encoders/annealing.h)
  kPortfolio,  ///< all of the above, racing
};

const char* backend_kind_name(BackendKind k);
std::optional<BackendKind> parse_backend_kind(std::string_view name);

/// Backend knobs carried by a service Job next to the PicolaOptions.
/// Everything here affects results, so all of it is fingerprinted.
struct PortfolioOptions {
  BackendKind backend = BackendKind::kPicola;
  /// Cardinality encoding of the SAT reduction.
  sat::CardEncoding sat_card = sat::CardEncoding::kSequential;
  /// Distinctness encoding of the SAT reduction.
  sat::DistinctEncoding sat_distinct = sat::DistinctEncoding::kDifference;
  /// Search strategy of the SAT backend's at-least-t sweep.
  sat::SweepMode sat_sweep = sat::SweepMode::kDescending;
  /// Deterministic conflict budget per SAT solver call; 0 = unlimited.
  long sat_max_conflicts = 200'000;
  /// Base seed of the annealer slots (slot r uses restart_seed(seed, r)).
  uint64_t anneal_seed = 1;
};

bool portfolio_options_equal(const PortfolioOptions& a,
                             const PortfolioOptions& b);

/// One slot of a plan: which backend, and its restart index within that
/// backend (always 0 for kSat — the reduction is deterministic, rerunning
/// it buys nothing).
struct BackendTask {
  BackendKind kind = BackendKind::kPicola;
  int restart = 0;
};

/// The slot list for `backend` at `restarts` multi-starts.  kPortfolio =
/// picola x restarts, then sat, then anneal x restarts; single-backend
/// kinds contain just their own slots.
std::vector<BackendTask> portfolio_plan(BackendKind backend, int restarts);

/// The outcome of one slot.  Infeasibility (the SAT backend proving or
/// failing to find an encoding within budget) is a value, not an error:
/// feasible=false with a note in `error`.
struct BackendOutcome {
  PicolaResult result;  ///< encoding + stats (all backends fill both)
  long total_cubes = 0;
  BackendKind backend = BackendKind::kPicola;
  bool feasible = false;
  std::string error;
  /// kSat only: aggregated CDCL statistics and the number of Solver calls
  /// across the at-least-t sweep, surfaced as sat/* service counters so
  /// the solver is no longer a black box (zeros for other backends, and
  /// for sat slots that fail before reaching the solver).
  sat::SolverStats sat_stats;
  long sat_solver_calls = 0;
};

/// Run one slot.  `popt` supplies num_bits / tie_break_seed / self_check
/// (self_check verifies *every* backend's encoding through
/// check::verify_encoding, not just PICOLA's own internal checks);
/// `cancel` is attached to the slot's cooperative cancellation hooks.
///
/// Error contract: kPicola slots propagate every exception (preserving
/// the service's fault-injection semantics); kSat/kAnneal slots degrade
/// ordinary failures to an infeasible outcome but re-throw CancelledError
/// and check::SelfCheckError, which must abort the whole job.
BackendOutcome run_backend_task(const ConstraintSet& cs,
                                const PicolaOptions& popt,
                                const PortfolioOptions& fopt, BackendTask task,
                                std::shared_ptr<const CancelToken> cancel);

/// Index of the winning slot: lowest (total_cubes, plan index) among
/// feasible outcomes; -1 when none is feasible.  Matches RestartWinner's
/// rule, so a picola-only plan reduces exactly as before.
int reduce_outcomes(const std::vector<BackendOutcome>& outcomes);

}  // namespace picola::portfolio
