#pragma once
// Sequential portfolio front-end: run a backend plan slot by slot and
// reduce with the deterministic (cube count, plan index) rule.  The
// CLI's direct encode path and the unit tests use this; the concurrent
// EncodingService executes the same plan as thread-pool tasks and — by
// the reduction rule — returns bit-identical winners.

#include <memory>
#include <vector>

#include "portfolio/backend.h"

namespace picola::portfolio {

struct PortfolioResult {
  PicolaResult picola;  ///< the winning slot's result
  long total_cubes = 0;
  BackendKind backend = BackendKind::kPicola;  ///< winning backend
  /// Every slot's outcome, in plan order (benches and --json read these).
  std::vector<BackendOutcome> outcomes;
};

/// Run `portfolio_plan(fopt.backend, restarts)` sequentially.  Throws
/// std::runtime_error when no slot produced an encoding (e.g. the sat
/// backend alone on an infeasible length); CancelledError and
/// SelfCheckError propagate from the slots.
PortfolioResult portfolio_encode(const ConstraintSet& cs, int restarts,
                                 const PicolaOptions& popt = {},
                                 const PortfolioOptions& fopt = {});

}  // namespace picola::portfolio
