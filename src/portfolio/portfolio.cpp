#include "portfolio/portfolio.h"

#include <stdexcept>

#include "obs/obs.h"

namespace picola::portfolio {

PortfolioResult portfolio_encode(const ConstraintSet& cs, int restarts,
                                 const PicolaOptions& popt,
                                 const PortfolioOptions& fopt) {
  PICOLA_OBS_SPAN(span, "portfolio/encode");
  std::vector<BackendTask> plan = portfolio_plan(fopt.backend, restarts);
  std::shared_ptr<const CancelToken> cancel = popt.cancel;

  PortfolioResult res;
  res.outcomes.reserve(plan.size());
  for (const BackendTask& task : plan)
    res.outcomes.push_back(run_backend_task(cs, popt, fopt, task, cancel));

  int winner = reduce_outcomes(res.outcomes);
  if (winner < 0) {
    std::string why = "portfolio: no backend produced an encoding";
    for (const BackendOutcome& o : res.outcomes)
      if (!o.error.empty()) { why += ": " + o.error; break; }
    throw std::runtime_error(why);
  }
  const BackendOutcome& best = res.outcomes[static_cast<size_t>(winner)];
  res.picola = best.result;
  res.total_cubes = best.total_cubes;
  res.backend = best.backend;
  PICOLA_OBS_COUNT("portfolio/encodes", 1);
  return res;
}

}  // namespace picola::portfolio
