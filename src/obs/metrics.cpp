#include "obs/metrics.h"

#include <bit>
#include <chrono>
#include <cstdio>
#include <sstream>

namespace picola::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}

namespace {

std::atomic<uint64_t (*)()> g_clock{nullptr};

uint64_t steady_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int bucket_of(uint64_t v) {
  return v == 0 ? 0
               : std::min(static_cast<int>(std::bit_width(v)),
                          kHistogramBuckets - 1);
}

}  // namespace

uint64_t now_ns() {
  uint64_t (*fn)() = g_clock.load(std::memory_order_relaxed);
  return fn ? fn() : steady_now_ns();
}

void set_clock_for_testing(uint64_t (*fn)()) {
  g_clock.store(fn, std::memory_order_relaxed);
}

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

size_t stripe_index() {
  static std::atomic<size_t> next{0};
  thread_local size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return idx;
}

uint64_t Counter::value() const {
  uint64_t total = 0;
  for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() {
  for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

void Gauge::max_of(int64_t v) {
  int64_t cur = v_.load(std::memory_order_relaxed);
  while (cur < v &&
         !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram() : cells_(std::make_unique<std::array<Cell, kStripes>>()) {
  reset();
}

void Histogram::record(uint64_t v) {
  Cell& c = (*cells_)[stripe_index()];
  c.buckets[static_cast<size_t>(bucket_of(v))].fetch_add(
      1, std::memory_order_relaxed);
  c.count.fetch_add(1, std::memory_order_relaxed);
  c.sum.fetch_add(v, std::memory_order_relaxed);
  uint64_t cur = c.max.load(std::memory_order_relaxed);
  while (cur < v &&
         !c.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  for (const Cell& c : *cells_) {
    s.count += c.count.load(std::memory_order_relaxed);
    s.sum += c.sum.load(std::memory_order_relaxed);
    s.max = std::max(s.max, c.max.load(std::memory_order_relaxed));
    for (int b = 0; b < kHistogramBuckets; ++b)
      s.buckets[static_cast<size_t>(b)] +=
          c.buckets[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::reset() {
  for (Cell& c : *cells_) {
    for (auto& b : c.buckets) b.store(0, std::memory_order_relaxed);
    c.count.store(0, std::memory_order_relaxed);
    c.sum.store(0, std::memory_order_relaxed);
    c.max.store(0, std::memory_order_relaxed);
  }
}

uint64_t Histogram::Snapshot::percentile(double p) const {
  if (count == 0) return 0;
  double target = p * static_cast<double>(count);
  uint64_t seen = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[static_cast<size_t>(b)];
    if (static_cast<double>(seen) >= target) {
      // Upper bound of bucket b, capped by the observed max.
      uint64_t hi = b == 0 ? 0 : (1ULL << b) - 1;
      return std::min(hi, max);
    }
  }
  return max;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* r = new MetricsRegistry();  // leaked: process-wide
  return *r;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::vector<std::pair<std::string, uint64_t>>
MetricsRegistry::counter_snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, int64_t>>
MetricsRegistry::gauge_snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, Histogram::Snapshot>>
MetricsRegistry::histogram_snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Histogram::Snapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h->snapshot());
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

namespace {

double ms(uint64_t ns) { return static_cast<double>(ns) / 1e6; }

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::report_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_)
    os << name << " count=" << c->value() << "\n";
  for (const auto& [name, g] : gauges_)
    os << name << " gauge=" << g->value() << "\n";
  for (const auto& [name, h] : histograms_) {
    Histogram::Snapshot s = h->snapshot();
    os << name << " count=" << s.count << " total_ms=" << fmt(ms(s.sum))
       << " mean_ms=" << fmt(s.mean() / 1e6)
       << " p50_ms=" << fmt(ms(s.percentile(0.5)))
       << " p95_ms=" << fmt(ms(s.percentile(0.95)))
       << " p99_ms=" << fmt(ms(s.percentile(0.99)))
       << " max_ms=" << fmt(ms(s.max)) << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::report_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << g->value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    Histogram::Snapshot s = h->snapshot();
    uint64_t p50 = s.percentile(0.5), p90 = s.percentile(0.9);
    uint64_t p95 = s.percentile(0.95), p99 = s.percentile(0.99);
    // Nanosecond keys predate the ms duals; both units are emitted so
    // humans and dashboards read the same report (ISSUE 7 satellite).
    os << "\"" << name << "\":{\"count\":" << s.count << ",\"sum_ns\":"
       << s.sum << ",\"max_ns\":" << s.max << ",\"mean_ns\":" << fmt(s.mean())
       << ",\"p50_ns\":" << p50 << ",\"p90_ns\":" << p90 << ",\"p95_ns\":"
       << p95 << ",\"p99_ns\":" << p99 << ",\"sum_ms\":" << fmt(ms(s.sum))
       << ",\"max_ms\":" << fmt(ms(s.max)) << ",\"mean_ms\":"
       << fmt(s.mean() / 1e6) << ",\"p50_ms\":" << fmt(ms(p50))
       << ",\"p90_ms\":" << fmt(ms(p90)) << ",\"p95_ms\":" << fmt(ms(p95))
       << ",\"p99_ms\":" << fmt(ms(p99)) << "}";
  }
  os << "}}";
  return os.str();
}

}  // namespace picola::obs
