#pragma once
// picola::obs — scoped-span phase tracer.
//
// A ScopedSpan times a named phase (e.g. "picola/classify") on the
// current thread.  When the master switch (obs::enabled()) is off the
// constructor is a single relaxed load; when on, the span duration is
// recorded into the global MetricsRegistry histogram of the same name,
// and — if tracing is additionally on — a TraceEvent is appended to a
// per-thread buffer of the process-wide Tracer.
//
// Export: chrome_trace_json() renders the buffers as Chrome trace-event
// JSON ("ph":"X" complete events, microsecond timestamps) loadable in
// chrome://tracing or https://ui.perfetto.dev; summary_text()/
// summary_json() aggregate per span name.
//
// Sampling: set_sample_every(N) records only every Nth *top-level* span
// per thread; nested spans inherit the decision, so a sampled trace
// always contains complete call trees.
//
// Determinism for tests: timestamps come from obs::now_ns() (fakeable via
// set_clock_for_testing); thread ids are small integers assigned on a
// thread's first recorded span.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace picola::obs {

struct TraceEvent {
  const char* name = nullptr;  ///< static string (span site literal)
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t trace_id = 0;  ///< request correlation id, 0 = none
  uint32_t tid = 0;
  uint16_t depth = 0;  ///< nesting depth on the recording thread
};

/// The trace id stamped onto spans recorded by the current thread
/// (request correlation across client -> server -> service -> restart
/// task; see docs/SERVICE.md).  0 means "no request context".
uint64_t current_trace_id();
void set_current_trace_id(uint64_t id);

/// Sets the thread's trace id for a scope, restoring the previous one on
/// exit (worker threads interleave slots of different requests).
class ScopedTraceId {
 public:
  explicit ScopedTraceId(uint64_t id) : prev_(current_trace_id()) {
    set_current_trace_id(id);
  }
  ~ScopedTraceId() { set_current_trace_id(prev_); }
  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;

 private:
  uint64_t prev_;
};

/// Canonical wire rendering of a trace id: 16 lowercase hex digits.
std::string trace_id_hex(uint64_t id);

class Tracer {
 public:
  static Tracer& global();

  /// Turn trace-event collection on/off (histograms are fed regardless,
  /// as long as obs::enabled()).
  void set_tracing(bool on) {
    tracing_.store(on, std::memory_order_relaxed);
  }
  bool tracing() const { return tracing_.load(std::memory_order_relaxed); }

  /// Record only every Nth top-level span per thread (1 = all, default).
  void set_sample_every(uint32_t n) {
    sample_every_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }
  uint32_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// Drop all buffered events (buffers and thread ids survive).
  void clear();

  /// Merged events, sorted by (start_ns, tid, depth).
  std::vector<TraceEvent> events() const;

  /// Chrome trace-event JSON (the "JSON object format" with a
  /// traceEvents array), deterministic given the events.
  std::string chrome_trace_json() const;

  /// Aggregated per-name summary, one line per span name, sorted.
  std::string summary_text() const;
  /// {"spans":{name:{"count":..,"total_ns":..,"min_ns":..,"max_ns":..}}}
  std::string summary_json() const;

  /// Append one event for the current thread (used by ScopedSpan and by
  /// cross-thread phases like service/job that time themselves).
  void record(const char* name, uint64_t start_ns, uint64_t dur_ns,
              int depth);

 private:
  Tracer() = default;

  struct ThreadBuf {
    std::mutex mu;
    std::vector<TraceEvent> events;
    uint32_t tid = 0;
  };
  ThreadBuf& buf_for_this_thread();

  std::atomic<bool> tracing_{false};
  std::atomic<uint32_t> sample_every_{1};
  std::atomic<uint32_t> next_tid_{1};
  mutable std::mutex mu_;  ///< guards bufs_ (registration and export)
  std::vector<std::unique_ptr<ThreadBuf>> bufs_;
};

/// RAII span.  Construct with a *static* name literal.  The switched-off
/// path is fully inline — one relaxed load in the constructor, one
/// register test in the destructor — so spans can sit inside the PICOLA
/// column loop without showing up in profiles.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : name_(name) {
    if (enabled()) enter();
  }
  ~ScopedSpan() {
    if (entered_) finish();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Time since construction; 0 when the span is inactive (obs off or
  /// sampled out).
  uint64_t elapsed_ns() const;

 private:
  void enter();   ///< slow path: sampling decision, depth, start stamp
  void finish();  ///< slow path: histogram record + trace event

  const char* name_;
  uint64_t start_ = 0;
  uint16_t depth_ = 0;
  bool entered_ = false;  ///< obs was enabled at construction
  bool active_ = false;   ///< this span is being measured
};

/// No-op stand-in used by the PICOLA_OBS_DISABLED macro expansion.
struct NullSpan {
  uint64_t elapsed_ns() const { return 0; }
};

/// Record an externally timed span (histogram + trace event), subject to
/// the same master switch as ScopedSpan but not to sampling.
void record_span(const char* name, uint64_t start_ns, uint64_t dur_ns);

}  // namespace picola::obs
