#pragma once
// Build identity for fleet telemetry: version, git sha and the compile
// flags that change behaviour (sanitizer, obs/fault compile-outs).  The
// exporter renders this as the conventional `picola_build_info{...} 1`
// info-gauge so a fleet is identifiable from /metrics alone, and the
// serve protocols attach it to their `metrics` responses.

#include <string>

namespace picola::obs {

struct BuildInfo {
  const char* version;    ///< release train, bumped per PR sequence
  const char* git_sha;    ///< short sha at configure time, "unknown" outside git
  const char* sanitizer;  ///< PICOLA_SANITIZE value ("OFF", "address", "thread")
  bool obs_compiled;      ///< false under -DPICOLA_OBS_DISABLED
  bool fault_compiled;    ///< false under -DPICOLA_FAULT_DISABLED
};

/// The identity of this binary (constant for the process lifetime).
const BuildInfo& build_info();

/// {"version":...,"git_sha":...,"sanitizer":...,"obs":bool,"fault":bool}
std::string build_info_json();

/// Prometheus label body: version="...",git_sha="...",sanitizer="...",
/// obs="on|off",fault="on|off" (no braces).
std::string build_info_labels();

}  // namespace picola::obs
