#include "obs/tracer.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace picola::obs {

namespace {

/// Per-thread span state: nesting depth and the sampling decision taken
/// at the current top-level span.
struct SpanTls {
  int depth = 0;
  bool sampled = true;
  uint32_t top_level_count = 0;
};

SpanTls& span_tls() {
  thread_local SpanTls tls;
  return tls;
}

thread_local uint64_t t_trace_id = 0;

std::string fmt_us(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1e3);
  return buf;
}

}  // namespace

uint64_t current_trace_id() { return t_trace_id; }

void set_current_trace_id(uint64_t id) { t_trace_id = id; }

std::string trace_id_hex(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

Tracer& Tracer::global() {
  static Tracer* t = new Tracer();  // leaked: thread buffers must outlive
                                    // any thread's cached pointer
  return *t;
}

Tracer::ThreadBuf& Tracer::buf_for_this_thread() {
  thread_local ThreadBuf* cached = nullptr;
  if (cached) return *cached;
  auto buf = std::make_unique<ThreadBuf>();
  buf->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  cached = buf.get();
  std::lock_guard<std::mutex> lock(mu_);
  bufs_.push_back(std::move(buf));
  return *cached;
}

void Tracer::record(const char* name, uint64_t start_ns, uint64_t dur_ns,
                    int depth) {
  ThreadBuf& b = buf_for_this_thread();
  std::lock_guard<std::mutex> lock(b.mu);
  b.events.push_back(TraceEvent{name, start_ns, dur_ns, t_trace_id, b.tid,
                                static_cast<uint16_t>(depth)});
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& b : bufs_) {
    std::lock_guard<std::mutex> bl(b->mu);
    b->events.clear();
  }
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& b : bufs_) {
      std::lock_guard<std::mutex> bl(b->mu);
      all.insert(all.end(), b->events.begin(), b->events.end());
    }
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.depth < b.depth;
            });
  return all;
}

std::string Tracer::chrome_trace_json() const {
  std::vector<TraceEvent> evs = events();
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : evs) {
    if (!first) os << ",";
    first = false;
    // Category = the name's prefix up to '/', so Perfetto can group the
    // core / guide / espresso / service / cache layers.
    std::string name(e.name);
    std::string cat = name.substr(0, name.find('/'));
    os << "{\"name\":\"" << name << "\",\"cat\":\"" << cat
       << "\",\"ph\":\"X\",\"ts\":" << fmt_us(e.start_ns) << ",\"dur\":"
       << fmt_us(e.dur_ns) << ",\"pid\":1,\"tid\":" << e.tid;
    if (e.trace_id != 0)
      os << ",\"args\":{\"trace_id\":\"" << trace_id_hex(e.trace_id) << "\"}";
    os << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

namespace {

struct Agg {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t min_ns = UINT64_MAX;
  uint64_t max_ns = 0;
};

std::map<std::string, Agg> aggregate(const std::vector<TraceEvent>& evs) {
  std::map<std::string, Agg> by_name;
  for (const TraceEvent& e : evs) {
    Agg& a = by_name[e.name];
    ++a.count;
    a.total_ns += e.dur_ns;
    a.min_ns = std::min(a.min_ns, e.dur_ns);
    a.max_ns = std::max(a.max_ns, e.dur_ns);
  }
  return by_name;
}

}  // namespace

std::string Tracer::summary_text() const {
  std::ostringstream os;
  for (const auto& [name, a] : aggregate(events())) {
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  " count=%llu total_ms=%.3f min_ms=%.3f max_ms=%.3f",
                  static_cast<unsigned long long>(a.count),
                  static_cast<double>(a.total_ns) / 1e6,
                  static_cast<double>(a.min_ns) / 1e6,
                  static_cast<double>(a.max_ns) / 1e6);
    os << name << buf << "\n";
  }
  return os.str();
}

std::string Tracer::summary_json() const {
  std::ostringstream os;
  os << "{\"spans\":{";
  bool first = true;
  for (const auto& [name, a] : aggregate(events())) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":{\"count\":" << a.count << ",\"total_ns\":"
       << a.total_ns << ",\"min_ns\":" << a.min_ns << ",\"max_ns\":"
       << a.max_ns << "}";
  }
  os << "}}";
  return os.str();
}

void ScopedSpan::enter() {
  entered_ = true;
  SpanTls& tls = span_tls();
  if (tls.depth == 0) {
    uint32_t every = Tracer::global().sample_every();
    tls.sampled = every <= 1 || (tls.top_level_count++ % every) == 0;
  }
  active_ = tls.sampled;
  depth_ = static_cast<uint16_t>(tls.depth);
  ++tls.depth;
  if (active_) start_ = now_ns();
}

void ScopedSpan::finish() {
  SpanTls& tls = span_tls();
  --tls.depth;
  if (!active_) return;
  uint64_t dur = now_ns() - start_;
  MetricsRegistry::global().histogram(name_).record(dur);
  Tracer& t = Tracer::global();
  if (t.tracing()) t.record(name_, start_, dur, depth_);
}

uint64_t ScopedSpan::elapsed_ns() const {
  return active_ ? now_ns() - start_ : 0;
}

void record_span(const char* name, uint64_t start_ns, uint64_t dur_ns) {
  if (!enabled()) return;
  MetricsRegistry::global().histogram(name).record(dur_ns);
  Tracer& t = Tracer::global();
  if (t.tracing()) t.record(name, start_ns, dur_ns, 0);
}

}  // namespace picola::obs
