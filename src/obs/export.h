#pragma once
// Prometheus text exposition (format 0.0.4) for MetricsRegistry.
//
// Name mangling: the repo's `subsystem/name` convention maps to
// `picola_subsystem_name`; any character outside [a-zA-Z0-9_] becomes
// '_'.  Counters get the conventional `_total` suffix; histograms (which
// record nanoseconds by convention, see obs/metrics.h) are exported as
// `<name>_ns` families with cumulative `_bucket{le="..."}` series over
// the log2 buckets plus `_sum` and `_count`.
//
// Several registries can be merged into one scrape (the admin endpoint
// combines the net, service and global registries).  Registries are
// rendered in the order given and a metric name that already appeared is
// skipped — first registry wins — so the exposition never emits a
// duplicate family even when e.g. `service/job` exists both as the
// service's own histogram and as a global tracer span histogram.

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace picola::obs {

/// `subsystem/name` -> `picola_subsystem_name`.
std::string prometheus_name(const std::string& name);

/// Render counters, gauges and histograms of `regs` (merged, first
/// occurrence of a name wins) plus the `picola_build_info` info-gauge.
std::string prometheus_text(const std::vector<const MetricsRegistry*>& regs);

}  // namespace picola::obs
