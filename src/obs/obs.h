#pragma once
// The instrumentation macros used at span/counter sites across the
// codebase.  Two kill switches, one per cost model:
//
//  * Runtime: obs::set_enabled(false) (the default) reduces every macro
//    to one relaxed atomic load — cheap enough to leave in release
//    builds (see bench/micro_kernels, the disabled path costs <1% of
//    picola_encode on the Table-1 instances).
//  * Compile time: building with -DPICOLA_OBS_DISABLED expands the
//    macros to nothing, for environments where even the load must go.
//    The obs library itself (metrics.h / tracer.h) always compiles:
//    subsystems that keep their own registries (EncodingService) are
//    bookkeeping, not instrumentation, and are unaffected.
//
// Span/metric name catalogue: docs/OBSERVABILITY.md.

#include "obs/metrics.h"
#include "obs/tracer.h"

#ifndef PICOLA_OBS_DISABLED

/// Time the enclosing scope as span `name` (a string literal); `var`
/// names the span object so the site can read var.elapsed_ns().
#define PICOLA_OBS_SPAN(var, name) ::picola::obs::ScopedSpan var(name)

/// Bump the named counter in the global registry by n.
#define PICOLA_OBS_COUNT(name, n)                                     \
  do {                                                                \
    if (::picola::obs::enabled())                                     \
      ::picola::obs::MetricsRegistry::global().counter(name).add(     \
          static_cast<uint64_t>(n));                                  \
  } while (0)

/// Record an externally timed duration as span `name`.
#define PICOLA_OBS_RECORD_SPAN(name, start_ns, dur_ns) \
  ::picola::obs::record_span(name, start_ns, dur_ns)

/// Current obs timestamp, or 0 when obs is off (cheapest possible "maybe
/// read the clock").
#define PICOLA_OBS_NOW() \
  (::picola::obs::enabled() ? ::picola::obs::now_ns() : 0)

#else  // PICOLA_OBS_DISABLED

#define PICOLA_OBS_SPAN(var, name) \
  ::picola::obs::NullSpan var;     \
  (void)var
#define PICOLA_OBS_COUNT(name, n) \
  do {                            \
  } while (0)
#define PICOLA_OBS_RECORD_SPAN(name, start_ns, dur_ns) \
  do {                                                 \
  } while (0)
#define PICOLA_OBS_NOW() (static_cast<uint64_t>(0))

#endif  // PICOLA_OBS_DISABLED
