#include "obs/build_info.h"

#include <sstream>

// The git sha and sanitizer mode are injected per-file from
// src/CMakeLists.txt so only this translation unit rebuilds when HEAD
// moves.
#ifndef PICOLA_GIT_SHA
#define PICOLA_GIT_SHA "unknown"
#endif
#ifndef PICOLA_SANITIZE_NAME
#define PICOLA_SANITIZE_NAME "OFF"
#endif

namespace picola::obs {

namespace {
constexpr const char* kVersion = "0.7.0";
}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info = {
      kVersion, PICOLA_GIT_SHA, PICOLA_SANITIZE_NAME,
#ifdef PICOLA_OBS_DISABLED
      false,
#else
      true,
#endif
#ifdef PICOLA_FAULT_DISABLED
      false,
#else
      true,
#endif
  };
  return info;
}

std::string build_info_json() {
  const BuildInfo& b = build_info();
  std::ostringstream os;
  os << "{\"version\":\"" << b.version << "\",\"git_sha\":\"" << b.git_sha
     << "\",\"sanitizer\":\"" << b.sanitizer << "\",\"obs\":"
     << (b.obs_compiled ? "true" : "false") << ",\"fault\":"
     << (b.fault_compiled ? "true" : "false") << "}";
  return os.str();
}

std::string build_info_labels() {
  const BuildInfo& b = build_info();
  std::ostringstream os;
  os << "version=\"" << b.version << "\",git_sha=\"" << b.git_sha
     << "\",sanitizer=\"" << b.sanitizer << "\",obs=\""
     << (b.obs_compiled ? "on" : "off") << "\",fault=\""
     << (b.fault_compiled ? "on" : "off") << "\"";
  return os.str();
}

}  // namespace picola::obs
