#include "obs/export.h"

#include <cctype>
#include <set>
#include <sstream>

#include "obs/build_info.h"

namespace picola::obs {

namespace {

// Bucket i of the log2 histogram counts values with bit_width(v) == i
// (v == 0 in bucket 0), so its inclusive upper bound is 2^i - 1.
uint64_t bucket_upper_bound(int b) {
  return b == 0 ? 0 : (1ULL << b) - 1;
}

void render_histogram(const std::string& name,
                      const Histogram::Snapshot& s, std::ostringstream& os) {
  os << "# TYPE " << name << " histogram\n";
  // Emit cumulative buckets up to the highest occupied one; an empty
  // histogram still gets its +Inf bucket so the family parses.
  int top = -1;
  for (int b = 0; b < kHistogramBuckets; ++b)
    if (s.buckets[static_cast<size_t>(b)] != 0) top = b;
  uint64_t cum = 0;
  for (int b = 0; b <= top; ++b) {
    cum += s.buckets[static_cast<size_t>(b)];
    os << name << "_bucket{le=\"" << bucket_upper_bound(b) << "\"} " << cum
       << "\n";
  }
  os << name << "_bucket{le=\"+Inf\"} " << s.count << "\n";
  os << name << "_sum " << s.sum << "\n";
  os << name << "_count " << s.count << "\n";
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "picola_";
  out.reserve(out.size() + name.size());
  for (char ch : name) {
    bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
              (ch >= '0' && ch <= '9') || ch == '_';
    out.push_back(ok ? ch : '_');
  }
  return out;
}

std::string prometheus_text(const std::vector<const MetricsRegistry*>& regs) {
  std::ostringstream os;
  os << "# TYPE picola_build_info gauge\n";
  os << "picola_build_info{" << build_info_labels() << "} 1\n";
  std::set<std::string> seen;
  for (const MetricsRegistry* reg : regs) {
    if (!reg) continue;
    for (const auto& [name, value] : reg->counter_snapshots()) {
      if (!seen.insert(name).second) continue;
      std::string pn = prometheus_name(name) + "_total";
      os << "# TYPE " << pn << " counter\n" << pn << " " << value << "\n";
    }
    for (const auto& [name, value] : reg->gauge_snapshots()) {
      if (!seen.insert(name).second) continue;
      std::string pn = prometheus_name(name);
      os << "# TYPE " << pn << " gauge\n" << pn << " " << value << "\n";
    }
    for (const auto& [name, snap] : reg->histogram_snapshots()) {
      if (!seen.insert(name).second) continue;
      render_histogram(prometheus_name(name) + "_ns", snap, os);
    }
  }
  return os.str();
}

}  // namespace picola::obs
