#pragma once
// picola::obs — low-overhead process metrics: named counters, gauges and
// log2-bucketed histograms collected in a MetricsRegistry.
//
// The write path is lock-free: each Counter/Histogram is striped over
// kStripes cache-line-aligned cells and a thread picks its cell once
// (thread-local stripe index), so concurrent writers touch different
// cache lines and never block.  Reads (snapshot(), report_*()) sum the
// stripes with relaxed loads — totals are exact once the writers are
// quiescent, approximate while they run.  Registration (name -> metric)
// takes a mutex, but it happens once per name; the returned references
// stay valid for the registry's lifetime, including across reset().
//
// By convention every histogram in this codebase records durations in
// nanoseconds (the tracer feeds span durations here); the text report
// renders them as milliseconds.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace picola::obs {

/// Monotonic clock in nanoseconds.  All obs timestamps come from here so
/// a test can substitute a deterministic clock.
uint64_t now_ns();

/// Replace the clock used by now_ns(); nullptr restores steady_clock.
void set_clock_for_testing(uint64_t (*fn)());

namespace detail {
extern std::atomic<bool> g_enabled;  ///< storage behind enabled()
}

/// Master runtime switch of the *global* instrumentation macros
/// (obs/obs.h).  Off by default; when off a span costs one relaxed load
/// (inline — the check must not be a function call, see the bench gate).
/// Metrics written directly through a registry (e.g. the service's own
/// counters) are not affected.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

inline constexpr int kStripes = 16;

/// This thread's stripe (assigned round-robin on first use).
size_t stripe_index();

/// Monotone counter, exact under any number of concurrent writers.
class Counter {
 public:
  void add(uint64_t n = 1) {
    cells_[stripe_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const;
  void reset();

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kStripes> cells_{};
};

/// Last-value-wins gauge (low write rate, a single atomic is enough).
class Gauge {
 public:
  void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  /// Raise to `v` if larger (high-water marks).
  void max_of(int64_t v);
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

inline constexpr int kHistogramBuckets = 64;

/// Log2-bucketed histogram: bucket i counts values v with bit_width(v)
/// == i, i.e. v == 0 lands in bucket 0 and v in [2^(i-1), 2^i) in
/// bucket i.  Exact count/sum/max; percentiles are bucket upper bounds.
class Histogram {
 public:
  Histogram();
  void record(uint64_t v);

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    std::array<uint64_t, kHistogramBuckets> buckets{};

    double mean() const {
      return count ? static_cast<double>(sum) / static_cast<double>(count) : 0;
    }
    /// Upper bound of the bucket holding the p-quantile (p in [0, 1]).
    uint64_t percentile(double p) const;
  };
  Snapshot snapshot() const;
  void reset();

 private:
  struct alignas(64) Cell {
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets;
    std::atomic<uint64_t> count;
    std::atomic<uint64_t> sum;
    std::atomic<uint64_t> max;
  };
  std::unique_ptr<std::array<Cell, kStripes>> cells_;
};

/// Named metrics.  The process-wide instance (global()) backs the
/// PICOLA_OBS_* macros; subsystems that need isolated counts (the
/// EncodingService, tests) own their own instance.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& global();

  /// Find-or-create; the reference stays valid for the registry's
  /// lifetime (reset() zeroes values, it never removes metrics).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Current value of a counter, 0 if it was never created.
  uint64_t counter_value(const std::string& name) const;

  /// Value of every counter / gauge, sorted by name (exporters).
  std::vector<std::pair<std::string, uint64_t>> counter_snapshots() const;
  std::vector<std::pair<std::string, int64_t>> gauge_snapshots() const;

  /// Snapshot of every histogram, sorted by name.
  std::vector<std::pair<std::string, Histogram::Snapshot>>
  histogram_snapshots() const;

  /// Zero every metric (objects and references survive).
  void reset();

  /// Human-readable report, one metric per line, sorted by name.
  std::string report_text() const;
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum_ns,
  /// max_ns,mean_ns,p50_ns,p90_ns,p95_ns,p99_ns, and the same durations
  /// as *_ms}}} — keys sorted.  Existing keys are stable; new fields are
  /// only ever added (tests/integration/test_serve_stdin.cpp locks the
  /// set).
  std::string report_json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace picola::obs
