#pragma once
// The full state-assignment tool (paper §4, Table II): derive face
// constraints by symbolic minimisation, encode the states with a chosen
// encoder, assemble the encoded two-level implementation, and minimise it
// with espresso.  Includes a co-simulation self-check of the encoded
// implementation against the symbolic machine.

#include <cstdint>
#include <string>

#include "constraints/derive.h"
#include "encoders/encoding.h"
#include "encoders/nova_like.h"
#include "core/picola.h"
#include "kiss/fsm.h"
#include "pla/pla.h"

namespace picola {

/// Which encoder drives the assignment.
enum class Assigner {
  kPicola,      ///< the paper's tool
  kNovaILike,   ///< NOVA i-hybrid stand-in (input constraints only)
  kNovaIoLike,  ///< NOVA io-hybrid stand-in (adds output adjacency pass)
  kEncLike,     ///< dichotomy-count baseline
  kSequential,  ///< binary counting (no constraint information)
  kRandom,      ///< seeded random codes
};

const char* assigner_name(Assigner a);

struct StateAssignOptions {
  Assigner assigner = Assigner::kPicola;
  PicolaOptions picola;
  DeriveOptions derive;
  esp::EspressoOptions final_minimize;
  /// Encode the minimised symbolic cover (the paper's flow).  When false,
  /// the raw transition table is encoded instead.
  bool use_symbolic_cover = true;
  /// PICOLA only: model output affinity (the DATE'98 dynamic-model
  /// ingredient) by adding each next-state co-occurrence pair as a
  /// low-weight two-member face constraint, scaled by this factor relative
  /// to the heaviest input constraint.  0 disables the augmentation.
  /// Measured to *hurt* on the benchmark suite (EXPERIMENTS.md) — kept as
  /// a documented negative result.
  double output_affinity_weight = 0.0;
  /// Run pair-chart state minimisation before deriving constraints.
  bool minimize_states_first = false;
  uint64_t random_seed = 1;
};

struct StateAssignResult {
  Encoding encoding;
  /// The machine actually encoded (differs from the input when
  /// minimize_states_first merged states).
  Fsm machine;
  int states_merged = 0;
  DerivedConstraints derived;
  Cover encoded_onset;  ///< before the final minimisation
  Cover encoded_dc;
  Cover minimized;      ///< final two-level cover
  Pla pla;              ///< final PLA personality
  int product_terms = 0;
  long area = 0;
  double derive_ms = 0;
  double encode_ms = 0;
  double minimize_ms = 0;
};

StateAssignResult assign_states(const Fsm& fsm,
                                const StateAssignOptions& opt = {});

/// Output-adjacency preferences for the io flavour: states that appear as
/// next states of the same present state / compatible inputs want adjacent
/// codes (weight = co-occurrence count).
std::vector<AdjacencyPreference> next_state_adjacency(const Fsm& fsm);

/// Co-simulate the symbolic machine against the encoded cover for
/// `steps` random input vectors; returns "" on success or a diagnostic.
std::string verify_against_fsm(const Fsm& fsm, const Encoding& enc,
                               const Cover& onset, const Cover& dcset,
                               int steps, uint64_t seed);

}  // namespace picola
