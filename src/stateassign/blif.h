#pragma once
// BLIF netlist export of an encoded FSM implementation: one latch per
// state bit, one single-output .names block per next-state bit and per
// primary output, all driven by the minimised multi-output cover.  This is
// the artifact a SIS-era flow would consume after state assignment.

#include <string>

#include "cube/cover.h"
#include "encoders/encoding.h"
#include "kiss/fsm.h"

namespace picola {

/// Serialise the encoded implementation as BLIF.  `cover` must live in the
/// encoded space (fsm.num_inputs + enc.num_bits binary inputs; output
/// variable = enc.num_bits next-state parts then fsm.num_outputs outputs),
/// i.e. what StateAssignResult::minimized holds.
std::string write_blif(const Fsm& fsm, const Encoding& enc,
                       const Cover& cover,
                       const std::string& model_name = "");

}  // namespace picola
