#include "stateassign/state_assign.h"

#include <algorithm>
#include <random>

#include "encoders/enc_like.h"
#include "encoders/trivial.h"
#include "eval/metrics.h"
#include "kiss/minimize_states.h"
#include "kiss/simulator.h"
#include "stateassign/assemble.h"

namespace picola {

const char* assigner_name(Assigner a) {
  switch (a) {
    case Assigner::kPicola: return "picola";
    case Assigner::kNovaILike: return "nova-i-like";
    case Assigner::kNovaIoLike: return "nova-io-like";
    case Assigner::kEncLike: return "enc-like";
    case Assigner::kSequential: return "sequential";
    case Assigner::kRandom: return "random";
  }
  return "?";
}

std::vector<AdjacencyPreference> next_state_adjacency(const Fsm& fsm) {
  // Count, for every pair of states, how often they appear as next states
  // of the same present state (the classic output-encoding affinity).
  const int ns = fsm.num_states();
  std::vector<std::vector<double>> w(
      static_cast<size_t>(ns), std::vector<double>(static_cast<size_t>(ns), 0));
  for (int st = 0; st < ns; ++st) {
    std::vector<int> nexts;
    for (const auto& t : fsm.transitions)
      if (t.from == st && t.to != Transition::kAnyState) nexts.push_back(t.to);
    for (size_t i = 0; i < nexts.size(); ++i)
      for (size_t j = i + 1; j < nexts.size(); ++j) {
        int a = nexts[i], b = nexts[j];
        if (a != b) w[static_cast<size_t>(std::min(a, b))]
                     [static_cast<size_t>(std::max(a, b))] += 1.0;
      }
  }
  std::vector<AdjacencyPreference> prefs;
  for (int a = 0; a < ns; ++a)
    for (int b = a + 1; b < ns; ++b)
      if (w[static_cast<size_t>(a)][static_cast<size_t>(b)] > 0)
        prefs.push_back({a, b, w[static_cast<size_t>(a)][static_cast<size_t>(b)]});
  return prefs;
}

StateAssignResult assign_states(const Fsm& input_fsm,
                                const StateAssignOptions& opt) {
  StateAssignResult r;
  Stopwatch sw;
  r.machine = input_fsm;
  if (opt.minimize_states_first) {
    StateMinimizeResult sm = minimize_states(input_fsm);
    r.machine = std::move(sm.fsm);
    r.states_merged = sm.merged;
  }
  const Fsm& fsm = r.machine;
  r.derived = derive_face_constraints(fsm, opt.derive);
  r.derive_ms = sw.elapsed_ms();

  sw.restart();
  switch (opt.assigner) {
    case Assigner::kPicola: {
      ConstraintSet set = r.derived.set;
      if (opt.output_affinity_weight > 0) {
        double heaviest = 1.0;
        for (const auto& c : set.constraints)
          heaviest = std::max(heaviest, c.weight);
        double scale = opt.output_affinity_weight * heaviest;
        for (const auto& p : next_state_adjacency(fsm))
          set.add({p.a, p.b}, scale * p.weight);
      }
      r.encoding = picola_encode(set, opt.picola).encoding;
      break;
    }
    case Assigner::kNovaILike: {
      NovaLikeOptions no;
      r.encoding = nova_like_encode(r.derived.set, no).encoding;
      break;
    }
    case Assigner::kNovaIoLike: {
      NovaLikeOptions no;
      no.adjacency = next_state_adjacency(fsm);
      r.encoding = nova_like_encode(r.derived.set, no).encoding;
      break;
    }
    case Assigner::kEncLike: {
      EncLikeOptions eo;
      r.encoding = enc_like_encode(r.derived.set, eo).encoding;
      break;
    }
    case Assigner::kSequential:
      r.encoding = sequential_encoding(fsm.num_states());
      break;
    case Assigner::kRandom:
      r.encoding = random_encoding(fsm.num_states(), opt.random_seed);
      break;
  }
  r.encode_ms = sw.elapsed_ms();

  sw.restart();
  if (opt.use_symbolic_cover) {
    encode_symbolic_cover(r.derived, fsm, r.encoding, &r.encoded_onset,
                          &r.encoded_dc);
  } else {
    encode_transition_table(fsm, r.encoding, &r.encoded_onset, &r.encoded_dc);
  }
  r.minimized =
      esp::minimize_cover(r.encoded_onset, r.encoded_dc, opt.final_minimize);
  r.minimize_ms = sw.elapsed_ms();

  r.pla = Pla::from_cover(r.minimized);
  r.product_terms = r.minimized.size();
  r.area = r.pla.area();
  return r;
}

std::string verify_against_fsm(const Fsm& fsm, const Encoding& enc,
                               const Cover& onset, const Cover& dcset,
                               int steps, uint64_t seed) {
  const CubeSpace& s = onset.space();
  const int ni = fsm.num_inputs;
  const int nv = enc.num_bits;
  const int ov = s.output_var();
  std::mt19937_64 rng(seed);
  FsmSimulator sim(fsm);

  for (int step = 0; step < steps; ++step) {
    std::vector<int> bits(static_cast<size_t>(ni));
    for (int& b : bits) b = static_cast<int>(rng() % 2);
    int present = sim.state();
    SimStep golden = sim.step(bits);
    if (!golden.matched) {
      sim.set_state(static_cast<int>(rng() % static_cast<uint64_t>(fsm.num_states())));
      continue;  // unspecified input: nothing to compare
    }

    // Evaluate the encoded cover at (inputs, code(present)).
    std::vector<int> values(static_cast<size_t>(s.num_vars() - 1));
    for (int v = 0; v < ni; ++v) values[static_cast<size_t>(v)] = bits[static_cast<size_t>(v)];
    uint32_t pcode = enc.code(present);
    for (int b = 0; b < nv; ++b)
      values[static_cast<size_t>(ni + b)] = static_cast<int>((pcode >> b) & 1u);

    auto asserted = [&](const Cover& f, int part) {
      for (const Cube& c : f.cubes()) {
        bool hit = true;
        for (int v = 0; v < s.num_vars() - 1; ++v) {
          if (!c.test(s, v, values[static_cast<size_t>(v)])) {
            hit = false;
            break;
          }
        }
        if (hit && c.test(s, ov, part)) return true;
      }
      return false;
    };

    // Next-state bits.
    if (!golden.free_next) {
      uint32_t want = enc.code(golden.next_state);
      for (int b = 0; b < nv; ++b) {
        bool bit_on = asserted(onset, b);
        bool bit_dc = asserted(dcset, b);
        bool want_on = ((want >> b) & 1u) != 0;
        if (!bit_dc && bit_on != want_on)
          return "state " + fsm.state_names[static_cast<size_t>(present)] +
                 ": next-state bit " + std::to_string(b) + " mismatch";
      }
    }
    // Primary outputs.
    for (int o = 0; o < fsm.num_outputs; ++o) {
      char spec = golden.output[static_cast<size_t>(o)];
      if (spec == '-') continue;
      bool bit_on = asserted(onset, nv + o);
      bool bit_dc = asserted(dcset, nv + o);
      if (bit_dc) continue;
      if (bit_on != (spec == '1'))
        return "state " + fsm.state_names[static_cast<size_t>(present)] +
               ": output " + std::to_string(o) + " mismatch";
    }
  }
  return "";
}

}  // namespace picola
