#include "stateassign/blif.h"

#include <cassert>
#include <sstream>

namespace picola {

std::string write_blif(const Fsm& fsm, const Encoding& enc,
                       const Cover& cover, const std::string& model_name) {
  const CubeSpace& s = cover.space();
  const int ni = fsm.num_inputs;
  const int nv = enc.num_bits;
  const int no = fsm.num_outputs;
  const int ov = s.output_var();
  assert(ov >= 0 && s.parts(ov) == nv + no);
  assert(s.num_vars() == ni + nv + 1);

  std::ostringstream os;
  os << ".model " << (model_name.empty() ? fsm.name : model_name) << '\n';
  os << ".inputs";
  for (int i = 0; i < ni; ++i) os << " in" << i;
  os << '\n';
  os << ".outputs";
  for (int o = 0; o < no; ++o) os << " out" << o;
  os << '\n';

  // One latch per state bit; initial value from the reset state's code.
  uint32_t reset_code = enc.code(fsm.reset_state);
  for (int b = 0; b < nv; ++b) {
    os << ".latch ns" << b << " s" << b << ' '
       << ((reset_code >> b) & 1u) << '\n';
  }

  // One single-output block per net.
  auto emit_net = [&](int part, const std::string& net) {
    os << ".names";
    for (int i = 0; i < ni; ++i) os << " in" << i;
    for (int b = 0; b < nv; ++b) os << " s" << b;
    os << ' ' << net << '\n';
    for (const Cube& c : cover.cubes()) {
      if (!c.test(s, ov, part)) continue;
      std::string row;
      static const char sym[] = {'0', '1', '-', '~'};
      for (int v = 0; v < ni + nv; ++v)
        row += sym[c.binary_value(s, v)];
      os << row << " 1\n";
    }
  };
  for (int b = 0; b < nv; ++b) emit_net(b, "ns" + std::to_string(b));
  for (int o = 0; o < no; ++o) emit_net(nv + o, "out" + std::to_string(o));

  os << ".end\n";
  return os.str();
}

}  // namespace picola
