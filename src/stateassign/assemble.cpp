#include "stateassign/assemble.h"

#include <cassert>

#include "core/input_encoding.h"

namespace picola {

CubeSpace encoded_space(const Fsm& fsm, const Encoding& enc) {
  return CubeSpace::fsm_layout(fsm.num_inputs + enc.num_bits, 0,
                               enc.num_bits + fsm.num_outputs);
}

namespace {

/// Write `code` into the state-bit variables [ni, ni+nv) of `c`.
void set_state_bits(const CubeSpace& s, int ni, const Encoding& enc,
                    uint32_t code, Cube* c) {
  for (int b = 0; b < enc.num_bits; ++b)
    c->set_binary(s, ni + b, static_cast<int>((code >> b) & 1u));
}

/// Write a CodeCube literal into the state-bit variables.
void set_state_cube(const CubeSpace& s, int ni, const Encoding& enc,
                    const CodeCube& cc, Cube* c) {
  for (int b = 0; b < enc.num_bits; ++b) {
    uint32_t bit = uint32_t{1} << b;
    if (cc.care & bit)
      c->set_binary(s, ni + b, (cc.value & bit) ? 1 : 0);
  }
}

/// Dc cubes for the unused state codes: any input, every output free.
void add_unused_code_dc(const Fsm& fsm, const Encoding& enc,
                        const CubeSpace& s, Cover* dcset) {
  for (uint32_t u : enc.unused_codes()) {
    Cube c = Cube::full(s);
    set_state_bits(s, fsm.num_inputs, enc, u, &c);
    dcset->add(std::move(c));
  }
}

}  // namespace

void encode_transition_table(const Fsm& fsm, const Encoding& enc,
                             Cover* onset, Cover* dcset) {
  CubeSpace s = encoded_space(fsm, enc);
  const int ni = fsm.num_inputs;
  const int nv = enc.num_bits;
  const int ov = s.output_var();
  *onset = Cover(s);
  *dcset = Cover(s);

  for (const auto& t : fsm.transitions) {
    Cube base = Cube::full(s);
    for (int v = 0; v < ni; ++v) {
      char ch = t.input[static_cast<size_t>(v)];
      if (ch == '0') base.set_binary(s, v, 0);
      if (ch == '1') base.set_binary(s, v, 1);
    }
    set_state_bits(s, ni, enc, enc.code(t.from), &base);

    Cube on = base;
    on.clear_var(s, ov);
    bool any_on = false;
    if (t.to != Transition::kAnyState) {
      uint32_t code = enc.code(t.to);
      for (int b = 0; b < nv; ++b) {
        if ((code >> b) & 1u) {
          on.set(s, ov, b);
          any_on = true;
        }
      }
    }
    for (int o = 0; o < fsm.num_outputs; ++o) {
      if (t.output[static_cast<size_t>(o)] == '1') {
        on.set(s, ov, nv + o);
        any_on = true;
      }
    }
    if (any_on) onset->add(std::move(on));

    Cube dc = base;
    dc.clear_var(s, ov);
    bool any_dc = false;
    if (t.to == Transition::kAnyState) {
      for (int b = 0; b < nv; ++b) dc.set(s, ov, b);
      any_dc = true;
    }
    for (int o = 0; o < fsm.num_outputs; ++o) {
      if (t.output[static_cast<size_t>(o)] == '-') {
        dc.set(s, ov, nv + o);
        any_dc = true;
      }
    }
    if (any_dc) dcset->add(std::move(dc));
  }
  add_unused_code_dc(fsm, enc, s, dcset);
}

void encode_one_hot_table(const Fsm& fsm, Cover* onset, Cover* dcset) {
  const int ns = fsm.num_states();
  const int ni = fsm.num_inputs;
  const int no = fsm.num_outputs;
  assert(ns <= 31 && "one-hot state registers wider than 31 are unsupported");
  CubeSpace s = CubeSpace::fsm_layout(ni + ns, 0, ns + no);
  const int ov = s.output_var();
  *onset = Cover(s);
  *dcset = Cover(s);

  for (const auto& t : fsm.transitions) {
    Cube base = Cube::full(s);
    for (int v = 0; v < ni; ++v) {
      char ch = t.input[static_cast<size_t>(v)];
      if (ch == '0') base.set_binary(s, v, 0);
      if (ch == '1') base.set_binary(s, v, 1);
    }
    // Present state: only its own bit is tested (the classic one-hot
    // single-literal trick is legal because invalid patterns are dc).
    base.set_binary(s, ni + t.from, 1);

    Cube on = base;
    on.clear_var(s, ov);
    bool any_on = false;
    if (t.to != Transition::kAnyState) {
      on.set(s, ov, t.to);
      any_on = true;
    }
    for (int o = 0; o < no; ++o) {
      if (t.output[static_cast<size_t>(o)] == '1') {
        on.set(s, ov, ns + o);
        any_on = true;
      }
    }
    if (any_on) onset->add(std::move(on));

    Cube dc = base;
    dc.clear_var(s, ov);
    bool any_dc = false;
    if (t.to == Transition::kAnyState) {
      for (int q = 0; q < ns; ++q) dc.set(s, ov, q);
      any_dc = true;
    }
    for (int o = 0; o < no; ++o) {
      if (t.output[static_cast<size_t>(o)] == '-') {
        dc.set(s, ov, ns + o);
        any_dc = true;
      }
    }
    if (any_dc) dcset->add(std::move(dc));
  }

  // Invalid one-hot patterns are don't-cares: all state bits zero, or any
  // two state bits set.
  {
    Cube zero = Cube::full(s);
    for (int q = 0; q < ns; ++q) zero.set_binary(s, ni + q, 0);
    dcset->add(std::move(zero));
    for (int a = 0; a < ns; ++a) {
      for (int b = a + 1; b < ns; ++b) {
        Cube two = Cube::full(s);
        two.set_binary(s, ni + a, 1);
        two.set_binary(s, ni + b, 1);
        dcset->add(std::move(two));
      }
    }
  }
}

void encode_symbolic_cover(const DerivedConstraints& derived, const Fsm& fsm,
                           const Encoding& enc, Cover* onset, Cover* dcset) {
  CubeSpace es = encoded_space(fsm, enc);
  const CubeSpace& ss = derived.space;  // symbolic space
  const int ni = fsm.num_inputs;
  const int nv = enc.num_bits;
  const int ns = fsm.num_states();
  const int smv = ss.mv_var();
  const int sov = ss.output_var();
  const int eov = es.output_var();
  *onset = Cover(es);
  *dcset = Cover(es);

  for (const Cube& sc : derived.minimized.cubes()) {
    // Present-state literal -> a cover over the state bits.
    std::vector<int> members;
    for (int p = 0; p < ns; ++p)
      if (sc.test(ss, smv, p)) members.push_back(p);
    assert(!members.empty());

    std::vector<CodeCube> state_cubes = encode_symbol_group(members, enc);

    for (const CodeCube& scc : state_cubes) {
      Cube out = Cube::full(es);
      // Primary-input literals copy over (same variable order).
      for (int v = 0; v < ni; ++v) {
        int val = sc.binary_value(ss, v);
        if (val == 0 || val == 1) out.set_binary(es, v, val);
      }
      set_state_cube(es, ni, enc, scc, &out);
      // Output literal: next-state one-hot parts [0, ns) map onto code
      // bits; primary outputs [ns, ns+no) map onto [nv, nv+no).
      out.clear_var(es, eov);
      bool any = false;
      uint32_t next_bits = 0;
      for (int q = 0; q < ns; ++q)
        if (sc.test(ss, sov, q)) next_bits |= enc.code(q);
      for (int b = 0; b < nv; ++b) {
        if ((next_bits >> b) & 1u) {
          out.set(es, eov, b);
          any = true;
        }
      }
      for (int o = 0; o < fsm.num_outputs; ++o) {
        if (sc.test(ss, sov, ns + o)) {
          out.set(es, eov, nv + o);
          any = true;
        }
      }
      if (any) onset->add(std::move(out));
    }
  }

  // The dc-set comes from the raw table ('*' rows, '-' outputs) plus the
  // unused codes; reuse the transition-table encoding of the dc plane.
  Cover unused_onset(es);
  encode_transition_table(fsm, enc, &unused_onset, dcset);
}

}  // namespace picola
