#pragma once
// Assembling the encoded two-level implementation of an FSM: substitute
// state codes into either the raw transition table or the minimised
// symbolic cover, producing a binary multi-output cover
// (inputs = primary inputs + state bits; outputs = next-state bits +
// primary outputs).

#include "constraints/derive.h"
#include "encoders/encoding.h"
#include "kiss/fsm.h"
#include "pla/pla.h"

namespace picola {

/// The encoded combinational space of `fsm` under `enc`:
/// fsm_layout(num_inputs + enc.num_bits, 0, enc.num_bits + num_outputs).
CubeSpace encoded_space(const Fsm& fsm, const Encoding& enc);

/// Encode the raw transition table: one cube per transition (next-state
/// code bits + '1' outputs in the onset; '*' rows and '-' outputs in the
/// dc-set).  Unused state codes are added to the dc-set with every output
/// free.
void encode_transition_table(const Fsm& fsm, const Encoding& enc,
                             Cover* onset, Cover* dcset);

/// Encode a minimised symbolic cover (the NOVA/PICOLA flow): the
/// present-state literal of each symbolic cube is implemented over the
/// state bits by the Theorem-I constructive cover when its precondition
/// holds, and by an espresso-minimised cover of the member codes (unused
/// codes as dc) otherwise.  Satisfied groups become single supercubes
/// either way.
void encode_symbolic_cover(const DerivedConstraints& derived,
                           const Fsm& fsm, const Encoding& enc,
                           Cover* onset, Cover* dcset);

/// One-hot encoding of the transition table (one state bit per state).
/// The invalid code patterns (no bit set / two bits set) are added to the
/// dc-set compactly — O(n^2) cubes instead of 2^n minterms.  Requires
/// fsm.num_states() <= 31.
void encode_one_hot_table(const Fsm& fsm, Cover* onset, Cover* dcset);

}  // namespace picola
