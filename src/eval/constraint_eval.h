#pragma once
// Evaluation of an encoding against a constraint set, using the paper's
// objective: each face constraint defines a Boolean function over the code
// bits whose on-set is the member codes, off-set the non-member codes and
// dc-set the unused codes; the cost of the constraint is the number of
// product terms of a minimised SOP of that function (footnote 2 of the
// paper).  The reported "cubes" value of Table I is the sum over all
// constraints.

#include <vector>

#include "constraints/face_constraint.h"
#include "encoders/encoding.h"
#include "espresso/espresso.h"

namespace picola {

/// Minimised SOP cube count of one encoded constraint.
int constraint_cube_count(const FaceConstraint& c, const Encoding& enc);

/// Per-constraint cube counts plus their sum (the paper's Table I metric).
struct ConstraintEvalResult {
  std::vector<int> per_constraint;
  int total_cubes = 0;
  int satisfied = 0;  ///< constraints implemented by a single cube
};

ConstraintEvalResult evaluate_constraints(const ConstraintSet& cs,
                                          const Encoding& enc);

/// The minimised SOP cover itself (for inspection / examples).
Cover constraint_cover(const FaceConstraint& c, const Encoding& enc);

}  // namespace picola
