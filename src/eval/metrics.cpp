#include "eval/metrics.h"

#include <cstdio>

namespace picola {

EncodingQuality encoding_quality(const ConstraintSet& cs, const Encoding& enc) {
  EncodingQuality q;
  q.satisfied_constraints = count_satisfied_constraints(cs, enc);
  q.satisfied_dichotomies = count_satisfied_dichotomies(cs, enc);
  q.total_dichotomies = cs.num_seed_dichotomies();
  return q;
}

std::string format_ratio(double x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", x);
  return buf;
}

std::string format_service_stats(const ServiceStats& s) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "jobs %ld/%ld, cache %ld hit / %ld miss, %ld restart tasks, "
                "queue hwm %zu, %.1f ms total (max %.1f)",
                s.jobs_completed, s.jobs_submitted, s.cache_hits,
                s.cache_misses, s.restart_tasks, s.queue_high_water,
                s.total_job_ms, s.max_job_ms);
  return buf;
}

std::string service_stats_json(const ServiceStats& s) {
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "{\"jobs_submitted\":%ld,\"jobs_completed\":%ld,\"cache_hits\":%ld,"
      "\"cache_misses\":%ld,\"restart_tasks\":%ld,\"queue_high_water\":%zu,"
      "\"total_job_ms\":%.3f,\"max_job_ms\":%.3f}",
      s.jobs_submitted, s.jobs_completed, s.cache_hits, s.cache_misses,
      s.restart_tasks, s.queue_high_water, s.total_job_ms, s.max_job_ms);
  return buf;
}

}  // namespace picola
