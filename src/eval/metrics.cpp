#include "eval/metrics.h"

#include <cstdio>
#include <sstream>

namespace picola {

EncodingQuality encoding_quality(const ConstraintSet& cs, const Encoding& enc) {
  EncodingQuality q;
  q.satisfied_constraints = count_satisfied_constraints(cs, enc);
  q.satisfied_dichotomies = count_satisfied_dichotomies(cs, enc);
  q.total_dichotomies = cs.num_seed_dichotomies();
  return q;
}

std::string format_ratio(double x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", x);
  return buf;
}

std::string format_service_stats(const ServiceStats& s) {
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "jobs %ld/%ld, cache %ld hit / %ld miss / %ld joined "
                "/ %ld evicted, %ld restart tasks, "
                "queue hwm %zu, %.1f ms total (max %.1f)",
                s.jobs_completed, s.jobs_submitted, s.cache_hits,
                s.cache_misses, s.inflight_joins, s.cache_evictions,
                s.restart_tasks, s.queue_high_water, s.total_job_ms,
                s.max_job_ms);
  return buf;
}

std::string service_stats_json(const ServiceStats& s) {
  char buf[448];
  std::snprintf(
      buf, sizeof buf,
      "{\"jobs_submitted\":%ld,\"jobs_completed\":%ld,\"cache_hits\":%ld,"
      "\"inflight_joins\":%ld,\"cache_misses\":%ld,\"cache_evictions\":%ld,"
      "\"restart_tasks\":%ld,\"queue_high_water\":%zu,"
      "\"total_job_ms\":%.3f,\"max_job_ms\":%.3f}",
      s.jobs_submitted, s.jobs_completed, s.cache_hits, s.inflight_joins,
      s.cache_misses, s.cache_evictions, s.restart_tasks, s.queue_high_water,
      s.total_job_ms, s.max_job_ms);
  return buf;
}

std::string picola_stats_json(const PicolaStats& s) {
  std::ostringstream os;
  os << "{\"guides_added\":" << s.guides_added
     << ",\"constraints_deactivated\":" << s.constraints_deactivated
     << ",\"satisfied_constraints\":" << s.satisfied_constraints
     << ",\"classify_calls\":" << s.classify_calls
     << ",\"classify_ms\":" << s.classify_ms << ",\"guide_ms\":" << s.guide_ms
     << ",\"solve_ms\":" << s.solve_ms << ",\"infeasible_per_column\":[";
  for (size_t i = 0; i < s.infeasible_per_column.size(); ++i)
    os << (i ? "," : "") << s.infeasible_per_column[i];
  os << "],\"column_ms\":[";
  for (size_t i = 0; i < s.column_ms.size(); ++i)
    os << (i ? "," : "") << s.column_ms[i];
  os << "]}";
  return os.str();
}

}  // namespace picola
