#include "eval/metrics.h"

#include <cstdio>

namespace picola {

EncodingQuality encoding_quality(const ConstraintSet& cs, const Encoding& enc) {
  EncodingQuality q;
  q.satisfied_constraints = count_satisfied_constraints(cs, enc);
  q.satisfied_dichotomies = count_satisfied_dichotomies(cs, enc);
  q.total_dichotomies = cs.num_seed_dichotomies();
  return q;
}

std::string format_ratio(double x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", x);
  return buf;
}

}  // namespace picola
