#pragma once
// Small measurement helpers shared by the benches and the state-assignment
// tool: wall-clock timing and encoding quality summaries.

#include <chrono>
#include <string>

#include "constraints/dichotomy.h"
#include "core/picola.h"
#include "encoders/encoding.h"

namespace picola {

/// Wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  double elapsed_ms() const {
    auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Quality summary of an encoding against a constraint set.
struct EncodingQuality {
  int satisfied_constraints = 0;
  long satisfied_dichotomies = 0;
  long total_dichotomies = 0;
};

EncodingQuality encoding_quality(const ConstraintSet& cs, const Encoding& enc);

/// Render a ratio like "0.93" with two decimals.
std::string format_ratio(double x);

/// Counters of one EncodingService (src/service) instance, snapshot at a
/// point in time.  Defined here so the benches and CLI front-ends can
/// report service behaviour with the other metrics.  Since the obs PR
/// this struct is a *view*: EncodingService keeps the live counts in its
/// per-instance obs::MetricsRegistry and stats() renders them into this
/// struct, so the old API and its JSON shape keep working.
struct ServiceStats {
  long jobs_submitted = 0;
  long jobs_completed = 0;
  long cache_hits = 0;      ///< submissions answered from a *finished* job
  long inflight_joins = 0;  ///< submissions that joined an in-flight twin
  long cache_misses = 0;    ///< submissions that had to be computed
  long cache_evictions = 0; ///< LRU evictions in the result cache
  long restart_tasks = 0;   ///< pool tasks spawned by the restart fan-out
  size_t queue_high_water = 0;  ///< deepest pool queue observed
  double total_job_ms = 0;      ///< sum of computed jobs' wall times
  double max_job_ms = 0;        ///< slowest computed job
};

/// One-line human-readable rendering of the counters.
std::string format_service_stats(const ServiceStats& s);

/// JSON object rendering (keys = field names), for --json front-ends and
/// the batch-throughput bench.
std::string service_stats_json(const ServiceStats& s);

/// JSON rendering of one run's PicolaStats (the `picola encode
/// --stats-json` payload; timing fields need obs enabled, see
/// core/picola.h).
std::string picola_stats_json(const PicolaStats& s);

}  // namespace picola
