#pragma once
// Small measurement helpers shared by the benches and the state-assignment
// tool: wall-clock timing and encoding quality summaries.

#include <chrono>
#include <string>

#include "constraints/dichotomy.h"
#include "encoders/encoding.h"

namespace picola {

/// Wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  double elapsed_ms() const {
    auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Quality summary of an encoding against a constraint set.
struct EncodingQuality {
  int satisfied_constraints = 0;
  long satisfied_dichotomies = 0;
  long total_dichotomies = 0;
};

EncodingQuality encoding_quality(const ConstraintSet& cs, const Encoding& enc);

/// Render a ratio like "0.93" with two decimals.
std::string format_ratio(double x);

}  // namespace picola
