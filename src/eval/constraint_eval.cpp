#include "eval/constraint_eval.h"

#include "obs/obs.h"

namespace picola {

namespace {

Cube code_minterm(const CubeSpace& s, uint32_t code, int num_bits) {
  Cube c = Cube::full(s);
  for (int b = 0; b < num_bits; ++b)
    c.set_binary(s, b, static_cast<int>((code >> b) & 1u));
  return c;
}

}  // namespace

Cover constraint_cover(const FaceConstraint& c, const Encoding& enc) {
  CubeSpace s = CubeSpace::binary(enc.num_bits);
  Cover onset(s);
  for (int m : c.members)
    onset.add(code_minterm(s, enc.code(m), enc.num_bits));
  Cover dc(s);
  for (uint32_t u : enc.unused_codes())
    dc.add(code_minterm(s, u, enc.num_bits));
  return esp::minimize_cover(onset, dc);
}

int constraint_cube_count(const FaceConstraint& c, const Encoding& enc) {
  return constraint_cover(c, enc).size();
}

ConstraintEvalResult evaluate_constraints(const ConstraintSet& cs,
                                          const Encoding& enc) {
  PICOLA_OBS_SPAN(span_eval, "espresso/eval");
  ConstraintEvalResult r;
  r.per_constraint.reserve(static_cast<size_t>(cs.size()));
  for (const auto& c : cs.constraints) {
    int n = constraint_cube_count(c, enc);
    r.per_constraint.push_back(n);
    r.total_cubes += n;
    if (n == 1) ++r.satisfied;
  }
  return r;
}

}  // namespace picola
