#include "constraints/constraint_matrix.h"

#include <cassert>

namespace picola {

namespace {
int clog2(int n) {
  int d = 0;
  while ((1L << d) < n) ++d;  // long: no UB when n > 2^30
  return d;
}
}  // namespace

ConstraintMatrix::ConstraintMatrix(const ConstraintSet& cs, int nv)
    : num_symbols_(cs.num_symbols), nv_(nv) {
  rows_.reserve(static_cast<size_t>(cs.size()));
  for (const auto& c : cs.constraints) {
    Row row;
    row.constraint = c;
    row.entries.assign(static_cast<size_t>(num_symbols_), 0);
    for (int m : c.members) row.entries[static_cast<size_t>(m)] = kMember;
    rows_.push_back(std::move(row));
  }
}

int ConstraintMatrix::add_constraint(
    const FaceConstraint& c,
    const std::vector<std::vector<int>>& generated_columns) {
  assert(static_cast<int>(generated_columns.size()) == columns_generated_);
  Row row;
  row.constraint = c;
  row.entries.assign(static_cast<size_t>(num_symbols_), 0);
  for (int m : c.members) row.entries[static_cast<size_t>(m)] = kMember;
  for (int i = 0; i < columns_generated_; ++i)
    apply_column(&row, generated_columns[static_cast<size_t>(i)], i);
  rows_.push_back(std::move(row));
  return num_constraints() - 1;
}

void ConstraintMatrix::apply_column(Row* row, const std::vector<int>& bits,
                                    int col_index) {
  const auto& members = row->constraint.members;
  int v = bits[static_cast<size_t>(members[0])];
  bool uniform = true;
  for (int m : members) {
    if (bits[static_cast<size_t>(m)] != v) {
      uniform = false;
      break;
    }
  }
  if (!uniform) {
    ++row->free;
    return;
  }
  ++row->pinned;
  for (int j = 0; j < num_symbols_; ++j) {
    auto& e = row->entries[static_cast<size_t>(j)];
    if (e == 0 && bits[static_cast<size_t>(j)] == 1 - v) e = col_index + 1;
  }
}

void ConstraintMatrix::record_column(const std::vector<int>& bits) {
  assert(static_cast<int>(bits.size()) == num_symbols_);
  assert(columns_generated_ < nv_);
  for (auto& row : rows_) apply_column(&row, bits, columns_generated_);
  ++columns_generated_;
}

bool ConstraintMatrix::satisfied(int k) const {
  const Row& row = rows_[static_cast<size_t>(k)];
  for (int e : row.entries)
    if (e == 0) return false;
  return true;
}

int ConstraintMatrix::min_super_dim(int k) const {
  const Row& row = rows_[static_cast<size_t>(k)];
  int by_size = clog2(row.constraint.size());
  return by_size > row.free ? by_size : row.free;
}

std::vector<int> ConstraintMatrix::potential_intruders(int k) const {
  const Row& row = rows_[static_cast<size_t>(k)];
  std::vector<int> out;
  for (int j = 0; j < num_symbols_; ++j)
    if (row.entries[static_cast<size_t>(j)] == 0) out.push_back(j);
  return out;
}

}  // namespace picola
