#pragma once
// Text format for standalone input-encoding problems (".con"):
//
//   # comment
//   .n 15                # anonymous symbols 0..14, or:
//   .names idle run halt # named symbols (choose one of .n/.names)
//   0 1 5                # one constraint per line (indices or names)
//   idle run * 2.5       # optional "* <weight>" suffix
//   .e
//
// Used by the CLI driver and the examples so encoding problems can be
// shipped independently of an FSM.
//
// The parser rejects malformed constraint lines with a line diagnostic:
// out-of-range or duplicate members, fewer than 2 distinct symbols, and
// non-positive weights.  Well-formed lines are canonicalised by
// ConstraintSet::add (members sorted, repeated groups merged into one
// weight), so every consumer — encoder, service fingerprint, verifier —
// sees the same normalised set (see ConstraintSet::validate()).

#include <iosfwd>
#include <string>
#include <vector>

#include "constraints/face_constraint.h"

namespace picola {

struct ConstraintParseResult {
  ConstraintSet set;
  std::vector<std::string> symbol_names;  ///< empty when .n was used
  std::string error;
  bool ok() const { return error.empty(); }
};

ConstraintParseResult parse_constraints(const std::string& text);
ConstraintParseResult parse_constraints(std::istream& in);

/// Serialise; uses names when `names` is non-empty (must match
/// set.num_symbols).
std::string write_constraints(const ConstraintSet& set,
                              const std::vector<std::string>& names = {});

}  // namespace picola
