#pragma once
// The paper's constraint-matrix notation (§3.1).
//
// Entry (k, j) for a non-member symbol j of constraint L_k starts at 0 and
// is overwritten with i+1 when generated code column i satisfies the seed
// dichotomy (L_k : {j}): members uniform in the column, j opposite.  The
// matrix therefore tracks, at any point of the column-by-column encoding:
//   * which dichotomies are already satisfied and by which column,
//   * the potential intruder set I_k (entries still 0),
//   * dim[super(L_k)] bounds via the number of "participating" columns
//     (columns in which the members are uniform, pinning one literal).

#include <vector>

#include "constraints/face_constraint.h"

namespace picola {

/// Mutable encoding-time state of a constraint set over nv code columns.
class ConstraintMatrix {
 public:
  /// Entry value marking a member position.
  static constexpr int kMember = -1;

  ConstraintMatrix(const ConstraintSet& cs, int nv);

  int num_symbols() const { return num_symbols_; }
  int num_constraints() const { return static_cast<int>(rows_.size()); }
  int nv() const { return nv_; }
  int columns_generated() const { return columns_generated_; }
  int columns_remaining() const { return nv_ - columns_generated_; }

  const FaceConstraint& constraint(int k) const {
    return rows_[static_cast<size_t>(k)].constraint;
  }

  /// kMember for members; 0 = dichotomy not yet satisfied; i+1 = satisfied
  /// by column i.
  int entry(int k, int j) const {
    return rows_[static_cast<size_t>(k)].entries[static_cast<size_t>(j)];
  }

  /// Active constraints participate in the cost function; infeasible
  /// originals are deactivated when their guide is added.
  bool active(int k) const { return rows_[static_cast<size_t>(k)].active; }
  void deactivate(int k) { rows_[static_cast<size_t>(k)].active = false; }

  /// Constraints flagged by Classify() as unsatisfiable.  They may remain
  /// active (their dichotomies still shrink the intruder set) but are not
  /// re-classified.
  bool infeasible(int k) const {
    return rows_[static_cast<size_t>(k)].infeasible;
  }
  void mark_infeasible(int k) {
    rows_[static_cast<size_t>(k)].infeasible = true;
  }

  /// Index of the guide row currently attached to constraint `k`, or -1.
  int guide_of(int k) const { return rows_[static_cast<size_t>(k)].guide; }
  void set_guide_of(int k, int guide_row) {
    rows_[static_cast<size_t>(k)].guide = guide_row;
  }

  /// Scale the weight used by the cost function for constraint `k`.
  void scale_weight(int k, double factor) {
    rows_[static_cast<size_t>(k)].constraint.weight *= factor;
  }

  /// Append a constraint mid-encoding (guide constraints).  Its dichotomy
  /// entries start unsatisfied; already-generated columns are replayed so
  /// the bookkeeping (pinned/free columns, satisfied entries) is exact.
  /// Returns the new constraint's index.
  int add_constraint(const FaceConstraint& c,
                     const std::vector<std::vector<int>>& generated_columns);

  /// Record a freshly generated code column (bits[j] ∈ {0,1} per symbol).
  void record_column(const std::vector<int>& bits);

  /// All non-member entries satisfied?
  bool satisfied(int k) const;

  /// Columns generated so far in which the members are uniform
  /// ("participating" columns: each pins a literal of super(L_k)).
  int pinned_columns(int k) const {
    return rows_[static_cast<size_t>(k)].pinned;
  }
  /// Columns generated so far in which the members differ (each contributes
  /// a free dimension to super(L_k)).
  int free_columns(int k) const { return rows_[static_cast<size_t>(k)].free; }

  /// Paper §3.1: dim[super(L_k)] can still end anywhere in
  /// [free_columns, nv - pinned_columns].
  int max_super_dim(int k) const { return nv_ - pinned_columns(k); }
  int min_super_dim(int k) const;

  /// Non-member symbols whose dichotomy is still unsatisfied (the potential
  /// intruder set I_k under the partial encoding).
  std::vector<int> potential_intruders(int k) const;

 private:
  struct Row {
    FaceConstraint constraint;
    std::vector<int> entries;  ///< kMember / 0 / column+1
    int pinned = 0;
    int free = 0;
    bool active = true;
    bool infeasible = false;
    int guide = -1;  ///< row index of the attached guide constraint
  };

  void apply_column(Row* row, const std::vector<int>& bits, int col_index);

  int num_symbols_;
  int nv_;
  int columns_generated_ = 0;
  std::vector<Row> rows_;
};

}  // namespace picola
