#pragma once
// Seed dichotomies and satisfaction predicates (paper §2).
//
// A seed dichotomy of constraint L is (L : {j}) for one symbol j ∉ L; it is
// satisfied when some encoding column gives every member of L one value and
// j the other.  A face constraint is satisfied iff all of its seed
// dichotomies are — equivalently, iff the supercube of its members' codes
// contains no non-member code.

#include <vector>

#include "constraints/face_constraint.h"
#include "encoders/encoding.h"

namespace picola {

/// One seed dichotomy: (constraint's members : {outsider}).
struct SeedDichotomy {
  int constraint = 0;  ///< index into a ConstraintSet
  int outsider = 0;    ///< the single excluded symbol
};

/// All seed dichotomies of a constraint set, in (constraint, outsider)
/// order.
std::vector<SeedDichotomy> seed_dichotomies(const ConstraintSet& cs);

/// True when some column separates all members (uniform value) from the
/// outsider (opposite value).
bool dichotomy_satisfied(const FaceConstraint& c, int outsider,
                         const Encoding& enc);

/// True when the supercube of member codes contains no non-member code.
bool constraint_satisfied(const FaceConstraint& c, const Encoding& enc);

/// The intruder set I of a constraint (paper §2): non-member symbols whose
/// codes lie inside the supercube of the members' codes.
std::vector<int> intruders(const FaceConstraint& c, const Encoding& enc);

/// Number of satisfied constraints in the set.
int count_satisfied_constraints(const ConstraintSet& cs, const Encoding& enc);

/// Number of satisfied seed dichotomies over the whole set.
long count_satisfied_dichotomies(const ConstraintSet& cs, const Encoding& enc);

}  // namespace picola
