#include "constraints/constraint_io.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/parse_util.h"

namespace picola {

namespace {

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string t;
  while (is >> t) toks.push_back(t);
  return toks;
}

}  // namespace

ConstraintParseResult parse_constraints(std::istream& in) {
  ConstraintParseResult res;
  std::string line;
  int lineno = 0;
  bool have_symbols = false;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::vector<std::string> toks = split_ws(line);
    if (toks.empty()) continue;
    auto fail = [&](const std::string& msg) {
      res.error = "line " + std::to_string(lineno) + ": " + msg;
    };
    if (toks[0] == ".n") {
      if (toks.size() != 2) { fail(".n needs one argument"); return res; }
      auto v = parse_int(toks[1]);
      if (!v) { fail("bad .n value"); return res; }
      res.set.num_symbols = *v;
      if (res.set.num_symbols < 2) { fail("need at least 2 symbols"); return res; }
      have_symbols = true;
    } else if (toks[0] == ".names") {
      res.symbol_names.assign(toks.begin() + 1, toks.end());
      res.set.num_symbols = static_cast<int>(res.symbol_names.size());
      if (res.set.num_symbols < 2) { fail("need at least 2 symbols"); return res; }
      have_symbols = true;
    } else if (toks[0] == ".e" || toks[0] == ".end") {
      break;
    } else if (toks[0][0] == '.') {
      fail("unknown directive " + toks[0]);
      return res;
    } else {
      if (!have_symbols) { fail("constraint before .n/.names"); return res; }
      double weight = 1.0;
      size_t end = toks.size();
      if (end >= 2 && toks[end - 2] == "*") {
        auto w = parse_double(toks[end - 1]);
        if (!w) {
          fail("bad weight");
          return res;
        }
        if (!(*w > 0) || !std::isfinite(*w)) {
          fail("weight must be positive and finite");
          return res;
        }
        weight = *w;
        end -= 2;
      }
      std::vector<int> members;
      for (size_t i = 0; i < end; ++i) {
        int id = -1;
        if (!res.symbol_names.empty()) {
          auto it = std::find(res.symbol_names.begin(), res.symbol_names.end(),
                              toks[i]);
          if (it != res.symbol_names.end())
            id = static_cast<int>(it - res.symbol_names.begin());
        }
        if (id < 0) {
          auto parsed = parse_int(toks[i]);
          if (!parsed) {
            fail("unknown symbol " + toks[i]);
            return res;
          }
          id = *parsed;
        }
        if (id < 0 || id >= res.set.num_symbols) {
          fail("symbol out of range: " + toks[i]);
          return res;
        }
        if (std::find(members.begin(), members.end(), id) != members.end()) {
          fail("duplicate member " + toks[i]);
          return res;
        }
        members.push_back(id);
      }
      // A group of fewer than 2 distinct symbols imposes nothing and is
      // almost certainly a typo; add() would drop it silently, so reject
      // with a line diagnostic here instead.
      if (members.size() < 2) {
        fail("constraint needs at least 2 distinct symbols");
        return res;
      }
      res.set.add(std::move(members), weight);
    }
  }
  if (!have_symbols) res.error = "missing .n or .names";
  return res;
}

ConstraintParseResult parse_constraints(const std::string& text) {
  std::istringstream is(text);
  return parse_constraints(is);
}

std::string write_constraints(const ConstraintSet& set,
                              const std::vector<std::string>& names) {
  std::ostringstream os;
  if (!names.empty()) {
    os << ".names";
    for (const auto& n : names) os << ' ' << n;
    os << '\n';
  } else {
    os << ".n " << set.num_symbols << '\n';
  }
  for (const auto& c : set.constraints) {
    for (size_t i = 0; i < c.members.size(); ++i) {
      if (i) os << ' ';
      int id = c.members[i];
      if (!names.empty())
        os << names[static_cast<size_t>(id)];
      else
        os << id;
    }
    if (c.weight != 1.0) os << " * " << c.weight;
    os << '\n';
  }
  os << ".e\n";
  return os.str();
}

}  // namespace picola
