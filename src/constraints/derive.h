#pragma once
// Face-constraint derivation by symbolic (multi-valued) minimisation.
//
// The FSM's present state becomes a multi-valued input variable in one-hot
// positional notation; the next state is replaced by a one-hot code (one
// output per state), exactly as the paper derives its input-encoding
// problems from the IWLS'93 machines.  After multi-valued minimisation,
// every cube whose state literal groups more than one (and not every)
// state yields a face constraint on those states.

#include "constraints/face_constraint.h"
#include "cube/cover.h"
#include "espresso/espresso.h"
#include "kiss/fsm.h"

namespace picola {

/// Options for the derivation.
struct DeriveOptions {
  /// Passed through to the symbolic minimiser.
  esp::EspressoOptions espresso;
};

/// Output of the derivation: the constraints plus the minimised symbolic
/// cover they came from (kept for diagnostics and for the state-assignment
/// tool, which encodes this cover).
struct DerivedConstraints {
  ConstraintSet set;
  CubeSpace space;          ///< fsm_layout(inputs, states, states+outputs)
  Cover symbolic_onset;     ///< original (unminimised) onset
  Cover symbolic_dc;        ///< dc-set (unspecified next states / outputs)
  Cover minimized;          ///< minimised symbolic cover
};

/// Build the one-hot symbolic cover of `fsm`.  Output variable parts are
/// laid out as [next-state one-hot | primary outputs].
void build_symbolic_cover(const Fsm& fsm, Cover* onset, Cover* dcset);

/// Run the full derivation (symbolic minimisation + constraint
/// extraction).
DerivedConstraints derive_face_constraints(const Fsm& fsm,
                                           const DeriveOptions& opt = {});

/// Extract face constraints from a minimised symbolic cover (exposed for
/// tests and for the paper's Figure 1 example).
ConstraintSet extract_constraints(const Cover& minimized, int num_symbols,
                                  int mv_var);

}  // namespace picola
