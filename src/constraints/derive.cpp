#include "constraints/derive.h"

#include <cassert>

namespace picola {

void build_symbolic_cover(const Fsm& fsm, Cover* onset, Cover* dcset) {
  const int ns = fsm.num_states();
  const int no = fsm.num_outputs;
  CubeSpace s = CubeSpace::fsm_layout(fsm.num_inputs, ns, ns + no);
  const int mv = s.mv_var();
  const int ov = s.output_var();
  *onset = Cover(s);
  *dcset = Cover(s);

  for (const auto& t : fsm.transitions) {
    Cube base = Cube::full(s);
    for (int v = 0; v < fsm.num_inputs; ++v) {
      char ch = t.input[static_cast<size_t>(v)];
      if (ch == '0') base.set_binary(s, v, 0);
      if (ch == '1') base.set_binary(s, v, 1);
    }
    base.clear_var(s, mv);
    base.set(s, mv, t.from);

    // Onset: asserted next-state bit plus '1' outputs.
    Cube on = base;
    on.clear_var(s, ov);
    bool any_on = false;
    if (t.to != Transition::kAnyState) {
      on.set(s, ov, t.to);
      any_on = true;
    }
    for (int o = 0; o < no; ++o) {
      if (t.output[static_cast<size_t>(o)] == '1') {
        on.set(s, ov, ns + o);
        any_on = true;
      }
    }
    if (any_on) onset->add(std::move(on));

    // Dc-set: unspecified next state ('*') makes every next-state bit dc;
    // '-' outputs are dc.
    Cube dc = base;
    dc.clear_var(s, ov);
    bool any_dc = false;
    if (t.to == Transition::kAnyState) {
      for (int q = 0; q < ns; ++q) dc.set(s, ov, q);
      any_dc = true;
    }
    for (int o = 0; o < no; ++o) {
      if (t.output[static_cast<size_t>(o)] == '-') {
        dc.set(s, ov, ns + o);
        any_dc = true;
      }
    }
    if (any_dc) dcset->add(std::move(dc));
  }
}

ConstraintSet extract_constraints(const Cover& minimized, int num_symbols,
                                  int mv_var) {
  assert(mv_var >= 0);
  const CubeSpace& s = minimized.space();
  ConstraintSet cs;
  cs.num_symbols = num_symbols;
  for (const Cube& c : minimized.cubes()) {
    std::vector<int> members;
    for (int p = 0; p < s.parts(mv_var); ++p)
      if (c.test(s, mv_var, p)) members.push_back(p);
    cs.add(std::move(members));  // add() drops trivial/full groups
  }
  return cs;
}

DerivedConstraints derive_face_constraints(const Fsm& fsm,
                                           const DeriveOptions& opt) {
  DerivedConstraints out;
  build_symbolic_cover(fsm, &out.symbolic_onset, &out.symbolic_dc);
  out.space = out.symbolic_onset.space();
  out.minimized =
      esp::minimize_cover(out.symbolic_onset, out.symbolic_dc, opt.espresso);
  out.set =
      extract_constraints(out.minimized, fsm.num_states(), out.space.mv_var());
  return out;
}

}  // namespace picola
