#include "constraints/face_constraint.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace picola {

bool FaceConstraint::contains(int symbol) const {
  return std::binary_search(members.begin(), members.end(), symbol);
}

std::vector<int> FaceConstraint::intersect(const FaceConstraint& other) const {
  std::vector<int> out;
  std::set_intersection(members.begin(), members.end(), other.members.begin(),
                        other.members.end(), std::back_inserter(out));
  return out;
}

std::string FaceConstraint::to_string() const {
  std::ostringstream os;
  os << '{';
  for (size_t i = 0; i < members.size(); ++i) {
    if (i) os << ',';
    os << members[i];
  }
  os << '}';
  if (is_guide) os << "(guide of " << origin << ")";
  return os.str();
}

void ConstraintSet::add(std::vector<int> members, double weight) {
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  if (static_cast<int>(members.size()) < 2) return;
  if (static_cast<int>(members.size()) >= num_symbols) return;
  for (auto& c : constraints) {
    if (c.members == members) {
      c.weight += weight;
      return;
    }
  }
  FaceConstraint c;
  c.members = std::move(members);
  c.weight = weight;
  constraints.push_back(std::move(c));
}

std::string ConstraintSet::validate() const {
  if (num_symbols < 2) return "need at least 2 symbols";
  for (size_t k = 0; k < constraints.size(); ++k) {
    const FaceConstraint& c = constraints[k];
    std::string label = "constraint " + std::to_string(k);
    if (c.size() < 2) return label + ": fewer than 2 members";
    if (c.size() >= num_symbols)
      return label + ": covers every symbol (imposes nothing)";
    for (size_t i = 0; i < c.members.size(); ++i) {
      if (c.members[i] < 0 || c.members[i] >= num_symbols)
        return label + ": member " + std::to_string(c.members[i]) +
               " out of range [0, " + std::to_string(num_symbols) + ")";
      if (i > 0 && c.members[i] <= c.members[i - 1])
        return label + ": members not sorted and unique";
    }
    if (!std::isfinite(c.weight) || c.weight <= 0)
      return label + ": weight must be positive and finite";
    for (size_t j = 0; j < k; ++j)
      if (constraints[j].members == c.members)
        return label + ": duplicate of constraint " + std::to_string(j);
  }
  return "";
}

long ConstraintSet::num_seed_dichotomies() const {
  long n = 0;
  for (const auto& c : constraints) n += num_symbols - c.size();
  return n;
}

std::string ConstraintSet::to_string() const {
  std::ostringstream os;
  for (const auto& c : constraints) os << c.to_string() << '\n';
  return os.str();
}

}  // namespace picola
