#pragma once
// Face (group) constraints over a set of symbols.
//
// A face constraint is a subset of symbols whose codes must span a Boolean
// subcube containing no other symbol's code (Definition in paper §2).

#include <string>
#include <vector>

namespace picola {

/// One group constraint: the sorted list of member symbol ids.
struct FaceConstraint {
  std::vector<int> members;  ///< sorted, unique
  double weight = 1.0;       ///< multiplicity in the symbolic cover
  bool is_guide = false;     ///< generated from an infeasible constraint
  int origin = -1;           ///< for guides: index of the original constraint

  int size() const { return static_cast<int>(members.size()); }
  bool contains(int symbol) const;

  /// Members common to both constraints (the "son constraint" of §3.3.1).
  std::vector<int> intersect(const FaceConstraint& other) const;

  bool operator==(const FaceConstraint& o) const {
    return members == o.members;
  }

  std::string to_string() const;
};

/// A set of face constraints over `num_symbols` symbols.
struct ConstraintSet {
  int num_symbols = 0;
  std::vector<FaceConstraint> constraints;

  int size() const { return static_cast<int>(constraints.size()); }

  /// Add a constraint (members are sorted and deduplicated).  Duplicates
  /// of an existing constraint add their weight to it instead.  Constraints
  /// with fewer than 2 members or covering every symbol are ignored
  /// (they impose nothing).
  void add(std::vector<int> members, double weight = 1.0);

  /// Total number of seed dichotomies: sum over constraints of
  /// (num_symbols - |members|).
  long num_seed_dichotomies() const;

  /// "" when the set is well-formed: num_symbols >= 2 and every constraint
  /// has sorted, unique, in-range members, size in [2, num_symbols - 1],
  /// a positive finite weight, and a member list no other constraint
  /// shares.  Sets built through add() always pass; the check exists for
  /// directly-assembled sets, and is enforced by picola_encode(), the
  /// batch service (via canonicalize) and the src/check verifier so all
  /// three see the same normalised input.
  std::string validate() const;

  std::string to_string() const;
};

}  // namespace picola
