#include "constraints/dichotomy.h"

namespace picola {

std::vector<SeedDichotomy> seed_dichotomies(const ConstraintSet& cs) {
  std::vector<SeedDichotomy> out;
  for (int k = 0; k < cs.size(); ++k) {
    for (int j = 0; j < cs.num_symbols; ++j) {
      if (!cs.constraints[static_cast<size_t>(k)].contains(j))
        out.push_back({k, j});
    }
  }
  return out;
}

bool dichotomy_satisfied(const FaceConstraint& c, int outsider,
                         const Encoding& enc) {
  for (int b = 0; b < enc.num_bits; ++b) {
    int v = enc.bit(c.members[0], b);
    bool uniform = true;
    for (int m : c.members) {
      if (enc.bit(m, b) != v) {
        uniform = false;
        break;
      }
    }
    if (uniform && enc.bit(outsider, b) != v) return true;
  }
  return false;
}

bool constraint_satisfied(const FaceConstraint& c, const Encoding& enc) {
  return intruders(c, enc).empty();
}

std::vector<int> intruders(const FaceConstraint& c, const Encoding& enc) {
  CodeCube super = enc.supercube(c.members);
  std::vector<int> in;
  for (int j = 0; j < enc.num_symbols; ++j) {
    if (c.contains(j)) continue;
    if (super.contains(enc.code(j))) in.push_back(j);
  }
  return in;
}

int count_satisfied_constraints(const ConstraintSet& cs, const Encoding& enc) {
  int n = 0;
  for (const auto& c : cs.constraints)
    if (constraint_satisfied(c, enc)) ++n;
  return n;
}

long count_satisfied_dichotomies(const ConstraintSet& cs, const Encoding& enc) {
  long n = 0;
  for (const auto& c : cs.constraints) {
    for (int j = 0; j < cs.num_symbols; ++j) {
      if (c.contains(j)) continue;
      if (dichotomy_satisfied(c, j, enc)) ++n;
    }
  }
  return n;
}

}  // namespace picola
