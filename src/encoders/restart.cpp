#include "encoders/restart.h"

namespace picola {

uint64_t restart_seed(uint64_t base_seed, int restart) {
  if (restart <= 0) return base_seed;
  return base_seed + static_cast<uint64_t>(restart);
}

bool RestartWinner::offer(long candidate_cost, int candidate_restart) {
  if (restart >= 0 && (candidate_cost > cost ||
                       (candidate_cost == cost && candidate_restart > restart)))
    return false;
  cost = candidate_cost;
  restart = candidate_restart;
  return true;
}

}  // namespace picola
