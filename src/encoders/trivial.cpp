#include "encoders/trivial.h"

#include <algorithm>
#include <numeric>
#include <random>

namespace picola {

namespace {
Encoding make_base(int num_symbols, int num_bits) {
  Encoding e;
  e.num_symbols = num_symbols;
  e.num_bits = num_bits > 0 ? num_bits : Encoding::min_bits(num_symbols);
  e.codes.resize(static_cast<size_t>(num_symbols));
  return e;
}
}  // namespace

Encoding sequential_encoding(int num_symbols, int num_bits) {
  Encoding e = make_base(num_symbols, num_bits);
  for (int i = 0; i < num_symbols; ++i)
    e.codes[static_cast<size_t>(i)] = static_cast<uint32_t>(i);
  return e;
}

Encoding gray_encoding(int num_symbols, int num_bits) {
  Encoding e = make_base(num_symbols, num_bits);
  for (int i = 0; i < num_symbols; ++i) {
    uint32_t u = static_cast<uint32_t>(i);
    e.codes[static_cast<size_t>(i)] = u ^ (u >> 1);
  }
  return e;
}

Encoding random_encoding(int num_symbols, uint64_t seed, int num_bits) {
  Encoding e = make_base(num_symbols, num_bits);
  std::vector<uint32_t> pool(size_t{1} << e.num_bits);
  std::iota(pool.begin(), pool.end(), 0u);
  std::mt19937_64 rng(seed);
  std::shuffle(pool.begin(), pool.end(), rng);
  std::copy_n(pool.begin(), num_symbols, e.codes.begin());
  return e;
}

}  // namespace picola
