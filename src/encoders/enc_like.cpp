#include "encoders/enc_like.h"

#include "core/picola.h"
#include "eval/constraint_eval.h"

namespace picola {

EncLikeResult enc_like_encode(const ConstraintSet& cs,
                              const EncLikeOptions& opt) {
  // Column-based greedy on the plain dichotomy count: PICOLA's Solve()
  // with unit weights and all of the paper's machinery switched off.
  PicolaOptions base;
  base.use_guides = false;
  base.use_classify = false;
  base.unweighted = true;
  base.num_bits = opt.num_bits;
  EncLikeResult result;
  result.encoding = picola_encode(cs, base).encoding;
  if (!opt.minimize_in_loop) return result;

  // Espresso-in-the-loop refinement: accept a code swap when the summed
  // minimised cube count improves.  One full evaluation costs one
  // minimisation per constraint — this is what makes the ENC approach
  // orders of magnitude slower than the column heuristics.
  Encoding& e = result.encoding;
  const int n = e.num_symbols;

  // Swapping the codes of a and b only changes the functions of the
  // constraints containing a or b (the used-code set is unchanged), so the
  // delta can be evaluated exactly on that subset.
  std::vector<int> per(static_cast<size_t>(cs.size()));
  for (int k = 0; k < cs.size(); ++k) {
    per[static_cast<size_t>(k)] =
        constraint_cube_count(cs.constraints[static_cast<size_t>(k)], e);
    ++result.espresso_calls;
  }
  for (int pass = 0; pass < opt.refine_passes; ++pass) {
    bool improved = false;
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        std::vector<int> touched;
        for (int k = 0; k < cs.size(); ++k) {
          const auto& c = cs.constraints[static_cast<size_t>(k)];
          if (c.contains(a) != c.contains(b)) touched.push_back(k);
        }
        if (touched.empty()) continue;
        std::swap(e.codes[static_cast<size_t>(a)],
                  e.codes[static_cast<size_t>(b)]);
        long delta = 0;
        std::vector<int> ncost(touched.size());
        for (size_t i = 0; i < touched.size(); ++i) {
          int k = touched[i];
          ncost[i] =
              constraint_cube_count(cs.constraints[static_cast<size_t>(k)], e);
          ++result.espresso_calls;
          delta += ncost[i] - per[static_cast<size_t>(k)];
        }
        if (delta < 0) {
          for (size_t i = 0; i < touched.size(); ++i)
            per[static_cast<size_t>(touched[i])] = ncost[i];
          improved = true;
        } else {
          std::swap(e.codes[static_cast<size_t>(a)],
                    e.codes[static_cast<size_t>(b)]);
        }
      }
    }
    if (!improved) break;
  }
  return result;
}

}  // namespace picola
