#pragma once
// NOVA-like baseline: greedy face embedding at minimum code length.
//
// Reimplementation of the *objective* the paper ascribes to conventional
// tools such as NOVA's hybrid algorithms: maximise the (weighted) number of
// fully satisfied face constraints; infeasible or skipped constraints get
// no special treatment.  Constraints are processed in weight order; each is
// embedded, when possible, onto a free subcube (respecting symbols placed
// by earlier constraints), whose leftover cells are then blocked for every
// other symbol.  The "io" flavour follows with a pairwise-swap pass that
// pulls frequently co-occurring next states towards adjacent codes — a
// stand-in for NOVA's output-aware io-hybrid.

#include <cstdint>
#include <vector>

#include "constraints/face_constraint.h"
#include "encoders/encoding.h"

namespace picola {

/// A symmetric "keep these two symbols close" preference with a weight;
/// used by the io flavour (built from next-state co-occurrence).
struct AdjacencyPreference {
  int a = 0;
  int b = 0;
  double weight = 1.0;
};

/// Order in which the greedy embedder processes constraints.
enum class EmbedOrder {
  kWeightDesc,  ///< heaviest first, smaller first among equals (default)
  kSizeDesc,    ///< biggest faces first (pairs attach around them)
  kSizeAsc,     ///< smallest faces first
};

struct NovaLikeOptions {
  int num_bits = 0;  ///< 0 = minimum length
  EmbedOrder order = EmbedOrder::kWeightDesc;
  /// Try the output-aware swap pass with these preferences (io flavour).
  std::vector<AdjacencyPreference> adjacency;
  /// Maximum full sweeps of the swap pass.
  int swap_passes = 3;
};

struct NovaLikeResult {
  Encoding encoding;
  int embedded_constraints = 0;  ///< constraints successfully embedded
  int skipped_constraints = 0;
};

NovaLikeResult nova_like_encode(const ConstraintSet& cs,
                                const NovaLikeOptions& opt = {});

}  // namespace picola
