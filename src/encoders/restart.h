#pragma once
// Deterministic multi-start (restart) support shared by the sequential
// picola_encode_best and the concurrent EncodingService (src/service).
//
// A multi-start run of R restarts is a *plan*: restart 0 keeps the
// caller's tie-breaking seed (0 = the deterministic lowest-index rule),
// restart r > 0 gets the seed `base + r`.  Each restart is an independent
// computation, so the plan can be executed sequentially or fanned out to a
// thread pool; the winner is reduced with `RestartWinner` — lowest cost
// first, lowest restart index on ties — which makes the parallel and
// sequential executions pick bit-identical results.

#include <cstdint>

namespace picola {

/// Tie-breaking seed of restart `restart` (0-based) of a plan whose first
/// restart uses `base_seed`.  restart 0 returns `base_seed` unchanged.
uint64_t restart_seed(uint64_t base_seed, int restart);

/// Running reduction over (cost, restart-index) pairs.  Feeding the
/// restarts in any order yields the same winner as feeding them in
/// sequential order, because the sequential loop keeps the first restart
/// that *strictly* improves the cost — i.e. the minimum of
/// (cost, restart).
struct RestartWinner {
  int restart = -1;
  long cost = 0;

  /// True when (cost, restart) beats the current winner; updates it.
  bool offer(long candidate_cost, int candidate_restart);
};

}  // namespace picola
