#pragma once
// Deterministic multi-start (restart) support shared by the sequential
// picola_encode_best and the concurrent EncodingService (src/service).
//
// A multi-start run of R restarts is a *plan*: restart 0 keeps the
// caller's tie-breaking seed (0 = the deterministic lowest-index rule),
// restart r > 0 gets the seed `base + r`.  Each restart is an independent
// computation, so the plan can be executed sequentially or fanned out to a
// thread pool; the winner is reduced with `RestartWinner` — lowest cost
// first, lowest restart index on ties — which makes the parallel and
// sequential executions pick bit-identical results.
//
// A plan can be abandoned early through a CancelToken: the network
// server's per-request deadlines (src/net) cancel the token, every
// restart — sequential (picola_encode_best) or fanned out (the service's
// restart tasks) — observes it at the next column boundary and aborts
// with CancelledError.  Cancellation is cooperative and monotone: once
// cancelled, a token stays cancelled.

#include <atomic>
#include <cstdint>
#include <stdexcept>

namespace picola {

/// Tie-breaking seed of restart `restart` (0-based) of a plan whose first
/// restart uses `base_seed`.  restart 0 returns `base_seed` unchanged.
uint64_t restart_seed(uint64_t base_seed, int restart);

/// Running reduction over (cost, restart-index) pairs.  Feeding the
/// restarts in any order yields the same winner as feeding them in
/// sequential order, because the sequential loop keeps the first restart
/// that *strictly* improves the cost — i.e. the minimum of
/// (cost, restart).
struct RestartWinner {
  int restart = -1;
  long cost = 0;

  /// True when (cost, restart) beats the current winner; updates it.
  bool offer(long candidate_cost, int candidate_restart);
};

/// Cooperative cancellation flag shared by every restart of one plan.
/// cancel() may be called from any thread (it is async-signal-safe);
/// readers poll cancelled() at column boundaries.
class CancelToken {
 public:
  void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> flag_{false};
};

/// Raised out of picola_encode / picola_encode_best when the plan's
/// CancelToken fires mid-run.  A cancelled run produced no encoding; the
/// service never caches it.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("encoding cancelled") {}
};

/// Throw CancelledError when `token` is set; no-op on nullptr.
inline void throw_if_cancelled(const CancelToken* token) {
  if (token && token->cancelled()) throw CancelledError();
}

}  // namespace picola
