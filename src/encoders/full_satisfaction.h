#pragma once
// Complete face-constraint satisfaction (the conventional alternative the
// paper argues against): raise the code length until every constraint can
// be embedded, as classical face-hypercube-embedding tools do.  Used by
// the length-sweep bench that reproduces the paper's motivation: the code
// length required for full satisfaction often erases the area gain.

#include "constraints/face_constraint.h"
#include "encoders/encoding.h"

namespace picola {

struct FullSatisfactionOptions {
  /// Hard upper bound on the code length tried (n symbols always fit
  /// one-hot-ishly well before this).
  int max_bits = 20;
};

struct FullSatisfactionResult {
  Encoding encoding;
  int bits_needed = 0;     ///< code length at which everything fit
  bool success = false;    ///< false when max_bits was hit
};

/// Smallest code length (>= minimum) at which the greedy face embedder
/// satisfies every constraint, together with that encoding.  This is an
/// upper bound on the true minimum satisfying length (the embedder is
/// greedy), which is exactly how conventional flows behave.
FullSatisfactionResult satisfy_all_constraints(
    const ConstraintSet& cs, const FullSatisfactionOptions& opt = {});

}  // namespace picola
