#include "encoders/exact.h"

#include <stdexcept>

#include "constraints/dichotomy.h"
#include "eval/constraint_eval.h"

namespace picola {

namespace {

long count_assignments(int cells, int symbols) {
  long total = 1;
  for (int i = 1; i < symbols; ++i) total *= cells - i;  // symbol 0 pinned
  return total;
}

}  // namespace

ExactResult exact_encode(const ConstraintSet& cs, const ExactOptions& opt) {
  const int n = cs.num_symbols;
  const int nv = opt.num_bits > 0 ? opt.num_bits : Encoding::min_bits(n);
  const int cells = 1 << nv;
  if (count_assignments(cells, n) > opt.max_candidates)
    throw std::invalid_argument("exact_encode: search space too large");

  Encoding e;
  e.num_symbols = n;
  e.num_bits = nv;
  e.codes.assign(static_cast<size_t>(n), 0);

  ExactResult result;
  bool have_best = false;

  std::vector<bool> used(static_cast<size_t>(cells), false);
  // Complementing any column maps valid encodings to valid encodings with
  // identical costs, so symbol 0 can be pinned to code 0.
  e.codes[0] = 0;
  used[0] = true;

  auto evaluate = [&]() {
    ++result.candidates_evaluated;
    int cost;
    if (opt.objective == ExactObjective::kMinTotalCubes) {
      cost = evaluate_constraints(cs, e).total_cubes;
    } else {
      cost = -count_satisfied_constraints(cs, e);
    }
    if (!have_best || cost < result.best_cost) {
      have_best = true;
      result.best_cost = cost;
      result.encoding = e;
    }
  };

  // Depth-first assignment of codes to symbols 1..n-1.
  auto rec = [&](auto&& self, int symbol) -> void {
    if (symbol == n) {
      evaluate();
      return;
    }
    for (int code = 0; code < cells; ++code) {
      if (used[static_cast<size_t>(code)]) continue;
      used[static_cast<size_t>(code)] = true;
      e.codes[static_cast<size_t>(symbol)] = static_cast<uint32_t>(code);
      self(self, symbol + 1);
      used[static_cast<size_t>(code)] = false;
    }
  };
  rec(rec, 1);
  return result;
}

}  // namespace picola
