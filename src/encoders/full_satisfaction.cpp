#include "encoders/full_satisfaction.h"

#include "constraints/dichotomy.h"
#include "core/picola.h"
#include "encoders/nova_like.h"

namespace picola {

FullSatisfactionResult satisfy_all_constraints(
    const ConstraintSet& cs, const FullSatisfactionOptions& opt) {
  FullSatisfactionResult result;
  auto try_encoding = [&](Encoding e, int bits) {
    if (count_satisfied_constraints(cs, e) != cs.size()) return false;
    result.encoding = std::move(e);
    result.bits_needed = bits;
    result.success = true;
    return true;
  };
  for (int bits = Encoding::min_bits(cs.num_symbols); bits <= opt.max_bits;
       ++bits) {
    // The column heuristic handles chained/overlapping constraints that a
    // one-shot face embedder cannot place; try it first, then the embedder
    // under its different orders.
    {
      PicolaOptions po;
      po.num_bits = bits;
      if (try_encoding(picola_encode(cs, po).encoding, bits)) return result;
    }
    for (EmbedOrder order :
         {EmbedOrder::kSizeDesc, EmbedOrder::kWeightDesc, EmbedOrder::kSizeAsc}) {
      NovaLikeOptions no;
      no.num_bits = bits;
      no.order = order;
      if (try_encoding(nova_like_encode(cs, no).encoding, bits)) return result;
    }
  }
  return result;
}

}  // namespace picola
