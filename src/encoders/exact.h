#pragma once
// Exact minimum-length encoder for small problems: exhaustive search over
// code assignments (modulo column complementation, fixed by pinning symbol
// 0 to code 0) optimising either the paper's cube-count objective or the
// satisfied-constraint count.  Used as a ground-truth oracle in tests and
// ablation benches; practical up to ~8 symbols.

#include "constraints/face_constraint.h"
#include "encoders/encoding.h"

namespace picola {

enum class ExactObjective {
  kMinTotalCubes,            ///< paper's objective (espresso per candidate)
  kMaxSatisfiedConstraints,  ///< conventional objective
};

struct ExactOptions {
  ExactObjective objective = ExactObjective::kMinTotalCubes;
  int num_bits = 0;  ///< 0 = minimum length
  /// Safety valve: abort via assert when the search space would exceed
  /// this many candidate encodings.
  long max_candidates = 2'000'000;
};

struct ExactResult {
  Encoding encoding;
  long candidates_evaluated = 0;
  int best_cost = 0;  ///< cubes (kMinTotalCubes) or -satisfied
};

ExactResult exact_encode(const ConstraintSet& cs, const ExactOptions& opt = {});

}  // namespace picola
