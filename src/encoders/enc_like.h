#pragma once
// ENC-like baseline: maximise satisfied seed dichotomies, optionally with
// logic minimisation in the loop.
//
// Reimplementation of the objective the paper ascribes to ENC
// (Saldanha et al., "Satisfaction of Input and Output Encoding
// Constraints"): a column-based greedy that counts raw satisfied seed
// dichotomies (no constraint weighting, no infeasibility analysis), then —
// in the `minimize_in_loop` mode that gives ENC its characteristic runtime
// — a pairwise code-swap refinement whose acceptance test is the full
// espresso cube-count evaluation of the paper's objective.

#include "constraints/face_constraint.h"
#include "encoders/encoding.h"

namespace picola {

struct EncLikeOptions {
  int num_bits = 0;  ///< 0 = minimum length
  /// Refine with espresso-evaluated pairwise swaps (slow; the point of the
  /// paper's runtime comparison).
  bool minimize_in_loop = true;
  /// Maximum refinement sweeps.
  int refine_passes = 2;
};

struct EncLikeResult {
  Encoding encoding;
  long espresso_calls = 0;  ///< minimisations spent in the refinement loop
};

EncLikeResult enc_like_encode(const ConstraintSet& cs,
                              const EncLikeOptions& opt = {});

}  // namespace picola
