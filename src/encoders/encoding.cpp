#include "encoders/encoding.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace picola {

int CodeCube::dim(int num_bits) const {
  return num_bits - std::popcount(care);
}

int Encoding::min_bits(int num_symbols) {
  int bits = 1;
  while ((1L << bits) < num_symbols) ++bits;  // long: no UB at bits == 31
  return bits;
}

std::string Encoding::validate() const {
  if (static_cast<int>(codes.size()) != num_symbols)
    return "wrong number of codes";
  if (num_bits < 1 || num_bits > 31) return "bad code length";
  if ((1L << num_bits) < num_symbols) return "code length too small";
  std::vector<uint32_t> sorted = codes;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
    return "duplicate codes";
  for (uint32_t c : codes)
    if (c >= (uint32_t{1} << num_bits)) return "code out of range";
  return "";
}

CodeCube Encoding::supercube(const std::vector<int>& symbols) const {
  CodeCube cc;
  if (symbols.empty()) return cc;
  cc.care = (num_bits >= 32) ? ~uint32_t{0}
                             : ((uint32_t{1} << num_bits) - 1);
  cc.value = codes[static_cast<size_t>(symbols[0])];
  for (int s : symbols) {
    uint32_t diff = cc.value ^ codes[static_cast<size_t>(s)];
    cc.care &= ~diff;
  }
  cc.value &= cc.care;
  return cc;
}

std::vector<uint32_t> Encoding::unused_codes() const {
  std::vector<bool> used(size_t{1} << num_bits, false);
  for (uint32_t c : codes) used[c] = true;
  std::vector<uint32_t> out;
  for (uint32_t c = 0; c < (uint32_t{1} << num_bits); ++c)
    if (!used[c]) out.push_back(c);
  return out;
}

std::string Encoding::to_string() const {
  std::ostringstream os;
  for (int i = 0; i < num_symbols; ++i) {
    os << i << ": ";
    for (int b = num_bits - 1; b >= 0; --b) os << bit(i, b);
    os << '\n';
  }
  return os.str();
}

}  // namespace picola
