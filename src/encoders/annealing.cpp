#include "encoders/annealing.h"

#include <cmath>
#include <random>

#include "constraints/dichotomy.h"
#include "encoders/trivial.h"

namespace picola {

double weighted_dichotomy_score(const ConstraintSet& cs, const Encoding& enc) {
  double score = 0;
  for (const auto& c : cs.constraints) {
    for (int j = 0; j < cs.num_symbols; ++j) {
      if (c.contains(j)) continue;
      if (dichotomy_satisfied(c, j, enc)) score += c.weight;
    }
  }
  return score;
}

namespace {

/// Score restricted to the constraints whose evaluation can change when
/// the codes of `a` and `b` change: every dichotomy of a constraint
/// containing a or b, plus the (k, a)/(k, b) dichotomies of the rest.
double local_score(const ConstraintSet& cs, const Encoding& enc, int a, int b) {
  double score = 0;
  for (const auto& c : cs.constraints) {
    bool member = c.contains(a) || (b >= 0 && c.contains(b));
    if (member) {
      for (int j = 0; j < cs.num_symbols; ++j) {
        if (c.contains(j)) continue;
        if (dichotomy_satisfied(c, j, enc)) score += c.weight;
      }
    } else {
      if (dichotomy_satisfied(c, a, enc)) score += c.weight;
      if (b >= 0 && dichotomy_satisfied(c, b, enc)) score += c.weight;
    }
  }
  return score;
}

}  // namespace

AnnealingResult annealing_encode(const ConstraintSet& cs,
                                 const AnnealingOptions& opt) {
  const int n = cs.num_symbols;
  const int nv = opt.num_bits > 0 ? opt.num_bits : Encoding::min_bits(n);
  std::mt19937_64 rng(opt.seed);

  AnnealingResult result;
  Encoding enc = sequential_encoding(n, nv);
  const uint32_t cells = uint32_t{1} << nv;

  // Occupancy map for move-to-free-code moves.
  std::vector<int> occupant(cells, -1);
  for (int s = 0; s < n; ++s) occupant[enc.code(s)] = s;

  double score = weighted_dichotomy_score(cs, enc);
  Encoding best = enc;
  double best_score = score;

  const int moves_per_temp =
      opt.moves_per_temp > 0 ? opt.moves_per_temp : 8 * n * nv;
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  for (double t = opt.t_start; t > opt.t_end; t *= opt.cooling) {
    for (int mv = 0; mv < moves_per_temp; ++mv) {
      if ((result.moves_tried & 63) == 0) throw_if_cancelled(opt.cancel.get());
      ++result.moves_tried;
      int a = static_cast<int>(rng() % static_cast<uint64_t>(n));
      uint32_t target = static_cast<uint32_t>(rng() % cells);
      int b = occupant[target];
      if (b == a) continue;

      double before = local_score(cs, enc, a, b);
      uint32_t code_a = enc.code(a);
      // Apply: swap with occupant, or move to the free code.
      enc.codes[static_cast<size_t>(a)] = target;
      occupant[target] = a;
      if (b >= 0) {
        enc.codes[static_cast<size_t>(b)] = code_a;
        occupant[code_a] = b;
      } else {
        occupant[code_a] = -1;
      }
      double after = local_score(cs, enc, a, b);
      double delta = after - before;
      if (delta >= 0 || unit(rng) < std::exp(delta / t)) {
        ++result.moves_accepted;
        score += delta;
        if (score > best_score) {
          best_score = score;
          best = enc;
        }
      } else {
        // Revert.
        enc.codes[static_cast<size_t>(a)] = code_a;
        occupant[code_a] = a;
        if (b >= 0) {
          enc.codes[static_cast<size_t>(b)] = target;
          occupant[target] = b;
        } else {
          occupant[target] = -1;
        }
      }
    }
  }
  result.encoding = std::move(best);
  result.best_score = best_score;
  return result;
}

}  // namespace picola
