#pragma once
// Binary encodings of symbol sets and small code-cube helpers.

#include <cstdint>
#include <string>
#include <vector>

namespace picola {

/// A cube in code space, stored as (care mask, values): bit b is fixed to
/// ((value >> b) & 1) when the care bit is set, free otherwise.
struct CodeCube {
  uint32_t care = 0;
  uint32_t value = 0;

  bool contains(uint32_t code) const { return ((code ^ value) & care) == 0; }
  int dim(int num_bits) const;

  bool operator==(const CodeCube& o) const {
    return care == o.care && (value & care) == (o.value & o.care);
  }
};

/// An assignment of distinct `num_bits`-wide codes to `num_symbols`
/// symbols.  Codes are stored LSB-first: bit/column `b` of symbol `i` is
/// `(codes[i] >> b) & 1`.
struct Encoding {
  int num_symbols = 0;
  int num_bits = 0;
  std::vector<uint32_t> codes;

  int bit(int symbol, int b) const {
    return static_cast<int>((codes[static_cast<size_t>(symbol)] >> b) & 1u);
  }
  uint32_t code(int symbol) const {
    return codes[static_cast<size_t>(symbol)];
  }

  /// Minimum code length for n symbols: ceil(log2 n) (1 for n <= 2).
  static int min_bits(int num_symbols);

  /// "" when the encoding is structurally valid: the right number of
  /// distinct codes, each within num_bits.
  std::string validate() const;

  /// Smallest code cube containing the codes of `symbols`
  /// (super(L) in the paper).
  CodeCube supercube(const std::vector<int>& symbols) const;

  /// Codes not assigned to any symbol.
  std::vector<uint32_t> unused_codes() const;

  std::string to_string() const;
};

}  // namespace picola
