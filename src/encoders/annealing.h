#pragma once
// Simulated-annealing encoder: searches the space of minimum-length code
// assignments by swapping codes (and moving symbols onto unused codes),
// optimising the weighted satisfied-seed-dichotomy count.  NOVA itself
// shipped annealing-based variants; this provides an additional strong
// baseline for the benches and a stress reference for PICOLA.

#include <cstdint>
#include <memory>

#include "constraints/face_constraint.h"
#include "encoders/encoding.h"
#include "encoders/restart.h"

namespace picola {

struct AnnealingOptions {
  int num_bits = 0;        ///< 0 = minimum length
  uint64_t seed = 1;       ///< deterministic PRNG seed
  double t_start = 2.0;    ///< initial temperature (relative to weights)
  double t_end = 0.01;     ///< final temperature
  double cooling = 0.95;   ///< geometric cooling factor
  int moves_per_temp = 0;  ///< 0 = 8 * n * nv moves per temperature step
  /// Cooperative cancellation, checked in the flip loop (every 64 moves);
  /// a fired token aborts the run with CancelledError, same contract as
  /// PicolaOptions::cancel.  Never changes a completed run's result.
  std::shared_ptr<const CancelToken> cancel;
};

struct AnnealingResult {
  Encoding encoding;
  double best_score = 0;  ///< weighted satisfied dichotomies of the result
  long moves_tried = 0;
  long moves_accepted = 0;
};

AnnealingResult annealing_encode(const ConstraintSet& cs,
                                 const AnnealingOptions& opt = {});

/// The objective annealing maximises: sum of constraint weights over
/// satisfied seed dichotomies.
double weighted_dichotomy_score(const ConstraintSet& cs, const Encoding& enc);

}  // namespace picola
