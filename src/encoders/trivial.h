#pragma once
// Trivial reference encoders: sequential (binary counting), Gray code and
// seeded random permutations of the code set.  Used as baselines and by
// tests.

#include <cstdint>

#include "encoders/encoding.h"

namespace picola {

/// Symbol i gets code i.
Encoding sequential_encoding(int num_symbols, int num_bits = 0);

/// Symbol i gets the i-th Gray code.
Encoding gray_encoding(int num_symbols, int num_bits = 0);

/// Deterministic random assignment of distinct codes.
Encoding random_encoding(int num_symbols, uint64_t seed, int num_bits = 0);

}  // namespace picola
