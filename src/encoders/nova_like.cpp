#include "encoders/nova_like.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "constraints/dichotomy.h"

namespace picola {

namespace {

constexpr int kFree = -1;
constexpr int kBlocked = -2;  // reserved by an embedded constraint

struct Embedder {
  int n;
  int nv;
  long num_cells;
  std::vector<int> cell;   ///< per code: symbol id, kFree or kBlocked
  std::vector<long> code_of;  ///< per symbol: code or -1
  long free_cells;
  int unplaced;

  explicit Embedder(int num_symbols, int num_bits)
      : n(num_symbols),
        nv(num_bits),
        num_cells(1L << num_bits),
        cell(static_cast<size_t>(num_cells), kFree),
        code_of(static_cast<size_t>(num_symbols), -1),
        free_cells(num_cells),
        unplaced(num_symbols) {}

  void place(int symbol, long code) {
    assert(cell[static_cast<size_t>(code)] == kFree);
    cell[static_cast<size_t>(code)] = symbol;
    code_of[static_cast<size_t>(symbol)] = code;
    --free_cells;
    --unplaced;
  }

  /// Enumerate all subcubes as (care mask, value); value bits outside care
  /// are zero.
  template <typename Fn>
  void for_each_cube(Fn&& fn) const {
    uint32_t full = static_cast<uint32_t>(num_cells - 1);
    // Iterate care masks; for each, iterate values over care bits.
    for (uint32_t care = 0; care <= full; ++care) {
      uint32_t v = 0;
      while (true) {
        fn(care, v);
        // next value within care
        v = (v - care) & care;  // adds 1 in the subspace of care bits
        if (v == 0) break;
      }
    }
  }

  /// Try to embed one constraint; returns true on success.
  bool embed(const FaceConstraint& c) {
    // Classify members.
    std::vector<int> placed, unplaced_members;
    for (int m : c.members) {
      if (code_of[static_cast<size_t>(m)] >= 0)
        placed.push_back(m);
      else
        unplaced_members.push_back(m);
    }
    int need = static_cast<int>(unplaced_members.size());

    uint32_t best_care = 0, best_value = 0;
    int best_dim = nv + 1;
    long best_waste = 0;
    bool found = false;

    const uint32_t full_mask = static_cast<uint32_t>(num_cells - 1);
    for_each_cube([&](uint32_t care, uint32_t value) {
      int dim = nv - std::popcount(care);
      if (found && dim > best_dim) return;
      // All placed members inside, capacity for unplaced, no foreign
      // symbol, no blocked cell.
      for (int m : placed) {
        uint32_t code = static_cast<uint32_t>(code_of[static_cast<size_t>(m)]);
        if ((code & care) != value) return;
      }
      // Walk only the cube's own cells (value + submasks of ~care).
      long cube_free = 0;
      uint32_t free_bits = full_mask & ~care;
      uint32_t sub = 0;
      while (true) {
        uint32_t code = value | sub;
        int occ = cell[static_cast<size_t>(code)];
        if (occ == kBlocked) return;
        if (occ == kFree) {
          ++cube_free;
        } else if (!c.contains(occ)) {
          return;  // foreign symbol inside the face
        }
        sub = (sub - free_bits) & free_bits;
        if (sub == 0) break;
      }
      if (cube_free < need) return;
      long waste = cube_free - need;  // cells that would be blocked
      // Global capacity: every symbol still outside this cube must find a
      // free cell elsewhere.
      long outside_free = free_cells - cube_free;
      long outside_need = unplaced - need;
      if (outside_free < outside_need) return;
      if (!found || dim < best_dim || (dim == best_dim && waste < best_waste)) {
        found = true;
        best_dim = dim;
        best_waste = waste;
        best_care = care;
        best_value = value;
      }
    });
    if (!found) return false;

    // Place unplaced members into the face's free cells, block leftovers.
    size_t next_member = 0;
    for (long code = 0; code < num_cells; ++code) {
      if ((static_cast<uint32_t>(code) & best_care) != best_value) continue;
      if (cell[static_cast<size_t>(code)] != kFree) continue;
      if (next_member < unplaced_members.size()) {
        place(unplaced_members[next_member++], code);
      } else {
        cell[static_cast<size_t>(code)] = kBlocked;
        --free_cells;
      }
    }
    assert(next_member == unplaced_members.size());
    return true;
  }
};

double adjacency_cost(const Encoding& e,
                      const std::vector<AdjacencyPreference>& prefs) {
  double cost = 0;
  for (const auto& p : prefs) {
    uint32_t x = e.code(p.a) ^ e.code(p.b);
    cost += p.weight * std::popcount(x);
  }
  return cost;
}

}  // namespace

NovaLikeResult nova_like_encode(const ConstraintSet& cs,
                                const NovaLikeOptions& opt) {
  const int n = cs.num_symbols;
  const int nv = opt.num_bits > 0 ? opt.num_bits : Encoding::min_bits(n);
  Embedder emb(n, nv);
  NovaLikeResult result;

  // Weight-ordered greedy: heavier (more frequent) constraints first,
  // smaller ones first among equals — they are the cheapest to satisfy.
  std::vector<int> order(static_cast<size_t>(cs.size()));
  for (int i = 0; i < cs.size(); ++i) order[static_cast<size_t>(i)] = i;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const auto& ca = cs.constraints[static_cast<size_t>(a)];
    const auto& cb = cs.constraints[static_cast<size_t>(b)];
    switch (opt.order) {
      case EmbedOrder::kSizeDesc:
        if (ca.size() != cb.size()) return ca.size() > cb.size();
        return ca.weight > cb.weight;
      case EmbedOrder::kSizeAsc:
        if (ca.size() != cb.size()) return ca.size() < cb.size();
        return ca.weight > cb.weight;
      case EmbedOrder::kWeightDesc:
      default:
        if (ca.weight != cb.weight) return ca.weight > cb.weight;
        return ca.size() < cb.size();
    }
  });

  for (int k : order) {
    if (emb.embed(cs.constraints[static_cast<size_t>(k)]))
      ++result.embedded_constraints;
    else
      ++result.skipped_constraints;
  }

  // Remaining symbols take the remaining free cells (blocked cells only if
  // nothing else is left, which the capacity checks prevent).
  for (int s = 0; s < n; ++s) {
    if (emb.code_of[static_cast<size_t>(s)] >= 0) continue;
    long code = -1;
    for (long cdd = 0; cdd < emb.num_cells; ++cdd) {
      if (emb.cell[static_cast<size_t>(cdd)] == kFree) {
        code = cdd;
        break;
      }
    }
    if (code < 0) {
      for (long cdd = 0; cdd < emb.num_cells; ++cdd) {
        if (emb.cell[static_cast<size_t>(cdd)] == kBlocked) {
          code = cdd;
          break;
        }
      }
    }
    assert(code >= 0);
    emb.cell[static_cast<size_t>(code)] = s;
    emb.code_of[static_cast<size_t>(s)] = code;
  }

  Encoding e;
  e.num_symbols = n;
  e.num_bits = nv;
  e.codes.resize(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s)
    e.codes[static_cast<size_t>(s)] =
        static_cast<uint32_t>(emb.code_of[static_cast<size_t>(s)]);

  // io flavour: pairwise swaps that reduce the adjacency cost without
  // breaking any currently satisfied face constraint are accepted.
  if (!opt.adjacency.empty()) {
    auto satisfied_mask = [&](const Encoding& enc) {
      std::vector<bool> mask(static_cast<size_t>(cs.size()));
      for (int k = 0; k < cs.size(); ++k)
        mask[static_cast<size_t>(k)] =
            constraint_satisfied(cs.constraints[static_cast<size_t>(k)], enc);
      return mask;
    };
    std::vector<bool> base_mask = satisfied_mask(e);
    double cost = adjacency_cost(e, opt.adjacency);
    for (int pass = 0; pass < opt.swap_passes; ++pass) {
      bool improved = false;
      for (int a = 0; a < n; ++a) {
        for (int b = a + 1; b < n; ++b) {
          std::swap(e.codes[static_cast<size_t>(a)],
                    e.codes[static_cast<size_t>(b)]);
          double ncost = adjacency_cost(e, opt.adjacency);
          bool ok = ncost < cost;
          if (ok) {
            std::vector<bool> mask = satisfied_mask(e);
            for (int k = 0; k < cs.size() && ok; ++k)
              if (base_mask[static_cast<size_t>(k)] &&
                  !mask[static_cast<size_t>(k)])
                ok = false;
          }
          if (ok) {
            cost = ncost;
            improved = true;
          } else {
            std::swap(e.codes[static_cast<size_t>(a)],
                      e.codes[static_cast<size_t>(b)]);
          }
        }
      }
      if (!improved) break;
    }
  }

  result.encoding = std::move(e);
  return result;
}

}  // namespace picola
