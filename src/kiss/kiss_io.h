#pragma once
// KISS2 file format reader/writer (the IWLS'93 FSM benchmark format).
//
// Directives: .i .o .s .p .r .e/.end; transition rows are
// `<input-cube> <from-state> <to-state|*> <output-plane>`.

#include <iosfwd>
#include <string>
#include <vector>

#include "kiss/fsm.h"

namespace picola {

/// Outcome of parsing; `ok()` is false when `error` is non-empty.
struct KissParseResult {
  Fsm fsm;
  std::string error;
  std::vector<std::string> warnings;
  bool ok() const { return error.empty(); }
};

/// Parse KISS2 text.
KissParseResult parse_kiss(const std::string& text);
/// Parse from a stream.
KissParseResult parse_kiss(std::istream& in);

/// Serialise to KISS2 text.
std::string write_kiss(const Fsm& fsm);

}  // namespace picola
