#include "kiss/fsm.h"

#include <algorithm>

#include "cube/cover.h"
#include "espresso/espresso.h"

namespace picola {

namespace {

Cube input_cube(const CubeSpace& s, const std::string& in) {
  Cube c = Cube::full(s);
  for (int v = 0; v < static_cast<int>(in.size()); ++v) {
    if (in[static_cast<size_t>(v)] == '0') c.set_binary(s, v, 0);
    if (in[static_cast<size_t>(v)] == '1') c.set_binary(s, v, 1);
  }
  return c;
}

}  // namespace

int Fsm::state_index(const std::string& sname) const {
  auto it = std::find(state_names.begin(), state_names.end(), sname);
  if (it == state_names.end()) return -1;
  return static_cast<int>(it - state_names.begin());
}

int Fsm::add_state(const std::string& sname) {
  int idx = state_index(sname);
  if (idx >= 0) return idx;
  state_names.push_back(sname);
  return num_states() - 1;
}

std::string Fsm::validate() const {
  if (num_inputs < 0 || num_outputs < 0) return "bad dimensions";
  if (state_names.empty()) return "no states";
  if (reset_state < 0 || reset_state >= num_states()) return "bad reset state";
  for (const auto& t : transitions) {
    if (static_cast<int>(t.input.size()) != num_inputs)
      return "input width mismatch";
    if (static_cast<int>(t.output.size()) != num_outputs)
      return "output width mismatch";
    if (t.from < 0 || t.from >= num_states()) return "bad source state";
    if (t.to != Transition::kAnyState && (t.to < 0 || t.to >= num_states()))
      return "bad target state";
    for (char ch : t.input)
      if (ch != '0' && ch != '1' && ch != '-') return "bad input character";
    for (char ch : t.output)
      if (ch != '0' && ch != '1' && ch != '-') return "bad output character";
  }
  return "";
}

bool Fsm::is_deterministic() const {
  CubeSpace s = CubeSpace::binary(num_inputs);
  for (int st = 0; st < num_states(); ++st) {
    std::vector<Cube> cubes;
    for (const auto& t : transitions)
      if (t.from == st) cubes.push_back(input_cube(s, t.input));
    for (size_t i = 0; i < cubes.size(); ++i)
      for (size_t j = i + 1; j < cubes.size(); ++j)
        if (cubes[i].distance(cubes[j], s) == 0) return false;
  }
  return true;
}

bool Fsm::is_complete() const {
  CubeSpace s = CubeSpace::binary(num_inputs);
  for (int st = 0; st < num_states(); ++st) {
    Cover f(s);
    for (const auto& t : transitions)
      if (t.from == st) f.add(input_cube(s, t.input));
    if (!esp::is_tautology(f)) return false;
  }
  return true;
}

}  // namespace picola
