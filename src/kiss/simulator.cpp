#include "kiss/simulator.h"

namespace picola {

FsmSimulator::FsmSimulator(const Fsm& fsm)
    : fsm_(&fsm), state_(fsm.reset_state) {}

bool FsmSimulator::input_matches(const std::string& cube,
                                 const std::vector<int>& bits) {
  for (size_t i = 0; i < cube.size(); ++i) {
    if (cube[i] == '-') continue;
    int want = cube[i] - '0';
    if (bits[i] != want) return false;
  }
  return true;
}

SimStep FsmSimulator::step(const std::vector<int>& bits) {
  SimStep r;
  for (const auto& t : fsm_->transitions) {
    if (t.from != state_) continue;
    if (!input_matches(t.input, bits)) continue;
    r.matched = true;
    r.output = t.output;
    if (t.to == Transition::kAnyState) {
      r.free_next = true;
      r.next_state = state_;
    } else {
      r.next_state = t.to;
    }
    state_ = r.next_state;
    return r;
  }
  r.output.assign(static_cast<size_t>(fsm_->num_outputs), '-');
  r.next_state = state_;
  return r;
}

}  // namespace picola
