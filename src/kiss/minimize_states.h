#pragma once
// State minimisation before assignment (the classic companion step; cf.
// the "considering state minimisation during state assignment" line of
// work the paper's venue hosted).
//
// For deterministic, completely specified machines this is the exact
// pair-chart equivalence algorithm: mark distinguishable pairs (different
// outputs somewhere, then different successor classes) to a fixpoint and
// merge the equivalence classes.  For incompletely specified machines the
// same chart computes *compatible* pairs; since compatibility is not
// transitive, classes are only merged when they turn out to be cliques of
// compatible pairs (a sound, conservative reduction — exact ISFSM
// minimisation is a covering problem out of scope here).

#include <string>
#include <vector>

#include "kiss/fsm.h"

namespace picola {

struct StateMinimizeResult {
  Fsm fsm;                     ///< reduced machine
  std::vector<int> state_map;  ///< original state -> reduced state
  int merged = 0;              ///< states removed
  bool exact = false;          ///< true for the CSFSM equivalence algorithm
  std::string note;            ///< diagnostics (e.g. why nothing merged)
};

/// Minimise the state count of a deterministic machine.  Nondeterministic
/// machines are returned unchanged with a note.
StateMinimizeResult minimize_states(const Fsm& fsm);

}  // namespace picola
