#include "kiss/kiss_io.h"

#include <sstream>

#include "base/parse_util.h"

namespace picola {

namespace {

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string t;
  while (is >> t) toks.push_back(t);
  return toks;
}

}  // namespace

KissParseResult parse_kiss(std::istream& in) {
  KissParseResult res;
  Fsm& fsm = res.fsm;
  std::string line;
  int lineno = 0;
  int declared_states = -1;
  std::string reset_name;
  bool saw_i = false, saw_o = false;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::vector<std::string> toks = split_ws(line);
    if (toks.empty()) continue;
    const std::string& head = toks[0];
    auto fail = [&](const std::string& msg) {
      res.error = "line " + std::to_string(lineno) + ": " + msg;
    };
    if (head == ".i") {
      if (toks.size() != 2) { fail(".i needs one argument"); return res; }
      auto v = parse_int(toks[1]);
      if (!v || *v < 0) { fail("bad .i value"); return res; }
      fsm.num_inputs = *v;
      saw_i = true;
    } else if (head == ".o") {
      if (toks.size() != 2) { fail(".o needs one argument"); return res; }
      auto v = parse_int(toks[1]);
      if (!v || *v < 0) { fail("bad .o value"); return res; }
      fsm.num_outputs = *v;
      saw_o = true;
    } else if (head == ".s") {
      if (toks.size() != 2) { fail(".s needs one argument"); return res; }
      auto v = parse_int(toks[1]);
      if (!v) { fail("bad .s value"); return res; }
      declared_states = *v;
    } else if (head == ".p") {
      // row-count hint; ignored
    } else if (head == ".r") {
      if (toks.size() != 2) { fail(".r needs one argument"); return res; }
      reset_name = toks[1];
    } else if (head == ".e" || head == ".end") {
      break;
    } else if (head[0] == '.') {
      res.warnings.push_back("line " + std::to_string(lineno) +
                             ": ignored directive " + head);
    } else {
      if (!saw_i || !saw_o) { fail("transition before .i/.o"); return res; }
      if (toks.size() != 4) { fail("transition needs 4 fields"); return res; }
      Transition t;
      t.input = toks[0];
      t.from = fsm.add_state(toks[1]);
      t.to = (toks[2] == "*") ? Transition::kAnyState : fsm.add_state(toks[2]);
      t.output = toks[3];
      for (char& ch : t.input)
        if (ch == '2' || ch == '~') ch = '-';
      fsm.transitions.push_back(std::move(t));
    }
  }
  if (!saw_i || !saw_o) {
    res.error = "missing .i or .o";
    return res;
  }
  if (!reset_name.empty()) {
    int r = fsm.state_index(reset_name);
    if (r < 0) {
      res.error = "reset state " + reset_name + " never used";
      return res;
    }
    fsm.reset_state = r;
  }
  if (declared_states >= 0 && declared_states != fsm.num_states()) {
    res.warnings.push_back(".s declared " + std::to_string(declared_states) +
                           " states but " + std::to_string(fsm.num_states()) +
                           " appear");
  }
  std::string verr = fsm.validate();
  if (!verr.empty()) res.error = verr;
  return res;
}

KissParseResult parse_kiss(const std::string& text) {
  std::istringstream is(text);
  return parse_kiss(is);
}

std::string write_kiss(const Fsm& fsm) {
  std::ostringstream os;
  os << ".i " << fsm.num_inputs << '\n';
  os << ".o " << fsm.num_outputs << '\n';
  os << ".p " << fsm.transitions.size() << '\n';
  os << ".s " << fsm.num_states() << '\n';
  if (!fsm.state_names.empty())
    os << ".r " << fsm.state_names[static_cast<size_t>(fsm.reset_state)] << '\n';
  for (const auto& t : fsm.transitions) {
    os << t.input << ' ' << fsm.state_names[static_cast<size_t>(t.from)] << ' ';
    if (t.to == Transition::kAnyState)
      os << '*';
    else
      os << fsm.state_names[static_cast<size_t>(t.to)];
    os << ' ' << t.output << '\n';
  }
  os << ".e\n";
  return os.str();
}

}  // namespace picola
