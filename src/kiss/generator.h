#pragma once
// Deterministic synthetic FSM generator.
//
// The IWLS'93 KISS2 benchmark files are public but not distributed with
// this repository; the generator reconstructs machines with the published
// profile of each benchmark (inputs/outputs/states/products) and the
// structural properties that give those benchmarks their characteristic
// face-constraint structure: states are grouped into behavioural clusters,
// a cluster shares an input-space partition, and many partition regions
// are handled identically by every state of the cluster (those regions are
// exactly what multi-valued minimisation merges into group constraints).
// See DESIGN.md §5 for the substitution rationale.

#include <cstdint>
#include <string>

#include "kiss/fsm.h"

namespace picola {

/// Parameters of the synthetic machine.
struct GeneratorParams {
  int num_inputs = 2;
  int num_outputs = 2;
  int num_states = 8;
  /// Approximate number of transition rows (the generator hits this
  /// exactly when the input space allows the required partitions).
  int target_products = 32;
  uint64_t seed = 1;
  /// States per behavioural cluster.
  int cluster_size = 4;
  /// Probability that a partition region is handled identically by the
  /// whole cluster (shared rule -> mergeable rows -> face constraints).
  double shared_rule_prob = 0.6;
  /// Probability that a next state stays within the cluster.
  double locality = 0.7;
  /// Number of distinct output patterns per cluster palette.
  int palette_size = 3;
};

/// Generate a complete, deterministic FSM with the given profile.  The same
/// (params, name) pair always yields the same machine.
Fsm generate_fsm(const GeneratorParams& params, const std::string& name);

}  // namespace picola
