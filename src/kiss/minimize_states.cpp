#include "kiss/minimize_states.h"

#include <numeric>

namespace picola {

namespace {

/// Do two input cubes intersect?
bool inputs_intersect(const std::string& a, const std::string& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != '-' && b[i] != '-' && a[i] != b[i]) return false;
  }
  return true;
}

/// Do two output planes conflict (some position specified 0 in one and 1
/// in the other)?
bool outputs_conflict(const std::string& a, const std::string& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != '-' && b[i] != '-' && a[i] != b[i]) return true;
  }
  return false;
}

struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(int n) : parent(static_cast<size_t>(n)) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[static_cast<size_t>(std::max(a, b))] = std::min(a, b);
  }
};

}  // namespace

StateMinimizeResult minimize_states(const Fsm& fsm) {
  StateMinimizeResult result;
  result.fsm = fsm;
  const int n = fsm.num_states();
  result.state_map.resize(static_cast<size_t>(n));
  std::iota(result.state_map.begin(), result.state_map.end(), 0);
  if (!fsm.is_deterministic()) {
    result.note = "machine is nondeterministic; left unchanged";
    return result;
  }
  const bool complete = fsm.is_complete();

  // Rows grouped by source state.
  std::vector<std::vector<const Transition*>> rows(static_cast<size_t>(n));
  for (const auto& t : fsm.transitions)
    rows[static_cast<size_t>(t.from)].push_back(&t);

  // Pair chart: incompatible[p][q] for p < q.
  auto idx = [n](int p, int q) {
    return static_cast<size_t>(p) * static_cast<size_t>(n) +
           static_cast<size_t>(q);
  };
  std::vector<bool> bad(static_cast<size_t>(n) * static_cast<size_t>(n), false);

  // Base marking: conflicting outputs on intersecting inputs.
  for (int p = 0; p < n; ++p) {
    for (int q = p + 1; q < n; ++q) {
      for (const Transition* r : rows[static_cast<size_t>(p)]) {
        for (const Transition* t : rows[static_cast<size_t>(q)]) {
          if (!inputs_intersect(r->input, t->input)) continue;
          if (outputs_conflict(r->output, t->output)) {
            bad[idx(p, q)] = true;
          }
        }
        if (bad[idx(p, q)]) break;
      }
    }
  }

  // Propagate: a pair is incompatible when some shared input drives it to
  // an incompatible pair.  '*' successors impose nothing.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        if (bad[idx(p, q)]) continue;
        bool mark = false;
        for (const Transition* r : rows[static_cast<size_t>(p)]) {
          for (const Transition* t : rows[static_cast<size_t>(q)]) {
            if (!inputs_intersect(r->input, t->input)) continue;
            int a = r->to, b = t->to;
            if (a == Transition::kAnyState || b == Transition::kAnyState)
              continue;
            if (a == b) continue;
            int lo = std::min(a, b), hi = std::max(a, b);
            if (bad[idx(lo, hi)]) {
              mark = true;
              break;
            }
          }
          if (mark) break;
        }
        if (mark) {
          bad[idx(p, q)] = true;
          changed = true;
        }
      }
    }
  }

  // Merge classes of compatible pairs.
  UnionFind uf(n);
  for (int p = 0; p < n; ++p)
    for (int q = p + 1; q < n; ++q)
      if (!bad[idx(p, q)]) uf.unite(p, q);

  // For incompletely specified machines compatibility is not transitive:
  // only accept classes that are cliques of compatible pairs.
  if (!complete) {
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        if (uf.find(p) == uf.find(q) && bad[idx(p, q)]) {
          // Break the class apart: fall back to singletons for its members.
          int root = uf.find(p);
          for (int s = 0; s < n; ++s)
            if (uf.find(s) == root)
              uf.parent[static_cast<size_t>(s)] = s;
        }
      }
    }
  }

  // Build the reduced machine: representatives keep their rows.
  std::vector<int> rep_of(static_cast<size_t>(n));
  std::vector<int> new_id(static_cast<size_t>(n), -1);
  Fsm out;
  out.name = fsm.name;
  out.num_inputs = fsm.num_inputs;
  out.num_outputs = fsm.num_outputs;
  for (int s = 0; s < n; ++s) rep_of[static_cast<size_t>(s)] = uf.find(s);
  for (int s = 0; s < n; ++s) {
    int rep = rep_of[static_cast<size_t>(s)];
    if (new_id[static_cast<size_t>(rep)] < 0) {
      new_id[static_cast<size_t>(rep)] =
          out.add_state(fsm.state_names[static_cast<size_t>(rep)]);
    }
    result.state_map[static_cast<size_t>(s)] = new_id[static_cast<size_t>(rep)];
  }
  for (const auto& t : fsm.transitions) {
    if (rep_of[static_cast<size_t>(t.from)] != t.from) continue;  // merged away
    Transition nt;
    nt.input = t.input;
    nt.from = result.state_map[static_cast<size_t>(t.from)];
    nt.to = t.to == Transition::kAnyState
                ? Transition::kAnyState
                : result.state_map[static_cast<size_t>(t.to)];
    nt.output = t.output;
    out.transitions.push_back(std::move(nt));
  }
  out.reset_state = result.state_map[static_cast<size_t>(fsm.reset_state)];

  result.merged = n - out.num_states();
  result.exact = complete;
  result.fsm = std::move(out);
  if (result.merged == 0 && result.note.empty())
    result.note = "machine is already minimal";
  return result;
}

}  // namespace picola
