#include "kiss/benchmarks.h"

#include <stdexcept>

#include "kiss/generator.h"
#include "kiss/kiss_io.h"

namespace picola {

const std::vector<BenchmarkProfile>& benchmark_profiles() {
  // Published (inputs, outputs, states, products) of the MCNC / IWLS'93
  // FSM benchmarks referenced by the paper.
  static const std::vector<BenchmarkProfile> kProfiles = {
      {"bbara", 4, 2, 10, 60},     {"bbsse", 7, 7, 16, 56},
      {"cse", 7, 7, 16, 91},       {"dk14", 3, 5, 7, 56},
      {"dk16", 2, 3, 27, 108},     {"dk27", 1, 2, 7, 14},
      {"donfile", 2, 1, 24, 96},   {"ex1", 9, 19, 20, 138},
      {"ex2", 2, 2, 19, 72},       {"ex3", 2, 2, 10, 36},
      {"ex5", 2, 2, 9, 32},        {"ex7", 2, 2, 10, 36},
      {"keyb", 7, 2, 19, 170},     {"kirkman", 12, 6, 16, 370},
      {"lion9", 2, 1, 9, 25},      {"mark1", 5, 16, 15, 22},
      {"opus", 5, 6, 10, 22},      {"planet", 7, 19, 48, 115},
      {"pma", 8, 8, 24, 73},       {"s1", 8, 6, 20, 107},
      {"s1a", 8, 6, 20, 107},      {"s386", 7, 7, 13, 64},
      {"s510", 19, 7, 47, 77},     {"s8", 4, 1, 5, 20},
      {"s820", 18, 19, 25, 232},   {"s832", 18, 19, 25, 245},
      {"sand", 11, 9, 32, 184},    {"scf", 27, 56, 121, 166},
      {"styr", 9, 10, 30, 166},    {"tbk", 6, 3, 32, 1569},
      {"tma", 7, 6, 20, 44},       {"train11", 2, 1, 11, 25},
      // Small extras used by tests and examples.
      {"lion", 2, 1, 4, 11},       {"train4", 2, 1, 4, 14},
      {"dk15", 3, 5, 4, 32},       {"mc", 3, 5, 4, 10},
  };
  return kProfiles;
}

std::optional<BenchmarkProfile> find_profile(const std::string& name) {
  for (const auto& p : benchmark_profiles())
    if (p.name == name) return p;
  return std::nullopt;
}

Fsm make_benchmark(const std::string& name) {
  auto profile = find_profile(name);
  if (!profile) throw std::out_of_range("unknown benchmark: " + name);
  GeneratorParams params;
  params.num_inputs = profile->inputs;
  params.num_outputs = profile->outputs;
  params.num_states = profile->states;
  params.target_products = profile->products;
  params.seed = 0x9E3779B97F4A7C15ULL;  // fixed: reconstruction is versioned
  return generate_fsm(params, name);
}

const std::vector<std::string>& table1_benchmarks() {
  // The 31 input-encoding problems of Table I, ordered as in the paper
  // (small machines first, then the larger state-assignment set).
  static const std::vector<std::string> kNames = {
      "bbara", "bbsse", "cse",     "dk14",  "ex3",  "ex5",  "ex7",
      "kirkman", "lion9", "mark1", "opus",  "train11", "s8",
      "dk16",  "donfile", "ex1",   "ex2",   "keyb", "s1",   "s1a",
      "sand",  "tma",   "pma",     "styr",  "tbk",  "s386", "s510",
      "planet", "s820", "s832",    "scf",
  };
  return kNames;
}

const std::vector<std::string>& table2_benchmarks() {
  static const std::vector<std::string> kNames = {
      "s1",   "s1a",  "dk16",   "donfile", "ex1",  "ex2", "keyb",
      "sand", "tma",  "pma",    "styr",    "tbk",  "s386", "s510",
      "planet", "s820", "s832", "scf",     "cse",
  };
  return kNames;
}

namespace {

// Hand-authored machines (original to this repository).

// Traffic-light controller on a highway/farm-road crossing.
// Inputs: car-on-farm-road, timeout.  Outputs: highway {G,Y,R} then
// farm {G,Y,R}.  Every state's input cubes partition the input space.
constexpr const char* kTraffic = R"(.i 2
.o 6
.s 4
.p 12
.r HG
0- HG HG 100001
10 HG HG 100001
11 HG HY 100001
-0 HY HY 010001
-1 HY FG 010001
10 FG FG 001100
0- FG FY 001100
11 FG FY 001100
-0 FY FY 001010
-1 FY HG 001010
.e
)";

// Three-floor elevator controller.  Inputs: down-request, up-request.
// Outputs: motor-up, motor-down, door-open.
constexpr const char* kElevator = R"(.i 2
.o 3
.s 7
.p 13
.r F1
00 F1 F1 001
1- F1 U12 100
01 F1 U12 100
00 F2 F2 001
1- F2 D21 010
01 F2 U23 100
00 F3 F3 001
1- F3 D32 010
01 F3 F3 001
-- U12 F2 100
-- U23 F3 100
-- D21 F1 010
-- D32 F2 010
.e
)";

// Vending machine accepting nickels/dimes, vending at 20 cents.
// Inputs: nickel, dime.  Outputs: vend, change.
constexpr const char* kVending = R"(.i 2
.o 2
.s 4
.p 16
.r C0
00 C0 C0 00
10 C0 C5 00
01 C0 C10 00
11 C0 C15 00
00 C5 C5 00
10 C5 C10 00
01 C5 C15 00
11 C5 C0 10
00 C10 C10 00
10 C10 C15 00
01 C10 C0 10
11 C10 C0 11
00 C15 C15 00
10 C15 C0 10
01 C15 C0 11
11 C15 C0 11
.e
)";

}  // namespace

const std::vector<std::string>& example_fsm_names() {
  static const std::vector<std::string> kNames = {"traffic", "elevator",
                                                  "vending"};
  return kNames;
}

Fsm make_example_fsm(const std::string& name) {
  const char* text = nullptr;
  if (name == "traffic") text = kTraffic;
  else if (name == "elevator") text = kElevator;
  else if (name == "vending") text = kVending;
  else throw std::out_of_range("unknown example fsm: " + name);
  KissParseResult r = parse_kiss(std::string(text));
  if (!r.ok()) throw std::runtime_error("embedded fsm parse error: " + r.error);
  r.fsm.name = name;
  return r.fsm;
}

}  // namespace picola
