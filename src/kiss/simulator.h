#pragma once
// Symbolic FSM simulator: steps a machine through binary input vectors,
// reporting the (possibly partially unspecified) outputs.  Used by the
// state-assignment tool's co-simulation self-check and by tests.

#include <string>
#include <vector>

#include "kiss/fsm.h"

namespace picola {

/// Result of one simulation step.
struct SimStep {
  bool matched = false;   ///< a transition row matched the input
  std::string output;     ///< the matched row's output plane ('-' = dc)
  int next_state = 0;     ///< state after the step (kAnyState rows keep the
                          ///< current state and set `free_next`)
  bool free_next = false; ///< next state was unspecified ('*')
};

/// Step-by-step simulator over the symbolic machine.
class FsmSimulator {
 public:
  explicit FsmSimulator(const Fsm& fsm);

  void reset() { state_ = fsm_->reset_state; }
  int state() const { return state_; }
  void set_state(int s) { state_ = s; }

  /// Apply one input vector (bits.size() == num_inputs).  On a match the
  /// simulator advances to the row's next state; unmatched inputs leave the
  /// state unchanged (the machine is incompletely specified there).
  SimStep step(const std::vector<int>& bits);

  /// True when the transition input cube matches the bit vector.
  static bool input_matches(const std::string& cube,
                            const std::vector<int>& bits);

 private:
  const Fsm* fsm_;
  int state_;
};

}  // namespace picola
