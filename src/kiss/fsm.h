#pragma once
// Finite-state-machine model matching the KISS2 benchmark format: binary
// input/output planes, symbolic states, cube-style transitions.

#include <string>
#include <vector>

namespace picola {

/// One KISS2 transition row: on `input` (a cube over {0,1,-}) in state
/// `from`, go to state `to` producing `output` (over {0,1,-}; '-' is a
/// don't-care output).  `to == kAnyState` models KISS2's '*' next state.
struct Transition {
  static constexpr int kAnyState = -1;
  std::string input;
  int from = 0;
  int to = 0;
  std::string output;
};

/// A symbolic FSM (Mealy model, as in the IWLS'93 benchmarks).
struct Fsm {
  std::string name;
  int num_inputs = 0;
  int num_outputs = 0;
  std::vector<std::string> state_names;
  std::vector<Transition> transitions;
  int reset_state = 0;

  int num_states() const { return static_cast<int>(state_names.size()); }

  /// Index of a state name; -1 when absent.
  int state_index(const std::string& name) const;

  /// Add a state if new; returns its index either way.
  int add_state(const std::string& name);

  /// Structural validation: index ranges, plane widths, characters.
  /// Returns an error message or "" when valid.
  std::string validate() const;

  /// True when for every state the transition input cubes are pairwise
  /// disjoint (the machine is deterministic).
  bool is_deterministic() const;

  /// True when for every state the transition input cubes cover the entire
  /// input space (the machine is completely specified).
  bool is_complete() const;
};

}  // namespace picola
