#include "kiss/generator.h"

#include <algorithm>
#include <cassert>
#include <random>

namespace picola {

namespace {

/// An input-space region as a cube string over {0,1,-}.
using Region = std::string;

/// Number of free ('-') positions.
int free_vars(const Region& r) {
  return static_cast<int>(std::count(r.begin(), r.end(), '-'));
}

/// Split `r` on its `k`-th free variable into the 0- and 1-halves.
std::pair<Region, Region> split_region(const Region& r, int k) {
  Region a = r, b = r;
  int seen = 0;
  for (size_t i = 0; i < r.size(); ++i) {
    if (r[i] != '-') continue;
    if (seen == k) {
      a[i] = '0';
      b[i] = '1';
      return {a, b};
    }
    ++seen;
  }
  assert(false && "no such free variable");
  return {a, b};
}

/// Partition the full input space into exactly `k` disjoint cubes (or as
/// many as the space allows) by repeated splitting; biased towards
/// splitting large regions so the partition stays balanced but irregular.
std::vector<Region> make_partition(int num_inputs, int k, std::mt19937_64& rng) {
  std::vector<Region> regions{Region(static_cast<size_t>(num_inputs), '-')};
  while (static_cast<int>(regions.size()) < k) {
    // Candidates: regions that can still be split.
    std::vector<size_t> splittable;
    for (size_t i = 0; i < regions.size(); ++i)
      if (free_vars(regions[i]) > 0) splittable.push_back(i);
    if (splittable.empty()) break;
    // Prefer the largest regions (most free variables), with a random tie
    // break, so the split tree stays shallow and cube-like.
    std::shuffle(splittable.begin(), splittable.end(), rng);
    size_t pick = splittable[0];
    for (size_t i : splittable)
      if (free_vars(regions[i]) > free_vars(regions[pick])) pick = i;
    int fv = free_vars(regions[pick]);
    auto [a, b] = split_region(regions[pick],
                               static_cast<int>(rng() % static_cast<uint64_t>(fv)));
    regions[pick] = a;
    regions.push_back(b);
  }
  return regions;
}

std::string random_output(int num_outputs, std::mt19937_64& rng) {
  std::string out(static_cast<size_t>(num_outputs), '0');
  for (char& ch : out) ch = (rng() % 2) ? '1' : '0';
  return out;
}

}  // namespace

Fsm generate_fsm(const GeneratorParams& p, const std::string& name) {
  assert(p.num_states >= 1 && p.num_inputs >= 0 && p.num_outputs >= 1);
  // Mix the name into the seed so different benchmarks with the same
  // profile differ.
  uint64_t h = p.seed;
  for (char ch : name) h = h * 1099511628211ULL + static_cast<uint64_t>(ch);
  std::mt19937_64 rng(h);

  Fsm fsm;
  fsm.name = name;
  fsm.num_inputs = p.num_inputs;
  fsm.num_outputs = p.num_outputs;
  for (int i = 0; i < p.num_states; ++i)
    fsm.state_names.push_back("st" + std::to_string(i));
  fsm.reset_state = 0;

  const int ns = p.num_states;
  const int csize = std::max(1, p.cluster_size);
  const int nclusters = (ns + csize - 1) / csize;

  std::uniform_real_distribution<double> coin(0.0, 1.0);

  // Rows budget: distribute target_products across states as evenly as the
  // cluster partitions allow.
  int rows_per_state = std::max(1, p.target_products / std::max(1, ns));
  int extra = std::max(0, p.target_products - rows_per_state * ns);

  for (int c = 0; c < nclusters; ++c) {
    int first = c * csize;
    int last = std::min(ns, first + csize);  // exclusive
    int members = last - first;

    // This cluster's share of the leftover rows enlarges its partition.
    int k = rows_per_state;
    if (extra > 0) {
      int take = std::min(extra, members);
      // One extra region when any member still needs an extra row.
      if (take > 0) k += 1;
      extra -= take;
    }
    std::vector<Region> partition = make_partition(p.num_inputs, k, rng);

    // Cluster-wide output palette: a few patterns shared by the members so
    // that symbolic minimisation can merge their rows.
    std::vector<std::string> palette;
    for (int i = 0; i < std::max(1, p.palette_size); ++i)
      palette.push_back(random_output(p.num_outputs, rng));

    for (size_t ri = 0; ri < partition.size(); ++ri) {
      const Region& region = partition[ri];
      bool shared = coin(rng) < p.shared_rule_prob;
      // Shared rule: every member reacts identically in this region.
      int shared_next = -1;
      std::string shared_out;
      if (shared) {
        bool local = coin(rng) < p.locality;
        shared_next = local
                          ? first + static_cast<int>(rng() % static_cast<uint64_t>(members))
                          : static_cast<int>(rng() % static_cast<uint64_t>(ns));
        shared_out = palette[rng() % palette.size()];
      }
      for (int st = first; st < last; ++st) {
        Transition t;
        t.input = region;
        t.from = st;
        if (shared) {
          t.to = shared_next;
          t.output = shared_out;
        } else {
          bool local = coin(rng) < p.locality;
          t.to = local
                     ? first + static_cast<int>(rng() % static_cast<uint64_t>(members))
                     : static_cast<int>(rng() % static_cast<uint64_t>(ns));
          t.output = palette[rng() % palette.size()];
        }
        fsm.transitions.push_back(std::move(t));
      }
    }
  }
  return fsm;
}

}  // namespace picola
