#pragma once
// Registry of the IWLS'93 benchmark profiles used by the paper's
// evaluation, a factory that reconstructs benchmark-scale machines with
// the deterministic generator (see generator.h and DESIGN.md §5), and a
// few genuinely hand-authored small machines for examples and tests.

#include <optional>
#include <string>
#include <vector>

#include "kiss/fsm.h"

namespace picola {

/// Published profile of one IWLS'93 FSM benchmark.
struct BenchmarkProfile {
  std::string name;
  int inputs;
  int outputs;
  int states;
  int products;  ///< transition rows in the original KISS2 file
};

/// All registered benchmark profiles (the machines named in the paper's
/// Tables I and II, plus a few common small ones).
const std::vector<BenchmarkProfile>& benchmark_profiles();

/// Profile lookup by name; nullopt when unknown.
std::optional<BenchmarkProfile> find_profile(const std::string& name);

/// Reconstruct the named benchmark deterministically (same name -> same
/// machine).  Throws std::out_of_range for unknown names.
Fsm make_benchmark(const std::string& name);

/// The 31 encoding problems of Table I (ordered as in the paper).
const std::vector<std::string>& table1_benchmarks();

/// The 19 state-assignment machines of Table II.
const std::vector<std::string>& table2_benchmarks();

/// Hand-authored small machines ("traffic", "elevator", "vending"),
/// written for this repository; stable golden inputs for examples and
/// tests.  Throws std::out_of_range for unknown names.
Fsm make_example_fsm(const std::string& name);

/// Names accepted by make_example_fsm().
const std::vector<std::string>& example_fsm_names();

}  // namespace picola
