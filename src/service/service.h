#pragma once
// EncodingService — the concurrent batch-encoding façade shared by the
// `picola batch` / `picola serve` front-ends and the throughput bench.
//
// A submitted Job is canonicalised (job.h) and answered from the sharded
// ResultCache when an equal job was already solved; otherwise its backend
// plan (portfolio/backend.h — R picola restarts for the default backend,
// plus the SAT and annealer slots when the job selects them) fans out as
// independent ThreadPool tasks.  The last slot to finish reduces the
// candidates by espresso cube count with deterministic tie-breaking
// (lowest cost, then lowest plan index) — exactly the rule of the
// sequential picola_encode_best and portfolio_encode — so a parallel run
// is bit-identical to a sequential one.  Identical jobs submitted while
// the first is still in flight share its future instead of being
// recomputed.
//
// The service parallelises across jobs *and* within a job: a batch of B
// jobs with R restarts each becomes B*R pool tasks, no task ever blocks
// on another, and there is no nested-wait deadlock by construction.

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "eval/metrics.h"
#include "obs/metrics.h"
#include "persist/store.h"
#include "service/job.h"
#include "service/result_cache.h"
#include "service/thread_pool.h"

namespace picola {

struct ServiceOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency().
  int num_threads = 0;
  /// Result-cache capacity (entries) and shard count.
  size_t cache_capacity = 1024;
  int cache_shards = 8;
  /// Bound on the pool's work queue (0 = unbounded); submitters block
  /// when it is full.
  size_t max_queue = 0;
  /// Durable cache directory (persist/store.h).  Empty = persistence
  /// off.  When set, construction recovers the cache from the dir
  /// (throwing std::runtime_error if its contents fail verification),
  /// every insert/eviction is journaled, and destruction writes a final
  /// snapshot — a clean restart starts fully warm.
  std::string cache_dir;
  /// Seconds between periodic background snapshots: > 0 = at most one
  /// per interval, 0 = after every change (test/chaos mode), < 0 = only
  /// the shutdown snapshot.  Ignored when cache_dir is empty.
  int snapshot_interval_s = 300;
};

/// The outcome of one job, delivered through a shared_future.
struct JobResult {
  PicolaResult picola;
  long total_cubes = 0;   ///< espresso-evaluated implementation cubes
  /// Which backend produced the winning encoding (kPicola unless the job
  /// selected another backend or the portfolio).
  portfolio::BackendKind backend = portfolio::BackendKind::kPicola;
  /// Answered without computing: either a completed-result cache hit or
  /// an in-flight join (ServiceStats tells the two apart).
  bool cache_hit = false;
  double wall_ms = 0;     ///< submit-to-completion wall time (0 on hits)
  /// Submission-to-first-slot-dequeue latency — how long the job sat in
  /// the pool queue before any backend slot started (0 on hits).  The
  /// server's slow-request log uses it to split wall time into queue wait
  /// vs encode time.
  double queue_wait_ms = 0;
};

class EncodingService {
 public:
  explicit EncodingService(const ServiceOptions& options = {});
  ~EncodingService();  ///< waits for in-flight jobs, then shuts the pool down

  EncodingService(const EncodingService&) = delete;
  EncodingService& operator=(const EncodingService&) = delete;

  /// Invoked exactly once when a job completes (the future it receives is
  /// ready — get() never blocks).  Runs on the worker thread that
  /// finished the job, inline in submit() on a cache hit, or on the
  /// completing thread of the joined twin on an in-flight join; it must
  /// not call back into the service's blocking APIs.
  using DoneCallback = std::function<void(std::shared_future<JobResult>)>;

  /// Submit one job.  The future is ready immediately on a cache hit; a
  /// failure inside the encoder surfaces as an exception from get().
  /// Cancellation: a job whose options.cancel token fires mid-run fails
  /// with CancelledError and is never cached.  `done`, when given, makes
  /// submission fully non-blocking — the event-driven network server
  /// (src/net) relies on it instead of parking a thread on the future.
  std::shared_future<JobResult> submit(Job job, DoneCallback done = nullptr);

  /// Submit many jobs; futures are returned in submission order.
  std::vector<std::shared_future<JobResult>> submit_batch(
      std::vector<Job> jobs);

  /// Block until every submitted job has completed.
  void wait_all();

  /// Snapshot of the service counters (see eval/metrics.h).  Rendered
  /// from the per-instance metrics registry — the struct is a view.
  ServiceStats stats() const;

  /// The live per-instance registry behind stats(): service/* counters,
  /// pool/* contention metrics, cache/* shard heat, portfolio/* backend
  /// latency histograms, sat/* solver counters, and the service/job
  /// wall-time histogram (ns).
  const obs::MetricsRegistry& metrics() const { return registry_; }

  /// Bring the point-in-time gauges (service/uptime_seconds,
  /// cache/entries) up to date; call before snapshotting the registry.
  void refresh_gauges() const;

  int num_threads() const { return pool_.num_threads(); }
  const ResultCache& cache() const { return cache_; }

  /// The durable store, or nullptr when persistence is off (/statusz).
  const persist::CacheStore* store() const { return store_.get(); }

  /// Snapshot the cache now if the store says one is due (see
  /// StoreOptions::snapshot_interval_s).  Runs inline on the calling
  /// thread — finish_job invokes it on the completing worker (that IS
  /// the service pool), the network server from its idle sweep; an
  /// atomic guard keeps concurrent callers from stacking snapshots.
  void maybe_snapshot();

  /// Unconditionally snapshot (bench/tests).  No-op without a store.
  bool snapshot_now(std::string* error = nullptr);

  /// Graceful-drain snapshot (net/server.cpp, docs/CLUSTER.md): taken
  /// *before* the final admitted request is answered, so a rolling
  /// restart never replays a journal it could have compacted.  Unlike
  /// snapshot_now() this WAITS for any racing periodic snapshot (which
  /// may predate the final insert) and then snapshots again, and it
  /// bumps the persist/drain_snapshots counter.  No-op without a store.
  bool drain_snapshot(std::string* error = nullptr);

  /// True when an equal job is already memoised.  Side-channel read for
  /// the peer-forwarding pre-check: no recency refresh, no hit/miss
  /// accounting — submit() keeps its own books.
  bool is_cached(const CanonicalJob& job);

  /// The cache entry for `fingerprint` serialised as a persist/codec.h
  /// record, or nullopt — the payload of a `peek` reply (the requester
  /// decodes, re-canonicalises, and deep-compares before trusting it).
  std::optional<std::string> peek_record(uint64_t fingerprint);

  /// Adopt a result fetched from a peer's cache as if computed locally:
  /// journaled like any insert, so it survives a restart and future
  /// submits hit.
  void adopt(const CanonicalJob& job, CachedResult result);

 private:
  struct InFlight;

  void finish_job(const std::shared_ptr<InFlight>& fly);
  static void run_callbacks(std::vector<DoneCallback>& callbacks,
                            const std::shared_future<JobResult>& future);

  // The registry must outlive (so precede) the pool and the counter
  // references below; the store must outlive the cache (which holds it
  // as listener) and die after the pool (whose workers append to it).
  obs::MetricsRegistry registry_;
  std::unique_ptr<persist::CacheStore> store_;
  ThreadPool pool_;
  ResultCache cache_;
  std::atomic<bool> snapshot_inflight_{false};

  obs::Counter& jobs_submitted_;
  obs::Counter& jobs_completed_;
  obs::Counter& cache_hits_;
  obs::Counter& inflight_joins_;
  obs::Counter& cache_misses_;
  obs::Counter& restart_tasks_;
  obs::Histogram& job_wall_ns_;  ///< "service/job" wall time, nanoseconds
  // Per-backend visibility (ISSUE 7): slot latency histograms, winner
  // counters, and the SAT solver's conflict/propagation tallies.
  obs::Histogram& backend_picola_ns_;  ///< "portfolio/picola" slot latency
  obs::Histogram& backend_sat_ns_;     ///< "portfolio/sat"
  obs::Histogram& backend_anneal_ns_;  ///< "portfolio/anneal"
  obs::Counter& wins_picola_;          ///< "service/backend_picola" winners
  obs::Counter& wins_sat_;
  obs::Counter& wins_anneal_;
  obs::Counter& sat_conflicts_;
  obs::Counter& sat_propagations_;
  obs::Counter& sat_decisions_;
  obs::Counter& sat_solver_calls_;
  obs::Gauge& uptime_seconds_;  ///< "service/uptime_seconds"
  obs::Gauge& cache_entries_;   ///< "cache/entries" live occupancy
  uint64_t start_ns_ = 0;       ///< construction time (uptime base)

  obs::Histogram& backend_histogram(portfolio::BackendKind kind);

  mutable std::mutex mu_;
  std::condition_variable cv_done_;
  std::unordered_map<uint64_t, std::shared_ptr<InFlight>> pending_;
};

}  // namespace picola
