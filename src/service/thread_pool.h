#pragma once
// Fixed-size thread pool with a bounded work queue and graceful shutdown.
//
// `post()` enqueues a task and blocks while the queue is full
// (backpressure — a batch producer cannot outrun the workers without
// bound); `submit()` wraps the task in a std::future so return values and
// exceptions propagate to the caller.  `shutdown()` (and the destructor)
// drains every queued task before joining the workers; tasks posted after
// shutdown began are rejected with std::runtime_error.  An exception
// escaping a raw post()ed task is swallowed by the worker (counted as
// pool/tasks_failed when metrics are attached) instead of terminating
// the process.
//
// The pool records the queue-depth high-water mark for ServiceStats.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace picola {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).  `max_queue` bounds the
  /// number of tasks waiting to run (not counting the ones executing);
  /// 0 means unbounded.  When `metrics` is given, the pool keeps
  /// pool/tasks_posted and pool/tasks_executed counters, the live
  /// pool/queue_depth and pool/active_threads gauges, the
  /// pool/queue_depth_hwm high-water gauge, and the pool/queue_wait
  /// histogram (enqueue->dequeue nanoseconds per task — the contention
  /// signal behind the scaling plateau, see docs/OBSERVABILITY.md) in it
  /// (the registry must outlive the pool).
  explicit ThreadPool(int num_threads, size_t max_queue = 0,
                      obs::MetricsRegistry* metrics = nullptr);

  /// Drains the queue and joins (graceful shutdown).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; blocks while the queue is at capacity.  Throws
  /// std::runtime_error once shutdown has begun.
  void post(std::function<void()> task);

  /// Enqueue a callable and receive its result (or exception) through a
  /// future.  A throwing body is counted in pool/task_exceptions on its
  /// way into the future (the packaged_task absorbs it before the worker
  /// could see it).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [this, fn = std::forward<F>(f)]() mutable -> R {
          try {
            return fn();
          } catch (...) {
            if (task_exceptions_) task_exceptions_->add(1);
            throw;
          }
        });
    std::future<R> fut = task->get_future();
    post([task]() { (*task)(); });
    return fut;
  }

  /// Finish every queued task, then join the workers.  Idempotent.
  void shutdown();

  /// Block until the queue is empty and no task is executing.  The pool
  /// stays usable afterwards.
  void wait_idle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Largest queue depth observed since construction.
  size_t queue_high_water() const;

 private:
  void worker_loop();

  struct Queued {
    uint64_t enqueue_ns = 0;  ///< stamped only when metrics are attached
    std::function<void()> fn;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_task_;   ///< workers wait for work
  std::condition_variable cv_space_;  ///< producers wait for queue space
  std::condition_variable cv_idle_;   ///< wait_idle() waiters
  std::deque<Queued> queue_;
  std::vector<std::thread> workers_;
  size_t max_queue_;
  size_t queue_hwm_ = 0;
  int executing_ = 0;
  bool shutting_down_ = false;
  obs::Counter* tasks_posted_ = nullptr;    ///< optional, see constructor
  obs::Counter* tasks_executed_ = nullptr;
  obs::Counter* tasks_failed_ = nullptr;  ///< raw post()ed tasks that threw
  obs::Counter* task_exceptions_ = nullptr;  ///< every task body that threw
  obs::Gauge* queue_depth_ = nullptr;        ///< live waiting-task count
  obs::Gauge* queue_depth_hwm_ = nullptr;
  obs::Gauge* active_threads_ = nullptr;  ///< workers inside a task body
  obs::Histogram* queue_wait_ns_ = nullptr;  ///< enqueue->dequeue latency
};

}  // namespace picola
