#pragma once
// A batch-encoding job: one ConstraintSet + PicolaOptions + restart count,
// reduced to a canonical form with a stable 64-bit fingerprint so the
// ResultCache can recognise repeated (and permuted-but-equal) submissions.
//
// Canonical form: constraints are re-added through ConstraintSet::add
// (members sorted and deduplicated, duplicate groups merged into one
// weight) and then sorted lexicographically by member list, so any
// permutation of the same groups — or of the members within a group —
// canonicalises to the same set.  The fingerprint hashes the canonical
// set together with every PicolaOptions field that affects the result;
// the canonical job itself is kept beside each cache entry so a
// fingerprint collision degrades to a cache miss, never a wrong result.

#include <cstdint>
#include <string>

#include "core/picola.h"
#include "portfolio/backend.h"

namespace picola {

/// One service request, as submitted by a front-end.
struct Job {
  ConstraintSet set;
  PicolaOptions options;
  /// Backend selection (picola / sat / anneal / portfolio) and backend
  /// knobs; the default is plain PICOLA, which keeps the fan-out
  /// identical to the pre-portfolio service.
  portfolio::PortfolioOptions portfolio;
  /// Multi-start restarts (>= 1); each fans out as an independent pool
  /// task (see encoders/restart.h).
  int restarts = 1;
  /// Free-form label (e.g. the source file path); not part of the
  /// fingerprint.
  std::string tag;
  /// Request-correlation id propagated from the wire (see docs/SERVICE.md);
  /// stamped onto every span this job records.  Like `tag` it carries
  /// provenance, not content, so it is not part of the fingerprint.
  uint64_t trace_id = 0;
};

/// A job in canonical form, with its fingerprint.
struct CanonicalJob {
  ConstraintSet set;
  PicolaOptions options;
  portfolio::PortfolioOptions portfolio;
  int restarts = 1;
  uint64_t fingerprint = 0;

  /// Deep equality of everything the fingerprint hashes (collision check).
  bool equivalent(const CanonicalJob& other) const;
};

/// Canonicalise `job` and compute its fingerprint.
CanonicalJob canonicalize(const Job& job);

/// Stable 64-bit content hash of an encoding (code list), used by the
/// CLI front-ends to compare results compactly.
uint64_t encoding_fingerprint(const Encoding& enc);

/// Cluster routing key: a stable hash of the canonical constraint set
/// ALONE — no options, restarts or backend knobs.  Placement on the
/// consistent-hash ring (net/hash_ring.h) must agree between clients
/// and servers even when their per-node option defaults differ, so the
/// key hashes only the problem content; the full CanonicalJob
/// fingerprint stays the cache key.  Same content, same node — which is
/// also what keeps the cluster's cache locality intact when callers
/// vary knobs on one problem.
uint64_t route_key(const ConstraintSet& set);

}  // namespace picola
