#include "service/job.h"

#include <algorithm>
#include <bit>

namespace picola {

namespace {

/// FNV-1a with a 64-bit avalanche finisher (splitmix64) applied by
/// callers that want a final mix; plain FNV-1a is fine for incremental
/// word hashing here.
struct Hasher {
  uint64_t h = 0xCBF29CE484222325ULL;

  void mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  }
  void mix_double(double d) { mix(std::bit_cast<uint64_t>(d)); }

  uint64_t finish() const {
    // splitmix64 finisher: spreads the FNV state over all 64 bits.
    uint64_t z = h + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
};

bool options_equal(const PicolaOptions& a, const PicolaOptions& b) {
  return a.use_guides == b.use_guides && a.use_classify == b.use_classify &&
         a.greedy_continue == b.greedy_continue &&
         a.progress_weight == b.progress_weight &&
         a.size_weight == b.size_weight && a.unweighted == b.unweighted &&
         a.infeasible_weight_factor == b.infeasible_weight_factor &&
         a.num_bits == b.num_bits &&
         a.guide.weight_factor == b.guide.weight_factor &&
         a.guide.recursive == b.guide.recursive &&
         a.tie_break_seed == b.tie_break_seed &&
         a.self_check == b.self_check;
}

}  // namespace

bool CanonicalJob::equivalent(const CanonicalJob& other) const {
  if (restarts != other.restarts ||
      set.num_symbols != other.set.num_symbols ||
      set.constraints.size() != other.set.constraints.size() ||
      !options_equal(options, other.options) ||
      !portfolio::portfolio_options_equal(portfolio, other.portfolio))
    return false;
  for (size_t i = 0; i < set.constraints.size(); ++i) {
    const FaceConstraint& a = set.constraints[i];
    const FaceConstraint& b = other.set.constraints[i];
    if (a.members != b.members || a.weight != b.weight) return false;
  }
  return true;
}

CanonicalJob canonicalize(const Job& job) {
  CanonicalJob c;
  c.options = job.options;
  // The cancel token never affects the result of a run that completes, so
  // it is stripped from the canonical form: cache entries must not pin
  // (or compare) request-lifetime tokens.  The service captures the
  // token from the original Job before canonicalising.
  c.options.cancel.reset();
  c.restarts = std::max(1, job.restarts);

  // Normalise through add() (sorts members, merges duplicate groups, drops
  // trivial groups), then order the groups themselves.
  c.set.num_symbols = job.set.num_symbols;
  for (const FaceConstraint& f : job.set.constraints)
    c.set.add(f.members, f.weight);
  std::sort(c.set.constraints.begin(), c.set.constraints.end(),
            [](const FaceConstraint& a, const FaceConstraint& b) {
              return a.members < b.members;
            });

  Hasher h;
  h.mix(static_cast<uint64_t>(c.set.num_symbols));
  h.mix(static_cast<uint64_t>(c.restarts));
  const PicolaOptions& o = c.options;
  h.mix(static_cast<uint64_t>(o.use_guides) | (uint64_t{o.use_classify} << 1) |
        (uint64_t{o.greedy_continue} << 2) | (uint64_t{o.unweighted} << 3) |
        (uint64_t{o.guide.recursive} << 4) |
        (uint64_t{o.self_check} << 5));
  h.mix_double(o.progress_weight);
  h.mix_double(o.size_weight);
  h.mix_double(o.infeasible_weight_factor);
  h.mix_double(o.guide.weight_factor);
  h.mix(static_cast<uint64_t>(o.num_bits));
  h.mix(o.tie_break_seed);
  // Backend selection and knobs all change the result, so all of them
  // are part of the key (results from different backends must never
  // answer each other's cache lookups).
  c.portfolio = job.portfolio;
  h.mix(static_cast<uint64_t>(c.portfolio.backend) |
        (static_cast<uint64_t>(c.portfolio.sat_card) << 8) |
        (static_cast<uint64_t>(c.portfolio.sat_distinct) << 16) |
        (static_cast<uint64_t>(c.portfolio.sat_sweep) << 24));
  h.mix(static_cast<uint64_t>(c.portfolio.sat_max_conflicts));
  h.mix(c.portfolio.anneal_seed);
  for (const FaceConstraint& f : c.set.constraints) {
    h.mix(static_cast<uint64_t>(f.members.size()));
    for (int m : f.members) h.mix(static_cast<uint64_t>(m));
    h.mix_double(f.weight);
  }
  c.fingerprint = h.finish();
  return c;
}

uint64_t encoding_fingerprint(const Encoding& enc) {
  Hasher h;
  h.mix(static_cast<uint64_t>(enc.num_symbols));
  h.mix(static_cast<uint64_t>(enc.num_bits));
  for (uint32_t code : enc.codes) h.mix(code);
  return h.finish();
}

uint64_t route_key(const ConstraintSet& set) {
  // Same normalisation as canonicalize(): re-add through add() (sorts
  // members, merges duplicates, drops trivial groups), then order the
  // groups, so any permutation of one problem routes identically.
  ConstraintSet canon;
  canon.num_symbols = set.num_symbols;
  for (const FaceConstraint& f : set.constraints)
    canon.add(f.members, f.weight);
  std::sort(canon.constraints.begin(), canon.constraints.end(),
            [](const FaceConstraint& a, const FaceConstraint& b) {
              return a.members < b.members;
            });
  Hasher h;
  h.mix(static_cast<uint64_t>(canon.num_symbols));
  for (const FaceConstraint& f : canon.constraints) {
    h.mix(static_cast<uint64_t>(f.members.size()));
    for (int m : f.members) h.mix(static_cast<uint64_t>(m));
    h.mix_double(f.weight);
  }
  return h.finish();
}

}  // namespace picola
