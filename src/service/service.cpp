#include "service/service.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "encoders/restart.h"
#include "eval/constraint_eval.h"

namespace picola {

namespace {

int default_threads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 4;
}

}  // namespace

/// Shared state of one computing job: each restart task writes its own
/// slot, the last one to decrement `remaining` reduces and fulfils the
/// promise.  Tasks never wait on each other, so a saturated pool cannot
/// deadlock.
struct EncodingService::InFlight {
  CanonicalJob job;
  std::promise<JobResult> promise;
  std::shared_future<JobResult> future;
  std::vector<PicolaResult> results;
  std::vector<long> costs;
  std::atomic<int> remaining{0};
  std::mutex error_mu;
  std::exception_ptr error;
  std::chrono::steady_clock::time_point start;
};

EncodingService::EncodingService(const ServiceOptions& options)
    : pool_(default_threads(options.num_threads), options.max_queue),
      cache_(options.cache_capacity, options.cache_shards) {}

EncodingService::~EncodingService() {
  // Drain and join before any other member is destroyed: restart tasks
  // reference the cache and the service mutex.
  pool_.shutdown();
}

std::shared_future<JobResult> EncodingService::submit(Job job) {
  CanonicalJob cj = canonicalize(job);
  const int restarts = cj.restarts;

  std::shared_ptr<InFlight> fly;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++jobs_submitted_;

    // An equal job already in flight: share its future.
    auto it = pending_.find(cj.fingerprint);
    if (it != pending_.end() && it->second->job.equivalent(cj)) {
      ++cache_hits_;
      return it->second->future;
    }

    // A finished equal job: answer from the cache.
    if (auto hit = cache_.lookup(cj)) {
      ++cache_hits_;
      ++jobs_completed_;
      std::promise<JobResult> ready;
      JobResult r;
      r.picola = std::move(hit->picola);
      r.total_cubes = hit->total_cubes;
      r.cache_hit = true;
      ready.set_value(std::move(r));
      return ready.get_future().share();
    }

    ++cache_misses_;
    restart_tasks_ += restarts;
    fly = std::make_shared<InFlight>();
    fly->job = std::move(cj);
    fly->future = fly->promise.get_future().share();
    fly->results.resize(static_cast<size_t>(restarts));
    fly->costs.assign(static_cast<size_t>(restarts), 0);
    fly->remaining.store(restarts);
    fly->start = std::chrono::steady_clock::now();
    // emplace, not operator[]: when a different job collides on the
    // fingerprint, the earlier entry stays (its finish erases by identity).
    pending_.emplace(fly->job.fingerprint, fly);
  }

  for (int r = 0; r < restarts; ++r) {
    auto run_restart = [this, fly, r]() {
      try {
        PicolaResult res = picola_encode(
            fly->job.set, picola_restart_options(fly->job.options, r));
        long cost =
            evaluate_constraints(fly->job.set, res.encoding).total_cubes;
        fly->results[static_cast<size_t>(r)] = std::move(res);
        fly->costs[static_cast<size_t>(r)] = cost;
      } catch (...) {
        std::lock_guard<std::mutex> lock(fly->error_mu);
        if (!fly->error) fly->error = std::current_exception();
      }
      if (fly->remaining.fetch_sub(1) == 1) finish_job(fly);
    };
    try {
      pool_.post(run_restart);
    } catch (...) {
      // The pool is shutting down: account for every task not posted.
      {
        std::lock_guard<std::mutex> lock(fly->error_mu);
        if (!fly->error) fly->error = std::current_exception();
      }
      if (fly->remaining.fetch_sub(restarts - r) == restarts - r)
        finish_job(fly);
      break;
    }
  }
  return fly->future;
}

std::vector<std::shared_future<JobResult>> EncodingService::submit_batch(
    std::vector<Job> jobs) {
  std::vector<std::shared_future<JobResult>> futures;
  futures.reserve(jobs.size());
  for (Job& j : jobs) futures.push_back(submit(std::move(j)));
  return futures;
}

void EncodingService::finish_job(const std::shared_ptr<InFlight>& fly) {
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - fly->start)
                  .count();
  JobResult out;
  if (!fly->error) {
    // Deterministic reduction — identical to sequential picola_encode_best.
    RestartWinner winner;
    for (int r = 0; r < static_cast<int>(fly->costs.size()); ++r)
      winner.offer(fly->costs[static_cast<size_t>(r)], r);
    out.picola = std::move(fly->results[static_cast<size_t>(winner.restart)]);
    out.total_cubes = winner.cost;
    out.wall_ms = ms;
    CachedResult memo;
    memo.picola = out.picola;
    memo.total_cubes = out.total_cubes;
    cache_.insert(fly->job, std::move(memo));
  }
  // Bookkeeping strictly before fulfilling the promise: a client that has
  // observed get() returning must find the result in the cache (not a
  // stale pending entry) when it resubmits the same job.
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(fly->job.fingerprint);
    if (it != pending_.end() && it->second == fly) pending_.erase(it);
    ++jobs_completed_;
    total_job_ms_ += ms;
    if (ms > max_job_ms_) max_job_ms_ = ms;
  }
  cv_done_.notify_all();
  if (fly->error)
    fly->promise.set_exception(fly->error);
  else
    fly->promise.set_value(std::move(out));
}

void EncodingService::wait_all() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this]() { return pending_.empty(); });
}

ServiceStats EncodingService::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.jobs_submitted = jobs_submitted_;
    s.jobs_completed = jobs_completed_;
    s.cache_hits = cache_hits_;
    s.cache_misses = cache_misses_;
    s.restart_tasks = restart_tasks_;
    s.total_job_ms = total_job_ms_;
    s.max_job_ms = max_job_ms_;
  }
  s.queue_high_water = pool_.queue_high_water();
  return s;
}

}  // namespace picola
