#include "service/service.h"

#include <atomic>
#include <new>
#include <stdexcept>
#include <thread>

#include "encoders/restart.h"
#include "eval/constraint_eval.h"
#include "fault/fault.h"
#include "persist/codec.h"
#include "obs/obs.h"
#include "obs/tracer.h"

namespace picola {

namespace {

int default_threads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 4;
}

}  // namespace

/// Shared state of one computing job: each backend-plan task writes its
/// own slot, the last one to decrement `remaining` reduces and fulfils
/// the promise.  Tasks never wait on each other, so a saturated pool
/// cannot deadlock.
struct EncodingService::InFlight {
  CanonicalJob job;
  std::promise<JobResult> promise;
  std::shared_future<JobResult> future;
  std::vector<portfolio::BackendTask> plan;
  std::vector<portfolio::BackendOutcome> outcomes;
  std::atomic<int> remaining{0};
  std::mutex error_mu;
  std::exception_ptr error;
  uint64_t start_ns = 0;  ///< obs::now_ns() at submission
  /// When the first slot was dequeued by a worker (0 until then) — the
  /// job-level queue-wait stamp behind JobResult::queue_wait_ms.
  std::atomic<uint64_t> first_dequeue_ns{0};
  /// Wire-propagated correlation id (0 = none), stamped onto every span
  /// the slots record via obs::ScopedTraceId.
  uint64_t trace_id = 0;
  /// The first submitter's cancel token (canonicalize strips it from
  /// `job`); re-attached to every restart's options.
  std::shared_ptr<const CancelToken> cancel;
  /// Completion callbacks (submitter's + joiners'), guarded by the
  /// service mutex; moved out when the pending entry is erased.
  std::vector<DoneCallback> callbacks;
};

EncodingService::EncodingService(const ServiceOptions& options)
    : pool_(default_threads(options.num_threads), options.max_queue,
            &registry_),
      cache_(options.cache_capacity, options.cache_shards, &registry_),
      jobs_submitted_(registry_.counter("service/jobs_submitted")),
      jobs_completed_(registry_.counter("service/jobs_completed")),
      cache_hits_(registry_.counter("service/cache_hits")),
      inflight_joins_(registry_.counter("service/inflight_joins")),
      cache_misses_(registry_.counter("service/cache_misses")),
      restart_tasks_(registry_.counter("service/restart_tasks")),
      job_wall_ns_(registry_.histogram("service/job")),
      backend_picola_ns_(registry_.histogram("portfolio/picola")),
      backend_sat_ns_(registry_.histogram("portfolio/sat")),
      backend_anneal_ns_(registry_.histogram("portfolio/anneal")),
      wins_picola_(registry_.counter("service/backend_picola")),
      wins_sat_(registry_.counter("service/backend_sat")),
      wins_anneal_(registry_.counter("service/backend_anneal")),
      sat_conflicts_(registry_.counter("sat/conflicts")),
      sat_propagations_(registry_.counter("sat/propagations")),
      sat_decisions_(registry_.counter("sat/decisions")),
      sat_solver_calls_(registry_.counter("sat/solver_calls")),
      uptime_seconds_(registry_.gauge("service/uptime_seconds")),
      cache_entries_(registry_.gauge("cache/entries")),
      start_ns_(obs::now_ns()) {
  if (!options.cache_dir.empty()) {
    persist::StoreOptions so;
    so.dir = options.cache_dir;
    so.snapshot_interval_s = options.snapshot_interval_s;
    store_ = std::make_unique<persist::CacheStore>(so, &registry_);
    // Recover before any traffic; throws on corruption (a service must
    // refuse to start on a cache dir it cannot trust).
    store_->load(&cache_);
    // Journal every mutation from here on.
    cache_.set_listener(store_.get());
  }
}

EncodingService::~EncodingService() {
  // Drain and join before any other member is destroyed: restart tasks
  // reference the cache and the service mutex.
  pool_.shutdown();
  if (store_) {
    // Workers are gone: detach the journal hook and write the shutdown
    // snapshot, so a clean restart is fully warm regardless of interval.
    cache_.set_listener(nullptr);
    store_->snapshot(cache_);
  }
}

void EncodingService::maybe_snapshot() {
  if (!store_ || !store_->due()) return;
  bool expected = false;
  if (!snapshot_inflight_.compare_exchange_strong(expected, true)) return;
  store_->snapshot(cache_);
  snapshot_inflight_.store(false);
}

bool EncodingService::snapshot_now(std::string* error) {
  if (!store_) return true;
  bool expected = false;
  if (!snapshot_inflight_.compare_exchange_strong(expected, true))
    return true;  // a concurrent snapshot is already running
  bool ok = store_->snapshot(cache_, error);
  snapshot_inflight_.store(false);
  return ok;
}

bool EncodingService::drain_snapshot(std::string* error) {
  if (!store_) return true;
  // A racing periodic snapshot may have started before the final
  // insert landed, so "one is already running" is NOT good enough here
  // — wait it out, then write one that provably covers everything.
  bool expected = false;
  while (!snapshot_inflight_.compare_exchange_strong(expected, true)) {
    expected = false;
    std::this_thread::yield();
  }
  bool ok = store_->snapshot(cache_, error);
  snapshot_inflight_.store(false);
  registry_.counter("persist/drain_snapshots").add(1);
  return ok;
}

bool EncodingService::is_cached(const CanonicalJob& job) {
  auto entry = cache_.find_by_fingerprint(job.fingerprint);
  return entry && entry->first.equivalent(job);
}

std::optional<std::string> EncodingService::peek_record(uint64_t fingerprint) {
  auto entry = cache_.find_by_fingerprint(fingerprint);
  if (!entry) return std::nullopt;
  return persist::encode_record(entry->first, entry->second);
}

void EncodingService::adopt(const CanonicalJob& job, CachedResult result) {
  cache_.insert(job, std::move(result));
}

std::shared_future<JobResult> EncodingService::submit(Job job,
                                                      DoneCallback done) {
  // Captured before canonicalisation strips it from the cacheable form.
  std::shared_ptr<const CancelToken> cancel = job.options.cancel;
  const uint64_t trace_id = job.trace_id;
  CanonicalJob cj = canonicalize(job);
  std::vector<portfolio::BackendTask> plan =
      portfolio::portfolio_plan(cj.portfolio.backend, cj.restarts);
  const int slots = static_cast<int>(plan.size());
  jobs_submitted_.add(1);

  std::shared_ptr<InFlight> fly;
  {
    std::unique_lock<std::mutex> lock(mu_);

    // An equal job already in flight: share its future.
    auto it = pending_.find(cj.fingerprint);
    if (it != pending_.end() && it->second->job.equivalent(cj)) {
      inflight_joins_.add(1);
      if (done) it->second->callbacks.push_back(std::move(done));
      return it->second->future;
    }

    // A finished equal job: answer from the cache.
    std::optional<CachedResult> hit;
    {
      PICOLA_OBS_SPAN(span_lookup, "cache/lookup");
      hit = cache_.lookup(cj);
    }
    if (hit) {
      cache_hits_.add(1);
      jobs_completed_.add(1);
      std::promise<JobResult> ready;
      JobResult r;
      r.picola = std::move(hit->picola);
      r.total_cubes = hit->total_cubes;
      r.backend = hit->backend;
      r.cache_hit = true;
      ready.set_value(std::move(r));
      std::shared_future<JobResult> fut = ready.get_future().share();
      lock.unlock();  // never run a user callback under the service mutex
      if (done) done(fut);
      return fut;
    }

    cache_misses_.add(1);
    restart_tasks_.add(static_cast<uint64_t>(slots));
    fly = std::make_shared<InFlight>();
    fly->job = std::move(cj);
    fly->future = fly->promise.get_future().share();
    fly->plan = std::move(plan);
    fly->outcomes.resize(static_cast<size_t>(slots));
    fly->remaining.store(slots);
    fly->start_ns = obs::now_ns();
    fly->trace_id = trace_id;
    fly->cancel = std::move(cancel);
    if (done) fly->callbacks.push_back(std::move(done));
    // emplace, not operator[]: when a different job collides on the
    // fingerprint, the earlier entry stays (its finish erases by identity).
    pending_.emplace(fly->job.fingerprint, fly);
  }

  for (int r = 0; r < slots; ++r) {
    auto run_slot = [this, fly, r]() {
      // The request's trace id covers the whole slot including the
      // finish_job reduction below, so service/restart_task,
      // portfolio/*, picola/* and service/job spans all correlate.
      obs::ScopedTraceId trace_scope(fly->trace_id);
      uint64_t dequeued_ns = obs::now_ns();
      uint64_t expected = 0;
      fly->first_dequeue_ns.compare_exchange_strong(
          expected, dequeued_ns, std::memory_order_relaxed);
      try {
        PICOLA_OBS_SPAN(span_task, "service/restart_task");
        {
          fault::Action fa = PICOLA_FAULT_POINT("service/restart_task");
          fault::apply_delay(fa);
          if (fa.kind == fault::Kind::kThrow)
            throw std::runtime_error("injected: service/restart_task");
        }
        if (PICOLA_FAULT_POINT("service/job_alloc").kind ==
            fault::Kind::kThrow)
          throw std::bad_alloc();
        const portfolio::BackendTask task = fly->plan[static_cast<size_t>(r)];
        uint64_t slot_start_ns = obs::now_ns();
        portfolio::BackendOutcome outcome = portfolio::run_backend_task(
            fly->job.set, fly->job.options, fly->job.portfolio, task,
            fly->cancel);
        backend_histogram(task.kind).record(obs::now_ns() - slot_start_ns);
        if (task.kind == portfolio::BackendKind::kSat) {
          sat_conflicts_.add(
              static_cast<uint64_t>(outcome.sat_stats.conflicts));
          sat_propagations_.add(
              static_cast<uint64_t>(outcome.sat_stats.propagations));
          sat_decisions_.add(
              static_cast<uint64_t>(outcome.sat_stats.decisions));
          sat_solver_calls_.add(
              static_cast<uint64_t>(outcome.sat_solver_calls));
        }
        fly->outcomes[static_cast<size_t>(r)] = std::move(outcome);
      } catch (...) {
        std::lock_guard<std::mutex> lock(fly->error_mu);
        if (!fly->error) fly->error = std::current_exception();
      }
      if (fly->remaining.fetch_sub(1) == 1) finish_job(fly);
    };
    try {
      pool_.post(run_slot);
    } catch (...) {
      // The pool is shutting down: account for every task not posted.
      {
        std::lock_guard<std::mutex> lock(fly->error_mu);
        if (!fly->error) fly->error = std::current_exception();
      }
      if (fly->remaining.fetch_sub(slots - r) == slots - r)
        finish_job(fly);
      break;
    }
  }
  return fly->future;
}

std::vector<std::shared_future<JobResult>> EncodingService::submit_batch(
    std::vector<Job> jobs) {
  std::vector<std::shared_future<JobResult>> futures;
  futures.reserve(jobs.size());
  for (Job& j : jobs) futures.push_back(submit(std::move(j)));
  return futures;
}

void EncodingService::finish_job(const std::shared_ptr<InFlight>& fly) {
  const uint64_t dur_ns = obs::now_ns() - fly->start_ns;
  JobResult out;
  if (!fly->error) {
    // Deterministic reduction — lowest (cost, plan index), identical to
    // sequential picola_encode_best / portfolio_encode.
    int winner = portfolio::reduce_outcomes(fly->outcomes);
    if (winner < 0) {
      // Every slot degraded (e.g. the sat backend alone proving the
      // requested length infeasible): the job fails, and is not cached.
      std::string why = "no backend produced an encoding";
      for (const portfolio::BackendOutcome& o : fly->outcomes)
        if (!o.error.empty()) {
          why += ": " + o.error;
          break;
        }
      fly->error = std::make_exception_ptr(std::runtime_error(why));
    } else {
      portfolio::BackendOutcome& best =
          fly->outcomes[static_cast<size_t>(winner)];
      out.picola = std::move(best.result);
      out.total_cubes = best.total_cubes;
      out.backend = best.backend;
      out.wall_ms = static_cast<double>(dur_ns) / 1e6;
      uint64_t first_deq =
          fly->first_dequeue_ns.load(std::memory_order_relaxed);
      if (first_deq > fly->start_ns)
        out.queue_wait_ms =
            static_cast<double>(first_deq - fly->start_ns) / 1e6;
      switch (out.backend) {
        case portfolio::BackendKind::kPicola: wins_picola_.add(1); break;
        case portfolio::BackendKind::kSat: wins_sat_.add(1); break;
        case portfolio::BackendKind::kAnneal: wins_anneal_.add(1); break;
        case portfolio::BackendKind::kPortfolio: break;  // not a slot kind
      }
      CachedResult memo;
      memo.picola = out.picola;
      memo.total_cubes = out.total_cubes;
      memo.backend = out.backend;
      cache_.insert(fly->job, std::move(memo));
      maybe_snapshot();  // periodic durability, on the completing worker
    }
  }
  // Bookkeeping strictly before fulfilling the promise: a client that has
  // observed get() returning must find the result in the cache (not a
  // stale pending entry) when it resubmits the same job.  The callbacks
  // are moved out under the same lock as the pending erase, so a joiner
  // either finds the pending entry (and its callback lands here) or finds
  // the cached result (and runs inline) — never neither.
  std::vector<DoneCallback> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(fly->job.fingerprint);
    if (it != pending_.end() && it->second == fly) pending_.erase(it);
    callbacks.swap(fly->callbacks);
  }
  jobs_completed_.add(1);
  job_wall_ns_.record(dur_ns);
  PICOLA_OBS_RECORD_SPAN("service/job", fly->start_ns, dur_ns);
  cv_done_.notify_all();
  if (fly->error)
    fly->promise.set_exception(fly->error);
  else
    fly->promise.set_value(std::move(out));
  run_callbacks(callbacks, fly->future);
}

void EncodingService::run_callbacks(
    std::vector<DoneCallback>& callbacks,
    const std::shared_future<JobResult>& future) {
  for (DoneCallback& cb : callbacks) cb(future);
}

obs::Histogram& EncodingService::backend_histogram(
    portfolio::BackendKind kind) {
  switch (kind) {
    case portfolio::BackendKind::kSat: return backend_sat_ns_;
    case portfolio::BackendKind::kAnneal: return backend_anneal_ns_;
    default: return backend_picola_ns_;
  }
}

void EncodingService::refresh_gauges() const {
  uint64_t now = obs::now_ns();  // fake test clocks may lag start_ns_
  uint64_t up = now > start_ns_ ? now - start_ns_ : 0;
  uptime_seconds_.set(static_cast<int64_t>(up / 1'000'000'000ULL));
  cache_entries_.set(static_cast<int64_t>(cache_.size()));
  if (store_) store_->refresh_gauges();
}

void EncodingService::wait_all() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this]() { return pending_.empty(); });
}

ServiceStats EncodingService::stats() const {
  refresh_gauges();
  ServiceStats s;
  s.jobs_submitted = static_cast<long>(jobs_submitted_.value());
  s.jobs_completed = static_cast<long>(jobs_completed_.value());
  s.cache_hits = static_cast<long>(cache_hits_.value());
  s.inflight_joins = static_cast<long>(inflight_joins_.value());
  s.cache_misses = static_cast<long>(cache_misses_.value());
  s.restart_tasks = static_cast<long>(restart_tasks_.value());
  s.cache_evictions = cache_.stats().evictions;
  obs::Histogram::Snapshot jobs = job_wall_ns_.snapshot();
  s.total_job_ms = static_cast<double>(jobs.sum) / 1e6;
  s.max_job_ms = static_cast<double>(jobs.max) / 1e6;
  s.queue_high_water = pool_.queue_high_water();
  return s;
}

}  // namespace picola
