#include "service/thread_pool.h"

#include <algorithm>
#include <stdexcept>

#include "fault/fault.h"

namespace picola {

ThreadPool::ThreadPool(int num_threads, size_t max_queue,
                       obs::MetricsRegistry* metrics)
    : max_queue_(max_queue) {
  if (metrics) {
    tasks_posted_ = &metrics->counter("pool/tasks_posted");
    tasks_executed_ = &metrics->counter("pool/tasks_executed");
    tasks_failed_ = &metrics->counter("pool/tasks_failed");
    task_exceptions_ = &metrics->counter("pool/task_exceptions");
    queue_depth_ = &metrics->gauge("pool/queue_depth");
    queue_depth_hwm_ = &metrics->gauge("pool/queue_depth_hwm");
    active_threads_ = &metrics->gauge("pool/active_threads");
    queue_wait_ns_ = &metrics->histogram("pool/queue_wait");
  }
  int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this]() { worker_loop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::post(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_space_.wait(lock, [this]() {
      return shutting_down_ || max_queue_ == 0 || queue_.size() < max_queue_;
    });
    if (shutting_down_)
      throw std::runtime_error("ThreadPool: post() after shutdown");
    Queued q;
    if (queue_wait_ns_) q.enqueue_ns = obs::now_ns();
    q.fn = std::move(task);
    queue_.push_back(std::move(q));
    queue_hwm_ = std::max(queue_hwm_, queue_.size());
    if (queue_depth_) queue_depth_->set(static_cast<int64_t>(queue_.size()));
    if (queue_depth_hwm_)
      queue_depth_hwm_->max_of(static_cast<int64_t>(queue_.size()));
  }
  if (tasks_posted_) tasks_posted_->add(1);
  cv_task_.notify_one();
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      // A second caller (e.g. the destructor after an explicit shutdown)
      // must not try to join already-joined threads.
      if (workers_.empty()) return;
    }
    shutting_down_ = true;
  }
  cv_task_.notify_all();
  cv_space_.notify_all();
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock,
                [this]() { return queue_.empty() && executing_ == 0; });
}

size_t ThreadPool::queue_high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_hwm_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    Queued task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock,
                    [this]() { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++executing_;
      if (queue_depth_) queue_depth_->set(static_cast<int64_t>(queue_.size()));
    }
    if (queue_wait_ns_)
      queue_wait_ns_->record(obs::now_ns() - task.enqueue_ns);
    if (active_threads_) active_threads_->add(1);
    cv_space_.notify_one();
    // submit() routes exceptions into the task's future before they reach
    // this frame; an exception escaping a raw post()ed task must not
    // std::terminate the worker (it used to) — swallow and count it.
    try {
      fault::Action fa = PICOLA_FAULT_POINT("pool/task");
      fault::apply_delay(fa);
      task.fn();
      // Injected AFTER the task body so a submit() future is already
      // satisfied: a pool fault may never orphan a waiter.
      if (fa.kind == fault::Kind::kThrow)
        throw std::runtime_error("injected: pool/task");
    } catch (...) {
      if (tasks_failed_) tasks_failed_->add(1);
      if (task_exceptions_) task_exceptions_->add(1);
    }
    if (active_threads_) active_threads_->add(-1);
    if (tasks_executed_) tasks_executed_->add(1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --executing_;
      if (queue_.empty() && executing_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace picola
