#pragma once
// Sharded LRU cache of finished encoding jobs, keyed by the canonical
// job fingerprint (see job.h).
//
// Shard = fingerprint % num_shards; each shard holds its own mutex, an
// intrusive LRU list and a fingerprint -> list-iterator map, so lookups of
// different jobs contend only 1/num_shards of the time.  Every entry keeps
// the full CanonicalJob next to the result: a fingerprint collision
// (same 64-bit key, different job) is detected by deep comparison and
// treated as a miss — the colliding insert replaces the older entry.

#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "service/job.h"

namespace picola {

/// The memoised outcome of one job.
struct CachedResult {
  PicolaResult picola;
  long total_cubes = 0;  ///< espresso-evaluated implementation cubes
  /// Which backend produced the winning encoding.
  portfolio::BackendKind backend = portfolio::BackendKind::kPicola;
};

class ResultCache {
 public:
  /// Observer of cache mutations, the journaling hook for the durable
  /// store (persist/store.h).  Callbacks run UNDER the owning shard's
  /// lock, so per-fingerprint event order is exact (an evict of fp never
  /// races ahead of the insert that created it) — the property journal
  /// replay depends on.  Implementations must be quick, must not call
  /// back into the cache, and must take no lock that is ever held while
  /// calling into the cache (lock order: shard mutex -> listener's).
  class Listener {
   public:
    virtual ~Listener() = default;
    /// A new entry landed (first insert, or a collision replacing the
    /// previous holder of the fingerprint — preceded by on_evict then).
    /// NOT called for pure refreshes of an equivalent entry: they change
    /// recency, not contents, and journaling them would bloat the log.
    virtual void on_insert(const CanonicalJob& job,
                           const CachedResult& result) = 0;
    /// An entry left the cache (LRU eviction or collision displacement).
    virtual void on_evict(uint64_t fingerprint) = 0;
  };

  /// `capacity` entries in total (clamped to >= 1), split over
  /// `num_shards` shards so the per-shard quotas sum to exactly
  /// `capacity` — capacity() never reports more than was requested.
  /// Shards in excess of the capacity are not created (each live shard
  /// holds at least one entry).  When `metrics` is given the
  /// cache keeps per-shard heat counters (cache/shard<i>_hits,
  /// cache/shard<i>_ops) and a cache/lock_wait histogram of shard-mutex
  /// acquisition latency in it — the contention evidence for the scaling
  /// analysis in docs/OBSERVABILITY.md (the registry must outlive the
  /// cache).
  explicit ResultCache(size_t capacity, int num_shards = 8,
                       obs::MetricsRegistry* metrics = nullptr);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Result of `job` if present (and genuinely equal — collisions miss);
  /// refreshes the entry's LRU position.
  std::optional<CachedResult> lookup(const CanonicalJob& job);

  /// Side-channel read by fingerprint alone, for peer cache-hit
  /// forwarding (docs/CLUSTER.md): the requesting node only knows the
  /// 64-bit key, so the full entry — canonical job AND result — is
  /// returned and the REQUESTER does the collision-detecting deep
  /// comparison against its own canonical job.  Deliberately does not
  /// touch recency or hit/miss accounting: a peek is a replication
  /// read, not local use.
  std::optional<std::pair<CanonicalJob, CachedResult>> find_by_fingerprint(
      uint64_t fingerprint);

  /// Memoise `result`; evicts the shard's least-recently-used entry when
  /// the shard is full.  Re-inserting an existing key refreshes it; a
  /// fingerprint collision replaces the older entry and counts as an
  /// eviction (an entry was lost to make room, exactly like an LRU
  /// eviction — stats().evictions == entries displaced, so
  /// inserts - drops - refreshes - evictions == entries).
  /// Best-effort: an insert may be dropped (fault point "cache/insert")
  /// — the cache is a memo, never the source of truth.
  void insert(const CanonicalJob& job, CachedResult result);

  struct Stats {
    long hits = 0;
    long misses = 0;
    long collisions = 0;  ///< fingerprint matched but the job differed
    long evictions = 0;
    long insert_drops = 0;  ///< inserts dropped by fault injection
    size_t entries = 0;
  };
  Stats stats() const;

  /// Attach a mutation listener (nullptr detaches).  Not synchronised
  /// against in-flight operations: attach before concurrent use begins
  /// (after a recovery load) and detach only once mutators are quiesced
  /// (the service does both around its pool lifecycle).
  void set_listener(Listener* listener) { listener_ = listener; }

  /// Enumerate every entry shard by shard (index order), MRU -> LRU
  /// within a shard, holding only that shard's lock at a time — the
  /// snapshot export path.  `fn` must not call back into the cache.
  /// Entries inserted behind the iteration are not guaranteed to appear;
  /// the journal covers them (see persist/store.h).
  void for_each(const std::function<void(const CanonicalJob&,
                                         const CachedResult&)>& fn) const;

  /// Recovery-path insert: no LRU promotion games, no fault point, no
  /// listener callback, no hit/miss accounting.  `most_recent` picks the
  /// end of the LRU list the entry lands on — false appends at the cold
  /// tail (snapshot replay, which streams entries MRU-first, rebuilding
  /// the order for_each exported), true inserts/refreshes at the hot
  /// head (journal replay: later log entries are more recent).  Respects
  /// shard capacity by evicting the cold tail.
  void load_insert(const CanonicalJob& job, CachedResult result,
                   bool most_recent);

  /// Recovery-path erase (journal evict replay); no listener callback.
  /// Unknown fingerprints are ignored (the entry may have been dropped
  /// by capacity pressure during replay already).
  void load_erase(uint64_t fingerprint);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Entry {
    CanonicalJob job;
    CachedResult result;
  };
  struct Shard {
    std::mutex mu;
    size_t capacity = 1;   ///< this shard's slice of the total
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index;
    long hits = 0;
    long misses = 0;
    long collisions = 0;
    long evictions = 0;
    long insert_drops = 0;
    obs::Counter* hit_heat = nullptr;  ///< optional, see constructor
    obs::Counter* op_heat = nullptr;   ///< lookups + inserts on this shard
  };

  Shard& shard_of(uint64_t fingerprint) {
    return *shards_[fingerprint % shards_.size()];
  }

  /// Lock s.mu, timing the acquisition into cache/lock_wait when metrics
  /// are attached (uncontended acquisitions record 0 so the histogram's
  /// count doubles as an op count for computing a contention ratio).
  std::unique_lock<std::mutex> lock_shard(Shard& s);

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t capacity_;
  obs::Histogram* lock_wait_ns_ = nullptr;
  Listener* listener_ = nullptr;
};

}  // namespace picola
