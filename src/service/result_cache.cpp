#include "service/result_cache.h"

#include <algorithm>
#include <memory>

#include "fault/fault.h"

namespace picola {

ResultCache::ResultCache(size_t capacity, int num_shards,
                         obs::MetricsRegistry* metrics) {
  capacity_ = std::max<size_t>(1, capacity);
  int n = std::max(1, num_shards);
  // Never shard finer than one entry per shard.
  n = static_cast<int>(std::min<size_t>(static_cast<size_t>(n), capacity_));
  // Distribute the quota so the per-shard slices sum to exactly
  // capacity_: base entries each, one extra for the first (capacity_
  // mod n) shards.  The old round-up (ceil(capacity / n) per shard) let
  // capacity() exceed the requested bound — e.g. 10 entries over 8
  // shards reported 16.
  const size_t base = capacity_ / static_cast<size_t>(n);
  const size_t extra = capacity_ % static_cast<size_t>(n);
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->capacity = base + (static_cast<size_t>(i) < extra ? 1 : 0);
  }
  if (metrics) {
    lock_wait_ns_ = &metrics->histogram("cache/lock_wait");
    for (int i = 0; i < n; ++i) {
      std::string base = "cache/shard" + std::to_string(i);
      shards_[static_cast<size_t>(i)]->hit_heat =
          &metrics->counter(base + "_hits");
      shards_[static_cast<size_t>(i)]->op_heat =
          &metrics->counter(base + "_ops");
    }
  }
}

std::unique_lock<std::mutex> ResultCache::lock_shard(Shard& s) {
  if (!lock_wait_ns_) return std::unique_lock<std::mutex>(s.mu);
  std::unique_lock<std::mutex> lock(s.mu, std::try_to_lock);
  if (lock.owns_lock()) {
    lock_wait_ns_->record(0);
  } else {
    uint64_t t0 = obs::now_ns();
    lock.lock();
    lock_wait_ns_->record(obs::now_ns() - t0);
  }
  if (s.op_heat) s.op_heat->add(1);
  return lock;
}

std::optional<CachedResult> ResultCache::lookup(const CanonicalJob& job) {
  Shard& s = shard_of(job.fingerprint);
  std::unique_lock<std::mutex> lock = lock_shard(s);
  auto it = s.index.find(job.fingerprint);
  if (it == s.index.end()) {
    ++s.misses;
    return std::nullopt;
  }
  if (!it->second->job.equivalent(job)) {
    ++s.collisions;
    ++s.misses;
    return std::nullopt;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
  ++s.hits;
  if (s.hit_heat) s.hit_heat->add(1);
  return it->second->result;
}

std::optional<std::pair<CanonicalJob, CachedResult>>
ResultCache::find_by_fingerprint(uint64_t fingerprint) {
  Shard& s = shard_of(fingerprint);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.index.find(fingerprint);
  if (it == s.index.end()) return std::nullopt;
  return std::make_pair(it->second->job, it->second->result);
}

void ResultCache::insert(const CanonicalJob& job, CachedResult result) {
  Shard& s = shard_of(job.fingerprint);
  std::unique_lock<std::mutex> lock = lock_shard(s);
  if (PICOLA_FAULT_POINT("cache/insert").kind == fault::Kind::kFail) {
    // Simulated insert failure: the result is simply not memoised, and
    // the next equal job recomputes.  Correctness must not notice.
    ++s.insert_drops;
    return;
  }
  auto it = s.index.find(job.fingerprint);
  if (it != s.index.end()) {
    // Refresh, or replace the victim of a fingerprint collision — the
    // latter displaces a live entry for a different job, which is an
    // eviction as far as the accounting is concerned.
    bool collision = !it->second->job.equivalent(job);
    if (collision) ++s.evictions;
    it->second->job = job;
    it->second->result = std::move(result);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    // A pure refresh changes recency only — nothing to journal.  A
    // collision replaced the entry's contents: log it as evict + insert
    // so replay converges to the same winner.
    if (collision && listener_) {
      listener_->on_evict(job.fingerprint);
      listener_->on_insert(it->second->job, it->second->result);
    }
    return;
  }
  if (s.lru.size() >= s.capacity) {
    uint64_t victim = s.lru.back().job.fingerprint;
    s.index.erase(victim);
    s.lru.pop_back();
    ++s.evictions;
    if (listener_) listener_->on_evict(victim);
  }
  s.lru.push_front(Entry{job, std::move(result)});
  s.index[job.fingerprint] = s.lru.begin();
  if (listener_) listener_->on_insert(s.lru.front().job, s.lru.front().result);
}

void ResultCache::for_each(
    const std::function<void(const CanonicalJob&, const CachedResult&)>& fn)
    const {
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    for (const Entry& e : s->lru) fn(e.job, e.result);
  }
}

void ResultCache::load_insert(const CanonicalJob& job, CachedResult result,
                              bool most_recent) {
  Shard& s = shard_of(job.fingerprint);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.index.find(job.fingerprint);
  if (it != s.index.end()) {
    it->second->job = job;
    it->second->result = std::move(result);
    if (most_recent) s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  if (s.lru.size() >= s.capacity) {
    if (!most_recent) return;  // tail insert into a full shard: a no-op
    s.index.erase(s.lru.back().job.fingerprint);
    s.lru.pop_back();
  }
  if (most_recent) {
    s.lru.push_front(Entry{job, std::move(result)});
    s.index[job.fingerprint] = s.lru.begin();
  } else {
    s.lru.push_back(Entry{job, std::move(result)});
    s.index[job.fingerprint] = std::prev(s.lru.end());
  }
}

void ResultCache::load_erase(uint64_t fingerprint) {
  Shard& s = shard_of(fingerprint);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.index.find(fingerprint);
  if (it == s.index.end()) return;
  s.lru.erase(it->second);
  s.index.erase(it);
}

ResultCache::Stats ResultCache::stats() const {
  Stats t;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    t.hits += s->hits;
    t.misses += s->misses;
    t.collisions += s->collisions;
    t.evictions += s->evictions;
    t.insert_drops += s->insert_drops;
    t.entries += s->lru.size();
  }
  return t;
}

size_t ResultCache::size() const {
  size_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    n += s->lru.size();
  }
  return n;
}

}  // namespace picola
