#include "net/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

namespace picola::net {

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  const char* p;
  const char* end;
  const char* begin;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty())
      error = msg + " at offset " + std::to_string(p - begin);
    return false;
  }

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }

  bool parse_value(JsonValue* out, int depth);

  bool parse_literal(const char* lit, size_t len) {
    if (static_cast<size_t>(end - p) < len || std::memcmp(p, lit, len) != 0)
      return fail("bad literal");
    p += len;
    return true;
  }

  /// Append `cp` to `out` as UTF-8.
  static void append_utf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_hex4(uint32_t* out) {
    if (end - p < 4) return fail("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = *p++;
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<uint32_t>(c - 'A' + 10);
      else return fail("bad \\u escape");
    }
    *out = v;
    return true;
  }

  bool parse_string(std::string* out) {
    if (p >= end || *p != '"') return fail("expected string");
    ++p;
    out->clear();
    while (p < end) {
      unsigned char c = static_cast<unsigned char>(*p);
      if (c == '"') {
        ++p;
        return true;
      }
      if (c == '\\') {
        ++p;
        if (p >= end) return fail("truncated escape");
        char e = *p++;
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            uint32_t cp = 0;
            if (!parse_hex4(&cp)) return false;
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: a \uDC00-\uDFFF low half must follow.
              if (end - p < 2 || p[0] != '\\' || p[1] != 'u')
                return fail("lone high surrogate");
              p += 2;
              uint32_t lo = 0;
              if (!parse_hex4(&lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF)
                return fail("bad low surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return fail("lone low surrogate");
            }
            append_utf8(cp, out);
            break;
          }
          default:
            return fail("bad escape");
        }
      } else if (c < 0x20) {
        return fail("raw control character in string");
      } else {
        out->push_back(static_cast<char>(c));
        ++p;
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const char* start = p;
    if (p < end && *p == '-') ++p;
    while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    bool integral = true;
    if (p < end && *p == '.') {
      integral = false;
      ++p;
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      integral = false;
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p == start || (p == start + 1 && *start == '-'))
      return fail("bad number");
    if (integral) {
      int64_t v = 0;
      auto [ptr, ec] = std::from_chars(start, p, v);
      if (ec == std::errc() && ptr == p) {
        *out = JsonValue::make_int(v);
        return true;
      }
      // Out of int64 range: fall through to double.
    }
    double d = 0;
    auto [ptr, ec] = std::from_chars(start, p, d);
    if (ec != std::errc() || ptr != p) return fail("bad number");
    *out = JsonValue::make_double(d);
    return true;
  }
};

bool Parser::parse_value(JsonValue* out, int depth) {
  if (depth > kMaxDepth) return fail("nesting too deep");
  skip_ws();
  if (p >= end) return fail("unexpected end of input");
  switch (*p) {
    case 'n':
      if (!parse_literal("null", 4)) return false;
      *out = JsonValue();
      return true;
    case 't':
      if (!parse_literal("true", 4)) return false;
      *out = JsonValue::make_bool(true);
      return true;
    case 'f':
      if (!parse_literal("false", 5)) return false;
      *out = JsonValue::make_bool(false);
      return true;
    case '"': {
      std::string s;
      if (!parse_string(&s)) return false;
      *out = JsonValue::make_string(std::move(s));
      return true;
    }
    case '[': {
      ++p;
      *out = JsonValue::make_array();
      skip_ws();
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      for (;;) {
        JsonValue item;
        if (!parse_value(&item, depth + 1)) return false;
        out->push_back(std::move(item));
        skip_ws();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == ']') {
          ++p;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    case '{': {
      ++p;
      *out = JsonValue::make_object();
      skip_ws();
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      for (;;) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (p >= end || *p != ':') return fail("expected ':'");
        ++p;
        JsonValue val;
        if (!parse_value(&val, depth + 1)) return false;
        out->set(key, std::move(val));
        skip_ws();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == '}') {
          ++p;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    default:
      return parse_number(out);
  }
}

void dump_string(const std::string& s, std::string* out) {
  out->push_back('"');
  *out += json_escape(s);
  out->push_back('"');
}

void dump_value(const JsonValue& v, std::string* out) {
  switch (v.type()) {
    case JsonValue::Type::kNull:
      *out += "null";
      break;
    case JsonValue::Type::kBool:
      *out += v.as_bool() ? "true" : "false";
      break;
    case JsonValue::Type::kInt:
      *out += std::to_string(v.as_int());
      break;
    case JsonValue::Type::kDouble: {
      double d = v.as_double();
      if (std::isfinite(d)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", d);
        *out += buf;
      } else {
        *out += "null";  // JSON has no inf/nan
      }
      break;
    }
    case JsonValue::Type::kString:
      dump_string(v.as_string(), out);
      break;
    case JsonValue::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out->push_back(',');
        first = false;
        dump_value(item, out);
      }
      out->push_back(']');
      break;
    }
    case JsonValue::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, val] : v.members()) {
        if (!first) out->push_back(',');
        first = false;
        dump_string(key, out);
        out->push_back(':');
        dump_value(val, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_int(int64_t i) {
  JsonValue v;
  v.type_ = Type::kInt;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::make_double(double d) {
  JsonValue v;
  v.type_ = Type::kDouble;
  v.double_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::make_object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

int64_t JsonValue::as_int() const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kDouble) return static_cast<int64_t>(double_);
  return 0;
}

double JsonValue::as_double() const {
  if (type_ == Type::kDouble) return double_;
  if (type_ == Type::kInt) return static_cast<double>(int_);
  return 0;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

void JsonValue::set(const std::string& key, JsonValue v) {
  type_ = Type::kObject;
  object_[key] = std::move(v);
}

void JsonValue::push_back(JsonValue v) {
  type_ = Type::kArray;
  array_.push_back(std::move(v));
}

std::string JsonValue::dump() const {
  std::string out;
  dump_value(*this, &out);
  return out;
}

std::optional<JsonValue> JsonValue::parse(const std::string& text,
                                          std::string* error) {
  Parser parser{text.data(), text.data() + text.size(), text.data(), {}};
  JsonValue v;
  if (!parser.parse_value(&v, 0)) {
    if (error) *error = parser.error;
    return std::nullopt;
  }
  parser.skip_ws();
  if (parser.p != parser.end) {
    if (error)
      *error = "trailing bytes at offset " +
               std::to_string(parser.p - parser.begin);
    return std::nullopt;
  }
  return v;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

}  // namespace picola::net
