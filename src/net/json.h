#pragma once
// Minimal JSON value model for the wire protocol (src/net): a
// recursive-descent parser with a depth limit and a compact serialiser.
// Scope is deliberately small — objects, arrays, strings (full escape
// set, \uXXXX incl. surrogate pairs), int64/double numbers, bools, null —
// because frames are short control messages, not documents.  Integer
// tokens round-trip as int64; anything with '.', 'e' or out of int64
// range becomes a double.
//
// This is a parser for *untrusted* input: every malformed byte sequence
// returns an error instead of throwing, and nesting is capped so a
// hostile frame cannot blow the stack.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace picola::net {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() = default;  // null
  static JsonValue make_bool(bool b);
  static JsonValue make_int(int64_t v);
  static JsonValue make_double(double v);
  static JsonValue make_string(std::string s);
  static JsonValue make_array();
  static JsonValue make_object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  /// Numeric value as int64 (doubles are truncated).
  int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& items() const { return array_; }
  std::vector<JsonValue>& items() { return array_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  void set(const std::string& key, JsonValue v);
  void push_back(JsonValue v);
  const std::map<std::string, JsonValue>& members() const { return object_; }

  /// Compact serialisation (no whitespace, keys sorted — deterministic).
  std::string dump() const;

  /// Parse `text` (must be one complete JSON value, trailing whitespace
  /// allowed).  On failure returns nullopt and fills `*error` with a
  /// byte-offset diagnostic.
  static std::optional<JsonValue> parse(const std::string& text,
                                        std::string* error = nullptr);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Escape `s` for inclusion in a JSON string literal (quotes excluded).
std::string json_escape(const std::string& s);

}  // namespace picola::net
