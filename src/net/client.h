#pragma once
// Blocking client for the TCP encoding server (net/server.h): connects,
// speaks the length-prefixed JSON framing, and exposes one-call request /
// response plus the raw frame primitives for pipelined use (send several
// requests, then collect the responses in order).  Single-threaded by
// design — one Client per thread.

#include <cstdint>
#include <optional>
#include <string>

#include "net/frame.h"
#include "net/json.h"

namespace picola::net {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to host:port.  Returns false and fills *error on failure.
  bool connect(const std::string& host, uint16_t port,
               std::string* error = nullptr);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one frame carrying `payload` (already-serialised JSON).
  bool send(const std::string& payload, std::string* error = nullptr);

  /// Block until the next complete frame arrives; nullopt on EOF/error.
  std::optional<std::string> recv(std::string* error = nullptr);

  /// send() + recv() + parse.
  std::optional<JsonValue> call(const JsonValue& request,
                                std::string* error = nullptr);

 private:
  int fd_ = -1;
  FrameReader reader_{kFrameAbsoluteMax};
};

}  // namespace picola::net
