#pragma once
// Client for the TCP encoding server (net/server.h): speaks the
// length-prefixed JSON framing and exposes one-call request / response
// plus the raw frame primitives for pipelined use (send several
// requests, then collect the responses in order).
//
// All socket I/O is non-blocking under the hood, bounded by
// ClientOptions::connect_timeout_ms / io_timeout_ms, and routed through
// the net/sys.h shim so fault plans can inject EINTR, EAGAIN, short
// I/O and resets deterministically.
//
// call_with_retry() adds the resilience layer: reconnect on transport
// failure, exponential backoff with full jitter (seeded, so a chaos run
// is reproducible), the server's retry_after_ms honored as a floor on
// the delay after an `overloaded` reply, a per-request retry budget,
// and a circuit breaker (net/breaker.h — shared with the cluster
// router) that fails fast while the server looks dead and hands out
// exactly one half-open probe after breaker_open_ms.  Semantics and
// defaults: docs/RESILIENCE.md.
//
// Single-threaded by design — one Client per thread.  Multi-backend,
// thread-safe routing with failover and hedging lives in net/cluster.h.

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "net/breaker.h"
#include "net/frame.h"
#include "net/json.h"

namespace picola::net {

struct ClientOptions {
  int connect_timeout_ms = 5000;  ///< TCP connect establishment bound
  int io_timeout_ms = 30000;      ///< bound on one full frame send / recv
  int max_retries = 0;            ///< extra attempts in call_with_retry()
  int backoff_base_ms = 10;       ///< first retry delay cap
  int backoff_max_ms = 2000;      ///< delay cap after many doublings
  uint64_t jitter_seed = 1;       ///< seeds the full-jitter draw
  int breaker_threshold = 8;      ///< consecutive transport failures to open
  int breaker_open_ms = 1000;     ///< fail-fast window before half-open probe
  /// Attach a generated trace_id / parent_span to every call() request
  /// that lacks them, and record a client/request span under that id
  /// (trace propagation; see docs/SERVICE.md).
  bool trace_requests = false;
};

class Client {
 public:
  Client() : Client(ClientOptions{}) {}
  explicit Client(ClientOptions opt);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  const ClientOptions& options() const { return opt_; }

  /// Connect to host:port within connect_timeout_ms.  Returns false and
  /// fills *error on failure.  Remembers the address for reconnects.
  bool connect(const std::string& host, uint16_t port,
               std::string* error = nullptr);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one frame carrying `payload` (already-serialised JSON) within
  /// io_timeout_ms.
  bool send(const std::string& payload, std::string* error = nullptr);

  /// Block (up to io_timeout_ms) until the next complete frame arrives;
  /// nullopt on EOF / error / timeout.
  std::optional<std::string> recv(std::string* error = nullptr);

  /// send() + recv() + parse.  One attempt, no retries.
  std::optional<JsonValue> call(const JsonValue& request,
                                std::string* error = nullptr);

  /// call() wrapped in the retry policy described in the header comment.
  /// Reconnects as needed using the address from the last connect().
  /// A reply carrying a non-`overloaded` server error is a *successful*
  /// call — it is returned as-is, not retried.
  std::optional<JsonValue> call_with_retry(const JsonValue& request,
                                           std::string* error = nullptr);

  struct Stats {
    uint64_t attempts = 0;       ///< call_with_retry attempts (incl. first)
    uint64_t retries = 0;        ///< attempts after the first
    uint64_t reconnects = 0;     ///< successful re-connect()s
    uint64_t overloaded = 0;     ///< `overloaded` replies seen
    uint64_t breaker_opens = 0;  ///< closed/half-open -> open transitions
    uint64_t breaker_waits = 0;  ///< attempts that waited out an open window
  };
  const Stats& stats() const { return stats_; }

  /// Delay before retry number `attempt` (0-based): uniform draw from
  /// [0, min(backoff_max_ms, backoff_base_ms << attempt)] — "full
  /// jitter".  Deterministic for one (jitter_seed, draw sequence).
  int backoff_delay_ms(int attempt);

  /// Trace id attached to (or honored on) the most recent traced call();
  /// 0 before any traced call or with trace_requests off.
  uint64_t last_trace_id() const { return last_trace_id_; }

  /// The breaker guarding this connection (tests / dashboards).
  const CircuitBreaker& breaker() const { return breaker_; }

 private:
  std::optional<JsonValue> call_impl(const JsonValue& request,
                                     std::string* error);
  bool wait_io(short events, std::chrono::steady_clock::time_point deadline,
               std::string* error, const char* what);

  ClientOptions opt_;
  int fd_ = -1;
  FrameReader reader_{kFrameAbsoluteMax};
  std::string host_;
  uint16_t port_ = 0;
  bool have_addr_ = false;
  uint64_t rng_;
  uint64_t last_trace_id_ = 0;
  CircuitBreaker breaker_;
  Stats stats_;
};

}  // namespace picola::net
