#pragma once
// Readiness multiplexer behind the TCP server's event loop: epoll on
// Linux, poll(2) everywhere (and as a runtime-selectable fallback so the
// poll path is compiled and tested on Linux too, not just on exotic
// platforms).  Level-triggered on both backends — the event loop always
// drains until EAGAIN, so level semantics keep the two interchangeable.

#include <cstddef>
#include <map>
#include <vector>

namespace picola::net {

enum class PollBackend { kEpoll, kPoll };

/// epoll where available, poll otherwise.
PollBackend default_poll_backend();

struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// Error/hangup on the fd (EPOLLERR/EPOLLHUP/POLLNVAL...); the owner
  /// should read (to collect the error / EOF) and close.
  bool hangup = false;
};

class Poller {
 public:
  explicit Poller(PollBackend backend = default_poll_backend());
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  PollBackend backend() const { return backend_; }

  /// Register `fd`; interest flags as in set().
  void add(int fd, bool want_read, bool want_write);
  /// Replace the interest set of a registered fd.
  void set(int fd, bool want_read, bool want_write);
  /// Deregister (the caller closes the fd itself).
  void remove(int fd);

  /// Wait for events; `timeout_ms` < 0 blocks indefinitely.  Returns the
  /// number of events appended to `*out` (cleared first); 0 on timeout.
  /// EINTR is treated as a timeout with no events.
  int wait(std::vector<PollEvent>* out, int timeout_ms);

 private:
  PollBackend backend_;
  int epoll_fd_ = -1;
  /// poll backend: registered fd -> (want_read, want_write).
  std::map<int, std::pair<bool, bool>> interest_;
};

}  // namespace picola::net
