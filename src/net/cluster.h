#pragma once
// ClusterClient — cluster-aware routing over N `picola serve --tcp`
// backends (docs/CLUSTER.md).
//
// Requests are placed on a consistent-hash ring (net/hash_ring.h) by a
// caller-supplied routing key (service/job.h route_key()), and walk the
// ring's failover-preference order when the owner is unavailable:
//
//  * per-backend circuit breakers (net/breaker.h) — a dead backend is
//    skipped after `breaker.threshold` consecutive transport failures,
//    and exactly one half-open probe re-admits it;
//  * failover re-route with exactly-one-reply semantics: the caller
//    receives exactly one reply per request id, late duplicate replies
//    from hedged legs are counted and dropped;
//  * hedged re-dispatch: when a backend has not answered within
//    `hedge_ms`, the request is ALSO dispatched to the next preference
//    and the first completed reply wins;
//  * `retry_after_ms` from an `overloaded` reply is honored as a floor
//    on the delay before the NEXT backend is attempted — shedding on
//    backend A must not turn into an immediate hammer of backend B;
//  * graceful drains are observed: a `shutting_down` reply or an admin
//    /healthz 503 marks the backend draining and routes around it, with
//    a periodic re-probe so a restarted node re-enters rotation.
//
// Thread-safe: any number of caller threads may call() concurrently.
// Each backend gets one serialised connection lane (callers routing to
// different backends never contend); hedge legs run on short-lived
// internal threads whose shared state is fully synchronised, so the
// class is ASan/TSan-clean by construction.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/breaker.h"
#include "net/client.h"
#include "net/hash_ring.h"
#include "net/json.h"
#include "obs/metrics.h"

namespace picola::net {

/// One cluster backend.  `name()` ("host:port") is the ring identity —
/// every router and server must derive placement from the same names.
struct ClusterMember {
  std::string host;
  uint16_t port = 0;
  int admin_port = -1;  ///< /healthz plane; -1 = unknown (probing off)

  std::string name() const { return host + ":" + std::to_string(port); }
};

/// Parse "host:port" or "host:port:admin_port"; nullopt + *error on junk.
std::optional<ClusterMember> parse_member(const std::string& spec,
                                          std::string* error = nullptr);

/// Parse a comma-separated member list; empty + *error on any bad spec.
std::vector<ClusterMember> parse_member_list(const std::string& specs,
                                             std::string* error = nullptr);

struct ClusterOptions {
  std::vector<ClusterMember> members;
  /// Transport knobs for every backend lane (max_retries is ignored —
  /// retrying across backends is the router's job, so lanes make
  /// exactly one attempt per dispatch).
  ClientOptions client;
  BreakerOptions breaker;
  int vnodes = 64;
  /// > 0: hedged re-dispatch after this many ms without a reply from
  /// the backend first attempted; 0 disables hedging.
  int hedge_ms = 0;
  /// Total backend dispatches (hedge legs included) one call() may
  /// spend; 0 picks 2 * members + 2.
  int max_attempts = 0;
  /// How often a backend marked draining is re-probed (admin /healthz
  /// when the member has an admin port, otherwise a direct re-admit).
  int health_recheck_ms = 250;
  /// Timeout for one /healthz probe.
  int health_timeout_ms = 500;
  /// Seeds the backoff jitter (reproducible chaos schedules).
  uint64_t seed = 1;
  /// Inter-attempt backoff (full jitter, like ClientOptions but across
  /// backends): first cap and max cap in ms.
  int backoff_base_ms = 5;
  int backoff_max_ms = 500;
  /// Optional registry to mirror Stats into (cluster/* counters and a
  /// per-backend cluster/backend<i>_breaker_state gauge — see
  /// refresh_gauges()).  Must outlive the client.
  obs::MetricsRegistry* metrics = nullptr;
};

class ClusterClient {
 public:
  explicit ClusterClient(ClusterOptions opt);
  ~ClusterClient();  ///< waits for any in-flight hedge legs

  ClusterClient(const ClusterClient&) = delete;
  ClusterClient& operator=(const ClusterClient&) = delete;

  /// Where one call() landed (tests / harness diagnostics).
  struct CallInfo {
    int backend = -1;   ///< member index that produced the reply
    int attempts = 0;   ///< dispatches spent (hedge legs included)
    bool rerouted = false;  ///< answered by a non-owner backend
    bool hedged = false;    ///< a hedge leg was launched
  };

  /// Route `request` by `key` and return exactly one reply, or nullopt
  /// with *error when every eligible backend was exhausted.  A request
  /// without an "id" field is stamped with a router-generated one; the
  /// reply's id is verified to match (a mismatch counts as an
  /// exactly-one-reply violation and fails the call).  Replies carrying
  /// `overloaded` / `shutting_down` server errors are absorbed and
  /// re-routed; any other reply — success or terminal error — is the
  /// answer.
  std::optional<JsonValue> call(const JsonValue& request, uint64_t key,
                                std::string* error = nullptr,
                                CallInfo* info = nullptr);

  struct Stats {
    uint64_t requests = 0;   ///< call() invocations
    uint64_t attempts = 0;   ///< backend dispatches (hedge legs included)
    uint64_t reroutes = 0;   ///< dispatches to a non-owner backend
    uint64_t hedges = 0;     ///< hedge legs launched
    uint64_t hedge_wins = 0; ///< calls answered by the hedge leg
    uint64_t duplicates_suppressed = 0;  ///< late losing replies dropped
    uint64_t breaker_skips = 0;  ///< backends skipped by an open breaker
    uint64_t drain_skips = 0;    ///< backends skipped while draining
    uint64_t drains_observed = 0;  ///< shutting_down replies + /healthz 503s
    uint64_t rejoins = 0;        ///< drained backends re-admitted
    uint64_t overloaded = 0;     ///< overloaded replies absorbed
    uint64_t retry_floor_waits = 0;  ///< sleeps forced by retry_after_ms
                                     ///< across a failover re-route
    uint64_t id_mismatches = 0;  ///< exactly-one-reply violations seen
  };
  Stats stats() const;

  const HashRing& ring() const { return ring_; }
  size_t num_backends() const { return opt_.members.size(); }
  int owner_of(uint64_t key) const { return ring_.owner(key); }
  CircuitBreaker::State breaker_state(size_t backend) const;
  bool draining(size_t backend) const;

  /// Refresh the per-backend cluster/backend<i>_breaker_state gauges
  /// (0 closed / 1 open / 2 half-open) in the attached registry.
  void refresh_gauges() const;

 private:
  struct Lane;       // one serialised connection per backend
  struct Health;     // draining flag + next re-probe stamp
  struct LegResult;  // outcome of one dispatch leg
  struct HedgedCall; // shared state of one (possibly hedged) dispatch

  enum class OutcomeKind { kReply, kOverloaded, kDraining, kTransport };
  struct Outcome {
    OutcomeKind kind = OutcomeKind::kTransport;
    std::optional<JsonValue> reply;
    int backend = -1;
    int retry_after_ms = 0;
    bool hedged = false;
    bool hedge_won = false;
    std::string error;
  };

  /// One dispatch to `backend` (probe flag from its breaker), hedging
  /// onto the next eligible preference after hedge_ms.  `prefs`/`pos`
  /// locate the hedge candidate; consumed attempts are added to
  /// *attempts_spent.
  Outcome dispatch(int backend, bool probe, const JsonValue& request,
                   const std::string& want_id, const std::vector<int>& prefs,
                   size_t pos, int* attempts_spent);

  /// Run one leg synchronously on the calling thread; fills *leg.
  void run_leg(int backend, bool probe, JsonValue request,
               std::string want_id, const std::shared_ptr<HedgedCall>& call,
               int leg_index);

  /// Returns true when `backend` should be skipped as draining (and
  /// handles the periodic re-probe / re-admit).
  bool skip_draining(int backend);

  /// Blocking /healthz probe; 200 = healthy, 503 = draining, -1 = dead.
  int probe_healthz(const ClusterMember& m);

  int backoff_ms(int round);
  void bump(uint64_t Stats::*field, uint64_t n = 1);

  ClusterOptions opt_;
  HashRing ring_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  std::vector<std::unique_ptr<Health>> health_;

  mutable std::mutex stats_mu_;
  Stats stats_;

  std::mutex rng_mu_;
  uint64_t rng_;
  std::atomic<uint64_t> next_id_{1};

  // In-flight hedge legs that outlived their call(); the destructor
  // waits for them so lanes/breakers never dangle.
  std::mutex outstanding_mu_;
  std::condition_variable outstanding_cv_;
  int outstanding_ = 0;

  // Mirrored metrics (null when no registry was attached).
  obs::Counter* m_reroutes_ = nullptr;
  obs::Counter* m_hedges_ = nullptr;
  obs::Counter* m_hedge_wins_ = nullptr;
  obs::Counter* m_duplicates_ = nullptr;
  obs::Counter* m_drains_ = nullptr;
  obs::Counter* m_rejoins_ = nullptr;
  obs::Counter* m_retry_floor_ = nullptr;
  std::vector<obs::Gauge*> m_breaker_state_;
};

}  // namespace picola::net
