#pragma once
// Thread-safe circuit breaker, extracted from net/client.h so the
// single-connection client (client.cpp) and the cluster router
// (net/cluster.h) share one state machine.
//
// States:
//   closed    -> every call allowed; `threshold` consecutive failures
//                trip the breaker.
//   open      -> calls fail fast for `open_ms` (acquire() returns
//                allow=false with the remaining window as a retry hint).
//   half-open -> the window has passed: exactly ONE caller is handed the
//                probe (Decision::probe == true); every other caller is
//                rejected until that probe resolves.  A successful probe
//                closes the breaker, a failed probe re-opens the window.
//
// The single-probe guard is the point of this class: the pre-cluster
// client kept breaker state in two plain fields, which was fine for the
// documented one-thread-per-Client contract but allowed N concurrent
// "probes" to hammer a barely-recovered server the moment several
// threads shared the state (exactly what the cluster router does with
// its per-backend breakers).  acquire()/on_success()/on_failure() are
// fully synchronised; a probe handed out is accounted until its owner
// reports back.
//
// Semantics note carried over from PR 5: an `overloaded` reply is a
// *successful* call for breaker purposes (the server is alive and
// shedding); only transport failures should be reported as failures.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>

namespace picola::net {

struct BreakerOptions {
  int threshold = 8;   ///< consecutive transport failures to open
  int open_ms = 1000;  ///< fail-fast window before the half-open probe
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  /// Verdict for one prospective call.
  struct Decision {
    bool allow = true;  ///< false: fail fast, do not touch the socket
    bool probe = false; ///< this call is THE half-open probe; the caller
                        ///< MUST report it via on_success/on_failure
    int64_t retry_in_ms = 0;  ///< when rejected: suggested wait
  };

  struct Stats {
    uint64_t opens = 0;             ///< closed/half-open -> open transitions
    uint64_t probes = 0;            ///< half-open probes handed out
    uint64_t probe_rejections = 0;  ///< acquires rejected because a probe
                                    ///< was already in flight
    uint64_t fail_fasts = 0;        ///< acquires rejected by an open window
  };

  explicit CircuitBreaker(BreakerOptions opt = {}) : opt_(opt) {}

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// Ask permission for one call.  When Decision::probe is true the
  /// caller owns the half-open probe and must call on_success(true) or
  /// on_failure(true) exactly once, or the breaker wedges half-open.
  Decision acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (open_until_ != Clock::time_point{}) {
      auto now = Clock::now();
      if (now < open_until_) {
        stats_.fail_fasts++;
        auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            open_until_ - now);
        return Decision{false, false, std::max<int64_t>(1, left.count())};
      }
      // Window expired: half-open.  Hand out at most one probe.
      if (probe_inflight_) {
        stats_.probe_rejections++;
        return Decision{false, false, 1};
      }
      probe_inflight_ = true;
      stats_.probes++;
      return Decision{true, true, 0};
    }
    return Decision{true, false, 0};
  }

  /// Report the call's outcome.  `was_probe` must echo Decision::probe.
  void on_success(bool was_probe) {
    std::lock_guard<std::mutex> lock(mu_);
    if (was_probe) probe_inflight_ = false;
    consecutive_failures_ = 0;
    open_until_ = {};
  }

  /// Returns true when this failure tripped the breaker open (a closed
  /// -> open transition, or a failed probe re-opening the window).
  bool on_failure(bool was_probe) {
    std::lock_guard<std::mutex> lock(mu_);
    if (was_probe) {
      // A failed probe re-opens the window immediately, whatever the
      // failure count says: the server proved it is still unwell.
      probe_inflight_ = false;
      open_until_ = Clock::now() + std::chrono::milliseconds(opt_.open_ms);
      stats_.opens++;
      return true;
    }
    consecutive_failures_++;
    if (consecutive_failures_ >= opt_.threshold &&
        open_until_ == Clock::time_point{}) {
      open_until_ = Clock::now() + std::chrono::milliseconds(opt_.open_ms);
      stats_.opens++;
      return true;
    }
    return false;
  }

  State state() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (open_until_ == Clock::time_point{}) return State::kClosed;
    return Clock::now() < open_until_ ? State::kOpen : State::kHalfOpen;
  }

  /// Milliseconds left in the open window (0 when closed or half-open).
  int64_t remaining_ms() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (open_until_ == Clock::time_point{}) return 0;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        open_until_ - Clock::now());
    return std::max<int64_t>(0, left.count());
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  const BreakerOptions& options() const { return opt_; }

 private:
  using Clock = std::chrono::steady_clock;

  BreakerOptions opt_;
  mutable std::mutex mu_;
  int consecutive_failures_ = 0;
  bool probe_inflight_ = false;
  Clock::time_point open_until_{};
  Stats stats_;
};

}  // namespace picola::net
