#pragma once
// Non-blocking TCP encoding server (the network face of the
// EncodingService).  One event-loop thread multiplexes every connection
// with epoll (poll fallback, net/poller.h); encoding work runs on the
// service's thread pool and completion re-enters the loop through a
// wake pipe, so the loop never blocks on a job and a slow client never
// blocks a fast one.
//
// Protocol: length-prefixed JSON frames (net/frame.h).  Requests either
// carry a `cmd` ("ping", "stats", "metrics", "shutdown") or describe an
// encoding job (`path` or inline `con` text, optional `restarts`,
// `bits`, `backend`, `deadline_ms`, `id` echo).  Full spec:
// docs/SERVICE.md.
//
// Robustness under load, by design rather than by accident:
//   * Admission control — at most `max_inflight` admitted-but-unfinished
//     encoding requests; past that the server sheds immediately with
//     {"error":"overloaded","retry_after_ms":...} instead of queueing
//     without bound.
//   * Deadlines — a request's `deadline_ms` arms a timer; expiry answers
//     {"error":"deadline_exceeded"} at once and fires the job's
//     CancelToken (encoders/restart.h), so the abandoned work unwinds at
//     the next column boundary instead of burning the pool.
//   * Backpressure — a connection whose write buffer exceeds the
//     threshold stops being read (its requests queue in *its* kernel
//     socket, not in server memory); past the hard cap it is closed.
//   * Max-frame guard — an oversized frame header is rejected before the
//     body is buffered, with an error frame, then the connection closes.
//   * Idle timeout — connections with no traffic and no pending requests
//     are closed after `idle_timeout_ms`.
//   * Graceful drain — SIGTERM (via request_shutdown(), which is
//     async-signal-safe) or a `shutdown` request stops accepting,
//     answers every admitted job, flushes, then exits the loop.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "service/service.h"
#include "net/cluster.h"
#include "net/poller.h"

namespace picola::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral (read the bound port from port())
  /// Admitted-but-unfinished encoding requests before shedding.
  int max_inflight = 64;
  /// Suggested client back-off in the overload response.
  int retry_after_ms = 50;
  /// Close connections idle (no traffic, no pending requests) this long;
  /// 0 disables.
  int idle_timeout_ms = 0;
  /// Largest accepted request frame; responses use the same bound.
  size_t max_frame_bytes = 1u << 20;
  /// Write-buffer level above which the connection stops being read.
  size_t write_backpressure_bytes = 1u << 20;
  /// Write-buffer hard cap; a slower client is disconnected.
  size_t max_write_buffer_bytes = 8u << 20;
  /// Defaults applied to requests that omit the fields.
  int default_restarts = 4;
  int default_bits = 0;
  /// Backend for requests without a "backend" field (the per-request
  /// field accepts picola | sat | anneal | portfolio).
  portfolio::PortfolioOptions default_portfolio;
  bool self_check = false;
  /// Allow `path` requests (server-side file reads).  Inline `con`
  /// requests always work.
  bool allow_paths = true;
  /// Force the poll(2) backend (tests; epoll is the Linux default).
  bool use_poll = false;
  /// Admin HTTP listener (GET /metrics, /healthz, /statusz) on the same
  /// event loop; -1 disables, 0 binds an ephemeral port (read it back
  /// from admin_port()).  It binds to `bind_address` and keeps serving
  /// during graceful drain — that is how /healthz reports 503.
  int admin_port = -1;
  /// Log one structured JSON line per encoding request slower than this
  /// (queue-wait / encode breakdown); 0 disables.
  int slow_request_ms = 0;
  /// Sink for slow-request lines; stderr when empty.  The callback runs
  /// on the event-loop thread and must not block.
  std::function<void(const std::string&)> slow_log;
  /// Cluster membership (docs/CLUSTER.md), this node included.  When set
  /// together with `self`, an encoding request whose route_key owner is
  /// another member and which misses the local cache first `peek`s the
  /// owner's cache (off the loop, on a dedicated probe thread) and
  /// adopts a hit instead of re-encoding.  The `peek` command itself is
  /// always served, peers configured or not.  Empty = single node.
  std::vector<ClusterMember> peers;
  /// This node's member name ("host:port") — must equal peers[i].name()
  /// for exactly one i, or the cluster path stays off.
  std::string self;
  /// Master switch for the peek-before-encode forwarding above.
  bool peer_forward = true;
  /// Connect + I/O bound for one peer peek; a slow peer must cost less
  /// than the encode it might save.
  int peer_timeout_ms = 500;
  /// The embedded EncodingService (threads, cache).  max_queue is forced
  /// to 0: admission control bounds work *before* the pool, and a
  /// bounded pool queue would block the event loop in post().
  ServiceOptions service;
};

/// Point-in-time counters (the live registry is metrics()).
struct NetStats {
  long connections_accepted = 0;
  long connections_closed = 0;
  long frames_in = 0;
  long frames_out = 0;
  long requests_admitted = 0;
  long responses_ok = 0;
  long responses_error = 0;
  long sheds = 0;
  long deadline_misses = 0;
  long cancelled_jobs = 0;
  long frame_errors = 0;
  long idle_closed = 0;
  long active_connections = 0;
  long inflight = 0;
};

class Server {
 public:
  /// Binds and listens immediately (throws std::runtime_error on
  /// failure); the event loop starts with run() or start().
  explicit Server(const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves port 0).
  uint16_t port() const;

  /// The bound admin port (resolves admin_port 0); 0 when disabled.
  uint16_t admin_port() const;

  /// Run the event loop on the calling thread until a graceful shutdown
  /// completes.
  void run();

  /// Run the event loop on a background thread (tests, benches).
  void start();

  /// Begin graceful drain: stop accepting, answer in-flight work, flush,
  /// exit.  Async-signal-safe (one atomic store + one pipe write), so a
  /// SIGTERM handler may call it directly.  Idempotent.
  void request_shutdown() noexcept;

  /// request_shutdown() and join the start() thread (no-op after run()).
  void stop();

  NetStats stats() const;
  /// Live net/* registry (counters, gauges, the net/request latency
  /// histogram).
  const obs::MetricsRegistry& metrics() const;
  /// The embedded service (its own registry rides along).
  EncodingService& service();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace picola::net
