#include "net/sys.h"

#include <unistd.h>
#if defined(__linux__)
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cerrno>

#include "fault/fault.h"

namespace picola::net::sys {

namespace {

/// Shared prelude: returns true when the caller must fail with the
/// injected errno; otherwise applies delay / byte-count clamping.
bool inject(const fault::Action& a, size_t* n) {
  switch (a.kind) {
    case fault::Kind::kErrno:
      errno = a.error;
      return true;
    case fault::Kind::kShortIo:
      if (n && a.max_bytes > 0) *n = std::min(*n, a.max_bytes);
      return false;
    case fault::Kind::kDelay:
      fault::apply_delay(a);
      return false;
    default:
      return false;
  }
}

}  // namespace

ssize_t read(int fd, void* buf, size_t n) {
  fault::Action a = PICOLA_FAULT_POINT("net/read");
  if (inject(a, &n)) return -1;
  return ::read(fd, buf, n);
}

ssize_t write(int fd, const void* buf, size_t n) {
  fault::Action a = PICOLA_FAULT_POINT("net/write");
  if (inject(a, &n)) return -1;
  return ::write(fd, buf, n);
}

ssize_t send_nosig(int fd, const void* buf, size_t n) {
  fault::Action a = PICOLA_FAULT_POINT("net/write");
  if (inject(a, &n)) return -1;
  return ::send(fd, buf, n, MSG_NOSIGNAL);
}

int accept(int fd, sockaddr* addr, socklen_t* addrlen) {
  fault::Action a = PICOLA_FAULT_POINT("net/accept");
  if (inject(a, nullptr)) return -1;
  return ::accept(fd, addr, addrlen);
}

int connect(int fd, const sockaddr* addr, socklen_t addrlen) {
  fault::Action a = PICOLA_FAULT_POINT("net/connect");
  if (inject(a, nullptr)) return -1;
  return ::connect(fd, addr, addrlen);
}

#if defined(__linux__)
int epoll_wait(int epfd, ::epoll_event* events, int maxevents,
               int timeout_ms) {
  fault::Action a = PICOLA_FAULT_POINT("net/epoll_wait");
  if (inject(a, nullptr)) return -1;
  return ::epoll_wait(epfd, events, maxevents, timeout_ms);
}
#endif

int poll(pollfd* fds, nfds_t nfds, int timeout_ms) {
  fault::Action a = PICOLA_FAULT_POINT("net/epoll_wait");
  if (inject(a, nullptr)) return -1;
  return ::poll(fds, nfds, timeout_ms);
}

int close(int fd) {
  fault::Action a = PICOLA_FAULT_POINT("net/close");
  int rc = ::close(fd);
  if (a.kind == fault::Kind::kErrno) {
    errno = a.error;
    return -1;
  }
  return rc;
}

}  // namespace picola::net::sys
