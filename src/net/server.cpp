#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/problem_io.h"
#include "encoders/restart.h"
#include "eval/metrics.h"
#include "fault/fault.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/json.h"
#include "net/sys.h"
#include "obs/build_info.h"
#include "obs/export.h"
#include "obs/tracer.h"
#include "persist/codec.h"
#include "service/job.h"

namespace picola::net {

namespace {

/// Flushing grace once drain has answered every job; a client that never
/// reads its socket cannot park the shutdown forever.
constexpr uint64_t kDrainFlushGraceNs = 5'000'000'000ULL;

std::string hex64(uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Peek records (persist/codec.h binary) travel inside JSON strings as
/// lowercase hex — the frame protocol is UTF-8 JSON, raw bytes are not.
std::string hex_encode(const std::string& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xF]);
  }
  return out;
}

bool hex_decode(const std::string& hex, std::string* out) {
  if (hex.size() % 2 != 0) return false;
  out->clear();
  out->reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi, lo;
    auto val = [](char ch, int* d) {
      if (ch >= '0' && ch <= '9') *d = ch - '0';
      else if (ch >= 'a' && ch <= 'f') *d = ch - 'a' + 10;
      else if (ch >= 'A' && ch <= 'F') *d = ch - 'A' + 10;
      else return false;
      return true;
    };
    if (!val(hex[i], &hi) || !val(hex[i + 1], &lo)) return false;
    out->push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

/// 1-16 hex digits -> uint64 (wire trace_id / parent_span fields).
bool parse_hex64(const std::string& s, uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  uint64_t v = 0;
  for (char ch : s) {
    int d;
    if (ch >= '0' && ch <= '9') d = ch - '0';
    else if (ch >= 'a' && ch <= 'f') d = ch - 'a' + 10;
    else if (ch >= 'A' && ch <= 'F') d = ch - 'A' + 10;
    else return false;
    v = (v << 4) | static_cast<uint64_t>(d);
  }
  *out = v;
  return true;
}

/// Largest accepted admin HTTP request (request line + headers).
constexpr size_t kAdminRequestMax = 8192;

std::string http_response(int code, const char* reason,
                          const std::string& content_type,
                          const std::string& body) {
  std::string r = "HTTP/1.0 " + std::to_string(code) + " " + reason + "\r\n";
  r += "Content-Type: " + content_type + "\r\n";
  r += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  r += "Connection: close\r\n\r\n";
  r += body;
  return r;
}

}  // namespace

struct Server::Impl {
  struct Conn {
    int fd = -1;
    uint64_t serial = 0;
    FrameReader reader;
    std::string wbuf;
    size_t woff = 0;
    uint64_t last_activity_ns = 0;
    int pending = 0;           ///< admitted requests awaiting a response
    bool want_write = false;   ///< current poller interest
    bool paused_read = false;  ///< backpressure: write buffer too deep
    bool close_after_flush = false;
    bool marked_close = false;

    explicit Conn(size_t max_frame) : reader(max_frame) {}
    size_t unsent() const { return wbuf.size() - woff; }
  };

  /// One admin HTTP connection: read a GET request, write one response,
  /// close.  Same poller, same loop thread, same sys:: fault points as
  /// the frame protocol.
  struct AdminConn {
    int fd = -1;
    std::string in;    ///< request bytes until the blank line
    std::string out;   ///< full response; close once flushed
    size_t off = 0;
    bool responding = false;  ///< headers parsed, out holds the response
    bool marked_close = false;
    size_t unsent() const { return out.size() - off; }
  };

  struct Request {
    uint64_t serial = 0;
    int conn_fd = -1;
    uint64_t conn_serial = 0;
    JsonValue id;  ///< echoed verbatim (null = absent)
    ConstraintSet set;
    std::shared_ptr<CancelToken> cancel;
    uint64_t deadline_ns = 0;  ///< absolute obs::now_ns() deadline, 0 = none
    int deadline_ms = 0;       ///< as requested, for the error frame
    uint64_t start_ns = 0;
    uint64_t trace_id = 0;     ///< wire-propagated correlation id, 0 = none
    uint64_t parent_span = 0;  ///< opaque client span id (slow log only)
    bool answered = false;  ///< deadline already produced the response
  };

  /// One off-owner job handed to the peer-probe thread (peek the ring
  /// owner's cache, then submit).
  struct ProbeTask {
    uint64_t serial = 0;
    Job job;
    int owner = -1;
  };

  explicit Impl(const ServerOptions& options)
      : opt_(sanitized(options)),
        service_(opt_.service),
        poller_(opt_.use_poll ? PollBackend::kPoll : default_poll_backend()),
        accepted_(registry_.counter("net/connections_accepted")),
        closed_(registry_.counter("net/connections_closed")),
        idle_closed_(registry_.counter("net/idle_closed")),
        slow_closed_(registry_.counter("net/slow_client_closed")),
        frames_in_(registry_.counter("net/frames_in")),
        frames_out_(registry_.counter("net/frames_out")),
        admitted_(registry_.counter("net/requests_admitted")),
        responses_ok_(registry_.counter("net/responses_ok")),
        responses_error_(registry_.counter("net/responses_error")),
        sheds_(registry_.counter("net/sheds")),
        deadline_misses_(registry_.counter("net/deadline_misses")),
        cancelled_jobs_(registry_.counter("net/cancelled_jobs")),
        frame_errors_(registry_.counter("net/frame_errors")),
        wakeups_(registry_.counter("net/wakeups")),
        wakeup_reads_(registry_.counter("net/wakeup_reads")),
        completions_(registry_.counter("net/completions")),
        admin_requests_(registry_.counter("net/admin_requests")),
        slow_requests_(registry_.counter("net/slow_requests")),
        peek_attempts_(registry_.counter("cluster/peek_attempts")),
        forwarded_hits_(registry_.counter("cluster/forwarded_hits")),
        peek_misses_(registry_.counter("cluster/peek_misses")),
        peek_failures_(registry_.counter("cluster/peek_failures")),
        peeks_served_(registry_.counter("cluster/peeks_served")),
        active_(registry_.gauge("net/connections_active")),
        inflight_(registry_.gauge("net/inflight")),
        uptime_seconds_(registry_.gauge("net/uptime_seconds")),
        request_ns_(registry_.histogram("net/request")),
        start_ns_(obs::now_ns()) {
    open_listener();
    open_wake_pipe();
    if (opt_.admin_port >= 0) open_admin_listener();
    poller_.add(listen_fd_, /*read=*/true, /*write=*/false);
    poller_.add(wake_rd_, /*read=*/true, /*write=*/false);
    if (admin_listen_fd_ >= 0)
      poller_.add(admin_listen_fd_, /*read=*/true, /*write=*/false);
    if (!opt_.peers.empty() && !opt_.self.empty()) {
      std::vector<std::string> names;
      names.reserve(opt_.peers.size());
      for (size_t i = 0; i < opt_.peers.size(); ++i) {
        names.push_back(opt_.peers[i].name());
        if (names.back() == opt_.self) self_index_ = static_cast<int>(i);
      }
      if (self_index_ >= 0 && opt_.peers.size() > 1 && opt_.peer_forward) {
        peer_ring_ = std::make_unique<HashRing>(names);
        peer_clients_.resize(opt_.peers.size());
        probe_thread_ = std::thread([this] { probe_loop(); });
      }
    }
  }

  ~Impl() {
    stop_probe_thread();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (admin_listen_fd_ >= 0) ::close(admin_listen_fd_);
    if (wake_rd_ >= 0) ::close(wake_rd_);
    if (wake_wr_ >= 0) ::close(wake_wr_);
    for (auto& [fd, conn] : conns_) ::close(fd);
    for (auto& [fd, conn] : admin_conns_) ::close(fd);
  }

  static ServerOptions sanitized(ServerOptions o) {
    // A bounded pool queue would block the event loop inside post();
    // admission control (max_inflight) is the queue bound here.
    o.service.max_queue = 0;
    o.max_inflight = std::max(1, o.max_inflight);
    o.max_frame_bytes =
        std::min(std::max<size_t>(o.max_frame_bytes, 64), kFrameAbsoluteMax);
    o.write_backpressure_bytes = std::max<size_t>(o.write_backpressure_bytes,
                                                  o.max_frame_bytes);
    o.max_write_buffer_bytes = std::max(o.max_write_buffer_bytes,
                                        o.write_backpressure_bytes * 2);
    o.default_restarts = std::max(1, o.default_restarts);
    return o;
  }

  void open_listener() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
      throw std::runtime_error("socket: " + std::string(strerror(errno)));
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opt_.port);
    if (::inet_pton(AF_INET, opt_.bind_address.c_str(), &addr.sin_addr) != 1)
      throw std::runtime_error("bad bind address " + opt_.bind_address);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0)
      throw std::runtime_error("bind " + opt_.bind_address + ":" +
                               std::to_string(opt_.port) + ": " +
                               strerror(errno));
    if (::listen(listen_fd_, 256) != 0)
      throw std::runtime_error("listen: " + std::string(strerror(errno)));
    set_nonblocking(listen_fd_);
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    bound_port_ = ntohs(bound.sin_port);
  }

  void open_admin_listener() {
    admin_listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (admin_listen_fd_ < 0)
      throw std::runtime_error("admin socket: " +
                               std::string(strerror(errno)));
    int one = 1;
    ::setsockopt(admin_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(opt_.admin_port));
    if (::inet_pton(AF_INET, opt_.bind_address.c_str(), &addr.sin_addr) != 1)
      throw std::runtime_error("bad bind address " + opt_.bind_address);
    if (::bind(admin_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0)
      throw std::runtime_error("admin bind " + opt_.bind_address + ":" +
                               std::to_string(opt_.admin_port) + ": " +
                               strerror(errno));
    if (::listen(admin_listen_fd_, 64) != 0)
      throw std::runtime_error("admin listen: " +
                               std::string(strerror(errno)));
    set_nonblocking(admin_listen_fd_);
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(admin_listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    admin_port_ = ntohs(bound.sin_port);
  }

  void open_wake_pipe() {
    int fds[2];
    if (::pipe(fds) != 0)
      throw std::runtime_error("pipe: " + std::string(strerror(errno)));
    wake_rd_ = fds[0];
    wake_wr_ = fds[1];
    set_nonblocking(wake_rd_);
    set_nonblocking(wake_wr_);
  }

  /// Async-signal-safe: one relaxed fetch_add and one write(2).  Raw
  /// ::write on purpose — the sys:: shim takes a mutex and must not run
  /// inside a signal handler; wake_calls_ is a raw atomic (not a striped
  /// Counter, whose thread-local stripe pick is not signal-safe) that the
  /// loop folds into net/wakeups when it drains the pipe.
  void wake() noexcept {
    wake_calls_.fetch_add(1, std::memory_order_relaxed);
    char b = 'w';
    [[maybe_unused]] ssize_t n = ::write(wake_wr_, &b, 1);
    // EAGAIN means a wake byte is already pending — good enough.
  }

  void request_shutdown() noexcept {
    shutdown_requested_.store(true, std::memory_order_relaxed);
    wake();
  }

  // ---- event loop ------------------------------------------------------

  void run() {
    std::vector<PollEvent> events;
    while (!finished_) {
      poller_.wait(&events, next_timeout_ms());
      const uint64_t now = obs::now_ns();
      if (shutdown_requested_.load(std::memory_order_relaxed) && !draining_)
        begin_drain();
      for (const PollEvent& e : events) {
        if (e.fd == wake_rd_) {
          drain_wake_pipe();
          if (shutdown_requested_.load(std::memory_order_relaxed) &&
              !draining_)
            begin_drain();
          continue;
        }
        if (e.fd == listen_fd_) {
          accept_all();
          continue;
        }
        if (admin_listen_fd_ >= 0 && e.fd == admin_listen_fd_) {
          accept_admin();
          continue;
        }
        auto ait = admin_conns_.find(e.fd);
        if (ait != admin_conns_.end()) {
          AdminConn* ac = ait->second.get();
          if (e.hangup) ac->marked_close = true;
          if (e.writable && !ac->marked_close) admin_flush(ac);
          if (e.readable && !ac->marked_close) admin_readable(ac);
          continue;
        }
        auto it = conns_.find(e.fd);
        if (it == conns_.end()) continue;
        Conn* conn = it->second.get();
        if (e.hangup) conn->marked_close = true;
        if (e.writable && !conn->marked_close) on_writable(conn);
        if (e.readable && !conn->marked_close) on_readable(conn);
      }
      drain_completions();
      expire_deadlines(now);
      sweep_idle(now);
      process_deferred_closes();
      process_admin_closes();
      // Periodic cache durability: a no-op unless a snapshot interval
      // elapsed with changes (persist/store.h).  Normally finish_job
      // snapshots on the worker that completed a job; this sweep covers
      // the traffic-went-quiet case so the last inserts still reach the
      // snapshot without waiting for shutdown.
      service_.maybe_snapshot();
      check_drain_done(now);
    }
  }

  int next_timeout_ms() const {
    uint64_t next = UINT64_MAX;
    if (!deadlines_.empty()) next = deadlines_.begin()->first;
    if (opt_.idle_timeout_ms > 0 && !conns_.empty()) {
      uint64_t idle_step =
          obs::now_ns() + static_cast<uint64_t>(opt_.idle_timeout_ms) * 250'000;
      next = std::min(next, idle_step);  // sweep at 1/4 the idle period
    }
    if (draining_)
      next = std::min<uint64_t>(next, obs::now_ns() + 100'000'000ULL);
    // With persistence on, wake at least once per snapshot interval so
    // the idle-sweep snapshot above actually runs on an idle server.
    if (service_.store() && opt_.service.snapshot_interval_s > 0)
      next = std::min<uint64_t>(
          next, obs::now_ns() +
                    static_cast<uint64_t>(opt_.service.snapshot_interval_s) *
                        1'000'000'000ULL);
    if (next == UINT64_MAX) return -1;
    uint64_t now = obs::now_ns();
    if (next <= now) return 0;
    return static_cast<int>(std::min<uint64_t>((next - now) / 1'000'000 + 1,
                                               60'000));
  }

  void drain_wake_pipe() {
    // One pipe read may coalesce many wake() calls — net/wakeups vs
    // net/wakeup_reads is the coalescing ratio (docs/OBSERVABILITY.md).
    wakeup_reads_.add(1);
    wakeups_.add(wake_calls_.exchange(0, std::memory_order_relaxed));
    char buf[256];
    for (;;) {
      ssize_t k = sys::read(wake_rd_, buf, sizeof buf);
      if (k > 0) continue;
      if (k < 0 && errno == EINTR) continue;  // a pending byte must not
      break;                                  // survive an EINTR storm
    }
  }

  void accept_all() {
    if (draining_) return;
    for (;;) {
      int fd = sys::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        // The peer gave up between connect and accept — not our error.
        if (errno == ECONNABORTED) continue;
        break;  // EAGAIN or transient error
      }
      set_nonblocking(fd);
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      auto conn = std::make_unique<Conn>(opt_.max_frame_bytes);
      conn->fd = fd;
      conn->serial = ++conn_serial_;
      conn->last_activity_ns = obs::now_ns();
      poller_.add(fd, /*read=*/true, /*write=*/false);
      conns_.emplace(fd, std::move(conn));
      accepted_.add(1);
      active_.set(static_cast<int64_t>(conns_.size()));
    }
  }

  // ---- admin HTTP plane ------------------------------------------------

  /// Unlike accept_all this keeps accepting during drain: health probes
  /// must see the 503 while the server is still answering work.
  void accept_admin() {
    for (;;) {
      int fd = sys::accept(admin_listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        if (errno == ECONNABORTED) continue;
        break;
      }
      set_nonblocking(fd);
      auto conn = std::make_unique<AdminConn>();
      conn->fd = fd;
      poller_.add(fd, /*read=*/true, /*write=*/false);
      admin_conns_.emplace(fd, std::move(conn));
    }
  }

  void admin_readable(AdminConn* ac) {
    char buf[4096];
    for (;;) {
      ssize_t k = sys::read(ac->fd, buf, sizeof buf);
      if (k > 0) {
        if (ac->responding) continue;  // pipelined bytes are ignored
        ac->in.append(buf, static_cast<size_t>(k));
        if (ac->in.size() > kAdminRequestMax) {
          admin_respond(ac, http_response(400, "Bad Request", "text/plain",
                                          "request too large\n"));
          return;
        }
        if (ac->in.find("\r\n\r\n") != std::string::npos ||
            ac->in.find("\n\n") != std::string::npos) {
          handle_admin_request(ac);
          return;
        }
        continue;
      }
      if (k == 0) {
        ac->marked_close = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) ac->marked_close = true;
      break;
    }
  }

  void handle_admin_request(AdminConn* ac) {
    admin_requests_.add(1);
    // Request line: METHOD SP PATH SP VERSION.  Headers are ignored.
    size_t eol = ac->in.find_first_of("\r\n");
    std::string line = ac->in.substr(0, eol);
    size_t sp1 = line.find(' ');
    size_t sp2 = line.rfind(' ');
    if (sp1 == std::string::npos || sp2 <= sp1) {
      admin_respond(ac, http_response(400, "Bad Request", "text/plain",
                                      "malformed request line\n"));
      return;
    }
    std::string method = line.substr(0, sp1);
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (size_t q = path.find('?'); q != std::string::npos) path.resize(q);
    if (method != "GET") {
      admin_respond(ac, http_response(405, "Method Not Allowed", "text/plain",
                                      "only GET is supported\n"));
      return;
    }
    if (path == "/healthz") {
      admin_respond(ac, draining_
                            ? http_response(503, "Service Unavailable",
                                            "text/plain", "draining\n")
                            : http_response(200, "OK", "text/plain", "ok\n"));
      return;
    }
    if (path == "/metrics") {
      refresh_gauges();
      std::string body = obs::prometheus_text(
          {&registry_, &service_.metrics(), &obs::MetricsRegistry::global()});
      admin_respond(ac,
                    http_response(200, "OK",
                                  "text/plain; version=0.0.4; charset=utf-8",
                                  body));
      return;
    }
    if (path == "/statusz") {
      admin_respond(ac, http_response(200, "OK", "application/json",
                                      statusz_json()));
      return;
    }
    admin_respond(ac, http_response(404, "Not Found", "text/plain",
                                    "try /metrics, /healthz or /statusz\n"));
  }

  void admin_respond(AdminConn* ac, std::string response) {
    ac->responding = true;
    ac->in.clear();
    ac->out = std::move(response);
    ac->off = 0;
    admin_flush(ac);
  }

  void admin_flush(AdminConn* ac) {
    while (ac->off < ac->out.size()) {
      ssize_t k = sys::send_nosig(ac->fd, ac->out.data() + ac->off,
                                  ac->out.size() - ac->off);
      if (k > 0) {
        ac->off += static_cast<size_t>(k);
        continue;
      }
      if (k < 0 && errno == EINTR) continue;
      if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        poller_.set(ac->fd, /*read=*/false, /*write=*/true);
        return;
      }
      ac->marked_close = true;  // broken pipe etc.
      return;
    }
    if (ac->responding) ac->marked_close = true;  // one response, then close
  }

  void process_admin_closes() {
    for (auto it = admin_conns_.begin(); it != admin_conns_.end();) {
      if (!it->second->marked_close) {
        ++it;
        continue;
      }
      poller_.remove(it->second->fd);
      sys::close(it->second->fd);
      it = admin_conns_.erase(it);
    }
  }

  void refresh_gauges() {
    service_.refresh_gauges();
    uint64_t now = obs::now_ns();
    uint64_t up = now > start_ns_ ? now - start_ns_ : 0;
    uptime_seconds_.set(static_cast<int64_t>(up / 1'000'000'000ULL));
  }

  std::string statusz_json() {
    refresh_gauges();
    const ResultCache& cache = service_.cache();
    const obs::MetricsRegistry& sm = service_.metrics();
    std::string j = "{";
    j += "\"uptime_seconds\":" +
         std::to_string(uptime_seconds_.value()) + ",";
    j += "\"build\":" + obs::build_info_json() + ",";
    j += std::string("\"draining\":") + (draining_ ? "true" : "false") + ",";
    j += "\"inflight\":" + std::to_string(requests_.size()) + ",";
    j += "\"connections_active\":" + std::to_string(conns_.size()) + ",";
    j += "\"cache\":{\"entries\":" + std::to_string(cache.size()) +
         ",\"capacity\":" + std::to_string(cache.capacity()) +
         ",\"shards\":" + std::to_string(cache.num_shards()) + "},";
    j += "\"backends\":{\"picola\":" +
         std::to_string(sm.counter_value("service/backend_picola")) +
         ",\"sat\":" +
         std::to_string(sm.counter_value("service/backend_sat")) +
         ",\"anneal\":" +
         std::to_string(sm.counter_value("service/backend_anneal")) + "},";
    if (const persist::CacheStore* store = service_.store()) {
      const persist::LoadStats& ls = store->load_stats();
      j += "\"persist\":{\"dir\":" +
           JsonValue::make_string(store->dir()).dump() +
           ",\"epoch\":" + std::to_string(store->epoch()) +
           ",\"snapshots\":" + std::to_string(store->snapshots_taken()) +
           ",\"snapshot_age_seconds\":" +
           std::to_string(static_cast<int64_t>(store->snapshot_age_s())) +
           ",\"journal_bytes\":" + std::to_string(store->journal_bytes()) +
           ",\"records_loaded\":" + std::to_string(ls.snapshot_records) +
           ",\"journal_replayed\":" +
           std::to_string(ls.journal_inserts + ls.journal_evicts) +
           ",\"torn_tail_recovered\":" +
           (ls.torn_tail ? std::string("true") : std::string("false")) +
           ",\"recovery\":\"" +
           persist::recovery_outcome_name(ls.outcome) + "\"},";
    }
    if (peer_ring_) {
      j += "\"cluster\":{\"self\":" + JsonValue::make_string(opt_.self).dump() +
           ",\"members\":" + std::to_string(opt_.peers.size()) +
           ",\"peek_attempts\":" + std::to_string(peek_attempts_.value()) +
           ",\"forwarded_hits\":" + std::to_string(forwarded_hits_.value()) +
           ",\"peeks_served\":" + std::to_string(peeks_served_.value()) + "},";
    }
    j += "\"service\":" + service_stats_json(service_.stats()) + "}";
    return j;
  }

  void on_readable(Conn* conn) {
    char buf[65536];
    for (;;) {
      ssize_t k = sys::read(conn->fd, buf, sizeof buf);
      if (k > 0) {
        conn->last_activity_ns = obs::now_ns();
        if (!conn->reader.feed(buf, static_cast<size_t>(k))) {
          on_frame_error(conn);
          break;
        }
        while (auto payload = conn->reader.next()) {
          handle_frame(conn, *payload);
          if (conn->marked_close) return;
        }
        if (conn->paused_read) break;  // backpressure engaged mid-burst
        continue;
      }
      if (k == 0) {  // peer closed
        conn->marked_close = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) conn->marked_close = true;
      break;
    }
  }

  void on_frame_error(Conn* conn) {
    frame_errors_.add(1);
    JsonValue err = JsonValue::make_object();
    err.set("error", JsonValue::make_string("frame_too_large"));
    err.set("max_frame_bytes",
            JsonValue::make_int(static_cast<int64_t>(opt_.max_frame_bytes)));
    err.set("declared_bytes",
            JsonValue::make_int(
                static_cast<int64_t>(conn->reader.oversized_length())));
    // Framing is lost; stop reading and close once the error is flushed.
    // The flag must be set before send_json — an inline flush completes
    // the close immediately.
    conn->close_after_flush = true;
    update_interest(conn, /*read=*/false);
    send_json(conn, err.dump());
    responses_error_.add(1);
  }

  // ---- frame handling --------------------------------------------------

  void handle_frame(Conn* conn, const std::string& payload) {
    frames_in_.add(1);
    std::string parse_error;
    auto parsed = JsonValue::parse(payload, &parse_error);
    if (!parsed || !parsed->is_object()) {
      send_error(conn, JsonValue(), "bad_request",
                 parsed ? "request must be a JSON object" : parse_error);
      return;
    }
    const JsonValue& req = *parsed;
    JsonValue id = req.find("id") ? *req.find("id") : JsonValue();

    if (const JsonValue* cmd = req.find("cmd")) {
      if (!cmd->is_string()) {
        send_error(conn, id, "bad_request", "cmd must be a string");
        return;
      }
      handle_cmd(conn, id, cmd->as_string(), req);
      return;
    }
    handle_encode(conn, std::move(id), req);
  }

  void handle_cmd(Conn* conn, const JsonValue& id, const std::string& cmd,
                  const JsonValue& req) {
    if (cmd == "ping") {
      JsonValue r = ok_response(id);
      r.set("pong", JsonValue::make_bool(true));
      send_json(conn, r.dump());
      responses_ok_.add(1);
      return;
    }
    if (cmd == "stats") {
      std::string body = "{";
      if (!id.is_null()) body += "\"id\":" + id.dump() + ",";
      body += "\"ok\":true,\"net\":" + net_stats_json() +
              ",\"service\":" + service_stats_json(service_.stats()) + "}";
      send_json(conn, body);
      responses_ok_.add(1);
      return;
    }
    if (cmd == "metrics") {
      refresh_gauges();
      std::string body = "{";
      if (!id.is_null()) body += "\"id\":" + id.dump() + ",";
      body += "\"ok\":true,\"build\":" + obs::build_info_json() +
              ",\"net\":" + registry_.report_json() +
              ",\"service\":" + service_.metrics().report_json() +
              ",\"process\":" + obs::MetricsRegistry::global().report_json() +
              "}";
      send_json(conn, body);
      responses_ok_.add(1);
      return;
    }
    if (cmd == "peek") {
      // Cluster cache peek (docs/CLUSTER.md): a peer asks whether this
      // node has `fp` memoised.  Served during drain too — a draining
      // node's cache is exactly what a restarting peer wants to read.
      const JsonValue* fp = req.find("fp");
      uint64_t fingerprint = 0;
      if (!fp || !fp->is_string() ||
          !parse_hex64(fp->as_string(), &fingerprint)) {
        send_error(conn, id, "bad_request",
                   "peek needs an \"fp\" field of 1-16 hex digits");
        return;
      }
      peeks_served_.add(1);
      JsonValue r = ok_response(id);
      if (auto record = service_.peek_record(fingerprint)) {
        r.set("hit", JsonValue::make_bool(true));
        r.set("record", JsonValue::make_string(hex_encode(*record)));
      } else {
        r.set("hit", JsonValue::make_bool(false));
      }
      send_json(conn, r.dump());
      responses_ok_.add(1);
      return;
    }
    if (cmd == "shutdown") {
      JsonValue r = ok_response(id);
      r.set("draining", JsonValue::make_bool(true));
      send_json(conn, r.dump());
      responses_ok_.add(1);
      begin_drain();
      return;
    }
    send_error(conn, id, "bad_request", "unknown cmd " + cmd);
  }

  void handle_encode(Conn* conn, JsonValue id, const JsonValue& req) {
    if (draining_) {
      send_error(conn, id, "shutting_down", "server is draining");
      return;
    }
    // Load shedding before any parsing: overload must be the cheapest
    // possible path.
    if (static_cast<int>(requests_.size()) >= opt_.max_inflight) {
      sheds_.add(1);
      JsonValue r = JsonValue::make_object();
      if (!id.is_null()) r.set("id", id);
      r.set("error", JsonValue::make_string("overloaded"));
      r.set("retry_after_ms", JsonValue::make_int(opt_.retry_after_ms));
      send_json(conn, r.dump());
      responses_error_.add(1);
      return;
    }

    const JsonValue* con = req.find("con");
    const JsonValue* path = req.find("path");
    std::optional<Problem> problem;
    std::string error;
    if (con && con->is_string()) {
      problem = parse_problem_text(con->as_string(), &error);
    } else if (path && path->is_string()) {
      if (!opt_.allow_paths) {
        send_error(conn, id, "paths_disabled",
                   "server rejects path requests; send inline \"con\" text");
        return;
      }
      problem = load_problem_file(path->as_string(), &error);
    } else {
      send_error(conn, id, "bad_request",
                 "request needs a \"con\" or \"path\" string (or a \"cmd\")");
      return;
    }
    if (!problem) {
      send_error(conn, id, "bad_problem", error);
      return;
    }

    int restarts = opt_.default_restarts;
    if (const JsonValue* r = req.find("restarts")) {
      if (!r->is_number() || r->as_int() < 1 || r->as_int() > 1024) {
        send_error(conn, id, "bad_request", "restarts must be in [1, 1024]");
        return;
      }
      restarts = static_cast<int>(r->as_int());
    }
    int bits = opt_.default_bits;
    if (const JsonValue* b = req.find("bits")) {
      if (!b->is_number() || b->as_int() < 0 || b->as_int() > 31) {
        send_error(conn, id, "bad_request", "bits must be in [0, 31]");
        return;
      }
      bits = static_cast<int>(b->as_int());
    }
    portfolio::PortfolioOptions pf = opt_.default_portfolio;
    if (const JsonValue* be = req.find("backend")) {
      std::optional<portfolio::BackendKind> kind;
      if (be->is_string()) kind = portfolio::parse_backend_kind(be->as_string());
      if (!kind) {
        send_error(conn, id, "bad_request",
                   "backend must be picola, sat, anneal or portfolio");
        return;
      }
      pf.backend = *kind;
    }
    int deadline_ms = 0;
    if (const JsonValue* d = req.find("deadline_ms")) {
      if (!d->is_number() || d->as_int() < 1 || d->as_int() > 86'400'000) {
        send_error(conn, id, "bad_request",
                   "deadline_ms must be in [1, 86400000]");
        return;
      }
      deadline_ms = static_cast<int>(d->as_int());
    }
    uint64_t trace_id = 0;
    if (const JsonValue* t = req.find("trace_id")) {
      if (!t->is_string() || !parse_hex64(t->as_string(), &trace_id)) {
        send_error(conn, id, "bad_request",
                   "trace_id must be 1-16 hex digits");
        return;
      }
    }
    uint64_t parent_span = 0;
    if (const JsonValue* p = req.find("parent_span")) {
      if (!p->is_string() || !parse_hex64(p->as_string(), &parent_span)) {
        send_error(conn, id, "bad_request",
                   "parent_span must be 1-16 hex digits");
        return;
      }
    }

    Request r;
    r.serial = ++request_serial_;
    r.conn_fd = conn->fd;
    r.conn_serial = conn->serial;
    r.id = std::move(id);
    r.set = problem->set;
    r.cancel = std::make_shared<CancelToken>();
    r.start_ns = obs::now_ns();
    r.deadline_ms = deadline_ms;
    r.trace_id = trace_id;
    r.parent_span = parent_span;
    if (deadline_ms > 0)
      r.deadline_ns =
          r.start_ns + static_cast<uint64_t>(deadline_ms) * 1'000'000;

    Job job;
    job.set = std::move(problem->set);
    job.options.num_bits = bits;
    job.options.self_check = opt_.self_check;
    job.options.cancel = r.cancel;
    job.portfolio = pf;
    job.restarts = restarts;
    job.tag = path && path->is_string() ? path->as_string() : "<inline>";
    job.trace_id = trace_id;

    const uint64_t serial = r.serial;
    if (r.deadline_ns) deadlines_.emplace(r.deadline_ns, serial);
    requests_.emplace(serial, std::move(r));
    conn->pending++;
    admitted_.add(1);
    inflight_.set(static_cast<int64_t>(requests_.size()));

    // Cluster path: a job whose ring owner is another member detours
    // through the probe thread, which peeks the owner's cache before
    // submitting (docs/CLUSTER.md).  The loop never blocks on a peer.
    if (peer_ring_) {
      const int owner = peer_ring_->owner(route_key(job.set));
      if (owner != self_index_) {
        {
          std::lock_guard<std::mutex> lock(probe_mu_);
          probe_q_.push_back(ProbeTask{serial, std::move(job), owner});
        }
        probe_cv_.notify_one();
        return;
      }
    }

    // The callback runs on whichever thread finishes the job (inline on a
    // cache hit); it only enqueues and wakes the loop.
    try {
      service_.submit(std::move(job),
                      [this, serial](std::shared_future<JobResult> fut) {
                        {
                          std::lock_guard<std::mutex> lock(done_mu_);
                          done_.emplace_back(serial, std::move(fut));
                        }
                        wake();
                      });
    } catch (const std::exception& e) {
      // submit() itself failed (allocation, canonicalisation): the
      // admitted request still gets its one reply, right now.
      JsonValue echoed_id;
      auto it = requests_.find(serial);
      if (it != requests_.end()) {
        echoed_id = std::move(it->second.id);
        if (it->second.deadline_ns) {
          auto range = deadlines_.equal_range(it->second.deadline_ns);
          for (auto d = range.first; d != range.second; ++d)
            if (d->second == serial) {
              deadlines_.erase(d);
              break;
            }
        }
        requests_.erase(it);
      }
      inflight_.set(static_cast<int64_t>(requests_.size()));
      conn->pending--;
      send_error(conn, echoed_id, "internal_error", e.what());
    }
  }

  // ---- peer cache-hit forwarding (docs/CLUSTER.md) ----------------------

  /// Dedicated probe thread: owns the per-peer Clients, peeks the ring
  /// owner's cache on off-owner jobs, adopts hits, then submits — the
  /// job completes through the same done_ queue either way.  Bounded
  /// blocking only (peer_timeout_ms per peek).
  void probe_loop() {
    for (;;) {
      ProbeTask task;
      {
        std::unique_lock<std::mutex> lock(probe_mu_);
        probe_cv_.wait(lock,
                       [this] { return probe_stop_ || !probe_q_.empty(); });
        if (probe_q_.empty()) return;  // stopped and fully drained
        task = std::move(probe_q_.front());
        probe_q_.pop_front();
      }
      run_probe(std::move(task));
    }
  }

  void run_probe(ProbeTask task) {
    const uint64_t serial = task.serial;
    try {
      CanonicalJob canon = canonicalize(task.job);
      if (!service_.is_cached(canon))
        maybe_adopt_from_peer(canon, task.owner);
    } catch (const std::exception&) {
      // Canonicalisation failed; submit() below will fail the same way
      // and the request gets its one error reply through finish_request.
    }
    auto complete = [this, serial](std::shared_future<JobResult> fut) {
      {
        std::lock_guard<std::mutex> lock(done_mu_);
        done_.emplace_back(serial, std::move(fut));
      }
      wake();
    };
    try {
      service_.submit(std::move(task.job), complete);
    } catch (const std::exception&) {
      // Unlike the loop-thread submit path this cannot answer inline —
      // conns_/requests_ belong to the loop — so the exception rides a
      // ready future through the normal completion queue instead.
      std::promise<JobResult> p;
      p.set_exception(std::current_exception());
      complete(p.get_future().share());
    }
  }

  void maybe_adopt_from_peer(const CanonicalJob& canon, int owner) {
    peek_attempts_.add(1);
    if (PICOLA_FAULT_POINT("cluster/peek").kind == fault::Kind::kFail) {
      peek_failures_.add(1);
      return;
    }
    const ClusterMember& m = opt_.peers[static_cast<size_t>(owner)];
    auto& slot = peer_clients_[static_cast<size_t>(owner)];
    if (!slot) {
      ClientOptions co;
      co.connect_timeout_ms = opt_.peer_timeout_ms;
      co.io_timeout_ms = opt_.peer_timeout_ms;
      slot = std::make_unique<Client>(co);
    }
    std::string error;
    if (!slot->connected() && !slot->connect(m.host, m.port, &error)) {
      peek_failures_.add(1);
      return;
    }
    JsonValue req = JsonValue::make_object();
    req.set("cmd", JsonValue::make_string("peek"));
    req.set("fp", JsonValue::make_string(hex64(canon.fingerprint)));
    auto reply = slot->call(req, &error);
    if (!reply) {
      slot->close();  // transport state is unknown; reconnect next time
      peek_failures_.add(1);
      return;
    }
    const JsonValue* hit = reply->find("hit");
    if (!hit || !hit->is_bool()) {
      peek_failures_.add(1);
      return;
    }
    if (!hit->as_bool()) {
      peek_misses_.add(1);
      return;
    }
    const JsonValue* record = reply->find("record");
    std::string bytes;
    CanonicalJob peer_job;
    CachedResult peer_result;
    // The record is re-canonicalised by decode_record and deep-compared
    // against what WE would have computed — a peer can hand us a stale
    // or colliding record and the worst case is a normal encode.
    if (!record || !record->is_string() ||
        !hex_decode(record->as_string(), &bytes) ||
        !persist::decode_record(bytes, &peer_job, &peer_result, &error) ||
        !peer_job.equivalent(canon)) {
      peek_failures_.add(1);
      return;
    }
    service_.adopt(peer_job, std::move(peer_result));
    forwarded_hits_.add(1);
  }

  void stop_probe_thread() {
    {
      std::lock_guard<std::mutex> lock(probe_mu_);
      probe_stop_ = true;
    }
    probe_cv_.notify_all();
    if (probe_thread_.joinable()) probe_thread_.join();
  }

  // ---- completions, deadlines, idle, drain -----------------------------

  void drain_completions() {
    std::vector<std::pair<uint64_t, std::shared_future<JobResult>>> done;
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      done.swap(done_);
    }
    completions_.add(static_cast<uint64_t>(done.size()));
    for (auto& [serial, fut] : done) finish_request(serial, fut);
  }

  void finish_request(uint64_t serial,
                      const std::shared_future<JobResult>& fut) {
    auto it = requests_.find(serial);
    if (it == requests_.end()) return;  // defensive; should not happen
    Request req = std::move(it->second);
    requests_.erase(it);
    inflight_.set(static_cast<int64_t>(requests_.size()));
    // Drain ordering (docs/CLUSTER.md): the final admitted request's
    // result must be durable BEFORE its reply goes out — a client that
    // saw the answer may immediately restart this node and expect the
    // warm load to contain it.
    maybe_drain_snapshot();
    const uint64_t wall_ns = obs::now_ns() - req.start_ns;
    obs::ScopedTraceId trace_scope(req.trace_id);
    request_ns_.record(wall_ns);
    obs::record_span("net/request", req.start_ns, wall_ns);
    if (req.cancel->cancelled()) cancelled_jobs_.add(1);

    Conn* conn = nullptr;
    auto cit = conns_.find(req.conn_fd);
    if (cit != conns_.end() && cit->second->serial == req.conn_serial)
      conn = cit->second.get();
    if (conn) conn->pending--;
    if (req.answered || !conn) {  // deadline spoke, or client left
      maybe_slow_log(req, wall_ns, nullptr,
                     req.answered ? "deadline_exceeded" : "client_gone");
      return;
    }

    try {
      const JobResult r = fut.get();
      const Encoding& enc = r.picola.encoding;
      EncodingQuality q = encoding_quality(req.set, enc);
      JsonValue resp = ok_response(req.id);
      resp.set("n", JsonValue::make_int(enc.num_symbols));
      resp.set("bits", JsonValue::make_int(enc.num_bits));
      resp.set("cubes", JsonValue::make_int(r.total_cubes));
      resp.set("satisfied", JsonValue::make_int(q.satisfied_constraints));
      resp.set("constraints",
               JsonValue::make_int(static_cast<int64_t>(req.set.size())));
      resp.set("enc", JsonValue::make_string(hex64(encoding_fingerprint(enc))));
      resp.set("backend", JsonValue::make_string(
                              portfolio::backend_kind_name(r.backend)));
      resp.set("cached", JsonValue::make_int(r.cache_hit ? 1 : 0));
      resp.set("wall_ms", JsonValue::make_double(r.wall_ms));
      if (req.trace_id)
        resp.set("trace_id",
                 JsonValue::make_string(obs::trace_id_hex(req.trace_id)));
      send_json(conn, resp.dump());
      responses_ok_.add(1);
      maybe_slow_log(req, wall_ns, &r, nullptr);
    } catch (const CancelledError&) {
      send_error(conn, req.id, "cancelled", "job cancelled");
      maybe_slow_log(req, wall_ns, nullptr, "cancelled");
    } catch (const std::exception& e) {
      send_error(conn, req.id, "encode_failed", e.what());
      maybe_slow_log(req, wall_ns, nullptr, "encode_failed");
    }
  }

  /// One structured JSON line per request slower than --slow-ms, with the
  /// wall time split into queue wait vs encode time (plus the PICOLA
  /// phase breakdown when the winning backend recorded one).
  void maybe_slow_log(const Request& req, uint64_t wall_ns,
                      const JobResult* r, const char* error) {
    if (opt_.slow_request_ms <= 0) return;
    if (wall_ns < static_cast<uint64_t>(opt_.slow_request_ms) * 1'000'000)
      return;
    slow_requests_.add(1);
    const double wall_ms = static_cast<double>(wall_ns) / 1e6;
    JsonValue line = JsonValue::make_object();
    line.set("event", JsonValue::make_string("slow_request"));
    line.set("serial", JsonValue::make_int(static_cast<int64_t>(req.serial)));
    if (req.trace_id)
      line.set("trace_id",
               JsonValue::make_string(obs::trace_id_hex(req.trace_id)));
    if (req.parent_span)
      line.set("parent_span",
               JsonValue::make_string(obs::trace_id_hex(req.parent_span)));
    line.set("wall_ms", JsonValue::make_double(wall_ms));
    if (r) {
      const double queue_ms = r->queue_wait_ms;
      line.set("queue_wait_ms", JsonValue::make_double(queue_ms));
      line.set("encode_ms", JsonValue::make_double(
                                queue_ms < wall_ms ? wall_ms - queue_ms : 0));
      line.set("backend", JsonValue::make_string(
                              portfolio::backend_kind_name(r->backend)));
      line.set("cached", JsonValue::make_int(r->cache_hit ? 1 : 0));
      const PicolaStats& ps = r->picola.stats;
      if (ps.classify_ms > 0 || ps.guide_ms > 0 || ps.solve_ms > 0) {
        line.set("classify_ms", JsonValue::make_double(ps.classify_ms));
        line.set("guide_ms", JsonValue::make_double(ps.guide_ms));
        line.set("solve_ms", JsonValue::make_double(ps.solve_ms));
      }
    }
    if (error) line.set("error", JsonValue::make_string(error));
    const std::string text = line.dump();
    if (opt_.slow_log)
      opt_.slow_log(text);
    else
      std::fprintf(stderr, "%s\n", text.c_str());
  }

  void expire_deadlines(uint64_t now) {
    while (!deadlines_.empty() && deadlines_.begin()->first <= now) {
      uint64_t serial = deadlines_.begin()->second;
      deadlines_.erase(deadlines_.begin());
      auto it = requests_.find(serial);
      if (it == requests_.end() || it->second.answered) continue;
      Request& req = it->second;
      req.answered = true;
      req.cancel->cancel();  // unwind the restarts at their next column
      deadline_misses_.add(1);
      auto cit = conns_.find(req.conn_fd);
      if (cit != conns_.end() && cit->second->serial == req.conn_serial) {
        JsonValue r = JsonValue::make_object();
        if (!req.id.is_null()) r.set("id", req.id);
        r.set("error", JsonValue::make_string("deadline_exceeded"));
        r.set("deadline_ms", JsonValue::make_int(req.deadline_ms));
        send_json(cit->second.get(), r.dump());
        responses_error_.add(1);
      }
    }
  }

  void sweep_idle(uint64_t now) {
    if (opt_.idle_timeout_ms <= 0) return;
    const uint64_t limit =
        static_cast<uint64_t>(opt_.idle_timeout_ms) * 1'000'000;
    for (auto& [fd, conn] : conns_) {
      if (conn->marked_close || conn->pending > 0 || conn->unsent() > 0)
        continue;
      // last_activity may postdate `now` (touched by an event this very
      // iteration) — an unsigned difference would wrap to "idle forever".
      if (now > conn->last_activity_ns &&
          now - conn->last_activity_ns >= limit) {
        idle_closed_.add(1);
        conn->marked_close = true;
      }
    }
  }

  void begin_drain() {
    if (draining_) return;
    draining_ = true;
    drain_started_ns_ = obs::now_ns();
    if (listen_fd_ >= 0) {
      poller_.remove(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    maybe_drain_snapshot();  // zero-inflight drain: snapshot right away
  }

  /// Once per drain, as soon as the last admitted request has been
  /// removed from the books (and before its reply is sent): flush the
  /// persist cache so a rolling restart warm-loads everything this node
  /// ever answered.  service_.drain_snapshot() waits out a racing
  /// periodic snapshot and bumps persist/drain_snapshots.
  void maybe_drain_snapshot() {
    if (!draining_ || drain_snapshotted_ || !requests_.empty()) return;
    drain_snapshotted_ = true;
    std::string error;
    if (!service_.drain_snapshot(&error) && !error.empty())
      std::fprintf(stderr, "picola serve: drain snapshot failed: %s\n",
                   error.c_str());
  }

  void check_drain_done(uint64_t now) {
    if (!draining_ || !requests_.empty()) return;
    bool flushed = true;
    for (auto& [fd, conn] : conns_)
      if (conn->unsent() > 0) flushed = false;
    if (!flushed && (now <= drain_started_ns_ ||
                     now - drain_started_ns_ < kDrainFlushGraceNs))
      return;
    for (auto& [fd, conn] : conns_) conn->marked_close = true;
    process_deferred_closes();
    // The admin plane served 503s during the drain; it goes down with the
    // loop.
    for (auto& [fd, ac] : admin_conns_) ac->marked_close = true;
    process_admin_closes();
    if (admin_listen_fd_ >= 0) {
      poller_.remove(admin_listen_fd_);
      ::close(admin_listen_fd_);
      admin_listen_fd_ = -1;
    }
    finished_ = true;
  }

  // ---- write path ------------------------------------------------------

  void send_error(Conn* conn, const JsonValue& id, const std::string& code,
                  const std::string& detail) {
    JsonValue r = JsonValue::make_object();
    if (!id.is_null()) r.set("id", id);
    r.set("error", JsonValue::make_string(code));
    if (!detail.empty()) r.set("detail", JsonValue::make_string(detail));
    send_json(conn, r.dump());
    responses_error_.add(1);
  }

  static JsonValue ok_response(const JsonValue& id) {
    JsonValue r = JsonValue::make_object();
    if (!id.is_null()) r.set("id", id);
    r.set("ok", JsonValue::make_bool(true));
    return r;
  }

  void send_json(Conn* conn, const std::string& payload) {
    if (conn->marked_close) return;
    conn->wbuf += encode_frame(payload);
    frames_out_.add(1);
    try_flush(conn);
    if (conn->marked_close) return;
    const size_t unsent = conn->unsent();
    if (unsent > opt_.max_write_buffer_bytes) {
      // The client is slower than its responses; cut it loose.
      slow_closed_.add(1);
      conn->marked_close = true;
      return;
    }
    if (!conn->paused_read && unsent > opt_.write_backpressure_bytes) {
      conn->paused_read = true;
      update_interest(conn, /*read=*/false);
    }
  }

  void try_flush(Conn* conn) {
    while (conn->woff < conn->wbuf.size()) {
      // MSG_NOSIGNAL: a peer that closed mid-frame is EPIPE (handled
      // below), never a process-killing SIGPIPE.
      ssize_t k = sys::send_nosig(conn->fd, conn->wbuf.data() + conn->woff,
                                  conn->wbuf.size() - conn->woff);
      if (k > 0) {
        conn->woff += static_cast<size_t>(k);
        conn->last_activity_ns = obs::now_ns();
        continue;
      }
      if (k < 0 && errno == EINTR) continue;
      if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!conn->want_write) {
          conn->want_write = true;
          update_interest(conn, /*read=*/!conn->paused_read &&
                                    !conn->close_after_flush);
        }
        return;
      }
      conn->marked_close = true;  // broken pipe etc.
      return;
    }
    conn->wbuf.clear();
    conn->woff = 0;
    if (conn->close_after_flush) {
      conn->marked_close = true;
      return;
    }
    bool interest_changed = conn->want_write;
    conn->want_write = false;
    if (conn->paused_read) {
      conn->paused_read = false;
      interest_changed = true;
    }
    if (interest_changed) update_interest(conn, /*read=*/true);
  }

  void on_writable(Conn* conn) { try_flush(conn); }

  void update_interest(Conn* conn, bool read) {
    poller_.set(conn->fd, read, conn->want_write);
  }

  void process_deferred_closes() {
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (!it->second->marked_close) {
        ++it;
        continue;
      }
      Conn* conn = it->second.get();
      // Abandon this connection's outstanding work: nobody is left to
      // read the answers.
      for (auto& [serial, req] : requests_) {
        if (req.conn_fd == conn->fd && req.conn_serial == conn->serial)
          req.cancel->cancel();
      }
      poller_.remove(conn->fd);
      sys::close(conn->fd);  // injected EINTR tolerated: fd is gone
      closed_.add(1);
      it = conns_.erase(it);
    }
    active_.set(static_cast<int64_t>(conns_.size()));
  }

  // ---- reporting -------------------------------------------------------

  std::string net_stats_json() const {
    NetStats s = snapshot();
    std::string j = "{";
    auto add = [&j](const char* k, long v) {
      j += "\"" + std::string(k) + "\":" + std::to_string(v) + ",";
    };
    add("connections_accepted", s.connections_accepted);
    add("connections_closed", s.connections_closed);
    add("active_connections", s.active_connections);
    add("frames_in", s.frames_in);
    add("frames_out", s.frames_out);
    add("requests_admitted", s.requests_admitted);
    add("responses_ok", s.responses_ok);
    add("responses_error", s.responses_error);
    add("sheds", s.sheds);
    add("deadline_misses", s.deadline_misses);
    add("cancelled_jobs", s.cancelled_jobs);
    add("frame_errors", s.frame_errors);
    add("idle_closed", s.idle_closed);
    j += "\"inflight\":" + std::to_string(s.inflight) + "}";
    return j;
  }

  NetStats snapshot() const {
    NetStats s;
    s.connections_accepted = static_cast<long>(accepted_.value());
    s.connections_closed = static_cast<long>(closed_.value());
    s.frames_in = static_cast<long>(frames_in_.value());
    s.frames_out = static_cast<long>(frames_out_.value());
    s.requests_admitted = static_cast<long>(admitted_.value());
    s.responses_ok = static_cast<long>(responses_ok_.value());
    s.responses_error = static_cast<long>(responses_error_.value());
    s.sheds = static_cast<long>(sheds_.value());
    s.deadline_misses = static_cast<long>(deadline_misses_.value());
    s.cancelled_jobs = static_cast<long>(cancelled_jobs_.value());
    s.frame_errors = static_cast<long>(frame_errors_.value());
    s.idle_closed = static_cast<long>(idle_closed_.value());
    s.active_connections = static_cast<long>(active_.value());
    s.inflight = static_cast<long>(inflight_.value());
    return s;
  }

  // ---- members ---------------------------------------------------------

  ServerOptions opt_;
  obs::MetricsRegistry registry_;  ///< net/* (service has its own)
  EncodingService service_;
  Poller poller_;

  obs::Counter& accepted_;
  obs::Counter& closed_;
  obs::Counter& idle_closed_;
  obs::Counter& slow_closed_;
  obs::Counter& frames_in_;
  obs::Counter& frames_out_;
  obs::Counter& admitted_;
  obs::Counter& responses_ok_;
  obs::Counter& responses_error_;
  obs::Counter& sheds_;
  obs::Counter& deadline_misses_;
  obs::Counter& cancelled_jobs_;
  obs::Counter& frame_errors_;
  obs::Counter& wakeups_;        ///< wake() calls folded in at drain time
  obs::Counter& wakeup_reads_;   ///< wake-pipe drains (coalescing denominator)
  obs::Counter& completions_;    ///< job completions delivered to the loop
  obs::Counter& admin_requests_;
  obs::Counter& slow_requests_;
  obs::Counter& peek_attempts_;    ///< cluster/* — peer cache forwarding
  obs::Counter& forwarded_hits_;
  obs::Counter& peek_misses_;
  obs::Counter& peek_failures_;
  obs::Counter& peeks_served_;
  obs::Gauge& active_;
  obs::Gauge& inflight_;
  obs::Gauge& uptime_seconds_;
  obs::Histogram& request_ns_;
  uint64_t start_ns_ = 0;

  int listen_fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  uint16_t bound_port_ = 0;
  int admin_listen_fd_ = -1;
  uint16_t admin_port_ = 0;

  // Loop-thread state.
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  std::unordered_map<int, std::unique_ptr<AdminConn>> admin_conns_;
  std::unordered_map<uint64_t, Request> requests_;
  std::multimap<uint64_t, uint64_t> deadlines_;  ///< deadline_ns -> serial
  uint64_t conn_serial_ = 0;
  uint64_t request_serial_ = 0;
  bool draining_ = false;
  bool finished_ = false;
  bool drain_snapshotted_ = false;
  uint64_t drain_started_ns_ = 0;

  // Peer cache-hit forwarding (null/empty when not clustered).
  std::unique_ptr<HashRing> peer_ring_;
  int self_index_ = -1;
  std::vector<std::unique_ptr<Client>> peer_clients_;  ///< probe thread only
  std::mutex probe_mu_;
  std::condition_variable probe_cv_;
  std::deque<ProbeTask> probe_q_;
  bool probe_stop_ = false;
  std::thread probe_thread_;

  // Cross-thread state.
  std::atomic<bool> shutdown_requested_{false};
  /// wake() runs in signal context, so it may not touch the striped
  /// Counter (thread_local stripe selection is not async-signal-safe);
  /// it bumps this raw atomic and the loop folds it into net/wakeups.
  std::atomic<uint64_t> wake_calls_{0};
  std::mutex done_mu_;
  std::vector<std::pair<uint64_t, std::shared_future<JobResult>>> done_;
  std::thread loop_thread_;
};

Server::Server(const ServerOptions& options)
    : impl_(std::make_unique<Impl>(options)) {}

Server::~Server() {
  stop();
}

uint16_t Server::port() const { return impl_->bound_port_; }

uint16_t Server::admin_port() const { return impl_->admin_port_; }

void Server::run() { impl_->run(); }

void Server::start() {
  impl_->loop_thread_ = std::thread([this]() { impl_->run(); });
}

void Server::request_shutdown() noexcept { impl_->request_shutdown(); }

void Server::stop() {
  impl_->request_shutdown();
  if (impl_->loop_thread_.joinable()) impl_->loop_thread_.join();
}

NetStats Server::stats() const { return impl_->snapshot(); }

const obs::MetricsRegistry& Server::metrics() const {
  return impl_->registry_;
}

EncodingService& Server::service() { return impl_->service_; }

}  // namespace picola::net
