#include "net/cluster.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <functional>
#include <netdb.h>
#include <thread>

#include "net/sys.h"

namespace picola::net {

namespace {

uint64_t splitmix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void sleep_ms(int ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_error(std::string* error, const std::string& msg) {
  if (error) *error = msg;
}

}  // namespace

std::optional<ClusterMember> parse_member(const std::string& spec,
                                          std::string* error) {
  ClusterMember m;
  size_t c1 = spec.find(':');
  if (c1 == std::string::npos || c1 == 0) {
    set_error(error, "bad member '" + spec + "' (want host:port[:admin])");
    return std::nullopt;
  }
  m.host = spec.substr(0, c1);
  size_t c2 = spec.find(':', c1 + 1);
  std::string port_s = spec.substr(
      c1 + 1, c2 == std::string::npos ? std::string::npos : c2 - c1 - 1);
  auto parse_port = [&](const std::string& s, int* out) {
    if (s.empty()) return false;
    char* end = nullptr;
    long v = std::strtol(s.c_str(), &end, 10);
    if (*end != '\0' || v < 0 || v > 65535) return false;
    *out = static_cast<int>(v);
    return true;
  };
  int port = 0;
  if (!parse_port(port_s, &port) || port == 0) {
    set_error(error, "bad port in member '" + spec + "'");
    return std::nullopt;
  }
  m.port = static_cast<uint16_t>(port);
  if (c2 != std::string::npos) {
    int admin = 0;
    if (!parse_port(spec.substr(c2 + 1), &admin)) {
      set_error(error, "bad admin port in member '" + spec + "'");
      return std::nullopt;
    }
    m.admin_port = admin;
  }
  return m;
}

std::vector<ClusterMember> parse_member_list(const std::string& specs,
                                             std::string* error) {
  std::vector<ClusterMember> members;
  size_t start = 0;
  while (start <= specs.size()) {
    size_t comma = specs.find(',', start);
    std::string one = specs.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!one.empty()) {
      auto m = parse_member(one, error);
      if (!m) return {};
      members.push_back(std::move(*m));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (members.empty()) set_error(error, "empty member list");
  return members;
}

/// One serialised connection per backend: callers (and hedge legs)
/// routing to the same backend queue on the lane mutex; different
/// backends never contend.
struct ClusterClient::Lane {
  explicit Lane(const ClientOptions& o) : client(o) {}
  std::mutex mu;
  Client client;
};

struct ClusterClient::Health {
  std::atomic<bool> draining{false};
  std::atomic<int64_t> next_probe_at{0};  ///< steady ms; CAS-claimed
};

struct ClusterClient::LegResult {
  bool finished = false;
  Outcome outcome;
};

struct ClusterClient::HedgedCall {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;  ///< a returnable reply landed
  int winner = -1;    ///< leg index that produced it
  int finished = 0;
  LegResult legs[2];
};

ClusterClient::ClusterClient(ClusterOptions opt) : opt_(std::move(opt)) {
  std::vector<std::string> names;
  names.reserve(opt_.members.size());
  for (const ClusterMember& m : opt_.members) names.push_back(m.name());
  ring_ = HashRing(std::move(names), opt_.vnodes);
  rng_ = splitmix64(opt_.seed ^ 0x636C7573746572ULL);  // "cluster"
  lanes_.reserve(opt_.members.size());
  breakers_.reserve(opt_.members.size());
  health_.reserve(opt_.members.size());
  for (size_t i = 0; i < opt_.members.size(); ++i) {
    ClientOptions co = opt_.client;
    co.max_retries = 0;  // cross-backend retry is the router's job
    co.jitter_seed = splitmix64(opt_.seed + i + 1);
    lanes_.push_back(std::make_unique<Lane>(co));
    breakers_.push_back(std::make_unique<CircuitBreaker>(opt_.breaker));
    health_.push_back(std::make_unique<Health>());
  }
  if (opt_.metrics) {
    m_reroutes_ = &opt_.metrics->counter("cluster/reroutes");
    m_hedges_ = &opt_.metrics->counter("cluster/hedges");
    m_hedge_wins_ = &opt_.metrics->counter("cluster/hedge_wins");
    m_duplicates_ = &opt_.metrics->counter("cluster/duplicates_suppressed");
    m_drains_ = &opt_.metrics->counter("cluster/drains_observed");
    m_rejoins_ = &opt_.metrics->counter("cluster/rejoins");
    m_retry_floor_ = &opt_.metrics->counter("cluster/retry_floor_waits");
    m_breaker_state_.reserve(opt_.members.size());
    for (size_t i = 0; i < opt_.members.size(); ++i)
      m_breaker_state_.push_back(&opt_.metrics->gauge(
          "cluster/backend" + std::to_string(i) + "_breaker_state"));
  }
}

ClusterClient::~ClusterClient() {
  std::unique_lock<std::mutex> lock(outstanding_mu_);
  outstanding_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

void ClusterClient::bump(uint64_t Stats::*field, uint64_t n) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.*field += n;
}

ClusterClient::Stats ClusterClient::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

CircuitBreaker::State ClusterClient::breaker_state(size_t backend) const {
  return breakers_[backend]->state();
}

bool ClusterClient::draining(size_t backend) const {
  return health_[backend]->draining.load(std::memory_order_relaxed);
}

void ClusterClient::refresh_gauges() const {
  for (size_t i = 0; i < m_breaker_state_.size(); ++i) {
    int64_t v = 0;
    switch (breakers_[i]->state()) {
      case CircuitBreaker::State::kClosed: v = 0; break;
      case CircuitBreaker::State::kOpen: v = 1; break;
      case CircuitBreaker::State::kHalfOpen: v = 2; break;
    }
    m_breaker_state_[i]->set(v);
  }
}

int ClusterClient::backoff_ms(int round) {
  int64_t cap = opt_.backoff_base_ms;
  for (int i = 0; i < round && cap < opt_.backoff_max_ms; ++i) cap *= 2;
  cap = std::clamp<int64_t>(cap, 0, opt_.backoff_max_ms);
  if (cap <= 0) return 0;
  std::lock_guard<std::mutex> lock(rng_mu_);
  rng_ = splitmix64(rng_);
  return static_cast<int>(rng_ % static_cast<uint64_t>(cap + 1));
}

int ClusterClient::probe_healthz(const ClusterMember& m) {
  // Minimal blocking-with-timeout HTTP GET against the admin plane.
  // Goes through the net/sys shim so fault plans can partition the
  // health path like any other socket.
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(m.host.c_str(), std::to_string(m.admin_port).c_str(),
                    &hints, &res) != 0)
    return -1;
  int fd = -1;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(opt_.health_timeout_ms);
  auto wait_fd = [&](short events) {
    for (;;) {
      pollfd p{};
      p.fd = fd;
      p.events = events;
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return false;
      int n = sys::poll(&p, 1, static_cast<int>(left.count()));
      if (n > 0) return true;
      if (n == 0) return false;
      if (errno != EINTR) return false;
    }
  };
  for (addrinfo* ai = res; ai; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) continue;
    int rc = sys::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && (errno == EINPROGRESS || errno == EINTR)) {
      if (wait_fd(POLLOUT)) {
        int so_error = 0;
        socklen_t len = sizeof so_error;
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) == 0 &&
            so_error == 0)
          rc = 0;
      }
    }
    if (rc == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) return -1;
  const std::string req = "GET /healthz HTTP/1.0\r\nHost: " + m.host +
                          "\r\nConnection: close\r\n\r\n";
  size_t off = 0;
  while (off < req.size()) {
    ssize_t k = sys::send_nosig(fd, req.data() + off, req.size() - off);
    if (k > 0) {
      off += static_cast<size_t>(k);
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) && wait_fd(POLLOUT))
      continue;
    ::close(fd);
    return -1;
  }
  std::string resp;
  char buf[1024];
  while (resp.find("\r\n") == std::string::npos && resp.size() < 4096) {
    ssize_t k = sys::read(fd, buf, sizeof buf);
    if (k > 0) {
      resp.append(buf, static_cast<size_t>(k));
      continue;
    }
    if (k == 0) break;
    if (errno == EINTR) continue;
    if ((errno == EAGAIN || errno == EWOULDBLOCK) && wait_fd(POLLIN)) continue;
    break;
  }
  ::close(fd);
  // "HTTP/1.x NNN ..."
  size_t sp = resp.find(' ');
  if (sp == std::string::npos || resp.size() < sp + 4) return -1;
  int code = 0;
  for (int i = 1; i <= 3; ++i) {
    char c = resp[sp + static_cast<size_t>(i)];
    if (c < '0' || c > '9') return -1;
    code = code * 10 + (c - '0');
  }
  return code;
}

bool ClusterClient::skip_draining(int backend) {
  Health& h = *health_[static_cast<size_t>(backend)];
  if (!h.draining.load(std::memory_order_acquire)) return false;
  int64_t now = now_ms();
  int64_t due = h.next_probe_at.load(std::memory_order_acquire);
  if (now < due) return true;
  // Claim this probe window; losers keep skipping until the next one.
  if (!h.next_probe_at.compare_exchange_strong(due,
                                               now + opt_.health_recheck_ms))
    return true;
  const ClusterMember& m = opt_.members[static_cast<size_t>(backend)];
  if (m.admin_port >= 0) {
    int code = probe_healthz(m);
    if (code == 200) {
      h.draining.store(false, std::memory_order_release);
      bump(&Stats::rejoins);
      if (m_rejoins_) m_rejoins_->add(1);
      return false;  // back in rotation
    }
    if (code == 503) {
      bump(&Stats::drains_observed);
      if (m_drains_) m_drains_->add(1);
    }
    return true;  // still draining (503) or dead (-1): keep skipping
  }
  // No admin plane to ask: optimistically re-admit and let the breaker
  // or the next shutting_down reply re-confirm.
  h.draining.store(false, std::memory_order_release);
  bump(&Stats::rejoins);
  if (m_rejoins_) m_rejoins_->add(1);
  return false;
}

void ClusterClient::run_leg(int backend, bool probe, JsonValue request,
                            std::string want_id,
                            const std::shared_ptr<HedgedCall>& call,
                            int leg_index) {
  const ClusterMember& member = opt_.members[static_cast<size_t>(backend)];
  Lane& lane = *lanes_[static_cast<size_t>(backend)];
  CircuitBreaker& breaker = *breakers_[static_cast<size_t>(backend)];
  Outcome oc;
  oc.backend = backend;
  {
    std::lock_guard<std::mutex> lane_lock(lane.mu);
    Client& c = lane.client;
    std::string err;
    bool connected = c.connected();
    if (!connected) connected = c.connect(member.host, member.port, &err);
    if (!connected) {
      breaker.on_failure(probe);
      oc.kind = OutcomeKind::kTransport;
      oc.error = err;
    } else {
      auto reply = c.call(request, &err);
      if (!reply) {
        breaker.on_failure(probe);
        oc.kind = OutcomeKind::kTransport;
        oc.error = member.name() + ": " + err;
      } else {
        // Whatever the reply says, the backend is alive: the breaker
        // tracks transport health only.
        breaker.on_success(probe);
        const JsonValue* e = reply->find("error");
        const std::string code =
            e && e->is_string() ? e->as_string() : std::string();
        if (code == "overloaded") {
          oc.kind = OutcomeKind::kOverloaded;
          const JsonValue* ra = reply->find("retry_after_ms");
          if (ra && ra->is_number())
            oc.retry_after_ms = static_cast<int>(ra->as_int());
          oc.error = member.name() + ": overloaded";
        } else if (code == "shutting_down") {
          oc.kind = OutcomeKind::kDraining;
          oc.error = member.name() + ": shutting down";
        } else if (!want_id.empty() &&
                   (!reply->find("id") ||
                    reply->find("id")->dump() != want_id)) {
          // A reply that is not for our request id must never be handed
          // to the caller — that would be a second reply for some other
          // id.  Close the lane (the stream is not trustworthy) and
          // treat it as a transport failure.
          bump(&Stats::id_mismatches);
          c.close();
          oc.kind = OutcomeKind::kTransport;
          oc.error = member.name() + ": reply id mismatch";
        } else {
          oc.kind = OutcomeKind::kReply;
          oc.reply = std::move(reply);
        }
      }
    }
  }
  const bool returnable = oc.kind == OutcomeKind::kReply;
  std::lock_guard<std::mutex> lock(call->mu);
  LegResult& leg = call->legs[leg_index];
  leg.outcome = std::move(oc);
  leg.finished = true;
  call->finished++;
  if (returnable) {
    if (!call->done) {
      call->done = true;
      call->winner = leg_index;
    } else {
      // Exactly-one-reply: the race was already won; this duplicate is
      // accounted and dropped, never surfaced.
      bump(&Stats::duplicates_suppressed);
      if (m_duplicates_) m_duplicates_->add(1);
    }
  }
  call->cv.notify_all();
}

ClusterClient::Outcome ClusterClient::dispatch(
    int backend, bool probe, const JsonValue& request,
    const std::string& want_id, const std::vector<int>& prefs, size_t pos,
    int* attempts_spent) {
  auto call = std::make_shared<HedgedCall>();
  if (opt_.hedge_ms <= 0 || prefs.size() < 2) {
    run_leg(backend, probe, request, want_id, call, 0);
    std::lock_guard<std::mutex> lock(call->mu);
    return std::move(call->legs[0].outcome);
  }

  auto spawn = [this](std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lock(outstanding_mu_);
      outstanding_++;
    }
    std::thread([this, fn = std::move(fn)] {
      fn();
      std::lock_guard<std::mutex> lock(outstanding_mu_);
      outstanding_--;
      outstanding_cv_.notify_all();
    }).detach();
  };

  spawn([this, backend, probe, request, want_id, call] {
    run_leg(backend, probe, request, want_id, call, 0);
  });

  bool hedged = false;
  {
    std::unique_lock<std::mutex> lock(call->mu);
    call->cv.wait_for(lock, std::chrono::milliseconds(opt_.hedge_ms),
                      [&] { return call->done || call->finished >= 1; });
    if (!call->done && call->finished == 0) {
      // The primary is slow, not failed: hedge onto the next eligible
      // preference.  Probe/breaker accounting for the hedge backend is
      // its leg's responsibility, exactly like the primary's.
      lock.unlock();
      int hedge_backend = -1;
      bool hedge_probe = false;
      for (size_t q = pos + 1; q < prefs.size(); ++q) {
        int hb = prefs[q];
        if (skip_draining(hb)) {
          bump(&Stats::drain_skips);
          continue;
        }
        CircuitBreaker::Decision gate =
            breakers_[static_cast<size_t>(hb)]->acquire();
        if (!gate.allow) {
          bump(&Stats::breaker_skips);
          continue;
        }
        hedge_backend = hb;
        hedge_probe = gate.probe;
        break;
      }
      if (hedge_backend >= 0) {
        hedged = true;
        (*attempts_spent)++;
        bump(&Stats::attempts);
        bump(&Stats::hedges);
        if (m_hedges_) m_hedges_->add(1);
        bump(&Stats::reroutes);  // a hedge leg is never the owner
        if (m_reroutes_) m_reroutes_->add(1);
        spawn([this, hedge_backend, hedge_probe, request, want_id, call] {
          run_leg(hedge_backend, hedge_probe, request, want_id, call, 1);
        });
      }
      lock.lock();
    }
    const int legs = hedged ? 2 : 1;
    call->cv.wait(lock, [&] { return call->done || call->finished >= legs; });
    Outcome oc;
    if (call->done) {
      oc = std::move(call->legs[call->winner].outcome);
      oc.hedged = hedged;
      if (call->winner == 1) {
        oc.hedge_won = true;
        bump(&Stats::hedge_wins);
        if (m_hedge_wins_) m_hedge_wins_->add(1);
      }
      return oc;
    }
    // No returnable reply from any leg: prefer the outcome with the
    // most signal (overloaded carries a retry floor, draining marks the
    // backend) over a bare transport error.
    int best = 0;
    auto rank = [](OutcomeKind k) {
      switch (k) {
        case OutcomeKind::kOverloaded: return 2;
        case OutcomeKind::kDraining: return 1;
        default: return 0;
      }
    };
    for (int i = 1; i < legs; ++i) {
      if (!call->legs[i].finished) continue;
      if (rank(call->legs[i].outcome.kind) >
          rank(call->legs[best].outcome.kind))
        best = i;
    }
    oc = std::move(call->legs[best].outcome);
    oc.hedged = hedged;
    return oc;
  }
}

std::optional<JsonValue> ClusterClient::call(const JsonValue& request,
                                             uint64_t key, std::string* error,
                                             CallInfo* info) {
  bump(&Stats::requests);
  if (ring_.empty()) {
    set_error(error, "cluster has no members");
    return std::nullopt;
  }

  JsonValue req = request;
  std::string want_id;
  if (!req.find("cmd")) {  // commands (ping/stats/...) carry no id echo
    if (const JsonValue* id = req.find("id")) {
      want_id = id->dump();
    } else {
      uint64_t stamped = next_id_.fetch_add(1, std::memory_order_relaxed);
      req.set("id", JsonValue::make_int(static_cast<int64_t>(stamped)));
      want_id = req.find("id")->dump();
    }
  }

  const std::vector<int> prefs = ring_.preference(key);
  int budget = opt_.max_attempts > 0
                   ? opt_.max_attempts
                   : static_cast<int>(2 * prefs.size() + 2);
  int round = 0;
  int pending_floor_ms = 0;
  std::string last_error = "no eligible backend";
  CallInfo inf;

  while (budget > 0) {
    bool attempted = false;
    for (size_t pos = 0; pos < prefs.size() && budget > 0; ++pos) {
      int b = prefs[pos];
      if (skip_draining(b)) {
        bump(&Stats::drain_skips);
        continue;
      }
      // Honor the last overloaded reply's retry_after_ms BEFORE touching
      // the next backend: shedding on A must not hammer B (see
      // docs/CLUSTER.md and the regression test in tests/net).
      if (pending_floor_ms > 0) {
        sleep_ms(std::max(pending_floor_ms, backoff_ms(round)));
        bump(&Stats::retry_floor_waits);
        if (m_retry_floor_) m_retry_floor_->add(1);
        pending_floor_ms = 0;
      }
      CircuitBreaker::Decision gate =
          breakers_[static_cast<size_t>(b)]->acquire();
      if (!gate.allow) {
        bump(&Stats::breaker_skips);
        last_error =
            opt_.members[static_cast<size_t>(b)].name() + ": breaker open";
        continue;
      }
      attempted = true;
      budget--;
      inf.attempts++;
      bump(&Stats::attempts);
      if (pos != 0) {
        inf.rerouted = true;
        bump(&Stats::reroutes);
        if (m_reroutes_) m_reroutes_->add(1);
      }
      Outcome oc = dispatch(b, gate.probe, req, want_id, prefs, pos, &budget);
      if (oc.hedged) {
        inf.hedged = true;
        inf.attempts++;
      }
      switch (oc.kind) {
        case OutcomeKind::kReply: {
          inf.backend = oc.backend;
          if (oc.backend != prefs[0]) inf.rerouted = true;
          if (info) *info = inf;
          return std::move(oc.reply);
        }
        case OutcomeKind::kOverloaded: {
          bump(&Stats::overloaded);
          pending_floor_ms =
              std::max(pending_floor_ms, std::max(1, oc.retry_after_ms));
          last_error = oc.error;
          break;  // next preference
        }
        case OutcomeKind::kDraining: {
          Health& h = *health_[static_cast<size_t>(oc.backend)];
          h.draining.store(true, std::memory_order_release);
          h.next_probe_at.store(now_ms() + opt_.health_recheck_ms,
                                std::memory_order_release);
          bump(&Stats::drains_observed);
          if (m_drains_) m_drains_->add(1);
          last_error = oc.error;
          break;
        }
        case OutcomeKind::kTransport: {
          last_error = oc.error;
          break;
        }
      }
    }
    if (budget <= 0) break;
    if (!attempted) {
      // Everything skipped (breakers open / draining): burn budget so
      // the loop terminates, and give the cluster a beat to recover.
      budget--;
      sleep_ms(std::max(backoff_ms(round), 5));
    } else {
      sleep_ms(backoff_ms(round));
    }
    round++;
  }
  if (info) *info = inf;
  set_error(error, last_error);
  return std::nullopt;
}

}  // namespace picola::net
