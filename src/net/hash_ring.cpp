#include "net/hash_ring.h"

#include <algorithm>

namespace picola::net {

namespace {

/// FNV-1a over the member name — the per-member base the vnode mix
/// starts from.
uint64_t fnv1a(std::string_view s) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

uint64_t HashRing::mix(uint64_t x) {
  // splitmix64 finisher: bijective, avalanches every input bit.
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t HashRing::point_hash(std::string_view member, uint32_t vnode) {
  return mix(fnv1a(member) ^ (0x9E3779B97F4A7C15ULL * (vnode + 1)));
}

HashRing::HashRing(std::vector<std::string> members, int vnodes)
    : members_(std::move(members)) {
  vnodes = std::max(1, vnodes);
  points_.reserve(members_.size() * static_cast<size_t>(vnodes));
  for (size_t m = 0; m < members_.size(); ++m) {
    for (int v = 0; v < vnodes; ++v) {
      points_.push_back(Point{
          point_hash(members_[m], static_cast<uint32_t>(v)),
          static_cast<int>(m)});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              // Member index tiebreak keeps placement deterministic even
              // on the (astronomically unlikely) vnode hash collision.
              return a.hash != b.hash ? a.hash < b.hash : a.member < b.member;
            });
}

int HashRing::owner(uint64_t key) const {
  if (points_.empty()) return -1;
  uint64_t h = mix(key);
  auto it = std::lower_bound(points_.begin(), points_.end(), h,
                             [](const Point& p, uint64_t v) {
                               return p.hash < v;
                             });
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->member;
}

std::vector<int> HashRing::preference(uint64_t key) const {
  std::vector<int> order;
  if (points_.empty()) return order;
  order.reserve(members_.size());
  std::vector<char> seen(members_.size(), 0);
  uint64_t h = mix(key);
  auto it = std::lower_bound(points_.begin(), points_.end(), h,
                             [](const Point& p, uint64_t v) {
                               return p.hash < v;
                             });
  size_t start = it == points_.end()
                     ? 0
                     : static_cast<size_t>(it - points_.begin());
  for (size_t i = 0; i < points_.size() && order.size() < members_.size();
       ++i) {
    const Point& p = points_[(start + i) % points_.size()];
    if (!seen[static_cast<size_t>(p.member)]) {
      seen[static_cast<size_t>(p.member)] = 1;
      order.push_back(p.member);
    }
  }
  return order;
}

}  // namespace picola::net
