#include "net/poller.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "net/sys.h"

#if defined(__linux__)
#define PICOLA_NET_HAVE_EPOLL 1
#include <sys/epoll.h>
#else
#define PICOLA_NET_HAVE_EPOLL 0
#endif

namespace picola::net {

PollBackend default_poll_backend() {
#if PICOLA_NET_HAVE_EPOLL
  return PollBackend::kEpoll;
#else
  return PollBackend::kPoll;
#endif
}

Poller::Poller(PollBackend backend) : backend_(backend) {
#if PICOLA_NET_HAVE_EPOLL
  if (backend_ == PollBackend::kEpoll) {
    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0)
      throw std::runtime_error("epoll_create1: " +
                               std::string(strerror(errno)));
    return;
  }
#else
  backend_ = PollBackend::kPoll;  // epoll requested but unavailable
#endif
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

#if PICOLA_NET_HAVE_EPOLL
namespace {
uint32_t epoll_mask(bool want_read, bool want_write) {
  uint32_t ev = 0;
  if (want_read) ev |= EPOLLIN;
  if (want_write) ev |= EPOLLOUT;
  return ev;
}
}  // namespace
#endif

void Poller::add(int fd, bool want_read, bool want_write) {
#if PICOLA_NET_HAVE_EPOLL
  if (backend_ == PollBackend::kEpoll) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0)
      throw std::runtime_error("epoll_ctl(ADD): " +
                               std::string(strerror(errno)));
    return;
  }
#endif
  interest_[fd] = {want_read, want_write};
}

void Poller::set(int fd, bool want_read, bool want_write) {
#if PICOLA_NET_HAVE_EPOLL
  if (backend_ == PollBackend::kEpoll) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0)
      throw std::runtime_error("epoll_ctl(MOD): " +
                               std::string(strerror(errno)));
    return;
  }
#endif
  auto it = interest_.find(fd);
  if (it == interest_.end())
    throw std::runtime_error("Poller::set on unregistered fd");
  it->second = {want_read, want_write};
}

void Poller::remove(int fd) {
#if PICOLA_NET_HAVE_EPOLL
  if (backend_ == PollBackend::kEpoll) {
    // Ignore failures: the fd may already be gone (closed elsewhere).
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    return;
  }
#endif
  interest_.erase(fd);
}

int Poller::wait(std::vector<PollEvent>* out, int timeout_ms) {
  out->clear();
#if PICOLA_NET_HAVE_EPOLL
  if (backend_ == PollBackend::kEpoll) {
    epoll_event events[64];
    int n = sys::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return 0;
      throw std::runtime_error("epoll_wait: " + std::string(strerror(errno)));
    }
    for (int i = 0; i < n; ++i) {
      PollEvent e;
      e.fd = events[i].data.fd;
      e.readable = (events[i].events & EPOLLIN) != 0;
      e.writable = (events[i].events & EPOLLOUT) != 0;
      e.hangup = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out->push_back(e);
    }
    return n;
  }
#endif
  std::vector<pollfd> fds;
  fds.reserve(interest_.size());
  for (const auto& [fd, want] : interest_) {
    pollfd p{};
    p.fd = fd;
    if (want.first) p.events |= POLLIN;
    if (want.second) p.events |= POLLOUT;
    fds.push_back(p);
  }
  int n = sys::poll(fds.data(), fds.size(), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw std::runtime_error("poll: " + std::string(strerror(errno)));
  }
  for (const pollfd& p : fds) {
    if (p.revents == 0) continue;
    PollEvent e;
    e.fd = p.fd;
    e.readable = (p.revents & POLLIN) != 0;
    e.writable = (p.revents & POLLOUT) != 0;
    e.hangup = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out->push_back(e);
  }
  return static_cast<int>(out->size());
}

}  // namespace picola::net
