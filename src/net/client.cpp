#include "net/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace picola::net {

namespace {
void set_error(std::string* error, const std::string& msg) {
  if (error) *error = msg;
}
}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::connect(const std::string& host, uint16_t port,
                     std::string* error) {
  close();
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &res);
  if (rc != 0) {
    set_error(error, "resolve " + host + ": " + gai_strerror(rc));
    return false;
  }
  for (addrinfo* ai = res; ai; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      fd_ = fd;
      break;
    }
    ::close(fd);
  }
  ::freeaddrinfo(res);
  if (fd_ < 0) {
    set_error(error, "connect " + host + ":" + std::to_string(port) + ": " +
                         strerror(errno));
    return false;
  }
  return true;
}

bool Client::send(const std::string& payload, std::string* error) {
  if (fd_ < 0) {
    set_error(error, "not connected");
    return false;
  }
  std::string frame = encode_frame(payload);
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t k = ::write(fd_, frame.data() + off, frame.size() - off);
    if (k > 0) {
      off += static_cast<size_t>(k);
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    set_error(error, "write: " + std::string(strerror(errno)));
    close();
    return false;
  }
  return true;
}

std::optional<std::string> Client::recv(std::string* error) {
  for (;;) {
    if (auto payload = reader_.next()) return payload;
    char buf[65536];
    ssize_t k = ::read(fd_, buf, sizeof buf);
    if (k > 0) {
      if (!reader_.feed(buf, static_cast<size_t>(k))) {
        set_error(error, "oversized response frame");
        close();
        return std::nullopt;
      }
      continue;
    }
    if (k == 0) {
      set_error(error, "connection closed by server");
      close();
      return std::nullopt;
    }
    if (errno == EINTR) continue;
    set_error(error, "read: " + std::string(strerror(errno)));
    close();
    return std::nullopt;
  }
}

std::optional<JsonValue> Client::call(const JsonValue& request,
                                      std::string* error) {
  if (!send(request.dump(), error)) return std::nullopt;
  auto payload = recv(error);
  if (!payload) return std::nullopt;
  std::string parse_error;
  auto parsed = JsonValue::parse(*payload, &parse_error);
  if (!parsed) {
    set_error(error, "bad response: " + parse_error);
    return std::nullopt;
  }
  return parsed;
}

}  // namespace picola::net
