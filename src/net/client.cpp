#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "net/sys.h"
#include "obs/tracer.h"

namespace picola::net {

namespace {

void set_error(std::string* error, const std::string& msg) {
  if (error) *error = msg;
}

/// 1-16 hex digits -> uint64 (wire trace_id field); false on junk.
bool parse_hex64(const std::string& s, uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  uint64_t v = 0;
  for (char ch : s) {
    int d;
    if (ch >= '0' && ch <= '9') d = ch - '0';
    else if (ch >= 'a' && ch <= 'f') d = ch - 'a' + 10;
    else if (ch >= 'A' && ch <= 'F') d = ch - 'A' + 10;
    else return false;
    v = (v << 4) | static_cast<uint64_t>(d);
  }
  *out = v;
  return true;
}

uint64_t splitmix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void sleep_ms(int ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

using Clock = std::chrono::steady_clock;

Clock::time_point deadline_from(int timeout_ms) {
  if (timeout_ms <= 0) return Clock::time_point::max();  // unbounded
  return Clock::now() + std::chrono::milliseconds(timeout_ms);
}

int remaining_ms(Clock::time_point deadline) {
  if (deadline == Clock::time_point::max()) return -1;  // poll() forever
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return std::max<int>(0, static_cast<int>(left.count()));
}

}  // namespace

Client::Client(ClientOptions opt)
    : opt_(opt),
      rng_(splitmix64(opt.jitter_seed ^ 0x636C69656E74ULL)),
      breaker_(BreakerOptions{opt.breaker_threshold, opt.breaker_open_ms}) {}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::wait_io(short events, Clock::time_point deadline,
                     std::string* error, const char* what) {
  for (;;) {
    pollfd p{};
    p.fd = fd_;
    p.events = events;
    int timeout = remaining_ms(deadline);
    if (deadline != Clock::time_point::max() && timeout == 0) {
      set_error(error, std::string("timeout: ") + what);
      return false;
    }
    int n = sys::poll(&p, 1, timeout);
    if (n > 0) return true;  // ready (or error-ready: the caller's
                             // read/write/getsockopt reports the cause)
    if (n == 0) {
      set_error(error, std::string("timeout: ") + what);
      return false;
    }
    if (errno == EINTR) continue;
    set_error(error, std::string("poll: ") + strerror(errno));
    return false;
  }
}

bool Client::connect(const std::string& host, uint16_t port,
                     std::string* error) {
  close();
  bool reconnecting = have_addr_;
  host_ = host;
  port_ = port;
  have_addr_ = true;

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0) {
    set_error(error, "resolve " + host + ": " + gai_strerror(rc));
    return false;
  }
  std::string last = "no addresses";
  auto deadline = deadline_from(opt_.connect_timeout_ms);
  for (addrinfo* ai = res; ai; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family,
                      ai->ai_socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                      ai->ai_protocol);
    if (fd < 0) {
      last = std::string("socket: ") + strerror(errno);
      continue;
    }
    int crc = sys::connect(fd, ai->ai_addr, ai->ai_addrlen);
    // EINTR on a non-blocking connect means the handshake continues in
    // the background, exactly like EINPROGRESS: wait for writability.
    if (crc != 0 && (errno == EINPROGRESS || errno == EINTR)) {
      fd_ = fd;  // wait_io polls fd_
      std::string wait_err;
      if (!wait_io(POLLOUT, deadline, &wait_err, "connect")) {
        fd_ = -1;
        ::close(fd);
        last = wait_err;
        continue;
      }
      fd_ = -1;
      int so_error = 0;
      socklen_t len = sizeof so_error;
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) == 0 &&
          so_error == 0) {
        // SO_ERROR == 0 also for a socket the handshake never started on
        // (an interrupted connect that did not reach the kernel): only a
        // peer address proves the connection is live.
        sockaddr_storage peer{};
        socklen_t plen = sizeof peer;
        if (::getpeername(fd, reinterpret_cast<sockaddr*>(&peer), &plen) ==
            0) {
          crc = 0;
        } else {
          errno = ENOTCONN;
          crc = -1;
        }
      } else {
        errno = so_error ? so_error : errno;
        crc = -1;
      }
    }
    if (crc == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      fd_ = fd;
      break;
    }
    last = std::string("connect: ") + strerror(errno);
    ::close(fd);
  }
  ::freeaddrinfo(res);
  if (fd_ < 0) {
    set_error(error,
              "connect " + host + ":" + std::to_string(port) + ": " + last);
    return false;
  }
  reader_ = FrameReader{kFrameAbsoluteMax};  // drop any stale partial frame
  if (reconnecting) stats_.reconnects++;
  return true;
}

bool Client::send(const std::string& payload, std::string* error) {
  if (fd_ < 0) {
    set_error(error, "not connected");
    return false;
  }
  std::string frame = encode_frame(payload);
  auto deadline = deadline_from(opt_.io_timeout_ms);
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t k = sys::send_nosig(fd_, frame.data() + off, frame.size() - off);
    if (k > 0) {
      off += static_cast<size_t>(k);
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_io(POLLOUT, deadline, error, "send")) {
        close();
        return false;
      }
      continue;
    }
    set_error(error, "write: " + std::string(strerror(errno)));
    close();
    return false;
  }
  return true;
}

std::optional<std::string> Client::recv(std::string* error) {
  if (fd_ < 0) {
    set_error(error, "not connected");
    return std::nullopt;
  }
  auto deadline = deadline_from(opt_.io_timeout_ms);
  for (;;) {
    if (auto payload = reader_.next()) return payload;
    char buf[65536];
    ssize_t k = sys::read(fd_, buf, sizeof buf);
    if (k > 0) {
      if (!reader_.feed(buf, static_cast<size_t>(k))) {
        set_error(error, "oversized response frame");
        close();
        return std::nullopt;
      }
      continue;
    }
    if (k == 0) {
      set_error(error, "connection closed by server");
      close();
      return std::nullopt;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!wait_io(POLLIN, deadline, error, "recv")) {
        close();
        return std::nullopt;
      }
      continue;
    }
    set_error(error, "read: " + std::string(strerror(errno)));
    close();
    return std::nullopt;
  }
}

std::optional<JsonValue> Client::call(const JsonValue& request,
                                      std::string* error) {
  if (!opt_.trace_requests) return call_impl(request, error);

  // Trace propagation (docs/SERVICE.md): attach a generated trace_id /
  // parent_span unless the caller already set them, and time the whole
  // round trip as a client/request span under that id — the same id the
  // server stamps onto its net/request and service/* spans, so one
  // Perfetto export shows the request end to end.
  JsonValue traced = request;
  uint64_t trace_id = 0;
  if (const JsonValue* t = traced.find("trace_id")) {
    if (t->is_string()) parse_hex64(t->as_string(), &trace_id);
  }
  if (trace_id == 0) {
    do {
      rng_ = splitmix64(rng_);
      trace_id = rng_;
    } while (trace_id == 0);
    traced.set("trace_id",
               JsonValue::make_string(obs::trace_id_hex(trace_id)));
  }
  if (!traced.find("parent_span")) {
    rng_ = splitmix64(rng_);
    traced.set("parent_span",
               JsonValue::make_string(obs::trace_id_hex(rng_ ? rng_ : 1)));
  }
  last_trace_id_ = trace_id;
  obs::ScopedTraceId scope(trace_id);
  const uint64_t start_ns = obs::now_ns();
  auto result = call_impl(traced, error);
  obs::record_span("client/request", start_ns, obs::now_ns() - start_ns);
  return result;
}

std::optional<JsonValue> Client::call_impl(const JsonValue& request,
                                           std::string* error) {
  if (!send(request.dump(), error)) return std::nullopt;
  auto payload = recv(error);
  if (!payload) return std::nullopt;
  std::string parse_error;
  auto parsed = JsonValue::parse(*payload, &parse_error);
  if (!parsed) {
    set_error(error, "bad response: " + parse_error);
    return std::nullopt;
  }
  return parsed;
}

int Client::backoff_delay_ms(int attempt) {
  int64_t cap = opt_.backoff_base_ms;
  for (int i = 0; i < attempt && cap < opt_.backoff_max_ms; ++i) cap *= 2;
  cap = std::clamp<int64_t>(cap, 0, opt_.backoff_max_ms);
  if (cap <= 0) return 0;
  rng_ = splitmix64(rng_);
  return static_cast<int>(rng_ % static_cast<uint64_t>(cap + 1));
}

std::optional<JsonValue> Client::call_with_retry(const JsonValue& request,
                                                 std::string* error) {
  std::string last_error = "no attempt made";
  for (int attempt = 0;; ++attempt) {
    stats_.attempts++;
    int server_hint_ms = 0;  // floor on the next delay (overload / breaker)

    CircuitBreaker::Decision gate = breaker_.acquire();
    if (!gate.allow) {
      // Fail fast: don't touch the socket until the open window passes,
      // then the next attempt is the half-open probe.
      last_error = "circuit breaker open: " + last_error;
      server_hint_ms = static_cast<int>(gate.retry_in_ms);
      stats_.breaker_waits++;
    } else {
      if (!connected() && have_addr_) connect(host_, port_, &last_error);
      if (!connected()) {
        if (!have_addr_) {
          // No probe can be in flight: an unconnected, address-less
          // client has never reported an outcome.
          set_error(error, "not connected (call connect() first)");
          return std::nullopt;
        }
        if (breaker_.on_failure(gate.probe)) stats_.breaker_opens++;
      } else {
        auto reply = call(request, &last_error);
        if (reply) {
          const JsonValue* err = reply->find("error");
          if (err && err->is_string() && err->as_string() == "overloaded") {
            // The server is alive and asked us to back off: honor its
            // hint, and don't count this against the circuit breaker.
            stats_.overloaded++;
            breaker_.on_success(gate.probe);
            const JsonValue* ra = reply->find("retry_after_ms");
            if (ra && ra->is_number())
              server_hint_ms = static_cast<int>(ra->as_int());
            last_error = "server overloaded";
          } else {
            breaker_.on_success(gate.probe);
            return reply;  // any other reply — including server errors —
                           // is the answer, not a transport failure
          }
        } else {
          if (breaker_.on_failure(gate.probe)) stats_.breaker_opens++;
        }
      }
    }

    if (attempt >= opt_.max_retries) {
      set_error(error, last_error);
      return std::nullopt;
    }
    stats_.retries++;
    sleep_ms(std::max(backoff_delay_ms(attempt), server_hint_ms));
  }
}

}  // namespace picola::net
