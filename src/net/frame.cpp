#include "net/frame.h"

#include <algorithm>
#include <stdexcept>

namespace picola::net {

std::string encode_frame(std::string_view payload) {
  if (payload.size() > kFrameAbsoluteMax)
    throw std::length_error("frame payload exceeds absolute maximum");
  const uint32_t n = static_cast<uint32_t>(payload.size());
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xFF));
  out.push_back(static_cast<char>((n >> 16) & 0xFF));
  out.push_back(static_cast<char>((n >> 8) & 0xFF));
  out.push_back(static_cast<char>(n & 0xFF));
  out.append(payload.data(), payload.size());
  return out;
}

FrameReader::FrameReader(size_t max_frame_bytes)
    : max_frame_bytes_(std::min(max_frame_bytes, kFrameAbsoluteMax)) {}

bool FrameReader::feed(const char* data, size_t n) {
  if (error_) return false;
  size_t off = 0;
  while (off < n) {
    if (buffer_.size() < kFrameHeaderBytes) {
      size_t want = kFrameHeaderBytes - buffer_.size();
      size_t take = std::min(want, n - off);
      buffer_.append(data + off, take);
      off += take;
      if (buffer_.size() < kFrameHeaderBytes) break;
      const auto* h = reinterpret_cast<const unsigned char*>(buffer_.data());
      size_t len = (static_cast<size_t>(h[0]) << 24) |
                   (static_cast<size_t>(h[1]) << 16) |
                   (static_cast<size_t>(h[2]) << 8) | static_cast<size_t>(h[3]);
      if (len > max_frame_bytes_) {
        error_ = true;
        oversized_length_ = len;
        // Poisoned means framing is lost for good: nothing buffered will
        // ever be decoded, so release the memory instead of pinning it
        // for the (possibly long) remainder of the connection teardown.
        std::string().swap(buffer_);
        return false;
      }
      continue;
    }
    const auto* h = reinterpret_cast<const unsigned char*>(buffer_.data());
    size_t len = (static_cast<size_t>(h[0]) << 24) |
                 (static_cast<size_t>(h[1]) << 16) |
                 (static_cast<size_t>(h[2]) << 8) | static_cast<size_t>(h[3]);
    size_t have = buffer_.size() - kFrameHeaderBytes;
    size_t take = std::min(len - have, n - off);
    buffer_.append(data + off, take);
    off += take;
    if (buffer_.size() - kFrameHeaderBytes == len) {
      complete_.push_back(buffer_.substr(kFrameHeaderBytes));
      buffer_.clear();
    }
  }
  // A zero-length frame completes as soon as its header does.
  if (buffer_.size() == kFrameHeaderBytes) {
    const auto* h = reinterpret_cast<const unsigned char*>(buffer_.data());
    size_t len = (static_cast<size_t>(h[0]) << 24) |
                 (static_cast<size_t>(h[1]) << 16) |
                 (static_cast<size_t>(h[2]) << 8) | static_cast<size_t>(h[3]);
    if (len == 0) {
      complete_.emplace_back();
      buffer_.clear();
    }
  }
  return true;
}

std::optional<std::string> FrameReader::next() {
  if (complete_.empty()) return std::nullopt;
  std::string payload = std::move(complete_.front());
  complete_.pop_front();
  return payload;
}

}  // namespace picola::net
