#pragma once
// Length-prefixed framing of the TCP protocol (src/net): every message is
// a 4-byte big-endian payload length followed by that many bytes of JSON.
//
// FrameReader is an incremental decoder for a non-blocking byte stream:
// feed() whatever read() returned, pop complete payloads with next().
// A declared length above the configured maximum poisons the reader
// (framing is lost — the connection must be closed after the error
// response); the check fires on the *header*, before any payload is
// buffered, so an attacker cannot make the server allocate the
// oversized body.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

namespace picola::net {

inline constexpr size_t kFrameHeaderBytes = 4;
/// Hard upper bound on any frame, independent of configuration.
inline constexpr size_t kFrameAbsoluteMax = 64u << 20;

/// Wrap `payload` in a length prefix.  Throws std::length_error above
/// kFrameAbsoluteMax (callers configure tighter per-connection limits).
std::string encode_frame(std::string_view payload);

class FrameReader {
 public:
  explicit FrameReader(size_t max_frame_bytes);

  /// Consume `n` raw stream bytes.  Returns false once an oversized
  /// frame header was seen (sticky; further feeds are ignored).  The
  /// partial-frame buffer is released on poisoning — buffered_bytes()
  /// is 0 from then on.
  bool feed(const char* data, size_t n);

  /// Next complete payload in arrival order, nullopt when none pending.
  std::optional<std::string> next();

  bool error() const { return error_; }
  /// Declared length of the frame that tripped the limit (0 before that).
  size_t oversized_length() const { return oversized_length_; }
  /// Bytes sitting in the partial-frame buffer (tests / accounting).
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  size_t max_frame_bytes_;
  bool error_ = false;
  size_t oversized_length_ = 0;
  std::string buffer_;  ///< header + partial payload of the current frame
  std::deque<std::string> complete_;
};

}  // namespace picola::net
