#pragma once
// The one injectable seam between src/net and the kernel.  Every raw
// read/write/accept/connect/epoll_wait/poll/close in the serving stack
// goes through these wrappers, which consult a fault point
// (fault/fault.h) before touching the syscall:
//
//   kErrno    — fail with the injected errno, syscall not performed
//               (EINTR, EAGAIN, ECONNRESET, EPIPE, ECONNABORTED...)
//   kShortIo  — clamp the byte count, then perform the real syscall
//               (short reads / partial writes)
//   kDelay    — sleep, then perform the real syscall (slow peer)
//
// With no plan installed each wrapper is the raw syscall plus one
// relaxed atomic load.  Socket writes go through send_nosig(), which
// uses send(2) with MSG_NOSIGNAL so a peer that vanished mid-frame
// yields EPIPE instead of killing the process with SIGPIPE.
//
// NOT async-signal-safe (consulting a plan takes a mutex): signal
// handlers — the server's wake pipe — must keep using raw write(2).

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#if defined(__linux__)
#include <sys/epoll.h>
#endif

#include <cstddef>

namespace picola::net::sys {

/// Fault point "net/read".
ssize_t read(int fd, void* buf, size_t n);

/// Fault point "net/write"; pipes and other non-sockets only.
ssize_t write(int fd, const void* buf, size_t n);

/// send(2) with MSG_NOSIGNAL — every socket write.  Fault "net/write".
ssize_t send_nosig(int fd, const void* buf, size_t n);

/// Fault point "net/accept".
int accept(int fd, sockaddr* addr, socklen_t* addrlen);

/// Fault point "net/connect".
int connect(int fd, const sockaddr* addr, socklen_t addrlen);

/// Fault point "net/epoll_wait" (shared with poll(): one point covers
/// "the readiness wait", whichever backend).  Declared only where epoll
/// exists; net/poller.cpp is the sole caller.
#if defined(__linux__)
int epoll_wait(int epfd, ::epoll_event* events, int maxevents,
               int timeout_ms);
#endif

/// Fault point "net/epoll_wait".
int poll(pollfd* fds, nfds_t nfds, int timeout_ms);

/// Fault point "net/close".  The fd is ALWAYS closed (Linux semantics:
/// close(2) releases the descriptor even when it reports EINTR); the
/// injected errno only exercises the caller's error handling.
int close(int fd);

}  // namespace picola::net::sys
