#pragma once
// Consistent-hash ring over cluster member names (net/cluster.h,
// docs/CLUSTER.md).
//
// Each member is projected onto the 64-bit ring at `vnodes` points
// (virtual nodes) hashed from its name, so load spreads evenly and
// adding/removing one member remaps only ~1/N of the key space.  A key
// (the cluster routing key, service/job.h route_key()) is owned by the
// first ring point clockwise from its mixed position; preference() walks
// onward to produce the failover order — the owner first, then each next
// distinct member, which is what the router falls back through when a
// backend is open-circuited, draining, or dead.
//
// Placement is a pure function of (member names, vnodes, key): clients
// and servers that agree on the member list agree on ownership with no
// coordination — the property peer cache-hit forwarding relies on.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace picola::net {

class HashRing {
 public:
  HashRing() = default;

  /// `members` are ring identities (canonically "host:port"); order is
  /// preserved for indexing but does not affect placement.  `vnodes` is
  /// clamped to >= 1.
  explicit HashRing(std::vector<std::string> members, int vnodes = 64);

  size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }
  const std::vector<std::string>& members() const { return members_; }

  /// Index (into members()) of the member owning `key`; -1 when empty.
  int owner(uint64_t key) const;

  /// Member indexes in failover-preference order for `key`: the owner,
  /// then each next distinct member clockwise.  Every member appears
  /// exactly once.
  std::vector<int> preference(uint64_t key) const;

  /// Ring position of one virtual node (exposed for tests).
  static uint64_t point_hash(std::string_view member, uint32_t vnode);

  /// Finalising mix applied to keys before lookup, so routing stays
  /// uniform even for poorly-distributed keys.
  static uint64_t mix(uint64_t x);

 private:
  struct Point {
    uint64_t hash;
    int member;
  };

  std::vector<std::string> members_;
  std::vector<Point> points_;  ///< sorted by hash
};

}  // namespace picola::net
