#include "base/problem_io.h"

#include <fstream>
#include <sstream>

#include "constraints/constraint_io.h"
#include "constraints/derive.h"
#include "kiss/kiss_io.h"

namespace picola {

FileKind sniff_file_kind(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string head;
    if (!(ls >> head)) continue;
    if (head == ".n" || head == ".names") return FileKind::kCon;
    if (head == ".s" || head == ".r") return FileKind::kKiss;
    if (head == ".type" || head == ".ilb" || head == ".ob")
      return FileKind::kPla;
    if (head[0] != '.' && head[0] != '#') {
      // A data row: KISS2 rows have 4 fields, PLA rows 1-2.
      std::string rest;
      int fields = 1;
      while (ls >> rest) ++fields;
      return fields == 4 ? FileKind::kKiss : FileKind::kPla;
    }
  }
  return FileKind::kUnknown;
}

std::optional<Problem> parse_problem_text(const std::string& text,
                                          std::string* error) {
  FileKind kind = sniff_file_kind(text);
  Problem p;
  if (kind == FileKind::kCon) {
    ConstraintParseResult r = parse_constraints(text);
    if (!r.ok()) {
      if (error) *error = r.error;
      return std::nullopt;
    }
    p.set = r.set;
    p.names = r.symbol_names;
  } else if (kind == FileKind::kKiss) {
    KissParseResult r = parse_kiss(text);
    if (!r.ok()) {
      if (error) *error = r.error;
      return std::nullopt;
    }
    p.set = derive_face_constraints(r.fsm).set;
    p.names = r.fsm.state_names;
  } else {
    if (error)
      *error = "cannot determine file type (.con or .kiss2 expected)";
    return std::nullopt;
  }
  return p;
}

std::optional<Problem> load_problem_file(const std::string& path,
                                         std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string reason;
  auto p = parse_problem_text(ss.str(), &reason);
  if (!p && error) *error = path + ": " + reason;
  return p;
}

}  // namespace picola
