#pragma once
// Shared encoding-problem ingestion: turn a `.con` / `.kiss2` file (or
// in-memory text) into a ConstraintSet plus symbol names.  Factored out
// of the CLI driver so every request front-end — `picola encode/batch`,
// the stdin `serve` loop, and the TCP server (src/net) — resolves
// requests through one code path and stays byte-identical.

#include <optional>
#include <string>
#include <vector>

#include "constraints/face_constraint.h"

namespace picola {

enum class FileKind { kKiss, kPla, kCon, kUnknown };

/// Guess the format of a problem file from its directives / row shape.
FileKind sniff_file_kind(const std::string& text);

/// One loaded encoding problem.
struct Problem {
  ConstraintSet set;
  std::vector<std::string> names;  ///< symbol names; empty = anonymous
};

/// Parse in-memory problem text (`.con` constraint list or `.kiss2` FSM,
/// auto-detected; an FSM is reduced to its face constraints).  On failure
/// returns nullopt and fills `*error`.
std::optional<Problem> parse_problem_text(const std::string& text,
                                          std::string* error);

/// Read and parse a problem file.  On failure returns nullopt and fills
/// `*error` with a "<path>: <reason>" diagnostic.
std::optional<Problem> load_problem_file(const std::string& path,
                                         std::string* error);

}  // namespace picola
