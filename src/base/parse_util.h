#pragma once
// Small shared parsing helpers: exception-free number parsing so the file
// parsers can turn malformed tokens into diagnostics instead of throwing.

#include <charconv>
#include <optional>
#include <string>

namespace picola {

/// Parse a whole token as a base-10 int; nullopt on any junk.
inline std::optional<int> parse_int(const std::string& tok) {
  int value = 0;
  const char* begin = tok.data();
  const char* end = begin + tok.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

/// Parse a whole token as a double; nullopt on any junk.
inline std::optional<double> parse_double(const std::string& tok) {
  try {
    size_t used = 0;
    double v = std::stod(tok, &used);
    if (used != tok.size()) return std::nullopt;
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace picola
