// picola_top — terminal dashboard for a running picola TCP server.
//
// Polls the admin exporter's GET /metrics (Prometheus text exposition,
// docs/OBSERVABILITY.md) once per interval and renders the numbers an
// operator reaches for first: request rate and latency percentiles,
// pool queue depth / queue-wait, cache hit rate and shard heat, shed
// and slow-request rates, the wake-pipe coalescing ratio, and — when
// the server runs with a durable cache — snapshot age and journal size.
//
// Rates are deltas between consecutive scrapes; percentiles come from
// the cumulative histogram buckets, so they are lifetime percentiles
// (the exporter publishes no windowed histograms).
//
// Usage:
//   picola_top HOST:PORT [--once] [--interval-ms N] [--iterations N]
//
// --once prints a single scrape and exits 0; --raw switches stdout to
// the unparsed exposition — the CI telemetry step uses both to archive
// a scrape as a job artifact.

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace {

struct Histogram {
  // (upper bound, cumulative count), in exposition order; +Inf last.
  std::vector<std::pair<double, uint64_t>> buckets;
  double sum = 0;
  uint64_t count = 0;

  /// Percentile from the cumulative buckets: the upper bound of the
  /// first bucket whose cumulative count reaches q*count.
  double percentile(double q) const {
    if (count == 0) return 0;
    const double target = q * static_cast<double>(count);
    for (const auto& [ub, c] : buckets)
      if (static_cast<double>(c) >= target) return ub;
    return buckets.empty() ? 0 : buckets.back().first;
  }
};

struct Scrape {
  std::map<std::string, double> scalars;     ///< counters + gauges
  std::map<std::string, Histogram> histograms;
  bool ok = false;

  double value(const std::string& name) const {
    auto it = scalars.find(name);
    return it == scalars.end() ? 0 : it->second;
  }
};

/// One blocking HTTP/1.0 GET; nullopt on any transport error.
std::optional<std::string> http_get(const std::string& host, uint16_t port,
                                    const std::string& path) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res) !=
          0 ||
      !res)
    return std::nullopt;
  int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    freeaddrinfo(res);
    return std::nullopt;
  }
  int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  freeaddrinfo(res);
  if (rc != 0) {
    ::close(fd);
    return std::nullopt;
  }
  std::string req = "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  size_t off = 0;
  while (off < req.size()) {
    ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
    if (n <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    off += static_cast<size_t>(n);
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t hdr_end = resp.find("\r\n\r\n");
  if (hdr_end == std::string::npos) return std::nullopt;
  if (resp.rfind("HTTP/", 0) != 0) return std::nullopt;
  size_t sp = resp.find(' ');
  if (sp == std::string::npos || resp.compare(sp + 1, 3, "200") != 0)
    return std::nullopt;
  return resp.substr(hdr_end + 4);
}

/// `le` label value of a _bucket sample; empty when absent.
std::string le_of(const std::string& labels) {
  size_t p = labels.find("le=\"");
  if (p == std::string::npos) return "";
  size_t q = labels.find('"', p + 4);
  if (q == std::string::npos) return "";
  return labels.substr(p + 4, q - p - 4);
}

Scrape parse_exposition(const std::string& text) {
  Scrape s;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    // name[{labels}] value
    size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) continue;
    std::string name = line.substr(0, name_end);
    std::string labels;
    size_t value_at = name_end;
    if (line[name_end] == '{') {
      size_t close = line.find('}', name_end);
      if (close == std::string::npos) continue;
      labels = line.substr(name_end + 1, close - name_end - 1);
      value_at = close + 1;
    }
    while (value_at < line.size() && line[value_at] == ' ') ++value_at;
    if (value_at >= line.size()) continue;
    double value = 0;
    try {
      value = std::stod(line.substr(value_at));
    } catch (...) {
      continue;
    }

    auto ends_with = [&name](const char* suffix) {
      size_t n = std::strlen(suffix);
      return name.size() > n && name.compare(name.size() - n, n, suffix) == 0;
    };
    if (ends_with("_bucket")) {
      std::string base = name.substr(0, name.size() - 7);
      std::string le = le_of(labels);
      double ub = le == "+Inf" ? 1e300 : (le.empty() ? 0 : std::stod(le));
      s.histograms[base].buckets.emplace_back(
          ub, static_cast<uint64_t>(value));
    } else if (ends_with("_sum") &&
               s.histograms.count(name.substr(0, name.size() - 4))) {
      s.histograms[name.substr(0, name.size() - 4)].sum = value;
    } else if (ends_with("_count") &&
               s.histograms.count(name.substr(0, name.size() - 6))) {
      s.histograms[name.substr(0, name.size() - 6)].count =
          static_cast<uint64_t>(value);
    } else {
      s.scalars[name] = value;
    }
  }
  s.ok = true;
  return s;
}

double ms(double ns) { return ns / 1e6; }

void render(const Scrape& cur, const Scrape* prev, double interval_s) {
  auto rate = [&](const std::string& name) -> double {
    if (!prev || interval_s <= 0) return 0;
    return (cur.value(name) - prev->value(name)) / interval_s;
  };

  const auto& req = cur.histograms.count("picola_net_request_ns")
                        ? cur.histograms.at("picola_net_request_ns")
                        : Histogram{};
  const auto& qwait = cur.histograms.count("picola_pool_queue_wait_ns")
                          ? cur.histograms.at("picola_pool_queue_wait_ns")
                          : Histogram{};

  std::printf("picola_top — uptime %.0fs  inflight %.0f  conns %.0f\n",
              cur.value("picola_net_uptime_seconds"),
              cur.value("picola_net_inflight"),
              cur.value("picola_net_connections_active"));
  std::printf(
      "requests   ok %.0f (%.1f/s)  err %.0f  shed %.0f (%.1f/s)  slow %.0f\n",
      cur.value("picola_net_responses_ok_total"),
      rate("picola_net_responses_ok_total"),
      cur.value("picola_net_responses_error_total"),
      cur.value("picola_net_sheds_total"), rate("picola_net_sheds_total"),
      cur.value("picola_net_slow_requests_total"));
  std::printf("latency    p50 %.3fms  p95 %.3fms  p99 %.3fms  (n=%llu)\n",
              ms(req.percentile(0.50)), ms(req.percentile(0.95)),
              ms(req.percentile(0.99)),
              static_cast<unsigned long long>(req.count));
  std::printf(
      "pool       depth %.0f (hwm %.0f)  active %.0f  queue-wait p95 %.3fms\n",
      cur.value("picola_pool_queue_depth"),
      cur.value("picola_pool_queue_depth_hwm"),
      cur.value("picola_pool_active_threads"), ms(qwait.percentile(0.95)));

  // Cache: hit rate plus per-shard op heat (relative load balance).
  double hits = 0, ops = 0;
  std::string heat;
  for (int i = 0; i < 64; ++i) {
    std::string h = "picola_cache_shard" + std::to_string(i) + "_hits_total";
    std::string o = "picola_cache_shard" + std::to_string(i) + "_ops_total";
    if (!cur.scalars.count(o)) break;
    hits += cur.value(h);
    ops += cur.value(o);
    if (!heat.empty()) heat += " ";
    heat += std::to_string(static_cast<long>(cur.value(o)));
  }
  std::printf("cache      entries %.0f  hits %.0f/%.0f ops  shard-ops [%s]\n",
              cur.value("picola_cache_entries"), hits, ops, heat.c_str());

  // Wake-pipe coalescing: completions delivered per loop wakeup read.
  double wakeups = cur.value("picola_net_wakeups_total");
  double reads = cur.value("picola_net_wakeup_reads_total");
  std::printf(
      "loop       wakeups %.0f  reads %.0f  coalescing %.2fx  "
      "completions %.0f\n",
      wakeups, reads, reads > 0 ? wakeups / reads : 0,
      cur.value("picola_net_completions_total"));
  std::printf(
      "backends   picola %.0f  sat %.0f  anneal %.0f  (winner counts)\n",
      cur.value("picola_service_backend_picola_total"),
      cur.value("picola_service_backend_sat_total"),
      cur.value("picola_service_backend_anneal_total"));

  // Durable cache, when the server runs with --cache-dir: how stale the
  // snapshot is and how much journal a crash-restart would replay.
  if (cur.scalars.count("picola_persist_epoch")) {
    double age = cur.value("picola_persist_snapshot_age_seconds");
    std::string age_str =
        age < 0 ? "never" : std::to_string(static_cast<long>(age)) + "s";
    std::printf(
        "persist    epoch %.0f  snapshots %.0f  snapshot-age %s  "
        "journal %.1f KiB  loaded %.0f\n",
        cur.value("picola_persist_epoch"),
        cur.value("picola_persist_snapshots_total"), age_str.c_str(),
        cur.value("picola_persist_journal_bytes") / 1024.0,
        cur.value("picola_persist_records_loaded"));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: picola_top HOST:PORT [--once] [--raw] "
                 "[--interval-ms N] [--iterations N]\n");
    return 2;
  }
  std::string hp = argv[1];
  size_t colon = hp.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "picola_top: need HOST:PORT, got %s\n", hp.c_str());
    return 2;
  }
  std::string host = hp.substr(0, colon);
  int port = std::atoi(hp.c_str() + colon + 1);
  if (port < 1 || port > 65535) {
    std::fprintf(stderr, "picola_top: bad port in %s\n", hp.c_str());
    return 2;
  }

  bool once = false, raw = false;
  int interval_ms = 1000;
  long iterations = -1;  // forever
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--once") {
      once = true;
    } else if (a == "--raw") {
      raw = true;
    } else if (a == "--interval-ms" && i + 1 < argc) {
      interval_ms = std::atoi(argv[++i]);
      if (interval_ms < 1) interval_ms = 1;
    } else if (a == "--iterations" && i + 1 < argc) {
      iterations = std::atol(argv[++i]);
    } else {
      std::fprintf(stderr, "picola_top: unknown option %s\n", a.c_str());
      return 2;
    }
  }
  if (once) iterations = 1;

  std::optional<Scrape> prev;
  long done = 0;
  while (iterations < 0 || done < iterations) {
    auto body = http_get(host, static_cast<uint16_t>(port), "/metrics");
    if (!body) {
      std::fprintf(stderr, "picola_top: scrape of %s failed\n", hp.c_str());
      return 1;
    }
    if (raw) {
      // Raw mode is for archiving: the exposition itself, nothing else,
      // on stdout — pipe or redirect it straight into a .prom file.
      std::fwrite(body->data(), 1, body->size(), stdout);
      std::fflush(stdout);
    } else {
      Scrape cur = parse_exposition(*body);
      if (!once) std::printf("\033[H\033[2J");  // clear between refreshes
      render(cur, prev ? &*prev : nullptr,
             static_cast<double>(interval_ms) / 1000.0);
      std::fflush(stdout);
      prev = std::move(cur);
    }
    ++done;
    if (iterations < 0 || done < iterations)
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}
