// picola_chaos — seeded chaos harness for the TCP encoding service.
//
// Each schedule derives a bounded fault plan from one 64-bit seed
// (fault::FaultPlan::random), installs it process-wide, and drives a
// loopback server (net/server.h) through a fixed workload with the
// resilient client (net/client.h call_with_retry).  Because every
// injected fault is counter-based with a small fires cap, trouble is
// finite and a retrying client must converge; the harness asserts:
//
//   1. every request eventually gets exactly one successful reply
//      (client transport retries + a bounded harness-level retry for
//      injected server-side encode failures),
//   2. replies are bit-identical to a fault-free baseline run
//      (`enc` fingerprint and `cubes` per request),
//   3. pipelined requests come back exactly once, in order, ids intact,
//   4. no schedule outlives its wall cap (hang detector; individual
//      operations are already bounded by client timeouts),
//   5. the injection schedule itself is a pure function of the seed
//      (FaultPlan::schedule_fingerprint agrees across re-derivations,
//      and --repeat verifies a full rerun's outcomes byte for byte).
//
// A failing seed is printed with a one-command repro:
//     picola_chaos --seed <S> --repeat
//
// --restart switches to the persistence chaos mode (ISSUE 9): each seed
// forks this binary as a real server process with a durable cache dir
// and a persist-layer fault plan (FaultPlan::random_persist — short
// writes, ENOSPC, fsync failures, and kCrash points that _exit(137)
// mid-append or mid-snapshot), drives traffic into it, kill -9s
// whatever is left, then asserts the crash-consistency contract:
//
//   6. the surviving directory always loads (a standalone CacheStore
//      recovery must not throw, whatever instant the process died),
//   7. a warm restart against the same dir answers exactly the
//      recovered entries from cache ("cached":1 per reply) and every
//      reply is bit-identical to the fault-free baseline,
//   8. after a graceful shutdown of the warm server, a reload finds
//      every unique workload job durable.
//
// --cluster switches to the multi-node failover mode (ISSUE 10): each
// seed spawns THREE real server processes on fixed ports, wired to each
// other for peer cache forwarding (--peers/--self), and drives three
// passes of the workload through the cluster-aware client
// (net/cluster.h) while a seed-derived schedule takes one node down
// mid-batch — kill -9 or graceful SIGTERM drain — and rolls it back in
// on the SAME ports with the SAME durable cache dir.  Some seeds also
// install a bounded service fault plan inside the victim, and a third
// of the seeds run with hedged re-dispatch on.  The harness asserts:
//
//    9. every request gets exactly one reply with its own id — across
//       failover re-routes, hedge legs, and the restart (the router's
//       id verification plus a harness-side answered-id set),
//   10. every reply is bit-identical to the single-node fault-free
//       baseline, wherever it was computed or forwarded from,
//   11. the restarted node re-enters rotation (the schedule keeps
//       routing keys owned by the victim after the restart),
//   12. no schedule outlives its wall cap.
//
// --report out.json (any mode) writes a machine-readable summary —
// seeds run, faults fired, mode-specific counters, and every violation
// — for CI artifact upload.
//
// Usage:
//   picola_chaos [--seeds N] [--seed-base B]   sweep N seeds (default 200)
//   picola_chaos --seed S [--repeat]           one schedule, optionally twice
//   picola_chaos --restart [--seeds N]         persistence crash/restart sweep
//   picola_chaos --cluster [--seeds N]         multi-node failover sweep
//   picola_chaos --report out.json             write a JSON run report
//   picola_chaos --verbose                     per-schedule plan dumps

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "base/problem_io.h"
#include "check/instance_gen.h"
#include "constraints/constraint_io.h"
#include "fault/fault.h"
#include "net/client.h"
#include "net/cluster.h"
#include "net/json.h"
#include "net/server.h"
#include "persist/io.h"
#include "persist/store.h"
#include "service/job.h"
#include "service/result_cache.h"

namespace {

using picola::fault::FaultPlan;
using picola::net::Client;
using picola::net::ClientOptions;
using picola::net::JsonValue;
using picola::net::Server;
using picola::net::ServerOptions;

struct Options {
  uint64_t seeds = 200;
  uint64_t seed_base = 1;
  std::optional<uint64_t> single_seed;
  bool repeat = false;
  bool restart = false;
  bool cluster = false;
  bool verbose = false;
  std::string report_path;  ///< --report: JSON summary for CI artifacts
};

/// Machine-readable run summary (--report).  One object per invocation:
/// which mode ran, how many seeds, the fault volume, mode-specific
/// counters, and every violation verbatim — enough for CI to archive
/// and for a human to pick the repro command out of.
struct Report {
  std::string mode;
  uint64_t seeds_run = 0;
  uint64_t seed_base = 0;
  uint64_t faults_fired = 0;
  std::map<std::string, int64_t> counters;
  std::vector<std::string> violations;
  double wall_ms = 0;
};

bool write_report(const std::string& path, const Report& rep) {
  JsonValue doc = JsonValue::make_object();
  doc.set("mode", JsonValue::make_string(rep.mode));
  doc.set("seeds_run", JsonValue::make_int(static_cast<int64_t>(rep.seeds_run)));
  doc.set("seed_base",
          JsonValue::make_int(static_cast<int64_t>(rep.seed_base)));
  doc.set("faults_fired",
          JsonValue::make_int(static_cast<int64_t>(rep.faults_fired)));
  doc.set("pass", JsonValue::make_bool(rep.violations.empty()));
  doc.set("wall_ms", JsonValue::make_double(rep.wall_ms));
  JsonValue counters = JsonValue::make_object();
  for (const auto& [name, value] : rep.counters)
    counters.set(name, JsonValue::make_int(value));
  doc.set("counters", counters);
  JsonValue violations = JsonValue::make_array();
  for (const std::string& v : rep.violations)
    violations.push_back(JsonValue::make_string(v));
  doc.set("violations", violations);

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string text = doc.dump();
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
            std::fputc('\n', f) != EOF;
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

/// One reply we care about comparing: the encoding fingerprint plus the
/// espresso cube count (the whole observable result of an encode).
struct Outcome {
  std::string enc;
  int64_t cubes = 0;
  bool operator==(const Outcome& o) const {
    return enc == o.enc && cubes == o.cubes;
  }
};

struct ScheduleResult {
  std::vector<Outcome> outcomes;  ///< per request, in workload order
  uint64_t schedule_fp = 0;
  std::map<std::string, FaultPlan::PointStats> fault_stats;
  std::vector<std::string> violations;
  double wall_ms = 0;
};

/// The fixed workload: a handful of deterministic instances, two of them
/// requested twice (cache + in-flight-join paths), all inline so the
/// harness needs no files on disk.
std::vector<std::string> make_workload() {
  picola::check::GeneratorOptions g;
  g.min_symbols = 5;
  g.max_symbols = 9;
  g.max_constraints = 5;
  picola::check::InstanceGenerator gen(42, g);
  std::vector<std::string> cons;
  for (int i = 0; i < 5; ++i)
    cons.push_back(picola::write_constraints(gen.next().set));
  cons.push_back(cons[0]);  // repeat -> cache hit or inflight join
  cons.push_back(cons[1]);
  return cons;
}

JsonValue encode_request(const std::string& con, int64_t id) {
  JsonValue r = JsonValue::make_object();
  r.set("con", JsonValue::make_string(con));
  r.set("id", JsonValue::make_int(id));
  r.set("restarts", JsonValue::make_int(2));
  return r;
}

int64_t int_field(const JsonValue& v, const char* key, int64_t dflt = -1) {
  const JsonValue* f = v.find(key);
  return f && f->is_number() ? f->as_int() : dflt;
}

std::string str_field(const JsonValue& v, const char* key) {
  const JsonValue* f = v.find(key);
  return f && f->is_string() ? f->as_string() : "";
}

ServerOptions server_options() {
  ServerOptions o;
  o.service.num_threads = 2;
  o.service.cache_capacity = 32;
  o.max_inflight = 8;
  o.retry_after_ms = 2;
  return o;
}

ClientOptions client_options(uint64_t seed) {
  ClientOptions c;
  c.connect_timeout_ms = 2000;
  c.io_timeout_ms = 2000;
  c.max_retries = 12;
  c.backoff_base_ms = 1;
  c.backoff_max_ms = 16;
  c.jitter_seed = seed;
  c.breaker_threshold = 4;
  c.breaker_open_ms = 20;
  return c;
}

/// One request to a definitive successful outcome, or a violation.
/// call_with_retry absorbs transport faults; this layer absorbs the
/// bounded injected *server-side* failures (a restart task or allocation
/// made to throw answers `error: encode_failed` — a valid reply, so the
/// client rightly does not retry it).
std::optional<Outcome> run_request(Client& c, const std::string& con,
                                   int64_t id, std::string* why,
                                   bool* cached = nullptr) {
  std::string error;
  for (int attempt = 0; attempt < 10; ++attempt) {
    auto reply = c.call_with_retry(encode_request(con, id), &error);
    if (!reply) continue;  // transport budget spent; next harness attempt
    if (reply->find("error")) continue;  // injected server-side failure
    if (int_field(*reply, "id") != id) {
      *why = "reply id mismatch: want " + std::to_string(id) + " got " +
             std::to_string(int_field(*reply, "id"));
      return std::nullopt;
    }
    Outcome o;
    o.enc = str_field(*reply, "enc");
    o.cubes = int_field(*reply, "cubes");
    if (o.enc.empty()) {
      *why = "reply missing enc fingerprint";
      return std::nullopt;
    }
    if (cached) *cached = int_field(*reply, "cached", 0) == 1;
    return o;
  }
  *why = "request " + std::to_string(id) +
         " failed permanently (last: " + error + ")";
  return std::nullopt;
}

/// Pipelined phase: several requests written back to back, replies
/// collected afterwards.  Replies arrive in completion order and
/// correlate by id — the invariant is exactly one reply per id, each
/// matching the baseline.  A transport fault mid-pipeline kills the
/// connection; the whole batch is idempotent, so the harness reconnects
/// and replays it.
bool run_pipeline(Client& c, uint16_t port,
                  const std::vector<std::string>& cons,
                  const std::vector<Outcome>& want, std::string* why) {
  const int64_t kBase = 1000;
  // A plan tops out at 6 rules x 6 fires = 36 injected kills; each kills
  // at most one batch attempt, so this budget guarantees convergence.
  for (int attempt = 0; attempt < 48; ++attempt) {
    if (!c.connected()) {
      std::string cerr2;
      for (int r = 0; r < 10 && !c.connected(); ++r)
        c.connect("127.0.0.1", port, &cerr2);
      if (!c.connected()) continue;
    }
    bool restart = false;
    std::string error;
    for (size_t i = 0; i < cons.size() && !restart; ++i)
      if (!c.send(encode_request(cons[i], kBase + static_cast<int64_t>(i))
                      .dump(),
                  &error))
        restart = true;
    std::map<int64_t, Outcome> got;
    for (size_t i = 0; i < cons.size() && !restart; ++i) {
      auto payload = c.recv(&error);
      if (!payload) {
        restart = true;
        break;
      }
      auto reply = JsonValue::parse(*payload);
      if (!reply) {
        *why = "pipeline: unparsable reply";
        return false;
      }
      int64_t id = int_field(*reply, "id");
      if (id < kBase || id >= kBase + static_cast<int64_t>(cons.size())) {
        *why = "pipeline: reply with unknown id " + std::to_string(id);
        return false;
      }
      if (reply->find("error")) {
        restart = true;  // bounded injected failure: replay the batch
        break;
      }
      if (got.count(id)) {
        *why = "pipeline: duplicate reply for id " + std::to_string(id);
        return false;
      }
      got[id] = Outcome{str_field(*reply, "enc"), int_field(*reply, "cubes")};
    }
    if (!restart) {
      // Every id answered exactly once (map + count check above), and
      // every answer bit-identical to the fault-free baseline.
      for (size_t i = 0; i < cons.size(); ++i) {
        auto it = got.find(kBase + static_cast<int64_t>(i));
        if (it == got.end()) {
          *why = "pipeline: no reply for slot " + std::to_string(i);
          return false;
        }
        if (!(it->second == want[i])) {
          *why = "pipeline: reply differs from baseline at slot " +
                 std::to_string(i);
          return false;
        }
      }
      return true;
    }
    c.close();  // drop any half-read frame; reconnect next attempt
  }
  *why = "pipeline: batch never completed";
  return false;
}

ScheduleResult run_schedule(const std::vector<std::string>& workload,
                            const std::vector<Outcome>* baseline,
                            std::optional<FaultPlan> plan, bool verbose) {
  ScheduleResult res;
  auto t0 = std::chrono::steady_clock::now();

  Server server(server_options());
  server.start();
  uint16_t port = server.port();

  uint64_t seed = plan ? plan->seed() : 0;
  if (plan) {
    res.schedule_fp = plan->schedule_fingerprint();
    if (verbose) std::fprintf(stderr, "%s\n", plan->describe().c_str());
    picola::fault::install(std::make_shared<FaultPlan>(std::move(*plan)));
  }

  Client client(client_options(seed));
  std::string error;
  bool up = false;
  for (int i = 0; i < 48 && !up; ++i)
    up = client.connect("127.0.0.1", port, &error);
  if (!up) {
    res.violations.push_back("could not connect: " + error);
  } else {
    for (size_t i = 0; i < workload.size(); ++i) {
      std::string why;
      auto o = run_request(client, workload[i], static_cast<int64_t>(i),
                           &why);
      if (!o) {
        res.violations.push_back(why);
        break;
      }
      if (baseline && !((*baseline)[i] == *o))
        res.violations.push_back("request " + std::to_string(i) +
                                 " differs from fault-free baseline");
      res.outcomes.push_back(std::move(*o));
    }
    if (res.violations.empty() && baseline) {
      std::string why;
      // Reconnect for the pipelined phase so it starts clean.
      for (int i = 0; i < 48; ++i)
        if (client.connect("127.0.0.1", port, &error)) break;
      if (!run_pipeline(client, port, workload, *baseline, &why))
        res.violations.push_back(why);
    }
  }

  if (plan) {
    auto installed = picola::fault::current();
    if (installed) res.fault_stats = installed->stats();
    picola::fault::install(nullptr);
  }
  server.stop();  // graceful drain: must answer admitted work and exit

  res.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  if (res.wall_ms > 30'000)
    res.violations.push_back("schedule exceeded 30s wall cap (hang?)");
  return res;
}

// ---------------------------------------------------------------------------
// --restart mode: real-process crash/recovery schedules (ISSUE 9).
//
// The faulted server must be a separate *process* — kCrash faults
// _exit(137) at the injection site, and the whole point is that the
// page cache (not the process) carries un-fsynced journal bytes across
// the death.  The harness re-execs itself via a hidden --child-serve
// mode; the child prints "port <p>" on stdout once it is listening.

std::atomic<Server*> g_child_server{nullptr};

extern "C" void picola_chaos_child_sigterm(int) {
  Server* s = g_child_server.load(std::memory_order_relaxed);
  if (s) s->request_shutdown();
}

/// Child entry: serve on an ephemeral port with the durable cache in
/// `dir`, snapshotting after every insert (interval 0) so crash points
/// land mid-snapshot as often as mid-append.  A non-zero fault seed
/// installs the persist-layer plan before the server (and therefore the
/// recovery load) comes up.  SIGTERM drains gracefully, which writes
/// the shutdown snapshot; SIGKILL is the crash under test.
int run_child_serve(const std::string& dir, uint64_t fault_seed) {
  ServerOptions o = server_options();
  o.service.cache_dir = dir;
  o.service.snapshot_interval_s = 0;
  if (fault_seed)
    picola::fault::install(
        std::make_shared<FaultPlan>(FaultPlan::random_persist(fault_seed)));
  std::unique_ptr<Server> server;
  try {
    server = std::make_unique<Server>(o);
  } catch (const std::exception& e) {
    std::printf("fail %s\n", e.what());
    std::fflush(stdout);
    return 3;
  }
  g_child_server.store(server.get(), std::memory_order_relaxed);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = picola_chaos_child_sigterm;
  sigaction(SIGTERM, &sa, nullptr);
  std::printf("port %u\n", static_cast<unsigned>(server->port()));
  std::fflush(stdout);
  server->run();
  g_child_server.store(nullptr, std::memory_order_relaxed);
  return 0;
}

struct ChildProc {
  pid_t pid = -1;
  int out = -1;  ///< read end of the child's stdout pipe
};

ChildProc spawn_child(const char* exe, const std::string& dir,
                      uint64_t fault_seed) {
  int fds[2];
  if (pipe(fds) != 0) return {};
  pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return {};
  }
  if (pid == 0) {
    dup2(fds[1], 1);
    close(fds[0]);
    close(fds[1]);
    std::string seed_str = std::to_string(fault_seed);
    execl(exe, exe, "--child-serve", dir.c_str(), seed_str.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);
  }
  close(fds[1]);
  ChildProc c;
  c.pid = pid;
  c.out = fds[0];
  return c;
}

/// First line of the child's stdout: "port <p>" on success, "fail ..."
/// (or EOF, if it crashed before printing) otherwise.
bool read_port_line(int fd, uint16_t* port) {
  std::string line;
  while (line.size() < 256) {
    char ch;
    ssize_t n = read(fd, &ch, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    if (ch == '\n') break;
    line.push_back(ch);
  }
  if (line.rfind("port ", 0) != 0) return false;
  unsigned long p = std::strtoul(line.c_str() + 5, nullptr, 10);
  *port = static_cast<uint16_t>(p);
  return p != 0 && p < 65536;
}

/// Reap `pid`, escalating to SIGKILL if it outlives `timeout_ms`.
int await_child(pid_t pid, int timeout_ms) {
  for (int waited = 0; waited < timeout_ms; waited += 10) {
    int status = 0;
    if (waitpid(pid, &status, WNOHANG) == pid) return status;
    usleep(10'000);
  }
  kill(pid, SIGKILL);
  int status = 0;
  waitpid(pid, &status, 0);
  return status;
}

/// The parent-side recovery probe: a standalone CacheStore load of the
/// directory a dead server left behind.  load() is write-side-effect
/// free (the journal opens lazily, on the first append), so this does
/// not perturb the dir a subsequent warm server will recover from.
/// Returns false — the core crash-consistency violation — when the load
/// throws.
bool verify_load(const std::string& dir, size_t* entries, std::string* why) {
  try {
    picola::persist::StoreOptions so;
    so.dir = dir;
    so.snapshot_interval_s = -1;
    picola::persist::CacheStore store(so);
    picola::ResultCache cache(32, 8);
    store.load(&cache);
    *entries = cache.size();
    return true;
  } catch (const std::exception& e) {
    *why = e.what();
    return false;
  }
}

void remove_tree(const std::string& dir) {
  for (const std::string& name : picola::persist::io::list_dir(dir))
    picola::persist::io::unlink_file(dir + "/" + name, nullptr);
  rmdir(dir.c_str());
}

struct RestartResult {
  size_t recovered = 0;      ///< entries readable right after the kill
  size_t warm_hits = 0;      ///< warm replies served from the recovered cache
  size_t final_entries = 0;  ///< after graceful shutdown + reload
  std::vector<std::string> violations;
  double wall_ms = 0;
};

RestartResult run_restart_schedule(const char* exe,
                                   const std::vector<std::string>& workload,
                                   const std::vector<Outcome>& baseline,
                                   uint64_t seed) {
  RestartResult res;
  auto t0 = std::chrono::steady_clock::now();
  char tmpl[] = "/tmp/picola_chaos.XXXXXX";
  if (!mkdtemp(tmpl)) {
    res.violations.push_back("mkdtemp failed");
    return res;
  }
  const std::string dir = tmpl;

  // Phase 1: the faulted server.  Drive the workload without caring
  // whether requests succeed — a kCrash fault may take the process down
  // at any injected point; if the plan held no crash, the SIGKILL below
  // is the mid-flight kill.  Recovery on an empty dir touches no fault
  // points (the journal opens lazily), so startup itself must work.
  ChildProc c1 = spawn_child(exe, dir, seed);
  if (c1.pid < 0) {
    res.violations.push_back("fork/exec failed");
    remove_tree(dir);
    return res;
  }
  uint16_t port = 0;
  bool c1_dead = false;
  if (!read_port_line(c1.out, &port)) {
    res.violations.push_back("faulted child failed to start");
  } else {
    Client client(client_options(seed));
    std::string error;
    for (int i = 0; i < 20 && !client.connected(); ++i)
      client.connect("127.0.0.1", port, &error);
    for (size_t i = 0; i < workload.size() && !c1_dead; ++i) {
      if (waitpid(c1.pid, nullptr, WNOHANG) == c1.pid) {
        c1_dead = true;  // crash fault fired; already reaped
        break;
      }
      // One transport-retrying attempt per request; outcomes don't
      // matter here, only the journal/snapshot traffic they generate.
      (void)client.call_with_retry(
          encode_request(workload[i], static_cast<int64_t>(i)), &error);
    }
  }
  if (!c1_dead) {
    kill(c1.pid, SIGKILL);
    waitpid(c1.pid, nullptr, 0);
  }
  close(c1.out);

  // Phase 2: whatever instant the process died, the dir must load.
  std::string why;
  if (res.violations.empty() &&
      !verify_load(dir, &res.recovered, &why))
    res.violations.push_back("recovered dir failed verification: " + why);

  // Phase 3: warm restart, no faults.  Every reply must be
  // bit-identical to the fault-free baseline, and the first request for
  // each unique job must be a cache hit exactly when recovery brought
  // that entry back — warm hits == recovered entries, no more, no less.
  if (res.violations.empty()) {
    ChildProc c2 = spawn_child(exe, dir, 0);
    uint16_t port2 = 0;
    if (c2.pid < 0 || !read_port_line(c2.out, &port2)) {
      res.violations.push_back("warm restart failed to come up");
      if (c2.pid > 0) {
        kill(c2.pid, SIGKILL);
        waitpid(c2.pid, nullptr, 0);
      }
    } else {
      Client client(client_options(seed ^ 0x5eedULL));
      std::string error;
      bool up = false;
      for (int i = 0; i < 48 && !up; ++i)
        up = client.connect("127.0.0.1", port2, &error);
      if (!up) res.violations.push_back("warm connect failed: " + error);
      std::set<std::string> seen;
      for (size_t i = 0; res.violations.empty() && i < workload.size();
           ++i) {
        bool cached = false;
        auto o = run_request(client, workload[i],
                             static_cast<int64_t>(i), &why, &cached);
        if (!o) {
          res.violations.push_back("warm " + why);
          break;
        }
        if (!(*o == baseline[i])) {
          res.violations.push_back(
              "warm reply " + std::to_string(i) +
              " differs from fault-free baseline");
          break;
        }
        if (seen.insert(workload[i]).second && cached) ++res.warm_hits;
      }
      if (res.violations.empty() && res.warm_hits != res.recovered)
        res.violations.push_back(
            "warm hit count " + std::to_string(res.warm_hits) +
            " != recovered entries " + std::to_string(res.recovered));

      // Phase 4: graceful shutdown writes the final snapshot; a reload
      // must now find every unique workload job durable.
      kill(c2.pid, SIGTERM);
      int status = await_child(c2.pid, 20'000);
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
        res.violations.push_back("warm server did not shut down cleanly");
      else if (!verify_load(dir, &res.final_entries, &why))
        res.violations.push_back("post-shutdown dir failed verification: " +
                                 why);
      else if (res.final_entries != seen.size())
        res.violations.push_back(
            "post-shutdown reload found " +
            std::to_string(res.final_entries) + " entries, want " +
            std::to_string(seen.size()));
    }
    if (c2.out >= 0) close(c2.out);
  }

  remove_tree(dir);
  res.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  if (res.wall_ms > 30'000)
    res.violations.push_back("restart schedule exceeded 30s wall cap");
  return res;
}

/// The --restart sweep; mirrors main()'s classic sweep.
int run_restart_sweep(const Options& opt,
                      const std::vector<std::string>& workload,
                      const std::vector<Outcome>& baseline,
                      const std::vector<uint64_t>& seeds, Report* rep) {
  char exe[4096];
  ssize_t n = readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (n <= 0) {
    std::fprintf(stderr, "cannot resolve /proc/self/exe\n");
    return 2;
  }
  exe[n] = '\0';

  uint64_t total_recovered = 0;
  uint64_t total_warm = 0;
  for (uint64_t seed : seeds) {
    uint64_t fp1 = FaultPlan::random_persist(seed).schedule_fingerprint();
    uint64_t fp2 = FaultPlan::random_persist(seed).schedule_fingerprint();
    if (fp1 != fp2) {
      rep->violations.push_back("seed " + std::to_string(seed) +
                                ": persist schedule not reproducible");
      std::fprintf(stderr,
                   "FAIL seed %llu: persist schedule not reproducible\n",
                   static_cast<unsigned long long>(seed));
      return 1;
    }
    RestartResult r = run_restart_schedule(exe, workload, baseline, seed);
    total_recovered += r.recovered;
    total_warm += r.warm_hits;
    ++rep->seeds_run;
    rep->counters["entries_recovered"] = static_cast<int64_t>(total_recovered);
    rep->counters["warm_hits"] = static_cast<int64_t>(total_warm);
    if (!r.violations.empty()) {
      rep->violations.push_back("seed " + std::to_string(seed) + ": " +
                                r.violations[0]);
      std::fprintf(
          stderr,
          "FAIL seed %llu: %s\n  repro: picola_chaos --restart --seed %llu\n",
          static_cast<unsigned long long>(seed), r.violations[0].c_str(),
          static_cast<unsigned long long>(seed));
      return 1;
    }
    if (opt.verbose || opt.single_seed)
      std::fprintf(stderr,
                   "seed %llu ok: recovered %zu, warm hits %zu, final %zu "
                   "(%.0f ms)\n",
                   static_cast<unsigned long long>(seed), r.recovered,
                   r.warm_hits, r.final_entries, r.wall_ms);
  }

  // A sweep that never recovers anything warm proves nothing — require
  // the warm-hit rate over the whole sweep to be > 0.
  if (seeds.size() > 1 && total_warm == 0) {
    rep->violations.push_back(
        "restart sweep never observed a warm cache hit");
    std::fprintf(stderr,
                 "FAIL: restart sweep never observed a warm cache hit\n");
    return 1;
  }
  std::fprintf(stderr,
               "PASS %zu restart schedule(s), %llu entries recovered, "
               "%llu warm hits, 0 violations\n",
               seeds.size(),
               static_cast<unsigned long long>(total_recovered),
               static_cast<unsigned long long>(total_warm));
  return 0;
}

// ---------------------------------------------------------------------------
// --cluster mode: multi-node failover schedules (ISSUE 10).

uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// An ephemeral port reserved for a child that will bind it shortly.
uint16_t free_port() {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  socklen_t len = sizeof addr;
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  close(fd);
  return ntohs(addr.sin_port);
}

/// Child entry for one cluster node: fixed main + admin ports (so a
/// restart rejoins on the same member identity), a durable cache dir
/// (snapshot interval 0 — the warm restart must find its work), and the
/// full member list for peer cache forwarding.
int run_child_node(const std::string& dir, int port, int admin_port,
                   const std::string& peers, const std::string& self,
                   uint64_t fault_seed) {
  ServerOptions o = server_options();
  o.service.cache_dir = dir;
  o.service.snapshot_interval_s = 0;
  o.port = static_cast<uint16_t>(port);
  o.admin_port = admin_port;
  std::string perr;
  o.peers = picola::net::parse_member_list(peers, &perr);
  o.self = self;
  o.peer_timeout_ms = 100;  // peeks at a dead peer must not stall requests
  if (fault_seed)
    picola::fault::install(
        std::make_shared<FaultPlan>(FaultPlan::random(fault_seed)));
  std::unique_ptr<Server> server;
  try {
    server = std::make_unique<Server>(o);
  } catch (const std::exception& e) {
    std::printf("fail %s\n", e.what());
    std::fflush(stdout);
    return 3;
  }
  g_child_server.store(server.get(), std::memory_order_relaxed);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = picola_chaos_child_sigterm;
  sigaction(SIGTERM, &sa, nullptr);
  std::printf("port %u\n", static_cast<unsigned>(server->port()));
  std::fflush(stdout);
  server->run();
  g_child_server.store(nullptr, std::memory_order_relaxed);
  return 0;
}

struct ClusterNode {
  std::string dir;
  uint16_t port = 0;
  uint16_t admin_port = 0;
  ChildProc proc;

  std::string self() const {
    return "127.0.0.1:" + std::to_string(port);
  }
};

ChildProc spawn_node(const char* exe, const ClusterNode& node,
                     const std::string& peers, uint64_t fault_seed) {
  int fds[2];
  if (pipe(fds) != 0) return {};
  pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return {};
  }
  if (pid == 0) {
    dup2(fds[1], 1);
    close(fds[0]);
    close(fds[1]);
    std::string port_str = std::to_string(node.port);
    std::string admin_str = std::to_string(node.admin_port);
    std::string self = node.self();
    std::string seed_str = std::to_string(fault_seed);
    execl(exe, exe, "--child-node", node.dir.c_str(), port_str.c_str(),
          admin_str.c_str(), peers.c_str(), self.c_str(), seed_str.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);
  }
  close(fds[1]);
  ChildProc c;
  c.pid = pid;
  c.out = fds[0];
  return c;
}

void reap_node(ClusterNode* node) {
  if (node->proc.pid > 0) {
    kill(node->proc.pid, SIGKILL);
    waitpid(node->proc.pid, nullptr, 0);
    node->proc.pid = -1;
  }
  if (node->proc.out >= 0) {
    close(node->proc.out);
    node->proc.out = -1;
  }
}

struct ClusterResult {
  std::vector<std::string> violations;
  uint64_t kills = 0;
  uint64_t restarts = 0;
  uint64_t child_faults = 0;  ///< schedules that faulted the victim's service
  picola::net::ClusterClient::Stats stats;
  double wall_ms = 0;
};

ClusterResult run_cluster_schedule(const char* exe,
                                   const std::vector<std::string>& workload,
                                   const std::vector<uint64_t>& keys,
                                   const std::vector<Outcome>& baseline,
                                   uint64_t seed, bool verbose) {
  ClusterResult res;
  auto t0 = std::chrono::steady_clock::now();
  constexpr int kNodes = 3;

  std::vector<ClusterNode> nodes(kNodes);
  std::string peers;
  auto cleanup = [&] {
    for (ClusterNode& n : nodes) {
      reap_node(&n);
      if (!n.dir.empty()) remove_tree(n.dir);
    }
  };
  for (int i = 0; i < kNodes; ++i) {
    char tmpl[] = "/tmp/picola_cluster.XXXXXX";
    if (!mkdtemp(tmpl)) {
      res.violations.push_back("mkdtemp failed");
      cleanup();
      return res;
    }
    nodes[i].dir = tmpl;
    nodes[i].port = free_port();
    nodes[i].admin_port = free_port();
    if (i) peers += ",";
    peers += nodes[i].self() + ":" + std::to_string(nodes[i].admin_port);
  }

  // The seed-derived chaos schedule: which node dies, when, how (kill -9
  // or graceful SIGTERM drain), when it rolls back in, and whether its
  // service additionally runs a bounded fault plan.
  const uint64_t h = splitmix64(seed);
  const int victim = static_cast<int>(h % kNodes);
  const bool victim_faulted = (h >> 4) % 2 == 0;
  const bool graceful = (h >> 12) % 3 == 0;
  // Four passes; the kill lands after one full warm pass (so every lane
  // that owns a key has a live connection — drains are observed on warm
  // lanes), and the restart leaves a tail that re-admits the victim.
  const size_t total = workload.size() * 4;
  const size_t kill_at =
      workload.size() + 1 + ((h >> 16) % workload.size());
  const size_t restart_at = kill_at + 2 + ((h >> 24) % 4);

  for (int i = 0; i < kNodes; ++i) {
    const uint64_t fs = (i == victim && victim_faulted) ? seed : 0;
    if (fs) ++res.child_faults;
    nodes[i].proc = spawn_node(exe, nodes[i], peers, fs);
    uint16_t p = 0;
    if (nodes[i].proc.pid < 0 || !read_port_line(nodes[i].proc.out, &p)) {
      res.violations.push_back("node " + std::to_string(i) +
                               " failed to start");
      cleanup();
      return res;
    }
  }

  picola::net::ClusterOptions co;
  std::string perr;
  co.members = picola::net::parse_member_list(peers, &perr);
  co.client.connect_timeout_ms = 500;
  co.client.io_timeout_ms = 8000;
  co.breaker.threshold = 2;
  co.breaker.open_ms = 50;
  co.health_recheck_ms = 25;
  co.backoff_base_ms = 1;
  co.backoff_max_ms = 20;
  co.seed = seed;
  // A third of the seeds hedge aggressively: 1ms is under a cold encode,
  // so hedge legs genuinely race and lose-legs get suppressed.
  co.hedge_ms = (h >> 8) % 3 == 0 ? 1 : 0;
  picola::net::ClusterClient cluster(co);

  // While the victim is down or draining, steer its own keys at it —
  // that is the traffic that exercises drain observation and failover
  // (a key owned by a healthy node never reaches the victim's lane).
  std::vector<size_t> victim_keys;
  for (size_t i = 0; i < keys.size(); ++i)
    if (cluster.owner_of(keys[i]) == victim) victim_keys.push_back(i);

  if (verbose)
    std::fprintf(stderr,
                 "seed %llu: victim=%d faulted=%d graceful=%d kill@%zu "
                 "restart@%zu hedge=%dms\n",
                 static_cast<unsigned long long>(seed), victim,
                 victim_faulted ? 1 : 0, graceful ? 1 : 0, kill_at,
                 restart_at, co.hedge_ms);

  // A graceful victim drains; shutting_down replies on the router's
  // warm lanes are how the drain gets observed.  With no in-flight work
  // the drain window is microseconds, so park one slow unique job on
  // the victim right before the SIGTERM to hold the window open.
  picola::check::GeneratorOptions pg;
  pg.min_symbols = 16;
  pg.max_symbols = 20;
  pg.max_constraints = 5;
  picola::check::InstanceGenerator pgen(splitmix64(seed ^ 0xdeadULL), pg);
  const std::string parking_con =
      picola::write_constraints(pgen.next().set);
  Client occupier(client_options(seed));
  bool parked = false;

  std::set<int64_t> answered;
  for (size_t n = 0; n < total && res.violations.empty(); ++n) {
    if (n == kill_at) {
      if (graceful) {
        std::string oerr;
        if (occupier.connect("127.0.0.1", nodes[victim].port, &oerr)) {
          JsonValue park = encode_request(parking_con, 1);
          park.set("restarts", JsonValue::make_int(48));
          parked = occupier.send(park.dump(), &oerr);
        }
        usleep(2'000);  // let the parked job be admitted
        kill(nodes[victim].proc.pid, SIGTERM);
        // NOT reaped yet: the workload keeps flowing into the drain
        // window; the victim is collected at the restart point.
      } else {
        kill(nodes[victim].proc.pid, SIGKILL);
        waitpid(nodes[victim].proc.pid, nullptr, 0);
        nodes[victim].proc.pid = -1;
        close(nodes[victim].proc.out);
        nodes[victim].proc.out = -1;
      }
      ++res.kills;
    }
    if (n == restart_at && res.violations.empty()) {
      if (nodes[victim].proc.pid > 0) {  // graceful: collect the drain
        if (parked) (void)occupier.recv(nullptr);  // admitted work answered
        occupier.close();
        int status = await_child(nodes[victim].proc.pid, 20'000);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
          res.violations.push_back("victim did not drain cleanly");
        nodes[victim].proc.pid = -1;
        close(nodes[victim].proc.out);
        nodes[victim].proc.out = -1;
        if (!res.violations.empty()) break;
      }
      // Rolling restart: same ports, same cache dir, no faults — the
      // node warm-loads what it persisted and re-enters rotation.
      nodes[victim].proc = spawn_node(exe, nodes[victim], peers, 0);
      uint16_t p = 0;
      if (nodes[victim].proc.pid < 0 ||
          !read_port_line(nodes[victim].proc.out, &p)) {
        res.violations.push_back("victim failed to restart");
        break;
      }
      ++res.restarts;
      // Let the breaker's open window and the draining health recheck
      // lapse so the rest of the schedule can actually re-admit it.
      usleep(60'000);
    }

    size_t i = n % workload.size();
    if (n > kill_at && n < restart_at + 2 && !victim_keys.empty())
      i = victim_keys[n % victim_keys.size()];
    const int64_t id = 2000 + static_cast<int64_t>(n);
    const JsonValue req = encode_request(workload[i], id);
    bool done = false;
    std::string last_err = "no attempt made";
    // The router absorbs transport faults, drains, and overload sheds;
    // this layer absorbs (a) windows where the victim is down and its
    // breaker not yet open, and (b) bounded injected encode failures,
    // which reach us as terminal error replies.
    for (int attempt = 0; attempt < 12 && !done; ++attempt) {
      std::string error;
      auto reply = cluster.call(req, keys[i], &error);
      if (!reply) {
        last_err = error;
        usleep(5'000);
        continue;
      }
      if (reply->find("error")) {
        last_err = str_field(*reply, "error");
        continue;
      }
      if (int_field(*reply, "id") != id) {
        res.violations.push_back(
            "request " + std::to_string(n) + ": reply id " +
            std::to_string(int_field(*reply, "id")) + ", want " +
            std::to_string(id));
        break;
      }
      if (!answered.insert(id).second) {
        res.violations.push_back("request " + std::to_string(n) +
                                 ": answered twice");
        break;
      }
      Outcome o{str_field(*reply, "enc"), int_field(*reply, "cubes")};
      if (!(o == baseline[i])) {
        res.violations.push_back(
            "request " + std::to_string(n) +
            " differs from single-node fault-free baseline");
        break;
      }
      done = true;
    }
    if (!done && res.violations.empty())
      res.violations.push_back("request " + std::to_string(n) +
                               " never answered (last: " + last_err + ")");
  }

  if (res.violations.empty() && answered.size() != total)
    res.violations.push_back(
        "answered " + std::to_string(answered.size()) + " of " +
        std::to_string(total) + " requests");
  res.stats = cluster.stats();
  if (res.violations.empty() && res.stats.id_mismatches != 0)
    res.violations.push_back(
        "exactly-one-reply violated: " +
        std::to_string(res.stats.id_mismatches) + " id mismatches");

  cleanup();
  res.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  if (res.wall_ms > 60'000)
    res.violations.push_back("cluster schedule exceeded 60s wall cap");
  return res;
}

/// The --cluster sweep; fills `rep` for --report.
int run_cluster_sweep(const Options& opt,
                      const std::vector<std::string>& workload,
                      const std::vector<Outcome>& baseline,
                      const std::vector<uint64_t>& seeds, Report* rep) {
  char exe[4096];
  ssize_t n = readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (n <= 0) {
    std::fprintf(stderr, "cannot resolve /proc/self/exe\n");
    return 2;
  }
  exe[n] = '\0';

  // Routing keys are a pure function of the constraint content — the
  // same function servers use to pick peek targets (service/job.h).
  std::vector<uint64_t> keys;
  for (const std::string& con : workload) {
    std::string error;
    auto problem = picola::parse_problem_text(con, &error);
    if (!problem) {
      std::fprintf(stderr, "workload con unparsable: %s\n", error.c_str());
      return 2;
    }
    keys.push_back(picola::route_key(problem->set));
  }

  uint64_t reroutes = 0, hedges = 0, duplicates = 0, drains = 0,
           rejoins = 0, kills = 0, restarts = 0, child_faults = 0;
  for (uint64_t seed : seeds) {
    ClusterResult r = run_cluster_schedule(exe, workload, keys, baseline,
                                           seed, opt.verbose);
    reroutes += r.stats.reroutes;
    hedges += r.stats.hedges;
    duplicates += r.stats.duplicates_suppressed;
    drains += r.stats.drains_observed;
    rejoins += r.stats.rejoins;
    kills += r.kills;
    restarts += r.restarts;
    child_faults += r.child_faults;
    ++rep->seeds_run;
    if (!r.violations.empty()) {
      rep->violations.push_back(
          "seed " + std::to_string(seed) + ": " + r.violations[0]);
      std::fprintf(
          stderr,
          "FAIL seed %llu: %s\n  repro: picola_chaos --cluster --seed %llu\n",
          static_cast<unsigned long long>(seed), r.violations[0].c_str(),
          static_cast<unsigned long long>(seed));
      break;
    }
    if (opt.verbose || opt.single_seed)
      std::fprintf(stderr,
                   "seed %llu ok: %.0f ms, reroutes=%llu hedges=%llu "
                   "dups=%llu drains=%llu rejoins=%llu\n",
                   static_cast<unsigned long long>(seed), r.wall_ms,
                   static_cast<unsigned long long>(r.stats.reroutes),
                   static_cast<unsigned long long>(r.stats.hedges),
                   static_cast<unsigned long long>(
                       r.stats.duplicates_suppressed),
                   static_cast<unsigned long long>(r.stats.drains_observed),
                   static_cast<unsigned long long>(r.stats.rejoins));
  }

  rep->faults_fired = kills + child_faults;
  rep->counters["kills"] = static_cast<int64_t>(kills);
  rep->counters["restarts"] = static_cast<int64_t>(restarts);
  rep->counters["reroutes"] = static_cast<int64_t>(reroutes);
  rep->counters["hedges"] = static_cast<int64_t>(hedges);
  rep->counters["duplicates_suppressed"] = static_cast<int64_t>(duplicates);
  rep->counters["drains_observed"] = static_cast<int64_t>(drains);
  rep->counters["rejoins"] = static_cast<int64_t>(rejoins);
  if (!rep->violations.empty()) return 1;

  // A sweep where nothing ever re-routed proves nothing about failover.
  if (seeds.size() > 1 && reroutes == 0) {
    rep->violations.push_back("cluster sweep never observed a re-route");
    std::fprintf(stderr, "FAIL: %s\n", rep->violations.back().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "PASS %zu cluster schedule(s): %llu kills, %llu restarts, "
               "%llu reroutes, %llu hedges, %llu dups suppressed, "
               "%llu drains observed, %llu rejoins, 0 violations\n",
               seeds.size(), static_cast<unsigned long long>(kills),
               static_cast<unsigned long long>(restarts),
               static_cast<unsigned long long>(reroutes),
               static_cast<unsigned long long>(hedges),
               static_cast<unsigned long long>(duplicates),
               static_cast<unsigned long long>(drains),
               static_cast<unsigned long long>(rejoins));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Hidden re-exec entry for --restart: serve with a durable cache (and
  // optionally a persist fault plan) until killed.
  if (argc == 4 && std::strcmp(argv[1], "--child-serve") == 0)
    return run_child_serve(argv[2], std::strtoull(argv[3], nullptr, 10));
  // Hidden re-exec entry for --cluster: one node on fixed ports with a
  // durable cache and the full member list.
  if (argc == 8 && std::strcmp(argv[1], "--child-node") == 0)
    return run_child_node(argv[2], std::atoi(argv[3]), std::atoi(argv[4]),
                          argv[5], argv[6],
                          std::strtoull(argv[7], nullptr, 10));

  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--seeds" && next())
      opt.seeds = std::strtoull(argv[i], nullptr, 10);
    else if (a == "--seed-base" && next())
      opt.seed_base = std::strtoull(argv[i], nullptr, 10);
    else if (a == "--seed" && next())
      opt.single_seed = std::strtoull(argv[i], nullptr, 10);
    else if (a == "--repeat")
      opt.repeat = true;
    else if (a == "--restart")
      opt.restart = true;
    else if (a == "--cluster")
      opt.cluster = true;
    else if (a == "--report" && next())
      opt.report_path = argv[i];
    else if (a == "--verbose")
      opt.verbose = true;
    else {
      std::fprintf(stderr,
                   "usage: picola_chaos [--seeds N] [--seed-base B] "
                   "[--seed S] [--repeat] [--restart] [--cluster] "
                   "[--report out.json] [--verbose]\n");
      return 2;
    }
  }
  if (opt.restart && opt.cluster) {
    std::fprintf(stderr, "--restart and --cluster are exclusive\n");
    return 2;
  }

  const std::vector<std::string> workload = make_workload();

  // Fault-free baseline: the ground truth every faulted run must match.
  ScheduleResult base =
      run_schedule(workload, nullptr, std::nullopt, false);
  if (!base.violations.empty()) {
    std::fprintf(stderr, "FAIL baseline (no faults): %s\n",
                 base.violations[0].c_str());
    return 1;
  }
  std::fprintf(stderr, "baseline: %zu requests ok (%.0f ms)\n",
               base.outcomes.size(), base.wall_ms);

  std::vector<uint64_t> seeds;
  if (opt.single_seed) {
    seeds.push_back(*opt.single_seed);
  } else {
    for (uint64_t s = 0; s < opt.seeds; ++s)
      seeds.push_back(opt.seed_base + s);
  }

  Report rep;
  rep.mode = opt.cluster ? "cluster" : opt.restart ? "restart" : "schedule";
  rep.seed_base = opt.single_seed ? *opt.single_seed : opt.seed_base;
  auto sweep_t0 = std::chrono::steady_clock::now();
  auto finish = [&](int rc) {
    rep.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - sweep_t0)
                      .count();
    if (!opt.report_path.empty() && !write_report(opt.report_path, rep)) {
      std::fprintf(stderr, "cannot write report to %s\n",
                   opt.report_path.c_str());
      return rc ? rc : 2;
    }
    return rc;
  };

  if (opt.restart)
    return finish(run_restart_sweep(opt, workload, base.outcomes, seeds,
                                    &rep));
  if (opt.cluster)
    return finish(run_cluster_sweep(opt, workload, base.outcomes, seeds,
                                    &rep));

  uint64_t total_faults = 0;
  int failures = 0;
  for (uint64_t seed : seeds) {
    // Purity check: re-deriving the plan must give the identical
    // injection schedule.
    uint64_t fp1 = FaultPlan::random(seed).schedule_fingerprint();
    uint64_t fp2 = FaultPlan::random(seed).schedule_fingerprint();
    if (fp1 != fp2) {
      rep.violations.push_back("seed " + std::to_string(seed) +
                               ": schedule fingerprint not reproducible");
      std::fprintf(stderr,
                   "FAIL seed %llu: schedule fingerprint not reproducible\n",
                   static_cast<unsigned long long>(seed));
      return finish(1);
    }

    int rounds = (opt.repeat && opt.single_seed) ? 2 : 1;
    ScheduleResult first;
    ++rep.seeds_run;
    for (int round = 0; round < rounds; ++round) {
      ScheduleResult r = run_schedule(workload, &base.outcomes,
                                      FaultPlan::random(seed), opt.verbose);
      for (const auto& [point, st] : r.fault_stats) total_faults += st.fires;
      if (!r.violations.empty()) {
        rep.violations.push_back("seed " + std::to_string(seed) + ": " +
                                 r.violations[0]);
        std::fprintf(
            stderr,
            "FAIL seed %llu: %s\n  repro: picola_chaos --seed %llu --repeat\n",
            static_cast<unsigned long long>(seed), r.violations[0].c_str(),
            static_cast<unsigned long long>(seed));
        ++failures;
        break;
      }
      if (opt.verbose || opt.single_seed) {
        std::fprintf(stderr, "seed %llu ok: %.0f ms, faults:",
                     static_cast<unsigned long long>(seed), r.wall_ms);
        for (const auto& [point, st] : r.fault_stats)
          if (st.fires)
            std::fprintf(stderr, " %s=%llu", point.c_str(),
                         static_cast<unsigned long long>(st.fires));
        std::fprintf(stderr, "\n");
      }
      if (round == 0) {
        first = std::move(r);
      } else {
        bool same = first.schedule_fp == r.schedule_fp &&
                    first.outcomes.size() == r.outcomes.size();
        for (size_t i = 0; same && i < first.outcomes.size(); ++i)
          same = first.outcomes[i] == r.outcomes[i];
        if (!same) {
          rep.violations.push_back("seed " + std::to_string(seed) +
                                   ": rerun diverged from first run");
          std::fprintf(stderr,
                       "FAIL seed %llu: rerun diverged from first run\n",
                       static_cast<unsigned long long>(seed));
          ++failures;
        } else {
          std::fprintf(stderr,
                       "seed %llu: rerun identical (schedule fp %016llx)\n",
                       static_cast<unsigned long long>(seed),
                       static_cast<unsigned long long>(r.schedule_fp));
        }
      }
    }
    if (failures) break;
  }

  rep.faults_fired = total_faults;
  if (failures) return finish(1);
  std::fprintf(stderr,
               "PASS %zu schedule(s), %llu faults injected, 0 violations\n",
               seeds.size(), static_cast<unsigned long long>(total_faults));
  return finish(0);
}
