// picola_chaos — seeded chaos harness for the TCP encoding service.
//
// Each schedule derives a bounded fault plan from one 64-bit seed
// (fault::FaultPlan::random), installs it process-wide, and drives a
// loopback server (net/server.h) through a fixed workload with the
// resilient client (net/client.h call_with_retry).  Because every
// injected fault is counter-based with a small fires cap, trouble is
// finite and a retrying client must converge; the harness asserts:
//
//   1. every request eventually gets exactly one successful reply
//      (client transport retries + a bounded harness-level retry for
//      injected server-side encode failures),
//   2. replies are bit-identical to a fault-free baseline run
//      (`enc` fingerprint and `cubes` per request),
//   3. pipelined requests come back exactly once, in order, ids intact,
//   4. no schedule outlives its wall cap (hang detector; individual
//      operations are already bounded by client timeouts),
//   5. the injection schedule itself is a pure function of the seed
//      (FaultPlan::schedule_fingerprint agrees across re-derivations,
//      and --repeat verifies a full rerun's outcomes byte for byte).
//
// A failing seed is printed with a one-command repro:
//     picola_chaos --seed <S> --repeat
//
// Usage:
//   picola_chaos [--seeds N] [--seed-base B]   sweep N seeds (default 200)
//   picola_chaos --seed S [--repeat]           one schedule, optionally twice
//   picola_chaos --verbose                     per-schedule plan dumps

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "check/instance_gen.h"
#include "constraints/constraint_io.h"
#include "fault/fault.h"
#include "net/client.h"
#include "net/json.h"
#include "net/server.h"

namespace {

using picola::fault::FaultPlan;
using picola::net::Client;
using picola::net::ClientOptions;
using picola::net::JsonValue;
using picola::net::Server;
using picola::net::ServerOptions;

struct Options {
  uint64_t seeds = 200;
  uint64_t seed_base = 1;
  std::optional<uint64_t> single_seed;
  bool repeat = false;
  bool verbose = false;
};

/// One reply we care about comparing: the encoding fingerprint plus the
/// espresso cube count (the whole observable result of an encode).
struct Outcome {
  std::string enc;
  int64_t cubes = 0;
  bool operator==(const Outcome& o) const {
    return enc == o.enc && cubes == o.cubes;
  }
};

struct ScheduleResult {
  std::vector<Outcome> outcomes;  ///< per request, in workload order
  uint64_t schedule_fp = 0;
  std::map<std::string, FaultPlan::PointStats> fault_stats;
  std::vector<std::string> violations;
  double wall_ms = 0;
};

/// The fixed workload: a handful of deterministic instances, two of them
/// requested twice (cache + in-flight-join paths), all inline so the
/// harness needs no files on disk.
std::vector<std::string> make_workload() {
  picola::check::GeneratorOptions g;
  g.min_symbols = 5;
  g.max_symbols = 9;
  g.max_constraints = 5;
  picola::check::InstanceGenerator gen(42, g);
  std::vector<std::string> cons;
  for (int i = 0; i < 5; ++i)
    cons.push_back(picola::write_constraints(gen.next().set));
  cons.push_back(cons[0]);  // repeat -> cache hit or inflight join
  cons.push_back(cons[1]);
  return cons;
}

JsonValue encode_request(const std::string& con, int64_t id) {
  JsonValue r = JsonValue::make_object();
  r.set("con", JsonValue::make_string(con));
  r.set("id", JsonValue::make_int(id));
  r.set("restarts", JsonValue::make_int(2));
  return r;
}

int64_t int_field(const JsonValue& v, const char* key, int64_t dflt = -1) {
  const JsonValue* f = v.find(key);
  return f && f->is_number() ? f->as_int() : dflt;
}

std::string str_field(const JsonValue& v, const char* key) {
  const JsonValue* f = v.find(key);
  return f && f->is_string() ? f->as_string() : "";
}

ServerOptions server_options() {
  ServerOptions o;
  o.service.num_threads = 2;
  o.service.cache_capacity = 32;
  o.max_inflight = 8;
  o.retry_after_ms = 2;
  return o;
}

ClientOptions client_options(uint64_t seed) {
  ClientOptions c;
  c.connect_timeout_ms = 2000;
  c.io_timeout_ms = 2000;
  c.max_retries = 12;
  c.backoff_base_ms = 1;
  c.backoff_max_ms = 16;
  c.jitter_seed = seed;
  c.breaker_threshold = 4;
  c.breaker_open_ms = 20;
  return c;
}

/// One request to a definitive successful outcome, or a violation.
/// call_with_retry absorbs transport faults; this layer absorbs the
/// bounded injected *server-side* failures (a restart task or allocation
/// made to throw answers `error: encode_failed` — a valid reply, so the
/// client rightly does not retry it).
std::optional<Outcome> run_request(Client& c, const std::string& con,
                                   int64_t id, std::string* why) {
  std::string error;
  for (int attempt = 0; attempt < 10; ++attempt) {
    auto reply = c.call_with_retry(encode_request(con, id), &error);
    if (!reply) continue;  // transport budget spent; next harness attempt
    if (reply->find("error")) continue;  // injected server-side failure
    if (int_field(*reply, "id") != id) {
      *why = "reply id mismatch: want " + std::to_string(id) + " got " +
             std::to_string(int_field(*reply, "id"));
      return std::nullopt;
    }
    Outcome o;
    o.enc = str_field(*reply, "enc");
    o.cubes = int_field(*reply, "cubes");
    if (o.enc.empty()) {
      *why = "reply missing enc fingerprint";
      return std::nullopt;
    }
    return o;
  }
  *why = "request " + std::to_string(id) +
         " failed permanently (last: " + error + ")";
  return std::nullopt;
}

/// Pipelined phase: several requests written back to back, replies
/// collected afterwards.  Replies arrive in completion order and
/// correlate by id — the invariant is exactly one reply per id, each
/// matching the baseline.  A transport fault mid-pipeline kills the
/// connection; the whole batch is idempotent, so the harness reconnects
/// and replays it.
bool run_pipeline(Client& c, uint16_t port,
                  const std::vector<std::string>& cons,
                  const std::vector<Outcome>& want, std::string* why) {
  const int64_t kBase = 1000;
  // A plan tops out at 6 rules x 6 fires = 36 injected kills; each kills
  // at most one batch attempt, so this budget guarantees convergence.
  for (int attempt = 0; attempt < 48; ++attempt) {
    if (!c.connected()) {
      std::string cerr2;
      for (int r = 0; r < 10 && !c.connected(); ++r)
        c.connect("127.0.0.1", port, &cerr2);
      if (!c.connected()) continue;
    }
    bool restart = false;
    std::string error;
    for (size_t i = 0; i < cons.size() && !restart; ++i)
      if (!c.send(encode_request(cons[i], kBase + static_cast<int64_t>(i))
                      .dump(),
                  &error))
        restart = true;
    std::map<int64_t, Outcome> got;
    for (size_t i = 0; i < cons.size() && !restart; ++i) {
      auto payload = c.recv(&error);
      if (!payload) {
        restart = true;
        break;
      }
      auto reply = JsonValue::parse(*payload);
      if (!reply) {
        *why = "pipeline: unparsable reply";
        return false;
      }
      int64_t id = int_field(*reply, "id");
      if (id < kBase || id >= kBase + static_cast<int64_t>(cons.size())) {
        *why = "pipeline: reply with unknown id " + std::to_string(id);
        return false;
      }
      if (reply->find("error")) {
        restart = true;  // bounded injected failure: replay the batch
        break;
      }
      if (got.count(id)) {
        *why = "pipeline: duplicate reply for id " + std::to_string(id);
        return false;
      }
      got[id] = Outcome{str_field(*reply, "enc"), int_field(*reply, "cubes")};
    }
    if (!restart) {
      // Every id answered exactly once (map + count check above), and
      // every answer bit-identical to the fault-free baseline.
      for (size_t i = 0; i < cons.size(); ++i) {
        auto it = got.find(kBase + static_cast<int64_t>(i));
        if (it == got.end()) {
          *why = "pipeline: no reply for slot " + std::to_string(i);
          return false;
        }
        if (!(it->second == want[i])) {
          *why = "pipeline: reply differs from baseline at slot " +
                 std::to_string(i);
          return false;
        }
      }
      return true;
    }
    c.close();  // drop any half-read frame; reconnect next attempt
  }
  *why = "pipeline: batch never completed";
  return false;
}

ScheduleResult run_schedule(const std::vector<std::string>& workload,
                            const std::vector<Outcome>* baseline,
                            std::optional<FaultPlan> plan, bool verbose) {
  ScheduleResult res;
  auto t0 = std::chrono::steady_clock::now();

  Server server(server_options());
  server.start();
  uint16_t port = server.port();

  uint64_t seed = plan ? plan->seed() : 0;
  if (plan) {
    res.schedule_fp = plan->schedule_fingerprint();
    if (verbose) std::fprintf(stderr, "%s\n", plan->describe().c_str());
    picola::fault::install(std::make_shared<FaultPlan>(std::move(*plan)));
  }

  Client client(client_options(seed));
  std::string error;
  bool up = false;
  for (int i = 0; i < 48 && !up; ++i)
    up = client.connect("127.0.0.1", port, &error);
  if (!up) {
    res.violations.push_back("could not connect: " + error);
  } else {
    for (size_t i = 0; i < workload.size(); ++i) {
      std::string why;
      auto o = run_request(client, workload[i], static_cast<int64_t>(i),
                           &why);
      if (!o) {
        res.violations.push_back(why);
        break;
      }
      if (baseline && !((*baseline)[i] == *o))
        res.violations.push_back("request " + std::to_string(i) +
                                 " differs from fault-free baseline");
      res.outcomes.push_back(std::move(*o));
    }
    if (res.violations.empty() && baseline) {
      std::string why;
      // Reconnect for the pipelined phase so it starts clean.
      for (int i = 0; i < 48; ++i)
        if (client.connect("127.0.0.1", port, &error)) break;
      if (!run_pipeline(client, port, workload, *baseline, &why))
        res.violations.push_back(why);
    }
  }

  if (plan) {
    auto installed = picola::fault::current();
    if (installed) res.fault_stats = installed->stats();
    picola::fault::install(nullptr);
  }
  server.stop();  // graceful drain: must answer admitted work and exit

  res.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  if (res.wall_ms > 30'000)
    res.violations.push_back("schedule exceeded 30s wall cap (hang?)");
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--seeds" && next())
      opt.seeds = std::strtoull(argv[i], nullptr, 10);
    else if (a == "--seed-base" && next())
      opt.seed_base = std::strtoull(argv[i], nullptr, 10);
    else if (a == "--seed" && next())
      opt.single_seed = std::strtoull(argv[i], nullptr, 10);
    else if (a == "--repeat")
      opt.repeat = true;
    else if (a == "--verbose")
      opt.verbose = true;
    else {
      std::fprintf(stderr,
                   "usage: picola_chaos [--seeds N] [--seed-base B] "
                   "[--seed S] [--repeat] [--verbose]\n");
      return 2;
    }
  }

  const std::vector<std::string> workload = make_workload();

  // Fault-free baseline: the ground truth every faulted run must match.
  ScheduleResult base =
      run_schedule(workload, nullptr, std::nullopt, false);
  if (!base.violations.empty()) {
    std::fprintf(stderr, "FAIL baseline (no faults): %s\n",
                 base.violations[0].c_str());
    return 1;
  }
  std::fprintf(stderr, "baseline: %zu requests ok (%.0f ms)\n",
               base.outcomes.size(), base.wall_ms);

  std::vector<uint64_t> seeds;
  if (opt.single_seed) {
    seeds.push_back(*opt.single_seed);
  } else {
    for (uint64_t s = 0; s < opt.seeds; ++s)
      seeds.push_back(opt.seed_base + s);
  }

  uint64_t total_faults = 0;
  int failures = 0;
  for (uint64_t seed : seeds) {
    // Purity check: re-deriving the plan must give the identical
    // injection schedule.
    uint64_t fp1 = FaultPlan::random(seed).schedule_fingerprint();
    uint64_t fp2 = FaultPlan::random(seed).schedule_fingerprint();
    if (fp1 != fp2) {
      std::fprintf(stderr,
                   "FAIL seed %llu: schedule fingerprint not reproducible\n",
                   static_cast<unsigned long long>(seed));
      return 1;
    }

    int rounds = (opt.repeat && opt.single_seed) ? 2 : 1;
    ScheduleResult first;
    for (int round = 0; round < rounds; ++round) {
      ScheduleResult r = run_schedule(workload, &base.outcomes,
                                      FaultPlan::random(seed), opt.verbose);
      for (const auto& [point, st] : r.fault_stats) total_faults += st.fires;
      if (!r.violations.empty()) {
        std::fprintf(
            stderr,
            "FAIL seed %llu: %s\n  repro: picola_chaos --seed %llu --repeat\n",
            static_cast<unsigned long long>(seed), r.violations[0].c_str(),
            static_cast<unsigned long long>(seed));
        ++failures;
        break;
      }
      if (opt.verbose || opt.single_seed) {
        std::fprintf(stderr, "seed %llu ok: %.0f ms, faults:",
                     static_cast<unsigned long long>(seed), r.wall_ms);
        for (const auto& [point, st] : r.fault_stats)
          if (st.fires)
            std::fprintf(stderr, " %s=%llu", point.c_str(),
                         static_cast<unsigned long long>(st.fires));
        std::fprintf(stderr, "\n");
      }
      if (round == 0) {
        first = std::move(r);
      } else {
        bool same = first.schedule_fp == r.schedule_fp &&
                    first.outcomes.size() == r.outcomes.size();
        for (size_t i = 0; same && i < first.outcomes.size(); ++i)
          same = first.outcomes[i] == r.outcomes[i];
        if (!same) {
          std::fprintf(stderr,
                       "FAIL seed %llu: rerun diverged from first run\n",
                       static_cast<unsigned long long>(seed));
          ++failures;
        } else {
          std::fprintf(stderr,
                       "seed %llu: rerun identical (schedule fp %016llx)\n",
                       static_cast<unsigned long long>(seed),
                       static_cast<unsigned long long>(r.schedule_fp));
        }
      }
    }
    if (failures) break;
  }

  if (failures) return 1;
  std::fprintf(stderr,
               "PASS %zu schedule(s), %llu faults injected, 0 violations\n",
               seeds.size(), static_cast<unsigned long long>(total_faults));
  return 0;
}
