// Differential fuzz harness (ISSUE: self-check verifier subsystem).
//
// Streams seeded deterministic instances (check/instance_gen.h) through
// picola_encode with PicolaOptions::self_check on — every column and the
// finished run pass the from-scratch verifier — and differential-tests
// small instances against the exact brute-force oracle (check/oracle.h):
//
//  * determinism: the same options reproduce bit-identical codes, with
//    and without random tie-breaking;
//  * the encoder never claims more satisfied constraints than the true
//    optimum, and everything it satisfies is oracle-satisfiable;
//  * a constraint flagged infeasible for one of Classify()'s *sound*
//    reasons (unused-code budget, supercube past nv, exhausted pin
//    budget) is genuinely unsatisfiable under the prefix at flag time
//    (satisfiable_with_prefix); pairwise flags are by design a
//    conservative filter and are exempt;
//  * sampled: espresso-evaluated total cubes never beat the oracle's
//    minimum over all encodings.
//
// --portfolio switches to the portfolio-differential mode (ISSUE:
// encoder portfolio subsystem): every instance runs through the full
// backend portfolio (src/portfolio) with self-check on, must be
// bit-identical across repeated runs and never worse than picola alone,
// and on oracle-sized instances the sat_exact backend's verdict is
// diffed against the brute-force oracle (proven results must hit the
// exact optimum).  The same instances also drive the sweep
// differential: the incremental descending and binary sweeps must
// return verdicts and models bit-identical to scratch re-solving per
// target, and the lazy distinctness encoding must reach the same
// optimum with a verifying encoding.
//
// Failures are shrunk to a minimal reproducer (drop constraints, drop
// members, drop trailing unused symbols) and dumped in .con format.
//
// Usage: picola_fuzz [--seed S] [--iters N] [--max-n N] [--oracle-n N]
//                    [--min-cube-every K] [--dump-dir DIR] [--portfolio]
//                    [--verbose]

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "base/parse_util.h"
#include "check/instance_gen.h"
#include "check/oracle.h"
#include "check/verifier.h"
#include "constraints/constraint_io.h"
#include "constraints/dichotomy.h"
#include "core/picola.h"
#include "eval/constraint_eval.h"
#include "obs/metrics.h"
#include "portfolio/portfolio.h"
#include "sat/encode.h"

namespace picola {
namespace {

struct FuzzOptions {
  uint64_t seed = 1;
  long iters = 1000;
  int max_n = 16;
  int oracle_n = 8;
  long min_cube_every = 64;  ///< espresso-oracle sampling period (0 = off)
  std::string dump_dir = ".";
  bool portfolio_mode = false;  ///< portfolio-differential checks instead
  bool verbose = false;
};

struct FuzzCounters {
  long invariant_checked = 0;
  long oracle_checked = 0;
  long min_cube_eligible = 0;  ///< instances small enough for the espresso oracle
  long min_cube_checked = 0;
  long prefix_checked = 0;  ///< satisfiable_with_prefix differential tests
  long sweep_checked = 0;   ///< incremental-vs-scratch sweep differentials
  long failures = 0;
};

/// The pin budget / static budget / dimension reasons of Classify() are
/// sound individual-unsatisfiability proofs; the pairwise test is a
/// conservative filter.  Recompute which kind fired for `c` at `col`
/// from the final encoding's prefix (the first col columns never change
/// after generation).
bool flag_reason_is_sound(const FaceConstraint& c, const Encoding& enc,
                          int col) {
  const int nv = enc.num_bits;
  int pinned = 0;
  for (int b = 0; b < col; ++b) {
    int v = enc.bit(c.members[0], b);
    bool uniform = true;
    for (int m : c.members)
      if (enc.bit(m, b) != v) { uniform = false; break; }
    if (uniform) ++pinned;
  }
  int free_cols = col - pinned;
  int clog2 = 0;
  while ((1L << clog2) < c.size()) ++clog2;
  int dim = std::max(clog2, free_cols);
  if (dim > nv) return true;
  long global_dc = (1L << nv) - enc.num_symbols;
  if ((1L << dim) - c.size() > global_dc) return true;
  return (nv - dim) - pinned <= 0;
}

/// Portfolio-differential checks for one instance (--portfolio):
/// determinism and the never-worse-than-picola guarantee of the full
/// portfolio, plus the sat_exact-vs-oracle differential on small
/// instances.
std::vector<std::string> check_portfolio_instance(const ConstraintSet& cs,
                                                  int num_bits, uint64_t iter,
                                                  const FuzzOptions& fo,
                                                  FuzzCounters* counters) {
  std::vector<std::string> v;
  PicolaOptions popt;
  popt.num_bits = num_bits;
  popt.self_check = true;  // every backend's output through the verifier
  portfolio::PortfolioOptions all;
  all.backend = portfolio::BackendKind::kPortfolio;
  all.anneal_seed = iter + 1;
  const int kRestarts = 2;

  portfolio::PortfolioResult res;
  try {
    res = portfolio::portfolio_encode(cs, kRestarts, popt, all);
  } catch (const check::SelfCheckError& e) {
    v.push_back(std::string("self-check: ") + e.what());
    return v;
  } catch (const std::exception& e) {
    v.push_back(std::string("unexpected throw: ") + e.what());
    return v;
  }
  if (counters) ++counters->invariant_checked;

  // The whole portfolio must be bit-identical across runs.
  portfolio::PortfolioResult again =
      portfolio::portfolio_encode(cs, kRestarts, popt, all);
  if (again.picola.encoding.codes != res.picola.encoding.codes ||
      again.backend != res.backend || again.total_cubes != res.total_cubes)
    v.push_back("non-deterministic portfolio result");

  // Structurally never worse than picola alone (the picola slots come
  // first in the plan with identical seeds).
  portfolio::PortfolioOptions alone;
  alone.backend = portfolio::BackendKind::kPicola;
  portfolio::PortfolioResult base =
      portfolio::portfolio_encode(cs, kRestarts, popt, alone);
  if (res.total_cubes > base.total_cubes)
    v.push_back("portfolio reached " + std::to_string(res.total_cubes) +
                " cubes, worse than picola alone at " +
                std::to_string(base.total_cubes));

  // sat_exact vs the brute-force oracle on small instances: a proven
  // result must hit the exact optimum, any result must verify.
  if (cs.num_symbols <= fo.oracle_n && cs.size() <= 20 && num_bits <= 8) {
    sat::SatExactOptions so;
    so.num_bits = num_bits;
    try {
      check::OracleResult oracle = check::oracle_solve(cs, num_bits);
      sat::SatExactResult sres = sat::sat_exact_encode(cs, so);
      if (counters) ++counters->oracle_checked;
      if (!sres.feasible) {
        v.push_back("sat backend found no encoding on a feasible instance");
      } else {
        check::VerifyReport rep = check::verify_encoding(cs, sres.encoding);
        if (!rep.ok())
          v.push_back("sat encoding fails verification: " + rep.to_string());
        if (sres.satisfied > oracle.max_satisfied)
          v.push_back("sat backend claims " + std::to_string(sres.satisfied) +
                      " satisfied constraints, oracle optimum is " +
                      std::to_string(oracle.max_satisfied));
        if (sres.proven && sres.satisfied != oracle.max_satisfied)
          v.push_back("sat backend proved " + std::to_string(sres.satisfied) +
                      " satisfied constraints, oracle optimum is " +
                      std::to_string(oracle.max_satisfied));
      }

      // Sweep differential: the incremental modes (descending, binary)
      // must return verdicts and models bit-identical to scratch
      // re-solving per target — the canonical final solve makes the
      // reported encoding a pure function of (CNF, best target), so any
      // divergence in codes (and hence cube counts) is a bug in the
      // assumption machinery or the incremental clause accounting.
      if (counters) ++counters->sweep_checked;
      auto diff_sweep = [&](sat::SweepMode mode, const char* name) {
        sat::SatExactOptions alt = so;
        alt.sweep = mode;
        sat::SatExactResult other = sat::sat_exact_encode(cs, alt);
        if (other.feasible != sres.feasible ||
            other.satisfied != sres.satisfied ||
            other.proven != sres.proven)
          v.push_back(std::string("sweep differential: ") + name +
                      " verdict (feasible=" +
                      std::to_string(other.feasible) + ", satisfied=" +
                      std::to_string(other.satisfied) + ", proven=" +
                      std::to_string(other.proven) +
                      ") diverges from descending (" +
                      std::to_string(sres.feasible) + ", " +
                      std::to_string(sres.satisfied) + ", " +
                      std::to_string(sres.proven) + ")");
        else if (other.feasible &&
                 other.encoding.codes != sres.encoding.codes)
          v.push_back(std::string("sweep differential: ") + name +
                      " model differs from descending despite the "
                      "canonical-solve contract");
      };
      diff_sweep(sat::SweepMode::kScratch, "scratch");
      diff_sweep(sat::SweepMode::kBinary, "binary");

      // The lazy distinctness encoding changes the CNF (and hence may
      // legitimately pick a different optimal model), but verdict and
      // optimum must match and its encoding must verify.
      {
        sat::SatExactOptions lz = so;
        lz.distinct = sat::DistinctEncoding::kLazy;
        sat::SatExactResult lazy = sat::sat_exact_encode(cs, lz);
        if (lazy.feasible != sres.feasible ||
            lazy.satisfied != sres.satisfied || lazy.proven != sres.proven)
          v.push_back("lazy distinctness verdict diverges from difference");
        else if (lazy.feasible &&
                 !check::verify_encoding(cs, lazy.encoding).ok())
          v.push_back("lazy distinctness encoding fails verification");
      }
    } catch (const std::invalid_argument&) {
      // oracle or reduction over budget for this nv; skip the differential
    }
  }
  return v;
}

/// All checks for one instance.  Returns the violations found (empty =
/// clean).  `counters` may be null (the shrinker re-runs this predicate
/// without counting).
std::vector<std::string> check_instance(const ConstraintSet& cs, int num_bits,
                                        uint64_t iter, const FuzzOptions& fo,
                                        FuzzCounters* counters) {
  if (fo.portfolio_mode)
    return check_portfolio_instance(cs, num_bits, iter, fo, counters);
  std::vector<std::string> v;
  PicolaOptions opt;
  opt.num_bits = num_bits;
  opt.self_check = true;

  PicolaResult res;
  try {
    res = picola_encode(cs, opt);
  } catch (const check::SelfCheckError& e) {
    v.push_back(std::string("self-check: ") + e.what());
    return v;
  } catch (const std::exception& e) {
    v.push_back(std::string("unexpected throw: ") + e.what());
    return v;
  }
  if (counters) ++counters->invariant_checked;
  const Encoding& enc = res.encoding;
  const int n = cs.num_symbols;
  const int nv = enc.num_bits;

  // Determinism, deterministic and randomized tie-breaking alike.
  if (picola_encode(cs, opt).encoding.codes != enc.codes)
    v.push_back("non-deterministic result (tie_break_seed = 0)");
  {
    PicolaOptions r = opt;
    r.tie_break_seed = iter * 2 + 1;
    if (picola_encode(cs, r).encoding.codes !=
        picola_encode(cs, r).encoding.codes)
      v.push_back("non-deterministic result (tie_break_seed = " +
                  std::to_string(r.tie_break_seed) + ")");
  }

  // Sound infeasibility flags must hold up against the exact
  // prefix-conditioned satisfiability test (cost-capped).
  for (auto [col, row] : res.stats.infeasible_events) {
    if (row >= cs.size()) continue;  // guide rows re-derive from originals
    const FaceConstraint& c = cs.constraints[static_cast<size_t>(row)];
    if (!flag_reason_is_sound(c, enc, col)) continue;
    long cost = 1;
    for (int i = 1; i < c.size() && cost <= 500'000; ++i)
      cost *= 1L << (nv - col);
    if (cost > 500'000 || nv > 20) continue;
    std::vector<uint32_t> prefixes(enc.codes);
    uint32_t mask = (uint32_t{1} << col) - 1;
    for (auto& p : prefixes) p &= mask;
    if (counters) ++counters->prefix_checked;
    if (check::satisfiable_with_prefix(c, n, nv, prefixes, col))
      v.push_back("constraint " + std::to_string(row) +
                  " flagged infeasible at column " + std::to_string(col) +
                  " but is still satisfiable under that prefix");
  }

  // Exact-oracle differential for small instances.
  if (n <= fo.oracle_n && cs.size() <= 64) {
    // Sample every K-th *eligible* instance (n <= 5 keeps the
    // espresso-per-candidate cost sane); the shrinker (counters == null)
    // skips this check.
    bool want_cubes = fo.min_cube_every > 0 && n <= 5 && counters &&
                      counters->min_cube_eligible++ % fo.min_cube_every == 0;
    check::OracleOptions oo;
    oo.min_cubes = want_cubes;
    try {
      check::OracleResult oracle = check::oracle_solve(cs, nv, oo);
      if (counters) ++counters->oracle_checked;
      int satisfied = 0;
      for (int k = 0; k < cs.size(); ++k) {
        bool sat =
            constraint_satisfied(cs.constraints[static_cast<size_t>(k)], enc);
        if (sat) ++satisfied;
        if (sat && !(oracle.satisfiable_mask >> k & 1))
          v.push_back("constraint " + std::to_string(k) +
                      " satisfied by the encoder but oracle-unsatisfiable");
      }
      if (satisfied != res.stats.satisfied_constraints)
        v.push_back("stats report " +
                    std::to_string(res.stats.satisfied_constraints) +
                    " satisfied constraints, re-derived " +
                    std::to_string(satisfied));
      if (satisfied > oracle.max_satisfied)
        v.push_back("encoder satisfied " + std::to_string(satisfied) +
                    " constraints, oracle optimum is " +
                    std::to_string(oracle.max_satisfied));
      // Before any column exists the pairwise filter cannot fire (nothing
      // is satisfied yet), so a column-0 flag claims plain
      // unsatisfiability — the oracle must agree.
      for (auto [col, row] : res.stats.infeasible_events)
        if (col == 0 && row < cs.size() &&
            (oracle.satisfiable_mask >> row & 1))
          v.push_back("constraint " + std::to_string(row) +
                      " flagged infeasible before column 0 but is "
                      "oracle-satisfiable");
      if (want_cubes) {
        if (counters) ++counters->min_cube_checked;
        int cubes = evaluate_constraints(cs, enc).total_cubes;
        if (cubes < oracle.min_total_cubes)
          v.push_back("encoder reached " + std::to_string(cubes) +
                      " cubes, below the oracle minimum " +
                      std::to_string(oracle.min_total_cubes));
      }
    } catch (const std::invalid_argument&) {
      // search space over budget for this nv; skip the differential
    }
  }
  return v;
}

/// Greedy shrink: keep applying the first reduction that still fails.
ConstraintSet shrink(ConstraintSet cs, int num_bits, uint64_t iter,
                     const FuzzOptions& fo) {
  auto still_fails = [&](const ConstraintSet& candidate) {
    return !candidate.validate().empty()
               ? false
               : !check_instance(candidate, num_bits, iter, fo, nullptr)
                      .empty();
  };
  bool reduced = true;
  while (reduced) {
    reduced = false;
    for (size_t i = 0; i < cs.constraints.size() && !reduced; ++i) {
      ConstraintSet c = cs;
      c.constraints.erase(c.constraints.begin() + static_cast<long>(i));
      if (!c.constraints.empty() && still_fails(c)) {
        cs = std::move(c);
        reduced = true;
      }
    }
    for (size_t i = 0; i < cs.constraints.size() && !reduced; ++i) {
      if (cs.constraints[i].size() <= 2) continue;
      for (size_t j = 0; j < cs.constraints[i].members.size() && !reduced;
           ++j) {
        ConstraintSet c = cs;
        c.constraints[i].members.erase(c.constraints[i].members.begin() +
                                       static_cast<long>(j));
        if (still_fails(c)) {
          cs = std::move(c);
          reduced = true;
        }
      }
    }
    // Drop the top symbol when no constraint uses it.
    while (cs.num_symbols > 2 && !reduced) {
      int top = cs.num_symbols - 1;
      bool used = false;
      for (const auto& c : cs.constraints) used |= c.contains(top);
      if (used) break;
      ConstraintSet c = cs;
      c.num_symbols = top;
      if (!still_fails(c)) break;
      cs = std::move(c);
      reduced = true;
    }
  }
  return cs;
}

int fuzz_main(const FuzzOptions& fo) {
  check::GeneratorOptions big;
  big.max_symbols = fo.max_n;
  check::InstanceGenerator gen(fo.seed, big);
  // A second stream dense in oracle-sized instances so the differential
  // check gets real coverage even with a large --max-n.
  check::GeneratorOptions small;
  small.max_symbols = std::max(small.min_symbols, fo.oracle_n);
  check::InstanceGenerator small_gen(fo.seed ^ 0x5DEECE66DULL, small);

  FuzzCounters counters;
  for (long i = 0; i < fo.iters; ++i) {
    auto inst = i % 4 == 3 ? small_gen.next() : gen.next();
    std::vector<std::string> violations = check_instance(
        inst.set, inst.num_bits, static_cast<uint64_t>(i), fo, &counters);
    if (violations.empty()) {
      if (fo.verbose)
        std::cerr << "iter " << i << " ok (" << inst.family << ", n="
                  << inst.set.num_symbols << ", " << inst.set.size()
                  << " constraints)\n";
      continue;
    }
    ++counters.failures;
    std::cerr << "FAIL iter " << i << " (" << inst.family << ", seed "
              << fo.seed << "):\n";
    for (const auto& v : violations) std::cerr << "  " << v << "\n";
    // One-command repro: the generator streams are a pure function of
    // (seed, max-n, oracle-n), so replaying up to this iteration with the
    // same knobs hits the identical instance.
    std::cerr << "  repro: picola_fuzz --seed " << fo.seed << " --iters "
              << (i + 1) << " --max-n " << fo.max_n << " --oracle-n "
              << fo.oracle_n << " --min-cube-every " << fo.min_cube_every
              << (fo.portfolio_mode ? " --portfolio" : "") << "\n";
    ConstraintSet minimal =
        shrink(inst.set, inst.num_bits, static_cast<uint64_t>(i), fo);
    std::string path = fo.dump_dir + "/fuzz_fail_seed" +
                       std::to_string(fo.seed) + "_iter" + std::to_string(i) +
                       ".con";
    std::ofstream out(path);
    if (out) {
      out << "# picola_fuzz --seed " << fo.seed << ", iteration " << i
          << " (" << inst.family << " family, num_bits=" << inst.num_bits
          << ")\n";
      for (const auto& v : violations) out << "# " << v << "\n";
      out << write_constraints(minimal);
      std::cerr << "  minimal repro (" << minimal.num_symbols << " symbols, "
                << minimal.size() << " constraints) written to " << path
                << "\n";
    }
  }

  auto& reg = obs::MetricsRegistry::global();
  std::cout << "picola_fuzz" << (fo.portfolio_mode ? " (portfolio)" : "")
            << ": " << fo.iters << " iterations, "
            << counters.invariant_checked << " invariant-checked, "
            << counters.oracle_checked << " oracle-checked, "
            << counters.prefix_checked << " prefix-differential, "
            << counters.sweep_checked << " sweep-differential, "
            << counters.min_cube_checked << " min-cube-checked, "
            << counters.failures << " failures, check/violations="
            << reg.counter("check/violations").value() << "\n";
  return counters.failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace picola

int main(int argc, char** argv) {
  picola::FuzzOptions fo;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto value = [&]() -> std::optional<long> {
      if (i + 1 >= argc) return std::nullopt;
      auto v = picola::parse_int(argv[++i]);
      if (!v) return std::nullopt;
      return *v;
    };
    std::optional<long> v;
    if (a == "--seed" && (v = value()) && *v >= 0)
      fo.seed = static_cast<uint64_t>(*v);
    else if (a == "--iters" && (v = value()) && *v >= 1)
      fo.iters = *v;
    else if (a == "--max-n" && (v = value()) && *v >= 3)
      fo.max_n = static_cast<int>(std::min<long>(*v, 1 << 20));
    else if (a == "--oracle-n" && (v = value()) && *v >= 2)
      fo.oracle_n = static_cast<int>(std::min<long>(*v, 12));
    else if (a == "--min-cube-every" && (v = value()) && *v >= 0)
      fo.min_cube_every = *v;
    else if (a == "--dump-dir" && i + 1 < argc)
      fo.dump_dir = argv[++i];
    else if (a == "--portfolio")
      fo.portfolio_mode = true;
    else if (a == "--verbose")
      fo.verbose = true;
    else {
      std::cerr << "usage: picola_fuzz [--seed S] [--iters N] [--max-n N] "
                   "[--oracle-n N] [--min-cube-every K] [--dump-dir DIR] "
                   "[--portfolio] [--verbose]\n";
      return 2;
    }
  }
  return picola::fuzz_main(fo);
}
