// The `picola` command-line tool; see src/cli/cli.h for the subcommands
// (encode, batch, serve, assign, minimize, encode-input, info).  The
// batch/serve front-ends drive the concurrent encoding service
// (src/service, docs/SERVICE.md); serve reads its requests from stdin.

#include "cli/cli.h"

int main(int argc, char** argv) { return picola::cli::main_entry(argc, argv); }
