// The `picola` command-line tool; see src/cli/cli.h for the subcommands.

#include "cli/cli.h"

int main(int argc, char** argv) { return picola::cli::main_entry(argc, argv); }
