// Code-length trade-off sweep (the paper's §1 motivation): as the code
// length grows from the minimum, more face constraints fit and the
// constraint-implementation cube count falls — but every extra bit widens
// the PLA.  Conventional full-satisfaction flows pay whatever length the
// embedding needs; the partial problem fixes length = minimum and accepts
// violations.  For each machine this bench sweeps PICOLA from the minimum
// length to minimum+3 and reports the full-satisfaction length for
// comparison.

#include <cstdio>
#include <string>

#include "constraints/derive.h"
#include "core/picola.h"
#include "encoders/full_satisfaction.h"
#include "eval/constraint_eval.h"
#include "kiss/benchmarks.h"

using namespace picola;

int main() {
  const std::vector<std::string> names = {"bbara",   "dk16", "donfile",
                                          "ex2",     "keyb", "kirkman",
                                          "s820",    "styr", "tbk"};
  std::printf("Cube count vs code length (PICOLA), and the length a greedy\n"
              "face embedder needs to satisfy everything:\n\n");
  std::printf("%-10s %5s | %8s %8s %8s %8s | %10s\n", "FSM", "nv0", "nv0",
              "nv0+1", "nv0+2", "nv0+3", "full-sat nv");
  for (const std::string& name : names) {
    Fsm fsm = make_benchmark(name);
    DerivedConstraints d = derive_face_constraints(fsm);
    int nv0 = Encoding::min_bits(fsm.num_states());
    std::printf("%-10s %5d |", name.c_str(), nv0);
    for (int extra = 0; extra < 4; ++extra) {
      PicolaOptions o;
      o.num_bits = nv0 + extra;
      Encoding e = picola_encode(d.set, o).encoding;
      std::printf(" %8d", evaluate_constraints(d.set, e).total_cubes);
    }
    FullSatisfactionOptions fso;
    fso.max_bits = 12;  // the greedy embedder gets impractical beyond this
    FullSatisfactionResult fs = satisfy_all_constraints(d.set, fso);
    if (fs.success)
      std::printf(" | %10d\n", fs.bits_needed);
    else
      std::printf(" | %10s\n", ">12");
    std::fflush(stdout);
  }
  std::printf("\n(cubes at full satisfaction = number of constraints; the\n"
              "question is what the extra code bits cost in PLA width.)\n");
  return 0;
}
