// Per-backend comparison of the encoder portfolio (src/portfolio).
//
// Workload: the FULL Table I input-encoding suite (IWLS'93-profile
// reconstructions — including the big instances: tbk at 106
// constraints, planet at 48 states, scf at 121) plus deterministic
// adversarial instances from every generator family
// (check/instance_gen.h: random, nested, packing, overlap).  The old
// n <= 32 cap is gone: the difference distinctness encoding is
// polynomial in n and the at-least-t sweep is incremental, so the sat
// column finishes in seconds even on scf.  Every problem runs through
// each backend alone — picola, sat_exact (conflict-budgeted), anneal —
// and through the full portfolio; the table and BENCH_portfolio.json
// record per-backend wall time, cube counts, code length, win rates,
// and the result of the never-worse-than-picola gate.
//
// Flags:
//   --table1-full   Table I suite only (skip the generator families) —
//                   the CI smoke configuration.
//   --timeout-ms N  per backend-run watchdog: cancels the run through
//                   the cooperative CancelToken after N ms and scores
//                   it "t/o" (0 = no watchdog, the default).
//
// The gate is the bench's pass/fail: on every problem where both
// finished, the portfolio's cube count must be <= picola-alone's (the
// portfolio plan runs the picola slots first with identical seeds, so
// anything else is a reduction bug).  Exit code 1 on violation.

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "check/instance_gen.h"
#include "constraints/derive.h"
#include "eval/metrics.h"
#include "kiss/benchmarks.h"
#include "portfolio/portfolio.h"

using namespace picola;

namespace {

constexpr int kRestarts = 4;
/// Conflict budget of the sat backend slots: deterministic and small
/// enough that big Table I instances stay in bench-scale time (tbk, the
/// hardest, answers identically at 2k and 5k conflicts per call).
constexpr long kSatConflicts = 2'000;

struct Problem {
  std::string name;
  ConstraintSet set;
};

std::vector<Problem> make_workload(bool table1_only) {
  std::vector<Problem> problems;
  for (const std::string& name : table1_benchmarks()) {
    Problem p;
    p.name = name;
    p.set = derive_face_constraints(make_benchmark(name)).set;
    if (p.set.num_symbols < 2 || p.set.size() == 0) continue;
    problems.push_back(std::move(p));
  }
  if (table1_only) return problems;
  // Three instances per adversarial family, deterministic stream.
  check::GeneratorOptions g;
  g.min_symbols = 8;
  g.max_symbols = 14;
  g.max_constraints = 8;
  g.max_extra_bits = 0;
  check::InstanceGenerator gen(20260808, g);
  for (int i = 0; i < 12; ++i) {
    auto inst = gen.next();
    Problem p;
    p.name = inst.family + "#" + std::to_string(inst.index);
    p.set = std::move(inst.set);
    problems.push_back(std::move(p));
  }
  return problems;
}

struct BackendRun {
  double ms = 0;
  long cubes = -1;  ///< -1 = no encoding produced
  int bits = 0;
  bool ok = false;
  bool timed_out = false;  ///< the --timeout-ms watchdog fired
};

struct Row {
  std::string name;
  int n = 0;
  BackendRun runs[4];  ///< indexed like kBackends
  portfolio::BackendKind winner = portfolio::BackendKind::kPicola;
};

constexpr portfolio::BackendKind kBackends[4] = {
    portfolio::BackendKind::kPicola, portfolio::BackendKind::kSat,
    portfolio::BackendKind::kAnneal, portfolio::BackendKind::kPortfolio};

BackendRun run_backend(const ConstraintSet& cs, portfolio::BackendKind kind,
                       long timeout_ms) {
  BackendRun r;
  portfolio::PortfolioOptions fopt;
  fopt.backend = kind;
  fopt.sat_max_conflicts = kSatConflicts;
  PicolaOptions popt;
  auto token = std::make_shared<CancelToken>();
  popt.cancel = token;

  std::mutex mu;
  std::condition_variable cv;
  bool run_done = false;
  std::thread watchdog;
  if (timeout_ms > 0)
    watchdog = std::thread([&] {
      std::unique_lock<std::mutex> lock(mu);
      if (!cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       [&] { return run_done; }))
        token->cancel();
    });

  Stopwatch sw;
  try {
    portfolio::PortfolioResult res =
        portfolio::portfolio_encode(cs, kRestarts, popt, fopt);
    r.cubes = res.total_cubes;
    r.bits = res.picola.encoding.num_bits;
    r.ok = true;
  } catch (const CancelledError&) {
    r.timed_out = true;
  } catch (const std::exception&) {
    // e.g. the sat backend alone exhausting its conflict budget — a
    // legitimate outcome, scored as "no result".
  }
  r.ms = sw.elapsed_ms();
  if (watchdog.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu);
      run_done = true;
    }
    cv.notify_all();
    watchdog.join();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool table1_only = false;
  long timeout_ms = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--table1-full") == 0) {
      table1_only = true;
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
      timeout_ms = std::atol(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: portfolio_bench [--table1-full] [--timeout-ms N]\n");
      return 2;
    }
  }

  std::vector<Problem> problems = make_workload(table1_only);
  std::vector<Row> rows;
  int wins[4] = {0, 0, 0, 0};
  int gate_violations = 0;

  std::printf("portfolio bench: %zu problems, %d restarts, sat budget %ld "
              "conflicts%s\n\n",
              problems.size(), kRestarts, kSatConflicts,
              table1_only ? ", Table I only" : "");
  std::printf("%-12s %4s | %9s %9s %9s %9s | %6s\n", "problem", "n",
              "picola", "sat", "anneal", "portfolio", "winner");
  std::printf("%.*s\n", 78,
              "------------------------------------------------------------"
              "------------------");

  for (const Problem& p : problems) {
    Row row;
    row.name = p.name;
    row.n = p.set.num_symbols;
    for (int b = 0; b < 4; ++b)
      row.runs[b] = run_backend(p.set, kBackends[b], timeout_ms);

    // The portfolio's winning backend, re-derived from the single-backend
    // cube counts with the plan-order tie-break (picola, sat, anneal).
    const BackendRun& port = row.runs[3];
    row.winner = portfolio::BackendKind::kPicola;
    for (int b = 0; b < 3; ++b)
      if (row.runs[b].ok && port.ok && row.runs[b].cubes == port.cubes) {
        row.winner = kBackends[b];
        break;
      }
    for (int b = 0; b < 3; ++b)
      if (kBackends[b] == row.winner) ++wins[b];

    const BackendRun& alone = row.runs[0];
    if (alone.ok && port.ok && port.cubes > alone.cubes) {
      ++gate_violations;
      std::printf("GATE VIOLATION: %s portfolio %ld cubes > picola %ld\n",
                  p.name.c_str(), port.cubes, alone.cubes);
    }

    auto cell = [](const BackendRun& r, char* buf, size_t len) {
      if (r.ok)
        std::snprintf(buf, len, "%ld/%.0fms", r.cubes, r.ms);
      else
        std::snprintf(buf, len, "%s/%.0fms", r.timed_out ? "t/o" : "-", r.ms);
    };
    char c0[32], c1[32], c2[32], c3[32];
    cell(row.runs[0], c0, sizeof c0);
    cell(row.runs[1], c1, sizeof c1);
    cell(row.runs[2], c2, sizeof c2);
    cell(row.runs[3], c3, sizeof c3);
    std::printf("%-12s %4d | %9s %9s %9s %9s | %6s\n", p.name.c_str(), row.n,
                c0, c1, c2, c3, portfolio::backend_kind_name(row.winner));
    rows.push_back(std::move(row));
  }

  const double total = static_cast<double>(rows.size());
  std::printf("\nwin rate: picola %.0f%%, sat %.0f%%, anneal %.0f%%\n",
              100.0 * wins[0] / total, 100.0 * wins[1] / total,
              100.0 * wins[2] / total);
  std::printf("never-worse-than-picola gate: %s\n",
              gate_violations == 0 ? "PASS" : "FAIL");

  FILE* f = std::fopen("BENCH_portfolio.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write BENCH_portfolio.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\"problems\":%zu,\"restarts\":%d,\"sat_max_conflicts\":%ld,"
               "\"table1_full\":%s,\"timeout_ms\":%ld,\"rows\":[",
               rows.size(), kRestarts, kSatConflicts,
               table1_only ? "true" : "false", timeout_ms);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f, "%s{\"name\":\"%s\",\"n\":%d,\"winner\":\"%s\"",
                 i ? "," : "", r.name.c_str(), r.n,
                 portfolio::backend_kind_name(r.winner));
    for (int b = 0; b < 4; ++b) {
      const BackendRun& br = r.runs[b];
      std::fprintf(f,
                   ",\"%s\":{\"ms\":%.3f,\"cubes\":%ld,\"bits\":%d,"
                   "\"feasible\":%s,\"timed_out\":%s}",
                   portfolio::backend_kind_name(kBackends[b]), br.ms, br.cubes,
                   br.bits, br.ok ? "true" : "false",
                   br.timed_out ? "true" : "false");
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f,
               "],\"win_rate\":{\"picola\":%.3f,\"sat\":%.3f,\"anneal\":%.3f},"
               "\"gate_never_worse_than_picola\":\"%s\"}\n",
               wins[0] / total, wins[1] / total, wins[2] / total,
               gate_violations == 0 ? "pass" : "fail");
  std::fclose(f);
  std::printf("wrote BENCH_portfolio.json\n");
  return gate_violations == 0 ? 0 : 1;
}
