// Extended encoder comparison (beyond the paper's tables): every encoder in
// the library on every Table I problem, reporting satisfied constraints,
// satisfied seed dichotomies and the paper's cube metric.  The exact
// encoder runs as an oracle on the problems small enough for it.

#include <cstdio>
#include <optional>
#include <string>

#include "constraints/derive.h"
#include "core/picola.h"
#include "encoders/annealing.h"
#include "encoders/enc_like.h"
#include "encoders/exact.h"
#include "encoders/nova_like.h"
#include "encoders/trivial.h"
#include "eval/constraint_eval.h"
#include "eval/metrics.h"
#include "kiss/benchmarks.h"

using namespace picola;

namespace {

struct Entry {
  const char* name;
  long cubes = 0;
  long satisfied = 0;
  long dichotomies = 0;
  double ms = 0;
};

}  // namespace

int main() {
  Entry entries[] = {{"picola"},  {"picola-x8"},  {"nova-like"},
                     {"enc-like"}, {"anneal"},     {"gray"},
                     {"sequential"}, {"random"}};
  long exact_cubes = 0;
  int exact_solved = 0;
  long picola_on_exact = 0;

  std::printf("Encoder comparison over the %zu Table I problems\n",
              table1_benchmarks().size());
  for (const std::string& name : table1_benchmarks()) {
    Fsm fsm = make_benchmark(name);
    DerivedConstraints d = derive_face_constraints(fsm);
    const ConstraintSet& cs = d.set;
    const int n = cs.num_symbols;

    for (Entry& e : entries) {
      Stopwatch sw;
      Encoding enc;
      if (std::string(e.name) == "picola")
        enc = picola_encode(cs).encoding;
      else if (std::string(e.name) == "picola-x8")
        enc = picola_encode_best(cs, 8).encoding;
      else if (std::string(e.name) == "nova-like")
        enc = nova_like_encode(cs).encoding;
      else if (std::string(e.name) == "enc-like")
        enc = enc_like_encode(cs).encoding;
      else if (std::string(e.name) == "anneal")
        enc = annealing_encode(cs).encoding;
      else if (std::string(e.name) == "gray")
        enc = gray_encoding(n);
      else if (std::string(e.name) == "sequential")
        enc = sequential_encoding(n);
      else
        enc = random_encoding(n, 12345);
      e.ms += sw.elapsed_ms();
      EncodingQuality q = encoding_quality(cs, enc);
      e.cubes += evaluate_constraints(cs, enc).total_cubes;
      e.satisfied += q.satisfied_constraints;
      e.dichotomies += q.satisfied_dichotomies;
    }

    // Exact oracle on the tiny problems.
    if (n <= 8) {
      ExactResult ex = exact_encode(cs);
      exact_cubes += ex.best_cost;
      ++exact_solved;
      picola_on_exact +=
          evaluate_constraints(cs, picola_encode(cs).encoding).total_cubes;
    }
  }

  std::printf("\n%-12s %10s %12s %14s %10s\n", "encoder", "cubes",
              "satisfied", "dichotomies", "ms");
  for (const Entry& e : entries)
    std::printf("%-12s %10ld %12ld %14ld %10.1f\n", e.name, e.cubes,
                e.satisfied, e.dichotomies, e.ms);
  std::printf("\nExact oracle on the %d problems with <= 8 symbols: "
              "optimum %ld cubes, PICOLA %ld\n",
              exact_solved, exact_cubes, picola_on_exact);
  return 0;
}
