// Ablation of PICOLA's design choices (DESIGN.md §7): guide constraints,
// pairwise infeasibility classification, cost-function weighting, and the
// column termination rule.  Reports the total constraint-implementation
// cube count per variant on a representative subset of the Table I
// problems.

#include <cstdio>
#include <string>
#include <vector>

#include "constraints/derive.h"
#include "core/picola.h"
#include "eval/constraint_eval.h"
#include "kiss/benchmarks.h"

using namespace picola;

namespace {

struct Variant {
  const char* name;
  PicolaOptions opt;
};

std::vector<Variant> variants() {
  std::vector<Variant> v;
  v.push_back({"default", {}});
  {
    PicolaOptions o;
    o.use_guides = false;
    v.push_back({"no-guides", o});
  }
  {
    PicolaOptions o;
    o.use_classify = false;
    v.push_back({"no-classify", o});
  }
  {
    PicolaOptions o;
    o.greedy_continue = false;
    v.push_back({"stop-at-valid", o});
  }
  {
    // The ENC objective: plain dichotomy counting, none of the paper's
    // machinery.
    PicolaOptions o;
    o.unweighted = true;
    o.use_guides = false;
    o.use_classify = false;
    v.push_back({"enc-style", o});
  }
  {
    // Portability of the guide concept (paper §5): the same ENC-style
    // objective with dynamic guides switched back on.
    PicolaOptions o;
    o.unweighted = true;
    v.push_back({"enc+guides", o});
  }
  return v;
}

}  // namespace

int main() {
  const std::vector<std::string> names = {
      "bbara", "cse",  "dk16", "donfile", "ex2",  "keyb", "kirkman",
      "s1",    "sand", "styr", "planet",  "s820", "scf",  "tbk"};
  auto vs = variants();

  std::printf("PICOLA ablation: total constraint-implementation cubes\n");
  std::printf("%-10s", "FSM");
  for (const auto& v : vs) std::printf(" %13s", v.name);
  std::printf("\n");

  std::vector<long> totals(vs.size(), 0);
  for (const auto& name : names) {
    Fsm fsm = make_benchmark(name);
    DerivedConstraints d = derive_face_constraints(fsm);
    std::printf("%-10s", name.c_str());
    for (size_t i = 0; i < vs.size(); ++i) {
      Encoding e = picola_encode(d.set, vs[i].opt).encoding;
      int cubes = evaluate_constraints(d.set, e).total_cubes;
      totals[i] += cubes;
      std::printf(" %13d", cubes);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("%-10s", "total");
  for (long t : totals) std::printf(" %13ld", t);
  std::printf("\n");
  return 0;
}
