// Cluster serving throughput: 1, 2 and 4 in-process nodes behind the
// cluster-aware client (net/cluster.h), driven by 4 closed-loop client
// threads (each with its own ClusterClient and its own backend lanes).
// Two passes per cluster size — cold (every job computed on its ring
// owner) and replay (same instances again: answered by the owner's
// result cache) — plus a failover pass on the 4-node cluster with one
// node stopped, measuring throughput while a quarter of the keyspace
// re-routes (peer peeks at the dead owner bounded by peer_timeout_ms).
//
// Results print as a table and land in BENCH_cluster.json.  With
// --check the run gates on the scaling contract: 4-node COLD req/s
// strictly above 1-node cold req/s.  Each node is a fixed deployment
// unit — 2 encode workers, max_inflight 2, overload shedding with a
// 20ms retry floor — and every encode carries a deterministic 5ms/task
// stall (a kDelay fault rule on service/restart_task, standing in for
// the io/solver waits of a production-sized job) so a job's cost is
// latency, not host CPU.  Capacity therefore scales with nodes on ANY
// host, single-core CI included: one node runs 2 stalls at a time and
// sheds the rest of an 8-client burst into retry floors, a 4-node ring
// runs 8.  The cold pass is all distinct instances, so it measures that
// capacity; replay hits the cache (no stall, no worker) and is bounded
// by closed-loop syscall latency instead, which no amount of nodes
// improves — it is reported but not gated.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/problem_io.h"
#include "check/instance_gen.h"
#include "constraints/constraint_io.h"
#include "eval/metrics.h"
#include "fault/fault.h"
#include "net/cluster.h"
#include "net/json.h"
#include "net/server.h"
#include "service/job.h"

using namespace picola;
using namespace picola::net;

namespace {

constexpr int kClientThreads = 8;
constexpr int kRequestsPerThread = 25;
// One distinct instance per request: the cold pass must be all encodes.
constexpr int kInstances = kClientThreads * kRequestsPerThread;
constexpr int kRestarts = 2;
constexpr int kTaskStallMs = 5;  ///< injected per-task latency (see header)

std::vector<std::string> make_instance_pool() {
  check::GeneratorOptions g;
  g.min_symbols = 10;
  g.max_symbols = 18;
  g.max_constraints = 6;
  check::InstanceGenerator gen(42, g);
  std::vector<std::string> pool;
  for (int i = 0; i < kInstances; ++i)
    pool.push_back(write_constraints(gen.next().set));
  return pool;
}

uint16_t free_port() {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  socklen_t len = sizeof addr;
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  close(fd);
  return ntohs(addr.sin_port);
}

struct Cluster {
  std::vector<std::unique_ptr<Server>> servers;
  std::vector<ClusterMember> members;
};

/// `n` loopback nodes, each a full deployment unit (2 worker threads),
/// wired to each other for peer cache forwarding when n > 1.
Cluster make_cluster(int n) {
  Cluster c;
  for (int i = 0; i < n; ++i)
    c.members.push_back(ClusterMember{"127.0.0.1", free_port()});
  for (int i = 0; i < n; ++i) {
    ServerOptions o;
    o.port = c.members[static_cast<size_t>(i)].port;
    // One deployment unit: admission matches the worker pool, overload
    // sheds with a real retry floor.  Capacity must come from nodes.
    o.max_inflight = 2;
    o.retry_after_ms = 20;
    o.service.num_threads = 2;
    o.service.cache_capacity = 4096;
    if (n > 1) {
      o.peers = c.members;
      o.self = c.members[static_cast<size_t>(i)].name();
      o.peer_timeout_ms = 50;  // a dead peer must not stall the pass
    }
    c.servers.push_back(std::make_unique<Server>(o));
    c.servers.back()->start();
  }
  return c;
}

struct BenchPass {
  double elapsed_ms = 0;
  long ok = 0;
  long errors = 0;
  uint64_t reroutes = 0;
  uint64_t hedges = 0;
  uint64_t duplicates = 0;

  double req_per_sec() const {
    return elapsed_ms > 0
               ? 1000.0 * static_cast<double>(ok + errors) / elapsed_ms
               : 0;
  }
};

/// One closed-loop pass: kClientThreads threads, each with its own
/// ClusterClient, routing every request by its content key.
BenchPass run_pass(const std::vector<ClusterMember>& members,
                   const std::vector<std::string>& pool,
                   const std::vector<uint64_t>& keys, int hedge_ms) {
  BenchPass total;
  std::vector<BenchPass> per_thread(kClientThreads);
  Stopwatch sw;
  std::vector<std::thread> threads;
  for (int t = 0; t < kClientThreads; ++t) {
    threads.emplace_back([&, t] {
      BenchPass& mine = per_thread[static_cast<size_t>(t)];
      ClusterOptions co;
      co.members = members;
      co.client.connect_timeout_ms = 500;
      co.breaker.threshold = 2;
      co.breaker.open_ms = 100;
      co.backoff_base_ms = 1;
      co.backoff_max_ms = 10;
      co.seed = static_cast<uint64_t>(t) + 1;
      co.hedge_ms = hedge_ms;
      ClusterClient cluster(co);
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const size_t idx = static_cast<size_t>(t * kRequestsPerThread + i);
        JsonValue req = JsonValue::make_object();
        req.set("con", JsonValue::make_string(pool[idx]));
        req.set("restarts", JsonValue::make_int(kRestarts));
        bool done = false;
        for (int attempt = 0; attempt < 50 && !done; ++attempt) {
          auto reply = cluster.call(req, keys[idx]);
          if (reply && reply->find("ok")) {
            ++mine.ok;
            done = true;
          } else if (reply) {
            break;  // terminal server error: count below
          } else {
            // Shed or unreachable after the client's internal attempts:
            // closed-loop clients back off and offer the job again.
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
          }
        }
        if (!done) ++mine.errors;
      }
      ClusterClient::Stats st = cluster.stats();
      mine.reroutes = st.reroutes;
      mine.hedges = st.hedges;
      mine.duplicates = st.duplicates_suppressed;
    });
  }
  for (auto& th : threads) th.join();
  total.elapsed_ms = sw.elapsed_ms();
  for (const BenchPass& r : per_thread) {
    total.ok += r.ok;
    total.errors += r.errors;
    total.reroutes += r.reroutes;
    total.hedges += r.hedges;
    total.duplicates += r.duplicates;
  }
  return total;
}

std::string pass_json(int nodes, const char* pass, const BenchPass& r) {
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "{\"nodes\":%d,\"pass\":\"%s\",\"req_per_sec\":%.1f,"
                "\"ok\":%ld,\"errors\":%ld,\"reroutes\":%llu,"
                "\"hedges\":%llu,\"duplicates_suppressed\":%llu}",
                nodes, pass, r.req_per_sec(), r.ok, r.errors,
                static_cast<unsigned long long>(r.reroutes),
                static_cast<unsigned long long>(r.hedges),
                static_cast<unsigned long long>(r.duplicates));
  return buf;
}

void print_row(int nodes, const char* pass, const BenchPass& r) {
  std::printf("%-6d %-9s %10.1f %6ld %7ld %9llu %7llu %6llu\n", nodes, pass,
              r.req_per_sec(), r.ok, r.errors,
              static_cast<unsigned long long>(r.reroutes),
              static_cast<unsigned long long>(r.hedges),
              static_cast<unsigned long long>(r.duplicates));
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--check") == 0) check = true;

  {
    // Every encode stalls kTaskStallMs per restart task (see header):
    // job cost becomes latency, so capacity scales with worker pools —
    // i.e. with nodes — independent of host core count.
    fault::FaultPlan plan(0);
    fault::Rule stall;
    stall.point = "service/restart_task";
    stall.action.kind = fault::Kind::kDelay;
    stall.action.delay_ms = kTaskStallMs;
    stall.every = 1;
    stall.max_fires = 1'000'000;
    plan.add(std::move(stall));
    fault::install(std::make_shared<fault::FaultPlan>(std::move(plan)));
  }

  const std::vector<std::string> pool = make_instance_pool();
  std::vector<uint64_t> keys;
  for (const std::string& con : pool) {
    std::string error;
    auto problem = parse_problem_text(con, &error);
    if (!problem) {
      std::fprintf(stderr, "pool instance unparsable: %s\n", error.c_str());
      return 2;
    }
    keys.push_back(route_key(problem->set));
  }

  std::printf("# cluster_throughput: %d instances, %d client threads x %d "
              "requests, %d restarts/job\n",
              kInstances, kClientThreads, kRequestsPerThread, kRestarts);
  std::printf("%-6s %-9s %10s %6s %7s %9s %7s %6s\n", "nodes", "pass",
              "req/s", "ok", "errors", "reroutes", "hedges", "dups");

  std::string json = "{\"passes\":[";
  double cold_1 = 0, cold_4 = 0;
  long total_errors = 0;
  for (int nodes : {1, 2, 4}) {
    Cluster c = make_cluster(nodes);
    for (const char* pass : {"cold", "replay"}) {
      BenchPass r = run_pass(c.members, pool, keys, /*hedge_ms=*/0);
      print_row(nodes, pass, r);
      json += pass_json(nodes, pass, r) + ",";
      total_errors += r.errors;
      if (std::strcmp(pass, "cold") == 0) {
        if (nodes == 1) cold_1 = r.req_per_sec();
        if (nodes == 4) cold_4 = r.req_per_sec();
      }
    }
    if (nodes == 4) {
      // Failover: one node stopped, a quarter of the keyspace re-routes
      // (hedging on, so slow legs race the next preference).
      c.servers[0]->stop();
      BenchPass r = run_pass(c.members, pool, keys, /*hedge_ms=*/5);
      print_row(nodes, "failover", r);
      json += pass_json(nodes, "failover", r);
      total_errors += r.errors;
    }
    for (auto& s : c.servers) s->stop();
  }
  json += "]}";

  std::FILE* f = std::fopen("BENCH_cluster.json", "w");
  if (f) {
    std::fputs(json.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("# wrote BENCH_cluster.json\n");
  }

  if (check) {
    if (total_errors != 0) {
      std::fprintf(stderr, "CHECK FAIL: %ld requests errored\n",
                   total_errors);
      return 1;
    }
    if (!(cold_4 > cold_1)) {
      std::fprintf(stderr,
                   "CHECK FAIL: 4-node cold %.1f req/s not above 1-node "
                   "%.1f req/s\n",
                   cold_4, cold_1);
      return 1;
    }
    std::printf("# check ok: 4-node cold %.1f req/s > 1-node %.1f req/s\n",
                cold_4, cold_1);
  }
  return 0;
}
