// One-hot vs minimum-length state assignment: the opposite corner of the
// code-length spectrum from the paper's partial problem.  One-hot removes
// all face-constraint pressure (every state literal is a single bit) but
// pays one register bit and two PLA columns per state; minimum length
// pays with constraint violations.  The paper's tool lives at the
// minimum-length end — this bench quantifies what that choice costs and
// saves in product terms and PLA area.

#include <cstdio>
#include <string>

#include "espresso/espresso.h"
#include "eval/metrics.h"
#include "kiss/benchmarks.h"
#include "pla/pla.h"
#include "stateassign/assemble.h"
#include "stateassign/state_assign.h"

using namespace picola;

int main() {
  const std::vector<std::string> names = {"cse",  "dk16", "donfile", "ex2",
                                          "keyb", "kirkman", "s1",   "s820",
                                          "s832", "styr", "tma"};
  std::printf("%-10s | %8s %8s | %8s %8s | %6s\n", "FSM", "min terms",
              "area", "1hot terms", "area", "area ratio");
  std::printf("%.*s\n", 64,
              "----------------------------------------------------------------");
  long tot_min_area = 0, tot_hot_area = 0;
  for (const std::string& name : names) {
    Fsm fsm = make_benchmark(name);

    StateAssignOptions opt;
    StateAssignResult min_len = assign_states(fsm, opt);

    Cover on, dc;
    encode_one_hot_table(fsm, &on, &dc);
    Cover hot = esp::minimize_cover(on, dc);
    long hot_area =
        static_cast<long>(hot.size()) *
        (2L * (fsm.num_inputs + fsm.num_states()) +
         (fsm.num_states() + fsm.num_outputs));

    tot_min_area += min_len.area;
    tot_hot_area += hot_area;
    std::printf("%-10s | %8d %8ld | %8d %8ld | %6s\n", name.c_str(),
                min_len.product_terms, min_len.area, hot.size(), hot_area,
                format_ratio(static_cast<double>(hot_area) /
                             static_cast<double>(min_len.area))
                    .c_str());
    std::fflush(stdout);
  }
  std::printf("%.*s\n", 64,
              "----------------------------------------------------------------");
  std::printf("total min-length area %ld, one-hot area %ld (ratio %s)\n",
              tot_min_area, tot_hot_area,
              format_ratio(static_cast<double>(tot_hot_area) /
                           static_cast<double>(tot_min_area))
                  .c_str());
  return 0;
}
