// Microbenchmarks of the computational kernels: tautology, complement,
// expand, full espresso minimisation, symbolic constraint derivation, and
// PICOLA column generation.

#include <benchmark/benchmark.h>

#include <random>

#include "constraints/derive.h"
#include "core/picola.h"
#include "espresso/espresso.h"
#include "eval/constraint_eval.h"
#include "kiss/benchmarks.h"

namespace picola {
namespace {

Cover random_cover(const CubeSpace& s, int ncubes, uint32_t seed) {
  std::mt19937 rng(seed);
  Cover f(s);
  for (int i = 0; i < ncubes; ++i) {
    Cube c = Cube::full(s);
    for (int v = 0; v < s.num_vars(); ++v) {
      if (rng() % 5 < 2) continue;
      c.clear_var(s, v);
      c.set(s, v, static_cast<int>(rng() % static_cast<uint32_t>(s.parts(v))));
    }
    f.add(c);
  }
  return f;
}

void BM_Tautology(benchmark::State& state) {
  CubeSpace s = CubeSpace::binary(static_cast<int>(state.range(0)));
  Cover f = random_cover(s, 40, 7);
  f.add(Cube::full(s));  // force a tautology so the check runs fully
  for (auto _ : state) benchmark::DoNotOptimize(esp::is_tautology(f));
}
BENCHMARK(BM_Tautology)->Arg(8)->Arg(16)->Arg(24);

void BM_Complement(benchmark::State& state) {
  CubeSpace s = CubeSpace::binary(static_cast<int>(state.range(0)));
  Cover f = random_cover(s, 20, 13);
  for (auto _ : state) benchmark::DoNotOptimize(esp::complement(f));
}
BENCHMARK(BM_Complement)->Arg(8)->Arg(12)->Arg(16);

void BM_Minimize(benchmark::State& state) {
  CubeSpace s = CubeSpace::binary(static_cast<int>(state.range(0)));
  Cover f = random_cover(s, 30, 21);
  for (auto _ : state)
    benchmark::DoNotOptimize(esp::minimize_cover(f, Cover(s)));
}
BENCHMARK(BM_Minimize)->Arg(6)->Arg(10)->Arg(14);

void BM_DeriveConstraints(benchmark::State& state) {
  static const char* kNames[] = {"lion9", "ex2", "keyb", "planet"};
  Fsm fsm = make_benchmark(kNames[state.range(0)]);
  for (auto _ : state)
    benchmark::DoNotOptimize(derive_face_constraints(fsm).set.size());
  state.SetLabel(kNames[state.range(0)]);
}
BENCHMARK(BM_DeriveConstraints)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_PicolaEncode(benchmark::State& state) {
  static const char* kNames[] = {"lion9", "ex2", "keyb", "planet", "scf"};
  Fsm fsm = make_benchmark(kNames[state.range(0)]);
  DerivedConstraints d = derive_face_constraints(fsm);
  for (auto _ : state)
    benchmark::DoNotOptimize(picola_encode(d.set).encoding.codes);
  state.SetLabel(kNames[state.range(0)]);
}
BENCHMARK(BM_PicolaEncode)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_ConstraintEvaluation(benchmark::State& state) {
  Fsm fsm = make_benchmark("ex2");
  DerivedConstraints d = derive_face_constraints(fsm);
  Encoding e = picola_encode(d.set).encoding;
  for (auto _ : state)
    benchmark::DoNotOptimize(evaluate_constraints(d.set, e).total_cubes);
}
BENCHMARK(BM_ConstraintEvaluation);

}  // namespace
}  // namespace picola

BENCHMARK_MAIN();
