// Microbenchmarks of the computational kernels: tautology, complement,
// expand, full espresso minimisation, symbolic constraint derivation, and
// PICOLA column generation.  The custom main() additionally runs the
// obs-overhead gate: with instrumentation compiled in but switched off,
// the implied cost of the span guards must stay under 1% of a
// picola_encode run on the Table-1 instances.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <random>

#include "constraints/derive.h"
#include "core/picola.h"
#include "espresso/espresso.h"
#include "eval/constraint_eval.h"
#include "fault/fault.h"
#include "kiss/benchmarks.h"
#include "obs/obs.h"

namespace picola {
namespace {

Cover random_cover(const CubeSpace& s, int ncubes, uint32_t seed) {
  std::mt19937 rng(seed);
  Cover f(s);
  for (int i = 0; i < ncubes; ++i) {
    Cube c = Cube::full(s);
    for (int v = 0; v < s.num_vars(); ++v) {
      if (rng() % 5 < 2) continue;
      c.clear_var(s, v);
      c.set(s, v, static_cast<int>(rng() % static_cast<uint32_t>(s.parts(v))));
    }
    f.add(c);
  }
  return f;
}

void BM_Tautology(benchmark::State& state) {
  CubeSpace s = CubeSpace::binary(static_cast<int>(state.range(0)));
  Cover f = random_cover(s, 40, 7);
  f.add(Cube::full(s));  // force a tautology so the check runs fully
  for (auto _ : state) benchmark::DoNotOptimize(esp::is_tautology(f));
}
BENCHMARK(BM_Tautology)->Arg(8)->Arg(16)->Arg(24);

void BM_Complement(benchmark::State& state) {
  CubeSpace s = CubeSpace::binary(static_cast<int>(state.range(0)));
  Cover f = random_cover(s, 20, 13);
  for (auto _ : state) benchmark::DoNotOptimize(esp::complement(f));
}
BENCHMARK(BM_Complement)->Arg(8)->Arg(12)->Arg(16);

void BM_Minimize(benchmark::State& state) {
  CubeSpace s = CubeSpace::binary(static_cast<int>(state.range(0)));
  Cover f = random_cover(s, 30, 21);
  for (auto _ : state)
    benchmark::DoNotOptimize(esp::minimize_cover(f, Cover(s)));
}
BENCHMARK(BM_Minimize)->Arg(6)->Arg(10)->Arg(14);

void BM_DeriveConstraints(benchmark::State& state) {
  static const char* kNames[] = {"lion9", "ex2", "keyb", "planet"};
  Fsm fsm = make_benchmark(kNames[state.range(0)]);
  for (auto _ : state)
    benchmark::DoNotOptimize(derive_face_constraints(fsm).set.size());
  state.SetLabel(kNames[state.range(0)]);
}
BENCHMARK(BM_DeriveConstraints)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_PicolaEncode(benchmark::State& state) {
  static const char* kNames[] = {"lion9", "ex2", "keyb", "planet", "scf"};
  Fsm fsm = make_benchmark(kNames[state.range(0)]);
  DerivedConstraints d = derive_face_constraints(fsm);
  for (auto _ : state)
    benchmark::DoNotOptimize(picola_encode(d.set).encoding.codes);
  state.SetLabel(kNames[state.range(0)]);
}
BENCHMARK(BM_PicolaEncode)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_ConstraintEvaluation(benchmark::State& state) {
  Fsm fsm = make_benchmark("ex2");
  DerivedConstraints d = derive_face_constraints(fsm);
  Encoding e = picola_encode(d.set).encoding;
  for (auto _ : state)
    benchmark::DoNotOptimize(evaluate_constraints(d.set, e).total_cubes);
}
BENCHMARK(BM_ConstraintEvaluation);

void BM_PicolaEncodeObsOn(benchmark::State& state) {
  // Same kernel as BM_PicolaEncode but with metrics collection live, to
  // compare against the switched-off baseline directly.
  static const char* kNames[] = {"lion9", "ex2", "keyb", "planet"};
  Fsm fsm = make_benchmark(kNames[state.range(0)]);
  DerivedConstraints d = derive_face_constraints(fsm);
  obs::set_enabled(true);
  for (auto _ : state)
    benchmark::DoNotOptimize(picola_encode(d.set).encoding.codes);
  obs::set_enabled(false);
  obs::MetricsRegistry::global().reset();
  state.SetLabel(kNames[state.range(0)]);
}
BENCHMARK(BM_PicolaEncodeObsOn)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

uint64_t steady_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The <1% gate.  Direct measurement of on-vs-off encode times drowns in
/// run-to-run noise at these instance sizes, so measure the two exact
/// quantities instead: how many span guards one encode executes (from an
/// instrumented run's histogram counts) and what a switched-off guard
/// costs (tight loop), then bound the implied overhead.
bool run_obs_overhead_check() {
  static const char* kNames[] = {"lion9", "ex2", "keyb", "planet"};

  // Cost of one PICOLA_OBS_SPAN with the master switch off.
  constexpr int kGuardReps = 1000000;
  uint64_t g0 = steady_now_ns();
  for (int i = 0; i < kGuardReps; ++i) {
    PICOLA_OBS_SPAN(span, "bench/guard");
    benchmark::DoNotOptimize(&span);
  }
  double guard_ns = static_cast<double>(steady_now_ns() - g0) / kGuardReps;

  std::printf("\nobs overhead gate (guard %.2f ns when disabled):\n",
              guard_ns);
  bool ok = true;
  for (const char* name : kNames) {
    DerivedConstraints d = derive_face_constraints(make_benchmark(name));

    // Spans per encode, counted exactly by an instrumented run: every
    // span feeds exactly one histogram record.
    obs::MetricsRegistry::global().reset();
    obs::set_enabled(true);
    picola_encode(d.set);
    uint64_t spans = 0;
    for (const auto& [hist_name, snap] :
         obs::MetricsRegistry::global().histogram_snapshots())
      spans += snap.count;
    obs::set_enabled(false);
    obs::MetricsRegistry::global().reset();

    // Mean switched-off encode time.
    constexpr int kReps = 5;
    uint64_t t0 = steady_now_ns();
    for (int i = 0; i < kReps; ++i)
      benchmark::DoNotOptimize(picola_encode(d.set).encoding.codes);
    double encode_ns = static_cast<double>(steady_now_ns() - t0) / kReps;

    double overhead = 100.0 * (static_cast<double>(spans) * guard_ns) /
                      encode_ns;
    bool pass = overhead < 1.0;
    ok &= pass;
    std::printf(
        "  %-8s %8llu spans/encode, %10.0f ns/encode -> %6.4f%% %s\n", name,
        static_cast<unsigned long long>(spans), encode_ns, overhead,
        pass ? "OK" : "FAIL (>= 1%)");
  }
  return ok;
}

/// Same methodology for the fault hooks (fault/fault.h): cost of one
/// disabled PICOLA_FAULT_POINT (tight loop, no plan installed) times the
/// consults one encode performs (counted exactly by an installed empty
/// plan — expected 0: the hooks live in the serving stack, not the
/// encode kernel), bounded against the encode time.
bool run_fault_overhead_check() {
  static const char* kNames[] = {"lion9", "ex2", "keyb", "planet"};

  constexpr int kGuardReps = 1000000;
  uint64_t g0 = steady_now_ns();
  for (int i = 0; i < kGuardReps; ++i) {
    fault::Action a = PICOLA_FAULT_POINT("bench/guard");
    benchmark::DoNotOptimize(&a);
  }
  double guard_ns = static_cast<double>(steady_now_ns() - g0) / kGuardReps;

  std::printf("\nfault overhead gate (guard %.2f ns when disabled):\n",
              guard_ns);
  bool ok = true;
  for (const char* name : kNames) {
    DerivedConstraints d = derive_face_constraints(make_benchmark(name));

    // Consults per encode: an installed plan with no rules counts every
    // fault point the encode path touches without injecting anything.
    auto plan = std::make_shared<fault::FaultPlan>(0);
    fault::install(plan);
    picola_encode(d.set);
    uint64_t consults = 0;
    for (const auto& [point, st] : plan->stats()) consults += st.calls;
    fault::install(nullptr);

    constexpr int kReps = 5;
    uint64_t t0 = steady_now_ns();
    for (int i = 0; i < kReps; ++i)
      benchmark::DoNotOptimize(picola_encode(d.set).encoding.codes);
    double encode_ns = static_cast<double>(steady_now_ns() - t0) / kReps;

    double overhead =
        100.0 * (static_cast<double>(consults) * guard_ns) / encode_ns;
    bool pass = overhead < 1.0;
    ok &= pass;
    std::printf(
        "  %-8s %8llu consults/encode, %10.0f ns/encode -> %6.4f%% %s\n",
        name, static_cast<unsigned long long>(consults), encode_ns, overhead,
        pass ? "OK" : "FAIL (>= 1%)");
  }
  return ok;
}

}  // namespace
}  // namespace picola

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bool ok = picola::run_obs_overhead_check();
  ok &= picola::run_fault_overhead_check();
  return ok ? 0 : 1;
}
