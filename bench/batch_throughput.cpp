// Batch-encoding throughput of the concurrent EncodingService.
//
// Workload: the Table I input-encoding problems (IWLS'93-profile
// reconstructions), each submitted as a 4-restart job.  For 1, N/2 and N
// worker threads the bench measures cold jobs/sec (empty cache), then
// replays the identical batch against the warm cache to measure the
// memoisation speedup.  Results are printed as a table and written to
// BENCH_batch.json so the perf trajectory of the service layer is
// tracked across PRs.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "constraints/derive.h"
#include "eval/metrics.h"
#include "kiss/benchmarks.h"
#include "service/service.h"

using namespace picola;

namespace {

constexpr int kRestarts = 4;
constexpr int kRepeat = 3;  ///< duplicate submissions per problem

std::vector<Job> make_workload() {
  std::vector<Job> jobs;
  for (const std::string& name : table1_benchmarks()) {
    Fsm fsm = make_benchmark(name);
    Job job;
    job.set = derive_face_constraints(fsm).set;
    if (job.set.num_symbols < 2 || job.set.size() == 0) continue;
    job.restarts = kRestarts;
    job.tag = name;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

struct Measurement {
  int threads = 0;
  double cold_ms = 0;
  double cold_jobs_per_sec = 0;
  double replay_ms = 0;
  double replay_speedup = 0;
  ServiceStats stats;
};

Measurement run_once(const std::vector<Job>& jobs, int threads) {
  Measurement m;
  m.threads = threads;
  ServiceOptions so;
  so.num_threads = threads;
  so.cache_capacity = 4096;
  EncodingService service(so);

  // Cold pass: every submission (kRepeat per problem) computes or shares
  // an in-flight duplicate.
  Stopwatch sw;
  for (int rep = 0; rep < kRepeat; ++rep)
    for (const Job& j : jobs) service.submit(j);
  service.wait_all();
  m.cold_ms = sw.elapsed_ms();
  size_t total = jobs.size() * static_cast<size_t>(kRepeat);
  m.cold_jobs_per_sec =
      m.cold_ms > 0 ? 1000.0 * static_cast<double>(total) / m.cold_ms : 0;

  // Replay pass: identical batch, warm cache.
  sw.restart();
  for (int rep = 0; rep < kRepeat; ++rep)
    for (const Job& j : jobs) service.submit(j);
  service.wait_all();
  m.replay_ms = sw.elapsed_ms();
  m.replay_speedup = m.replay_ms > 0 ? m.cold_ms / m.replay_ms : 0;
  m.stats = service.stats();
  return m;
}

}  // namespace

int main() {
  std::vector<Job> jobs = make_workload();
  unsigned hw = std::thread::hardware_concurrency();
  int n = hw > 0 ? static_cast<int>(hw) : 4;
  // 1, N/2 and N threads, plus a 4-thread point so runs on different
  // machines share a comparable column.
  std::vector<int> thread_counts = {1, std::max(2, n / 2), n, 4};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  std::printf("batch throughput: %zu problems x %d submissions, %d restarts "
              "per job\n\n",
              jobs.size(), kRepeat, kRestarts);
  std::printf("%8s | %10s %10s | %10s %8s\n", "threads", "cold ms",
              "jobs/sec", "replay ms", "speedup");
  std::printf("%.*s\n", 56,
              "--------------------------------------------------------");

  std::vector<Measurement> results;
  for (int t : thread_counts) results.push_back(run_once(jobs, t));

  for (const Measurement& m : results)
    std::printf("%8d | %10.1f %10.1f | %10.2f %8.1fx\n", m.threads, m.cold_ms,
                m.cold_jobs_per_sec, m.replay_ms, m.replay_speedup);
  if (results.size() > 1) {
    const Measurement& base = results.front();
    const Measurement& top = results.back();
    std::printf("\nscaling %d -> %d threads: %.2fx throughput\n", base.threads,
                top.threads, top.cold_jobs_per_sec / base.cold_jobs_per_sec);
  }

  FILE* f = std::fopen("BENCH_batch.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write BENCH_batch.json\n");
    return 1;
  }
  std::fprintf(f, "{\"problems\":%zu,\"submissions_per_problem\":%d,"
               "\"restarts\":%d,\"runs\":[",
               jobs.size(), kRepeat, kRestarts);
  for (size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    std::fprintf(f,
                 "%s{\"threads\":%d,\"cold_ms\":%.3f,\"jobs_per_sec\":%.2f,"
                 "\"replay_ms\":%.3f,\"cache_replay_speedup\":%.2f,"
                 "\"stats\":%s}",
                 i ? "," : "", m.threads, m.cold_ms, m.cold_jobs_per_sec,
                 m.replay_ms, m.replay_speedup,
                 service_stats_json(m.stats).c_str());
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("wrote BENCH_batch.json\n");
  return 0;
}
