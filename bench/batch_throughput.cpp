// Batch-encoding throughput of the concurrent EncodingService.
//
// Workload: the Table I input-encoding problems (IWLS'93-profile
// reconstructions), each submitted as a 4-restart job.  For 1, N/2 and N
// worker threads the bench measures cold jobs/sec (empty cache), then
// replays the identical batch against the warm cache to measure the
// memoisation speedup.  Results are printed as a table and written to
// BENCH_batch.json so the perf trajectory of the service layer is
// tracked across PRs.
//
// --warm-restart adds a durability phase (persist/store.h): one service
// runs the batch cold with a cache dir attached (journaling every
// insert), shuts down (writing the final snapshot), and a *fresh*
// service recovers from the same dir and replays the batch.  Cold vs
// warmed jobs/sec and the warm hit rate land in BENCH_batch.json —
// the price of journaling and the payoff of a warm restart, tracked
// together.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "constraints/derive.h"
#include "eval/metrics.h"
#include "kiss/benchmarks.h"
#include "persist/io.h"
#include "service/service.h"

using namespace picola;

namespace {

constexpr int kRestarts = 4;
constexpr int kRepeat = 3;  ///< duplicate submissions per problem

std::vector<Job> make_workload() {
  std::vector<Job> jobs;
  for (const std::string& name : table1_benchmarks()) {
    Fsm fsm = make_benchmark(name);
    Job job;
    job.set = derive_face_constraints(fsm).set;
    if (job.set.num_symbols < 2 || job.set.size() == 0) continue;
    job.restarts = kRestarts;
    job.tag = name;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

struct Measurement {
  int threads = 0;
  double cold_ms = 0;
  double cold_jobs_per_sec = 0;
  double replay_ms = 0;
  double replay_speedup = 0;
  ServiceStats stats;
};

Measurement run_once(const std::vector<Job>& jobs, int threads) {
  Measurement m;
  m.threads = threads;
  ServiceOptions so;
  so.num_threads = threads;
  so.cache_capacity = 4096;
  EncodingService service(so);

  // Cold pass: every submission (kRepeat per problem) computes or shares
  // an in-flight duplicate.
  Stopwatch sw;
  for (int rep = 0; rep < kRepeat; ++rep)
    for (const Job& j : jobs) service.submit(j);
  service.wait_all();
  m.cold_ms = sw.elapsed_ms();
  size_t total = jobs.size() * static_cast<size_t>(kRepeat);
  m.cold_jobs_per_sec =
      m.cold_ms > 0 ? 1000.0 * static_cast<double>(total) / m.cold_ms : 0;

  // Replay pass: identical batch, warm cache.
  sw.restart();
  for (int rep = 0; rep < kRepeat; ++rep)
    for (const Job& j : jobs) service.submit(j);
  service.wait_all();
  m.replay_ms = sw.elapsed_ms();
  m.replay_speedup = m.replay_ms > 0 ? m.cold_ms / m.replay_ms : 0;
  m.stats = service.stats();
  return m;
}

struct WarmRestartMeasurement {
  bool ran = false;
  int threads = 0;
  double cold_ms = 0;        ///< batch with journaling on, empty dir
  double cold_jobs_per_sec = 0;
  double warm_ms = 0;        ///< same batch, fresh service, recovered cache
  double warm_jobs_per_sec = 0;
  double restart_speedup = 0;
  double warm_hit_rate = 0;  ///< warm-pass finished-cache hits / submissions
  size_t recovered = 0;      ///< entries the restart loaded from disk
};

/// Cold service with a durable cache dir -> shutdown snapshot -> fresh
/// service recovers and replays.  The two rates bracket persistence:
/// cold_jobs_per_sec carries the journaling overhead, warm_jobs_per_sec
/// is restart-from-snapshot serving.
WarmRestartMeasurement run_warm_restart(const std::vector<Job>& jobs,
                                        int threads) {
  WarmRestartMeasurement w;
  char tmpl[] = "/tmp/picola_bench_persist.XXXXXX";
  if (!mkdtemp(tmpl)) {
    std::fprintf(stderr, "warm-restart: mkdtemp failed\n");
    return w;
  }
  ServiceOptions so;
  so.num_threads = threads;
  so.cache_capacity = 4096;
  so.cache_dir = tmpl;
  so.snapshot_interval_s = -1;  // journal during the run; snapshot at exit
  const size_t total = jobs.size() * static_cast<size_t>(kRepeat);

  {
    EncodingService service(so);
    Stopwatch sw;
    for (int rep = 0; rep < kRepeat; ++rep)
      for (const Job& j : jobs) service.submit(j);
    service.wait_all();
    w.cold_ms = sw.elapsed_ms();
  }  // destructor drains the pool and writes the shutdown snapshot

  {
    EncodingService service(so);  // recovers the cache from the dir
    w.recovered = service.cache().size();
    Stopwatch sw;
    for (int rep = 0; rep < kRepeat; ++rep)
      for (const Job& j : jobs) service.submit(j);
    service.wait_all();
    w.warm_ms = sw.elapsed_ms();
    ServiceStats st = service.stats();
    w.warm_hit_rate =
        total > 0 ? static_cast<double>(st.cache_hits) /
                        static_cast<double>(total)
                  : 0;
  }

  for (const std::string& name : persist::io::list_dir(tmpl))
    persist::io::unlink_file(std::string(tmpl) + "/" + name, nullptr);
  rmdir(tmpl);

  w.threads = threads;
  w.cold_jobs_per_sec =
      w.cold_ms > 0 ? 1000.0 * static_cast<double>(total) / w.cold_ms : 0;
  w.warm_jobs_per_sec =
      w.warm_ms > 0 ? 1000.0 * static_cast<double>(total) / w.warm_ms : 0;
  w.restart_speedup = w.warm_ms > 0 ? w.cold_ms / w.warm_ms : 0;
  w.ran = true;
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  bool warm_restart = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--warm-restart") == 0) {
      warm_restart = true;
    } else {
      std::fprintf(stderr, "usage: batch_throughput [--warm-restart]\n");
      return 2;
    }
  }
  std::vector<Job> jobs = make_workload();
  unsigned hw = std::thread::hardware_concurrency();
  int n = hw > 0 ? static_cast<int>(hw) : 4;
  // 1, N/2 and N threads, plus a 4-thread point so runs on different
  // machines share a comparable column.
  std::vector<int> thread_counts = {1, std::max(2, n / 2), n, 4};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  std::printf("batch throughput: %zu problems x %d submissions, %d restarts "
              "per job\n\n",
              jobs.size(), kRepeat, kRestarts);
  std::printf("%8s | %10s %10s | %10s %8s\n", "threads", "cold ms",
              "jobs/sec", "replay ms", "speedup");
  std::printf("%.*s\n", 56,
              "--------------------------------------------------------");

  std::vector<Measurement> results;
  for (int t : thread_counts) results.push_back(run_once(jobs, t));

  for (const Measurement& m : results)
    std::printf("%8d | %10.1f %10.1f | %10.2f %8.1fx\n", m.threads, m.cold_ms,
                m.cold_jobs_per_sec, m.replay_ms, m.replay_speedup);
  if (results.size() > 1) {
    const Measurement& base = results.front();
    const Measurement& top = results.back();
    std::printf("\nscaling %d -> %d threads: %.2fx throughput\n", base.threads,
                top.threads, top.cold_jobs_per_sec / base.cold_jobs_per_sec);
  }

  WarmRestartMeasurement wr;
  if (warm_restart) {
    wr = run_warm_restart(jobs, thread_counts.back());
    if (wr.ran)
      std::printf(
          "\nwarm restart (%d threads): cold %.1f jobs/s (journaling) -> "
          "recovered %zu entries -> warm %.1f jobs/s (%.1fx, hit rate "
          "%.2f)\n",
          wr.threads, wr.cold_jobs_per_sec, wr.recovered,
          wr.warm_jobs_per_sec, wr.restart_speedup, wr.warm_hit_rate);
  }

  FILE* f = std::fopen("BENCH_batch.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write BENCH_batch.json\n");
    return 1;
  }
  std::fprintf(f, "{\"problems\":%zu,\"submissions_per_problem\":%d,"
               "\"restarts\":%d,\"runs\":[",
               jobs.size(), kRepeat, kRestarts);
  for (size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    std::fprintf(f,
                 "%s{\"threads\":%d,\"cold_ms\":%.3f,\"jobs_per_sec\":%.2f,"
                 "\"replay_ms\":%.3f,\"cache_replay_speedup\":%.2f,"
                 "\"stats\":%s}",
                 i ? "," : "", m.threads, m.cold_ms, m.cold_jobs_per_sec,
                 m.replay_ms, m.replay_speedup,
                 service_stats_json(m.stats).c_str());
  }
  std::fprintf(f, "]");
  if (wr.ran)
    std::fprintf(f,
                 ",\"warm_restart\":{\"threads\":%d,\"cold_ms\":%.3f,"
                 "\"cold_jobs_per_sec\":%.2f,\"recovered_entries\":%zu,"
                 "\"warm_ms\":%.3f,\"warm_jobs_per_sec\":%.2f,"
                 "\"restart_speedup\":%.2f,\"warm_hit_rate\":%.4f}",
                 wr.threads, wr.cold_ms, wr.cold_jobs_per_sec, wr.recovered,
                 wr.warm_ms, wr.warm_jobs_per_sec, wr.restart_speedup,
                 wr.warm_hit_rate);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_batch.json\n");
  return 0;
}
