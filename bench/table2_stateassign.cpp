// Table II reproduction: state assignment of the larger IWLS'93 machines.
//
// For every machine the full tool flow runs three times — with the
// NOVA-i-like encoder, the NOVA-io-like encoder and PICOLA — and reports
// the two-level size (product terms after espresso on the encoded
// combinational component) plus execution time normalised to NOVA-i-like,
// matching the layout of the paper's Table II.
//
// Paper reference (Table II): the PICOLA-based tool achieves the smallest
// total size at competitive runtime.

#include <cstdio>
#include <string>

#include "eval/metrics.h"
#include "kiss/benchmarks.h"
#include "stateassign/state_assign.h"

using namespace picola;

namespace {

struct RunResult {
  int size = 0;
  long area = 0;
  double ms = 0;
};

RunResult run(const Fsm& fsm, Assigner assigner) {
  StateAssignOptions opt;
  opt.assigner = assigner;
  Stopwatch sw;
  StateAssignResult r = assign_states(fsm, opt);
  return {r.product_terms, r.area, sw.elapsed_ms()};
}

}  // namespace

int main() {
  std::printf("Table II: state assignment, two-level size of the "
              "combinational component\n");
  std::printf("%-10s | %6s %6s | %6s %6s | %6s %6s\n", "FSM", "NOVA-i",
              "t", "NOVA-io", "t", "PICOLA", "t");
  std::printf("(t = time normalised to NOVA-i-like)\n");
  std::printf("%.*s\n", 64,
              "----------------------------------------------------------------");

  long tot_i = 0, tot_io = 0, tot_pic = 0;
  double ms_i = 0, ms_io = 0, ms_pic = 0;

  for (const std::string& name : table2_benchmarks()) {
    Fsm fsm = make_benchmark(name);
    RunResult ri = run(fsm, Assigner::kNovaILike);
    RunResult rio = run(fsm, Assigner::kNovaIoLike);
    RunResult rp = run(fsm, Assigner::kPicola);
    tot_i += ri.size;
    tot_io += rio.size;
    tot_pic += rp.size;
    ms_i += ri.ms;
    ms_io += rio.ms;
    ms_pic += rp.ms;
    double base = std::max(0.001, ri.ms);
    std::printf("%-10s | %6d %6s | %6d %6s | %6d %6s\n", name.c_str(),
                ri.size, format_ratio(ri.ms / base).c_str(), rio.size,
                format_ratio(rio.ms / base).c_str(), rp.size,
                format_ratio(rp.ms / base).c_str());
    std::fflush(stdout);
  }

  std::printf("%.*s\n", 64,
              "----------------------------------------------------------------");
  double base = std::max(0.001, ms_i);
  std::printf("%-10s | %6ld %6s | %6ld %6s | %6ld %6s\n", "total", tot_i,
              format_ratio(ms_i / base).c_str(), tot_io,
              format_ratio(ms_io / base).c_str(), tot_pic,
              format_ratio(ms_pic / base).c_str());
  std::printf("\nPICOLA / NOVA-i-like size ratio: %s (paper: < 1)\n",
              format_ratio(static_cast<double>(tot_pic) /
                           static_cast<double>(tot_i))
                  .c_str());
  std::printf("PICOLA / NOVA-io-like size ratio: %s (paper: < 1)\n",
              format_ratio(static_cast<double>(tot_pic) /
                           static_cast<double>(tot_io))
                  .c_str());
  return 0;
}
