// Table I reproduction: partial face-constrained encoding at minimum code
// length on the IWLS'93-derived input-encoding problems.
//
// For every benchmark the flow is the paper's: substitute the next-state
// field by a one-hot code, minimise the multi-valued representation to get
// the face constraints, encode with each algorithm, and report the number
// of cubes espresso needs to implement the complete constraint set
// (onset = member codes, dc = unused codes).
//
// Paper reference (Table I): PICOLA beats NOVA on 16 of 31 problems and
// loses 7; the NOVA implementation of the whole benchmark is ~11% more
// expensive; ENC quality is comparable to PICOLA but ENC is impractically
// slow on the larger problems.

#include <cstdio>
#include <string>

#include "constraints/derive.h"
#include "core/picola.h"
#include "encoders/enc_like.h"
#include "encoders/nova_like.h"
#include "eval/constraint_eval.h"
#include "eval/metrics.h"
#include "kiss/benchmarks.h"

using namespace picola;

int main() {
  std::printf("Table I: cubes to implement all face constraints "
              "(minimum-length encodings)\n");
  std::printf("%-10s %6s | %6s %8s | %6s %8s | %6s %8s\n", "FSM", "const",
              "NOVA", "ms", "ENC", "ms", "PICOLA", "ms");
  std::printf("%.*s\n", 76,
              "----------------------------------------------------------------"
              "--------------------");

  long total_nova = 0, total_enc = 0, total_picola = 0;
  double time_nova = 0, time_enc = 0, time_picola = 0;
  int wins = 0, losses = 0, ties = 0;

  for (const std::string& name : table1_benchmarks()) {
    Fsm fsm = make_benchmark(name);
    DerivedConstraints d = derive_face_constraints(fsm);
    const ConstraintSet& cs = d.set;

    Stopwatch sw;
    Encoding nova = nova_like_encode(cs).encoding;
    double t_nova = sw.elapsed_ms();

    sw.restart();
    Encoding enc = enc_like_encode(cs).encoding;
    double t_enc = sw.elapsed_ms();

    sw.restart();
    Encoding pic = picola_encode(cs).encoding;
    double t_pic = sw.elapsed_ms();

    int c_nova = evaluate_constraints(cs, nova).total_cubes;
    int c_enc = evaluate_constraints(cs, enc).total_cubes;
    int c_pic = evaluate_constraints(cs, pic).total_cubes;

    total_nova += c_nova;
    total_enc += c_enc;
    total_picola += c_pic;
    time_nova += t_nova;
    time_enc += t_enc;
    time_picola += t_pic;
    if (c_pic < c_nova)
      ++wins;
    else if (c_pic > c_nova)
      ++losses;
    else
      ++ties;

    std::printf("%-10s %6d | %6d %8.1f | %6d %8.1f | %6d %8.1f\n",
                name.c_str(), cs.size(), c_nova, t_nova, c_enc, t_enc, c_pic,
                t_pic);
    std::fflush(stdout);
  }

  std::printf("%.*s\n", 76,
              "----------------------------------------------------------------"
              "--------------------");
  std::printf("%-10s %6s | %6ld %8.1f | %6ld %8.1f | %6ld %8.1f\n", "total",
              "", total_nova, time_nova, total_enc, time_enc, total_picola,
              time_picola);
  std::printf("\nPICOLA vs NOVA-like: wins %d, losses %d, ties %d\n", wins,
              losses, ties);
  std::printf("NOVA-like / PICOLA cube ratio: %s (paper: ~1.11)\n",
              format_ratio(static_cast<double>(total_nova) /
                           static_cast<double>(total_picola))
                  .c_str());
  std::printf("ENC-like / PICOLA cube ratio: %s (paper: ~1.00)\n",
              format_ratio(static_cast<double>(total_enc) /
                           static_cast<double>(total_picola))
                  .c_str());
  std::printf("ENC-like / PICOLA time ratio: %s (paper: ENC impractical on "
              "large problems)\n",
              format_ratio(time_enc / std::max(0.001, time_picola)).c_str());
  return 0;
}
