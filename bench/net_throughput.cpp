// TCP serving throughput and latency of the src/net server.
//
// A loopback server (ephemeral port) is driven by 1, 8 and 64 concurrent
// client connections, each running a closed request loop over a pool of
// deterministic generated instances.  Two passes per connection count:
// cold (fresh server, every job computed) and replay (same instances
// again — answered by the result cache).  A final overload pass pins
// max_inflight low and fires pipelined requests at roughly twice the
// sustainable rate to measure the shed fraction.  Results print as a
// table and land in BENCH_net.json: req/sec and client-observed p50/p95/
// p99 latency per configuration, shed-rate for the overload pass.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "check/instance_gen.h"
#include "constraints/constraint_io.h"
#include "eval/metrics.h"
#include "net/client.h"
#include "net/json.h"
#include "net/server.h"

using namespace picola;
using namespace picola::net;

namespace {

constexpr int kInstances = 24;       ///< distinct problems in the pool
constexpr int kRequestsPerConn = 30; ///< closed-loop requests per client
constexpr int kRestarts = 2;

std::vector<std::string> make_instance_pool() {
  check::GeneratorOptions g;
  g.min_symbols = 10;
  g.max_symbols = 18;
  g.max_constraints = 6;
  check::InstanceGenerator gen(42, g);
  std::vector<std::string> pool;
  for (int i = 0; i < kInstances; ++i)
    pool.push_back(write_constraints(gen.next().set));
  return pool;
}

struct PassResult {
  double elapsed_ms = 0;
  long ok = 0;
  long errors = 0;
  long sheds = 0;
  std::vector<double> latencies_ms;  // per completed request

  double req_per_sec() const {
    return elapsed_ms > 0 ? 1000.0 * static_cast<double>(ok + errors) /
                                elapsed_ms
                          : 0;
  }
  double percentile(double p) const {
    if (latencies_ms.empty()) return 0;
    std::vector<double> v = latencies_ms;
    std::sort(v.begin(), v.end());
    size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
    return v[idx];
  }
};

/// One closed-loop pass: `conns` clients, each sending kRequestsPerConn
/// requests drawn round-robin from the pool, waiting for each answer.
PassResult run_pass(uint16_t port, const std::vector<std::string>& pool,
                    int conns) {
  PassResult total;
  std::vector<PassResult> per_thread(static_cast<size_t>(conns));
  Stopwatch sw;
  std::vector<std::thread> threads;
  for (int t = 0; t < conns; ++t) {
    threads.emplace_back([&, t] {
      PassResult& mine = per_thread[static_cast<size_t>(t)];
      Client client;
      if (!client.connect("127.0.0.1", port)) return;
      for (int i = 0; i < kRequestsPerConn; ++i) {
        const std::string& con =
            pool[static_cast<size_t>(t * kRequestsPerConn + i) % pool.size()];
        JsonValue req = JsonValue::make_object();
        req.set("con", JsonValue::make_string(con));
        req.set("restarts", JsonValue::make_int(kRestarts));
        Stopwatch rt;
        auto resp = client.call(req);
        if (!resp) return;  // connection died; drop the rest
        mine.latencies_ms.push_back(rt.elapsed_ms());
        if (resp->find("ok")) {
          ++mine.ok;
        } else {
          ++mine.errors;
          const JsonValue* e = resp->find("error");
          if (e && e->is_string() && e->as_string() == "overloaded")
            ++mine.sheds;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  total.elapsed_ms = sw.elapsed_ms();
  for (const PassResult& r : per_thread) {
    total.ok += r.ok;
    total.errors += r.errors;
    total.sheds += r.sheds;
    total.latencies_ms.insert(total.latencies_ms.end(),
                              r.latencies_ms.begin(), r.latencies_ms.end());
  }
  return total;
}

/// Overload pass: one connection pipelines `burst` requests at once
/// against a max_inflight-1 server, measuring the shed fraction at ~2x
/// saturation.
PassResult run_overload_pass(uint16_t port,
                             const std::vector<std::string>& pool) {
  PassResult r;
  Client client;
  if (!client.connect("127.0.0.1", port)) return r;
  const int burst = 2 * static_cast<int>(pool.size());
  Stopwatch sw;
  for (int i = 0; i < burst; ++i) {
    JsonValue req = JsonValue::make_object();
    req.set("con", JsonValue::make_string(pool[static_cast<size_t>(i) %
                                               pool.size()]));
    req.set("restarts", JsonValue::make_int(kRestarts));
    if (!client.send(req.dump())) return r;
  }
  for (int i = 0; i < burst; ++i) {
    auto payload = client.recv();
    if (!payload) break;
    auto resp = JsonValue::parse(*payload);
    if (!resp) break;
    if (resp->find("ok")) {
      ++r.ok;
    } else {
      ++r.errors;
      const JsonValue* e = resp->find("error");
      if (e && e->is_string() && e->as_string() == "overloaded") ++r.sheds;
    }
  }
  r.elapsed_ms = sw.elapsed_ms();
  return r;
}

}  // namespace

int main() {
  const std::vector<std::string> pool = make_instance_pool();
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::printf("# net_throughput: %d instances, %d restarts/job, %d worker "
              "threads\n",
              kInstances, kRestarts, hw > 0 ? hw : 1);
  std::printf("%-8s %-8s %10s %10s %10s %10s %8s\n", "conns", "pass",
              "req/s", "p50_ms", "p95_ms", "p99_ms", "sheds");

  std::string json = "{\"passes\":[";
  for (int conns : {1, 8, 64}) {
    ServerOptions o;
    o.max_inflight = 256;
    o.service.cache_capacity = 4096;
    Server server(o);
    server.start();
    for (const char* pass : {"cold", "replay"}) {
      PassResult r = run_pass(server.port(), pool, conns);
      std::printf("%-8d %-8s %10.1f %10.3f %10.3f %10.3f %8ld\n", conns,
                  pass, r.req_per_sec(), r.percentile(0.50),
                  r.percentile(0.95), r.percentile(0.99), r.sheds);
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    "{\"conns\":%d,\"pass\":\"%s\",\"req_per_sec\":%.1f,"
                    "\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f,"
                    "\"ok\":%ld,\"errors\":%ld,\"sheds\":%ld},",
                    conns, pass, r.req_per_sec(), r.percentile(0.50),
                    r.percentile(0.95), r.percentile(0.99), r.ok, r.errors,
                    r.sheds);
      json += buf;
    }
    server.stop();
  }

  // Overload: max_inflight=1, a burst of 2x the pool pipelined at once.
  {
    ServerOptions o;
    o.max_inflight = 1;
    o.service.num_threads = 1;
    Server server(o);
    server.start();
    PassResult r = run_overload_pass(server.port(), pool);
    double shed_rate = (r.ok + r.errors) > 0
                           ? static_cast<double>(r.sheds) /
                                 static_cast<double>(r.ok + r.errors)
                           : 0;
    std::printf("%-8d %-8s %10.1f %10s %10s %10s %8ld  (shed rate %.2f)\n",
                1, "overload", r.req_per_sec(), "-", "-", "-", r.sheds,
                shed_rate);
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"conns\":1,\"pass\":\"overload\",\"req_per_sec\":%.1f,"
                  "\"ok\":%ld,\"errors\":%ld,\"sheds\":%ld,"
                  "\"shed_rate\":%.4f}",
                  r.req_per_sec(), r.ok, r.errors, r.sheds, shed_rate);
    json += buf;
  }
  json += "]}";

  std::FILE* f = std::fopen("BENCH_net.json", "w");
  if (f) {
    std::fputs(json.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("# wrote BENCH_net.json\n");
  }
  return 0;
}
