#include <gtest/gtest.h>

#include <sstream>

#include "kiss/benchmarks.h"
#include "stateassign/blif.h"
#include "stateassign/state_assign.h"

namespace picola {
namespace {

StateAssignResult assigned(const std::string& name) {
  return assign_states(make_example_fsm(name));
}

int count_lines_with(const std::string& text, const std::string& prefix) {
  std::istringstream is(text);
  std::string line;
  int n = 0;
  while (std::getline(is, line))
    if (line.rfind(prefix, 0) == 0) ++n;
  return n;
}

TEST(Blif, StructureMatchesMachine) {
  Fsm f = make_example_fsm("vending");
  StateAssignResult r = assigned("vending");
  std::string blif = write_blif(f, r.encoding, r.minimized);
  EXPECT_EQ(count_lines_with(blif, ".model"), 1);
  EXPECT_EQ(count_lines_with(blif, ".latch"), r.encoding.num_bits);
  // One .names block per next-state bit and per primary output.
  EXPECT_EQ(count_lines_with(blif, ".names"),
            r.encoding.num_bits + f.num_outputs);
  EXPECT_EQ(count_lines_with(blif, ".end"), 1);
}

TEST(Blif, LatchInitMatchesResetCode) {
  Fsm f = make_example_fsm("traffic");
  StateAssignResult r = assigned("traffic");
  std::string blif = write_blif(f, r.encoding, r.minimized);
  uint32_t reset = r.encoding.code(f.reset_state);
  for (int b = 0; b < r.encoding.num_bits; ++b) {
    std::string want = ".latch ns" + std::to_string(b) + " s" +
                       std::to_string(b) + ' ' +
                       std::to_string((reset >> b) & 1u);
    EXPECT_NE(blif.find(want), std::string::npos) << want << "\n" << blif;
  }
}

TEST(Blif, RowCountMatchesCoverAssertions) {
  Fsm f = make_example_fsm("elevator");
  StateAssignResult r = assigned("elevator");
  std::string blif = write_blif(f, r.encoding, r.minimized);
  // Total " 1" rows == total output-part assertions across the cover.
  const CubeSpace& s = r.minimized.space();
  int ov = s.output_var();
  long assertions = 0;
  for (const Cube& c : r.minimized.cubes())
    assertions += c.var_popcount(s, ov);
  std::istringstream is(blif);
  std::string line;
  long rows = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    char first = line[0];
    if ((first == '0' || first == '1' || first == '-') &&
        line.substr(line.size() - 2) == " 1")
      ++rows;
  }
  EXPECT_EQ(rows, assertions);
}

TEST(Blif, ModelNameOverride) {
  Fsm f = make_example_fsm("vending");
  StateAssignResult r = assigned("vending");
  std::string blif = write_blif(f, r.encoding, r.minimized, "mymodel");
  EXPECT_NE(blif.find(".model mymodel"), std::string::npos);
}

}  // namespace
}  // namespace picola
