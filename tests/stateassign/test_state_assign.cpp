#include <gtest/gtest.h>

#include "kiss/benchmarks.h"
#include "stateassign/assemble.h"
#include "stateassign/state_assign.h"

namespace picola {
namespace {

TEST(Assemble, EncodedSpaceLayout) {
  Fsm f = make_example_fsm("vending");  // 2 in, 2 out, 4 states -> nv 2
  Encoding e;
  e.num_symbols = 4;
  e.num_bits = 2;
  e.codes = {0, 1, 2, 3};
  CubeSpace s = encoded_space(f, e);
  EXPECT_EQ(s.num_vars(), 2 + 2 + 1);
  EXPECT_EQ(s.parts(s.output_var()), 2 + 2);
}

TEST(Assemble, TransitionTableEncodingVerifies) {
  Fsm f = make_example_fsm("vending");
  Encoding e;
  e.num_symbols = 4;
  e.num_bits = 2;
  e.codes = {0, 1, 2, 3};
  Cover onset, dc;
  encode_transition_table(f, e, &onset, &dc);
  EXPECT_EQ(verify_against_fsm(f, e, onset, dc, 500, 1), "");
}

TEST(Assemble, SymbolicCoverEncodingVerifies) {
  Fsm f = make_example_fsm("traffic");
  DerivedConstraints d = derive_face_constraints(f);
  Encoding e;
  e.num_symbols = f.num_states();
  e.num_bits = 2;
  e.codes = {0, 1, 2, 3};
  Cover onset, dc;
  encode_symbolic_cover(d, f, e, &onset, &dc);
  EXPECT_EQ(verify_against_fsm(f, e, onset, dc, 500, 2), "");
}

struct AssignCase {
  std::string fsm;
  Assigner assigner;
};

class StateAssignSweep : public ::testing::TestWithParam<AssignCase> {};

TEST_P(StateAssignSweep, EndToEndVerifiedImplementation) {
  const AssignCase& ac = GetParam();
  Fsm f = ac.fsm.substr(0, 3) == "ex:" ? make_example_fsm(ac.fsm.substr(3))
                                       : make_benchmark(ac.fsm);
  StateAssignOptions opt;
  opt.assigner = ac.assigner;
  StateAssignResult r = assign_states(f, opt);
  EXPECT_EQ(r.encoding.validate(), "");
  EXPECT_GT(r.product_terms, 0);
  EXPECT_EQ(r.pla.validate(), "");
  // The minimised implementation must behave like the machine.
  EXPECT_EQ(verify_against_fsm(f, r.encoding, r.minimized, r.encoded_dc, 400,
                               99),
            "")
      << assigner_name(ac.assigner) << " on " << ac.fsm;
  // Minimisation only shrinks.
  EXPECT_LE(r.minimized.size(), r.encoded_onset.size());
}

INSTANTIATE_TEST_SUITE_P(
    MachinesTimesAssigners, StateAssignSweep,
    ::testing::Values(
        AssignCase{"ex:traffic", Assigner::kPicola},
        AssignCase{"ex:vending", Assigner::kPicola},
        AssignCase{"ex:elevator", Assigner::kPicola},
        AssignCase{"lion9", Assigner::kPicola},
        AssignCase{"train11", Assigner::kPicola},
        AssignCase{"ex3", Assigner::kPicola},
        AssignCase{"ex:traffic", Assigner::kNovaILike},
        AssignCase{"lion9", Assigner::kNovaILike},
        AssignCase{"ex:vending", Assigner::kNovaIoLike},
        AssignCase{"lion9", Assigner::kNovaIoLike},
        AssignCase{"ex:traffic", Assigner::kEncLike},
        AssignCase{"ex:vending", Assigner::kSequential},
        AssignCase{"lion9", Assigner::kRandom}),
    [](const ::testing::TestParamInfo<AssignCase>& info) {
      std::string name = info.param.fsm + "_";
      name += assigner_name(info.param.assigner);
      for (char& ch : name)
        if (!isalnum(static_cast<unsigned char>(ch))) ch = '_';
      return name;
    });

TEST(StateAssign, RawTableFlowAlsoVerifies) {
  Fsm f = make_example_fsm("vending");
  StateAssignOptions opt;
  opt.use_symbolic_cover = false;
  StateAssignResult r = assign_states(f, opt);
  EXPECT_EQ(verify_against_fsm(f, r.encoding, r.minimized, r.encoded_dc, 400,
                               7),
            "");
}

TEST(StateAssign, AdjacencyPreferencesComeFromCoOccurrence) {
  Fsm f = make_example_fsm("vending");
  auto prefs = next_state_adjacency(f);
  EXPECT_FALSE(prefs.empty());
  for (const auto& p : prefs) {
    EXPECT_LT(p.a, p.b);
    EXPECT_GT(p.weight, 0);
  }
}

TEST(Assemble, OneHotEncodingVerifies) {
  for (const char* name : {"vending", "traffic", "elevator"}) {
    Fsm f = make_example_fsm(name);
    Cover on, dc;
    encode_one_hot_table(f, &on, &dc);
    Encoding e;
    e.num_symbols = f.num_states();
    e.num_bits = f.num_states();
    for (int s = 0; s < f.num_states(); ++s)
      e.codes.push_back(uint32_t{1} << s);
    EXPECT_EQ(e.validate(), "");
    EXPECT_EQ(verify_against_fsm(f, e, on, dc, 400, 3), "") << name;
    // Minimisation keeps it correct.
    Cover m = esp::minimize_cover(on, dc);
    EXPECT_EQ(verify_against_fsm(f, e, m, dc, 400, 4), "") << name;
    EXPECT_LE(m.size(), on.size());
  }
}

TEST(StateAssign, MinimizeStatesFirstShrinksRedundantMachine) {
  // Build a machine with two copies of the vending states' behaviour.
  Fsm f = make_example_fsm("vending");
  // Add a clone of state C5 (same rows, same targets): mergeable.
  int clone = f.add_state("C5b");
  int c5 = f.state_index("C5");
  std::vector<Transition> extra;
  for (const auto& t : f.transitions)
    if (t.from == c5) extra.push_back({t.input, clone, t.to, t.output});
  for (auto& t : extra) f.transitions.push_back(t);
  // Retarget one row to the clone so it is reachable.
  for (auto& t : f.transitions)
    if (t.from == f.state_index("C0") && t.to == c5) {
      t.to = clone;
      break;
    }

  StateAssignOptions opt;
  opt.minimize_states_first = true;
  StateAssignResult r = assign_states(f, opt);
  EXPECT_EQ(r.states_merged, 1);
  EXPECT_EQ(r.machine.num_states(), 4);
  EXPECT_EQ(verify_against_fsm(r.machine, r.encoding, r.minimized,
                               r.encoded_dc, 400, 5),
            "");
}

TEST(StateAssign, TimingsPopulated) {
  Fsm f = make_example_fsm("traffic");
  StateAssignResult r = assign_states(f);
  EXPECT_GE(r.derive_ms, 0);
  EXPECT_GE(r.encode_ms, 0);
  EXPECT_GE(r.minimize_ms, 0);
  EXPECT_EQ(r.area, static_cast<long>(r.product_terms) *
                        (2L * (f.num_inputs + r.encoding.num_bits) +
                         r.encoding.num_bits + f.num_outputs));
}

}  // namespace
}  // namespace picola
