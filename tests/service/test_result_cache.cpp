// Job canonicalisation / fingerprints and the sharded LRU ResultCache.

#include "service/result_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

namespace picola {
namespace {

Job make_job(std::vector<std::vector<int>> groups, int num_symbols = 8,
             int restarts = 2) {
  Job j;
  j.set.num_symbols = num_symbols;
  for (auto& g : groups) j.set.add(std::move(g));
  j.restarts = restarts;
  return j;
}

CachedResult make_result(int cubes) {
  CachedResult r;
  r.total_cubes = cubes;
  r.picola.encoding.num_symbols = 4;
  r.picola.encoding.num_bits = 2;
  r.picola.encoding.codes = {0, 1, 2, 3};
  return r;
}

TEST(CanonicalJobTest, PermutedGroupsAndMembersFingerprintEqual) {
  Job a = make_job({{0, 1, 2}, {3, 4}, {2, 5, 6}});
  Job b = make_job({{6, 2, 5}, {4, 3}, {2, 1, 0}});
  CanonicalJob ca = canonicalize(a);
  CanonicalJob cb = canonicalize(b);
  EXPECT_EQ(ca.fingerprint, cb.fingerprint);
  EXPECT_TRUE(ca.equivalent(cb));
}

TEST(CanonicalJobTest, DuplicateGroupsMergeIntoWeight) {
  Job a = make_job({{0, 1}, {1, 0}, {0, 1}});
  Job b;
  b.set.num_symbols = 8;
  b.set.add({0, 1}, 3.0);
  b.restarts = 2;
  EXPECT_EQ(canonicalize(a).fingerprint, canonicalize(b).fingerprint);
}

TEST(CanonicalJobTest, DifferentContentFingerprintsDiffer) {
  CanonicalJob base = canonicalize(make_job({{0, 1, 2}, {3, 4}}));
  EXPECT_NE(base.fingerprint,
            canonicalize(make_job({{0, 1, 2}, {3, 5}})).fingerprint);
  EXPECT_NE(base.fingerprint,
            canonicalize(make_job({{0, 1, 2}, {3, 4}}, 9)).fingerprint);
  EXPECT_NE(base.fingerprint,
            canonicalize(make_job({{0, 1, 2}, {3, 4}}, 8, 3)).fingerprint);
  Job opt = make_job({{0, 1, 2}, {3, 4}});
  opt.options.num_bits = 4;
  EXPECT_NE(base.fingerprint, canonicalize(opt).fingerprint);
  opt = make_job({{0, 1, 2}, {3, 4}});
  opt.options.use_guides = false;
  EXPECT_NE(base.fingerprint, canonicalize(opt).fingerprint);
  opt = make_job({{0, 1, 2}, {3, 4}});
  opt.options.tie_break_seed = 17;
  EXPECT_NE(base.fingerprint, canonicalize(opt).fingerprint);
}

TEST(ResultCacheTest, HitAfterInsert) {
  ResultCache cache(16, 4);
  CanonicalJob j = canonicalize(make_job({{0, 1, 2}}));
  EXPECT_FALSE(cache.lookup(j).has_value());
  cache.insert(j, make_result(5));
  auto hit = cache.lookup(j);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->total_cubes, 5);
  ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.entries, 1u);
}

TEST(ResultCacheTest, PermutedSubmissionHits) {
  ResultCache cache(16);
  cache.insert(canonicalize(make_job({{2, 1, 0}, {5, 3}})), make_result(7));
  auto hit = cache.lookup(canonicalize(make_job({{3, 5}, {0, 1, 2}})));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->total_cubes, 7);
}

TEST(ResultCacheTest, LruEvictionPerShard) {
  ResultCache cache(2, 1);  // single shard, two entries
  CanonicalJob a = canonicalize(make_job({{0, 1}}));
  CanonicalJob b = canonicalize(make_job({{1, 2}}));
  CanonicalJob c = canonicalize(make_job({{2, 3}}));
  cache.insert(a, make_result(1));
  cache.insert(b, make_result(2));
  ASSERT_TRUE(cache.lookup(a).has_value());  // refresh a; b becomes LRU
  cache.insert(c, make_result(3));           // evicts b
  EXPECT_TRUE(cache.lookup(a).has_value());
  EXPECT_FALSE(cache.lookup(b).has_value());
  EXPECT_TRUE(cache.lookup(c).has_value());
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCacheTest, FingerprintCollisionIsAMissNotAWrongResult) {
  ResultCache cache(8, 1);
  CanonicalJob a = canonicalize(make_job({{0, 1, 2}}));
  CanonicalJob forged = canonicalize(make_job({{4, 5}}));
  forged.fingerprint = a.fingerprint;  // simulate a 64-bit collision
  cache.insert(a, make_result(3));
  EXPECT_FALSE(cache.lookup(forged).has_value());
  EXPECT_EQ(cache.stats().collisions, 1);
  // The colliding insert replaces the entry; the original now misses.
  cache.insert(forged, make_result(9));
  EXPECT_FALSE(cache.lookup(a).has_value());
  auto hit = cache.lookup(forged);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->total_cubes, 9);
}

TEST(ResultCacheTest, ShardsSplitCapacity) {
  ResultCache cache(8, 4);
  EXPECT_EQ(cache.num_shards(), 4);
  // 16 distinct jobs into capacity 8: stays bounded by ~2 per shard.
  for (int i = 0; i < 16; ++i)
    cache.insert(canonicalize(make_job({{i % 7, (i % 7) + 1}}, 32, i + 1)),
                 make_result(i));
  EXPECT_LE(cache.size(), 8u);
}

TEST(ResultCacheTest, CapacityNeverExceedsTheRequest) {
  // Regression: the old per-shard rounding (ceil(capacity / shards))
  // inflated ResultCache(10, 8) to 16 slots.  The quotas must now sum to
  // exactly what was asked for.
  EXPECT_EQ(ResultCache(10, 8).capacity(), 10u);
  EXPECT_EQ(ResultCache(7, 3).capacity(), 7u);
  EXPECT_EQ(ResultCache(1, 8).capacity(), 1u);
  // Surplus shards are not created: each live shard holds >= 1 entry.
  EXPECT_LE(ResultCache(3, 8).num_shards(), 3);

  // And the bound is enforced, not just reported: flood a 10-slot cache
  // with 40 distinct jobs.
  ResultCache cache(10, 8);
  for (int i = 0; i < 40; ++i)
    cache.insert(canonicalize(make_job({{i % 7, (i % 7) + 1}}, 64, i + 1)),
                 make_result(i));
  EXPECT_LE(cache.size(), 10u);
  EXPECT_LE(cache.size(), cache.capacity());
}

TEST(ResultCacheTest, EvictionAccountingBalances) {
  // Single shard, capacity 4: inserting k distinct jobs must report
  // exactly k - 4 evictions, and the books must balance —
  // new inserts - evictions == entries (no drops, no refreshes here).
  ResultCache cache(4, 1);
  constexpr int kJobs = 11;
  for (int i = 0; i < kJobs; ++i)
    cache.insert(canonicalize(make_job({{i % 7, (i % 7) + 1}}, 32, i + 1)),
                 make_result(i));
  ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 4u);
  EXPECT_EQ(s.evictions, kJobs - 4);
  EXPECT_EQ(s.insert_drops, 0);
  EXPECT_EQ(kJobs - s.evictions - s.insert_drops,
            static_cast<long>(s.entries));
}

TEST(ResultCacheTest, CollisionReplacementCountsAsEviction) {
  // A colliding insert displaces a live entry exactly like an LRU
  // eviction does; it must be counted as one or the accounting identity
  // (inserts - drops - refreshes - evictions == entries) breaks.
  ResultCache cache(8, 1);
  CanonicalJob a = canonicalize(make_job({{0, 1, 2}}));
  CanonicalJob forged = canonicalize(make_job({{4, 5}}));
  forged.fingerprint = a.fingerprint;
  cache.insert(a, make_result(3));
  EXPECT_EQ(cache.stats().evictions, 0);
  cache.insert(forged, make_result(9));  // displaces a without LRU pressure
  ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.evictions, 1);
  // Re-inserting the surviving key is a refresh, not an eviction.
  cache.insert(forged, make_result(9));
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.stats().entries, 1u);
}


// ---- concurrency: mixed hit/miss/evict traffic on a tiny cache --------

TEST(ResultCacheStressTest, ConcurrentMixedTrafficStaysCoherent) {
  // Small capacity + many threads + more distinct jobs than capacity:
  // every lookup/insert races with evictions of the same shards.
  constexpr size_t kCapacity = 8;
  constexpr int kThreads = 8;
  constexpr int kDistinctJobs = 64;
  constexpr int kOpsPerThread = 2000;
  ResultCache cache(kCapacity, 4);

  // Job i's result carries marker i (total_cubes = 1000 + i): any torn or
  // cross-wired entry surfaces as a marker mismatch.
  std::vector<CanonicalJob> jobs;
  for (int i = 0; i < kDistinctJobs; ++i)
    jobs.push_back(canonicalize(
        make_job({{0, 1, i % 7 + 2}, {i % 5 + 2, 7}}, 16, i + 1)));
  for (int i = 0; i < kDistinctJobs; ++i)
    for (int j = 0; j < i; ++j)
      ASSERT_NE(jobs[size_t(i)].fingerprint, jobs[size_t(j)].fingerprint);

  std::atomic<long> observed_hits{0};
  std::atomic<bool> integrity_ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(static_cast<unsigned>(t) * 7919u + 13u);
      for (int op = 0; op < kOpsPerThread; ++op) {
        int i = static_cast<int>(rng() % kDistinctJobs);
        const CanonicalJob& job = jobs[size_t(i)];
        if (auto r = cache.lookup(job)) {
          observed_hits.fetch_add(1, std::memory_order_relaxed);
          if (r->total_cubes != 1000 + i)
            integrity_ok.store(false, std::memory_order_relaxed);
        } else {
          cache.insert(job, make_result(1000 + i));
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // No lookup ever returned another job's result.
  EXPECT_TRUE(integrity_ok.load());
  // The cache never grew past its capacity...
  EXPECT_LE(cache.size(), kCapacity);
  // ...yet it worked: with 8 slots over 64 keys there were evictions and
  // still some hits.
  ResultCache::Stats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_GT(observed_hits.load(), 0);
  // Stats are internally coherent with what the threads observed.
  EXPECT_EQ(stats.hits, observed_hits.load());
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<long>(kThreads) * kOpsPerThread);
  EXPECT_EQ(stats.entries, cache.size());
}

TEST(ResultCacheStressTest, ConcurrentReinsertsOfSameKeyKeepOneEntry) {
  ResultCache cache(16, 2);
  const CanonicalJob job = canonicalize(make_job({{0, 1, 2}}, 8, 3));
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        cache.insert(job, make_result(7));
        auto r = cache.lookup(job);
        if (r) EXPECT_EQ(r->total_cubes, 7);
      }
    });
  for (auto& th : threads) th.join();
  auto r = cache.lookup(job);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->total_cubes, 7);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCacheMetricsTest, ShardHeatAndLockWaitAreRecorded) {
  obs::MetricsRegistry metrics;
  ResultCache cache(16, 4, &metrics);
  const CanonicalJob job = canonicalize(make_job({{0, 1, 2}}, 8, 3));
  cache.insert(job, make_result(5));
  ASSERT_TRUE(cache.lookup(job));
  EXPECT_FALSE(cache.lookup(canonicalize(make_job({{3, 4, 5}}, 8, 3))));

  // Every shard operation bumped exactly one shard's op counter, the hit
  // bumped its shard's hit counter, and every op recorded a lock-wait
  // sample (0 ns on an uncontended try_lock) — the counts must agree.
  uint64_t ops = 0, hits = 0;
  for (int i = 0; i < 4; ++i) {
    ops += metrics.counter_value("cache/shard" + std::to_string(i) + "_ops");
    hits +=
        metrics.counter_value("cache/shard" + std::to_string(i) + "_hits");
  }
  EXPECT_EQ(ops, 3u);   // insert + 2 lookups
  EXPECT_EQ(hits, 1u);
  uint64_t lock_waits = 0;
  for (const auto& [name, snap] : metrics.histogram_snapshots())
    if (name == "cache/lock_wait") lock_waits = snap.count;
  EXPECT_EQ(lock_waits, 3u);
}

TEST(ResultCacheMetricsTest, WorksWithoutARegistry) {
  // The metrics argument is optional; the no-registry path must not
  // dereference anything.
  ResultCache cache(8, 2);
  const CanonicalJob job = canonicalize(make_job({{0, 1}}, 8, 2));
  cache.insert(job, make_result(3));
  ASSERT_TRUE(cache.lookup(job));
}

// --- export / recovery API (persist/store.h rides on these) -----------

/// Records every listener event in order.
struct RecordingListener : ResultCache::Listener {
  std::vector<std::string> events;
  void on_insert(const CanonicalJob& job, const CachedResult& result)
      override {
    events.push_back("ins:" + std::to_string(job.fingerprint) + ":" +
                     std::to_string(result.total_cubes));
  }
  void on_evict(uint64_t fingerprint) override {
    events.push_back("evi:" + std::to_string(fingerprint));
  }
};

TEST(ResultCacheExportTest, ListenerSeesInsertsAndEvictionsInOrder) {
  ResultCache cache(2, 1);
  RecordingListener listener;
  cache.set_listener(&listener);
  const CanonicalJob a = canonicalize(make_job({{0, 1}}, 8, 2));
  const CanonicalJob b = canonicalize(make_job({{2, 3}}, 8, 2));
  const CanonicalJob c = canonicalize(make_job({{4, 5}}, 8, 2));
  cache.insert(a, make_result(1));
  cache.insert(b, make_result(2));
  cache.insert(a, make_result(1));  // pure refresh: NOT journaled
  cache.insert(c, make_result(3));  // capacity 2: evicts LRU (b)
  cache.set_listener(nullptr);
  cache.insert(a, make_result(9));  // detached: silent

  std::vector<std::string> want = {
      "ins:" + std::to_string(a.fingerprint) + ":1",
      "ins:" + std::to_string(b.fingerprint) + ":2",
      "evi:" + std::to_string(b.fingerprint),
      "ins:" + std::to_string(c.fingerprint) + ":3",
  };
  EXPECT_EQ(listener.events, want);
}

TEST(ResultCacheExportTest, ForEachExportsMruFirstPerShard) {
  ResultCache cache(8, 1);  // one shard: global recency order
  const CanonicalJob a = canonicalize(make_job({{0, 1}}, 8, 2));
  const CanonicalJob b = canonicalize(make_job({{2, 3}}, 8, 2));
  const CanonicalJob c = canonicalize(make_job({{4, 5}}, 8, 2));
  cache.insert(a, make_result(1));
  cache.insert(b, make_result(2));
  cache.insert(c, make_result(3));
  ASSERT_TRUE(cache.lookup(a));  // promotes a to MRU

  std::vector<long> order;
  cache.for_each([&](const CanonicalJob&, const CachedResult& r) {
    order.push_back(r.total_cubes);
  });
  EXPECT_EQ(order, (std::vector<long>{1, 3, 2}));  // a, c, b
}

TEST(ResultCacheExportTest, LoadInsertRebuildsExportedOrder) {
  // Snapshot replay: for_each streams MRU-first; tail-appending each
  // entry (most_recent = false) must reproduce the original order.
  ResultCache source(8, 1);
  for (int i = 0; i < 4; ++i)
    source.insert(canonicalize(make_job({{i, i + 1}}, 8, 2)),
                  make_result(i));
  ResultCache restored(8, 1);
  source.for_each([&](const CanonicalJob& j, const CachedResult& r) {
    restored.load_insert(j, r, /*most_recent=*/false);
  });
  std::vector<long> want, got;
  source.for_each([&](const CanonicalJob&, const CachedResult& r) {
    want.push_back(r.total_cubes);
  });
  restored.for_each([&](const CanonicalJob&, const CachedResult& r) {
    got.push_back(r.total_cubes);
  });
  EXPECT_EQ(got, want);
}

TEST(ResultCacheExportTest, LoadInsertDoesNotPromoteOrCountStats) {
  ResultCache cache(8, 1);
  const CanonicalJob job = canonicalize(make_job({{0, 1}}, 8, 2));
  cache.load_insert(job, make_result(5), /*most_recent=*/true);
  // No hit/miss/insert accounting on the recovery path.
  EXPECT_EQ(cache.stats().misses, 0);
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.lookup(job);
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->total_cubes, 5);
}

TEST(ResultCacheExportTest, LoadInsertMostRecentOverwritesAndPromotes) {
  ResultCache cache(8, 1);
  const CanonicalJob a = canonicalize(make_job({{0, 1}}, 8, 2));
  const CanonicalJob b = canonicalize(make_job({{2, 3}}, 8, 2));
  cache.load_insert(a, make_result(1), false);
  cache.load_insert(b, make_result(2), false);
  // Journal replay of a later insert for `a`: newer value, hot end.
  cache.load_insert(a, make_result(7), true);
  std::vector<long> order;
  cache.for_each([&](const CanonicalJob&, const CachedResult& r) {
    order.push_back(r.total_cubes);
  });
  EXPECT_EQ(order, (std::vector<long>{7, 2}));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCacheExportTest, LoadEraseRemovesAndIgnoresUnknown) {
  ResultCache cache(8, 2);
  const CanonicalJob job = canonicalize(make_job({{0, 1}}, 8, 2));
  cache.load_insert(job, make_result(1), true);
  cache.load_erase(job.fingerprint);
  EXPECT_EQ(cache.size(), 0u);
  cache.load_erase(job.fingerprint);  // unknown: silently ignored
  cache.load_erase(0xDEAD);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCacheExportTest, LoadInsertRespectsCapacity) {
  ResultCache cache(2, 1);
  for (int i = 0; i < 4; ++i)
    cache.load_insert(canonicalize(make_job({{i, i + 1}}, 8, 2)),
                      make_result(i), /*most_recent=*/true);
  EXPECT_EQ(cache.size(), 2u);
  // The two most recent survive.
  std::vector<long> order;
  cache.for_each([&](const CanonicalJob&, const CachedResult& r) {
    order.push_back(r.total_cubes);
  });
  EXPECT_EQ(order, (std::vector<long>{3, 2}));
}

}  // namespace
}  // namespace picola
