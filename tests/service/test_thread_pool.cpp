// ThreadPool: bounded queue, graceful shutdown, exception propagation.

#include "service/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace picola {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 32; ++i)
    futs.push_back(pool.submit([i]() { return i * i; }));
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futs[static_cast<size_t>(i)].get(), i * i);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 64; ++i)
      pool.post([&ran]() {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++ran;
      });
    pool.shutdown();  // must finish every queued task before joining
    EXPECT_EQ(ran.load(), 64);
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.post([&ran]() { ++ran; });
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, PostAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.post([]() {}), std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int {
    throw std::invalid_argument("boom");
  });
  EXPECT_THROW(
      {
        try {
          fut.get();
        } catch (const std::invalid_argument& e) {
          EXPECT_STREQ(e.what(), "boom");
          throw;
        }
      },
      std::invalid_argument);
  // The worker survives the exception.
  EXPECT_EQ(pool.submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, BoundedQueueAppliesBackpressure) {
  ThreadPool pool(1, /*max_queue=*/2);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  pool.post([gate]() { gate.wait(); });  // occupy the single worker
  std::atomic<int> posted{0};
  std::thread producer([&]() {
    for (int i = 0; i < 8; ++i) {
      pool.post([]() {});
      ++posted;
    }
  });
  // The producer must stall at the queue bound while the worker is blocked.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(posted.load(), 3);  // 2 queued + 1 in post() about to count
  release.set_value();
  producer.join();
  pool.wait_idle();
  EXPECT_EQ(posted.load(), 8);
  EXPECT_LE(pool.queue_high_water(), 2u);
}

TEST(ThreadPoolTest, WaitIdleWaitsForExecutingTasks) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 40; ++i)
    pool.post([&ran]() {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      ++ran;
    });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 40);
  // Pool stays usable after wait_idle.
  EXPECT_EQ(pool.submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, TracksQueueHighWater) {
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  pool.post([gate]() { gate.wait(); });
  for (int i = 0; i < 5; ++i) pool.post([]() {});
  release.set_value();
  pool.wait_idle();
  EXPECT_GE(pool.queue_high_water(), 5u);
}


// ---- regression: shutdown and exception safety (see ISSUE: net PR) ----

TEST(ThreadPoolTest, PostAndSubmitAfterShutdownFailCleanly) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.post([]() {}), std::runtime_error);
  EXPECT_THROW(pool.submit([]() { return 1; }), std::runtime_error);
  // Shutdown is idempotent and the rejections left the pool coherent.
  pool.shutdown();
  EXPECT_THROW(pool.post([]() {}), std::runtime_error);
}

TEST(ThreadPoolTest, ThrowingPostedTaskDoesNotTerminateWorker) {
  obs::MetricsRegistry metrics;
  ThreadPool pool(2, 0, &metrics);
  // A raw post()ed task has no future to carry its exception; the worker
  // must swallow it (and count it) instead of std::terminate-ing.
  for (int i = 0; i < 8; ++i)
    pool.post([]() { throw std::runtime_error("boom"); });
  pool.wait_idle();
  EXPECT_EQ(metrics.counter_value("pool/tasks_failed"), 8u);
  // The workers survived: the pool still runs tasks.
  EXPECT_EQ(pool.submit([]() { return 42; }).get(), 42);
}

TEST(ThreadPoolTest, DestructorDuringInflightThrowingTasksIsSafe) {
  std::atomic<int> started{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 64; ++i)
      pool.post([&started]() {
        ++started;
        throw std::runtime_error("mid-flight failure");
      });
    // Destructor runs here with tasks queued and throwing: it must drain
    // them all and join without terminating.
  }
  EXPECT_EQ(started.load(), 64);
}

TEST(ThreadPoolTest, SubmitExceptionStillPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto fut = pool.submit([]() -> int { throw std::invalid_argument("bad"); });
  EXPECT_THROW(fut.get(), std::invalid_argument);
  // ...and is not double-counted as a raw task failure path: the pool
  // remains usable.
  EXPECT_EQ(pool.submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ContentionMetricsTrackQueueAndActiveThreads) {
  obs::MetricsRegistry metrics;
  ThreadPool pool(1, 0, &metrics);

  // Park the single worker so posted tasks must wait in the queue.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> entered;
  pool.post([&entered, gate]() {
    entered.set_value();
    gate.wait();
  });
  entered.get_future().wait();
  // The worker is inside the task; two more tasks sit in the queue.
  pool.post([gate]() { gate.wait(); });
  pool.post([gate]() { gate.wait(); });
  EXPECT_EQ(metrics.gauge("pool/active_threads").value(), 1);
  EXPECT_EQ(metrics.gauge("pool/queue_depth").value(), 2);
  EXPECT_GE(metrics.gauge("pool/queue_depth_hwm").value(), 2);

  release.set_value();
  pool.wait_idle();
  // Idle again: the live gauges fall back to zero, the high-water stays.
  EXPECT_EQ(metrics.gauge("pool/active_threads").value(), 0);
  EXPECT_EQ(metrics.gauge("pool/queue_depth").value(), 0);
  EXPECT_GE(metrics.gauge("pool/queue_depth_hwm").value(), 2);
  EXPECT_EQ(pool.queue_high_water(), 2u);  // ServiceStats view unchanged

  // Every executed task recorded one queue-wait sample, and the parked
  // tasks demonstrably waited.
  uint64_t count = 0, max = 0;
  for (const auto& [name, snap] : metrics.histogram_snapshots())
    if (name == "pool/queue_wait") {
      count = snap.count;
      max = snap.max;
    }
  EXPECT_EQ(count, 3u);
  EXPECT_GT(max, 0u);
}

}  // namespace
}  // namespace picola
