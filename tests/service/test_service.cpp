// EncodingService: concurrent restart fan-out must be bit-identical to the
// sequential picola_encode_best, cache/in-flight dedup, stats counters.

#include "service/service.h"

#include <gtest/gtest.h>

#include "encoders/restart.h"
#include "eval/constraint_eval.h"
#include "portfolio/portfolio.h"

namespace picola {
namespace {

ConstraintSet paper_set() {
  ConstraintSet cs;
  cs.num_symbols = 15;
  cs.add({1, 5, 7, 13});
  cs.add({0, 1});
  cs.add({8, 13});
  cs.add({5, 6, 7, 8, 13});
  return cs;
}

ConstraintSet crowded_set() {
  ConstraintSet cs;
  cs.num_symbols = 12;
  cs.add({0, 1, 2, 3});
  cs.add({2, 3, 4, 5});
  cs.add({4, 5, 6, 7});
  cs.add({6, 7, 8, 9});
  cs.add({8, 9, 10, 11});
  cs.add({1, 4, 7, 10});
  cs.add({0, 11});
  return cs;
}

TEST(RestartPlanTest, SeedsDeriveFromBasePlusIndex) {
  EXPECT_EQ(restart_seed(0, 0), 0u);
  EXPECT_EQ(restart_seed(0, 3), 3u);
  EXPECT_EQ(restart_seed(100, 0), 100u);
  EXPECT_EQ(restart_seed(100, 3), 103u);
  PicolaOptions base;
  base.tie_break_seed = 42;
  EXPECT_EQ(picola_restart_options(base, 0).tie_break_seed, 42u);
  EXPECT_EQ(picola_restart_options(base, 5).tie_break_seed, 47u);
}

TEST(RestartPlanTest, WinnerReductionIsOrderIndependent) {
  // (cost, restart) pairs fed in any order must pick (4, restart 1).
  std::vector<std::pair<long, int>> runs = {{5, 0}, {4, 1}, {4, 2}, {6, 3}};
  for (int rot = 0; rot < 4; ++rot) {
    RestartWinner w;
    for (int i = 0; i < 4; ++i)
      w.offer(runs[static_cast<size_t>((i + rot) % 4)].first,
              runs[static_cast<size_t>((i + rot) % 4)].second);
    EXPECT_EQ(w.cost, 4);
    EXPECT_EQ(w.restart, 1);
  }
}

TEST(EncodingServiceTest, ParallelRestartsMatchSequentialBest) {
  // The satellite requirement: the concurrent fan-out and the sequential
  // multi-start loop must pick the same winner, bit for bit.
  const int kRestarts = 6;
  for (const ConstraintSet& cs : {paper_set(), crowded_set()}) {
    PicolaResult seq = picola_encode_best(cs, kRestarts);
    long seq_cost = evaluate_constraints(cs, seq.encoding).total_cubes;

    ServiceOptions so;
    so.num_threads = 4;
    EncodingService service(so);
    Job job;
    job.set = cs;
    job.restarts = kRestarts;
    JobResult r = service.submit(std::move(job)).get();

    EXPECT_EQ(r.picola.encoding.codes, seq.encoding.codes);
    EXPECT_EQ(r.total_cubes, seq_cost);
    EXPECT_FALSE(r.cache_hit);
  }
}

TEST(EncodingServiceTest, ParallelMatchesSequentialWithNonzeroBaseSeed) {
  ConstraintSet cs = crowded_set();
  PicolaOptions opt;
  opt.tie_break_seed = 1234;
  PicolaResult seq = picola_encode_best(cs, 5, opt);

  ServiceOptions so;
  so.num_threads = 3;
  EncodingService service(so);
  Job job;
  job.set = cs;
  job.options = opt;
  job.restarts = 5;
  JobResult r = service.submit(std::move(job)).get();
  EXPECT_EQ(r.picola.encoding.codes, seq.encoding.codes);
}

TEST(EncodingServiceTest, ResubmissionHitsCache) {
  EncodingService service(ServiceOptions{});
  Job job;
  job.set = paper_set();
  job.restarts = 3;
  JobResult first = service.submit(job).get();
  EXPECT_FALSE(first.cache_hit);
  JobResult second = service.submit(job).get();
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.picola.encoding.codes, first.picola.encoding.codes);
  EXPECT_EQ(second.total_cubes, first.total_cubes);
  ServiceStats s = service.stats();
  EXPECT_EQ(s.jobs_submitted, 2);
  EXPECT_EQ(s.jobs_completed, 2);
  EXPECT_EQ(s.cache_hits, 1);
  EXPECT_EQ(s.cache_misses, 1);
  EXPECT_EQ(s.restart_tasks, 3);
}

TEST(EncodingServiceTest, PermutedSubmissionHitsCache) {
  EncodingService service(ServiceOptions{});
  Job a;
  a.set.num_symbols = 10;
  a.set.add({0, 1, 2});
  a.set.add({4, 5});
  Job b;
  b.set.num_symbols = 10;
  b.set.add({5, 4});
  b.set.add({2, 0, 1});
  JobResult ra = service.submit(std::move(a)).get();
  JobResult rb = service.submit(std::move(b)).get();
  EXPECT_TRUE(rb.cache_hit);
  EXPECT_EQ(rb.picola.encoding.codes, ra.picola.encoding.codes);
}

TEST(EncodingServiceTest, DuplicateInFlightJobsShareOneComputation) {
  ServiceOptions so;
  so.num_threads = 2;
  EncodingService service(so);
  std::vector<Job> jobs;
  for (int i = 0; i < 6; ++i) {
    Job j;
    j.set = crowded_set();
    j.restarts = 4;
    jobs.push_back(std::move(j));
  }
  auto futures = service.submit_batch(std::move(jobs));
  ASSERT_EQ(futures.size(), 6u);
  std::vector<uint32_t> codes = futures[0].get().picola.encoding.codes;
  for (auto& f : futures) EXPECT_EQ(f.get().picola.encoding.codes, codes);
  ServiceStats s = service.stats();
  EXPECT_EQ(s.jobs_submitted, 6);
  // At most one computation: everything else joined the in-flight job or
  // hit the completed-result cache, depending on scheduling.
  EXPECT_EQ(s.cache_misses, 1);
  EXPECT_EQ(s.cache_hits + s.inflight_joins, 5);
  EXPECT_EQ(s.restart_tasks, 4);
}

TEST(EncodingServiceTest, BatchOfDistinctJobsCompletesAll) {
  ServiceOptions so;
  so.num_threads = 4;
  EncodingService service(so);
  std::vector<Job> jobs;
  for (int n = 4; n < 12; ++n) {
    Job j;
    j.set.num_symbols = n;
    j.set.add({0, 1, 2});
    j.set.add({1, n - 1});
    j.restarts = 2;
    jobs.push_back(std::move(j));
  }
  auto futures = service.submit_batch(std::move(jobs));
  service.wait_all();
  for (size_t i = 0; i < futures.size(); ++i) {
    JobResult r = futures[i].get();
    EXPECT_EQ(r.picola.encoding.num_symbols, static_cast<int>(i) + 4);
    EXPECT_TRUE(r.picola.encoding.validate().empty());
  }
  ServiceStats s = service.stats();
  EXPECT_EQ(s.jobs_completed, 8);
  EXPECT_EQ(s.cache_misses, 8);
  EXPECT_GE(s.total_job_ms, s.max_job_ms);
}

TEST(EncodingServiceTest, StatsCountCacheEvictions) {
  ServiceOptions so;
  so.num_threads = 1;
  so.cache_capacity = 1;
  so.cache_shards = 1;
  EncodingService service(so);
  Job a;
  a.set = paper_set();
  a.restarts = 2;
  Job b;
  b.set = crowded_set();
  b.restarts = 2;
  service.submit(a).get();   // miss, fills the single slot
  service.submit(b).get();   // miss, evicts a
  JobResult r = service.submit(a).get();  // miss again: a was evicted
  EXPECT_FALSE(r.cache_hit);
  ServiceStats s = service.stats();
  EXPECT_EQ(s.cache_misses, 3);
  EXPECT_EQ(s.cache_hits, 0);
  EXPECT_EQ(s.inflight_joins, 0);
  EXPECT_EQ(s.cache_evictions, 2);
}

TEST(EncodingServiceTest, SingleThreadServiceIsStillCorrect) {
  ServiceOptions so;
  so.num_threads = 1;
  EncodingService service(so);
  Job job;
  job.set = paper_set();
  job.restarts = 4;
  JobResult r = service.submit(std::move(job)).get();
  PicolaResult seq = picola_encode_best(paper_set(), 4);
  EXPECT_EQ(r.picola.encoding.codes, seq.encoding.codes);
}

TEST(EncodingServiceTest, BackendSelectionSeparatesCacheEntries) {
  // The same constraint set under different backends must be distinct
  // jobs: no false cache hits, and each result names its backend.
  EncodingService service;
  Job picola_job;
  picola_job.set = paper_set();
  picola_job.restarts = 2;
  JobResult r1 = service.submit(std::move(picola_job)).get();
  EXPECT_FALSE(r1.cache_hit);
  EXPECT_EQ(r1.backend, portfolio::BackendKind::kPicola);

  Job anneal_job;
  anneal_job.set = paper_set();
  anneal_job.restarts = 2;
  anneal_job.portfolio.backend = portfolio::BackendKind::kAnneal;
  JobResult r2 = service.submit(std::move(anneal_job)).get();
  EXPECT_FALSE(r2.cache_hit);
  EXPECT_EQ(r2.backend, portfolio::BackendKind::kAnneal);

  // Different sat knobs are different jobs too (they change results).
  Job sat_a;
  sat_a.set = paper_set();
  sat_a.portfolio.backend = portfolio::BackendKind::kSat;
  JobResult r3 = service.submit(std::move(sat_a)).get();
  EXPECT_FALSE(r3.cache_hit);
  Job sat_b;
  sat_b.set = paper_set();
  sat_b.portfolio.backend = portfolio::BackendKind::kSat;
  sat_b.portfolio.sat_card = sat::CardEncoding::kPairwise;
  JobResult r4 = service.submit(std::move(sat_b)).get();
  EXPECT_FALSE(r4.cache_hit);
}

TEST(EncodingServiceTest, CachedReplyReportsWinningBackend) {
  EncodingService service;
  auto make_job = [] {
    Job j;
    j.set = paper_set();
    j.portfolio.backend = portfolio::BackendKind::kSat;
    return j;
  };
  JobResult first = service.submit(make_job()).get();
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.backend, portfolio::BackendKind::kSat);
  JobResult second = service.submit(make_job()).get();
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.backend, portfolio::BackendKind::kSat);
  EXPECT_EQ(second.picola.encoding.codes, first.picola.encoding.codes);
}

TEST(EncodingServiceTest, PortfolioJobMatchesSequentialPortfolio) {
  // The concurrent fan-out of a portfolio plan must reduce to the same
  // winner as the sequential front-end, and never lose to picola alone.
  const int kRestarts = 3;
  for (const ConstraintSet& cs : {paper_set(), crowded_set()}) {
    portfolio::PortfolioOptions fopt;
    fopt.backend = portfolio::BackendKind::kPortfolio;
    // The service canonicalises (sorts/normalises) the constraint set
    // before running; the sat backend's model depends on constraint
    // order, so the sequential reference must use the same form.
    Job proto;
    proto.set = cs;
    proto.restarts = kRestarts;
    proto.portfolio = fopt;
    CanonicalJob canon = canonicalize(proto);
    portfolio::PortfolioResult seq =
        portfolio::portfolio_encode(canon.set, kRestarts, {}, fopt);

    ServiceOptions so;
    so.num_threads = 4;
    EncodingService service(so);
    Job job;
    job.set = cs;
    job.restarts = kRestarts;
    job.portfolio = fopt;
    JobResult r = service.submit(std::move(job)).get();
    EXPECT_EQ(r.picola.encoding.codes, seq.picola.encoding.codes);
    EXPECT_EQ(r.total_cubes, seq.total_cubes);
    EXPECT_EQ(r.backend, seq.backend);

    PicolaResult alone = picola_encode_best(cs, kRestarts);
    long alone_cost = evaluate_constraints(cs, alone.encoding).total_cubes;
    EXPECT_LE(r.total_cubes, alone_cost);
  }
}

}  // namespace
}  // namespace picola
