// Compiled with -DPICOLA_OBS_DISABLED (see tests/CMakeLists.txt): the
// instrumentation macros must expand to nothing, compile cleanly, and
// leave the global registry/tracer untouched even with the runtime
// switch forced on.  Direct registry use (the service's bookkeeping
// path) must keep working.

#ifndef PICOLA_OBS_DISABLED
#error "this test must be built with PICOLA_OBS_DISABLED"
#endif

#include <gtest/gtest.h>

#include "obs/obs.h"

namespace picola::obs {
namespace {

TEST(ObsDisabledTest, MacrosCompileAndAreInert) {
  set_enabled(true);  // even forced on, the macros must do nothing
  MetricsRegistry::global().reset();
  Tracer::global().clear();
  Tracer::global().set_tracing(true);

  {
    PICOLA_OBS_SPAN(span, "disabled/span");
    PICOLA_OBS_COUNT("disabled/count", 3);
    PICOLA_OBS_RECORD_SPAN("disabled/manual", 0, 100);
    EXPECT_EQ(span.elapsed_ns(), 0u);
    EXPECT_EQ(PICOLA_OBS_NOW(), 0u);
  }

  EXPECT_EQ(MetricsRegistry::global().counter_value("disabled/count"), 0u);
  EXPECT_EQ(
      MetricsRegistry::global().histogram("disabled/span").snapshot().count,
      0u);
  EXPECT_TRUE(Tracer::global().events().empty());

  Tracer::global().set_tracing(false);
  set_enabled(false);
}

TEST(ObsDisabledTest, DirectRegistryUseStillWorks) {
  // Subsystem bookkeeping (EncodingService counters) bypasses the macros
  // and must survive the compile-out.
  MetricsRegistry r;
  r.counter("service/jobs_submitted").add(2);
  r.histogram("service/job").record(1000);
  EXPECT_EQ(r.counter_value("service/jobs_submitted"), 2u);
  EXPECT_EQ(r.histogram("service/job").snapshot().sum, 1000u);
  EXPECT_GT(now_ns(), 0u);  // the clock is not compiled out either
}

TEST(ObsDisabledTest, SpanInExpressionPositionCompiles) {
  // The macro must be usable wherever the enabled expansion is.
  for (int i = 0; i < 2; ++i) {
    PICOLA_OBS_SPAN(outer, "a/b");
    {
      PICOLA_OBS_SPAN(inner, "a/c");
      (void)inner.elapsed_ns();
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace picola::obs
