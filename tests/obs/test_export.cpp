// obs/export.h — Prometheus text exposition: name mangling, cumulative
// log2 histogram rendering, multi-registry merge with first-wins dedup,
// and the build-info gauge.

#include "obs/export.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/build_info.h"
#include "obs/metrics.h"

namespace picola::obs {
namespace {

TEST(PrometheusName, ManglesSlashesAndOddCharacters) {
  EXPECT_EQ(prometheus_name("net/frames_in"), "picola_net_frames_in");
  EXPECT_EQ(prometheus_name("pool/queue_wait"), "picola_pool_queue_wait");
  EXPECT_EQ(prometheus_name("weird-name.v2"), "picola_weird_name_v2");
  EXPECT_EQ(prometheus_name("plain"), "picola_plain");
}

TEST(PrometheusText, CountersGaugesAndTypeLines) {
  MetricsRegistry r;
  r.counter("net/frames_in").add(3);
  r.gauge("net/inflight").set(2);
  std::string text = prometheus_text({&r});
  EXPECT_NE(text.find("# TYPE picola_net_frames_in_total counter\n"
                      "picola_net_frames_in_total 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE picola_net_inflight gauge\n"
                      "picola_net_inflight 2\n"),
            std::string::npos);
  // Exposition ends with a newline (required by the format).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(PrometheusText, BuildInfoGaugeLeadsTheScrape) {
  MetricsRegistry r;
  std::string text = prometheus_text({&r});
  EXPECT_EQ(text.rfind("# TYPE picola_build_info gauge\npicola_build_info{",
                       0),
            0u)
      << text;
  const BuildInfo& b = build_info();
  EXPECT_NE(text.find(std::string("version=\"") + b.version + "\""),
            std::string::npos);
  EXPECT_NE(text.find(std::string("git_sha=\"") + b.git_sha + "\""),
            std::string::npos);
}

TEST(PrometheusText, HistogramBucketsAreCumulativeWithInf) {
  MetricsRegistry r;
  Histogram& h = r.histogram("svc/lat");
  h.record(0);   // bucket 0 (le="0")
  h.record(1);   // bucket 1 (le="1")
  h.record(2);   // bucket 2 (le="3")
  h.record(3);   // bucket 2 (le="3")
  std::string text = prometheus_text({&r});
  EXPECT_NE(text.find("picola_svc_lat_ns_bucket{le=\"0\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("picola_svc_lat_ns_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("picola_svc_lat_ns_bucket{le=\"3\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("picola_svc_lat_ns_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("picola_svc_lat_ns_sum 6\n"), std::string::npos);
  EXPECT_NE(text.find("picola_svc_lat_ns_count 4\n"), std::string::npos);
  // The +Inf bucket equals _count — the Prometheus invariant.
}

TEST(PrometheusText, MergeIsFirstRegistryWins) {
  MetricsRegistry a, b;
  a.counter("service/job").add(10);
  b.counter("service/job").add(99);
  b.counter("only/b").add(7);
  std::string text = prometheus_text({&a, &b});
  // The duplicate family appears exactly once, with a's value.
  EXPECT_NE(text.find("picola_service_job_total 10\n"), std::string::npos)
      << text;
  EXPECT_EQ(text.find("picola_service_job_total 99"), std::string::npos);
  size_t first = text.find("# TYPE picola_service_job_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE picola_service_job_total counter", first + 1),
            std::string::npos);
  // Non-colliding metrics from the later registry still appear.
  EXPECT_NE(text.find("picola_only_b_total 7\n"), std::string::npos);
}

TEST(PrometheusText, DedupAppliesAcrossMetricKinds) {
  MetricsRegistry a, b;
  a.histogram("svc/lat").record(5);
  b.counter("svc/lat").add(3);  // same raw name, different kind
  std::string text = prometheus_text({&a, &b});
  // The first registry's histogram claims the name; the counter from the
  // second registry is dropped rather than emitting a clashing family.
  EXPECT_NE(text.find("picola_svc_lat_ns_count 1\n"), std::string::npos);
  EXPECT_EQ(text.find("picola_svc_lat_total"), std::string::npos) << text;
}

TEST(BuildInfo, JsonAndLabelsAgree) {
  const BuildInfo& b = build_info();
  EXPECT_NE(std::string(b.version), "");
  std::string json = build_info_json();
  EXPECT_NE(json.find("\"version\":\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\":\""), std::string::npos);
  EXPECT_NE(json.find("\"sanitizer\":\""), std::string::npos);
  std::string labels = build_info_labels();
  EXPECT_NE(labels.find("version=\""), std::string::npos);
  EXPECT_EQ(labels.find('{'), std::string::npos);  // body only, no braces
#ifdef PICOLA_OBS_DISABLED
  EXPECT_FALSE(b.obs_compiled);
#else
  EXPECT_TRUE(b.obs_compiled);
#endif
}

}  // namespace
}  // namespace picola::obs
