// Tracer: span nesting, deterministic export under a fake clock,
// sampling, runtime disable, cross-thread merge.

#include "obs/tracer.h"

#include <gtest/gtest.h>

#include <thread>

#include "obs/obs.h"

namespace picola::obs {
namespace {

uint64_t g_fake_now = 0;
uint64_t fake_clock() { return g_fake_now; }

/// Every test in this file drives the process-wide tracer/registry, so
/// save and restore the global obs state around each one.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_fake_now = 0;
    set_clock_for_testing(&fake_clock);
    set_enabled(true);
    Tracer::global().set_tracing(true);
    Tracer::global().set_sample_every(1);
    Tracer::global().clear();
    MetricsRegistry::global().reset();
  }
  void TearDown() override {
    Tracer::global().set_tracing(false);
    Tracer::global().set_sample_every(1);
    Tracer::global().clear();
    MetricsRegistry::global().reset();
    set_enabled(false);
    set_clock_for_testing(nullptr);
  }
};

TEST_F(TracerTest, NestedSpansRecordStartDurationAndDepth) {
  g_fake_now = 1000;
  {
    ScopedSpan outer("phase/outer");
    g_fake_now = 2000;
    {
      ScopedSpan inner("phase/inner");
      g_fake_now = 2500;
    }
    g_fake_now = 4000;
  }
  std::vector<TraceEvent> evs = Tracer::global().events();
  ASSERT_EQ(evs.size(), 2u);
  // Sorted by start time: outer first.
  EXPECT_STREQ(evs[0].name, "phase/outer");
  EXPECT_EQ(evs[0].start_ns, 1000u);
  EXPECT_EQ(evs[0].dur_ns, 3000u);
  EXPECT_EQ(evs[0].depth, 0);
  EXPECT_STREQ(evs[1].name, "phase/inner");
  EXPECT_EQ(evs[1].start_ns, 2000u);
  EXPECT_EQ(evs[1].dur_ns, 500u);
  EXPECT_EQ(evs[1].depth, 1);
  EXPECT_EQ(evs[0].tid, evs[1].tid);
}

TEST_F(TracerTest, SpansFeedGlobalHistograms) {
  g_fake_now = 0;
  {
    ScopedSpan s("phase/hist");
    g_fake_now = 700;
  }
  Histogram::Snapshot snap =
      MetricsRegistry::global().histogram("phase/hist").snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 700u);
}

TEST_F(TracerTest, ChromeTraceJsonIsDeterministicUnderFakeClock) {
  g_fake_now = 1000;
  {
    ScopedSpan a("picola/classify");
    g_fake_now = 3500;
  }
  std::vector<TraceEvent> evs = Tracer::global().events();
  ASSERT_EQ(evs.size(), 1u);
  std::string expected =
      "{\"traceEvents\":[{\"name\":\"picola/classify\",\"cat\":\"picola\","
      "\"ph\":\"X\",\"ts\":1.000,\"dur\":2.500,\"pid\":1,\"tid\":" +
      std::to_string(evs[0].tid) +
      "}],\"displayTimeUnit\":\"ms\"}";
  EXPECT_EQ(Tracer::global().chrome_trace_json(), expected);
  // A second export is byte-identical.
  EXPECT_EQ(Tracer::global().chrome_trace_json(), expected);
}

TEST_F(TracerTest, SummaryAggregatesPerName) {
  for (int i = 0; i < 3; ++i) {
    ScopedSpan s("phase/rep");
    g_fake_now += 100;
  }
  std::string text = Tracer::global().summary_text();
  EXPECT_NE(text.find("phase/rep count=3 total_ms=0.000"), std::string::npos)
      << text;
  std::string json = Tracer::global().summary_json();
  EXPECT_NE(json.find(
                "\"phase/rep\":{\"count\":3,\"total_ns\":300,\"min_ns\":100,"
                "\"max_ns\":100}"),
            std::string::npos)
      << json;
}

TEST_F(TracerTest, SampleEveryRecordsEveryNthTopLevelTree) {
  Tracer::global().set_sample_every(2);
  for (int i = 0; i < 6; ++i) {
    ScopedSpan top("phase/top");
    ScopedSpan nested("phase/nested");
    g_fake_now += 10;
  }
  // Half the trees sampled, and each sampled tree is complete (top +
  // nested), never a torn one.
  std::vector<TraceEvent> evs = Tracer::global().events();
  int tops = 0, nesteds = 0;
  for (const TraceEvent& e : evs) {
    if (std::string(e.name) == "phase/top") ++tops;
    else ++nesteds;
  }
  EXPECT_EQ(tops, 3);
  EXPECT_EQ(nesteds, 3);
}

TEST_F(TracerTest, DisabledSpansCostNothingAndRecordNothing) {
  set_enabled(false);
  {
    ScopedSpan s("phase/off");
    g_fake_now += 100;
    EXPECT_EQ(s.elapsed_ns(), 0u);
  }
  EXPECT_TRUE(Tracer::global().events().empty());
  EXPECT_EQ(MetricsRegistry::global().histogram("phase/off").snapshot().count,
            0u);
}

TEST_F(TracerTest, TracingOffStillFeedsHistograms) {
  Tracer::global().set_tracing(false);
  {
    ScopedSpan s("phase/metrics_only");
    g_fake_now += 50;
  }
  EXPECT_TRUE(Tracer::global().events().empty());
  EXPECT_EQ(MetricsRegistry::global()
                .histogram("phase/metrics_only")
                .snapshot()
                .count,
            1u);
}

TEST_F(TracerTest, EventsFromMultipleThreadsMergeWithDistinctTids) {
  {
    ScopedSpan s("phase/main");
    g_fake_now += 10;
  }
  std::thread worker([]() {
    ScopedSpan s("phase/worker");
    g_fake_now += 10;
  });
  worker.join();
  std::vector<TraceEvent> evs = Tracer::global().events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_NE(evs[0].tid, evs[1].tid);
}

TEST_F(TracerTest, RecordSpanBypassesSamplingButHonoursMasterSwitch) {
  Tracer::global().set_sample_every(1000000);
  record_span("service/job", 100, 900);
  std::vector<TraceEvent> evs = Tracer::global().events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_STREQ(evs[0].name, "service/job");
  EXPECT_EQ(evs[0].dur_ns, 900u);

  Tracer::global().clear();
  set_enabled(false);
  record_span("service/job", 100, 900);
  EXPECT_TRUE(Tracer::global().events().empty());
}

TEST_F(TracerTest, ClearDropsEventsButKeepsRecording) {
  {
    ScopedSpan s("phase/one");
    g_fake_now += 10;
  }
  EXPECT_EQ(Tracer::global().events().size(), 1u);
  Tracer::global().clear();
  EXPECT_TRUE(Tracer::global().events().empty());
  {
    ScopedSpan s("phase/two");
    g_fake_now += 10;
  }
  EXPECT_EQ(Tracer::global().events().size(), 1u);
}

}  // namespace
}  // namespace picola::obs
